package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

func TestRunUsage(t *testing.T) {
	var errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &errOut); code != exitUsage {
		t.Errorf("unknown flag: exit %d, want %d", code, exitUsage)
	}
	errOut.Reset()
	if code := run([]string{"stray"}, &errOut); code != exitUsage {
		t.Errorf("stray argument: exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errOut.String(), "unexpected arguments") {
		t.Errorf("stray argument message: %q", errOut.String())
	}
}

func TestRunListenFailure(t *testing.T) {
	// Occupy a port, then ask the daemon to bind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var errOut bytes.Buffer
	if code := run([]string{"-addr", l.Addr().String(), "-quiet"}, &errOut); code != exitFail {
		t.Errorf("bind conflict: exit %d, want %d\n%s", code, exitFail, errOut.String())
	}
}

// TestRunServesAndDrains boots the real daemon on an ephemeral port, gets a
// verdict over HTTP, then delivers SIGTERM and requires a clean exit-0
// drain — the full lifecycle a supervisor sees.
func TestRunServesAndDrains(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var errOut bytes.Buffer
	exit := make(chan int, 1)
	go func() { exit <- run([]string{"-addr", addr, "-inflight", "2"}, &errOut) }()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy:\n%s", errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var body bytes.Buffer
	req := api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock, From: "Top"}
	if err := api.Encode(&body, req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/verdict", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict status = %d body %s", resp.StatusCode, b)
	}
	var v api.Response
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.Verdict != api.VerdictDeadlock {
		t.Errorf("verdict = %s, want deadlock", v.Verdict)
	}
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), `dcserved_verdicts_total{cache="miss"} 1`) {
		t.Errorf("metrics missing the served verdict:\n%s", mb)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != exitOK {
			t.Errorf("drain exit = %d, want %d\n%s", code, exitOK, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never drained:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "drained cleanly") {
		t.Errorf("log missing clean-drain line:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), fmt.Sprintf("listening on %s", addr)) {
		t.Errorf("log missing listen line:\n%s", errOut.String())
	}
}
