// Command dcserved is the long-running verdict service: an HTTP/JSON daemon
// wrapping the full checker pipeline. Clients POST a GCL program plus a
// property to /v1/verdict (protocol: detcorr/internal/serve/api) and get
// back the verdict with its witness — closure, detector and corrector
// conditions, convergence, deadlock hunts, and the exploration-free provers.
//
// Usage:
//
//	dcserved [-addr :8125] [-inflight N] [-tenant-budget STATES]
//	    [-cache-budget STATES] [-max-programs N] [-max-body BYTES]
//	    [-verdict-cache N] [-mem-budget B] [-spill-dir D] [-noslice] [-quiet]
//
// -mem-budget B (e.g. 64M, 2G) bounds the memory any one exploration may
// hold resident: evaluations whose state space would outgrow the budget
// degrade to the out-of-core engine — spilling the visited set and BFS
// frontier to files under -spill-dir — instead of being refused or growing
// without bound. Verdicts are byte-identical either way, and explorations
// that fit the budget never touch disk.
//
// Endpoints:
//
//	POST /v1/verdict    One verdict per request. The response body is the
//	                    api.Response JSON; X-DC-Exit carries the dctl exit
//	                    code for the verdict and X-DC-Cache reports how it
//	                    was obtained (miss, hit, or join). With
//	                    Accept: text/event-stream the verdict streams as
//	                    Server-Sent Events (progress, verdict, exit).
//	POST /v1/revise     Advance a registered program to a new revision:
//	                    {"old": src, "new": src}. The daemon diffs the two,
//	                    repairs the old revision's cached transition graphs
//	                    in place under the new one, and re-keys every cached
//	                    verdict the edit provably cannot have changed —
//	                    instead of flushing. The response reports the
//	                    impact (changed actions/preds/faults, affected
//	                    predicates) and the graphs rebound/repaired/rebuilt
//	                    and verdicts preserved/invalidated.
//	GET  /healthz       "ok" while serving, 503 "draining" once a shutdown
//	                    signal has been received.
//	GET  /metrics       Prometheus text: request counters, verdict cache
//	                    hit/miss/join, in-flight gauge, evaluation latency
//	                    histogram, revision invalidation outcomes
//	                    (dcserved_invalidate_*), and the process-wide
//	                    exploration-cache counters.
//
// Identical questions asked concurrently coalesce into one evaluation (and
// one state-space build); repeated questions answer from the verdict cache.
// Saturation — more distinct in-flight questions than -inflight slots —
// refuses with 429 and Retry-After rather than queueing. A tenant names
// itself with the X-DC-Tenant header; -tenant-budget bounds the resident
// graph states any one tenant's programs may pin.
//
// On SIGINT or SIGTERM the daemon drains: new verdicts are refused with
// 503, in-flight evaluations run to completion (up to -drain-timeout), and
// the process exits 0 on a clean drain.
//
// Exit codes: 0 after a clean drain; 1 if the listener failed or the drain
// timed out; 2 on a bad command line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/flow"
	"detcorr/internal/serve"
)

// Process exit codes.
const (
	exitOK    = 0 // clean drain after a shutdown signal
	exitFail  = 1 // listener failure or drain timeout
	exitUsage = 2 // bad command line
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errOut io.Writer) int {
	fs := flag.NewFlagSet("dcserved", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", ":8125", "listen address")
	inflight := fs.Int("inflight", 0, "max concurrently evaluating verdicts (0 = default)")
	tenantBudget := fs.Int("tenant-budget", 0, "max resident graph states per tenant (0 = unbounded)")
	cacheBudget := fs.Int("cache-budget", 0, "process-wide exploration cache budget in states (0 = keep default)")
	maxPrograms := fs.Int("max-programs", 0, "max distinct compiled programs kept resident (0 = default)")
	maxBody := fs.Int64("max-body", 0, "max request body bytes (0 = default)")
	verdictCache := fs.Int("verdict-cache", 0, "max memoized verdicts (0 = default, negative disables)")
	memBudget := fs.String("mem-budget", "", "per-exploration memory budget, e.g. 64M or 2G (empty = in-RAM engines)")
	spillDir := fs.String("spill-dir", "", "directory for exploration spill files (default: the OS temp directory)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight verdicts on shutdown")
	noslice := fs.Bool("noslice", false, "disable the cone-of-influence slicing pre-pass")
	quiet := fs.Bool("quiet", false, "suppress per-request log lines")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	flow.SetEnabled(!*noslice)
	if fs.NArg() != 0 {
		fmt.Fprintf(errOut, "dcserved: unexpected arguments %v\n", fs.Args())
		return exitUsage
	}
	if *cacheBudget > 0 {
		explore.SetCacheBudget(*cacheBudget)
	}
	spillBudget := int64(0)
	if *memBudget != "" {
		b, err := explore.ParseByteSize(*memBudget)
		if err != nil {
			fmt.Fprintf(errOut, "dcserved: -mem-budget: %v\n", err)
			return exitUsage
		}
		spillBudget = b
	}

	logger := log.New(errOut, "dcserved: ", log.LstdFlags)
	cfg := serve.Config{
		MaxInFlight:      *inflight,
		TenantBudget:     *tenantBudget,
		MaxPrograms:      *maxPrograms,
		MaxBodyBytes:     *maxBody,
		VerdictCacheSize: *verdictCache,
		SpillBudget:      spillBudget,
		SpillDir:         *spillDir,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := serve.NewServer(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Printf("listener: %v", err)
		return exitFail
	case sig := <-sigCh:
		logger.Printf("received %v, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new verdicts and finish the in-flight ones, then stop the
	// listener; the order matters — closing the listener first would sever
	// clients whose evaluations are about to complete.
	drainErr := srv.Shutdown(ctx)
	httpErr := httpSrv.Shutdown(ctx)
	if drainErr != nil || (httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed)) {
		logger.Printf("drain: %v, listener: %v", drainErr, httpErr)
		return exitFail
	}
	logger.Printf("drained cleanly")
	return exitOK
}
