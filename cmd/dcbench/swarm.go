package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/serve"
	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// runSwarm boots an in-process dcserved on a loopback port and drives it
// with the same deterministic client swarm the serve test suite uses:
// `clients` concurrent clients each replaying the full corpus mix `rounds`
// times, every response checked against the corpus ground truth. It prints
// the throughput/latency record plus the cache counters that show how many
// of those requests collapsed into actual evaluations.
func runSwarm(clients, rounds int) error {
	srv := serve.NewServer(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("swarm: %w", err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	items := corpus.Items()
	bodies := make([][]byte, len(items))
	for i, item := range items {
		var b bytes.Buffer
		if err := api.Encode(&b, item.Request); err != nil {
			return err
		}
		bodies[i] = b.Bytes()
	}

	var (
		mu       sync.Mutex
		lat      []time.Duration
		refused  atomic.Int64
		failures atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			local := make([]time.Duration, 0, rounds*len(items))
			for r := 0; r < rounds; r++ {
				for i := range items {
					idx := (c + i) % len(items)
					t0 := time.Now()
					verdict, retries, err := askOnce(client, base, bodies[idx])
					local = append(local, time.Since(t0))
					refused.Add(int64(retries))
					if err != nil || verdict != items[idx].Verdict {
						failures.Add(1)
					}
				}
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	total := len(lat)
	fmt.Printf("swarm: %d clients × %d rounds × %d items = %d requests in %s\n",
		clients, rounds, len(items), total, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput %.0f req/s, p50 %s, p99 %s, %d refusals (429), %d wrong verdicts\n",
		float64(total)/elapsed.Seconds(),
		lat[total/2].Round(time.Microsecond),
		lat[total*99/100].Round(time.Microsecond),
		refused.Load(), failures.Load())
	s := explore.CacheStats()
	fmt.Printf("graph cache: %d builds, %d hits, %d misses, %d bypasses, %d evictions, %d graphs resident (%d states)\n",
		s.Builds, s.Hits, s.Misses, s.Bypasses, s.Evictions, s.Resident, s.States)
	if failures.Load() > 0 {
		return fmt.Errorf("swarm: %d responses carried the wrong verdict", failures.Load())
	}
	return nil
}

// askOnce posts one pre-encoded request, retrying on 429, and returns the
// verdict string.
func askOnce(client *http.Client, base string, body []byte) (string, int, error) {
	retries := 0
	for {
		resp, err := client.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", retries, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", retries, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retries++
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if after < 1 {
				after = 1
			}
			time.Sleep(time.Duration(after) * 5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return "", retries, fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		var v api.Response
		if err := json.Unmarshal(b, &v); err != nil {
			return "", retries, err
		}
		return v.Verdict, retries, nil
	}
}
