// Command dcbench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	dcbench            # run all experiments (E1..E13)
//	dcbench E4 E9      # run selected experiments
//	dcbench -j 0       # explore state spaces with all CPUs
//	dcbench -list      # list experiment ids
//	dcbench -stats     # also print graph-cache and spill counters after the run
//	dcbench -swarm 64  # drive an in-process dcserved with a client swarm
//	dcbench -spill 8   # sweep the out-of-core engine over the ring-8 state space
//	dcbench -slice 7   # measure cone-of-influence slicing on composed systems
//	dcbench -incr 7    # measure incremental re-verification of scripted edits
//
// -swarm N boots the dcserved verdict service on a loopback port and
// replays the deterministic serve corpus from N concurrent clients
// (-swarm-rounds replays each), printing throughput, p50/p99 latency,
// refusal counts, and the graph-cache counters. Every response is checked
// against ground truth; a wrong verdict under load makes the run fail.
//
// -spill n streams the full K^n state space of the n-process token ring
// through explore.Scan at each -spill-budgets memory budget (plus an
// unbudgeted in-RAM baseline unless -spill-baseline=false) and prints one
// JSON line per run: states/sec, peak RSS, bytes spilled, Bloom hit rate.
// `make bench-spill` records the sweep in BENCH_spill.json.
//
// -slice n runs the composed slicing benchmarks — the n-process watched
// token ring and the paired memory-access systems — once full-width and
// once through the cone-of-influence pre-pass, asserting the verdicts are
// identical and printing one JSON line per system with both wall times.
// `make bench-slice` records the sweep in BENCH_slice.json.
//
// -incr n replays scripted edits (watchdog-guard tweak, ring-guard tweak,
// assignment change, action add/remove) against the n-process token ring
// and races the incremental pipeline — revision diff, in-place CSR graph
// repair, verdict preservation — against a from-scratch rebuild, asserting
// identical verdicts and printing one JSON line per edit with both wall
// times. `make bench-incr` records the sweep in BENCH_incr.json.
//
// -j N sets the worker count for state-space exploration and simulation
// campaigns (0 = all CPUs, default 1 = sequential); the tables are
// identical at any setting.
//
// -stats prints the process-wide exploration cache counters (builds, hits,
// misses, bypasses, evictions, resident graphs/states) after the selected
// experiments complete — the observable proof that graph reuse is cutting
// Build calls.
//
// -cpuprofile f and -memprofile f write pprof profiles of the run, so the
// exploration hot path can be inspected with `go tool pprof` (see
// `make profile`). The CPU profile covers the whole run; the heap profile is
// written after all experiments complete.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"detcorr/internal/experiments"
	"detcorr/internal/explore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	jobs := fs.Int("j", 1, "exploration workers; 0 means all CPUs")
	stats := fs.Bool("stats", false, "print graph-cache counters after the run")
	swarm := fs.Int("swarm", 0, "drive an in-process dcserved with this many concurrent clients instead of running experiments")
	swarmRounds := fs.Int("swarm-rounds", 3, "corpus replays per swarm client")
	spill := fs.Int("spill", 0, "sweep the out-of-core engine over the full state space of an n-process token ring instead of running experiments")
	slice := fs.Int("slice", 0, "measure the cone-of-influence slicing pre-pass on composed systems (n sizes the watched token ring) instead of running experiments")
	incr := fs.Int("incr", 0, "measure incremental re-verification of scripted edits on an n-process token ring instead of running experiments")
	spillBudgets := fs.String("spill-budgets", "16M,64M,256M", "comma-separated memory budgets for the -spill sweep")
	spillBaseline := fs.Bool("spill-baseline", true, "include the unbudgeted in-RAM scan in the -spill sweep")
	spillDir := fs.String("spill-dir", "", "directory for the -spill sweep's spill files (default: the OS temp directory)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dcbench: memprofile:", err)
			}
		}()
	}
	if *jobs == 0 {
		*jobs = explore.AutoParallelism()
	}
	explore.SetDefaultParallelism(*jobs)
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *swarm > 0 {
		return runSwarm(*swarm, *swarmRounds)
	}
	if *spill > 0 {
		return runSpill(*spill, *spillBudgets, *spillDir, *spillBaseline)
	}
	if *slice > 0 {
		return runSlice(*slice)
	}
	if *incr > 0 {
		return runIncr(*incr)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(table.Markdown())
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *stats {
		s := explore.CacheStats()
		fmt.Printf("graph cache: %d builds, %d hits, %d misses, %d bypasses, %d evictions, %d graphs resident (%d states)\n",
			s.Builds, s.Hits, s.Misses, s.Bypasses, s.Evictions, s.Resident, s.States)
		sp := explore.SpillCounters()
		fmt.Printf("spill: %d frontier runs, %d bytes spilled, front hit rate %.4f (%d hits, %d misses), %d shard probes, %d merges\n",
			sp.FrontierRuns, sp.BytesSpilled, sp.BloomHitRate(), sp.FrontHits, sp.FrontMisses, sp.ShardProbes, sp.ShardMerges)
	}
	return nil
}
