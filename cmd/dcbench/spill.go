package main

// The -spill sweep: the out-of-core engine's evidence record. It streams
// the Dijkstra token ring's full state space (K^n states for ring -spill n)
// through explore.Scan at each budget in -spill-budgets, plus an in-RAM
// baseline, and prints one JSON document per line with throughput, peak
// RSS, and the spill counters — `make bench-spill` redirects the output to
// BENCH_spill.json. The ring is the sweep's subject because its state
// space grows as n^n: ring 8 fits RAM comfortably, ring 9 (387M states)
// already needs gigabytes for the in-RAM scan queue, and the sweep shows
// the budgeted runs completing inside their budgets instead.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/state"
	"detcorr/internal/tokenring"
)

// spillRow is one sweep measurement, encoded as a JSON line.
type spillRow struct {
	Ring         int     `json:"ring"`
	Budget       int64   `json:"budget_bytes"` // 0 = in-RAM baseline
	States       int     `json:"states"`
	Edges        int     `json:"edges"`
	Seconds      float64 `json:"seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"` // VmHWM after the run; -1 if unreadable
	FrontierRuns int64   `json:"frontier_runs"`
	SpillBytes   int64   `json:"spill_bytes"`
	BloomHitRate float64 `json:"bloom_hit_rate"`
	ShardProbes  int64   `json:"shard_probes"`
	ShardMerges  int64   `json:"shard_merges"`
}

// runSpill sweeps the ring scan over the requested budgets (ascending),
// then the unbudgeted in-RAM baseline last. The order matters where the
// kernel refuses the peak-RSS reset (see spillMeasure): with monotone
// VmHWM, ascending budgets keep every row an honest figure for its own
// run, and the baseline — the largest resident set of the sweep by far —
// cannot taint the budgeted rows from the front.
func runSpill(ring int, budgets string, dir string, baseline bool) error {
	sys := tokenring.MustNew(ring, ring)
	var bs []int64
	for _, f := range strings.Split(budgets, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := explore.ParseByteSize(f)
		if err != nil {
			return fmt.Errorf("-spill-budgets: %w", err)
		}
		bs = append(bs, b)
	}
	if len(bs) == 0 {
		return fmt.Errorf("-spill-budgets: no budgets given")
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	for _, b := range bs {
		if err := spillMeasure(enc, sys, ring, b, dir); err != nil {
			return err
		}
		// Rows take minutes at ring 9; flush each as it lands so an
		// interrupted sweep still leaves its completed rows on record.
		if err := out.Flush(); err != nil {
			return err
		}
	}
	if baseline {
		if err := spillMeasure(enc, sys, ring, -1, dir); err != nil {
			return err
		}
	}
	return nil
}

// spillMeasure runs one full-space scan (budget -1 = in-RAM) and emits its
// row. Peak RSS is reset via /proc/self/clear_refs before the run where the
// kernel allows it, so the figure isolates this run's high-water mark;
// where it does not, VmHWM is the process-lifetime peak — still an honest
// upper bound for each row under runSpill's smallest-footprint-first
// order.
func spillMeasure(enc *json.Encoder, sys *tokenring.System, ring int, budget int64, dir string) error {
	resetPeakRSS()
	explore.ResetSpillCounters()
	opts := explore.ScanOptions{MemBudget: budget, SpillDir: dir}
	start := time.Now()
	stats, err := explore.Scan(sys.Ring, state.True, opts, explore.Scanner{})
	if err != nil {
		return fmt.Errorf("ring %d budget %d: %w", ring, budget, err)
	}
	secs := time.Since(start).Seconds()
	sc := explore.SpillCounters()
	row := spillRow{
		Ring:         ring,
		Budget:       max64(budget, 0),
		States:       stats.States,
		Edges:        stats.Edges,
		Seconds:      secs,
		StatesPerSec: float64(stats.States) / secs,
		PeakRSSBytes: peakRSS(),
		FrontierRuns: sc.FrontierRuns,
		SpillBytes:   sc.BytesSpilled,
		BloomHitRate: sc.BloomHitRate(),
		ShardProbes:  sc.ShardProbes,
		ShardMerges:  sc.ShardMerges,
	}
	return enc.Encode(row)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// peakRSS reads the process's high-water resident set (VmHWM) in bytes,
// or -1 where /proc is unavailable.
func peakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return -1
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return -1
		}
		return kb << 10
	}
	return -1
}

// resetPeakRSS asks the kernel to reset VmHWM (clear_refs code 5); best
// effort — containers commonly refuse it.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}
