package main

// The -slice sweep measures the cone-of-influence pre-pass end to end: for
// each composed benchmark system it runs the same verdict twice — once on a
// fresh, unregistered compile (the hooks cannot see it, so the check
// explores the full product space) and once on a flow-certified compile
// (the slicer serves the verdict from the cone's state space) — and prints
// one JSON line per system with both wall times and state counts. The
// verdicts are asserted identical; a divergence fails the run. `make
// bench-slice` records the sweep in BENCH_slice.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/explore/difftest"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// sliceRow is one benchmark line of BENCH_slice.json.
type sliceRow struct {
	Bench        string  `json:"bench"`
	Check        string  `json:"check"`
	Target       string  `json:"target"`
	FullStates   float64 `json:"full_states"`
	SlicedStates float64 `json:"sliced_states"`
	FullMS       float64 `json:"full_ms"`
	SlicedMS     float64 `json:"sliced_ms"`
	Speedup      float64 `json:"speedup"`
	Verdict      string  `json:"verdict"`
}

// sliceBench is one composed system with the verdict to measure on it.
type sliceBench struct {
	name   string
	src    string
	check  string // "converges" or "closed"
	target string
}

// runSlice sweeps the slicing benchmarks. n sizes the watched token ring
// (n machines with counters 0..n-1, plus the watchdog detector).
func runSlice(n int) error {
	benches := []sliceBench{
		{"ring_watched_" + fmt.Sprint(n), difftest.RingWatchedSource(n, n), "converges", "Legit"},
		{"memaccess_pair", difftest.MemaccessPairSource, "closed", "FS"},
	}
	enc := json.NewEncoder(os.Stdout)
	for _, b := range benches {
		row, err := sliceMeasure(b)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

func sliceMeasure(b sliceBench) (*sliceRow, error) {
	run := func(certify bool) (time.Duration, error, *gcl.File) {
		f, err := gcl.ParseAndCompile(b.src)
		if err != nil {
			return 0, err, nil
		}
		if certify {
			if err := flow.Certify(f); err != nil {
				return 0, err, nil
			}
		}
		p, ok := f.Pred(b.target)
		if !ok {
			return 0, fmt.Errorf("no predicate %q", b.target), nil
		}
		start := time.Now()
		var verdict error
		switch b.check {
		case "converges":
			verdict = spec.CheckConverges(f.Program, state.True, p)
		case "closed":
			verdict = spec.CheckClosed(f.Program, p)
		default:
			return 0, fmt.Errorf("unknown check %q", b.check), nil
		}
		dur := time.Since(start)
		// Release the graphs so the two measurements never share cache
		// residency (they use distinct program pointers regardless).
		explore.EvictProgram(f.Program)
		return dur, verdict, f
	}

	fullDur, fullVerdict, f := run(false)
	if f == nil {
		return nil, fullVerdict
	}
	slicedDur, slicedVerdict, sf := run(true)
	if sf == nil {
		return nil, slicedVerdict
	}
	if errString(fullVerdict) != errString(slicedVerdict) {
		return nil, fmt.Errorf("verdicts diverge: full %v, sliced %v", fullVerdict, slicedVerdict)
	}

	row := &sliceRow{
		Bench:   b.name,
		Check:   b.check,
		Target:  b.target,
		FullMS:  float64(fullDur.Microseconds()) / 1e3,
		Speedup: float64(fullDur) / float64(slicedDur),
		Verdict: verdictWord(fullVerdict),
	}
	row.SlicedMS = float64(slicedDur.Microseconds()) / 1e3
	if sl, err := flow.SliceFile(sf, b.target); err == nil {
		row.FullStates = sl.FullStates
		row.SlicedStates = sl.SlicedStates
	}
	return row, nil
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func verdictWord(err error) string {
	if err == nil {
		return "holds"
	}
	return "fails"
}
