package main

// The -incr sweep measures incremental re-verification end to end. Each row
// is one scripted edit of an n-process token ring: the editor-loop path
// (diff the revisions, repair the cached transition graphs in place,
// re-check only if the edit reaches the verdict) races the from-scratch
// path (fresh compile, fresh exploration). Verdicts are asserted identical;
// a divergence fails the run. `make bench-incr` records the sweep in
// BENCH_incr.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/explore/difftest"
	"detcorr/internal/flow"
	"detcorr/internal/serve"
	"detcorr/internal/serve/api"
	"detcorr/internal/state"
)

// incrRow is one benchmark line of BENCH_incr.json. IncrMS is the whole
// incremental lane; CompileMS and ReverdictMS split it into compiling and
// certifying the new revision versus the diff/repair/re-verdict pipeline —
// a service with the revision already registered (dcserved /v1/revise)
// pays only the latter.
type incrRow struct {
	Bench       string   `json:"bench"`
	Edit        string   `json:"edit"`
	Check       string   `json:"check"`
	Affected    []string `json:"affected_preds"`
	Preserved   bool     `json:"preserved"`
	Repaired    int      `json:"graphs_repaired"`
	FullMS      float64  `json:"full_ms"`
	IncrMS      float64  `json:"incr_ms"`
	CompileMS   float64  `json:"compile_ms"`
	ReverdictMS float64  `json:"reverdict_ms"`
	Speedup     float64  `json:"speedup"`
	Verdict     string   `json:"verdict"`
}

// incrBench is one scripted edit: old source, new source, and the verdict
// to measure across the revision.
type incrBench struct {
	bench, edit string
	oldSrc      string
	newSrc      string
	req         api.Request
}

// mustEdit is strings.Replace that fails loudly when the anchor is missing,
// so a source-generator change cannot silently turn an edit into a no-op.
func mustEdit(src, old, new string) (string, error) {
	if !strings.Contains(src, old) {
		return "", fmt.Errorf("edit anchor %q not in source", old)
	}
	return strings.Replace(src, old, new, 1), nil
}

// runIncr sweeps the incremental re-verification benchmarks over the
// n-process, K=n token ring (and its watched variant).
func runIncr(n int) error {
	ring := difftest.RingSource(n, n)
	watched := difftest.RingWatchedSource(n, n)
	corrects := api.Request{Check: api.CheckCorrects, Z: "Legit", X: "Legit"}

	edits := []struct {
		bench, edit, src, old, new string
	}{
		// The headline row: a watchdog-guard tweak lands outside every ring
		// predicate's cone, so the corrector verdict is preserved outright —
		// the incremental path never re-explores.
		{"ring_watched_" + fmt.Sprint(n), "watchdog-guard", watched,
			"action mon.watch :: x0 == 0 & !alarm", "action mon.watch :: x0 == 1 & !alarm"},
		// A single-guard tweak inside the cone: the graph is repaired edge
		// by edge, and the verdict re-decided on the repaired graph.
		{"ring_" + fmt.Sprint(n), "guard-tweak", ring,
			"action move1 :: x1 != x0", "action move1 :: !(!(x1 != x0))"},
		{"ring_" + fmt.Sprint(n), "assign-change", ring,
			"x0 := (x0 + 1)", "x0 := (x0 + 2)"},
		{"ring_" + fmt.Sprint(n), "action-add", ring,
			"\nfault corrupt0",
			fmt.Sprintf("\naction nudge1 :: x1 != x0 -> x1 := x0\n\nfault corrupt0")},
		{"ring_" + fmt.Sprint(n), "action-remove", ring,
			fmt.Sprintf("action move%d :: x%d != x%d -> x%d := x%d\n", n-1, n-1, n-2, n-1, n-2), ""},
	}

	enc := json.NewEncoder(os.Stdout)
	for _, e := range edits {
		newSrc, err := mustEdit(e.src, e.old, e.new)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", e.bench, e.edit, err)
		}
		row, err := incrMeasure(incrBench{e.bench, e.edit, e.src, newSrc, corrects})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", e.bench, e.edit, err)
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// incrMeasure warms the caches on the old revision, then times the
// incremental pipeline against a from-scratch rebuild of the new revision.
func incrMeasure(b incrBench) (*incrRow, error) {
	ctx := context.Background()

	// Warm state: the old revision has been checked once, as in an editor
	// session or a dcserved registry.
	old, err := serve.LoadSource(b.oldSrc)
	if err != nil {
		return nil, err
	}
	warmReq := b.req
	warmReq.Program = b.oldSrc
	oldResp, err := serve.Eval(ctx, old, warmReq)
	if err != nil {
		return nil, err
	}

	// Incremental path: diff, migrate/repair the cached graphs, preserve or
	// re-check. This is exactly the dctl watch / dcserved /v1/revise
	// pipeline.
	incrReq := b.req
	incrReq.Program = b.newSrc
	start := time.Now()
	f, err := serve.LoadSource(b.newSrc)
	if err != nil {
		return nil, err
	}
	compileDur := time.Since(start)
	plan := flow.PlanRepair(old.AST, f.AST)
	im := flow.AffectedBy(old.AST, f.AST)
	resolve := func(initName string) (state.Predicate, bool) {
		if initName == state.True.String() {
			return state.True, true
		}
		if plan.SamePreds[initName] {
			if p, ok := old.Pred(initName); ok {
				return p, true
			}
		}
		return state.Predicate{}, false
	}
	st := explore.MigrateProgram(old.Program, f.Program, plan.Graph, resolve)
	var incrResp *api.Response
	preserved := serve.Preservable(incrReq, oldResp, plan, im, f)
	if preserved {
		incrResp = oldResp
	} else {
		incrResp, err = serve.Eval(ctx, f, incrReq)
		if err != nil {
			return nil, err
		}
	}
	incrDur := time.Since(start)

	// From-scratch path: a fresh compile shares nothing with the warm state
	// (distinct program identity), so this explores from zero.
	start = time.Now()
	ff, err := serve.LoadSource(b.newSrc)
	if err != nil {
		return nil, err
	}
	fullReq := b.req
	fullReq.Program = b.newSrc
	fullResp, err := serve.Eval(ctx, ff, fullReq)
	if err != nil {
		return nil, err
	}
	fullDur := time.Since(start)

	if incrResp.Verdict != fullResp.Verdict {
		return nil, fmt.Errorf("verdicts diverge: incremental %q, from-scratch %q",
			incrResp.Verdict, fullResp.Verdict)
	}

	return &incrRow{
		Bench:       b.bench,
		Edit:        b.edit,
		Check:       b.req.Check,
		Affected:    append([]string{}, im.AffectedPreds...),
		Preserved:   preserved,
		Repaired:    st.Rebound + st.Repaired,
		FullMS:      float64(fullDur.Microseconds()) / 1e3,
		IncrMS:      float64(incrDur.Microseconds()) / 1e3,
		CompileMS:   float64(compileDur.Microseconds()) / 1e3,
		ReverdictMS: float64((incrDur - compileDur).Microseconds()) / 1e3,
		Speedup:     float64(fullDur) / float64(incrDur),
		Verdict:     incrResp.Verdict,
	}, nil
}
