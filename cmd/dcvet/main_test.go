package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this file's position, so
// the test is independent of the working directory `go test` chose.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestModuleSelfClean is the live gate the whole suite hangs off: dcvet
// run over the module that ships it must report nothing. Any analyzer
// regression, stale annotation, or real invariant violation fails here.
func TestModuleSelfClean(t *testing.T) {
	root := moduleRoot(t)
	var out, errs bytes.Buffer
	if code := run([]string{"-C", root}, &out, &errs); code != exitOK {
		t.Fatalf("dcvet over its own module: exit %d\nstdout:\n%sstderr:\n%s",
			code, out.String(), errs.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run should print nothing, got:\n%s", out.String())
	}

	out.Reset()
	errs.Reset()
	if code := run([]string{"-C", root, "-json"}, &out, &errs); code != exitOK {
		t.Fatalf("dcvet -json: exit %d\nstderr:\n%s", code, errs.String())
	}
	if got := out.String(); got != "[]\n" {
		t.Errorf("clean -json run should print an empty array, got %q", got)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-nosuchflag"},
		{"stray-argument"},
		{"-C", t.TempDir()}, // no go.mod anywhere above a fresh temp dir
	}
	for _, argv := range cases {
		var out, errs bytes.Buffer
		if code := run(argv, &out, &errs); code != exitUsage {
			t.Errorf("run(%q) = %d, want %d (usage error)", argv, code, exitUsage)
		}
	}
}
