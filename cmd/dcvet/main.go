// Command dcvet runs the repository's analyzer suite (see
// internal/analyzers and its subpackages) over the whole module: the
// zero-allocation kernel contract, atomic-field access discipline, cache
// key completeness, CSR-arena write-once rules, exit-code and DC-code
// documentation agreement, and .gitignore/source shadowing. It is built on
// go/parser and go/types alone, so it runs wherever the go toolchain does
// — no golang.org/x/tools, no network.
//
// Usage:
//
//	dcvet [-C dir] [-json] [-<analyzer>=false ...]
//
// The suite always analyzes the entire module containing -C (default the
// current directory); individual analyzers are disabled by name, e.g.
// -zeroalloc=false. With -json, findings are emitted as a JSON array of
// {analyzer, file, line, col, message} objects instead of vet-style lines.
//
// Exit codes follow the dctl convention: 0 clean; 1 findings;
// 2 usage error; 3 load or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"detcorr/internal/analyzers"
	"detcorr/internal/analyzers/all"
)

const (
	exitOK       = 0
	exitFindings = 1
	exitUsage    = 2
	exitLoad     = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: parse flags, load the module, run the
// enabled analyzers, print findings, and map the outcome to an exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	dir := fs.String("C", ".", "module root, or any directory beneath it")
	suite := all.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "dcvet: unexpected arguments; the suite always runs over the whole module")
		return exitUsage
	}
	root, err := findRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "dcvet: %v\n", err)
		return exitUsage
	}
	m, err := analyzers.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "dcvet: %v\n", err)
		return exitLoad
	}
	var active []*analyzers.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	findings := analyzers.Run(m, active)
	if *jsonOut {
		if findings == nil {
			findings = []analyzers.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "dcvet: %v\n", err)
			return exitLoad
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		return exitFindings
	}
	return exitOK
}

// findRoot walks up from dir to the nearest directory containing go.mod.
func findRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for p := abs; ; {
		if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
			return p, nil
		}
		parent := filepath.Dir(p)
		if parent == p {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		p = parent
	}
}
