// Command dccodes runs the repo's DC-code vet pass (see
// internal/analyzers/dccodes): in every listed package directory, exported
// Code* constants and the package doc header's DC-code table must agree in
// both directions. With no arguments it checks the two packages that
// declare codes, internal/lint and internal/prove.
//
// Exit codes: 0 clean, 1 findings, 2 usage or parse failure.
package main

import (
	"fmt"
	"os"

	"detcorr/internal/analyzers/dccodes"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"internal/lint", "internal/prove"}
	}
	found := false
	for _, dir := range dirs {
		findings, err := dccodes.CheckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dccodes: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			found = true
		}
	}
	if found {
		os.Exit(1)
	}
}
