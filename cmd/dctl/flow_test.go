package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlowHuman(t *testing.T) {
	out := runOK(t, "flow", file)
	for _, want := range []string{
		"program memaccess",
		"read0",
		"writes {data}",
		"val -> data (read0)",
		"DataCorrect",
		"cone {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flow output missing %q:\n%s", want, out)
		}
	}
}

func TestFlowJSON(t *testing.T) {
	out := runOK(t, "flow", file, "-json")
	var rep struct {
		Program string `json:"program"`
		Actions []struct {
			Name   string   `json:"name"`
			Reads  []string `json:"reads"`
			Writes []string `json:"writes"`
		} `json:"actions"`
		Edges []struct {
			From, To, Action string
		} `json:"edges"`
		Preds []struct {
			Name     string   `json:"name"`
			ConeVars []string `json:"cone_vars"`
		} `json:"preds"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Program != "memaccess" || len(rep.Actions) != 4 || len(rep.Edges) == 0 || len(rep.Preds) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, a := range rep.Actions {
		if a.Name == "detect" {
			if strings.Join(a.Reads, ",") != "present,z1" || strings.Join(a.Writes, ",") != "z1" {
				t.Errorf("detect sets wrong: %+v", a)
			}
		}
	}
}

func TestFlowAgainst(t *testing.T) {
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	// An edit to the detect guard: predicates whose cone contains z1 are
	// affected, the rest carry their verdicts over.
	edited := strings.Replace(string(src),
		"action detect  :: present & !z1 -> z1 := true",
		"action detect  :: present -> z1 := true", 1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	dir := t.TempDir()
	newPath := filepath.Join(dir, "new.gcl")
	if err := os.WriteFile(newPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "flow", newPath, "-against", file)
	if !strings.Contains(out, "changed actions: detect") {
		t.Errorf("missing changed action:\n%s", out)
	}
	if !strings.Contains(out, "affected predicates:") {
		t.Errorf("missing affected predicates:\n%s", out)
	}
	// Identity diff: nothing affected.
	out = runOK(t, "flow", file, "-against", file)
	if !strings.Contains(out, "affected predicates: none") {
		t.Errorf("self-diff should affect nothing:\n%s", out)
	}
}

func TestFlowNoSliceFlag(t *testing.T) {
	// -noslice must parse on every loading subcommand; the check results
	// are identical either way (that equality is pinned by the slice
	// difftest in internal/flow).
	out := runOK(t, "detects", file, "-noslice", "-z", "Z1p", "-x", "X1", "-from", "U1")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("detects -noslice should hold:\n%s", out)
	}
}
