// Command dctl checks and simulates guarded-command programs written in the
// GCL language (see package detcorr/internal/gcl for the syntax).
//
// Usage:
//
//	dctl info <file.gcl>
//	    Print the program's schema, actions, faults and predicates.
//
//	dctl check <file.gcl> -kind failsafe|nonmasking|masking -invariant S
//	    [-recovery R] [-goal P] [-never P]
//	    Decide F-tolerance of the program for the specification "never a
//	    state satisfying P_never (safety), and from anywhere eventually
//	    P_goal (liveness)", from invariant S. Predicates are named 'pred'
//	    declarations in the file.
//
//	dctl detects <file.gcl> -z Z -x X -from U [-tolerant kind]
//	    Check 'Z detects X' in the program from U, optionally as a
//	    fail-safe/nonmasking/masking F-tolerant detector for the file's
//	    fault class.
//
//	dctl corrects <file.gcl> -z Z -x X -from U [-tolerant kind]
//	    Check 'Z corrects X' likewise.
//
//	dctl simulate <file.gcl> -init "a=1,b=2" [-steps N] [-seed S]
//	    [-faults K] [-goal P] [-never P] [-trace]
//	    Run one seeded simulation with fault injection and online monitors.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dctl:", err)
		os.Exit(1)
	}
}
