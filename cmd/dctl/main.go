// Command dctl checks and simulates guarded-command programs written in the
// GCL language (see package detcorr/internal/gcl for the syntax).
//
// Usage:
//
//	dctl info <file.gcl>
//	    Print the program's schema, actions, faults and predicates.
//
//	dctl lint [-json] <file.gcl>...
//	    Run the dclint static analyzers (dead guards, domain overflow,
//	    unused declarations, write-write conflicts, vacuous predicates,
//	    fault hygiene) without exploring the state space. Exits non-zero
//	    only on error-severity findings. The analyzers also run
//	    automatically before every other command that loads a file.
//
//	dctl flow <file.gcl> [-json] [-against old.gcl]
//	    Print the whole-program dependence analysis: per-action read/write
//	    sets, component and span declarations, the variable dependence
//	    edges, and each predicate's cone of influence with the size of its
//	    compiled slice (the same slice the checking commands use as a
//	    sound pre-pass; opt out with -noslice on any checking command).
//	    With -against, diff against an older revision of the file and
//	    report which predicates' verdicts the edit can actually reach.
//
//	dctl prove <file.gcl> [-invariant S [-span T|auto]] [-z Z -x X] [-from U]
//	    [-converge G [-rank "e1,e2"]] [-json]
//	    Discharge the per-action Hoare obligations of the paper's component
//	    conditions by abstract interpretation, without exploring the state
//	    space: DC100 invariant closure, DC101 fault-span closure, DC102
//	    detector safeness/stability, DC103 convergence via a lexicographic
//	    ranking function (supplied with -rank or synthesized). Verdicts are
//	    three-valued; exit code 4 means inconclusive — fall back to the
//	    exploration-based commands below, which decide everything.
//
//	dctl check <file.gcl> -kind failsafe|nonmasking|masking -invariant S
//	    [-recovery R] [-goal P] [-never P] [-j N] [-mem-budget B] [-spill-dir D]
//	    Decide F-tolerance of the program for the specification "never a
//	    state satisfying P_never (safety), and from anywhere eventually
//	    P_goal (liveness)", from invariant S. Predicates are named 'pred'
//	    declarations in the file. -j N explores the state space with N
//	    worker goroutines (0 = all CPUs); the result is identical at any
//	    worker count. -mem-budget B (e.g. 64M, 2G) bounds exploration
//	    memory: past the budget the visited set and BFS frontier spill to
//	    files under -spill-dir (default: the OS temp directory), with
//	    byte-identical results.
//
//	dctl detects <file.gcl> -z Z -x X -from U [-tolerant kind] [-j N]
//	    [-mem-budget B] [-spill-dir D]
//	    Check 'Z detects X' in the program from U, optionally as a
//	    fail-safe/nonmasking/masking F-tolerant detector for the file's
//	    fault class.
//
//	dctl corrects <file.gcl> -z Z -x X -from U [-tolerant kind] [-j N]
//	    [-mem-budget B] [-spill-dir D]
//	    Check 'Z corrects X' likewise.
//
//	dctl verdict <file.gcl> -check closure|detects|corrects|convergence|deadlock|prove
//	    [-invariant S] [-goal R] [-z Z -x X] [-from U] [-span T|auto]
//	    [-rank "e1,e2"] [-tolerant kind] [-faults] [-max-states N]
//	    [-mem-budget B] [-spill-dir D]
//	    Decide one property and print the verdict in the dcserved wire
//	    encoding (internal/serve/api). The evaluation and the JSON are
//	    shared with the dcserved daemon, so stdout is byte-identical to the
//	    daemon's response body for the same program and property. Lint
//	    errors exit with code 3 here (the source failed to load), matching
//	    the daemon's 422.
//
//	dctl simulate <file.gcl> -init "a=1,b=2" [-steps N] [-seed S]
//	    [-faults K] [-goal P] [-never P] [-trace]
//	    Run one seeded simulation with fault injection and online monitors.
//
//	dctl watch <file.gcl> [-check ... (the dctl verdict flags)]
//	    [-interval d] [-max-revisions N]
//	    Re-verify on every save: poll the file, and on each revision re-lint,
//	    diff against the previous revision, repair the cached transition
//	    graphs in place (internal/explore.Repair), and re-check only the
//	    verdicts the edit can have reached — everything else streams back as
//	    "preserved" without re-exploration. With -check it watches one
//	    property (same flags as dctl verdict); without, the closure of every
//	    declared predicate. Watches until interrupted, or for -max-revisions
//	    revisions.
//
// Diagnostics go to stderr; results go to stdout. Exit codes distinguish
// failure classes: 0 success; 1 a check, monitor, or lint run found a
// violation; 2 usage error; 3 the GCL source failed to parse or compile;
// 4 a proof attempt was inconclusive (dctl prove only).
package main

import (
	"errors"
	"fmt"
	"os"

	"detcorr/internal/gcl"
)

// Process exit codes.
const (
	exitOK      = 0
	exitFail    = 1 // a check, simulation monitor, or lint run found a violation
	exitUsage   = 2 // bad command line
	exitParse   = 3 // the GCL source failed to parse or compile
	exitUnknown = 4 // a proof attempt was inconclusive (dctl prove)
)

// exitError carries a specific process exit code through the error chain.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

// withCode tags err with an exit code; nil stays nil.
func withCode(code int, err error) error {
	if err == nil {
		return nil
	}
	return &exitError{code: code, err: err}
}

func usageErrorf(format string, args ...any) error {
	return withCode(exitUsage, fmt.Errorf(format, args...))
}

// exitCode classifies an error from run into a process exit code: tagged
// errors keep their code, untagged GCL syntax errors are parse failures,
// and everything else is a failed check.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	var se *gcl.SyntaxError
	if errors.As(err, &se) {
		return exitParse
	}
	return exitFail
}

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dctl:", err)
	}
	os.Exit(exitCode(err))
}
