package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/lint"
)

const file = "testdata/memaccess.gcl"

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut strings.Builder
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("dctl %v: %v\noutput:\n%s%s", args, err, out.String(), errOut.String())
	}
	return out.String()
}

func runErr(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut strings.Builder
	if err := run(args, &out, &errOut); err == nil {
		t.Fatalf("dctl %v should fail\noutput:\n%s%s", args, out.String(), errOut.String())
	}
	return out.String()
}

// runCode runs dctl and returns the process exit code it would produce,
// plus stdout and stderr.
func runCode(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, &out, &errOut)
	return exitCode(err), out.String(), errOut.String()
}

func TestInfo(t *testing.T) {
	out := runOK(t, "info", file)
	for _, want := range []string{"program memaccess", "detect", "pageout", "DataCorrect", "24 states"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckMasking(t *testing.T) {
	out := runOK(t, "check", file, "-kind", "masking", "-invariant", "S",
		"-goal", "DataCorrect", "-never", "DataWrong")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("masking check should hold:\n%s", out)
	}
}

func TestCheckParallelFlag(t *testing.T) {
	// -j is process-wide; restore the default so other tests keep the
	// engine they expect.
	defer explore.SetDefaultParallelism(explore.DefaultParallelism())
	want := runOK(t, "check", file, "-kind", "masking", "-invariant", "S",
		"-goal", "DataCorrect", "-never", "DataWrong")
	for _, j := range []string{"0", "4"} {
		out := runOK(t, "check", file, "-j", j, "-kind", "masking", "-invariant", "S",
			"-goal", "DataCorrect", "-never", "DataWrong")
		if out != want {
			t.Errorf("-j %s changes the check output:\nseq:\n%s\npar:\n%s", j, want, out)
		}
	}
	out := runOK(t, "detects", file, "-j", "4", "-z", "Z1p", "-x", "X1", "-from", "U1")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("parallel detects output:\n%s", out)
	}
}

func TestCheckNonmaskingKinds(t *testing.T) {
	for _, kind := range []string{"failsafe", "nonmasking"} {
		out := runOK(t, "check", file, "-kind", kind, "-invariant", "S",
			"-goal", "DataCorrect", "-never", "DataWrong")
		if !strings.Contains(out, "HOLDS") {
			t.Errorf("%s check should hold:\n%s", kind, out)
		}
	}
}

func TestCheckFailsWithoutInvariant(t *testing.T) {
	runErr(t, "check", file, "-kind", "masking")
}

func TestCheckUnknownPredicate(t *testing.T) {
	runErr(t, "check", file, "-kind", "masking", "-invariant", "Nope")
}

func TestDetects(t *testing.T) {
	out := runOK(t, "detects", file, "-z", "Z1p", "-x", "X1", "-from", "U1",
		"-tolerant", "failsafe")
	if !strings.Contains(out, "HOLDS") || !strings.Contains(out, "fail-safe-tolerant") &&
		!strings.Contains(out, "fail-safe") {
		t.Errorf("detects output:\n%s", out)
	}
}

func TestDetectsFailure(t *testing.T) {
	// Z1 does not detect DataCorrect: Safeness fails.
	out := runErr(t, "detects", file, "-z", "Z1p", "-x", "DataCorrect", "-from", "U1")
	if !strings.Contains(out, "FAILS") {
		t.Errorf("failing detects should print FAILS:\n%s", out)
	}
}

func TestCorrects(t *testing.T) {
	out := runOK(t, "corrects", file, "-z", "X1", "-x", "X1", "-from", "X1",
		"-tolerant", "nonmasking")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("corrects output:\n%s", out)
	}
}

func TestSimulate(t *testing.T) {
	out := runOK(t, "simulate", file,
		"-init", "present=1,val=1,data=bot",
		"-steps", "60", "-seed", "7", "-faults", "1",
		"-goal", "DataCorrect", "-never", "DataWrong", "-trace")
	if !strings.Contains(out, "steps=") {
		t.Errorf("simulate output:\n%s", out)
	}
	if !strings.Contains(out, "0 (present=true") {
		t.Errorf("trace should start at the initial state:\n%s", out)
	}
}

func TestDeadlockNone(t *testing.T) {
	// memaccess always has an enabled action (restore, detect, or a read),
	// so the hunt exhausts the space and reports no witness.
	out := runOK(t, "deadlock", file)
	if !strings.Contains(out, "no reachable deadlock") {
		t.Errorf("deadlock output:\n%s", out)
	}
	out = runOK(t, "deadlock", file, "-faults")
	if !strings.Contains(out, "no reachable deadlock") {
		t.Errorf("deadlock -faults output:\n%s", out)
	}
}

func TestDeadlockFound(t *testing.T) {
	const countdown = "testdata/countdown.gcl"
	// From Top the only run is 3 -> 2 -> 1 -> 0, halting at Zero.
	out := runErr(t, "deadlock", countdown, "-from", "Top")
	if !strings.Contains(out, "deadlock reached in 3 steps") {
		t.Errorf("deadlock trace output:\n%s", out)
	}
	if !strings.Contains(out, "(x=0)") {
		t.Errorf("trace should end at x=0:\n%s", out)
	}
	// Fault actions never rescue a deadlocked program (p ‖ F is only
	// p-maximal), so composing the bump fault keeps the verdict.
	out = runErr(t, "deadlock", countdown, "-from", "Top", "-faults")
	if !strings.Contains(out, "deadlock reached in 3 steps") {
		t.Errorf("deadlock -faults trace output:\n%s", out)
	}
}

func TestSimulateBadInit(t *testing.T) {
	runErr(t, "simulate", file, "-init", "present")
	runErr(t, "simulate", file, "-init", "present=zzz")
}

func TestTokenRingGCL(t *testing.T) {
	const ring = "testdata/ring3.gcl"
	out := runOK(t, "corrects", ring, "-z", "Legit", "-x", "Legit", "-tolerant", "nonmasking")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("ring corrector should hold:\n%s", out)
	}
	out = runOK(t, "check", ring, "-kind", "nonmasking", "-invariant", "Legit", "-goal", "Legit")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("ring nonmasking check should hold:\n%s", out)
	}
	// The ring is not masking tolerant: corruption transiently breaks the
	// one-token property and the never-predicate flags it.
	runErr(t, "check", ring, "-kind", "masking", "-invariant", "Legit", "-goal", "Legit", "-never", "Illegit")
}

func TestUsageErrors(t *testing.T) {
	runErr(t)
	runErr(t, "bogus", file)
	runErr(t, "info")
	runErr(t, "info", "testdata/does-not-exist.gcl")
	runErr(t, "detects", file, "-z", "Z1p") // missing -x
	runErr(t, "check", file, "-kind", "bogus", "-invariant", "S")
}

// writeGCL drops src into a temp file and returns its path.
func writeGCL(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.gcl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExitCodes(t *testing.T) {
	bad := writeGCL(t, "program p\nvar x : 0..2\naction a :: x < ; -> x := 0\n")
	overflow := writeGCL(t, "program p\nvar x : 0..2\naction a :: true -> x := 9\n")

	tests := []struct {
		name string
		args []string
		want int
	}{
		{"ok", []string{"info", file}, exitOK},
		{"check failure", []string{"detects", file, "-z", "Z1p", "-x", "DataCorrect", "-from", "U1"}, exitFail},
		{"lint error finding", []string{"info", overflow}, exitFail},
		{"usage no args", nil, exitUsage},
		{"usage unknown command", []string{"bogus", file}, exitUsage},
		{"usage missing file", []string{"info"}, exitUsage},
		{"usage missing flags", []string{"detects", file, "-z", "Z1p"}, exitUsage},
		{"usage bad kind", []string{"check", file, "-kind", "bogus", "-invariant", "S"}, exitUsage},
		{"usage unknown predicate", []string{"check", file, "-kind", "masking", "-invariant", "Nope"}, exitUsage},
		{"usage missing file on disk", []string{"info", "testdata/does-not-exist.gcl"}, exitUsage},
		{"parse error", []string{"info", bad}, exitParse},
		{"lint parse error", []string{"lint", bad}, exitFail},
	}
	for _, tt := range tests {
		code, _, _ := runCode(t, tt.args...)
		if code != tt.want {
			t.Errorf("%s: dctl %v: exit code = %d, want %d", tt.name, tt.args, code, tt.want)
		}
	}
}

func TestExitCodeClassifier(t *testing.T) {
	if got := exitCode(nil); got != exitOK {
		t.Errorf("exitCode(nil) = %d", got)
	}
	if got := exitCode(errors.New("check failed")); got != exitFail {
		t.Errorf("exitCode(plain) = %d, want %d", got, exitFail)
	}
	if got := exitCode(withCode(exitParse, errors.New("x"))); got != exitParse {
		t.Errorf("exitCode(withCode) = %d, want %d", got, exitParse)
	}
}

func TestLintCommand(t *testing.T) {
	// Shipped examples must be lint-clean at warning severity and above.
	code, out, _ := runCode(t, "lint", file, "testdata/ring3.gcl")
	if code != exitOK {
		t.Fatalf("lint over shipped testdata: exit %d\n%s", code, out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(line, "info:") {
			t.Errorf("shipped testdata should only have info findings, got: %s", line)
		}
	}

	dead := writeGCL(t, "program p\nvar x : 0..3\npred P :: x > 0\naction a :: x > 5 -> x := 0\naction b :: P -> x := 1\n")
	code, out, _ = runCode(t, "lint", dead)
	if code != exitOK {
		t.Fatalf("warnings alone must not fail lint: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "DC001") {
		t.Errorf("lint should report the dead guard:\n%s", out)
	}

	overflow := writeGCL(t, "program p\nvar x : 0..2\naction a :: true -> x := 9\n")
	code, out, _ = runCode(t, "lint", overflow)
	if code != exitFail {
		t.Fatalf("error findings must fail lint: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "DC002") {
		t.Errorf("lint should report the overflow:\n%s", out)
	}
}

func TestLintJSON(t *testing.T) {
	dead := writeGCL(t, "program p\nvar x : 0..3\npred P :: x > 0\naction a :: x > 5 -> x := 0\naction b :: P -> x := 1\n")
	code, out, _ := runCode(t, "lint", "-json", dead)
	if code != exitOK {
		t.Fatalf("lint -json: exit %d\n%s", code, out)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("lint -json output is not valid JSON: %v\n%s", err, out)
	}
	found := false
	for _, d := range diags {
		if d.Code == lint.CodeDeadGuard && d.Severity == lint.Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("lint -json should include a DC001 warning: %v", diags)
	}

	// A clean file must still emit a JSON array, not null.
	clean := writeGCL(t, "program p\nvar x : 0..2\npred All :: x >= 0 & x <= 2\naction a :: x < 2 -> x := x + 1\nfault f :: true -> x := ?\n")
	_, out, _ = runCode(t, "lint", "-json", clean)
	if strings.TrimSpace(out) == "null" {
		t.Errorf("lint -json on a clean file should print [], got null")
	}
}

func TestLintUsage(t *testing.T) {
	code, _, _ := runCode(t, "lint")
	if code != exitUsage {
		t.Errorf("lint with no files: exit %d, want %d", code, exitUsage)
	}
	code, _, _ = runCode(t, "lint", "testdata/does-not-exist.gcl")
	if code != exitUsage {
		t.Errorf("lint on a missing file: exit %d, want %d", code, exitUsage)
	}
}

func TestAutoLintBeforeRun(t *testing.T) {
	// Warnings from the pre-run lint pass land on stderr and do not fail the
	// command; stdout stays reserved for results.
	src := "program p\nvar x : 0..3\nvar ghost : bool\npred Inv :: x >= 0\naction a :: x > 5 -> x := 0\naction b :: x < 3 -> x := x + 1\n"
	path := writeGCL(t, src)
	code, out, errOut := runCode(t, "check", path, "-kind", "nonmasking", "-invariant", "Inv", "-goal", "Inv")
	if code != exitOK {
		t.Fatalf("check with lint warnings should still run: exit %d\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "DC001") || !strings.Contains(errOut, "DC003") {
		t.Errorf("lint warnings should appear on stderr:\n%s", errOut)
	}
	if strings.Contains(out, "DC001") {
		t.Errorf("lint warnings must not pollute stdout:\n%s", out)
	}

	// Error-severity findings abort before any state exploration.
	bad := writeGCL(t, "program p\nvar x : 0..2\npred Inv :: x >= 0\naction a :: true -> x := 9\n")
	code, _, errOut = runCode(t, "check", bad, "-kind", "nonmasking", "-invariant", "Inv", "-goal", "Inv")
	if code != exitFail {
		t.Errorf("check on a file with lint errors: exit %d, want %d", code, exitFail)
	}
	if !strings.Contains(errOut, "DC002") {
		t.Errorf("the aborting finding should be on stderr:\n%s", errOut)
	}
}
