package main

import (
	"strings"
	"testing"
)

const file = "testdata/memaccess.gcl"

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("dctl %v: %v\noutput:\n%s", args, err, out.String())
	}
	return out.String()
}

func runErr(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err == nil {
		t.Fatalf("dctl %v should fail\noutput:\n%s", args, out.String())
	}
	return out.String()
}

func TestInfo(t *testing.T) {
	out := runOK(t, "info", file)
	for _, want := range []string{"program memaccess", "detect", "pageout", "DataCorrect", "24 states"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckMasking(t *testing.T) {
	out := runOK(t, "check", file, "-kind", "masking", "-invariant", "S",
		"-goal", "DataCorrect", "-never", "DataWrong")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("masking check should hold:\n%s", out)
	}
}

func TestCheckNonmaskingKinds(t *testing.T) {
	for _, kind := range []string{"failsafe", "nonmasking"} {
		out := runOK(t, "check", file, "-kind", kind, "-invariant", "S",
			"-goal", "DataCorrect", "-never", "DataWrong")
		if !strings.Contains(out, "HOLDS") {
			t.Errorf("%s check should hold:\n%s", kind, out)
		}
	}
}

func TestCheckFailsWithoutInvariant(t *testing.T) {
	runErr(t, "check", file, "-kind", "masking")
}

func TestCheckUnknownPredicate(t *testing.T) {
	runErr(t, "check", file, "-kind", "masking", "-invariant", "Nope")
}

func TestDetects(t *testing.T) {
	out := runOK(t, "detects", file, "-z", "Z1p", "-x", "X1", "-from", "U1",
		"-tolerant", "failsafe")
	if !strings.Contains(out, "HOLDS") || !strings.Contains(out, "fail-safe-tolerant") &&
		!strings.Contains(out, "fail-safe") {
		t.Errorf("detects output:\n%s", out)
	}
}

func TestDetectsFailure(t *testing.T) {
	// Z1 does not detect DataCorrect: Safeness fails.
	out := runErr(t, "detects", file, "-z", "Z1p", "-x", "DataCorrect", "-from", "U1")
	if !strings.Contains(out, "FAILS") {
		t.Errorf("failing detects should print FAILS:\n%s", out)
	}
}

func TestCorrects(t *testing.T) {
	out := runOK(t, "corrects", file, "-z", "X1", "-x", "X1", "-from", "X1",
		"-tolerant", "nonmasking")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("corrects output:\n%s", out)
	}
}

func TestSimulate(t *testing.T) {
	out := runOK(t, "simulate", file,
		"-init", "present=1,val=1,data=bot",
		"-steps", "60", "-seed", "7", "-faults", "1",
		"-goal", "DataCorrect", "-never", "DataWrong", "-trace")
	if !strings.Contains(out, "steps=") {
		t.Errorf("simulate output:\n%s", out)
	}
	if !strings.Contains(out, "0 (present=true") {
		t.Errorf("trace should start at the initial state:\n%s", out)
	}
}

func TestSimulateBadInit(t *testing.T) {
	runErr(t, "simulate", file, "-init", "present")
	runErr(t, "simulate", file, "-init", "present=zzz")
}

func TestTokenRingGCL(t *testing.T) {
	const ring = "testdata/ring3.gcl"
	out := runOK(t, "corrects", ring, "-z", "Legit", "-x", "Legit", "-tolerant", "nonmasking")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("ring corrector should hold:\n%s", out)
	}
	out = runOK(t, "check", ring, "-kind", "nonmasking", "-invariant", "Legit", "-goal", "Legit")
	if !strings.Contains(out, "HOLDS") {
		t.Errorf("ring nonmasking check should hold:\n%s", out)
	}
	// The ring is not masking tolerant: corruption transiently breaks the
	// one-token property and the never-predicate flags it.
	runErr(t, "check", ring, "-kind", "masking", "-invariant", "Legit", "-goal", "Legit", "-never", "Illegit")
}

func TestUsageErrors(t *testing.T) {
	runErr(t)
	runErr(t, "bogus", file)
	runErr(t, "info")
	runErr(t, "info", "testdata/does-not-exist.gcl")
	runErr(t, "detects", file, "-z", "Z1p") // missing -x
	runErr(t, "check", file, "-kind", "bogus", "-invariant", "S")
}
