package main

import (
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"detcorr/internal/serve/corpus"
)

// syncBuffer is a strings.Builder safe to read while runWatch writes it
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeAtomic replaces path by rename, so the poller can never observe a
// truncated half-write as its own revision.
func writeAtomic(t *testing.T, path, data string) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// waitFor blocks until the watch output contains want.
func waitFor(t *testing.T, out *syncBuffer, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q in watch output:\n%s", want, out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWatchPreservesAndRechecks drives dctl watch through an edit session:
// initial verdicts, a broken save (kept watching on the last good revision),
// a fault-only edit (every closure verdict preserved), and an assignment
// edit (verdicts re-checked).
func TestWatchPreservesAndRechecks(t *testing.T) {
	path := writeGCL(t, corpus.Ring3)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"watch", path, "-interval", "2ms", "-max-revisions", "4"}, out, io.Discard)
	}()

	// rev 1: the initial content is checked in full.
	waitFor(t, out, "+ closure invariant=Legit: holds")
	waitFor(t, out, "+ closure invariant=Illegit:")

	// rev 2: a broken save must not kill the watch or lose verdicts.
	writeAtomic(t, path, "program broken\nvar x")
	waitFor(t, out, "load failed, keeping last good revision")

	// rev 3: editing only a fault guard leaves every closure cone intact,
	// so the passing verdict streams back preserved, diffed against rev 1.
	// The Illegit verdict fails — failing verdicts carry witnesses and are
	// never preserved, so it re-checks even under an unrelated edit.
	faultEdit := strings.Replace(corpus.Ring3,
		"fault corrupt0 :: true", "fault corrupt0 :: x0 != x1", 1)
	writeAtomic(t, path, faultEdit)
	waitFor(t, out, "= closure invariant=Legit: holds (preserved)")
	waitFor(t, out, "~ closure invariant=Illegit: fails")

	// rev 4: an assignment edit dirties move0, whose write lands in both
	// predicates' cones: nothing is preservable.
	assignEdit := strings.Replace(corpus.Ring3,
		"x0 := (x0 + 1) % 3", "x0 := (x0 + 2) % 3", 1)
	writeAtomic(t, path, assignEdit)
	waitFor(t, out, "~ closure invariant=Legit: holds")
	waitFor(t, out, "~ closure invariant=Illegit:")

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch exited with %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("watch did not stop at -max-revisions")
	}
	text := out.String()
	if !strings.Contains(text, "actions: move0") {
		t.Errorf("rev 4 header should name the changed action:\n%s", text)
	}
	if !strings.Contains(text, "affected preds: Legit,Illegit") {
		t.Errorf("rev 4 header should list the affected predicates:\n%s", text)
	}
}

// TestWatchSingleCheck narrows the watch to one property via the verdict
// flag set.
func TestWatchSingleCheck(t *testing.T) {
	path := writeGCL(t, corpus.Ring3)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"watch", path, "-interval", "2ms", "-max-revisions", "1",
			"-check", "corrects", "-z", "Legit", "-x", "Legit", "-tolerant", "nonmasking"}, out, io.Discard)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch exited with %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch did not stop at -max-revisions")
	}
	if !strings.Contains(out.String(), "+ corrects z=Legit x=Legit tolerant=nonmasking: holds") {
		t.Errorf("watch -check output:\n%s", out.String())
	}
}

func TestWatchUsage(t *testing.T) {
	if code, _, _ := runCode(t, "watch"); code != exitUsage {
		t.Errorf("watch with no file: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCode(t, "watch", "-interval", "2ms"); code != exitUsage {
		t.Errorf("watch with flags only: exit %d, want %d", code, exitUsage)
	}
}
