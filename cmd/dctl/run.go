package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/prove"
	"detcorr/internal/runtime"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// setParallelism applies the -j flag: it sets the process-wide default
// worker count for state-space exploration, which every Build reached
// through the check/detects/corrects call chains inherits. 0 means all
// CPUs, mirroring make -j.
func setParallelism(j int) {
	if j == 0 {
		j = explore.AutoParallelism()
	}
	explore.SetDefaultParallelism(j)
}

// spillFlags registers the out-of-core exploration flags shared by the
// exploring subcommands and returns the function that applies them after
// parsing. A -mem-budget makes every exploration reached through the
// command spill its visited set and frontier to disk rather than outgrow
// the budget; explorations that fit never touch disk, so the flag is a
// ceiling, not a mode switch.
func spillFlags(fs *flag.FlagSet) func() error {
	budget := fs.String("mem-budget", "", "exploration memory budget, e.g. 512K, 64M, 2G (empty = in-RAM engines)")
	dir := fs.String("spill-dir", "", "directory for spill files (default: the OS temp directory)")
	return func() error {
		if *budget == "" {
			return nil
		}
		b, err := explore.ParseByteSize(*budget)
		if err != nil {
			return usageErrorf("-mem-budget: %v", err)
		}
		explore.SetDefaultSpill(b, *dir)
		return nil
	}
}

func run(args []string, out, errOut io.Writer) error {
	if len(args) == 0 {
		return usageErrorf("usage: dctl <info|lint|flow|prove|check|detects|corrects|deadlock|verdict|simulate|watch> <file.gcl> [flags]")
	}
	cmd := args[0]
	switch cmd {
	case "info":
		return runInfo(args[1:], out, errOut)
	case "lint":
		return runLint(args[1:], out)
	case "flow":
		return runFlow(args[1:], out, errOut)
	case "prove":
		return runProve(args[1:], out, errOut)
	case "check":
		return runCheck(args[1:], out, errOut)
	case "detects", "corrects":
		return runComponent(cmd, args[1:], out, errOut)
	case "deadlock":
		return runDeadlock(args[1:], out, errOut)
	case "verdict":
		return runVerdict(args[1:], out, errOut)
	case "simulate":
		return runSimulate(args[1:], out, errOut)
	case "watch":
		return runWatch(args[1:], out, errOut)
	default:
		return usageErrorf("unknown command %q (want info, lint, flow, prove, check, detects, corrects, deadlock, verdict, simulate, or watch)", cmd)
	}
}

// loadFile compiles the GCL source at the path given as the flag set's
// first positional argument. The dclint analyzers run on every loaded
// file before it is compiled: warnings go to errOut, error-severity
// findings abort the command. Every subcommand that loads a file accepts
// -noslice to disable the cone-of-influence pre-pass.
func loadFile(fs *flag.FlagSet, args []string, errOut io.Writer) (*gcl.File, error) {
	noslice := fs.Bool("noslice", false, "disable the cone-of-influence slicing pre-pass")
	if err := fs.Parse(argsAfterFile(args)); err != nil {
		return nil, withCode(exitUsage, err)
	}
	flow.SetEnabled(!*noslice)
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return nil, usageErrorf("missing <file.gcl> argument")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, usageErrorf("%v", err)
	}
	ast, err := gcl.Parse(string(src))
	if err != nil {
		return nil, withCode(exitParse, err)
	}
	if err := lintBeforeRun(args[0], string(src), ast, errOut); err != nil {
		return nil, err
	}
	f, err := gcl.Compile(ast)
	if err != nil {
		return nil, withCode(exitParse, err)
	}
	f.Src = string(src)
	// Certification is best-effort: when the prover can re-derive the
	// system from the AST, the closure and component checks consult it
	// before exploring; otherwise they explore as before.
	if err := prove.Certify(f); err != nil {
		fmt.Fprintf(errOut, "dctl: prover certification skipped: %v\n", err)
	}
	// Same for slicing: a Writes-metadata mismatch only disables the
	// cone-of-influence pre-pass for this file, never the command.
	if err := flow.Certify(f); err != nil {
		fmt.Fprintf(errOut, "dctl: slice certification skipped: %v\n", err)
	}
	return f, nil
}

// argsAfterFile drops the leading positional file argument so flags can
// follow it.
func argsAfterFile(args []string) []string {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[1:]
	}
	return args
}

// predOf resolves a named predicate flag; empty means state.True.
func predOf(f *gcl.File, name, flagName string) (state.Predicate, error) {
	if name == "" {
		return state.True, nil
	}
	p, ok := f.Pred(name)
	if !ok {
		return state.Predicate{}, usageErrorf("-%s: no predicate %q declared in the file", flagName, name)
	}
	return p, nil
}

func runInfo(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "program %s\n", f.Name)
	n, _ := f.Schema.NumStates()
	fmt.Fprintf(out, "  state space: %d states over %d variables %s\n", n, f.Schema.NumVars(), f.Schema)
	fmt.Fprintf(out, "  actions (%d):\n", f.Program.NumActions())
	for _, name := range f.Program.ActionNames() {
		fmt.Fprintf(out, "    %s\n", name)
	}
	fmt.Fprintf(out, "  faults (%d):\n", len(f.Faults.Actions))
	for _, a := range f.Faults.Actions {
		fmt.Fprintf(out, "    %s\n", a.Name)
	}
	fmt.Fprintf(out, "  predicates (%d):\n", len(f.Preds))
	names := make([]string, 0, len(f.Preds))
	for name := range f.Preds {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		count, err := state.CountStates(f.Schema, f.Preds[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "    %s (%d states)\n", name, count)
	}
	return nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func parseKind(s string) (fault.Kind, error) {
	switch s {
	case "failsafe", "fail-safe":
		return fault.FailSafe, nil
	case "nonmasking":
		return fault.Nonmasking, nil
	case "masking":
		return fault.Masking, nil
	default:
		return 0, usageErrorf("unknown tolerance kind %q (want failsafe, nonmasking, or masking)", s)
	}
}

func runCheck(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	kindFlag := fs.String("kind", "masking", "tolerance kind: failsafe, nonmasking, masking")
	invFlag := fs.String("invariant", "", "invariant predicate S (required)")
	recFlag := fs.String("recovery", "", "recovery predicate R for nonmasking (default: the invariant)")
	goalFlag := fs.String("goal", "", "liveness goal predicate (eventually goal)")
	neverFlag := fs.String("never", "", "safety predicate: states satisfying it are forbidden")
	jFlag := fs.Int("j", 1, "exploration workers; 0 means all CPUs")
	applySpill := spillFlags(fs)
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	setParallelism(*jFlag)
	if err := applySpill(); err != nil {
		return err
	}
	kind, err := parseKind(*kindFlag)
	if err != nil {
		return err
	}
	if *invFlag == "" {
		return usageErrorf("-invariant is required")
	}
	inv, err := predOf(f, *invFlag, "invariant")
	if err != nil {
		return err
	}
	rec := inv
	if *recFlag != "" {
		if rec, err = predOf(f, *recFlag, "recovery"); err != nil {
			return err
		}
	}
	prob, err := buildProblem(f, *goalFlag, *neverFlag)
	if err != nil {
		return err
	}
	rep := fault.Check(kind, f.Program, f.Faults, prob, inv, rec)
	fmt.Fprintln(out, rep.String())
	if !rep.OK() {
		return errors.New("check failed")
	}
	return nil
}

func buildProblem(f *gcl.File, goal, never string) (spec.Problem, error) {
	prob := spec.Problem{Name: f.Name + ".spec", Safety: spec.TrueSafety}
	if never != "" {
		bad, err := predOf(f, never, "never")
		if err != nil {
			return prob, err
		}
		prob.Safety = spec.NeverState("never "+never, bad)
	}
	if goal != "" {
		g, err := predOf(f, goal, "goal")
		if err != nil {
			return prob, err
		}
		prob.Live = []spec.LeadsTo{{Name: "eventually " + goal, P: state.True, Q: g}}
	}
	return prob, nil
}

func runComponent(cmd string, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	zFlag := fs.String("z", "", "witness predicate Z (required)")
	xFlag := fs.String("x", "", "detection/correction predicate X (required)")
	fromFlag := fs.String("from", "", "predicate U the relation is refined from (default true)")
	tolFlag := fs.String("tolerant", "", "also check as an F-tolerant component: failsafe, nonmasking, or masking")
	jFlag := fs.Int("j", 1, "exploration workers; 0 means all CPUs")
	applySpill := spillFlags(fs)
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	setParallelism(*jFlag)
	if err := applySpill(); err != nil {
		return err
	}
	if *zFlag == "" || *xFlag == "" {
		return usageErrorf("-z and -x are required")
	}
	z, err := predOf(f, *zFlag, "z")
	if err != nil {
		return err
	}
	x, err := predOf(f, *xFlag, "x")
	if err != nil {
		return err
	}
	u, err := predOf(f, *fromFlag, "from")
	if err != nil {
		return err
	}
	var check func() error
	var tolerant func(fault.Kind) error
	var header string
	if cmd == "detects" {
		d := core.Detector{Name: f.Name, D: f.Program, Z: z, X: x, U: u}
		header = d.String()
		check = d.Check
		tolerant = func(k fault.Kind) error { return d.CheckFTolerant(f.Faults, k) }
	} else {
		c := core.Corrector{Name: f.Name, C: f.Program, Z: z, X: x, U: u}
		header = c.String()
		check = c.Check
		tolerant = func(k fault.Kind) error { return c.CheckFTolerant(f.Faults, k) }
	}
	if err := check(); err != nil {
		fmt.Fprintf(out, "%s: FAILS\n  %v\n", header, err)
		return errors.New("check failed")
	}
	fmt.Fprintf(out, "%s: HOLDS\n", header)
	if *tolFlag != "" {
		kind, err := parseKind(*tolFlag)
		if err != nil {
			return err
		}
		if err := tolerant(kind); err != nil {
			fmt.Fprintf(out, "%s %s-tolerant: FAILS\n  %v\n", header, kind, err)
			return errors.New("tolerant check failed")
		}
		fmt.Fprintf(out, "%s %s-tolerant: HOLDS\n", header, kind)
	}
	return nil
}

// runDeadlock hunts for a reachable deadlock — a state with no enabled
// program action — by streaming over the compiled kernel with early exit:
// no transition graph is assembled, so the hunt stops the moment a witness
// is found. With -faults the file's fault class is composed in (fault
// actions unfair), matching the maximality rule of p ‖ F: fault actions
// never rescue a deadlocked program.
func runDeadlock(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("deadlock", flag.ContinueOnError)
	fromFlag := fs.String("from", "", "initial predicate to search from (default true)")
	faultsFlag := fs.Bool("faults", false, "compose the file's fault class in")
	applySpill := spillFlags(fs)
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	if err := applySpill(); err != nil {
		return err
	}
	from, err := predOf(f, *fromFlag, "from")
	if err != nil {
		return err
	}
	prog := f.Program
	var fairMask []bool
	if *faultsFlag && !f.Faults.Empty() {
		if prog, fairMask, err = fault.Compose(f.Program, f.Faults); err != nil {
			return err
		}
	}
	trace, found, err := explore.FindDeadlock(prog, from, explore.ScanOptions{Fair: fairMask})
	if err != nil {
		return err
	}
	if !found {
		fmt.Fprintf(out, "%s: no reachable deadlock\n", prog.Name())
		return nil
	}
	fmt.Fprintf(out, "%s: deadlock reached in %d steps\n", prog.Name(), len(trace)-1)
	for i, s := range trace {
		fmt.Fprintf(out, "  %3d %s\n", i, s)
	}
	return errors.New("deadlock found")
}

func runSimulate(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	initFlag := fs.String("init", "", "initial state, e.g. \"present=1,val=0\" (missing variables are 0)")
	stepsFlag := fs.Int("steps", 100, "maximum steps")
	seedFlag := fs.Int64("seed", 1, "random seed")
	faultsFlag := fs.Int("faults", 0, "fault occurrence budget")
	goalFlag := fs.String("goal", "", "eventually-goal monitor predicate")
	neverFlag := fs.String("never", "", "never-state monitor predicate")
	traceFlag := fs.Bool("trace", false, "print the visited states")
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	initial, err := parseInit(f.Schema, *initFlag)
	if err != nil {
		return err
	}
	var mons []runtime.Monitor
	if *neverFlag != "" {
		bad, err := predOf(f, *neverFlag, "never")
		if err != nil {
			return err
		}
		mons = append(mons, runtime.NewSafetyMonitor(spec.NeverState("never "+*neverFlag, bad)))
	}
	if *goalFlag != "" {
		g, err := predOf(f, *goalFlag, "goal")
		if err != nil {
			return err
		}
		mons = append(mons, &runtime.EventuallyMonitor{Goal: g})
	}
	eng, err := runtime.New(f.Program, runtime.Config{
		Seed:        *seedFlag,
		MaxSteps:    *stepsFlag,
		Faults:      f.Faults,
		FaultBudget: *faultsFlag,
		KeepTrace:   *traceFlag,
	}, mons...)
	if err != nil {
		return err
	}
	res, err := eng.Run(initial)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "steps=%d faults=%d deadlocked=%v final=%s\n",
		res.Steps, res.FaultsInjected, res.Deadlocked, res.Final)
	if *traceFlag {
		for i, s := range res.Trace {
			fmt.Fprintf(out, "  %3d %s\n", i, s)
		}
	}
	for name, verr := range res.Violations {
		fmt.Fprintf(out, "VIOLATION %s: %v\n", name, verr)
	}
	if len(res.Violations) > 0 {
		return errors.New("monitor violations")
	}
	return nil
}

func parseInit(sch *state.Schema, s string) (state.State, error) {
	values := map[string]int{}
	if s != "" {
		for _, part := range strings.Split(s, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return state.State{}, fmt.Errorf("-init: bad assignment %q (want name=value)", part)
			}
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				// Allow symbolic enum values.
				if i, ok := sch.IndexOf(kv[0]); ok {
					if ev, found := sch.Var(i).Domain.ValueOf(kv[1]); found {
						values[kv[0]] = ev
						continue
					}
				}
				return state.State{}, fmt.Errorf("-init: bad value %q for %q", kv[1], kv[0])
			}
			values[kv[0]] = v
		}
	}
	return state.FromMap(sch, values)
}
