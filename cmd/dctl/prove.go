package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"detcorr/internal/gcl"
	"detcorr/internal/prove"
)

// runProve is the exploration-free entry point: it parses and lints the
// file but never compiles it (compilation bounds-checks every action over
// the full state space), so its cost is independent of the state count.
func runProve(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("prove", flag.ContinueOnError)
	invFlag := fs.String("invariant", "", "prove DC100 closure of this predicate under the program actions")
	spanFlag := fs.String("span", "", "with -invariant: prove DC101 closure of this span predicate under program and fault actions ('auto' infers one)")
	zFlag := fs.String("z", "", "with -x: prove DC102 detector safeness and stability of Z => X")
	xFlag := fs.String("x", "", "detection predicate X for -z")
	fromFlag := fs.String("from", "", "predicate U for -z/-x and -converge (default true)")
	convFlag := fs.String("converge", "", "prove DC103 convergence from U to this goal predicate")
	rankFlag := fs.String("rank", "", "comma-separated lexicographic ranking function for -converge (default: synthesize)")
	jsonFlag := fs.Bool("json", false, "emit the reports as JSON")
	if err := fs.Parse(argsAfterFile(args)); err != nil {
		return withCode(exitUsage, err)
	}
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return usageErrorf("missing <file.gcl> argument")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return usageErrorf("%v", err)
	}
	ast, err := gcl.Parse(string(src))
	if err != nil {
		return withCode(exitParse, err)
	}
	if err := lintBeforeRun(args[0], string(src), ast, errOut); err != nil {
		return err
	}
	sys, err := prove.NewSystem(ast)
	if err != nil {
		return withCode(exitParse, err)
	}

	u := *fromFlag
	if u == "" {
		u = "true"
	}
	var reports []*prove.Report
	if *invFlag != "" {
		rep, err := prove.ProveClosure(sys, *invFlag)
		if err != nil {
			return usageErrorf("%v", err)
		}
		reports = append(reports, rep)
		if *spanFlag != "" {
			span := *spanFlag
			if span == "auto" {
				span = ""
			}
			rep, err := prove.ProveSpanClosure(sys, *invFlag, span)
			if err != nil {
				return usageErrorf("%v", err)
			}
			reports = append(reports, rep)
		}
	} else if *spanFlag != "" {
		return usageErrorf("-span requires -invariant")
	}
	if (*zFlag == "") != (*xFlag == "") {
		return usageErrorf("-z and -x must be given together")
	}
	if *zFlag != "" {
		rep, err := prove.ProveSafeness(sys, u, *zFlag, *xFlag)
		if err != nil {
			return usageErrorf("%v", err)
		}
		reports = append(reports, rep)
	}
	if *convFlag != "" {
		var rank []gcl.Expr
		if *rankFlag != "" {
			for _, part := range strings.Split(*rankFlag, ",") {
				e, err := gcl.ParseExpr(strings.TrimSpace(part))
				if err != nil {
					return usageErrorf("-rank: %v", err)
				}
				rank = append(rank, e)
			}
		}
		rep, err := prove.ProveConvergence(sys, u, *convFlag, rank)
		if err != nil {
			return usageErrorf("%v", err)
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return usageErrorf("nothing to prove: give -invariant, -z/-x, or -converge")
	}

	if *jsonFlag {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			fmt.Fprintln(out, rep)
		}
	}
	worst := prove.Proved
	for _, rep := range reports {
		if rep.Verdict == prove.Disproved {
			worst = prove.Disproved
			break
		}
		if rep.Verdict == prove.Unknown {
			worst = prove.Unknown
		}
	}
	switch worst {
	case prove.Disproved:
		return withCode(exitFail, fmt.Errorf("disproved"))
	case prove.Unknown:
		return withCode(exitUnknown, fmt.Errorf("inconclusive: fall back to exploration (dctl check)"))
	}
	return nil
}
