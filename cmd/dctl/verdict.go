package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"detcorr/internal/serve"
	"detcorr/internal/serve/api"
)

// runVerdict is the service protocol at the command line: it builds an
// api.Request from flags, evaluates it with serve.Eval — the same function
// behind the dcserved POST /v1/verdict handler — and prints the response in
// the canonical wire encoding. Its stdout is byte-identical to the daemon's
// response body for the same program and property; the parity difftest
// holds the two to that.
func runVerdict(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("verdict", flag.ContinueOnError)
	fs.SetOutput(errOut)
	check := fs.String("check", "", "property to decide: closure, detects, corrects, convergence, deadlock, or prove")
	invariant := fs.String("invariant", "", "invariant predicate S (closure, convergence, prove)")
	goal := fs.String("goal", "", "goal predicate R (convergence, prove)")
	z := fs.String("z", "", "witness predicate Z (detects, corrects, prove)")
	x := fs.String("x", "", "detected/corrected predicate X (detects, corrects, prove)")
	from := fs.String("from", "", "starting predicate U (default true)")
	span := fs.String("span", "", "fault-span predicate for prove; auto infers one")
	rank := fs.String("rank", "", "comma-separated ranking function for prove convergence")
	tolerant := fs.String("tolerant", "", "also check F-tolerance: failsafe, nonmasking, or masking")
	faults := fs.Bool("faults", false, "compose the file's fault class into the deadlock hunt")
	maxStates := fs.Int("max-states", 0, "abort exploration beyond this many states (0 = unbounded)")
	applySpill := spillFlags(fs)
	if err := fs.Parse(argsAfterFile(args)); err != nil {
		return withCode(exitUsage, err)
	}
	if err := applySpill(); err != nil {
		return err
	}
	if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
		return usageErrorf("usage: dctl verdict <file.gcl> -check <property> [flags]")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return usageErrorf("%v", err)
	}
	req := api.Request{
		Program:   string(src),
		Check:     *check,
		Invariant: *invariant,
		Goal:      *goal,
		Z:         *z,
		X:         *x,
		From:      *from,
		Span:      *span,
		Rank:      *rank,
		Tolerant:  *tolerant,
		Faults:    *faults,
		MaxStates: *maxStates,
	}
	f, err := serve.LoadSource(req.Program)
	if err != nil {
		// Parse, lint, and compile failures are all "the source did not
		// load", exactly as the daemon's 422 — including error-severity lint
		// findings, which other dctl commands report with exit code 1.
		var le *serve.LoadError
		if errors.As(err, &le) {
			return withCode(exitParse, err)
		}
		return err
	}
	resp, err := serve.Eval(context.Background(), f, req)
	if err != nil {
		var ue *serve.UsageError
		if errors.As(err, &ue) {
			return withCode(exitUsage, err)
		}
		return err
	}
	if err := api.Encode(out, resp); err != nil {
		return err
	}
	if code := resp.ExitCode(); code != exitOK {
		return withCode(code, fmt.Errorf("verdict: %s", resp.Verdict))
	}
	return nil
}
