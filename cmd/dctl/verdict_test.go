package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"detcorr/internal/serve"
	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// verdictArgs rebuilds the dctl verdict command line for a corpus request.
func verdictArgs(path string, req api.Request) []string {
	args := []string{"verdict", path, "-check", req.Check}
	add := func(flag, val string) {
		if val != "" {
			args = append(args, "-"+flag, val)
		}
	}
	add("invariant", req.Invariant)
	add("goal", req.Goal)
	add("z", req.Z)
	add("x", req.X)
	add("from", req.From)
	add("span", req.Span)
	add("rank", req.Rank)
	add("tolerant", req.Tolerant)
	if req.Faults {
		args = append(args, "-faults")
	}
	if req.MaxStates != 0 {
		args = append(args, "-max-states", strconv.Itoa(req.MaxStates))
	}
	return args
}

// TestVerdictParity is the transport difftest: for every corpus item, the
// bytes `dctl verdict` writes to stdout must equal the bytes dcserved sends
// as the response body, and the process exit code must equal the X-DC-Exit
// header. One evaluation pipeline, two transports, zero drift.
func TestVerdictParity(t *testing.T) {
	srv := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	dir := t.TempDir()
	files := map[string]string{}
	for name, src := range map[string]string{
		"ring3": corpus.Ring3, "memaccess": corpus.Memaccess, "countdown": corpus.Countdown,
	} {
		path := filepath.Join(dir, name+".gcl")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		files[src] = path
	}

	for _, item := range corpus.Items() {
		t.Run(item.Name, func(t *testing.T) {
			path := files[item.Request.Program]
			if path == "" {
				t.Fatal("corpus program not in embedded set")
			}
			var stdout, stderr bytes.Buffer
			err := run(verdictArgs(path, item.Request), &stdout, &stderr)
			cliExit := exitCode(err)

			var body bytes.Buffer
			if err := api.Encode(&body, item.Request); err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/v1/verdict", "application/json", &body)
			if err != nil {
				t.Fatal(err)
			}
			served, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("dcserved status = %d body %s", resp.StatusCode, served)
			}
			if !bytes.Equal(stdout.Bytes(), served) {
				t.Errorf("transports diverged:\ndctl verdict stdout:\n%s\ndcserved body:\n%s", stdout.Bytes(), served)
			}
			if hdr := resp.Header.Get("X-DC-Exit"); hdr != strconv.Itoa(cliExit) {
				t.Errorf("exit codes diverged: dctl %d, X-DC-Exit %s", cliExit, hdr)
			}
		})
	}
}

func TestVerdictUsageAndLoadErrors(t *testing.T) {
	// No file.
	if code, _, _ := runCode(t, "verdict", "-check", "closure"); code != exitUsage {
		t.Errorf("missing file: exit %d, want %d", code, exitUsage)
	}
	// Unknown check.
	ring := writeGCL(t, corpus.Ring3)
	if code, _, _ := runCode(t, "verdict", ring, "-check", "frobnicate"); code != exitUsage {
		t.Errorf("unknown check: exit %d, want %d", code, exitUsage)
	}
	// Unknown predicate.
	if code, _, _ := runCode(t, "verdict", ring, "-check", "closure", "-invariant", "Nope"); code != exitUsage {
		t.Errorf("unknown predicate: exit %d, want %d", code, exitUsage)
	}
	// Unparsable source loads with exit 3, like the daemon's 422.
	broken := writeGCL(t, "program broken\nvar x")
	if code, _, _ := runCode(t, "verdict", broken, "-check", "deadlock"); code != exitParse {
		t.Errorf("parse error: exit %d, want %d", code, exitParse)
	}
}

func TestVerdictFailingExitCode(t *testing.T) {
	ring := writeGCL(t, corpus.Countdown)
	code, out, _ := runCode(t, "verdict", ring, "-check", "deadlock", "-from", "Top")
	if code != exitFail {
		t.Errorf("deadlock verdict: exit %d, want %d", code, exitFail)
	}
	if !strings.Contains(out, `"verdict": "deadlock"`) {
		t.Errorf("stdout missing verdict:\n%s", out)
	}
}
