package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"detcorr/internal/flow"
	"detcorr/internal/gcl"
)

// flowReport is the -json encoding of the dependence analysis: per-action
// read/write sets, the variable dependence edges, and per-predicate cone
// and slice sizes. Impact is present only with -against.
type flowReport struct {
	Program    string          `json:"program"`
	Actions    []flowAction    `json:"actions"`
	Faults     []flowAction    `json:"faults,omitempty"`
	Components []flowComponent `json:"components,omitempty"`
	Span       []string        `json:"span,omitempty"`
	Edges      []flow.DepEdge  `json:"edges"`
	Preds      []flowPred      `json:"preds"`
	Impact     *flow.Impact    `json:"impact,omitempty"`
}

type flowAction struct {
	Name       string   `json:"name"`
	Component  string   `json:"component,omitempty"`
	GuardReads []string `json:"guard_reads"`
	Reads      []string `json:"reads"`
	Writes     []string `json:"writes"`
}

type flowComponent struct {
	Kind    string   `json:"kind"`
	Name    string   `json:"name"`
	Scope   []string `json:"scope,omitempty"`
	Actions []string `json:"actions"`
}

type flowPred struct {
	Name         string   `json:"name"`
	Reads        []string `json:"reads"`
	ConeVars     []string `json:"cone_vars"`
	KeptActions  []string `json:"kept_actions"`
	FullStates   float64  `json:"full_states"`
	SlicedStates float64  `json:"sliced_states"`
	Reduction    float64  `json:"reduction"`
}

// runFlow implements 'dctl flow': print the dependence analysis of a file,
// optionally diffed against an older revision (-against).
func runFlow(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("flow", flag.ContinueOnError)
	jsonFlag := fs.Bool("json", false, "emit the analysis as JSON")
	againstFlag := fs.String("against", "", "older revision to diff against: report which predicates are affected")
	f, err := loadFile(fs, args, errOut)
	if err != nil {
		return err
	}
	in := flow.Analyze(f.AST)
	rep := buildFlowReport(f, in)
	if *againstFlag != "" {
		oldSrc, err := os.ReadFile(*againstFlag)
		if err != nil {
			return usageErrorf("-against: %v", err)
		}
		oldAST, err := gcl.Parse(string(oldSrc))
		if err != nil {
			return withCode(exitParse, fmt.Errorf("-against %s: %w", *againstFlag, err))
		}
		rep.Impact = flow.AffectedBy(oldAST, f.AST)
	}
	if *jsonFlag {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printFlowReport(out, rep)
	return nil
}

func buildFlowReport(f *gcl.File, in *flow.Info) *flowReport {
	rep := &flowReport{Program: f.Name, Span: in.Span, Edges: in.DepEdges()}
	compName := func(i int) string {
		if i < 0 {
			return ""
		}
		return in.Components[i].Name
	}
	for _, af := range in.Actions {
		rep.Actions = append(rep.Actions, flowAction{
			Name: af.Name, Component: compName(af.Component),
			GuardReads: af.GuardReads, Reads: af.Reads, Writes: af.Writes,
		})
	}
	for _, af := range in.Faults {
		rep.Faults = append(rep.Faults, flowAction{
			Name: af.Name, GuardReads: af.GuardReads, Reads: af.Reads, Writes: af.Writes,
		})
	}
	for _, c := range in.Components {
		fc := flowComponent{Kind: c.Kind.String(), Name: c.Name, Scope: c.Scope}
		for _, ai := range c.Actions {
			fc.Actions = append(fc.Actions, in.Actions[ai].Name)
		}
		rep.Components = append(rep.Components, fc)
	}
	for i := range in.Preds {
		pf := &in.Preds[i]
		fp := flowPred{Name: pf.Name, Reads: pf.Reads}
		if sl, err := flow.SliceFile(f, pf.Name); err == nil {
			fp.ConeVars = sl.ConeVars
			fp.KeptActions = sl.KeptActions
			fp.FullStates = sl.FullStates
			fp.SlicedStates = sl.SlicedStates
			fp.Reduction = sl.Reduction()
		}
		rep.Preds = append(rep.Preds, fp)
	}
	return rep
}

func printFlowReport(out io.Writer, rep *flowReport) {
	fmt.Fprintf(out, "program %s\n", rep.Program)
	if len(rep.Components) > 0 {
		fmt.Fprintf(out, "  components:\n")
		for _, c := range rep.Components {
			scope := ""
			if len(c.Scope) > 0 {
				scope = " : " + strings.Join(c.Scope, ", ")
			}
			fmt.Fprintf(out, "    %s %s%s (%s)\n", c.Kind, c.Name, scope, strings.Join(c.Actions, ", "))
		}
	}
	if len(rep.Span) > 0 {
		fmt.Fprintf(out, "  span: %s\n", strings.Join(rep.Span, ", "))
	}
	fmt.Fprintf(out, "  actions:\n")
	for _, a := range rep.Actions {
		fmt.Fprintf(out, "    %-16s reads %-24s writes %s\n",
			a.Name, setString(a.Reads), setString(a.Writes))
	}
	if len(rep.Faults) > 0 {
		fmt.Fprintf(out, "  faults:\n")
		for _, a := range rep.Faults {
			fmt.Fprintf(out, "    %-16s reads %-24s writes %s\n",
				a.Name, setString(a.Reads), setString(a.Writes))
		}
	}
	fmt.Fprintf(out, "  dependence edges:\n")
	for _, e := range rep.Edges {
		fmt.Fprintf(out, "    %s -> %s (%s)\n", e.From, e.To, e.Action)
	}
	fmt.Fprintf(out, "  predicates:\n")
	for _, p := range rep.Preds {
		fmt.Fprintf(out, "    %-12s reads %s\n", p.Name, setString(p.Reads))
		if len(p.ConeVars) > 0 {
			fmt.Fprintf(out, "      cone %s; slice keeps %d action(s), %.0f of %.0f states (%.1fx)\n",
				setString(p.ConeVars), len(p.KeptActions), p.SlicedStates, p.FullStates, p.Reduction)
		}
	}
	if rep.Impact != nil {
		fmt.Fprintf(out, "  against older revision:\n")
		printChanged(out, "vars", rep.Impact.ChangedVars)
		printChanged(out, "preds", rep.Impact.ChangedPreds)
		printChanged(out, "actions", rep.Impact.ChangedActions)
		printChanged(out, "faults", rep.Impact.ChangedFaults)
		if rep.Impact.Unchanged() {
			fmt.Fprintf(out, "    affected predicates: none (every verdict carries over)\n")
		} else {
			fmt.Fprintf(out, "    affected predicates: %s\n", strings.Join(rep.Impact.AffectedPreds, ", "))
		}
	}
}

func printChanged(out io.Writer, what string, names []string) {
	if len(names) > 0 {
		fmt.Fprintf(out, "    changed %s: %s\n", what, strings.Join(names, ", "))
	}
}

func setString(names []string) string {
	if len(names) == 0 {
		return "{}"
	}
	return "{" + strings.Join(names, " ") + "}"
}
