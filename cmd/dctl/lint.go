package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"detcorr/internal/gcl"
	"detcorr/internal/lint"
)

// runLint implements 'dctl lint [-json] <file.gcl>...': run the dclint
// static analyzers over each file and print every finding. Only
// error-severity findings make the command fail.
func runLint(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return withCode(exitUsage, err)
	}
	files := fs.Args()
	if len(files) == 0 {
		return usageErrorf("usage: dctl lint [-json] <file.gcl>...")
	}
	diags := []lint.Diagnostic{}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return usageErrorf("%v", err)
		}
		diags = append(diags, lint.Lint(path, string(src))...)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	errCount := 0
	for _, d := range diags {
		if d.Severity == lint.Error {
			errCount++
		}
	}
	if errCount > 0 {
		return withCode(exitFail, fmt.Errorf("lint: %d error finding(s)", errCount))
	}
	return nil
}

// lintBeforeRun runs the analyzers on an already-parsed file before a
// command consumes it: warnings and errors are printed to errOut, and
// error-severity findings abort the command.
func lintBeforeRun(path, src string, ast *gcl.FileAST, errOut io.Writer) error {
	diags := lint.Analyze(path, ast, src)
	errCount := 0
	for _, d := range diags {
		if d.Severity >= lint.Warning {
			fmt.Fprintln(errOut, d)
		}
		if d.Severity == lint.Error {
			errCount++
		}
	}
	if errCount > 0 {
		return withCode(exitFail, fmt.Errorf("lint: %d error finding(s) in %s", errCount, path))
	}
	return nil
}
