package main

import (
	"encoding/json"
	"strings"
	"testing"

	"detcorr/internal/prove"
)

func TestProveRingClosure(t *testing.T) {
	out := runOK(t, "prove", "testdata/ring3.gcl", "-invariant", "Legit", "-span", "auto")
	for _, want := range []string{"[DC100]", "[DC101]", "PROVED"} {
		if !strings.Contains(out, want) {
			t.Errorf("prove output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DISPROVED") || strings.Contains(out, "UNKNOWN") {
		t.Errorf("ring closure should be fully proved:\n%s", out)
	}
}

func TestProveMemaccessAllConditions(t *testing.T) {
	out := runOK(t, "prove", file, "-invariant", "S", "-span", "U1",
		"-z", "Z1p", "-x", "X1", "-from", "U1", "-converge", "X1")
	for _, want := range []string{"[DC100]", "[DC101]", "[DC102]", "[DC103]", "ranking function"} {
		if !strings.Contains(out, want) {
			t.Errorf("prove output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DISPROVED") || strings.Contains(out, "UNKNOWN") {
		t.Errorf("all four conditions should be proved:\n%s", out)
	}
}

func TestProveUserRank(t *testing.T) {
	out := runOK(t, "prove", file, "-from", "U1", "-converge", "X1",
		"-rank", "data != bot, present")
	if !strings.Contains(out, "[DC103]") || !strings.Contains(out, "PROVED") {
		t.Errorf("user-supplied rank should prove convergence:\n%s", out)
	}
}

func TestProveDisproved(t *testing.T) {
	// Without -from, U defaults to true; safeness of Z1p => X1 fails on
	// states outside U1 and the prover must exhibit one.
	code, out, _ := runCode(t, "prove", file, "-z", "Z1p", "-x", "X1")
	if code != exitFail {
		t.Fatalf("disproof should exit %d, got %d:\n%s", exitFail, code, out)
	}
	if !strings.Contains(out, "DISPROVED") || !strings.Contains(out, "e.g. when") {
		t.Errorf("disproof should print a counterexample:\n%s", out)
	}
}

func TestProveUnknown(t *testing.T) {
	// Domains far past the enumeration budget with an opaque arithmetic
	// predicate: the prover must come back inconclusive, never wrong.
	wide := writeGCL(t, `program wide
var a : 0..300
var b : 0..300
var c : 0..300
pred Odd :: (a * b + c) % 97 != 5
action spin :: a < 300 -> a := a + 1
`)
	code, out, _ := runCode(t, "prove", wide, "-invariant", "Odd")
	if code != exitUnknown {
		t.Fatalf("inconclusive proof should exit %d, got %d:\n%s", exitUnknown, code, out)
	}
	if !strings.Contains(out, "UNKNOWN") {
		t.Errorf("inconclusive proof should print UNKNOWN:\n%s", out)
	}
}

func TestProveJSON(t *testing.T) {
	out := runOK(t, "prove", file, "-invariant", "S", "-json")
	var reports []*prove.Report
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("prove -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 {
		t.Fatalf("want 1 report, got %d:\n%s", len(reports), out)
	}
	rep := reports[0]
	if rep.Code != "DC100" || rep.Subject == "" || rep.Verdict != prove.Proved {
		t.Errorf("unexpected report fields: %+v", rep)
	}
	if len(rep.Actions) == 0 {
		t.Errorf("report should carry per-action results: %+v", rep)
	}
}

func TestProveJSONDisproved(t *testing.T) {
	code, out, _ := runCode(t, "prove", file, "-z", "Z1p", "-x", "X1", "-json")
	if code != exitFail {
		t.Fatalf("exit = %d, want %d:\n%s", code, exitFail, out)
	}
	var reports []*prove.Report
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	found := false
	for _, rep := range reports {
		for _, a := range rep.Actions {
			if a.Verdict == prove.Disproved && a.Counterexample != "" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("JSON disproof should include a counterexample: %s", out)
	}
}

func TestProveUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"missing file", []string{"prove"}},
		{"missing file with flags", []string{"prove", "-invariant", "S"}},
		{"file not on disk", []string{"prove", "testdata/does-not-exist.gcl", "-invariant", "S"}},
		{"span without invariant", []string{"prove", file, "-span", "U1"}},
		{"z without x", []string{"prove", file, "-z", "Z1p"}},
		{"x without z", []string{"prove", file, "-x", "X1"}},
		{"nothing to prove", []string{"prove", file}},
		{"unknown predicate", []string{"prove", file, "-invariant", "Nope"}},
		{"bad rank expression", []string{"prove", file, "-converge", "X1", "-rank", "5 +"}},
	}
	for _, tt := range tests {
		code, out, errOut := runCode(t, tt.args...)
		if code != exitUsage {
			t.Errorf("%s: dctl %v: exit = %d, want %d\n%s%s",
				tt.name, tt.args, code, exitUsage, out, errOut)
		}
	}
}

func TestProveParseError(t *testing.T) {
	bad := writeGCL(t, "program p\nvar x : 0..2\naction a :: x < ; -> x := 0\n")
	code, _, _ := runCode(t, "prove", bad, "-invariant", "S")
	if code != exitParse {
		t.Errorf("parse error should exit %d, got %d", exitParse, code)
	}
}

func TestProveSkipsCompilation(t *testing.T) {
	// The prove subcommand must stay usable on programs whose state space
	// is far too large to compile or explore: 10 variables of 0..1000 is
	// ~10^30 states. Closure of the box predicate is still a per-action
	// proof over representatives.
	var b strings.Builder
	b.WriteString("program huge\n")
	for _, v := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		b.WriteString("var " + v + " : 0..1000\n")
	}
	b.WriteString("pred Box :: a <= 500\n")
	b.WriteString("action step :: a < 500 -> a := a + 1\n")
	path := writeGCL(t, b.String())
	out := runOK(t, "prove", path, "-invariant", "Box")
	if !strings.Contains(out, "PROVED") {
		t.Errorf("closure over the huge space should be proved without exploration:\n%s", out)
	}
}
