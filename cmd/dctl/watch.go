package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/serve"
	"detcorr/internal/serve/api"
	"detcorr/internal/state"
	"detcorr/internal/watch"
)

// runWatch is the edit loop: poll one file, and on every revision re-lint,
// re-certify, repair the cached graphs, and re-check only the verdicts the
// edit can have reached — everything else streams back as preserved. With
// -check it watches one property (same flags as dctl verdict); without, it
// watches the closure of every declared predicate.
func runWatch(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(errOut)
	check := fs.String("check", "", "property to watch (default: closure of every declared predicate)")
	invariant := fs.String("invariant", "", "invariant predicate S (closure, convergence, prove)")
	goal := fs.String("goal", "", "goal predicate R (convergence, prove)")
	z := fs.String("z", "", "witness predicate Z (detects, corrects, prove)")
	x := fs.String("x", "", "detected/corrected predicate X (detects, corrects, prove)")
	from := fs.String("from", "", "starting predicate U (default true)")
	span := fs.String("span", "", "fault-span predicate for prove; auto infers one")
	rank := fs.String("rank", "", "comma-separated ranking function for prove convergence")
	tolerant := fs.String("tolerant", "", "also check F-tolerance: failsafe, nonmasking, or masking")
	faults := fs.Bool("faults", false, "compose the file's fault class into the deadlock hunt")
	maxStates := fs.Int("max-states", 0, "abort exploration beyond this many states (0 = unbounded)")
	interval := fs.Duration("interval", watch.DefaultInterval, "polling interval")
	maxRevisions := fs.Int("max-revisions", 0, "stop after this many revisions (0 = watch until interrupted)")
	applySpill := spillFlags(fs)
	if err := fs.Parse(argsAfterFile(args)); err != nil {
		return withCode(exitUsage, err)
	}
	if err := applySpill(); err != nil {
		return err
	}
	if len(args) == 0 || args[0] == "" || args[0][0] == '-' {
		return usageErrorf("usage: dctl watch <file.gcl> [-check <property> ...] [-interval d]")
	}
	path := args[0]

	requests := func(f *gcl.File) []api.Request {
		if *check != "" {
			return []api.Request{{
				Check: *check, Invariant: *invariant, Goal: *goal, Z: *z, X: *x,
				From: *from, Span: *span, Rank: *rank, Tolerant: *tolerant,
				Faults: *faults, MaxStates: *maxStates,
			}}
		}
		names := make([]string, 0, len(f.AST.Preds))
		for i := range f.AST.Preds {
			names = append(names, f.AST.Preds[i].Name)
		}
		sort.Strings(names)
		reqs := make([]api.Request, 0, len(names))
		for _, n := range names {
			reqs = append(reqs, api.Request{Check: api.CheckClosure, Invariant: n})
		}
		return reqs
	}

	w := &watcher{out: out}
	rev := 0
	err := watch.Poll(context.Background(), path, *interval, func(src string) bool {
		rev++
		w.revision(rev, path, src, requests)
		return *maxRevisions == 0 || rev < *maxRevisions
	})
	if err != nil {
		return err
	}
	return nil
}

// watcher carries the last good revision and its verdicts across polls.
type watcher struct {
	out   io.Writer
	last  *gcl.File
	cache map[string]*api.Response
}

// sig is a request's identity minus the program source, so verdicts can be
// carried across revisions of the same question.
func sig(req api.Request) string {
	req.Program = ""
	b, err := json.Marshal(req)
	if err != nil {
		panic("watch: marshal request: " + err.Error())
	}
	return string(b)
}

// describe renders a request for the streamed output.
func describe(req api.Request) string {
	parts := []string{req.Check}
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("invariant", req.Invariant)
	add("goal", req.Goal)
	add("z", req.Z)
	add("x", req.X)
	add("from", req.From)
	add("tolerant", req.Tolerant)
	if req.Faults {
		parts = append(parts, "+faults")
	}
	return strings.Join(parts, " ")
}

// revision processes one file revision: load (keeping the last good
// revision on failure), diff, migrate graphs, and re-check only what the
// edit affected.
func (w *watcher) revision(rev int, path, src string, requests func(*gcl.File) []api.Request) {
	f, err := serve.LoadSource(src)
	if err != nil {
		fmt.Fprintf(w.out, "== rev %d %s: load failed, keeping last good revision\n   ! %v\n", rev, path, err)
		return
	}
	reqs := requests(f)

	var plan *flow.Plan
	var im *flow.Impact
	if w.last != nil {
		plan = flow.PlanRepair(w.last.AST, f.AST)
		im = flow.AffectedBy(w.last.AST, f.AST)
		var edits []string
		if len(im.ChangedVars) > 0 {
			edits = append(edits, "vars: "+strings.Join(im.ChangedVars, ","))
		}
		if len(im.ChangedPreds) > 0 {
			edits = append(edits, "preds: "+strings.Join(im.ChangedPreds, ","))
		}
		if len(im.ChangedActions) > 0 {
			edits = append(edits, "actions: "+strings.Join(im.ChangedActions, ","))
		}
		if len(im.ChangedFaults) > 0 {
			edits = append(edits, "faults: "+strings.Join(im.ChangedFaults, ","))
		}
		if len(edits) == 0 {
			edits = append(edits, "reformat only")
		}
		fmt.Fprintf(w.out, "== rev %d %s — %s; affected preds: %s\n",
			rev, path, strings.Join(edits, "; "), orNone(im.AffectedPreds))

		resolve := func(initName string) (state.Predicate, bool) {
			if initName == state.True.String() {
				return state.True, true
			}
			if plan.SamePreds[initName] {
				if p, ok := w.last.Pred(initName); ok {
					return p, true
				}
			}
			return state.Predicate{}, false
		}
		st := explore.MigrateProgram(w.last.Program, f.Program, plan.Graph, resolve)
		if st.Rebound+st.Repaired+st.Dropped > 0 {
			fmt.Fprintf(w.out, "   graphs: %d rebound, %d repaired, %d rebuilt\n",
				st.Rebound, st.Repaired, st.Dropped)
		}
	} else {
		fmt.Fprintf(w.out, "== rev %d %s\n", rev, path)
	}

	next := make(map[string]*api.Response, len(reqs))
	for _, req := range reqs {
		req.Program = src
		k := sig(req)
		if old := w.cache[k]; old != nil && serve.Preservable(req, old, plan, im, f) {
			next[k] = old
			fmt.Fprintf(w.out, "   = %s: %s (preserved)\n", describe(req), old.Verdict)
			continue
		}
		mark := "~"
		if w.last == nil || w.cache[sig(req)] == nil {
			mark = "+"
		}
		start := time.Now()
		resp, err := serve.Eval(context.Background(), f, req)
		if err != nil {
			fmt.Fprintf(w.out, "   ! %s: %v\n", describe(req), err)
			continue
		}
		next[k] = resp
		verdict := resp.Verdict
		if resp.Detail != "" {
			verdict += " — " + resp.Detail
		}
		fmt.Fprintf(w.out, "   %s %s: %s (%s)\n", mark, describe(req), verdict, time.Since(start).Round(time.Microsecond))
	}
	w.last = f
	w.cache = next
}

func orNone(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ",")
}
