package core

import (
	"context"
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// Corrector asserts "Z corrects X in C from U" (Section 4.1): component C,
// witness predicate Z, correction predicate X, and the predicate U the
// corrects relation is refined from. When Z equals X the definition reduces
// to Arora & Gouda's closure-and-convergence (the paper's remark in
// Section 4.1).
type Corrector struct {
	Name    string
	C       *guarded.Program
	Z, X, U state.Predicate
}

func (c Corrector) String() string {
	name := c.Name
	if name == "" {
		name = c.C.Name()
	}
	return fmt.Sprintf("corrector %s: %s corrects %s from %s", name, c.Z, c.X, c.U)
}

// detectorView reuses the detector checks for the three shared conditions.
func (c Corrector) detectorView() Detector {
	return Detector{Name: c.Name, D: c.C, Z: c.Z, X: c.X, U: c.U}
}

// Check decides whether C refines 'Z corrects X' from U: the detector
// conditions Safeness, Progress, Stability, plus Convergence — every fair
// maximal computation from U reaches the correction predicate X, and X is
// never falsified once established (along any reachable computation).
func (c Corrector) Check() error {
	return c.CheckCtx(context.Background())
}

// CheckCtx is Check under a context: cancellation aborts the graph build
// (and the closure scan on the error path) with ctx.Err().
func (c Corrector) CheckCtx(ctx context.Context) error {
	// Same ordering as Detector.CheckCtx: a cached (or repaired) graph
	// decides the check in linear set operations, so the prover and slicer
	// accelerators only run when the graph would have to be built.
	if _, cached := explore.Peek(c.C, c.U, explore.Options{}); !cached {
		if componentProver != nil && componentProver("corrector", c.C, c.Z, c.X, c.U) {
			return nil
		}
		if componentSlicer != nil {
			if verdict, ok := componentSlicer(ctx, "corrector", c.C, c.Z, c.X, c.U); ok && verdict == nil {
				return nil
			}
			// A sliced violation proves one exists; fall through so the
			// full-space check reports full-width witness states.
		}
	}
	g, err := explore.SharedCtx(ctx, c.C, c.U, explore.Options{})
	if err != nil {
		// A cancelled build is the caller walking away, not a verdict.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// Historical error precedence: closure (or enumeration) problems
		// are reported before the build failure.
		if cerr := spec.CheckClosedCtx(ctx, c.C, c.U); cerr != nil {
			return &ConditionError{Component: c.String(), Condition: "Closure", Cause: cerr}
		}
		return err
	}
	if cerr := spec.CheckClosedOn(g, c.U); cerr != nil {
		return &ConditionError{Component: c.String(), Condition: "Closure", Cause: cerr}
	}
	reach := g.Reach(g.SetOf(c.U), nil)
	if err := c.detectorView().checkOn(g, reach, true); err != nil {
		cerr := err.(*ConditionError)
		cerr.Component = c.String()
		return cerr
	}
	return c.checkConvergence(g, reach)
}

// checkConvergence verifies the Convergence condition of 'Z corrects X' on
// the reachable set: (a) no reachable step falsifies X (X is closed along
// every computation), and (b) every fair maximal computation reaches X.
func (c Corrector) checkConvergence(g *explore.Graph, reach *explore.Bitset) error {
	xSet := g.SetOf(c.X)
	var stepErr error
	xReach := xSet.Clone()
	xReach.Intersect(reach)
	xReach.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if !xSet.Has(e.To) {
				stepErr = fmt.Errorf("step %s -> %s (action %s) falsifies X",
					g.State(id), g.State(e.To), g.ActionName(e.Action))
				return false
			}
		}
		return true
	})
	if stepErr != nil {
		return &ConditionError{Component: c.String(), Condition: "Convergence", Cause: stepErr}
	}
	goal := xSet.Clone()
	goal.Intersect(reach)
	if v := g.CheckEventually(reach, goal); v != nil {
		return &ConditionError{Component: c.String(), Condition: "Convergence", Cause: v}
	}
	return nil
}

// CheckFTolerant decides whether C is a nonmasking (respectively fail-safe
// or masking) F-tolerant corrector (Section 4.1, "tolerant corrector",
// combined with Section 2.4):
//
//   - fault.Nonmasking: computations of C ‖ F have a suffix in
//     'Z corrects X'. Under Assumption 2 this holds iff after faults stop C
//     converges from the fault span back to the region from which the
//     fault-free corrector specification holds (the paper's Theorem 4.3 and
//     Theorem 5.5 Part 4 use exactly this argument: Stability and
//     Convergence may be violated by fault actions but never by program
//     actions).
//   - fault.FailSafe: under faults the safety part (Safeness, Stability, and
//     the closure half of Convergence) holds over the span.
//   - fault.Masking: under faults the full corrector specification holds
//     over the span.
func (c Corrector) CheckFTolerant(f fault.Class, kind fault.Kind) error {
	return c.CheckFTolerantCtx(context.Background(), f, kind)
}

// CheckFTolerantCtx is CheckFTolerant under a context; cancellation aborts
// the fault-free check, the span exploration, and the convergence build
// with ctx.Err().
func (c Corrector) CheckFTolerantCtx(ctx context.Context, f fault.Class, kind fault.Kind) error {
	if err := c.CheckCtx(ctx); err != nil {
		return err
	}
	span, err := fault.ComputeSpanCtx(ctx, c.C, f, c.U)
	if err != nil {
		return err
	}
	switch kind {
	case fault.FailSafe:
		if err := c.detectorView().checkOn(span.Graph, span.Reachable, false); err != nil {
			return err
		}
		return c.checkXClosure(span.Graph, span.Reachable)
	case fault.Masking:
		if err := c.detectorView().checkOn(span.Graph, span.Reachable, true); err != nil {
			return err
		}
		return c.checkConvergence(span.Graph, span.Reachable)
	case fault.Nonmasking:
		return c.checkNonmaskingTolerant(ctx, span)
	default:
		return fmt.Errorf("core: unknown tolerance kind %d", int(kind))
	}
}

func (c Corrector) checkXClosure(g *explore.Graph, reach *explore.Bitset) error {
	xSet := g.SetOf(c.X)
	var stepErr error
	xReach := xSet.Clone()
	xReach.Intersect(reach)
	xReach.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if !xSet.Has(e.To) {
				stepErr = fmt.Errorf("step %s -> %s falsifies X", g.State(id), g.State(e.To))
				return false
			}
		}
		return true
	})
	if stepErr != nil {
		return &ConditionError{Component: c.String(), Condition: "Convergence", Cause: stepErr}
	}
	return nil
}

// checkNonmaskingTolerant verifies that C alone, started anywhere in the
// fault span, converges to the set of states from which the fault-free
// corrector specification is satisfied.
func (c Corrector) checkNonmaskingTolerant(ctx context.Context, span *fault.Span) error {
	g, err := explore.SharedCtx(ctx, c.C, span.Predicate, explore.Options{})
	if err != nil {
		return err
	}
	good := c.GoodRegion(g)
	from := g.SetOf(span.Predicate)
	if v := g.CheckEventually(from, good); v != nil {
		return &ConditionError{Component: c.String(), Condition: "Convergence",
			Cause: fmt.Errorf("no suffix satisfying the corrector specification: %w", v)}
	}
	return nil
}

// GoodRegion computes the largest set of nodes from which every computation
// of C satisfies the full corrector specification: the detector good region
// further restricted so that X is never falsified and Convergence holds.
func (c Corrector) GoodRegion(g *explore.Graph) *explore.Bitset {
	region := c.detectorView().GoodRegion(g)
	xSet := g.SetOf(c.X)
	// Remove states with X-falsifying steps, then re-close.
	xRegion := xSet.Clone()
	xRegion.Intersect(region)
	xRegion.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if !xSet.Has(e.To) {
				region.Remove(id)
				break
			}
		}
		return true
	})
	region = g.LargestClosedSubset(region)
	// Prune states from which X is not eventually reached, to a fixpoint.
	for {
		goal := xSet.Clone()
		goal.Intersect(region)
		violating := -1
		region.ForEach(func(id int) bool {
			single := explore.NewBitset(g.NumNodes())
			single.Add(id)
			if v := g.CheckEventually(single, goal); v != nil {
				violating = id
				return false
			}
			return true
		})
		if violating < 0 {
			return region
		}
		region.Remove(violating)
		region = g.LargestClosedSubset(region)
	}
}
