package core_test

import (
	"strings"
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/memaccess"
	"detcorr/internal/state"
)

// restoreTemplate is the generic recovery action used by the synthesis
// tests: re-establish the page.
func restoreTemplate(sch *state.Schema) guarded.Action {
	return guarded.Det("recover-page",
		state.Pred("¬present", func(s state.State) bool { return s.GetName("present") == 0 }),
		func(s state.State) state.State { return s.WithName("present", 1) },
	)
}

func TestWeakestDetectionPredicateMemaccess(t *testing.T) {
	sys := memaccess.MustNew(2)
	sf := core.WeakestDetectionPredicate(sys.Intolerant, 0, sys.Spec.FailSafeSpec())
	// For V=2 the weakest detection predicate of the read action is:
	// the address is present, or data already holds the only wrong value
	// (re-writing it is not a "set to an incorrect value").
	err := sys.BaseSchema.ForEachState(func(s state.State) bool {
		want := s.GetName("present") != 0 || s.GetName("data") == (1-s.GetName("val"))+1
		if got := sf.Holds(s); got != want {
			t.Errorf("sf(%s) = %v, want %v", s, got, want)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddFailSafeMemaccess(t *testing.T) {
	sys := memaccess.MustNew(2)
	synth := core.AddFailSafe(sys.Intolerant, sys.Spec.FailSafeSpec())
	rep := fault.CheckFailSafe(synth, sys.PageFaultBase, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("synthesized fail-safe program should be fail-safe tolerant: %v", rep.Err)
	}
	// And it genuinely lost masking (it can block after a fault).
	if rep := fault.CheckMasking(synth, sys.PageFaultBase, sys.Spec, sys.S); rep.OK() {
		t.Error("synthesized fail-safe program must not be masking tolerant")
	}
}

func TestAddNonmaskingMemaccess(t *testing.T) {
	sys := memaccess.MustNew(2)
	synth, err := core.AddNonmasking(sys.Intolerant, sys.PageFaultBase, sys.S, []guarded.Action{restoreTemplate(sys.BaseSchema)})
	if err != nil {
		t.Fatal(err)
	}
	rep := fault.CheckNonmasking(synth, sys.PageFaultBase, sys.Spec, sys.S, sys.S)
	if !rep.OK() {
		t.Errorf("synthesized nonmasking program should be nonmasking tolerant: %v", rep.Err)
	}
}

func TestAddMaskingMemaccess(t *testing.T) {
	sys := memaccess.MustNew(2)
	synth, err := core.AddMasking(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S, []guarded.Action{restoreTemplate(sys.BaseSchema)})
	if err != nil {
		t.Fatal(err)
	}
	rep := fault.CheckMasking(synth, sys.PageFaultBase, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("synthesized masking program should be masking tolerant: %v", rep.Err)
	}
}

func TestSynthesisMatchesHandwritten(t *testing.T) {
	// The synthesized programs land in the same tolerance classes as the
	// paper's hand-written pf/pn/pm (E10).
	sys := memaccess.MustNew(3)
	synthFS := core.AddFailSafe(sys.Intolerant, sys.Spec.FailSafeSpec())
	synthNM, err := core.AddNonmasking(sys.Intolerant, sys.PageFaultBase, sys.S, []guarded.Action{restoreTemplate(sys.BaseSchema)})
	if err != nil {
		t.Fatal(err)
	}
	synthM, err := core.AddMasking(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S, []guarded.Action{restoreTemplate(sys.BaseSchema)})
	if err != nil {
		t.Fatal(err)
	}
	type verdicts struct{ fs, nm, m bool }
	classify := func(p *guarded.Program, f fault.Class) verdicts {
		return verdicts{
			fs: fault.CheckFailSafe(p, f, sys.Spec, sys.S).OK(),
			nm: fault.CheckNonmasking(p, f, sys.Spec, sys.S, sys.S).OK(),
			m:  fault.CheckMasking(p, f, sys.Spec, sys.S).OK(),
		}
	}
	handFS := classify(sys.FailSafe, sys.PageFaultWitness)
	handNM := classify(sys.Nonmasking, sys.PageFaultBase)
	handM := classify(sys.Masking, sys.PageFaultWitness)
	gotFS := classify(synthFS, sys.PageFaultBase)
	gotNM := classify(synthNM, sys.PageFaultBase)
	gotM := classify(synthM, sys.PageFaultBase)
	if gotFS != handFS {
		t.Errorf("fail-safe verdicts differ: synthesized %+v, handwritten %+v", gotFS, handFS)
	}
	if gotNM != handNM {
		t.Errorf("nonmasking verdicts differ: synthesized %+v, handwritten %+v", gotNM, handNM)
	}
	if gotM != handM {
		t.Errorf("masking verdicts differ: synthesized %+v, handwritten %+v", gotM, handM)
	}
}

func TestSynthesizeCorrectorReportsUnreachable(t *testing.T) {
	sys := memaccess.MustNew(2)
	// A useless recovery template (it cannot re-establish the page).
	noop := guarded.Skip("noop", state.Pred("¬present", func(s state.State) bool {
		return s.GetName("present") == 0
	}))
	_, _, err := core.SynthesizeCorrector("broken", sys.BaseSchema, state.True, sys.S, []guarded.Action{noop})
	if err == nil || !strings.Contains(err.Error(), "cannot reach the target") {
		t.Errorf("expected unreachable-states error, got %v", err)
	}
}

func TestComputeRanking(t *testing.T) {
	sys := memaccess.MustNew(2)
	recovery := guarded.MustProgram("rec", sys.BaseSchema, restoreTemplate(sys.BaseSchema))
	rank, err := core.ComputeRanking(recovery, state.True, sys.S)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.BaseSchema.ForEachState(func(s state.State) bool {
		d, ok := rank.Rank(s)
		if !ok {
			t.Errorf("state %s should be ranked", s)
			return false
		}
		want := 0
		if s.GetName("present") == 0 {
			want = 1
		}
		if d != want {
			t.Errorf("rank(%s) = %d, want %d", s, d, want)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTheorem3_4OnFailSafeMemaccess(t *testing.T) {
	sys := memaccess.MustNew(2)
	res := core.Theorem3_4(sys.Intolerant, sys.FailSafe, sys.Spec.FailSafeSpec(), sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 3.4 instance: %v", res.Err)
	}
	if len(res.Detectors) != 1 {
		t.Errorf("want one detector, got %d", len(res.Detectors))
	}
}

func TestTheoremHypothesisFailureIsReported(t *testing.T) {
	// Feeding the *intolerant* program as its own refinement with a fault
	// class it cannot tolerate must fail on a hypothesis, not panic.
	sys := memaccess.MustNew(2)
	res := core.Theorem3_6(sys.Intolerant, sys.Nonmasking, sys.Spec, sys.PageFaultBase, sys.S, sys.S)
	if res.OK() {
		t.Fatal("pn is not fail-safe tolerant; Theorem 3.6 hypothesis or conclusion must fail")
	}
	if !strings.Contains(res.Err.Error(), "hypothesis") && !strings.Contains(res.Err.Error(), "conclusion") {
		t.Errorf("failure should name the failed obligation: %v", res.Err)
	}
}

func TestDetectorConditionFailures(t *testing.T) {
	// A two-bit program where Z can hold without X: Safeness must fail.
	sch := state.MustSchema(state.BoolVar("z"), state.BoolVar("x"))
	setZ := guarded.Det("setZ", state.Pred("¬z", func(s state.State) bool { return !s.Bool(0) }),
		func(s state.State) state.State { return s.WithBool(0, true) })
	p := guarded.MustProgram("bad", sch, setZ)
	d := core.Detector{
		D: p,
		Z: state.VarTrue(sch, "z"),
		X: state.VarTrue(sch, "x"),
		U: state.True,
	}
	err := d.Check()
	var cerr *core.ConditionError
	if !asCondition(err, &cerr) || cerr.Condition != "Safeness" {
		t.Fatalf("want Safeness violation, got %v", err)
	}

	// A program that truthifies Z only from x, then falsifies Z while X
	// stays true: Stability must fail.
	reset := guarded.Det("resetZ", state.Pred("z ∧ x", func(s state.State) bool { return s.Bool(0) && s.Bool(1) }),
		func(s state.State) state.State { return s.WithBool(0, false) })
	setZfromX := guarded.Det("setZ", state.Pred("x ∧ ¬z", func(s state.State) bool { return s.Bool(1) && !s.Bool(0) }),
		func(s state.State) state.State { return s.WithBool(0, true) })
	p2 := guarded.MustProgram("unstable", sch, setZfromX, reset)
	d2 := core.Detector{D: p2, Z: state.VarTrue(sch, "z"), X: state.VarTrue(sch, "x"),
		U: state.Pred("z ⇒ x", func(s state.State) bool { return !s.Bool(0) || s.Bool(1) })}
	err = d2.Check()
	if !asCondition(err, &cerr) || cerr.Condition != "Stability" {
		t.Fatalf("want Stability violation, got %v", err)
	}

	// A program that never truthifies Z while X holds forever: Progress
	// must fail (deadlock outside the goal).
	p3 := guarded.MustProgram("silent", sch)
	d3 := core.Detector{D: p3, Z: state.VarTrue(sch, "z"), X: state.VarTrue(sch, "x"),
		U: state.Pred("¬z", func(s state.State) bool { return !s.Bool(0) })}
	err = d3.Check()
	if !asCondition(err, &cerr) || cerr.Condition != "Progress" {
		t.Fatalf("want Progress violation, got %v", err)
	}
}

func TestCorrectorConvergenceFailure(t *testing.T) {
	// X is reachable but can be abandoned: Convergence must fail on the
	// X-falsifying step.
	sch := state.MustSchema(state.BoolVar("x"))
	flip := guarded.Det("flip", state.True, func(s state.State) state.State {
		return s.WithBool(0, !s.Bool(0))
	})
	p := guarded.MustProgram("flipper", sch, flip)
	c := core.Corrector{C: p, Z: state.VarTrue(sch, "x"), X: state.VarTrue(sch, "x"), U: state.True}
	err := c.Check()
	var cerr *core.ConditionError
	if !asCondition(err, &cerr) || cerr.Condition != "Convergence" {
		t.Fatalf("want Convergence violation, got %v", err)
	}
}

func TestExtensionalPredicate(t *testing.T) {
	sys := memaccess.MustNew(2)
	g, err := explore.Build(sys.Intolerant, state.True, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := g.SetOf(sys.S)
	pred := core.ExtensionalPredicate("S-ext", g, set)
	err = sys.BaseSchema.ForEachState(func(s state.State) bool {
		if pred.Holds(s) != sys.S.Holds(s) {
			t.Errorf("extensional predicate disagrees at %s", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func asCondition(err error, target **core.ConditionError) bool {
	if err == nil {
		return false
	}
	c, ok := err.(*core.ConditionError)
	if ok {
		*target = c
	}
	return ok
}

func TestPrevalidateRejectsBadWrites(t *testing.T) {
	sys := memaccess.MustNew(2)
	bad := guarded.Action{
		Name:   "miswired",
		Guard:  state.True,
		Next:   func(s state.State) []state.State { return []state.State{s} },
		Writes: []string{"no-such-var"},
	}
	prog, err := guarded.NewProgram("bad", sys.BaseSchema, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AddNonmasking(prog, sys.PageFaultBase, sys.S, nil); err == nil {
		t.Fatal("AddNonmasking should reject an action declaring a write to an unknown variable")
	} else if !strings.Contains(err.Error(), "no-such-var") {
		t.Errorf("error should name the unknown variable: %v", err)
	}
	if _, _, err := core.SynthesizeCorrector("c", sys.BaseSchema, state.True, sys.S, []guarded.Action{bad}); err == nil {
		t.Fatal("SynthesizeCorrector should reject a miswired recovery template")
	}
}
