package core

import (
	"context"
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// Detector asserts "Z detects X in D from U" (Section 3.1): component D,
// witness predicate Z, detection predicate X, and the predicate U the
// detects relation is refined from. D may be the whole composed program —
// per the paper's remark after Theorem 3.4, showing that a program contains
// a detector is done by showing the program itself refines the detector
// specification.
type Detector struct {
	Name    string
	D       *guarded.Program
	Z, X, U state.Predicate
}

// ConditionError reports which of the detector/corrector conditions failed.
type ConditionError struct {
	Component string
	Condition string // "Safeness", "Progress", "Stability", "Convergence", or "Closure"
	Cause     error
}

// Error implements the error interface.
func (e *ConditionError) Error() string {
	return fmt.Sprintf("%s: %s violated: %v", e.Component, e.Condition, e.Cause)
}

// Unwrap returns the underlying cause.
func (e *ConditionError) Unwrap() error { return e.Cause }

func (d Detector) String() string {
	name := d.Name
	if name == "" {
		name = d.D.Name()
	}
	return fmt.Sprintf("detector %s: %s detects %s from %s", name, d.Z, d.X, d.U)
}

// ComponentProver is an optional exploration-free fast path for the
// detector and corrector checks: it reports true only when it has proved
// every condition of the component specification (kind is "detector" or
// "corrector") for all U-states — a superset of the reachable states the
// graph check inspects, so a proof soundly implies the graph verdict.
// Anything short of a proof returns false and Check falls back to
// exploration; registering a prover never changes a verdict.
// internal/prove registers one via Certify.
type ComponentProver func(kind string, p *guarded.Program, z, x, u state.Predicate) bool

var componentProver ComponentProver

// RegisterComponentProver installs the fast path. Passing nil removes it.
func RegisterComponentProver(f ComponentProver) { componentProver = f }

// ComponentSlicer is an optional cone-of-influence pre-pass for the
// detector and corrector checks: it runs the component check on a sliced
// program whose verdicts provably coincide with the full program's,
// returning (verdict, true) when it decided the check and (_, false) when
// slicing does not apply. Callers accept a nil verdict directly but
// re-derive violations full-width, so reported witness states always
// carry every variable. internal/flow registers one via Certify.
type ComponentSlicer func(ctx context.Context, kind string, p *guarded.Program, z, x, u state.Predicate) (error, bool)

var componentSlicer ComponentSlicer

// RegisterComponentSlicer installs the slicing pre-pass. Passing nil
// removes it.
func RegisterComponentSlicer(f ComponentSlicer) { componentSlicer = f }

// Check decides whether D refines 'Z detects X' from U. Refinement from U
// requires U closed in D; Safeness, Progress and Stability are then checked
// over the states reachable from U. A registered prover that discharges
// the obligations for all U-states short-circuits the graph construction.
func (d Detector) Check() error {
	return d.CheckCtx(context.Background())
}

// CheckCtx is Check under a context: cancellation aborts the graph build
// (and the closure scan on the error path) with ctx.Err(). The condition
// checks on the built graph are not interruptible — they are linear set
// operations on an already-paid-for graph.
func (d Detector) CheckCtx(ctx context.Context) error {
	// With the graph already cached the conditions cost linear set
	// operations, cheaper than re-running the prover's abstract
	// enumeration or the slicer's re-exploration — so both accelerators
	// only pay for themselves when the graph would have to be built.
	// Repaired graphs (explore.Repair) land in the cache under the new
	// program, so incremental re-verification takes this fast path.
	if _, cached := explore.Peek(d.D, d.U, explore.Options{}); !cached {
		if componentProver != nil && componentProver("detector", d.D, d.Z, d.X, d.U) {
			return nil
		}
		if componentSlicer != nil {
			if verdict, ok := componentSlicer(ctx, "detector", d.D, d.Z, d.X, d.U); ok && verdict == nil {
				return nil
			}
			// A sliced violation proves one exists; fall through so the
			// full-space check reports full-width witness states.
		}
	}
	g, err := explore.SharedCtx(ctx, d.D, d.U, explore.Options{})
	if err != nil {
		// A cancelled build is the caller walking away, not a verdict; do
		// not mask it with the closure re-check below.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// Preserve the historical error precedence: a closure problem (or
		// the enumeration error explaining why neither scan nor build can
		// run) is reported before the build failure.
		if cerr := spec.CheckClosedCtx(ctx, d.D, d.U); cerr != nil {
			return &ConditionError{Component: d.String(), Condition: "Closure", Cause: cerr}
		}
		return err
	}
	if cerr := spec.CheckClosedOn(g, d.U); cerr != nil {
		return &ConditionError{Component: d.String(), Condition: "Closure", Cause: cerr}
	}
	reach := g.Reach(g.SetOf(d.U), nil)
	return d.checkOn(g, reach, true)
}

// checkOn verifies the detector conditions on a prebuilt graph restricted to
// the given reachable set. When progress is false only the safety conditions
// (Safeness, Stability) are checked — that is the fail-safe tolerance
// specification of 'Z detects X'. All three conditions run on the graph's
// memoized predicate bitsets: repeated checks on one graph cost word-level
// set operations plus one memoized liveness query, not per-state predicate
// evaluations.
func (d Detector) checkOn(g *explore.Graph, reach *explore.Bitset, progress bool) error {
	zSet := g.SetOf(d.Z)
	xSet := g.SetOf(d.X)
	// Safeness: Z ⇒ X at every reachable state. The witness is the lowest-id
	// violating state, exactly as the previous per-state sweep reported.
	viol := zSet.Clone()
	viol.Subtract(xSet)
	viol.Intersect(reach)
	if id := viol.Any(); id >= 0 {
		return &ConditionError{Component: d.String(), Condition: "Safeness",
			Cause: fmt.Errorf("Z ∧ ¬X at %s", g.State(id))}
	}
	// Stability: every reachable step from a Z-state satisfies Z ∨ ¬X at
	// the target.
	var stabErr error
	zReach := zSet.Clone()
	zReach.Intersect(reach)
	zReach.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if !zSet.Has(e.To) && xSet.Has(e.To) {
				stabErr = fmt.Errorf("step %s -> %s (action %s) falsifies Z while X holds",
					g.State(id), g.State(e.To), g.ActionName(e.Action))
				return false
			}
		}
		return true
	})
	if stabErr != nil {
		return &ConditionError{Component: d.String(), Condition: "Stability", Cause: stabErr}
	}
	if !progress {
		return nil
	}
	// Progress: from every reachable X ∧ ¬Z state, every fair maximal
	// computation reaches Z ∨ ¬X.
	start := xSet.Clone()
	start.Subtract(zSet)
	start.Intersect(reach)
	goal := xSet.Complement()
	goal.Union(zSet)
	if v := g.CheckEventually(start, goal); v != nil {
		return &ConditionError{Component: d.String(), Condition: "Progress", Cause: v}
	}
	return nil
}

// CheckFTolerant decides whether D is a fail-safe (respectively masking)
// F-tolerant detector: D refines 'Z detects X' from U, and D ‖ F refines the
// corresponding tolerance specification of 'Z detects X' from the fault span
// of U (Section 3.1, "tolerant detector", combined with Section 2.4).
//
//   - fault.FailSafe: under faults only Safeness and Stability must hold.
//   - fault.Masking: under faults all three conditions must hold (Progress
//     is checked with fault actions unfair — faults occur finitely often).
//   - fault.Nonmasking: computations under faults must have a suffix
//     satisfying the detector specification; under Assumption 2 this is
//     checked as convergence of D alone from the span to a region where the
//     fault-free conditions hold (see GoodRegion).
func (d Detector) CheckFTolerant(f fault.Class, kind fault.Kind) error {
	return d.CheckFTolerantCtx(context.Background(), f, kind)
}

// CheckFTolerantCtx is CheckFTolerant under a context; cancellation aborts
// the fault-free check, the span exploration, and the convergence build
// with ctx.Err().
func (d Detector) CheckFTolerantCtx(ctx context.Context, f fault.Class, kind fault.Kind) error {
	if err := d.CheckCtx(ctx); err != nil {
		return err
	}
	span, err := fault.ComputeSpanCtx(ctx, d.D, f, d.U)
	if err != nil {
		return err
	}
	switch kind {
	case fault.FailSafe:
		return d.checkOn(span.Graph, span.Reachable, false)
	case fault.Masking:
		return d.checkOn(span.Graph, span.Reachable, true)
	case fault.Nonmasking:
		return d.checkNonmaskingTolerant(ctx, span)
	default:
		return fmt.Errorf("core: unknown tolerance kind %d", int(kind))
	}
}

func (d Detector) checkNonmaskingTolerant(ctx context.Context, span *fault.Span) error {
	g, err := explore.SharedCtx(ctx, d.D, span.Predicate, explore.Options{})
	if err != nil {
		return err
	}
	good := d.GoodRegion(g)
	from := g.SetOf(span.Predicate)
	if v := g.CheckEventually(from, good); v != nil {
		return &ConditionError{Component: d.String(), Condition: "Convergence",
			Cause: fmt.Errorf("no suffix satisfying the detector specification: %w", v)}
	}
	return nil
}

// GoodRegion computes the largest set of nodes G such that every computation
// of D confined to G satisfies Safeness and Stability, G is closed under
// D's transitions, and Progress holds from every state of G. A computation
// with a suffix entering G satisfies the detector specification from that
// point on.
func (d Detector) GoodRegion(g *explore.Graph) *explore.Bitset {
	zSet := g.SetOf(d.Z)
	xSet := g.SetOf(d.X)
	// Locally safe states: Safeness holds (¬Z ∨ X).
	safe := zSet.Clone()
	safe.Subtract(xSet)
	safe = safe.Complement()
	// Remove sources of stability-violating steps, then close.
	badTarget := xSet.Clone()
	badTarget.Subtract(zSet) // ¬Z ∧ X
	stabSrc := zSet.Clone()
	stabSrc.Intersect(safe)
	stabSrc.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if badTarget.Has(e.To) {
				safe.Remove(id)
				break
			}
		}
		return true
	})
	region := g.LargestClosedSubset(safe)
	// Prune states where Progress fails, iterating to a fixpoint (removing
	// a state can only shrink the closed region further).
	for {
		goal := xSet.Complement()
		goal.Union(zSet)
		goal.Intersect(region)
		violating := -1
		cand := xSet.Clone()
		cand.Subtract(zSet)
		cand.Intersect(region)
		cand.ForEach(func(id int) bool {
			single := explore.NewBitset(g.NumNodes())
			single.Add(id)
			if v := g.CheckEventually(single, goal); v != nil {
				violating = id
				return false
			}
			return true
		})
		if violating < 0 {
			return region
		}
		region.Remove(violating)
		region = g.LargestClosedSubset(region)
	}
}
