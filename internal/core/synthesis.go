package core

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/lint"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// prevalidate runs the dclint structural checks on a program before a
// synthesis step commits to exploring it; error-severity findings (e.g. a
// recovery template declaring a write to a variable missing from the
// schema) abort early with a precise message instead of a downstream
// panic or a silently vacuous result.
func prevalidate(what string, p *guarded.Program) error {
	if err := lint.Errors(lint.Check(p)); err != nil {
		return fmt.Errorf("core: %s: %w", what, err)
	}
	return nil
}

// This file implements the constructive side of the theory: the paper's
// introduction (and its reference [4], "Component based design of
// multitolerance") describes methods that, given a fault-intolerant program,
// calculate the detector and corrector components required for tolerance and
// compose them with the program. Three transformations are provided:
//
//   - AddFailSafe: guard every action with its weakest detection predicate
//     (Theorem 3.3) — composing a detector with each action.
//   - SynthesizeCorrector / AddNonmasking: add corrector actions whose
//     execution strictly decreases a BFS ranking toward the invariant, so
//     convergence holds by construction.
//   - AddMasking: fail-safe restriction on top of the nonmasking program —
//     the detector-atop-corrector shape of the paper's pm (Section 5.1).

// AddFailSafe returns the fail-safe transformation of p for the given safety
// specification: every action g --> st becomes (g ∧ sf) --> st where sf is
// the action's weakest detection predicate. The result never takes a step
// that violates the specification; by Theorem 3.4 it contains a detector for
// every action of p.
func AddFailSafe(p *guarded.Program, sspec spec.Safety) *guarded.Program {
	actions := make([]guarded.Action, p.NumActions())
	for i := 0; i < p.NumActions(); i++ {
		sf := spec.WeakestStepPredicate(p, i, sspec)
		actions[i] = p.Action(i).Restrict(sf)
		actions[i].Name = p.Action(i).Name // Restrict keeps the name; be explicit
	}
	return guarded.MustProgram("failsafe("+p.Name()+")", p.Schema(), actions...)
}

// Ranking is a BFS distance function from each state to a target predicate,
// used to restrict recovery actions to strictly decreasing moves so that the
// synthesized corrector converges by construction (no recovery cycles).
type Ranking struct {
	graph *explore.Graph
	dist  []int
}

// rankUnreachable marks states from which the target is unreachable.
const rankUnreachable = int(^uint(0) >> 1)

// Rank returns the distance of a state to the target, and false when the
// target is unreachable from it (or the state was not explored).
func (r *Ranking) Rank(s state.State) (int, bool) {
	id, ok := r.graph.NodeOf(s)
	if !ok || r.dist[id] == rankUnreachable {
		return 0, false
	}
	return r.dist[id], true
}

// ComputeRanking explores the recovery program from every state satisfying
// `within` and computes, for each explored state, the length of the shortest
// recovery-action path to a state satisfying target.
func ComputeRanking(recovery *guarded.Program, within, target state.Predicate) (*Ranking, error) {
	g, err := explore.Build(recovery, within, explore.Options{})
	if err != nil {
		return nil, err
	}
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = rankUnreachable
	}
	var queue []int
	for id := 0; id < g.NumNodes(); id++ {
		if target.Holds(g.State(id)) {
			dist[id] = 0
			queue = append(queue, id)
		}
	}
	for i := 0; i < len(queue); i++ {
		id := queue[i]
		for _, e := range g.In(id) {
			if dist[e.To] == rankUnreachable {
				dist[e.To] = dist[id] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return &Ranking{graph: g, dist: dist}, nil
}

// SynthesizeCorrector builds a corrector program from recovery action
// templates: each template is restricted so that it executes only when it
// can strictly decrease the BFS rank toward the target, and its
// nondeterminism is narrowed to rank-decreasing successors. Every state
// satisfying `within` must be able to reach the target via recovery actions;
// otherwise an error reports how many states cannot recover.
//
// The returned program, composed in parallel with a program that preserves
// the target, is a corrector for 'target corrects target' from within —
// convergence is by construction (the rank strictly decreases), stability
// and safeness because the corrector is disabled once the target holds.
func SynthesizeCorrector(name string, sch *state.Schema, within, target state.Predicate, templates []guarded.Action) (*guarded.Program, *Ranking, error) {
	recovery, err := guarded.NewProgram(name+".recovery", sch, templates...)
	if err != nil {
		return nil, nil, err
	}
	if err := prevalidate("recovery program", recovery); err != nil {
		return nil, nil, err
	}
	rank, err := ComputeRanking(recovery, within, target)
	if err != nil {
		return nil, nil, err
	}
	stuck := 0
	err = sch.ForEachState(func(s state.State) bool {
		if within.Holds(s) {
			if _, ok := rank.Rank(s); !ok {
				stuck++
			}
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	if stuck > 0 {
		return nil, rank, fmt.Errorf("core: %d states in the fault span cannot reach the target via the recovery actions", stuck)
	}
	actions := make([]guarded.Action, len(templates))
	for i, tpl := range templates {
		t := tpl
		actions[i] = guarded.Choice(
			t.Name,
			state.And(t.Guard, state.Pred("rank-decreasing", func(s state.State) bool {
				d, ok := rank.Rank(s)
				if !ok || d == 0 {
					return false
				}
				for _, ns := range t.Next(s) {
					if nd, ok := rank.Rank(ns); ok && nd < d {
						return true
					}
				}
				return false
			})),
			func(s state.State) []state.State {
				d, _ := rank.Rank(s)
				var out []state.State
				for _, ns := range t.Next(s) {
					if nd, ok := rank.Rank(ns); ok && nd < d {
						out = append(out, ns)
					}
				}
				return out
			},
		)
	}
	prog, err := guarded.NewProgram(name, sch, actions...)
	if err != nil {
		return nil, nil, err
	}
	return prog, rank, nil
}

// AddNonmasking returns the nonmasking transformation of p for fault class
// f and invariant s: the fault span of s is computed, a corrector is
// synthesized from the recovery templates to converge the span back to s,
// and the corrector is composed in parallel with p. The result is the shape
// of the paper's pn (Section 4.3): intolerant actions plus a corrector.
func AddNonmasking(p *guarded.Program, f fault.Class, s state.Predicate, templates []guarded.Action) (*guarded.Program, error) {
	if err := prevalidate("intolerant program", p); err != nil {
		return nil, err
	}
	span, err := fault.ComputeSpan(p, f, s)
	if err != nil {
		return nil, err
	}
	corrector, _, err := SynthesizeCorrector("corrector("+p.Name()+")", p.Schema(), span.Predicate, s, templates)
	if err != nil {
		return nil, err
	}
	return guarded.Parallel("nonmasking("+p.Name()+")", p, corrector)
}

// AddMasking returns the masking transformation of p: the original actions
// are restricted by their weakest detection predicates for the problem's
// safety specification (the detector layer), and the synthesized corrector
// is composed in parallel (the corrector layer) — the detector-atop-
// corrector composition of the paper's pm (Section 5.1). The caller should
// verify the result with fault.CheckMasking; the transformation itself
// cannot guarantee liveness if the detectors disable every path to the goal.
func AddMasking(p *guarded.Program, f fault.Class, prob spec.Problem, s state.Predicate, templates []guarded.Action) (*guarded.Program, error) {
	if err := prevalidate("intolerant program", p); err != nil {
		return nil, err
	}
	span, err := fault.ComputeSpan(p, f, s)
	if err != nil {
		return nil, err
	}
	failsafe := AddFailSafe(p, prob.FailSafeSpec())
	corrector, _, err := SynthesizeCorrector("corrector("+p.Name()+")", p.Schema(), span.Predicate, s, templates)
	if err != nil {
		return nil, err
	}
	return guarded.Parallel("masking("+p.Name()+")", failsafe, corrector)
}
