// Package core implements the paper's primary contribution: the two
// fault-tolerance components — detectors (Section 3) and correctors
// (Section 4) — their tolerant variants, executable versions of every
// theorem in the paper (Sections 3–5), and the constructive design method
// the paper builds on (adding detectors and correctors to a fault-intolerant
// program to obtain fail-safe, nonmasking, and masking tolerance, per
// reference [4]).
//
// A detector for 'Z detects X' is a component d whose computations satisfy
//
//	Safeness:  Z ⇒ X at every state;
//	Progress:  whenever X holds, eventually Z holds or X is falsified;
//	Stability: once Z holds it remains true unless X is falsified.
//
// A corrector for 'Z corrects X' additionally satisfies
//
//	Convergence: eventually X holds and continues to hold.
//
// All four conditions are decided exactly over the finite transition graph:
// Safeness and Stability are state/transition conditions; Progress and
// Convergence reduce to "every fair maximal computation reaches a goal set",
// decided by deadlock and fair-cycle analysis (package explore).
package core
