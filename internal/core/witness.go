package core

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/state"
)

// WitnessDetectionPredicate computes the weakest detection predicate X for
// which a program refines 'Z detects X' from the states of `reach`, inside
// the upper bound `seed` (typically the weakest safe predicate sf of
// Theorem 3.3, so that the result is guaranteed to be a detection
// predicate). It realizes the existence claim of Theorem 3.4: the theorem's
// proof constructs one particular X; here we compute the greatest X ⊆ seed
// consistent with the Safeness, Progress and Stability conditions by
// pruning:
//
//   - Stability victims: a ¬Z state that is the target of a reachable step
//     from a Z state must lie outside X.
//   - Progress victims: an X ∧ ¬Z state from which some fair maximal
//     computation avoids Z ∨ ¬X forever must lie outside X.
//
// Both prunes only shrink X, and shrinking X can only create new victims,
// so iterating to a fixpoint terminates. The returned predicate is
// extensional over the graph's states; callers should verify the resulting
// Detector with Check, which this package's theorem drivers do.
func WitnessDetectionPredicate(g *explore.Graph, reach *explore.Bitset, z state.Predicate, seed state.Predicate) state.Predicate {
	x := explore.NewBitset(g.NumNodes())
	reach.ForEach(func(id int) bool {
		if seed.Holds(g.State(id)) {
			x.Add(id)
		}
		return true
	})
	zSet := explore.NewBitset(g.NumNodes())
	reach.ForEach(func(id int) bool {
		if z.Holds(g.State(id)) {
			zSet.Add(id)
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		// Stability victims.
		zSet.ForEach(func(id int) bool {
			for _, e := range g.Out(id) {
				if !reach.Has(e.To) {
					continue
				}
				if !zSet.Has(e.To) && x.Has(e.To) {
					x.Remove(e.To)
					changed = true
				}
			}
			return true
		})
		// Progress victims: states in X ∧ ¬Z that cannot be guaranteed to
		// reach Z ∨ ¬X.
		goal := zSet.Clone()
		xComp := x.Complement()
		xComp.Intersect(reach)
		goal.Union(xComp)
		start := x.Clone()
		start.Subtract(zSet)
		for {
			v := g.CheckEventually(start, goal)
			if v == nil {
				break
			}
			// Remove the states of the violating stem/cycle that are in
			// X ∧ ¬Z; at least the first stem state qualifies.
			removed := false
			for _, s := range append(append([]state.State(nil), v.Stem...), v.Cycle...) {
				if id, ok := g.NodeOf(s); ok && x.Has(id) && !zSet.Has(id) {
					x.Remove(id)
					start.Remove(id)
					goal.Add(id)
					removed = true
				}
			}
			if !removed {
				// Defensive: the violation must involve an X ∧ ¬Z state; if
				// not, stop rather than loop forever.
				break
			}
			changed = true
		}
	}
	name := fmt.Sprintf("witnessX(%s ⊆ %s)", z, seed)
	return state.Pred(name, func(s state.State) bool {
		id, ok := g.NodeOf(s)
		return ok && x.Has(id)
	})
}

// ExtensionalPredicate turns a node set of a graph into a state predicate.
func ExtensionalPredicate(name string, g *explore.Graph, set *explore.Bitset) state.Predicate {
	return state.Pred(name, func(s state.State) bool {
		id, ok := g.NodeOf(s)
		return ok && set.Has(id)
	})
}
