package core

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// TheoremResult records the outcome of checking one theorem instance: the
// hypotheses verified, the components (detectors/correctors) constructed by
// the proof, and the first failure, if any.
type TheoremResult struct {
	Theorem    string
	Hypotheses []string
	Detectors  []Detector
	Correctors []Corrector
	Err        error
}

// OK reports whether every hypothesis and every conclusion held.
func (r TheoremResult) OK() bool { return r.Err == nil }

// String renders a one-line verdict.
func (r TheoremResult) String() string {
	if r.Err == nil {
		return fmt.Sprintf("%s: verified (%d hypotheses, %d detectors, %d correctors)",
			r.Theorem, len(r.Hypotheses), len(r.Detectors), len(r.Correctors))
	}
	return fmt.Sprintf("%s: FAILED: %v", r.Theorem, r.Err)
}

func (r *TheoremResult) hypothesis(name string, err error) bool {
	if err != nil {
		r.Err = fmt.Errorf("hypothesis %q: %w", name, err)
		return false
	}
	r.Hypotheses = append(r.Hypotheses, name)
	return true
}

// WeakestDetectionPredicate computes the weakest detection predicate of the
// i-th action of p for the given safety specification (Theorem 3.3 and the
// following definition): the set of states from which executing the action
// maintains the specification. Every X implying it is also a detection
// predicate; the disjunction of detection predicates is one; so the weakest
// one exists and is returned.
func WeakestDetectionPredicate(p *guarded.Program, action int, sspec spec.Safety) state.Predicate {
	return spec.WeakestStepPredicate(p, action, sspec)
}

// refinesSafetyFrom checks that every computation of p from `from` satisfies
// the safety specification, with the given fault class composed in (pass an
// empty class for fault-free checks).
func refinesSafetyFrom(p *guarded.Program, f fault.Class, sspec spec.Safety, from state.Predicate) error {
	span, err := fault.ComputeSpan(p, f, from)
	if err != nil {
		return err
	}
	if v := spec.CheckSafety(span.Graph, span.Reachable, sspec); v != nil {
		return v
	}
	return nil
}

// convergesFrom checks that every fair maximal computation of p from `from`
// reaches `goal` ("p refines (true)*(p|goal) from `from`" when goal is
// closed in p).
func convergesFrom(p *guarded.Program, from, goal state.Predicate) error {
	g, err := explore.Shared(p, from, explore.Options{})
	if err != nil {
		return err
	}
	if v := g.CheckEventually(g.SetOf(from), g.SetOf(goal)); v != nil {
		return v
	}
	return nil
}

// Theorem3_4 checks the instance "programs that refine a safety
// specification contain detectors": given that pp refines p from S, pp
// encapsulates p, and pp refines SSPEC from S, it constructs — for every
// action of p — a witness predicate Z (the guard of the action) and a
// detection predicate X (the weakest one consistent with the detector
// conditions, see WitnessDetectionPredicate) and verifies that pp refines
// 'Z detects X' from S.
func Theorem3_4(p, pp *guarded.Program, sspec spec.Safety, s state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 3.4 (refining a safety spec ⇒ contains detectors)"}
	if !res.hypothesis("p' refines p from S", spec.CheckRefines(pp, p, s)) {
		return res
	}
	if !res.hypothesis("p' encapsulates p", guarded.CheckEncapsulation(pp, p, state.True)) {
		return res
	}
	if !res.hypothesis("p' refines SSPEC from S", refinesSafetyFrom(pp, fault.Class{Name: "∅"}, sspec, s)) {
		return res
	}
	res.Detectors, res.Err = buildActionDetectors(p, pp, sspec, s, nil, 0)
	return res
}

// Theorem3_6 checks the instance "fail-safe F-tolerant programs contain
// fail-safe F-tolerant detectors": under the hypotheses of the theorem it
// verifies that pp is fail-safe F-tolerant for the problem specification
// from R, and that for every action of p, pp is a fail-safe F-tolerant
// detector of a detection predicate of that action.
func Theorem3_6(p, pp *guarded.Program, prob spec.Problem, f fault.Class, s, r state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 3.6 (fail-safe tolerant programs contain fail-safe tolerant detectors)"}
	if !res.hypothesis("p refines SPEC from S", prob.CheckRefinesFrom(p, s)) {
		return res
	}
	if ok, w, err := state.ImpliesEverywhere(pp.Schema(), r, liftToRefined(pp, p, s)); err != nil || !ok {
		if err == nil {
			err = fmt.Errorf("R ⇒ S fails at %s", w)
		}
		res.hypothesis("R ⇒ S", err)
		return res
	}
	res.Hypotheses = append(res.Hypotheses, "R ⇒ S")
	if !res.hypothesis("p' refines p from R", spec.CheckRefines(pp, p, r)) {
		return res
	}
	if !res.hypothesis("p' encapsulates p", guarded.CheckEncapsulation(pp, p, state.True)) {
		return res
	}
	if !res.hypothesis("p'‖F refines SSPEC from T", refinesSafetyFrom(pp, f, prob.FailSafeSpec(), r)) {
		return res
	}
	// Conclusion 1: fail-safe F-tolerance.
	rep := fault.CheckFailSafe(pp, f, prob, r)
	if rep.Err != nil {
		res.Err = fmt.Errorf("conclusion (fail-safe F-tolerant): %w", rep.Err)
		return res
	}
	// Conclusion 2: per-action fail-safe F-tolerant detectors.
	res.Detectors, res.Err = buildActionDetectors(p, pp, prob.FailSafeSpec(), r, &f, fault.FailSafe)
	return res
}

// buildActionDetectors constructs and verifies, for each action of the base
// program p, a detector contained in pp: Z is the refined guard of the
// action (the guard of pp's action bearing the same name, per the
// encapsulation discipline), X the computed witness detection predicate.
// When f is non-nil the detector is additionally checked to be
// kind-F-tolerant.
func buildActionDetectors(p, pp *guarded.Program, sspec spec.Safety, s state.Predicate, f *fault.Class, kind fault.Kind) ([]Detector, error) {
	// The witness X must be defined over every state the F-tolerance check
	// can visit, so when a fault class is given the construction graph
	// covers the fault span of s (fault-free dynamics over span states);
	// otherwise the states reachable from s suffice.
	universe := s
	if f != nil {
		span, err := fault.ComputeSpan(pp, *f, s)
		if err != nil {
			return nil, err
		}
		universe = span.Predicate
	}
	g, err := explore.Shared(pp, universe, explore.Options{})
	if err != nil {
		return nil, err
	}
	reach := g.Reach(g.SetOf(universe), nil)
	proj, err := state.NewProjection(pp.Schema(), p.Schema())
	if err != nil {
		return nil, err
	}
	detectors := make([]Detector, 0, p.NumActions())
	for i := 0; i < p.NumActions(); i++ {
		base := p.Action(i)
		refined, ok := pp.ActionByName(base.Name)
		if !ok {
			return detectors, fmt.Errorf("core: no action named %q in %q (encapsulation must preserve action names)",
				base.Name, pp.Name())
		}
		sf := spec.WeakestStepPredicate(p, i, sspec)
		seed := state.And(proj.Lift(base.Guard), proj.Lift(sf))
		z := refined.Guard
		x := WitnessDetectionPredicate(g, reach, z, seed)
		d := Detector{
			Name: fmt.Sprintf("%s[%s]", pp.Name(), base.Name),
			D:    pp, Z: z, X: x, U: s,
		}
		if err := d.Check(); err != nil {
			return detectors, fmt.Errorf("core: constructed witness for action %q fails: %w", base.Name, err)
		}
		if f != nil {
			if err := d.CheckFTolerant(*f, kind); err != nil {
				return detectors, fmt.Errorf("core: constructed witness for action %q not %s-tolerant: %w",
					base.Name, kind, err)
			}
		}
		detectors = append(detectors, d)
	}
	return detectors, nil
}

// liftToRefined lifts a predicate over p's schema to pp's schema.
func liftToRefined(pp, p *guarded.Program, pred state.Predicate) state.Predicate {
	proj := state.MustProjection(pp.Schema(), p.Schema())
	return proj.Lift(pred)
}

// Theorem4_1 checks the instance "programs that eventually refine a
// specification contain correctors": given that p refines SPEC from S, pp
// refines p from S, and pp refines (true)*(pp|S) from T, it constructs the
// corrector of the proof — X = S, Z = S restricted to the states pp reaches
// from T — and verifies that pp refines 'Z corrects X' from T.
func Theorem4_1(p, pp *guarded.Program, prob spec.Problem, s, t state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 4.1 (eventually refining ⇒ contains correctors)"}
	if !res.hypothesis("p refines SPEC from S", prob.CheckRefinesFrom(p, s)) {
		return res
	}
	sOnPP := liftToRefined(pp, p, s)
	if !res.hypothesis("p' refines p from S", spec.CheckRefines(pp, p, sOnPP)) {
		return res
	}
	if !res.hypothesis("p' refines (true)*(p'|S) from T", convergesFrom(pp, t, sOnPP)) {
		return res
	}
	g, err := explore.Shared(pp, t, explore.Options{})
	if err != nil {
		res.Err = err
		return res
	}
	reachT := g.Reach(g.SetOf(t), nil)
	zSet := explore.NewBitset(g.NumNodes())
	reachT.ForEach(func(id int) bool {
		if sOnPP.Holds(g.State(id)) {
			zSet.Add(id)
		}
		return true
	})
	z := ExtensionalPredicate(fmt.Sprintf("%s ∧ reach(%s)", s, t), g, zSet)
	c := Corrector{
		Name: pp.Name(),
		C:    pp, Z: z, X: sOnPP, U: t,
	}
	if err := c.Check(); err != nil {
		res.Err = fmt.Errorf("conclusion (corrector of an invariant of p): %w", err)
		return res
	}
	res.Correctors = []Corrector{c}
	return res
}

// Theorem4_3 checks the instance "nonmasking F-tolerant programs contain
// nonmasking tolerant correctors": under the theorem's hypotheses it
// verifies that pp is nonmasking F-tolerant for the problem specification
// from R and that pp is a nonmasking F-tolerant corrector with witness
// Z = R and correction predicate X = S (Lemma 4.2's construction).
func Theorem4_3(p, pp *guarded.Program, prob spec.Problem, f fault.Class, s, r state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 4.3 (nonmasking tolerant programs contain nonmasking correctors)"}
	if !res.hypothesis("p refines SPEC from S", prob.CheckRefinesFrom(p, s)) {
		return res
	}
	sOnPP := liftToRefined(pp, p, s)
	if !res.hypothesis("p' refines p from R", spec.CheckRefines(pp, p, r)) {
		return res
	}
	span, err := fault.ComputeSpan(pp, f, r)
	if err != nil {
		res.Err = err
		return res
	}
	if !res.hypothesis("p'‖F refines (true)*(p'|R) from T", convergesFrom(pp, span.Predicate, r)) {
		return res
	}
	rep := fault.CheckNonmasking(pp, f, prob, r, r)
	if rep.Err != nil {
		res.Err = fmt.Errorf("conclusion (nonmasking F-tolerant): %w", rep.Err)
		return res
	}
	c := Corrector{
		Name: pp.Name(),
		C:    pp, Z: r, X: sOnPP, U: r,
	}
	if err := c.Check(); err != nil {
		res.Err = fmt.Errorf("conclusion (corrector from R): %w", err)
		return res
	}
	if err := c.CheckFTolerant(f, fault.Nonmasking); err != nil {
		res.Err = fmt.Errorf("conclusion (nonmasking F-tolerant corrector): %w", err)
		return res
	}
	res.Correctors = []Corrector{c}
	return res
}

// Theorem5_2 checks "fail-safe + convergence = masking": if p refines SPEC
// from S, p refines SSPEC from T, and p converges from T to S, then p
// refines the masking tolerance specification of SPEC from T. The conclusion
// is verified directly (safety and every liveness obligation from T).
func Theorem5_2(p *guarded.Program, prob spec.Problem, s, t state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 5.2 (fail-safe ∧ convergence ⇒ masking)"}
	if !res.hypothesis("p refines SPEC from S", prob.CheckRefinesFrom(p, s)) {
		return res
	}
	if !res.hypothesis("p refines SSPEC from T", refinesSafetyFrom(p, fault.Class{Name: "∅"}, prob.FailSafeSpec(), t)) {
		return res
	}
	if !res.hypothesis("p refines (true)*(p|S) from T", convergesFrom(p, t, s)) {
		return res
	}
	// Conclusion: p refines SPEC itself from T.
	g, err := explore.Shared(p, t, explore.Options{})
	if err != nil {
		res.Err = err
		return res
	}
	from := g.SetOf(t)
	if v := spec.CheckSafety(g, from, prob.Safety); v != nil {
		res.Err = fmt.Errorf("conclusion (masking: safety from T): %w", v)
		return res
	}
	for _, lt := range prob.Live {
		if err := spec.CheckLeadsTo(g, from, lt); err != nil {
			res.Err = fmt.Errorf("conclusion (masking: liveness from T): %w", err)
			return res
		}
	}
	return res
}

// Theorem5_5 checks "masking F-tolerant programs contain masking tolerant
// detectors and correctors": under the theorem's hypotheses it verifies
// that pp is masking F-tolerant for the problem specification from R, that
// for every action of p, pp is a masking F-tolerant detector of a detection
// predicate of the action, that pp is a masking tolerant corrector of an
// invariant predicate of p (fault-free, from the span T), and that pp is a
// nonmasking F-tolerant corrector (Part 4 of the theorem: Stability and
// Convergence may be violated by fault actions but not by program actions).
func Theorem5_5(p, pp *guarded.Program, prob spec.Problem, f fault.Class, s, r state.Predicate) TheoremResult {
	res := TheoremResult{Theorem: "Theorem 5.5 (masking tolerant programs contain masking detectors and correctors)"}
	if !res.hypothesis("p refines SPEC from S", prob.CheckRefinesFrom(p, s)) {
		return res
	}
	sOnPP := liftToRefined(pp, p, s)
	if !res.hypothesis("p' refines p from R", spec.CheckRefines(pp, p, r)) {
		return res
	}
	span, err := fault.ComputeSpan(pp, f, r)
	if err != nil {
		res.Err = err
		return res
	}
	if !res.hypothesis("p'‖F refines (true)*(p'|R) from T", convergesFrom(pp, span.Predicate, r)) {
		return res
	}
	if !res.hypothesis("p' encapsulates p", guarded.CheckEncapsulation(pp, p, state.True)) {
		return res
	}
	if !res.hypothesis("p'‖F refines SSPEC from T", refinesSafetyFrom(pp, f, prob.FailSafeSpec(), r)) {
		return res
	}
	// Conclusion 1: masking F-tolerance.
	rep := fault.CheckMasking(pp, f, prob, r)
	if rep.Err != nil {
		res.Err = fmt.Errorf("conclusion (masking F-tolerant): %w", rep.Err)
		return res
	}
	// Conclusion 2: per-action masking F-tolerant detectors.
	res.Detectors, err = buildActionDetectors(p, pp, prob.FailSafeSpec(), r, &f, fault.Masking)
	if err != nil {
		res.Err = err
		return res
	}
	// Conclusion 3: masking tolerant corrector of S_p from the span
	// (fault-free, per Lemma 5.4 Part 2), with X = S_p — the projection of
	// S onto the variables of p.
	c := Corrector{
		Name: pp.Name(),
		C:    pp, Z: r, X: sOnPP, U: span.Predicate,
	}
	if err := c.Check(); err != nil {
		res.Err = fmt.Errorf("conclusion (masking tolerant corrector): %w", err)
		return res
	}
	// Conclusion 4: nonmasking F-tolerant corrector.
	if err := c.CheckFTolerant(f, fault.Nonmasking); err != nil {
		res.Err = fmt.Errorf("conclusion (nonmasking F-tolerant corrector): %w", err)
		return res
	}
	res.Correctors = []Corrector{c}
	return res
}
