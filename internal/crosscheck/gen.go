// Package crosscheck validates the library against itself on randomly
// generated programs: properties that must hold by the theory's
// metatheorems — span soundness, synthesis safety, closure preservation —
// and agreement between the model checker (package explore) and the
// simulation runtime (package runtime). A divergence in either direction
// would indicate a bug in the fairness semantics, the graph algorithms, or
// the scheduler.
package crosscheck

import (
	"fmt"
	"math/rand"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// GenConfig bounds the random program generator.
type GenConfig struct {
	Vars      int // boolean variables (default 3)
	Actions   int // deterministic actions (default 3)
	MaxLits   int // guard literals per action (default 2)
	MaxWrites int // variables written per action (default 2)
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Vars == 0 {
		c.Vars = 3
	}
	if c.Actions == 0 {
		c.Actions = 3
	}
	if c.MaxLits == 0 {
		c.MaxLits = 2
	}
	if c.MaxWrites == 0 {
		c.MaxWrites = 2
	}
	return c
}

// Generate builds a random deterministic boolean program. The same seed
// yields the same program.
func Generate(seed int64, cfg GenConfig) (*guarded.Program, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	vars := make([]state.Var, cfg.Vars)
	for i := range vars {
		vars[i] = state.BoolVar(fmt.Sprintf("v%d", i))
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	actions := make([]guarded.Action, cfg.Actions)
	for a := range actions {
		// Guard: a conjunction of 1..MaxLits random literals.
		nLits := 1 + rng.Intn(cfg.MaxLits)
		type lit struct {
			v   int
			pos bool
		}
		lits := make([]lit, nLits)
		for i := range lits {
			lits[i] = lit{v: rng.Intn(cfg.Vars), pos: rng.Intn(2) == 0}
		}
		guardName := ""
		for i, l := range lits {
			if i > 0 {
				guardName += " ∧ "
			}
			if !l.pos {
				guardName += "¬"
			}
			guardName += fmt.Sprintf("v%d", l.v)
		}
		litsCopy := append([]lit(nil), lits...)
		guard := state.Pred(guardName, func(s state.State) bool {
			for _, l := range litsCopy {
				if s.Bool(l.v) != l.pos {
					return false
				}
			}
			return true
		})
		// Effect: write 1..MaxWrites variables with constants or flips.
		nw := 1 + rng.Intn(cfg.MaxWrites)
		type write struct {
			v    int
			mode int // 0: set, 1: clear, 2: flip
		}
		writes := make([]write, nw)
		for i := range writes {
			writes[i] = write{v: rng.Intn(cfg.Vars), mode: rng.Intn(3)}
		}
		writesCopy := append([]write(nil), writes...)
		actions[a] = guarded.Det(fmt.Sprintf("a%d", a), guard, func(s state.State) state.State {
			for _, w := range writesCopy {
				switch w.mode {
				case 0:
					s = s.WithBool(w.v, true)
				case 1:
					s = s.WithBool(w.v, false)
				default:
					s = s.WithBool(w.v, !s.Bool(w.v))
				}
			}
			return s
		})
	}
	return guarded.NewProgram(fmt.Sprintf("rand%d", seed), sch, actions...)
}

// RandomPredicate returns a seeded random predicate over the program's
// schema: a disjunction of full-state minterms.
func RandomPredicate(seed int64, sch *state.Schema) state.Predicate {
	rng := rand.New(rand.NewSource(seed))
	n, _ := sch.NumStates()
	members := make(map[uint64]bool)
	count := 1 + rng.Intn(int(n))
	for i := 0; i < count; i++ {
		members[uint64(rng.Intn(int(n)))] = true
	}
	return state.Pred(fmt.Sprintf("rand-pred-%d", seed), func(s state.State) bool {
		return members[s.Index()]
	})
}
