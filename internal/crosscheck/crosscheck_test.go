package crosscheck

import (
	"fmt"
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/runtime"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

const trials = 60

func TestGeneratorDeterministic(t *testing.T) {
	a, err := Generate(7, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same transition relation.
	err = a.Schema().ForEachState(func(s state.State) bool {
		sa := a.Successors(s)
		sb := b.Successors(s)
		if len(sa) != len(sb) {
			t.Fatalf("successor counts differ at %s", s)
		}
		for i := range sa {
			if !sa[i].To.Equal(sb[i].To) {
				t.Fatalf("successors differ at %s", s)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpanIsAValidFaultSpan: for random programs, random fault classes and
// random invariants, the computed span always satisfies the definitional
// conditions of Section 2.3 (S ⇒ T, T closed in p, T closed in F).
func TestSpanIsAValidFaultSpan(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		fprog, err := Generate(seed+1000, GenConfig{Actions: 2})
		if err != nil {
			t.Fatal(err)
		}
		f := fault.NewClass("rf", renameAll(fprog.Actions(), "f")...)
		s := RandomPredicate(seed, p.Schema())
		span, err := fault.ComputeSpan(p, f, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := fault.CheckSpan(p, f, s, span.Predicate); err != nil {
			t.Errorf("seed %d: computed span violates the span definition: %v", seed, err)
		}
	}
}

// TestSpanMonotone: enlarging the initial predicate can only enlarge the
// span.
func TestSpanMonotone(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		f := fault.NewClass("none")
		s1 := RandomPredicate(seed, p.Schema())
		s2 := RandomPredicate(seed+5000, p.Schema())
		both := state.Or(s1, s2)
		spanS1, err := fault.ComputeSpan(p, f, s1)
		if err != nil {
			t.Fatal(err)
		}
		spanBoth, err := fault.ComputeSpan(p, f, both)
		if err != nil {
			t.Fatal(err)
		}
		err = p.Schema().ForEachState(func(st state.State) bool {
			if spanS1.Predicate.Holds(st) && !spanBoth.Predicate.Holds(st) {
				t.Errorf("seed %d: span not monotone at %s", seed, st)
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAddFailSafeNeverViolates: the fail-safe transformation of any random
// program never takes a step that violates the safety specification it was
// built for — from any state whatsoever (the metatheorem behind
// Theorem 3.4).
func TestAddFailSafeNeverViolates(t *testing.T) {
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// Random step-safety spec: the transition predicate "some chosen
		// variable is raised" is forbidden.
		v := int(seed) % p.Schema().NumVars()
		sspec := spec.NeverStep(fmt.Sprintf("v%d never raised", v), func(from, to state.State) bool {
			return !from.Bool(v) && to.Bool(v)
		})
		synth := core.AddFailSafe(p, sspec)
		g, err := explore.Build(synth, state.True, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if viol := spec.CheckSafety(g, g.All(), sspec); viol != nil {
			t.Errorf("seed %d: synthesized fail-safe program violates its spec: %v", seed, viol)
		}
	}
}

// TestClosedSetsStayClosedInSimulation: whenever the checker certifies that
// a predicate is closed, no simulated run ever escapes it. This
// cross-validates the closure checker against the runtime semantics.
func TestClosedSetsStayClosedInSimulation(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pred := RandomPredicate(seed+333, p.Schema())
		if spec.CheckClosed(p, pred) != nil {
			continue // not closed; nothing to validate
		}
		checked++
		// Simulate from every state satisfying the predicate.
		err = p.Schema().ForEachState(func(s state.State) bool {
			if !pred.Holds(s) {
				return true
			}
			eng, err := runtime.New(p, runtime.Config{Seed: seed, MaxSteps: 60, KeepTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			for i, st := range res.Trace {
				if !pred.Holds(st) {
					t.Fatalf("seed %d: closed set escaped at trace step %d: %s", seed, i, st)
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Skip("no closed random predicates in this seed range")
	}
}

// TestConvergenceAgreesWithRoundRobin: when the checker certifies that
// every fair maximal computation reaches a goal, the (deterministically
// fair) round-robin scheduler must reach it within |states|·|actions|+1
// steps — a fair run of a deterministic program repeats a (state,
// scheduler-index) pair within that bound, and a goal-avoiding cycle would
// contradict the checker.
func TestConvergenceAgreesWithRoundRobin(t *testing.T) {
	agreements := 0
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		goal := RandomPredicate(seed+777, p.Schema())
		g, err := explore.Build(p, state.True, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if v := g.CheckEventually(g.All(), g.SetOf(goal)); v != nil {
			continue // checker says some fair run avoids the goal
		}
		agreements++
		n, _ := p.Schema().NumStates()
		bound := int(n)*p.NumActions() + 1
		err = p.Schema().ForEachState(func(s state.State) bool {
			eng, err := runtime.New(p, runtime.Config{
				Seed: seed, MaxSteps: bound, Policy: runtime.RoundRobinPolicy,
			}, &runtime.EventuallyMonitor{Goal: goal})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("seed %d: checker certified convergence but round-robin run from %s missed the goal within %d steps",
					seed, s, bound)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if agreements == 0 {
		t.Skip("no converging instances in this seed range")
	}
}

// TestSafetyViolationsAreReproducible: when the checker reports a safety
// violation with a trace, replaying that trace against the program's
// transition relation confirms every step.
func TestSafetyViolationsAreReproducible(t *testing.T) {
	found := 0
	for seed := int64(0); seed < trials; seed++ {
		p, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		bad := RandomPredicate(seed+111, p.Schema())
		g, err := explore.Build(p, state.True, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		viol := spec.CheckSafety(g, g.All(), spec.NeverState("bad", bad))
		if viol == nil {
			continue
		}
		found++
		trace := viol.Trace
		if len(trace) == 0 {
			t.Fatalf("seed %d: violation without a trace", seed)
		}
		for i := 1; i < len(trace); i++ {
			if !hasTransition(p, trace[i-1], trace[i]) {
				t.Fatalf("seed %d: counterexample step %d is not a program transition", seed, i)
			}
		}
		if !bad.Holds(trace[len(trace)-1]) {
			t.Fatalf("seed %d: counterexample does not end in a bad state", seed)
		}
	}
	if found == 0 {
		t.Skip("no safety violations in this seed range")
	}
}

func hasTransition(p *guarded.Program, from, to state.State) bool {
	for _, tr := range p.Successors(from) {
		if tr.To.Equal(to) {
			return true
		}
	}
	return false
}

func renameAll(actions []guarded.Action, prefix string) []guarded.Action {
	out := make([]guarded.Action, len(actions))
	for i, a := range actions {
		out[i] = a.WithName(prefix + "." + a.Name)
	}
	return out
}
