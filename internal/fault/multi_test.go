package fault

import (
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func TestMeet(t *testing.T) {
	cases := []struct {
		a, b Kind
		want Kind
		ok   bool
	}{
		{Masking, Masking, Masking, true},
		{Masking, FailSafe, FailSafe, true},
		{Masking, Nonmasking, Nonmasking, true},
		{FailSafe, Masking, FailSafe, true},
		{FailSafe, FailSafe, FailSafe, true},
		{Nonmasking, Nonmasking, Nonmasking, true},
		{FailSafe, Nonmasking, 0, false},
		{Nonmasking, FailSafe, 0, false},
	}
	for _, tc := range cases {
		got, ok := Meet(tc.a, tc.b)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Meet(%v,%v) = %v,%v; want %v,%v", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

// multiFixture is a two-variable system with two fault classes of different
// severity: "nudge" moves x off the top (recoverable, and never violates
// safety because the safety spec only constrains y); "scribble" corrupts y
// (y is what the safety spec watches, so only recovery can be promised).
func multiFixture(t *testing.T) (*guarded.Program, spec.Problem, state.Predicate, Requirement, Requirement) {
	t.Helper()
	sch, err := state.NewSchema(state.IntVar("x", 3), state.BoolVar("y"))
	if err != nil {
		t.Fatal(err)
	}
	climb := guarded.Det("climb",
		state.Pred("x<2", func(s state.State) bool { return s.GetName("x") < 2 }),
		func(s state.State) state.State { return s.WithName("x", s.GetName("x")+1) })
	fixY := guarded.Det("fixY",
		state.Pred("y", func(s state.State) bool { return s.GetName("y") != 0 }),
		func(s state.State) state.State { return s.WithName("y", 0) })
	p := guarded.MustProgram("multi", sch, climb, fixY)

	inv := state.Pred("x=2 ∧ ¬y", func(s state.State) bool {
		return s.GetName("x") == 2 && s.GetName("y") == 0
	})
	prob := spec.Problem{
		Name: "SPEC_multi",
		// Safety watches only y: a step that raises y is bad.
		Safety: spec.NeverStep("y never raised", func(from, to state.State) bool {
			return from.GetName("y") == 0 && to.GetName("y") != 0
		}),
		Live: []spec.LeadsTo{{Name: "top", P: state.True,
			Q: state.Pred("x=2", func(s state.State) bool { return s.GetName("x") == 2 })}},
	}
	nudge := NewClass("nudge", guarded.Det("nudge",
		state.Pred("x>0", func(s state.State) bool { return s.GetName("x") > 0 }),
		func(s state.State) state.State { return s.WithName("x", s.GetName("x")-1) }))
	scribble := NewClass("scribble", guarded.Det("scribble",
		state.Pred("¬y", func(s state.State) bool { return s.GetName("y") == 0 }),
		func(s state.State) state.State { return s.WithName("y", 1) }))
	return p, prob, inv,
		Requirement{Faults: nudge, Kind: Masking},
		Requirement{Faults: scribble, Kind: Nonmasking}
}

func TestCheckMultiHolds(t *testing.T) {
	p, prob, inv, rNudge, rScribble := multiFixture(t)
	m, err := CheckMulti(p, prob, inv, rNudge, rScribble)
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK() {
		t.Fatalf("multitolerance should hold: %v", m.Err())
	}
	if len(m.Individual) != 2 {
		t.Errorf("want 2 individual reports, got %d", len(m.Individual))
	}
	if len(m.Combined) != 1 {
		t.Fatalf("want 1 combined report (masking ∧ nonmasking), got %d", len(m.Combined))
	}
	if m.Combined[0].Kind != Nonmasking {
		t.Errorf("combined kind %v, want nonmasking", m.Combined[0].Kind)
	}
}

func TestCheckMultiDetectsOverclaim(t *testing.T) {
	// Claiming masking for the scribble class must fail: the fault itself
	// violates the safety specification.
	p, prob, inv, rNudge, rScribble := multiFixture(t)
	rScribble.Kind = Masking
	m, err := CheckMulti(p, prob, inv, rNudge, rScribble)
	if err != nil {
		t.Fatal(err)
	}
	if m.OK() {
		t.Fatal("masking cannot hold for the scribble class")
	}
}

func TestCheckMultiSkipsMeetlessPairs(t *testing.T) {
	p, prob, inv, rNudge, rScribble := multiFixture(t)
	rNudge.Kind = FailSafe
	m, err := CheckMulti(p, prob, inv, rNudge, rScribble)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Combined) != 0 {
		t.Errorf("fail-safe ∧ nonmasking has no meet; combined reports: %d", len(m.Combined))
	}
}

func TestCheckMultiThreeClasses(t *testing.T) {
	p, prob, inv, rNudge, rScribble := multiFixture(t)
	third := Requirement{Faults: NewClass("noop-faults"), Kind: Masking}
	m, err := CheckMulti(p, prob, inv, rNudge, rScribble, third)
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK() {
		t.Fatalf("three-way multitolerance should hold: %v", m.Err())
	}
	// Pairs with a meet: (nudge,scribble), (nudge,noop), (scribble,noop),
	// plus the global union.
	if len(m.Combined) != 4 {
		t.Errorf("want 4 combined reports, got %d", len(m.Combined))
	}
}

func TestCheckMultiNoRequirements(t *testing.T) {
	p, prob, inv, _, _ := multiFixture(t)
	if _, err := CheckMulti(p, prob, inv); err == nil {
		t.Error("zero requirements must be rejected")
	}
}

func TestUnionClassRenamesClashes(t *testing.T) {
	a := NewClass("a", guarded.Skip("f", state.True))
	b := NewClass("b", guarded.Skip("f", state.True))
	u := unionClass(a, b)
	if len(u.Actions) != 2 || u.Actions[0].Name == u.Actions[1].Name {
		t.Errorf("union must keep distinct action names: %v, %v", u.Actions[0].Name, u.Actions[1].Name)
	}
}
