// Package fault implements the paper's fault model (Section 2.3) and
// fault-tolerance specifications (Section 2.4).
//
// A fault-class F for a program p is a set of actions over the variables of
// p; a computation of p in the presence of F interleaves p-actions and
// finitely many F-actions and is p-fair and p-maximal. The package builds
// the composition p ‖ F (fault actions marked unfair and excluded from
// maximality), computes fault spans, and decides the three tolerance
// classes:
//
//   - fail-safe: p ‖ F refines the smallest safety specification containing
//     SPEC from the span T;
//   - nonmasking: computations of p ‖ F from T have a suffix in SPEC, which
//     under Assumption 2 (finitely many faults) reduces to p converging
//     from T back to a predicate R from which p refines SPEC;
//   - masking: computations of p ‖ F from T are in SPEC.
package fault

import (
	"context"
	"fmt"
	"sync"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// Class is a fault-class for a program: a set of actions over the program's
// variables (Section 2.3). The representation accommodates any fault type —
// stuck-at, crash, omission, or Byzantine — since all are state
// perturbations.
type Class struct {
	Name    string
	Actions []guarded.Action
}

// NewClass builds a fault class.
func NewClass(name string, actions ...guarded.Action) Class {
	return Class{Name: name, Actions: append([]guarded.Action(nil), actions...)}
}

// Empty reports whether the class has no fault actions.
func (c Class) Empty() bool { return len(c.Actions) == 0 }

// String returns the class name.
func (c Class) String() string {
	if c.Name == "" {
		return "<faults>"
	}
	return c.Name
}

// composeKey identifies a (program, fault class) pair for the composition
// memo. Class values are copied around by value, but NewClass allocates the
// Actions slice once, so the backing-array pointer plus length identifies the
// action set with the same pointer-identity discipline the graph cache uses
// for programs.
type composeKey struct {
	p       *guarded.Program
	name    string
	n       int
	actions *guarded.Action // &f.Actions[0], nil when the class is empty
}

type composeEntry struct {
	composed *guarded.Program
	mask     []bool
}

var (
	composeMu   sync.Mutex
	composeMemo = map[composeKey]composeEntry{}
)

// composeMemoCap bounds the memo; workloads touch a handful of (program,
// class) pairs, so on overflow the whole map is dropped rather than tracking
// recency.
const composeMemoCap = 256

// Compose returns the program p ‖ F (the union of p's actions and the fault
// actions, Section 2.3 notation) together with the fairness mask marking
// fault actions as unfair: computations of p ‖ F are only p-fair and
// p-maximal. Repeated compositions of the same pair return the same
// *guarded.Program, which is what lets downstream graph builds for p ‖ F hit
// the process-wide exploration cache (its key is the program pointer). The
// returned mask is a fresh copy each call; callers may keep or modify it.
func Compose(p *guarded.Program, f Class) (*guarded.Program, []bool, error) {
	var key composeKey
	memoizable := len(f.Actions) > 0 || f.Name != ""
	if memoizable {
		key = composeKey{p: p, name: f.Name, n: len(f.Actions)}
		if len(f.Actions) > 0 {
			key.actions = &f.Actions[0]
		}
		composeMu.Lock()
		e, ok := composeMemo[key]
		composeMu.Unlock()
		if ok {
			return e.composed, append([]bool(nil), e.mask...), nil
		}
	}
	composed, mask, err := composeFresh(p, f)
	if err != nil {
		return nil, nil, err
	}
	if memoizable {
		composeMu.Lock()
		if e, ok := composeMemo[key]; ok {
			// Keep the first composition so the program pointer stays canonical.
			composed, mask = e.composed, e.mask
		} else {
			if len(composeMemo) >= composeMemoCap {
				composeMemo = map[composeKey]composeEntry{}
			}
			composeMemo[key] = composeEntry{composed: composed, mask: mask}
		}
		composeMu.Unlock()
	}
	return composed, append([]bool(nil), mask...), nil
}

func composeFresh(p *guarded.Program, f Class) (*guarded.Program, []bool, error) {
	actions := p.Actions()
	mask := make([]bool, 0, len(actions)+len(f.Actions))
	for range actions {
		mask = append(mask, true)
	}
	for i, a := range f.Actions {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("%s#%d", f.Name, i)
		}
		if _, clash := p.ActionByName(name); clash {
			name = f.Name + "." + name
		}
		actions = append(actions, a.WithName(name))
		mask = append(mask, false)
	}
	composed, err := guarded.NewProgram(fmt.Sprintf("%s ‖ %s", p.Name(), f.Name), p.Schema(), actions...)
	if err != nil {
		return nil, nil, err
	}
	return composed, mask, nil
}

// Span holds a computed fault span: the set of states reachable from the
// invariant S under p ‖ F. It is the smallest F-span of p from S
// (Section 2.3, "Fault-span"): S ⇒ T, T closed in p, and T closed in F.
type Span struct {
	Graph     *explore.Graph  // graph of p ‖ F over the span states
	Reachable *explore.Bitset // span as a node set of Graph
	Predicate state.Predicate // span as a state predicate
	Size      int             // number of states in the span
}

// ComputeSpan explores p ‖ F from every state satisfying s and returns the
// span.
func ComputeSpan(p *guarded.Program, f Class, s state.Predicate) (*Span, error) {
	return ComputeSpanCtx(context.Background(), p, f, s)
}

// ComputeSpanCtx is ComputeSpan under a context; cancellation aborts the
// span exploration with ctx.Err().
func ComputeSpanCtx(ctx context.Context, p *guarded.Program, f Class, s state.Predicate) (*Span, error) {
	composed, mask, err := Compose(p, f)
	if err != nil {
		return nil, err
	}
	g, err := explore.SharedCtx(ctx, composed, s, explore.Options{Fair: mask})
	if err != nil {
		return nil, err
	}
	reach := g.Reach(g.SetOf(s), nil)
	pred := state.Pred(
		fmt.Sprintf("span(%s,%s,%s)", p.Name(), f, s),
		func(st state.State) bool {
			id, ok := g.NodeOf(st)
			return ok && reach.Has(id)
		},
	)
	return &Span{Graph: g, Reachable: reach, Predicate: pred, Size: reach.Count()}, nil
}

// CheckSpan verifies the definitional conditions for "T is an F-span of p
// from S" (Section 2.3): S ⇒ T, T closed in p, and each action of F
// preserves T.
func CheckSpan(p *guarded.Program, f Class, s, t state.Predicate) error {
	ok, w, err := state.ImpliesEverywhere(p.Schema(), s, t)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("fault: S ⇒ T fails at %s", w)
	}
	if err := spec.CheckClosed(p, t); err != nil {
		return fmt.Errorf("fault: span not closed in program: %w", err)
	}
	fprog, err := guarded.NewProgram(f.Name, p.Schema(), f.Actions...)
	if err != nil {
		return err
	}
	if err := spec.CheckClosed(fprog, t); err != nil {
		return fmt.Errorf("fault: span not preserved by faults: %w", err)
	}
	return nil
}
