package fault

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// Kind enumerates the paper's tolerance classes (Section 2.4).
type Kind int

const (
	// FailSafe: in the presence of F the program refines the smallest
	// safety specification containing SPEC.
	FailSafe Kind = iota + 1
	// Nonmasking: in the presence of F every computation has a suffix in
	// SPEC.
	Nonmasking
	// Masking: in the presence of F every computation is in SPEC.
	Masking
)

// String renders the tolerance kind.
func (k Kind) String() string {
	switch k {
	case FailSafe:
		return "fail-safe"
	case Nonmasking:
		return "nonmasking"
	case Masking:
		return "masking"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Report summarizes a tolerance check.
type Report struct {
	Program   string
	Faults    string
	Kind      Kind
	Invariant string
	SpanSize  int
	Err       error
}

// OK reports whether the tolerance property holds.
func (r Report) OK() bool { return r.Err == nil }

// String renders a one-line verdict.
func (r Report) String() string {
	verdict := "HOLDS"
	if r.Err != nil {
		verdict = "FAILS: " + r.Err.Error()
	}
	return fmt.Sprintf("%s %s-tolerant to %s from %s (span %d states): %s",
		r.Program, r.Kind, r.Faults, r.Invariant, r.SpanSize, verdict)
}

// CheckFailSafe decides "p is fail-safe F-tolerant to SPEC from S"
// (Section 2.4): p refines SPEC from S, and p ‖ F refines the fail-safe
// tolerance specification of SPEC (its smallest containing safety
// specification) from the fault span T of S.
func CheckFailSafe(p *guarded.Program, f Class, prob spec.Problem, s state.Predicate) Report {
	rep := Report{Program: p.Name(), Faults: f.Name, Kind: FailSafe, Invariant: s.String()}
	if err := prob.CheckRefinesFrom(p, s); err != nil {
		rep.Err = fmt.Errorf("in the absence of faults: %w", err)
		return rep
	}
	span, err := ComputeSpan(p, f, s)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.SpanSize = span.Size
	if v := spec.CheckSafety(span.Graph, span.Reachable, prob.FailSafeSpec()); v != nil {
		rep.Err = fmt.Errorf("in the presence of faults: %w", v)
	}
	return rep
}

// CheckNonmasking decides "p is nonmasking F-tolerant to SPEC from S"
// (Section 2.4): p refines SPEC from R (with R ⇒ S the recovery predicate;
// pass R = S when they coincide), and every computation of p ‖ F from the
// span has a suffix in SPEC. Under Assumption 2 (finitely many fault
// occurrences) the latter holds iff, after faults stop, p alone converges
// from the span back to R — exactly the proof obligation of Theorem 4.3.
func CheckNonmasking(p *guarded.Program, f Class, prob spec.Problem, s, r state.Predicate) Report {
	rep := Report{Program: p.Name(), Faults: f.Name, Kind: Nonmasking, Invariant: s.String()}
	if err := prob.CheckRefinesFrom(p, r); err != nil {
		rep.Err = fmt.Errorf("in the absence of faults (from %s): %w", r, err)
		return rep
	}
	span, err := ComputeSpan(p, f, s)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.SpanSize = span.Size
	if err := convergesWithin(p, span, r); err != nil {
		rep.Err = fmt.Errorf("recovery after faults stop: %w", err)
	}
	return rep
}

// CheckMasking decides "p is masking F-tolerant to SPEC from S"
// (Section 2.4): p refines SPEC from S, and p ‖ F refines SPEC itself from
// the span — both the safety part (checked on all transitions, including
// fault steps) and every liveness obligation (checked with fault actions
// unfair, so recurrence uses program actions only).
func CheckMasking(p *guarded.Program, f Class, prob spec.Problem, s state.Predicate) Report {
	rep := Report{Program: p.Name(), Faults: f.Name, Kind: Masking, Invariant: s.String()}
	if err := prob.CheckRefinesFrom(p, s); err != nil {
		rep.Err = fmt.Errorf("in the absence of faults: %w", err)
		return rep
	}
	span, err := ComputeSpan(p, f, s)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.SpanSize = span.Size
	if v := spec.CheckSafety(span.Graph, span.Reachable, prob.Safety); v != nil {
		rep.Err = fmt.Errorf("safety in the presence of faults: %w", v)
		return rep
	}
	for _, lt := range prob.Live {
		if err := spec.CheckLeadsTo(span.Graph, span.Reachable, lt); err != nil {
			rep.Err = fmt.Errorf("liveness in the presence of faults: %w", err)
			return rep
		}
	}
	return rep
}

// convergesWithin checks that p alone (no fault steps), started anywhere in
// the span, always reaches a state satisfying r, and that r is closed in p.
func convergesWithin(p *guarded.Program, span *Span, r state.Predicate) error {
	if err := spec.CheckClosed(p, r); err != nil {
		return fmt.Errorf("recovery predicate not closed: %w", err)
	}
	g, err := explore.Shared(p, span.Predicate, explore.Options{})
	if err != nil {
		return err
	}
	from := g.SetOf(span.Predicate)
	goal := g.SetOf(r)
	if v := g.CheckEventually(from, goal); v != nil {
		return v
	}
	return nil
}

// Check dispatches on the tolerance kind.
func Check(kind Kind, p *guarded.Program, f Class, prob spec.Problem, s, r state.Predicate) Report {
	switch kind {
	case FailSafe:
		return CheckFailSafe(p, f, prob, s)
	case Nonmasking:
		return CheckNonmasking(p, f, prob, s, r)
	case Masking:
		return CheckMasking(p, f, prob, s)
	default:
		return Report{Program: p.Name(), Faults: f.Name, Kind: kind,
			Err: fmt.Errorf("fault: unknown tolerance kind %d", int(kind))}
	}
}
