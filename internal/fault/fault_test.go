package fault

import (
	"strings"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// Test fixture: a counter over 0..n-1 that climbs to the top; faults knock
// it down. The specification: never step below the start (safety stand-in)
// and eventually reach the top (liveness).
func fixture(t *testing.T, n int) (*guarded.Program, Class, spec.Problem, state.Predicate) {
	t.Helper()
	sch, err := state.NewSchema(state.IntVar("x", n))
	if err != nil {
		t.Fatal(err)
	}
	p := guarded.MustProgram("climb", sch, guarded.Det("inc",
		state.Pred("x<max", func(s state.State) bool { return s.Get(0) < n-1 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) }))
	knock := NewClass("knock", guarded.Det("down",
		state.Pred("x>0", func(s state.State) bool { return s.Get(0) > 0 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)-1) }))
	top := state.Pred("x=max", func(s state.State) bool { return s.Get(0) == n-1 })
	prob := spec.Problem{
		Name:   "reach-top",
		Safety: spec.TrueSafety,
		Live:   []spec.LeadsTo{{Name: "top", P: state.True, Q: top}},
	}
	return p, knock, prob, top
}

func TestComposeMarksFaultsUnfair(t *testing.T) {
	p, knock, _, _ := fixture(t, 4)
	composed, mask, err := Compose(p, knock)
	if err != nil {
		t.Fatal(err)
	}
	if composed.NumActions() != 2 {
		t.Fatalf("composed actions = %d", composed.NumActions())
	}
	if !mask[0] || mask[1] {
		t.Errorf("mask = %v; want [true false]", mask)
	}
	if !strings.Contains(composed.Name(), "‖") {
		t.Errorf("composed name %q", composed.Name())
	}
}

func TestComposeRenamesClashes(t *testing.T) {
	p, _, _, _ := fixture(t, 4)
	clash := NewClass("f", guarded.Skip("inc", state.True))
	composed, _, err := Compose(p, clash)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(composed.ActionNames(), ",")
	if !strings.Contains(names, "f.inc") {
		t.Errorf("clash should be renamed: %s", names)
	}
}

func TestComputeSpan(t *testing.T) {
	p, knock, _, top := fixture(t, 4)
	span, err := ComputeSpan(p, knock, top)
	if err != nil {
		t.Fatal(err)
	}
	// From the top, faults can knock down to any x; the span is everything.
	if span.Size != 4 {
		t.Errorf("span size %d, want 4", span.Size)
	}
	for x := 0; x < 4; x++ {
		if !span.Predicate.Holds(state.MustState(p.Schema(), x)) {
			t.Errorf("x=%d should be in the span", x)
		}
	}
}

func TestCheckSpanDefinition(t *testing.T) {
	p, knock, _, top := fixture(t, 4)
	if err := CheckSpan(p, knock, top, state.True); err != nil {
		t.Errorf("true is always an F-span: %v", err)
	}
	// top itself is not an F-span: faults do not preserve it.
	if err := CheckSpan(p, knock, top, top); err == nil {
		t.Error("top is not preserved by knock-down faults")
	}
	// S ⇒ T must be checked.
	bottom := state.Pred("x=0", func(s state.State) bool { return s.Get(0) == 0 })
	if err := CheckSpan(p, knock, top, bottom); err == nil {
		t.Error("S ⇒ T violation must be reported")
	}
}

func TestNonmaskingHoldsForClimber(t *testing.T) {
	p, knock, prob, top := fixture(t, 4)
	rep := CheckNonmasking(p, knock, prob, top, top)
	if !rep.OK() {
		t.Errorf("the climber recovers to the top after faults: %v", rep.Err)
	}
	if rep.Kind != Nonmasking || rep.SpanSize != 4 {
		t.Errorf("report fields: %+v", rep)
	}
}

func TestMaskingHoldsBecauseLivenessSurvives(t *testing.T) {
	// With TrueSafety, masking reduces to liveness under faults, which the
	// climber satisfies (faults are finite).
	p, knock, prob, top := fixture(t, 4)
	rep := CheckMasking(p, knock, prob, top)
	if !rep.OK() {
		t.Errorf("masking should hold: %v", rep.Err)
	}
}

func TestFailSafeSafetyViolationDetected(t *testing.T) {
	p, knock, _, top := fixture(t, 4)
	prob := spec.Problem{
		Name:   "never-low",
		Safety: spec.NeverState("x=0 forbidden", state.Pred("x=0", func(s state.State) bool { return s.Get(0) == 0 })),
	}
	rep := CheckFailSafe(p, knock, prob, top)
	if rep.OK() {
		t.Error("faults can knock x to 0, violating the safety spec")
	}
	if !strings.Contains(rep.Err.Error(), "presence of faults") {
		t.Errorf("error should blame the faulty phase: %v", rep.Err)
	}
	if !strings.Contains(rep.String(), "FAILS") {
		t.Errorf("report string: %s", rep.String())
	}
}

func TestAbsenceOfFaultsFailureIsDistinguished(t *testing.T) {
	p, knock, _, _ := fixture(t, 4)
	prob := spec.Problem{
		Name:   "never-top",
		Safety: spec.NeverState("top forbidden", state.Pred("x=3", func(s state.State) bool { return s.Get(0) == 3 })),
	}
	rep := CheckFailSafe(p, knock, prob, state.Pred("x=1", func(s state.State) bool { return s.Get(0) == 1 }))
	if rep.OK() {
		t.Fatal("the climber reaches the forbidden top without any faults")
	}
	if !strings.Contains(rep.Err.Error(), "absence of faults") {
		t.Errorf("error should blame the fault-free phase: %v", rep.Err)
	}
}

func TestCheckDispatch(t *testing.T) {
	p, knock, prob, top := fixture(t, 4)
	for _, kind := range []Kind{FailSafe, Nonmasking, Masking} {
		rep := Check(kind, p, knock, prob, top, top)
		if rep.Kind != kind {
			t.Errorf("dispatch set kind %v, want %v", rep.Kind, kind)
		}
	}
	rep := Check(Kind(42), p, knock, prob, top, top)
	if rep.OK() {
		t.Error("unknown kind must fail")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("Kind(42).String() = %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	if FailSafe.String() != "fail-safe" || Nonmasking.String() != "nonmasking" || Masking.String() != "masking" {
		t.Error("kind strings wrong")
	}
}

func TestEmptyClass(t *testing.T) {
	if !(Class{}).Empty() {
		t.Error("zero class is empty")
	}
	if (Class{}).String() != "<faults>" {
		t.Error("zero class rendering")
	}
	p, _, prob, top := fixture(t, 4)
	// With no faults, every tolerance class collapses to plain refinement.
	for _, kind := range []Kind{FailSafe, Nonmasking, Masking} {
		rep := Check(kind, p, NewClass("none"), prob, top, top)
		if !rep.OK() {
			t.Errorf("%v with no faults should hold: %v", kind, rep.Err)
		}
	}
}
