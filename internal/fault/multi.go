package fault

import (
	"fmt"
	"strings"

	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// This file implements multitolerance, the design goal of the paper's
// reference [4] ("Component based design of multitolerance"): a program is
// multitolerant when it provides a (possibly different) tolerance kind for
// each of several fault classes, and, when faults from several classes
// occur in the same computation, it provides the *meet* of their kinds —
// masking ∧ fail-safe = fail-safe, masking ∧ nonmasking = nonmasking, and
// fail-safe ∧ nonmasking have no common guarantee.

// Requirement pairs a fault class with the tolerance kind the program must
// provide for it. Recovery is the predicate the program must converge back
// to for nonmasking requirements; leave it zero to use the invariant.
type Requirement struct {
	Faults   Class
	Kind     Kind
	Recovery state.Predicate
}

// Meet returns the strongest tolerance kind implied by both arguments, and
// false when they have no common guarantee (fail-safe ∧ nonmasking).
func Meet(a, b Kind) (Kind, bool) {
	if a == b {
		return a, true
	}
	if a == Masking {
		return b, true
	}
	if b == Masking {
		return a, true
	}
	return 0, false
}

// MultiReport aggregates a multitolerance check: one report per individual
// requirement and one per checked combination.
type MultiReport struct {
	Individual []Report
	Combined   []Report
}

// OK reports whether every individual and combined check holds.
func (m MultiReport) OK() bool {
	for _, r := range m.Individual {
		if !r.OK() {
			return false
		}
	}
	for _, r := range m.Combined {
		if !r.OK() {
			return false
		}
	}
	return true
}

// Err returns the first failure, if any.
func (m MultiReport) Err() error {
	for _, r := range m.Individual {
		if !r.OK() {
			return r.Err
		}
	}
	for _, r := range m.Combined {
		if !r.OK() {
			return r.Err
		}
	}
	return nil
}

// CheckMulti decides multitolerance of p from invariant s: each requirement
// is checked individually, and every pair of requirements whose kinds have
// a meet is checked against the union of their fault classes at the meet
// kind (including, transitively, the union of all classes when a common
// meet exists). Recovery predicates for a combined nonmasking check use the
// first requirement's recovery predicate, falling back to s.
func CheckMulti(p *guarded.Program, prob spec.Problem, s state.Predicate, reqs ...Requirement) (MultiReport, error) {
	if len(reqs) == 0 {
		return MultiReport{}, fmt.Errorf("fault: multitolerance needs at least one requirement")
	}
	var m MultiReport
	for _, r := range reqs {
		rec := r.Recovery
		if rec.IsTrivial() && rec.Name == "" {
			rec = s
		}
		m.Individual = append(m.Individual, Check(r.Kind, p, r.Faults, prob, s, rec))
	}
	// Pairwise (and, when it exists, global) combined checks.
	for i := 0; i < len(reqs); i++ {
		for j := i + 1; j < len(reqs); j++ {
			kind, ok := Meet(reqs[i].Kind, reqs[j].Kind)
			if !ok {
				continue
			}
			union := unionClass(reqs[i].Faults, reqs[j].Faults)
			rec := combinedRecovery(s, reqs[i], reqs[j])
			m.Combined = append(m.Combined, Check(kind, p, union, prob, s, rec))
		}
	}
	if len(reqs) > 2 {
		kind := reqs[0].Kind
		ok := true
		for _, r := range reqs[1:] {
			if kind, ok = Meet(kind, r.Kind); !ok {
				break
			}
		}
		if ok {
			all := reqs[0].Faults
			for _, r := range reqs[1:] {
				all = unionClass(all, r.Faults)
			}
			m.Combined = append(m.Combined, Check(kind, p, all, prob, s, combinedRecovery(s, reqs...)))
		}
	}
	return m, nil
}

func combinedRecovery(s state.Predicate, reqs ...Requirement) state.Predicate {
	for _, r := range reqs {
		if !r.Recovery.IsTrivial() || r.Recovery.Name != "" {
			return r.Recovery
		}
	}
	return s
}

func unionClass(a, b Class) Class {
	name := a.Name + "+" + b.Name
	actions := append([]guarded.Action(nil), a.Actions...)
	seen := map[string]bool{}
	for _, x := range actions {
		seen[x.Name] = true
	}
	for _, x := range b.Actions {
		if seen[x.Name] {
			x = x.WithName(strings.TrimSuffix(b.Name, ".") + "." + x.Name)
		}
		seen[x.Name] = true
		actions = append(actions, x)
	}
	return NewClass(name, actions...)
}
