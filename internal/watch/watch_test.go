package watch

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPollSeesRevisions(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.gcl")
	if err := os.WriteFile(path, []byte("rev0"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 8)
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		done <- Poll(ctx, path, 2*time.Millisecond, func(src string) bool {
			got <- src
			return src != "rev2"
		})
	}()

	want := func(rev string) {
		t.Helper()
		select {
		case src := <-got:
			if src != rev {
				t.Fatalf("saw %q, want %q", src, rev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %q", rev)
		}
	}
	want("rev0")
	// Write-by-rename, so the poller cannot observe a truncated half-write
	// as its own revision.
	if err := os.WriteFile(path+".tmp", []byte("rev1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		t.Fatal(err)
	}
	want("rev1")
	// An editor-style rename save: write a temp file, rename over the
	// watched path. The dangling window must not kill the watch.
	tmp := filepath.Join(dir, "f.gcl.tmp")
	if err := os.WriteFile(tmp, []byte("rev2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	want("rev2")
	// fn returned false on rev2: Poll exits nil.
	if err := <-done; err != nil {
		t.Fatalf("Poll returned %v, want nil after fn stop", err)
	}
}

func TestPollUnchangedContentDoesNotFire(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.gcl")
	if err := os.WriteFile(path, []byte("same"), 0o644); err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := Poll(ctx, path, time.Millisecond, func(src string) bool {
		fired <- struct{}{}
		// Touch the file: new mtime, same bytes.
		now := time.Now()
		os.Chtimes(path, now, now)
		return true
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("Poll returned %v, want deadline", err)
	}
	if n := len(fired); n != 1 {
		t.Fatalf("fired %d times for one revision, want 1", n)
	}
}
