// Package watch is a stdlib-only polling file watcher for the incremental
// re-verification loop. Polling — not inotify or kqueue — is a deliberate
// choice: it needs no platform syscalls, it survives editors that replace
// files by rename (the watched path briefly not existing is just a skipped
// tick, not a lost watch), and a verification loop's reaction time is
// bounded by check latency anyway, so sub-interval wakeup buys nothing.
package watch

import (
	"context"
	"crypto/sha256"
	"os"
	"time"
)

// DefaultInterval is the polling cadence when the caller passes 0.
const DefaultInterval = 200 * time.Millisecond

// Poll reads path every interval and calls fn with the file's content
// whenever it changes, including once for the initial content. Content
// identity is a hash, so touching the file without changing bytes does not
// fire. A read error is a skipped tick: editors that save by
// rename-and-replace make the path dangle for a moment, and treating that
// window as "the file is gone" would tear down the loop mid-edit.
//
// fn reports whether to keep watching; Poll returns nil when fn stops the
// loop and ctx.Err() when the context ends it.
func Poll(ctx context.Context, path string, interval time.Duration, fn func(src string) bool) error {
	if interval <= 0 {
		interval = DefaultInterval
	}
	var last [sha256.Size]byte
	seen := false
	tick := func() bool {
		b, err := os.ReadFile(path)
		if err != nil {
			return true
		}
		h := sha256.Sum256(b)
		if seen && h == last {
			return true
		}
		last, seen = h, true
		return fn(string(b))
	}
	if !tick() {
		return nil
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if !tick() {
				return nil
			}
		}
	}
}
