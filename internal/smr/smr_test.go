package smr

import (
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/state"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestIntolerantRefinesSpecFromS(t *testing.T) {
	sys := newSys(t)
	if err := sys.Spec.CheckRefinesFrom(sys.Intolerant, sys.S); err != nil {
		t.Errorf("SMR should refine SPEC_smr from S: %v", err)
	}
}

func TestIntolerantNotFailSafe(t *testing.T) {
	sys := newSys(t)
	if rep := fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S); rep.OK() {
		t.Error("reading a single replica must not be fail-safe tolerant")
	}
}

func TestVoteIsFailSafe(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("the vote-gated read should be fail-safe tolerant: %v", rep.Err)
	}
}

func TestVoteAloneIsNotMasking(t *testing.T) {
	sys := newSys(t)
	if rep := fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.S); rep.OK() {
		t.Error("the vote-gated read alone must not be masking (it blocks when replica 1 is corrupted)")
	}
}

func TestFullReplicationIsMasking(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("votes + state transfer should be masking tolerant: %v", rep.Err)
	}
}

func TestVoteWitnessDetector(t *testing.T) {
	// The vote witness detects "replica 1 holds the post-operation value":
	// the SMR analogue of Section 6.1's DR.
	sys := newSys(t)
	x := state.Pred("v.1 correct and applied", func(s state.State) bool {
		return allApplied(s) && s.GetName("v.1") == 1
	})
	d := core.Detector{
		Name: "vote",
		D:    sys.Masking,
		Z:    sys.VoteWitness,
		X:    x,
		U:    sys.S,
	}
	if err := d.Check(); err != nil {
		t.Errorf("vote witness should be a detector: %v", err)
	}
	if err := d.CheckFTolerant(sys.Faults, fault.Masking); err != nil {
		t.Errorf("vote witness should be a masking-tolerant detector: %v", err)
	}
}

func TestStateTransferCorrector(t *testing.T) {
	// State transfer corrects "every replica holds its correct value" —
	// the replication analogue of Section 6.1's CR.
	sys := newSys(t)
	c := core.Corrector{
		Name: "transfer",
		C:    sys.Masking,
		Z:    sys.AllCorrect,
		X:    sys.AllCorrect,
		U:    sys.S,
	}
	if err := c.Check(); err != nil {
		t.Errorf("state transfer should be a corrector: %v", err)
	}
	if err := c.CheckFTolerant(sys.Faults, fault.Nonmasking); err != nil {
		t.Errorf("state transfer should be a nonmasking-tolerant corrector: %v", err)
	}
}

func TestSpanAtMostOneCorrupted(t *testing.T) {
	sys := newSys(t)
	span, err := fault.ComputeSpan(sys.Masking, sys.Faults, sys.S)
	if err != nil {
		t.Fatal(err)
	}
	bad := false
	span.Reachable.ForEach(func(id int) bool {
		s := span.Graph.State(id)
		n := 0
		for i := 1; i <= NumReplicas; i++ {
			if s.GetName(vvar(i)) != correctValue(s, i) {
				n++
			}
		}
		if n > 1 {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Error("the fault span must never contain two corrupted replicas")
	}
}

func TestTheorem3_6OnVote(t *testing.T) {
	sys := newSys(t)
	res := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.Faults, sys.S, sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 3.6 instance (SMR vote): %v", res.Err)
	}
	if len(res.Detectors) != sys.Intolerant.NumActions() {
		t.Errorf("expected %d detectors, got %d", sys.Intolerant.NumActions(), len(res.Detectors))
	}
}
