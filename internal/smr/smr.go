// Package smr implements a miniature of Schneider's state-machine approach
// (paper Section 6, reference [14]) to exhibit the paper's claim that
// replication-based designs contain detectors and correctors: three replicas
// of a deterministic state machine apply the same operation, a client reads
// through a majority vote, and a state-transfer action repairs a diverging
// replica.
//
// In component terms:
//
//   - the *detector* is the vote witness "all replicas have applied the
//     operation and replica 1 agrees with another replica", which gates the
//     client read (the analogue of DR in Section 6.1);
//   - the *corrector* is majority state transfer, which converges the
//     replicated state back to "every replica holds the correct value";
//   - the fault corrupts the state of at most one replica at a time.
//
// The state machine is a one-operation counter: each replica holds a bit,
// initially 0, and the replicated operation increments it once; the correct
// value of replica i is therefore determined by whether i has applied.
package smr

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// NumReplicas is the replication degree (tolerates one corrupted replica).
const NumReplicas = 3

// System bundles the replicated-state-machine programs, specification,
// predicates and fault class.
type System struct {
	Schema *state.Schema

	Intolerant *guarded.Program // replicas + read from replica 1
	FailSafe   *guarded.Program // read gated by the vote witness
	Masking    *guarded.Program // + votes from replicas 2,3 + state transfer

	Spec spec.Problem

	// S: every replica holds its correct value and the output is either
	// unset or correct. AllCorrect is the corrector's correction predicate.
	S, AllCorrect state.Predicate

	// VoteWitness is the detector's witness: all replicas applied and
	// replica 1 agrees with another replica.
	VoteWitness state.Predicate

	Faults fault.Class
}

func vvar(i int) string { return fmt.Sprintf("v.%d", i) }
func avar(i int) string { return fmt.Sprintf("a.%d", i) }

// correctValue returns the value replica i should hold in s: 1 once it has
// applied the operation, 0 before.
func correctValue(s state.State, i int) int {
	return s.GetName(avar(i))
}

// New constructs the replicated state machine.
func New() (*System, error) {
	vars := make([]state.Var, 0, 2*NumReplicas+1)
	for i := 1; i <= NumReplicas; i++ {
		vars = append(vars, state.BoolVar(vvar(i)), state.BoolVar(avar(i)))
	}
	vars = append(vars, state.Var{Name: "out", Domain: state.Enum("out", "bot", "v0", "v1")})
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{Schema: sch}
	sys.buildPredicates()
	if err := sys.buildPrograms(); err != nil {
		return nil, err
	}
	sys.buildSpec()
	sys.buildFaults()
	return sys, nil
}

// MustNew is New but panics on construction failure.
func MustNew() *System {
	sys, err := New()
	if err != nil {
		panic(err)
	}
	return sys
}

func allApplied(s state.State) bool {
	for i := 1; i <= NumReplicas; i++ {
		if s.GetName(avar(i)) == 0 {
			return false
		}
	}
	return true
}

func (sys *System) buildPredicates() {
	sys.AllCorrect = state.Pred("every replica correct", func(s state.State) bool {
		for i := 1; i <= NumReplicas; i++ {
			if s.GetName(vvar(i)) != correctValue(s, i) {
				return false
			}
		}
		return true
	})
	sys.S = state.And(sys.AllCorrect, state.Pred("out unset or correct", func(s state.State) bool {
		o := s.GetName("out")
		return o == 0 || (allApplied(s) && o == 2)
	}))
	sys.VoteWitness = state.Pred("all applied ∧ v.1 has a peer", func(s state.State) bool {
		if !allApplied(s) {
			return false
		}
		v1 := s.GetName(vvar(1))
		return v1 == s.GetName(vvar(2)) || v1 == s.GetName(vvar(3))
	})
}

// apply is the replicated operation at replica i: increment the bit once.
func (sys *System) apply(i int) guarded.Action {
	vv, av := vvar(i), avar(i)
	return guarded.Det(fmt.Sprintf("apply.%d", i),
		state.Pred(fmt.Sprintf("¬a.%d", i), func(s state.State) bool { return s.GetName(av) == 0 }),
		func(s state.State) state.State {
			return s.WithName(vv, 1-s.GetName(vv)).WithName(av, 1)
		},
	)
}

// read builds the client read from replica i, gated by extra.
func (sys *System) read(i int, extra state.Predicate) guarded.Action {
	vv := vvar(i)
	guard := state.And(
		state.Pred("out=⊥ ∧ all applied", func(s state.State) bool {
			return s.GetName("out") == 0 && allApplied(s)
		}),
		extra,
	)
	return guarded.Det(fmt.Sprintf("read.%d", i), guard, func(s state.State) state.State {
		return s.WithName("out", s.GetName(vv)+1)
	})
}

// peerAgrees is the vote witness for replica i: it matches one of the other
// replicas.
func (sys *System) peerAgrees(i int) state.Predicate {
	return state.Pred(fmt.Sprintf("v.%d has a peer", i), func(s state.State) bool {
		vi := s.GetName(vvar(i))
		for j := 1; j <= NumReplicas; j++ {
			if j != i && s.GetName(vvar(j)) == vi {
				return true
			}
		}
		return false
	})
}

// transfer is the corrector action at replica i: adopt the value the other
// two replicas agree on.
func (sys *System) transfer(i int) guarded.Action {
	others := make([]int, 0, 2)
	for j := 1; j <= NumReplicas; j++ {
		if j != i {
			others = append(others, j)
		}
	}
	guard := state.Pred(fmt.Sprintf("peers agree ≠ v.%d (all applied)", i), func(s state.State) bool {
		if !allApplied(s) {
			return false
		}
		a, b := s.GetName(vvar(others[0])), s.GetName(vvar(others[1]))
		return a == b && s.GetName(vvar(i)) != a
	})
	return guarded.Det(fmt.Sprintf("transfer.%d", i), guard, func(s state.State) state.State {
		return s.WithName(vvar(i), s.GetName(vvar(others[0])))
	})
}

func (sys *System) buildPrograms() error {
	var base, failsafe, masking []guarded.Action
	for i := 1; i <= NumReplicas; i++ {
		a := sys.apply(i)
		base = append(base, a)
		failsafe = append(failsafe, a)
		masking = append(masking, a)
	}
	base = append(base, sys.read(1, state.True))
	failsafe = append(failsafe, sys.read(1, sys.peerAgrees(1)))
	masking = append(masking, sys.read(1, sys.peerAgrees(1)))
	for i := 2; i <= NumReplicas; i++ {
		masking = append(masking, sys.read(i, sys.peerAgrees(i)))
	}
	for i := 1; i <= NumReplicas; i++ {
		masking = append(masking, sys.transfer(i))
	}
	var err error
	if sys.Intolerant, err = guarded.NewProgram("SMR", sys.Schema, base...); err != nil {
		return err
	}
	if sys.FailSafe, err = guarded.NewProgram("SMR+vote", sys.Schema, failsafe...); err != nil {
		return err
	}
	if sys.Masking, err = guarded.NewProgram("SMR+vote+transfer", sys.Schema, masking...); err != nil {
		return err
	}
	return nil
}

func (sys *System) buildSpec() {
	sys.Spec = spec.Problem{
		Name: "SPEC_smr",
		Safety: spec.NeverStep("output only the post-operation value", func(from, to state.State) bool {
			o0, o1 := from.GetName("out"), to.GetName("out")
			return o0 != o1 && o1 != 2
		}),
		Live: []spec.LeadsTo{{
			Name: "the client eventually reads the correct value",
			P:    state.True,
			Q:    state.VarEquals(sys.Schema, "out", 2),
		}},
	}
}

func (sys *System) buildFaults() {
	actions := make([]guarded.Action, 0, NumReplicas)
	for i := 1; i <= NumReplicas; i++ {
		i := i
		guard := state.Pred(fmt.Sprintf("peers of %d correct", i), func(s state.State) bool {
			for j := 1; j <= NumReplicas; j++ {
				if j != i && s.GetName(vvar(j)) != correctValue(s, j) {
					return false
				}
			}
			return true
		})
		actions = append(actions, guarded.Det(fmt.Sprintf("corrupt.%d", i), guard,
			func(s state.State) state.State {
				return s.WithName(vvar(i), 1-s.GetName(vvar(i)))
			},
		))
	}
	sys.Faults = fault.NewClass("one-replica-corruption", actions...)
}
