package mutex

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func TestRefinesSpecFromInvariant(t *testing.T) {
	sys := MustNew(3, 3)
	if err := sys.Spec.CheckRefinesFrom(sys.Program, sys.Invariant); err != nil {
		t.Errorf("mutex should refine SPEC_mutex from its invariant: %v", err)
	}
}

func TestMutualExclusionHoldsFaultFree(t *testing.T) {
	sys := MustNew(3, 3)
	g, err := explore.Build(sys.Program, sys.Invariant, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reach(g.SetOf(sys.Invariant), nil)
	bad := 0
	reach.ForEach(func(id int) bool {
		if sys.CSCount(g.State(id)) > 1 {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Errorf("%d reachable states have two processes in critical sections", bad)
	}
}

func TestNonmaskingUnderCorruption(t *testing.T) {
	sys := MustNew(3, 3)
	rep := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, sys.Invariant, sys.Invariant)
	if !rep.OK() {
		t.Errorf("mutex should be nonmasking tolerant to counter corruption: %v", rep.Err)
	}
}

func TestNotFailSafeUnderCorruption(t *testing.T) {
	// Corruption can forge a second token, transiently admitting two
	// processes: mutual exclusion is violated, so only nonmasking holds.
	sys := MustNew(3, 3)
	if rep := fault.CheckFailSafe(sys.Program, sys.Corruption, sys.Spec, sys.Invariant); rep.OK() {
		t.Error("mutex must not be fail-safe tolerant to counter corruption")
	}
}

func TestInvariantClosed(t *testing.T) {
	sys := MustNew(3, 3)
	if err := spec.CheckClosed(sys.Program, sys.Invariant); err != nil {
		t.Errorf("invariant should be closed: %v", err)
	}
}

func TestTokenPinnedDuringCS(t *testing.T) {
	// While process i is in its critical section, no reachable program
	// step takes the token away from it.
	sys := MustNew(3, 3)
	g, err := explore.Build(sys.Program, sys.Invariant, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reach(g.SetOf(sys.Invariant), nil)
	violated := false
	reach.ForEach(func(id int) bool {
		s := g.State(id)
		for i := 0; i < sys.N; i++ {
			if !sys.InCS(s, i) {
				continue
			}
			for _, e := range g.Out(id) {
				ns := g.State(e.To)
				if sys.InCS(ns, i) && !sys.Ring.HasToken(ns, i) {
					violated = true
					return false
				}
			}
		}
		return true
	})
	if violated {
		t.Error("the token must be pinned while a critical section is held")
	}
}

func TestConvergenceFromArbitraryState(t *testing.T) {
	// Self-stabilization of the layered system: from any state at all the
	// program converges back to its invariant.
	sys := MustNew(3, 3)
	if err := spec.CheckConverges(sys.Program, state.True, sys.Invariant); err != nil {
		t.Errorf("mutex should converge to its invariant from any state: %v", err)
	}
}

func TestKBoundPropagates(t *testing.T) {
	if _, err := New(4, 3); err == nil {
		t.Error("K < n must be rejected (inherited from the ring)")
	}
}
