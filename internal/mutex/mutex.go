// Package mutex implements token-based mutual exclusion layered over
// Dijkstra's self-stabilizing ring — one of the applications the paper
// lists for the component-based method (Section 1). The ring is the
// corrector ("exactly one token" corrects itself); the critical-section
// guard "I hold the token" is the detector that gates entry; together they
// make the exclusion nonmasking tolerant to counter corruption: a transient
// fault may briefly admit two processes, but the system converges back to
// the invariant.
package mutex

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
	"detcorr/internal/tokenring"
)

// System is a mutual-exclusion instance over an n-process, K-state ring.
type System struct {
	N, K   int
	Schema *state.Schema
	Ring   *tokenring.System

	Program *guarded.Program

	// Invariant: the ring is legitimate, at most one process is in its
	// critical section, and a process in the critical section holds the
	// token.
	Invariant state.Predicate

	// MutualExclusion is the safety predicate "at most one process in the
	// critical section".
	MutualExclusion state.Predicate

	Spec spec.Problem

	// Corruption perturbs ring counters (the ring's own fault class lifted
	// to the extended schema).
	Corruption fault.Class
}

func csVar(i int) string     { return fmt.Sprintf("cs.%d", i) }
func servedVar(i int) string { return fmt.Sprintf("served.%d", i) }

// New builds the system; K ≥ n per Dijkstra's bound.
func New(n, k int) (*System, error) {
	ring, err := tokenring.New(n, k)
	if err != nil {
		return nil, err
	}
	csVars := make([]state.Var, 0, 2*n)
	for i := 0; i < n; i++ {
		// served.i enforces one critical-section entry per privilege:
		// without it a privileged process could re-enter forever and the
		// token would never circulate (weak fairness does not force the
		// move while enter and exit alternate).
		csVars = append(csVars, state.BoolVar(csVar(i)), state.BoolVar(servedVar(i)))
	}
	sch, err := ring.Schema.Extend(csVars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, K: k, Schema: sch, Ring: ring}
	if err := sys.build(); err != nil {
		return nil, err
	}
	return sys, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(n, k int) *System {
	sys, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return sys
}

// InCS reports whether process i is in its critical section.
func (sys *System) InCS(s state.State, i int) bool {
	return s.GetName(csVar(i)) != 0
}

// CSCount returns how many processes are in their critical sections.
func (sys *System) CSCount(s state.State) int {
	n := 0
	for i := 0; i < sys.N; i++ {
		if sys.InCS(s, i) {
			n++
		}
	}
	return n
}

func (sys *System) build() error {
	ringLifted, err := guarded.Lift(sys.Ring.Ring, sys.Schema)
	if err != nil {
		return err
	}
	var actions []guarded.Action
	// The ring move of process i passes the privilege; it may fire only
	// while i is outside its critical section (the token is pinned while
	// the section is held). Passing the privilege resets served.i.
	for idx, a := range ringLifted.Actions() {
		i := idx
		sv := servedVar(i)
		restricted := a.Restrict(state.Pred(
			fmt.Sprintf("¬cs.%d", i),
			func(s state.State) bool { return !sys.InCS(s, i) },
		))
		base := restricted
		actions = append(actions, guarded.Action{
			Name:  fmt.Sprintf("move.%d", i),
			Guard: base.Guard,
			Next: func(s state.State) []state.State {
				nexts := base.Next(s)
				out := make([]state.State, len(nexts))
				for k, ns := range nexts {
					out[k] = ns.WithName(sv, 0)
				}
				return out
			},
		})
	}
	for i := 0; i < sys.N; i++ {
		i := i
		cv, sv := csVar(i), servedVar(i)
		actions = append(actions,
			guarded.Det(fmt.Sprintf("enter.%d", i),
				state.Pred(fmt.Sprintf("token at %d ∧ ¬cs.%d ∧ ¬served.%d", i, i, i), func(s state.State) bool {
					return sys.Ring.HasToken(s, i) && !sys.InCS(s, i) && s.GetName(sv) == 0
				}),
				func(s state.State) state.State { return s.WithName(cv, 1) }),
			guarded.Det(fmt.Sprintf("exit.%d", i),
				state.Pred(fmt.Sprintf("cs.%d", i), func(s state.State) bool { return sys.InCS(s, i) }),
				func(s state.State) state.State { return s.WithName(cv, 0).WithName(sv, 1) }),
		)
	}
	prog, err := guarded.NewProgram(fmt.Sprintf("mutex(n=%d,K=%d)", sys.N, sys.K), sys.Schema, actions...)
	if err != nil {
		return err
	}
	sys.Program = prog

	sys.MutualExclusion = state.Pred("≤1 in critical section", func(s state.State) bool {
		return sys.CSCount(s) <= 1
	})
	sys.Invariant = state.Pred("legitimate ∧ CS holder has the token", func(s state.State) bool {
		if !sys.Ring.Legitimate.Holds(s) || sys.CSCount(s) > 1 {
			return false
		}
		for i := 0; i < sys.N; i++ {
			if sys.InCS(s, i) && !sys.Ring.HasToken(s, i) {
				return false
			}
		}
		return true
	})

	live := make([]spec.LeadsTo, 0, 2*sys.N)
	for i := 0; i < sys.N; i++ {
		i := i
		live = append(live,
			spec.LeadsTo{
				Name: fmt.Sprintf("process %d eventually privileged", i),
				P:    state.True,
				Q: state.Pred(fmt.Sprintf("token at %d", i), func(s state.State) bool {
					return sys.Ring.HasToken(s, i)
				}),
			},
			spec.LeadsTo{
				Name: fmt.Sprintf("process %d eventually leaves its critical section", i),
				P:    state.Pred(fmt.Sprintf("cs.%d", i), func(s state.State) bool { return sys.InCS(s, i) }),
				Q:    state.Pred(fmt.Sprintf("¬cs.%d", i), func(s state.State) bool { return !sys.InCS(s, i) }),
			},
		)
	}
	sys.Spec = spec.Problem{
		Name:   "SPEC_mutex",
		Safety: spec.NeverState("two processes in critical sections", state.Not(sys.MutualExclusion)),
		Live:   live,
	}

	// Lift the ring's counter-corruption faults to the extended schema.
	faultProg, err := guarded.NewProgram("corruption", sys.Ring.Schema, sys.Ring.Corruption.Actions...)
	if err != nil {
		return err
	}
	lifted, err := guarded.Lift(faultProg, sys.Schema)
	if err != nil {
		return err
	}
	sys.Corruption = fault.NewClass(sys.Ring.Corruption.Name, lifted.Actions()...)
	return nil
}
