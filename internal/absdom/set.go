package absdom

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a finite set of integer values from a variable's declared domain.
// Domains up to 64 values wide are represented exactly as a bitmask; wider
// domains degrade to an interval over-approximation (sound: the interval
// always contains every value the exact set would).
//
// Invariant: for a non-empty exact set, IV is the tight hull of the bits.
type Set struct {
	exact bool
	base  int    // value of bit 0 when exact
	bits  uint64 // membership mask when exact
	IV    Interval
}

// EmptySet returns the bottom element.
func EmptySet() Set { return Set{exact: true, IV: Interval{1, 0}} }

// FullSet returns the set of all values in [lo, hi], exact when the domain
// fits in 64 bits.
func FullSet(lo, hi int) Set {
	if lo > hi {
		return EmptySet()
	}
	if w := hi - lo + 1; w <= 64 {
		mask := ^uint64(0)
		if w < 64 {
			mask = (uint64(1) << uint(w)) - 1
		}
		return Set{exact: true, base: lo, bits: mask, IV: Interval{lo, hi}}
	}
	return Set{IV: Interval{lo, hi}}
}

// SingleSet returns the singleton {v}.
func SingleSet(v int) Set {
	return Set{exact: true, base: v, bits: 1, IV: Interval{v, v}}
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	if s.exact {
		return s.bits == 0
	}
	return s.IV.Lo > s.IV.Hi
}

// Contains reports membership. For inexact sets it is the interval test, so
// it may report true for values the concrete set lacks (sound for
// over-approximation).
func (s Set) Contains(v int) bool {
	if s.exact {
		if v < s.base || v > s.base+63 {
			return false
		}
		return s.bits&(uint64(1)<<uint(v-s.base)) != 0
	}
	return v >= s.IV.Lo && v <= s.IV.Hi
}

// Count returns the number of values (the interval width for inexact sets).
func (s Set) Count() int {
	if s.exact {
		return bits.OnesCount64(s.bits)
	}
	if s.IV.Lo > s.IV.Hi {
		return 0
	}
	return s.IV.Hi - s.IV.Lo + 1
}

// Singleton reports the unique member, if the set has exactly one.
func (s Set) Singleton() (int, bool) {
	if s.Count() != 1 {
		return 0, false
	}
	return s.IV.Lo, true
}

// Exact reports whether the set tracks exact membership (vs an interval
// over-approximation).
func (s Set) Exact() bool { return s.exact }

// normalize re-tightens the hull of an exact set after bit mutation.
func (s Set) normalize() Set {
	if !s.exact {
		return s
	}
	if s.bits == 0 {
		return EmptySet()
	}
	s.IV.Lo = s.base + bits.TrailingZeros64(s.bits)
	s.IV.Hi = s.base + 63 - bits.LeadingZeros64(s.bits)
	return s
}

// rebase returns s's bits relative to newBase; s must fit in
// [newBase, newBase+63].
func (s Set) rebase(newBase int) uint64 {
	d := s.base - newBase
	if d >= 0 {
		return s.bits << uint(d)
	}
	return s.bits >> uint(-d)
}

// Intersect returns the meet of a and b.
func Intersect(a, b Set) Set {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptySet()
	}
	lo := max(a.IV.Lo, b.IV.Lo)
	hi := min(a.IV.Hi, b.IV.Hi)
	if lo > hi {
		return EmptySet()
	}
	switch {
	case a.exact && b.exact:
		out := Set{exact: true, base: lo, bits: a.rebase(lo) & b.rebase(lo)}
		return out.clampWidth(hi - lo + 1).normalize()
	case a.exact:
		return Set{exact: true, base: lo, bits: a.rebase(lo)}.clampWidth(hi - lo + 1).normalize()
	case b.exact:
		return Set{exact: true, base: lo, bits: b.rebase(lo)}.clampWidth(hi - lo + 1).normalize()
	}
	return Set{IV: Interval{lo, hi}}
}

// clampWidth masks off bits above the given width.
func (s Set) clampWidth(w int) Set {
	if w >= 64 {
		return s
	}
	if w <= 0 {
		s.bits = 0
		return s
	}
	s.bits &= (uint64(1) << uint(w)) - 1
	return s
}

// Union returns the join of a and b: exact when both are exact and the
// combined hull fits in 64 bits, otherwise the interval hull.
func Union(a, b Set) Set {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	lo := min(a.IV.Lo, b.IV.Lo)
	hi := max(a.IV.Hi, b.IV.Hi)
	if a.exact && b.exact && hi-lo+1 <= 64 {
		return Set{exact: true, base: lo, bits: a.rebase(lo) | b.rebase(lo)}.normalize()
	}
	return Set{IV: Interval{lo, hi}}
}

// Remove returns s without v. Inexact sets can only shrink at the ends.
func (s Set) Remove(v int) Set {
	if s.exact {
		if v >= s.base && v <= s.base+63 {
			s.bits &^= uint64(1) << uint(v-s.base)
		}
		return s.normalize()
	}
	switch v {
	case s.IV.Lo:
		s.IV.Lo++
	case s.IV.Hi:
		s.IV.Hi--
	}
	return s
}

// ClampMin returns s restricted to values >= v.
func (s Set) ClampMin(v int) Set {
	return Intersect(s, Set{IV: Interval{v, maxInt}})
}

// ClampMax returns s restricted to values <= v.
func (s Set) ClampMax(v int) Set {
	return Intersect(s, Set{IV: Interval{minInt, v}})
}

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

// Equal reports whether a and b denote the same set with the same
// representation precision.
func Equal(a, b Set) bool {
	if a.IsEmpty() && b.IsEmpty() {
		return true
	}
	if a.exact != b.exact {
		return false
	}
	if !a.exact {
		return a.IV == b.IV
	}
	return a.rebase(a.IV.Lo) == b.rebase(a.IV.Lo) && a.IV == b.IV
}

// ForEach calls fn for each member in ascending order until fn returns
// false. It reports whether iteration ran to completion.
func (s Set) ForEach(fn func(v int) bool) bool {
	if s.IsEmpty() {
		return true
	}
	for v := s.IV.Lo; v <= s.IV.Hi; v++ {
		if !s.Contains(v) {
			continue
		}
		if !fn(v) {
			return false
		}
	}
	return true
}

// String renders the set for diagnostics: "{}" when empty, "{1,3,5}" when
// exact and small, "[lo..hi]" otherwise.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	if s.exact && s.Count() <= 8 {
		var parts []string
		s.ForEach(func(v int) bool {
			parts = append(parts, fmt.Sprintf("%d", v))
			return true
		})
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("[%d..%d]", s.IV.Lo, s.IV.Hi)
}
