package absdom

import "sort"

// Store is a relational constraint store over named finite-domain
// variables: per-variable value Sets, equalities maintained as union-find
// classes, and disequalities between classes. Guard atoms are asserted into
// the store (Equate, Disequate, Narrow) and propagate: intersecting the
// sets of merged classes, pruning a disequal partner's set when a class
// narrows to a singleton, and flagging contradiction when any class's set
// empties — the basis for refutation-style proofs in internal/prove.
//
// All operations are monotone (sets only shrink), so any assertion sequence
// reaches the same fixpoint regardless of order.
type Store struct {
	parent map[string]string          // union-find; absent key = self root
	sets   map[string]Set             // keyed by class representative
	diseq  map[string]map[string]bool // rep -> disequal reps
	bad    bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		parent: map[string]string{},
		sets:   map[string]Set{},
		diseq:  map[string]map[string]bool{},
	}
}

// Define introduces (or re-constrains) a variable with the given value set.
func (s *Store) Define(name string, set Set) {
	r := s.Rep(name)
	if cur, ok := s.sets[r]; ok {
		s.setAndPropagate(r, Intersect(cur, set))
		return
	}
	s.setAndPropagate(r, set)
}

// Clone returns an independent copy; the original is unaffected by
// assertions on the clone (used for per-branch case splits).
func (s *Store) Clone() *Store {
	c := &Store{
		parent: make(map[string]string, len(s.parent)),
		sets:   make(map[string]Set, len(s.sets)),
		diseq:  make(map[string]map[string]bool, len(s.diseq)),
		bad:    s.bad,
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.sets {
		c.sets[k] = v
	}
	for k, m := range s.diseq {
		nm := make(map[string]bool, len(m))
		for k2 := range m {
			nm[k2] = true
		}
		c.diseq[k] = nm
	}
	return c
}

// Rep returns the representative of name's equality class (path-halving
// find; a never-seen name is its own class).
func (s *Store) Rep(name string) string {
	for {
		p, ok := s.parent[name]
		if !ok || p == name {
			return name
		}
		if gp, ok := s.parent[p]; ok && gp != p {
			s.parent[name] = gp
		}
		name = p
	}
}

// SetOf returns the value set of name's class. Undefined variables are
// unconstrained (a full interval would be unknown here, so callers Define
// every variable before asserting).
func (s *Store) SetOf(name string) (Set, bool) {
	set, ok := s.sets[s.Rep(name)]
	return set, ok
}

// Contradictory reports whether some asserted constraint combination is
// unsatisfiable — the branch is infeasible.
func (s *Store) Contradictory() bool { return s.bad }

// MarkContradictory records an externally-detected contradiction (e.g. from
// a literal the caller decided by enumeration).
func (s *Store) MarkContradictory() { s.bad = true }

// Narrow intersects name's class set with set and propagates. It reports
// whether the store changed.
func (s *Store) Narrow(name string, set Set) bool {
	r := s.Rep(name)
	cur, ok := s.sets[r]
	if !ok {
		s.setAndPropagate(r, set)
		return true
	}
	next := Intersect(cur, set)
	if Equal(next, cur) {
		return false
	}
	s.setAndPropagate(r, next)
	return true
}

// setAndPropagate installs a class set and runs singleton-disequality
// propagation to fixpoint: when a class narrows to {v}, every disequal
// class loses v.
func (s *Store) setAndPropagate(rep string, set Set) {
	work := []string{rep}
	s.sets[rep] = set
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		cur := s.sets[r]
		if cur.IsEmpty() {
			s.bad = true
			return
		}
		v, single := cur.Singleton()
		if !single {
			continue
		}
		for _, other := range sortedPeers(s.diseq[r]) {
			os, ok := s.sets[other]
			if !ok || !os.Contains(v) {
				continue
			}
			next := os.Remove(v)
			s.sets[other] = next
			if next.IsEmpty() {
				s.bad = true
				return
			}
			work = append(work, other)
		}
	}
}

func sortedPeers(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Equate asserts a == b: merges their classes, intersects their sets, and
// flags contradiction if they were asserted disequal. It reports whether
// the store changed.
func (s *Store) Equate(a, b string) bool {
	ra, rb := s.Rep(a), s.Rep(b)
	if ra == rb {
		return false
	}
	if s.diseq[ra][rb] {
		s.bad = true
		return true
	}
	// Merge rb into ra.
	s.parent[rb] = ra
	sb, okB := s.sets[rb]
	delete(s.sets, rb)
	// Re-point rb's disequalities at ra.
	for other := range s.diseq[rb] {
		delete(s.diseq[other], rb)
		if other == ra {
			continue
		}
		s.addDiseq(ra, other)
	}
	delete(s.diseq, rb)
	sa, okA := s.sets[ra]
	switch {
	case okA && okB:
		s.setAndPropagate(ra, Intersect(sa, sb))
	case okB:
		s.setAndPropagate(ra, sb)
	case okA:
		s.setAndPropagate(ra, sa)
	}
	return true
}

// Disequate asserts a != b. Same-class variables contradict; a singleton
// class prunes its partner's set. It reports whether the store changed.
func (s *Store) Disequate(a, b string) bool {
	ra, rb := s.Rep(a), s.Rep(b)
	if ra == rb {
		s.bad = true
		return true
	}
	if s.diseq[ra][rb] {
		return false
	}
	s.addDiseq(ra, rb)
	changed := true
	if v, ok := s.singletonOf(ra); ok {
		s.pruneValue(rb, v)
	}
	if v, ok := s.singletonOf(rb); ok {
		s.pruneValue(ra, v)
	}
	return changed
}

func (s *Store) addDiseq(a, b string) {
	if s.diseq[a] == nil {
		s.diseq[a] = map[string]bool{}
	}
	if s.diseq[b] == nil {
		s.diseq[b] = map[string]bool{}
	}
	s.diseq[a][b] = true
	s.diseq[b][a] = true
}

func (s *Store) singletonOf(rep string) (int, bool) {
	set, ok := s.sets[rep]
	if !ok {
		return 0, false
	}
	return set.Singleton()
}

func (s *Store) pruneValue(rep string, v int) {
	set, ok := s.sets[rep]
	if !ok || !set.Contains(v) {
		return
	}
	s.setAndPropagate(rep, set.Remove(v))
}

// Disequal reports whether a and b are asserted (or derived) disequal.
func (s *Store) Disequal(a, b string) bool {
	ra, rb := s.Rep(a), s.Rep(b)
	if ra == rb {
		return false
	}
	if s.diseq[ra][rb] {
		return true
	}
	sa, okA := s.sets[ra]
	sb, okB := s.sets[rb]
	if okA && okB && sa.Exact() && sb.Exact() && Intersect(sa, sb).IsEmpty() {
		return true
	}
	return false
}
