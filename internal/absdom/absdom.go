// Package absdom implements the finite-domain abstract domains shared by
// the dclint analyzers (internal/lint) and the dcprove proof engine
// (internal/prove):
//
//   - Interval: inclusive integer ranges, the numeric lattice;
//   - Truth: the four-point boolean lattice (which truth values an
//     expression may take);
//   - Val: the abstract value of an expression — a Truth for booleans, an
//     Interval for integers — with sound transfer functions for every GCL
//     operator;
//   - Set: per-variable finite value sets, exact up to 64-value domains and
//     degrading to an interval over-approximation beyond;
//   - Store: a relational constraint store — per-variable Sets plus
//     equalities (union-find) and disequalities between variables — refined
//     by constraint propagation from guards (=, !=, <, range tests).
//
// All transfer functions are sound over-approximations: they ignore
// correlations the domain cannot express, so "definitely true/false"
// answers are exact while "unknown" answers require a fallback (exact
// bounded enumeration in the clients).
package absdom

import "detcorr/internal/gcl"

// Interval is an inclusive integer range.
type Interval struct{ Lo, Hi int }

// Within reports whether i is contained in o.
func (i Interval) Within(o Interval) bool { return i.Lo >= o.Lo && i.Hi <= o.Hi }

// Truth is the abstract value of a boolean expression: which truth values
// it may take. CanT==false means "definitely never true" (and dually for
// CanF); both true means "unknown"; both false means the expression is
// evaluated under an infeasible environment.
type Truth struct{ CanT, CanF bool }

// True reports "definitely true" and False "definitely false".
func (t Truth) True() bool  { return t.CanT && !t.CanF }
func (t Truth) False() bool { return !t.CanT && t.CanF }

// Unknown reports whether both truth values remain possible.
func (t Truth) Unknown() bool { return t.CanT && t.CanF }

// Val is the abstract value of an expression: a Truth for booleans, an
// Interval for integers.
type Val struct {
	IsBool bool
	T      Truth
	IV     Interval
}

// BoolVal abstracts a boolean expression by its possible truth values.
func BoolVal(canT, canF bool) Val { return Val{IsBool: true, T: Truth{canT, canF}} }

// IntVal abstracts an integer expression by an inclusive range.
func IntVal(lo, hi int) Val { return Val{IV: Interval{lo, hi}} }

// Unknown is the boolean top element.
func Unknown() Val { return BoolVal(true, true) }

// Binary is the abstract transfer function for a binary GCL operator. The
// abstraction ignores correlations between the operands, so e.g. x & !x
// still reports {CanT, CanF} and needs an exact fallback.
func Binary(op gcl.Kind, l, r Val) Val {
	switch op {
	case gcl.AND:
		return BoolVal(l.T.CanT && r.T.CanT, l.T.CanF || r.T.CanF)
	case gcl.OR:
		return BoolVal(l.T.CanT || r.T.CanT, l.T.CanF && r.T.CanF)
	case gcl.IMPLIES:
		return BoolVal(l.T.CanF || r.T.CanT, l.T.CanT && r.T.CanF)
	case gcl.EQ, gcl.NEQ:
		var eq Truth
		if l.IsBool {
			eq = Truth{
				CanT: (l.T.CanT && r.T.CanT) || (l.T.CanF && r.T.CanF),
				CanF: (l.T.CanT && r.T.CanF) || (l.T.CanF && r.T.CanT),
			}
		} else {
			overlap := l.IV.Lo <= r.IV.Hi && r.IV.Lo <= l.IV.Hi
			single := l.IV.Lo == l.IV.Hi && r.IV.Lo == r.IV.Hi && l.IV.Lo == r.IV.Lo
			eq = Truth{CanT: overlap, CanF: !single}
		}
		if op == gcl.EQ {
			return Val{IsBool: true, T: eq}
		}
		return BoolVal(eq.CanF, eq.CanT)
	case gcl.LT:
		return BoolVal(l.IV.Lo < r.IV.Hi, l.IV.Hi >= r.IV.Lo)
	case gcl.LE:
		return BoolVal(l.IV.Lo <= r.IV.Hi, l.IV.Hi > r.IV.Lo)
	case gcl.GT:
		return BoolVal(l.IV.Hi > r.IV.Lo, l.IV.Lo <= r.IV.Hi)
	case gcl.GE:
		return BoolVal(l.IV.Hi >= r.IV.Lo, l.IV.Lo < r.IV.Hi)
	case gcl.PLUS:
		return IntVal(l.IV.Lo+r.IV.Lo, l.IV.Hi+r.IV.Hi)
	case gcl.MINUS:
		return IntVal(l.IV.Lo-r.IV.Hi, l.IV.Hi-r.IV.Lo)
	case gcl.STAR:
		a, b, c, d := l.IV.Lo*r.IV.Lo, l.IV.Lo*r.IV.Hi, l.IV.Hi*r.IV.Lo, l.IV.Hi*r.IV.Hi
		return IntVal(min4(a, b, c, d), max4(a, b, c, d))
	case gcl.PERCENT:
		// Total semantics ((a%b)+b)%b with b==0 -> 0: the result lies in
		// [b+1, 0] for negative b, [0, b-1] for positive b, and is 0 at b==0.
		lo := 0
		if r.IV.Lo+1 < 0 {
			lo = r.IV.Lo + 1
		}
		hi := 0
		if r.IV.Hi-1 > 0 {
			hi = r.IV.Hi - 1
		}
		return IntVal(lo, hi)
	}
	return Unknown()
}

func min4(a, b, c, d int) int { return min(min(a, b), min(c, d)) }
func max4(a, b, c, d int) int { return max(max(a, b), max(c, d)) }

// EvalBinary is the concrete semantics of a binary GCL operator over
// source-level integer values (booleans are 0/1), mirroring the compiler:
// '%' is total, ((a%b)+b)%b with b==0 -> 0.
func EvalBinary(op gcl.Kind, a, b int) int {
	b2i := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case gcl.AND:
		return b2i(a != 0 && b != 0)
	case gcl.OR:
		return b2i(a != 0 || b != 0)
	case gcl.IMPLIES:
		return b2i(a == 0 || b != 0)
	case gcl.EQ:
		return b2i(a == b)
	case gcl.NEQ:
		return b2i(a != b)
	case gcl.LT:
		return b2i(a < b)
	case gcl.LE:
		return b2i(a <= b)
	case gcl.GT:
		return b2i(a > b)
	case gcl.GE:
		return b2i(a >= b)
	case gcl.PLUS:
		return a + b
	case gcl.MINUS:
		return a - b
	case gcl.STAR:
		return a * b
	case gcl.PERCENT:
		if b == 0 {
			return 0 // total semantics, mirroring the compiler
		}
		return ((a % b) + b) % b
	}
	return 0
}
