package absdom

import (
	"testing"

	"detcorr/internal/gcl"
)

// TestBinaryAgainstConcrete cross-checks every abstract operator against
// exhaustive concrete evaluation over small operand intervals: whenever the
// abstraction says "definitely", the concrete semantics must agree.
func TestBinaryAgainstConcrete(t *testing.T) {
	intOps := []gcl.Kind{gcl.PLUS, gcl.MINUS, gcl.STAR, gcl.PERCENT}
	cmpOps := []gcl.Kind{gcl.EQ, gcl.NEQ, gcl.LT, gcl.LE, gcl.GT, gcl.GE}
	ivs := []Interval{{0, 0}, {-2, 1}, {1, 3}, {-3, -1}, {2, 2}}
	for _, li := range ivs {
		for _, ri := range ivs {
			l, r := IntVal(li.Lo, li.Hi), IntVal(ri.Lo, ri.Hi)
			for _, op := range intOps {
				got := Binary(op, l, r)
				for a := li.Lo; a <= li.Hi; a++ {
					for b := ri.Lo; b <= ri.Hi; b++ {
						v := EvalBinary(op, a, b)
						if v < got.IV.Lo || v > got.IV.Hi {
							t.Errorf("%v(%v,%v): concrete %d escapes abstract [%d,%d]",
								op, li, ri, v, got.IV.Lo, got.IV.Hi)
						}
					}
				}
			}
			for _, op := range cmpOps {
				got := Binary(op, l, r)
				for a := li.Lo; a <= li.Hi; a++ {
					for b := ri.Lo; b <= ri.Hi; b++ {
						v := EvalBinary(op, a, b) != 0
						if v && !got.T.CanT || !v && !got.T.CanF {
							t.Errorf("%v(%v,%v): concrete %v outside abstract %+v", op, li, ri, v, got.T)
						}
					}
				}
			}
		}
	}
}

// TestBinaryBool checks the boolean connectives on all definite/unknown
// operand combinations.
func TestBinaryBool(t *testing.T) {
	tt, ff, uu := BoolVal(true, false), BoolVal(false, true), BoolVal(true, true)
	cases := []struct {
		op   gcl.Kind
		l, r Val
		want Truth
	}{
		{gcl.AND, tt, tt, Truth{true, false}},
		{gcl.AND, tt, ff, Truth{false, true}},
		{gcl.AND, uu, ff, Truth{false, true}},
		{gcl.AND, uu, tt, Truth{true, true}},
		{gcl.OR, ff, ff, Truth{false, true}},
		{gcl.OR, uu, tt, Truth{true, false}},
		{gcl.IMPLIES, ff, uu, Truth{true, false}},
		{gcl.IMPLIES, tt, ff, Truth{false, true}},
		{gcl.IMPLIES, tt, uu, Truth{true, true}},
		{gcl.EQ, tt, tt, Truth{true, false}},
		{gcl.EQ, tt, ff, Truth{false, true}},
		{gcl.NEQ, tt, ff, Truth{true, false}},
		{gcl.NEQ, uu, ff, Truth{true, true}},
	}
	for _, tc := range cases {
		if got := Binary(tc.op, tc.l, tc.r); got.T != tc.want {
			t.Errorf("%v(%+v,%+v) = %+v, want %+v", tc.op, tc.l.T, tc.r.T, got.T, tc.want)
		}
	}
}

func TestTruthPredicates(t *testing.T) {
	if !(Truth{true, false}).True() || (Truth{true, true}).True() {
		t.Error("True() wrong")
	}
	if !(Truth{false, true}).False() || (Truth{true, true}).False() {
		t.Error("False() wrong")
	}
	if !(Truth{true, true}).Unknown() || (Truth{true, false}).Unknown() {
		t.Error("Unknown() wrong")
	}
}

func TestSetBasics(t *testing.T) {
	s := FullSet(0, 6)
	if !s.Exact() || s.Count() != 7 || !s.Contains(0) || !s.Contains(6) || s.Contains(7) {
		t.Fatalf("FullSet(0,6) malformed: %v", s)
	}
	s = s.Remove(0).Remove(6).Remove(3)
	if s.Count() != 4 || s.IV != (Interval{1, 5}) || s.Contains(3) {
		t.Fatalf("after removals: %v", s)
	}
	if v, ok := SingleSet(-4).Singleton(); !ok || v != -4 {
		t.Fatalf("SingleSet(-4).Singleton() = %d, %v", v, ok)
	}
	if !EmptySet().IsEmpty() || EmptySet().Count() != 0 {
		t.Fatal("EmptySet not empty")
	}
	if got := FullSet(3, 2); !got.IsEmpty() {
		t.Fatalf("FullSet(3,2) should be empty, got %v", got)
	}
}

func TestSetOps(t *testing.T) {
	a := FullSet(0, 4).Remove(2) // {0,1,3,4}
	b := FullSet(2, 6)           // {2..6}
	inter := Intersect(a, b)
	if inter.String() != "{3,4}" {
		t.Fatalf("Intersect = %v", inter)
	}
	uni := Union(a, b)
	if uni.Count() != 7 || uni.Contains(7) || !uni.Contains(2) {
		t.Fatalf("Union = %v", uni)
	}
	if got := a.ClampMin(1).ClampMax(3); got.String() != "{1,3}" {
		t.Fatalf("Clamp = %v", got)
	}
	if !Intersect(SingleSet(1), SingleSet(2)).IsEmpty() {
		t.Fatal("disjoint singletons must intersect empty")
	}
	// Wide domain degrades to an interval but stays sound.
	wide := FullSet(0, 1000)
	if wide.Exact() {
		t.Fatal("1001-value domain should be inexact")
	}
	if got := Intersect(wide, FullSet(5, 8)); !got.Exact() || got.Count() != 4 {
		t.Fatalf("inexact∩exact should recover exactness: %v", got)
	}
	if got := wide.Remove(500); !got.Contains(500) {
		t.Fatal("interior removal from an interval must keep the value (over-approximation)")
	}
	if got := wide.Remove(0); got.IV.Lo != 1 {
		t.Fatal("end removal from an interval must shrink it")
	}
}

func TestSetForEach(t *testing.T) {
	s := FullSet(10, 13).Remove(12)
	var got []int
	s.ForEach(func(v int) bool { got = append(got, v); return true })
	want := []int{10, 11, 13}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	n := 0
	if s.ForEach(func(int) bool { n++; return false }) {
		t.Fatal("early stop must report false")
	}
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestStoreEqualityPropagation: equating variables intersects their sets
// and narrowing one narrows the class.
func TestStoreEqualityPropagation(t *testing.T) {
	s := NewStore()
	s.Define("x", FullSet(0, 5))
	s.Define("y", FullSet(3, 9))
	s.Equate("x", "y")
	set, ok := s.SetOf("x")
	if !ok || set.Count() != 3 || !set.Contains(3) || !set.Contains(5) {
		t.Fatalf("x after equate: %v", set)
	}
	s.Narrow("y", SingleSet(4))
	if set, _ = s.SetOf("x"); set.String() != "{4}" {
		t.Fatalf("x after narrowing y: %v", set)
	}
	if s.Contradictory() {
		t.Fatal("consistent store flagged contradictory")
	}
}

// TestStoreDisequality: singleton classes prune disequal partners, and a
// chain of prunings can empty a set, flagging contradiction.
func TestStoreDisequality(t *testing.T) {
	s := NewStore()
	s.Define("a", FullSet(0, 1))
	s.Define("b", FullSet(0, 1))
	s.Define("c", FullSet(0, 1))
	s.Disequate("a", "b")
	s.Disequate("b", "c")
	s.Narrow("a", SingleSet(0))
	if set, _ := s.SetOf("b"); set.String() != "{1}" {
		t.Fatalf("b should be pruned to {1}: %v", set)
	}
	if set, _ := s.SetOf("c"); set.String() != "{0}" {
		t.Fatalf("c should be pruned transitively to {0}: %v", set)
	}
	// a != b is now derivable from the disjoint singleton sets alone.
	if !s.Disequal("a", "b") {
		t.Fatal("a and b have disjoint singletons; Disequal should report true")
	}
	s.Disequate("a", "c") // both singletons {0}: contradiction
	if !s.Contradictory() {
		t.Fatal("a={0}, c={0}, a!=c must contradict")
	}
}

// TestStoreEquateDisequalContradicts: x != y then x == y is inconsistent.
func TestStoreEquateDisequalContradicts(t *testing.T) {
	s := NewStore()
	s.Define("x", FullSet(0, 3))
	s.Define("y", FullSet(0, 3))
	s.Disequate("x", "y")
	s.Equate("x", "y")
	if !s.Contradictory() {
		t.Fatal("equate after disequate must contradict")
	}

	s2 := NewStore()
	s2.Define("x", FullSet(0, 3))
	s2.Equate("x", "y")
	s2.Disequate("y", "x")
	if !s2.Contradictory() {
		t.Fatal("disequate within one class must contradict")
	}
}

// TestStoreClone: branch assertions must not leak into the parent.
func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.Define("x", FullSet(0, 5))
	s.Define("y", FullSet(0, 5))
	c := s.Clone()
	c.Equate("x", "y")
	c.Narrow("x", SingleSet(2))
	if set, _ := s.SetOf("x"); set.Count() != 6 {
		t.Fatalf("clone narrowed the parent: %v", set)
	}
	if s.Rep("y") == s.Rep("x") {
		t.Fatal("clone equate leaked into parent")
	}
	if set, _ := c.SetOf("y"); set.String() != "{2}" {
		t.Fatalf("clone lost its own narrowing: %v", set)
	}
}

// TestStoreDiseqMergeCarriesOver: disequalities re-point at the surviving
// representative after a merge.
func TestStoreDiseqMergeCarriesOver(t *testing.T) {
	s := NewStore()
	for _, v := range []string{"x", "y", "z"} {
		s.Define(v, FullSet(0, 2))
	}
	s.Disequate("y", "z")
	s.Equate("x", "y") // y's diseq with z must follow the class
	s.Narrow("x", SingleSet(1))
	if set, _ := s.SetOf("z"); set.Contains(1) {
		t.Fatalf("z should have lost value 1 via the merged class: %v", set)
	}
}

// TestStoreEmptyNarrowContradicts: narrowing to an empty set flags the
// store, the refutation signal.
func TestStoreEmptyNarrowContradicts(t *testing.T) {
	s := NewStore()
	s.Define("x", FullSet(0, 3))
	s.Narrow("x", FullSet(7, 9))
	if !s.Contradictory() {
		t.Fatal("empty narrowing must contradict")
	}
}
