// Package lint implements dclint, a multi-pass static analyzer for
// guarded-command (GCL) programs. The analyzers run on the parsed AST —
// before compilation and without exploring the program's state space — and
// report authoring mistakes that would otherwise surface only as exploded
// model-checking runs or silently vacuous results:
//
//	DC000  parse/resolve error (syntax, undeclared name, type mismatch)
//	DC001  dead guard: an action whose guard can never be true
//	DC002  domain overflow: an assignment that can leave the target's domain
//	DC003  unused declaration: unused/unread/unwritten variable, unreferenced predicate
//	DC004  write-write conflict: '||'-interference between program actions
//	DC005  vacuous predicate: constantly true/false over the declared domains
//	DC006  fault hygiene: a fault writing a variable no program action reads
//	DC007  program structure (lint.Check on compiled compositions)
//	DC008  analysis budget exhausted: the exact fallback was abandoned and the result is unknown
//	DC009  bad lint:ignore directive: a suppression names an unknown diagnostic code
//	DC200  detector interference: a detector component writes a base-program variable
//	DC201  corrector scope: a corrector writes outside its declared correction scope
//	DC202  component clash: two composed components write the same variable
//	DC203  fault span: a fault action writes outside the declared span
//	DC204  unwritten input: a predicate reads a variable no action or fault ever writes
//
// The analyzers decide properties with constant folding and interval
// analysis over the declared finite domains (the shared lattice in
// internal/absdom), falling back to exact enumeration over only the
// variables an expression references (bounded by evalBudget), so results
// are definite whenever a finding is reported; DC008 traces the cases
// where the budget forced an analyzer to stay silent.
//
// Findings can be suppressed inline with a comment on the finding's line or
// the line directly above it:
//
//	# lint:ignore DC003 the memory value is an input, fixed per run
//
// Check validates compiled guarded.Program values (typically '||'/';'
// compositions assembled by internal/core) using the actions' declared
// write-sets, again without state exploration.
package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"detcorr/internal/gcl"
)

// Severity grades a finding. Only Error findings make dctl lint exit
// non-zero; Warning findings are likely bugs, Info findings are advisory.
type Severity int

// Severities, in increasing order.
const (
	Info Severity = iota + 1
	Warning
	Error
)

// String renders the severity in lowercase, as printed in diagnostics.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity from its string form.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding, anchored at a source position. Line and Col
// are zero for findings about compiled programs (Check), which have no
// source text.
type Diagnostic struct {
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	Message  string   `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Message, d.Code)
}

// Diagnostic codes. DC000 and DC007 are infrastructure codes; DC001-DC006
// each belong to one analyzer.
const (
	CodeResolve      = "DC000"
	CodeDeadGuard    = "DC001"
	CodeOverflow     = "DC002"
	CodeUnused       = "DC003"
	CodeConflict     = "DC004"
	CodeVacuous      = "DC005"
	CodeFaultHygiene = "DC006"
	CodeStructure    = "DC007"
	CodeBudget       = "DC008"
	CodeDirective    = "DC009"

	// Interference diagnostics (the flow-analysis family).
	CodeDetectorWrite  = "DC200"
	CodeCorrectorScope = "DC201"
	CodeComponentClash = "DC202"
	CodeFaultSpan      = "DC203"
	CodeUnwrittenPred  = "DC204"
)

// knownCodes is every diagnostic code a '# lint:ignore' directive may name:
// the lint codes above plus the dcprove codes (DC100-DC103, declared in
// internal/prove, which lint cannot import).
var knownCodes = map[string]bool{
	CodeResolve: true, CodeDeadGuard: true, CodeOverflow: true,
	CodeUnused: true, CodeConflict: true, CodeVacuous: true,
	CodeFaultHygiene: true, CodeStructure: true, CodeBudget: true,
	CodeDirective:     true,
	CodeDetectorWrite: true, CodeCorrectorScope: true,
	CodeComponentClash: true, CodeFaultSpan: true, CodeUnwrittenPred: true,
	"DC100": true, // prove.CodeClosure
	"DC101": true, // prove.CodeSpanClosure
	"DC102": true, // prove.CodeSafeness
	"DC103": true, // prove.CodeConvergence
}

// Analyzer is one named analysis pass, modeled on go/analysis: Run inspects
// the Pass and reports diagnostics through it.
type Analyzer struct {
	Name string
	Code string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the passes in the order they run.
func Analyzers() []*Analyzer {
	return []*Analyzer{deadGuard, domainOverflow, unusedDecl, writeConflict, vacuousSpec, faultHygiene, interference}
}

// Lint parses and analyzes GCL source. A parse failure yields a single
// DC000 error diagnostic instead of an error, so multi-file lint runs keep
// going.
func Lint(filename, src string) []Diagnostic {
	ast, err := gcl.Parse(src)
	if err != nil {
		d := Diagnostic{File: filename, Line: 1, Col: 1, Severity: Error, Code: CodeResolve, Message: err.Error()}
		var serr *gcl.SyntaxError
		if errors.As(err, &serr) {
			d.Line, d.Col, d.Message = serr.Line, serr.Col, serr.Msg
		}
		return []Diagnostic{d}
	}
	return Analyze(filename, ast, src)
}

// Analyze runs every analyzer over a parsed file and returns the findings
// sorted by position. src, when non-empty, is scanned for '# lint:ignore'
// suppression directives; pass "" to disable suppression.
func Analyze(filename string, ast *gcl.FileAST, src string) []Diagnostic {
	p := newPass(filename, ast)
	for _, a := range Analyzers() {
		a.Run(p)
	}
	diags := p.diags
	if src != "" {
		dirs := parseDirectives(filename, src)
		diags = dirs.apply(append(diags, dirs.warnings...))
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	return diags
}

// Errors condenses the error-severity findings into a single error, or nil
// when there are none.
func Errors(diags []Diagnostic) error {
	var msgs []string
	for _, d := range diags {
		if d.Severity == Error {
			msgs = append(msgs, d.Message)
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("lint: %s", strings.Join(msgs, "; "))
}

// directives is the parsed suppression state of one file: which codes are
// suppressed on which lines, plus DC009 warnings for directives naming
// unknown codes.
type directives struct {
	byLine   map[int]map[string]bool
	warnings []Diagnostic
}

// parseDirectives scans src for '# lint:ignore CODE[,CODE]... [reason]'
// directives. A directive suppresses matching codes on its own line and on
// the line directly below (including when the directive sits on the last
// line of the file), so it can share the offending line or sit in a
// comment above it. The code list may be 'all'; codes may be separated by
// commas with or without spaces ("DC001,DC004" and "DC001, DC004" both
// work — the list ends at the first token that does not continue it). A
// code that is not a known DC-code yields a DC009 warning, so typos do not
// silently suppress nothing.
func parseDirectives(filename, src string) *directives {
	dirs := &directives{byLine: map[int]map[string]bool{}}
	for i, line := range strings.Split(src, "\n") {
		hash := strings.Index(line, "#")
		if hash < 0 {
			continue
		}
		directive := strings.TrimSpace(line[hash+1:])
		if !strings.HasPrefix(directive, "lint:ignore") {
			continue
		}
		rest := strings.TrimPrefix(directive, "lint:ignore")
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue // e.g. "lint:ignored", not a directive
		}
		fields := strings.Fields(rest)
		var codes []string
		// Consume the comma-separated code list: the first token always
		// belongs to it, and a token ending in ',' pulls in the next one
		// ("DC001, DC004 reason"). Everything after is the free-form reason.
		for j, tok := range fields {
			codes = append(codes, splitCodes(tok)...)
			if !strings.HasSuffix(tok, ",") || j == len(fields)-1 {
				break
			}
		}
		if len(codes) == 0 {
			dirs.warnings = append(dirs.warnings, Diagnostic{
				File: filename, Line: i + 1, Col: hash + 1,
				Severity: Warning, Code: CodeDirective,
				Message: "lint:ignore directive without a code list; use 'lint:ignore CODE[,CODE] reason' or 'lint:ignore all'",
			})
			continue
		}
		for _, code := range codes {
			if code != "all" && !knownCodes[code] {
				dirs.warnings = append(dirs.warnings, Diagnostic{
					File: filename, Line: i + 1, Col: hash + 1,
					Severity: Warning, Code: CodeDirective,
					Message: fmt.Sprintf("lint:ignore directive names unknown code %q; it suppresses nothing", code),
				})
				continue
			}
			for _, target := range []int{i + 1, i + 2} { // 1-based: this line and the next
				if dirs.byLine[target] == nil {
					dirs.byLine[target] = map[string]bool{}
				}
				dirs.byLine[target][code] = true
			}
		}
	}
	return dirs
}

// splitCodes splits one directive token on commas, dropping empties from
// trailing or doubled commas.
func splitCodes(tok string) []string {
	var out []string
	for _, c := range strings.Split(tok, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// apply drops the diagnostics covered by a suppression directive
// (including DC009 warnings themselves, which a 'lint:ignore DC009' on the
// directive's own line silences).
func (dirs *directives) apply(diags []Diagnostic) []Diagnostic {
	if len(dirs.byLine) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if codes := dirs.byLine[d.Line]; codes != nil && (codes[d.Code] || codes["all"]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
