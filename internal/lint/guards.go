package lint

import (
	"fmt"

	"detcorr/internal/gcl"
)

// deadGuard (DC001) reports actions and faults whose guard is
// unsatisfiable over the declared domains: the command can never execute,
// which almost always means a typo in the guard or a domain declared too
// small. Constant folding and interval analysis decide the easy cases
// (x > 5 over 0..3); correlated guards (b & !b) are decided by exact
// enumeration over the guard's variables.
var deadGuard = &Analyzer{
	Name: "deadguard",
	Code: CodeDeadGuard,
	Doc:  "detect actions whose guard can never be true",
	Run: func(p *Pass) {
		check := func(kind string, d *gcl.ActionDecl) {
			if !p.exprOK[d.Guard] {
				return
			}
			t, definite := p.decideTruth(d.Guard)
			if !definite {
				p.reportBudget(d.At, fmt.Sprintf("the guard of %s %q", kind, d.Name), p.refVars(d.Guard))
				return
			}
			if !t.CanT {
				p.Reportf(d.At, Warning, CodeDeadGuard,
					"guard of %s %q is unsatisfiable; it can never execute", kind, d.Name)
			}
		}
		for i := range p.AST.Actions {
			check("action", &p.AST.Actions[i])
		}
		for i := range p.AST.Faults {
			check("fault", &p.AST.Faults[i])
		}
	},
}

// domainOverflow (DC002) reports assignments whose right-hand side can
// evaluate outside the target variable's declared domain in a state where
// the guard holds. The compiler rejects such programs too, but only by
// enumerating the full state space; the lint pass decides it from the
// RHS interval, refined by enumeration over just the guard and RHS
// variables, and reports a concrete witness assignment.
var domainOverflow = &Analyzer{
	Name: "overflow",
	Code: CodeOverflow,
	Doc:  "detect assignments whose value can leave the target variable's domain",
	Run: func(p *Pass) {
		check := func(kind string, d *gcl.ActionDecl) {
			if !p.exprOK[d.Guard] {
				return
			}
			for i := range d.Assigns {
				a := &d.Assigns[i]
				if a.Expr == nil || !p.exprOK[a.Expr] {
					continue
				}
				v := p.vars[a.Var]
				if v == nil || v.typ != typInt {
					continue
				}
				dom := interval{Lo: v.lo, Hi: v.hi}
				r := p.absEval(a.Expr)
				if r.IV.Within(dom) {
					continue
				}
				if r.IV.Hi < dom.Lo || r.IV.Lo > dom.Hi {
					p.Reportf(a.At, Error, CodeOverflow,
						"%s %q assigns %q values in %d..%d, entirely outside its domain %d..%d",
						kind, d.Name, a.Var, r.IV.Lo, r.IV.Hi, dom.Lo, dom.Hi)
					continue
				}
				vars := unionVars(p.refVars(d.Guard), p.refVars(a.Expr))
				witness, ok := p.findEnv(vars, func(env map[string]int) bool {
					if p.eval(env, d.Guard) == 0 {
						return false
					}
					val := p.eval(env, a.Expr)
					return val < dom.Lo || val > dom.Hi
				})
				if !ok {
					p.Reportf(a.At, Warning, CodeOverflow,
						"%s %q may assign %q values in %d..%d, outside its domain %d..%d (too many states to verify exactly)",
						kind, d.Name, a.Var, r.IV.Lo, r.IV.Hi, dom.Lo, dom.Hi)
					continue
				}
				if witness != nil {
					p.Reportf(a.At, Error, CodeOverflow,
						"%s %q assigns %d to %q, outside its domain %d..%d (e.g. when %s)",
						kind, d.Name, p.eval(witness, a.Expr), a.Var, dom.Lo, dom.Hi,
						p.envString(witness, vars))
				}
			}
		}
		for i := range p.AST.Actions {
			check("action", &p.AST.Actions[i])
		}
		for i := range p.AST.Faults {
			check("fault", &p.AST.Faults[i])
		}
	},
}
