package lint

import (
	"fmt"

	"detcorr/internal/gcl"
)

// writeConflict (DC004) reports pairs of program actions that can be
// enabled in the same state and assign the same variable different values.
// The actions of a file are implicitly '||'-composed, and the paper's
// component compositions assume interference-freedom: two simultaneously
// enabled writers of one variable make the composed behavior depend on the
// scheduler in a way the detector/corrector proofs do not account for.
//
// A pair is reported only when a concrete witness state is found, so a
// finding is always definite: guards that are provably disjoint (read0's
// val == 0 vs read1's val == 1) never fire, and syntactically different
// right-hand sides that agree on every overlap state (x := val vs x := 0
// under guard val == 0) do not either. Fault actions are exempt — faults
// intentionally clobber program variables.
var writeConflict = &Analyzer{
	Name: "conflict",
	Code: CodeConflict,
	Doc:  "detect ||-interference: simultaneously enabled actions writing the same variable different values",
	Run: func(p *Pass) {
		acts := p.AST.Actions
		for i := range acts {
			for j := i + 1; j < len(acts); j++ {
				p.checkConflict(&acts[i], &acts[j])
			}
		}
	},
}

// clash is a variable both actions write, with their (possibly nil = '?')
// right-hand sides.
type clash struct {
	name   string
	ea, eb gcl.Expr
}

func (p *Pass) checkConflict(a, b *gcl.ActionDecl) {
	if !p.exprOK[a.Guard] || !p.exprOK[b.Guard] {
		return
	}
	var clashes []clash
	for _, aa := range a.Assigns {
		for _, ba := range b.Assigns {
			if aa.Var != ba.Var {
				continue
			}
			if _, declared := p.vars[aa.Var]; !declared {
				continue
			}
			if aa.Expr != nil && !p.exprOK[aa.Expr] {
				continue
			}
			if ba.Expr != nil && !p.exprOK[ba.Expr] {
				continue
			}
			if exprEqual(aa.Expr, ba.Expr) {
				continue
			}
			clashes = append(clashes, clash{aa.Var, aa.Expr, ba.Expr})
		}
	}
	if len(clashes) == 0 {
		return
	}
	vars := p.refVars(a.Guard, b.Guard)
	for _, cl := range clashes {
		if cl.ea != nil {
			vars = unionVars(vars, p.refVars(cl.ea))
		}
		if cl.eb != nil {
			vars = unionVars(vars, p.refVars(cl.eb))
		}
	}
	conflictVar := ""
	witness, ok := p.findEnv(vars, func(env map[string]int) bool {
		if p.eval(env, a.Guard) == 0 || p.eval(env, b.Guard) == 0 {
			return false
		}
		for _, cl := range clashes {
			if p.conflictsAt(env, cl) {
				conflictVar = cl.name
				return true
			}
		}
		return false
	})
	if !ok {
		p.reportBudget(b.At, fmt.Sprintf("the write overlap of actions %q and %q", a.Name, b.Name), vars)
		return
	}
	if witness == nil {
		return
	}
	p.Reportf(b.At, Warning, CodeConflict,
		"actions %q and %q are enabled together (e.g. when %s) and assign different values to %q; the '||' composition is not interference-free",
		a.Name, b.Name, p.envString(witness, vars), conflictVar)
}

// conflictsAt reports whether the two right-hand sides can produce
// different values for the variable in the given state. A '?' conflicts
// with any deterministic assignment when the domain has more than one
// value; two '?' assignments have the same effect.
func (p *Pass) conflictsAt(env map[string]int, cl clash) bool {
	if cl.ea == nil || cl.eb == nil {
		if cl.ea == nil && cl.eb == nil {
			return false
		}
		return p.vars[cl.name].size() > 1
	}
	return p.eval(env, cl.ea) != p.eval(env, cl.eb)
}

// exprEqual reports structural equality of two expressions; nil (the '?'
// statement) equals only nil.
func exprEqual(a, b gcl.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *gcl.BoolLit:
		y, ok := b.(*gcl.BoolLit)
		return ok && x.Value == y.Value
	case *gcl.IntLit:
		y, ok := b.(*gcl.IntLit)
		return ok && x.Value == y.Value
	case *gcl.Ref:
		y, ok := b.(*gcl.Ref)
		return ok && x.Name == y.Name
	case *gcl.Unary:
		y, ok := b.(*gcl.Unary)
		return ok && x.Op == y.Op && exprEqual(x.X, y.X)
	case *gcl.Binary:
		y, ok := b.(*gcl.Binary)
		return ok && x.Op == y.Op && exprEqual(x.L, y.L) && exprEqual(x.R, y.R)
	}
	return false
}

// vacuousSpec (DC005) reports predicates that are constantly true or
// constantly false over the declared domains. Checking an invariant that
// is constantly true, or a detection predicate that is constantly false,
// succeeds (or fails) vacuously — the specification does not say what its
// author thinks it says.
var vacuousSpec = &Analyzer{
	Name: "vacuous",
	Code: CodeVacuous,
	Doc:  "detect predicates that are constantly true or constantly false",
	Run: func(p *Pass) {
		for i := range p.AST.Preds {
			d := &p.AST.Preds[i]
			pi := p.preds[d.Name]
			if pi == nil || pi.index != i || !pi.ok {
				continue
			}
			t, definite := p.decideTruth(d.Expr)
			if !definite {
				p.reportBudget(d.At, fmt.Sprintf("predicate %q", d.Name), p.predVars(pi))
				continue
			}
			switch {
			case !t.CanF:
				p.Reportf(d.At, Warning, CodeVacuous,
					"predicate %q is constantly true over the declared domains; checks against it are vacuous", d.Name)
			case !t.CanT:
				p.Reportf(d.At, Warning, CodeVacuous,
					"predicate %q is constantly false over the declared domains; checks against it are vacuous", d.Name)
			}
		}
	},
}
