package lint

import (
	"fmt"

	"detcorr/internal/gcl"
)

// valType is the type of an expression: boolean or integer. Enum values
// are integers (their declaration index), mirroring the compiler.
type valType int

const (
	typInvalid valType = iota
	typBool
	typInt
)

func (t valType) String() string {
	switch t {
	case typBool:
		return "bool"
	case typInt:
		return "int"
	}
	return "invalid"
}

// varInfo is a declared variable with its source-level value bounds:
// bool 0..1, range lo..hi, enum 0..len(names)-1.
type varInfo struct {
	decl   gcl.VarDecl
	typ    valType
	lo, hi int
	enum   []string // enum value names, nil otherwise
}

// size returns the number of values in the variable's domain.
func (v *varInfo) size() int { return v.hi - v.lo + 1 }

// predInfo is a declared predicate. ok reports that its expression
// resolved and is boolean; abs and vars memoize derived facts.
type predInfo struct {
	decl  gcl.PredDecl
	index int
	ok    bool
	abs   *aval
	vars  []string
}

// Pass is the shared context the analyzers run over: the parsed file, its
// resolved symbol table, and the diagnostics collected so far. Resolution
// and type errors are reported as DC000 diagnostics during construction;
// analyzers consult exprOK/predInfo.ok and skip what did not resolve.
type Pass struct {
	File string
	AST  *gcl.FileAST

	vars   map[string]*varInfo
	consts map[string]int
	preds  map[string]*predInfo
	exprOK map[gcl.Expr]bool // top-level guards and assignment RHS that type-checked

	diags []Diagnostic
}

// Reportf records a diagnostic at a source position.
func (p *Pass) Reportf(at gcl.Pos, sev Severity, code, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		File: p.File, Line: at.Line, Col: at.Col,
		Severity: sev, Code: code, Message: fmt.Sprintf(format, args...),
	})
}

func newPass(filename string, ast *gcl.FileAST) *Pass {
	p := &Pass{
		File:   filename,
		AST:    ast,
		vars:   map[string]*varInfo{},
		consts: map[string]int{},
		preds:  map[string]*predInfo{},
		exprOK: map[gcl.Expr]bool{},
	}
	p.buildSymbols()
	p.checkTypes()
	return p
}

// buildSymbols mirrors the compiler's declaration rules, reporting DC000
// diagnostics instead of failing on the first violation.
func (p *Pass) buildSymbols() {
	for i := range p.AST.Vars {
		d := &p.AST.Vars[i]
		if _, dup := p.vars[d.Name]; dup {
			p.Reportf(d.At, Error, CodeResolve, "duplicate variable %q", d.Name)
			continue
		}
		vi := &varInfo{decl: *d}
		switch d.Type.Kind {
		case gcl.TypeBool:
			vi.typ, vi.lo, vi.hi = typBool, 0, 1
		case gcl.TypeRange:
			vi.typ, vi.lo, vi.hi = typInt, d.Type.Lo, d.Type.Hi
		case gcl.TypeEnum:
			vi.typ, vi.lo, vi.hi = typInt, 0, len(d.Type.Names)-1
			vi.enum = d.Type.Names
			for idx, name := range d.Type.Names {
				if old, dup := p.consts[name]; dup && old != idx {
					p.Reportf(d.At, Error, CodeResolve, "enum value %q redeclared with a different index", name)
					continue
				}
				p.consts[name] = idx
			}
		default:
			p.Reportf(d.At, Error, CodeResolve, "variable %q has unknown type", d.Name)
			continue
		}
		p.vars[d.Name] = vi
	}
	for i := range p.AST.Vars {
		d := &p.AST.Vars[i]
		if _, clash := p.consts[d.Name]; clash {
			p.Reportf(d.At, Error, CodeResolve, "name %q is both a variable and an enum value", d.Name)
		}
	}
	for i := range p.AST.Preds {
		d := &p.AST.Preds[i]
		if _, dup := p.preds[d.Name]; dup {
			p.Reportf(d.At, Error, CodeResolve, "duplicate predicate %q", d.Name)
			continue
		}
		if _, clash := p.vars[d.Name]; clash {
			p.Reportf(d.At, Error, CodeResolve, "predicate %q has the same name as a variable", d.Name)
			continue
		}
		if _, clash := p.consts[d.Name]; clash {
			p.Reportf(d.At, Error, CodeResolve, "predicate %q has the same name as an enum value", d.Name)
			continue
		}
		p.preds[d.Name] = &predInfo{decl: *d, index: i}
	}
}

// checkTypes resolves and type-checks every expression in the file:
// predicates in declaration order (a predicate may reference only earlier
// ones, as in the compiler), then action and fault guards and assignments.
func (p *Pass) checkTypes() {
	avail := map[string]*predInfo{}
	for i := range p.AST.Preds {
		d := &p.AST.Preds[i]
		pi := p.preds[d.Name]
		if pi == nil || pi.index != i {
			continue // duplicate or clashing declaration, already reported
		}
		switch p.typeOf(d.Expr, avail) {
		case typBool:
			pi.ok = true
		case typInt:
			p.Reportf(d.At, Error, CodeResolve, "predicate %q is not boolean", d.Name)
		}
		avail[d.Name] = pi
	}
	check := func(d *gcl.ActionDecl, kind string) {
		switch p.typeOf(d.Guard, avail) {
		case typBool:
			p.exprOK[d.Guard] = true
		case typInt:
			p.Reportf(d.At, Error, CodeResolve, "guard of %s %q is not boolean", kind, d.Name)
		}
		seen := map[string]bool{}
		for j := range d.Assigns {
			a := &d.Assigns[j]
			v, declared := p.vars[a.Var]
			if !declared {
				p.Reportf(a.At, Error, CodeResolve, "assignment to undeclared variable %q", a.Var)
				continue
			}
			if seen[a.Var] {
				p.Reportf(a.At, Error, CodeResolve, "variable %q assigned twice in %s %q", a.Var, kind, d.Name)
				continue
			}
			seen[a.Var] = true
			if a.Expr == nil {
				continue // '?': always well-typed
			}
			t := p.typeOf(a.Expr, avail)
			if t == typInvalid {
				continue
			}
			if t != v.typ {
				p.Reportf(a.At, Error, CodeResolve, "assignment to %q: expected %s, got %s", a.Var, v.typ, t)
				continue
			}
			p.exprOK[a.Expr] = true
		}
	}
	for i := range p.AST.Actions {
		check(&p.AST.Actions[i], "action")
	}
	for i := range p.AST.Faults {
		check(&p.AST.Faults[i], "fault")
	}
}

// typeOf type-checks an expression, reporting DC000 diagnostics for
// unresolved names and operand mismatches. avail limits which predicates
// may be referenced. An invalid subexpression propagates typInvalid
// without cascading reports.
func (p *Pass) typeOf(e gcl.Expr, avail map[string]*predInfo) valType {
	switch n := e.(type) {
	case *gcl.BoolLit:
		return typBool
	case *gcl.IntLit:
		return typInt
	case *gcl.Ref:
		if v, ok := p.vars[n.Name]; ok {
			return v.typ
		}
		if _, ok := p.consts[n.Name]; ok {
			return typInt
		}
		if pi, ok := avail[n.Name]; ok {
			if !pi.ok {
				return typInvalid
			}
			return typBool
		}
		if _, later := p.preds[n.Name]; later {
			p.Reportf(n.At, Error, CodeResolve, "predicate %q referenced before its declaration", n.Name)
			return typInvalid
		}
		p.Reportf(n.At, Error, CodeResolve, "undeclared identifier %q", n.Name)
		return typInvalid
	case *gcl.Unary:
		t := p.typeOf(n.X, avail)
		if t == typInvalid {
			return typInvalid
		}
		switch n.Op {
		case gcl.NOT:
			if t != typBool {
				p.Reportf(n.At, Error, CodeResolve, "'!' applied to non-boolean")
				return typInvalid
			}
			return typBool
		case gcl.MINUS:
			if t != typInt {
				p.Reportf(n.At, Error, CodeResolve, "unary '-' applied to non-integer")
				return typInvalid
			}
			return typInt
		}
		return typInvalid
	case *gcl.Binary:
		l := p.typeOf(n.L, avail)
		r := p.typeOf(n.R, avail)
		if l == typInvalid || r == typInvalid {
			return typInvalid
		}
		switch n.Op {
		case gcl.AND, gcl.OR, gcl.IMPLIES:
			if l != typBool || r != typBool {
				p.Reportf(n.At, Error, CodeResolve, "%s requires boolean operands", n.Op)
				return typInvalid
			}
			return typBool
		case gcl.EQ, gcl.NEQ:
			if l != r {
				p.Reportf(n.At, Error, CodeResolve, "%s compares %s with %s", n.Op, l, r)
				return typInvalid
			}
			return typBool
		case gcl.LT, gcl.LE, gcl.GT, gcl.GE:
			if l != typInt || r != typInt {
				p.Reportf(n.At, Error, CodeResolve, "%s requires integer operands", n.Op)
				return typInvalid
			}
			return typBool
		case gcl.PLUS, gcl.MINUS, gcl.STAR, gcl.PERCENT:
			if l != typInt || r != typInt {
				p.Reportf(n.At, Error, CodeResolve, "%s requires integer operands", n.Op)
				return typInvalid
			}
			return typInt
		}
		return typInvalid
	}
	return typInvalid
}
