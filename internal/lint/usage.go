package lint

import "detcorr/internal/gcl"

// unusedDecl (DC003) reports declaration-usage mismatches:
//
//   - a variable neither read nor written anywhere (warning): dead weight
//     that still multiplies the state space;
//   - a variable written by some command but never read by any guard,
//     right-hand side, or predicate (warning): state that cannot influence
//     anything;
//   - a variable read but never written by any action or fault (info): it
//     is a constant input, which is legal but worth knowing;
//   - a predicate never referenced by another expression (info):
//     predicates remain reachable from dctl flags, so this is advisory.
var unusedDecl = &Analyzer{
	Name: "unused",
	Code: CodeUnused,
	Doc:  "detect unused or write-only variables and unreferenced predicates",
	Run: func(p *Pass) {
		reads := map[string]bool{}
		written := map[string]bool{}
		predRefs := map[string]bool{}
		collect := func(e gcl.Expr) {
			for _, v := range p.refVars(e) {
				reads[v] = true
			}
			for q := range p.refPreds(e) {
				predRefs[q] = true
			}
		}
		for i := range p.AST.Preds {
			collect(p.AST.Preds[i].Expr)
		}
		for _, decls := range [][]gcl.ActionDecl{p.AST.Actions, p.AST.Faults} {
			for i := range decls {
				d := &decls[i]
				collect(d.Guard)
				for _, a := range d.Assigns {
					written[a.Var] = true
					if a.Expr != nil {
						collect(a.Expr)
					}
				}
			}
		}
		for i := range p.AST.Vars {
			d := &p.AST.Vars[i]
			v := p.vars[d.Name]
			if v == nil || v.decl.At != d.At {
				continue // duplicate declaration, already reported
			}
			switch {
			case !reads[d.Name] && !written[d.Name]:
				p.Reportf(d.At, Warning, CodeUnused, "variable %q is never used", d.Name)
			case !reads[d.Name]:
				p.Reportf(d.At, Warning, CodeUnused, "variable %q is written but never read", d.Name)
			case !written[d.Name]:
				p.Reportf(d.At, Info, CodeUnused,
					"variable %q is never written; it is constant in every run", d.Name)
			}
		}
		for i := range p.AST.Preds {
			d := &p.AST.Preds[i]
			pi := p.preds[d.Name]
			if pi == nil || pi.index != i {
				continue
			}
			if !predRefs[d.Name] {
				p.Reportf(d.At, Info, CodeUnused,
					"predicate %q is not referenced in the file (predicates remain reachable from dctl flags)", d.Name)
			}
		}
	},
}

// faultHygiene (DC006) reports a fault action that writes a variable no
// program action reads: such a fault cannot perturb the program's
// behavior, so checking tolerance against it is meaningless — usually the
// fault targets the wrong variable, or a detector guard is missing.
var faultHygiene = &Analyzer{
	Name: "faulthygiene",
	Code: CodeFaultHygiene,
	Doc:  "detect fault actions that write variables no program action reads",
	Run: func(p *Pass) {
		actionReads := map[string]bool{}
		for i := range p.AST.Actions {
			d := &p.AST.Actions[i]
			for _, v := range p.refVars(d.Guard) {
				actionReads[v] = true
			}
			for _, a := range d.Assigns {
				if a.Expr != nil {
					for _, v := range p.refVars(a.Expr) {
						actionReads[v] = true
					}
				}
			}
		}
		predReads := map[string]bool{}
		for i := range p.AST.Preds {
			for _, v := range p.refVars(p.AST.Preds[i].Expr) {
				predReads[v] = true
			}
		}
		for i := range p.AST.Faults {
			d := &p.AST.Faults[i]
			for j := range d.Assigns {
				a := &d.Assigns[j]
				if _, declared := p.vars[a.Var]; !declared {
					continue
				}
				if actionReads[a.Var] {
					continue
				}
				if predReads[a.Var] {
					p.Reportf(a.At, Warning, CodeFaultHygiene,
						"fault %q writes %q, which no program action reads (only predicates observe it)", d.Name, a.Var)
				} else {
					p.Reportf(a.At, Warning, CodeFaultHygiene,
						"fault %q writes %q, which no program action reads; the fault cannot affect the program", d.Name, a.Var)
				}
			}
		}
	},
}
