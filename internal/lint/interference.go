package lint

import (
	"strings"

	"detcorr/internal/gcl"
)

// interference (DC200-DC204) checks the component declarations — 'detector
// NAME [: scope]', 'corrector NAME [: scope]', 'span vars' — against the
// per-action read/write sets inferred from the AST. An action belongs to
// component C when its name is prefixed "C."; every other action is base
// program. The checks are the whole-program halves of the paper's
// interference-freedom obligations: a detector must be transparent to the
// base program it watches, a corrector may write only its declared
// correction scope, composed components must not race on shared state, and
// faults must stay inside their declared span.
//
// DC204 flags predicates reading variables that no action or fault ever
// writes: such a variable is a constant input fixed by the initial state,
// which is legitimate for spec-only inputs but frequently a missing
// action — the finding is Info severity, suppressed per-variable with a
// lint:ignore directive where intended.
var interference = &Analyzer{
	Name: "interference",
	Code: CodeDetectorWrite,
	Doc:  "check component scope, span, and write-set interference (DC200-DC204)",
	Run:  func(p *Pass) { p.runInterference() },
}

// compInfo is one declared component with its resolved member actions and
// their write set.
type compInfo struct {
	decl   *gcl.ComponentDecl
	scope  map[string]bool            // nil when no scope was declared
	writes map[string]*gcl.ActionDecl // var -> first member action writing it
}

func (p *Pass) runInterference() {
	comps := make([]*compInfo, 0, len(p.AST.Components))
	for i := range p.AST.Components {
		d := &p.AST.Components[i]
		ci := &compInfo{decl: d, writes: map[string]*gcl.ActionDecl{}}
		if len(d.Scope) > 0 {
			ci.scope = map[string]bool{}
			for _, sv := range d.Scope {
				ci.scope[sv.Name] = true
			}
		}
		comps = append(comps, ci)
	}

	// Partition the actions: members go to their component's write set,
	// the rest form the base program's read/write footprint.
	baseTouch := map[string]bool{} // vars the base program reads or writes
	memberOf := func(name string) *compInfo {
		for _, ci := range comps {
			if strings.HasPrefix(name, ci.decl.Name+".") {
				return ci
			}
		}
		return nil
	}
	for i := range p.AST.Actions {
		a := &p.AST.Actions[i]
		ci := memberOf(a.Name)
		for _, asg := range a.Assigns {
			if _, declared := p.vars[asg.Var]; !declared {
				continue
			}
			if ci != nil {
				if _, seen := ci.writes[asg.Var]; !seen {
					ci.writes[asg.Var] = a
				}
			} else {
				baseTouch[asg.Var] = true
			}
		}
		if ci == nil {
			exprs := []gcl.Expr{a.Guard}
			for _, asg := range a.Assigns {
				if asg.Expr != nil {
					exprs = append(exprs, asg.Expr)
				}
			}
			for _, v := range p.refVars(exprs...) {
				baseTouch[v] = true
			}
		}
	}

	// DC200 / DC201: member writes outside the component's contract.
	for _, ci := range comps {
		for _, v := range sortedKeys(boolKeys(ci.writes)) {
			a := ci.writes[v]
			switch ci.decl.Kind {
			case gcl.DetectorComponent:
				switch {
				case ci.scope != nil && !ci.scope[v]:
					p.Reportf(a.At, Warning, CodeDetectorWrite,
						"detector %q writes %q, outside its declared scope (%s); a detector must not interfere with the program it watches",
						ci.decl.Name, v, scopeList(ci.decl))
				case ci.scope == nil && baseTouch[v]:
					p.Reportf(a.At, Warning, CodeDetectorWrite,
						"detector %q writes %q, which the base program reads or writes; a detector must be transparent to the base program",
						ci.decl.Name, v)
				}
			case gcl.CorrectorComponent:
				if ci.scope != nil && !ci.scope[v] {
					p.Reportf(a.At, Warning, CodeCorrectorScope,
						"corrector %q writes %q, outside its declared correction scope (%s)",
						ci.decl.Name, v, scopeList(ci.decl))
				}
			}
		}
	}

	// DC202: write/write conflicts between two composed components.
	for i, a := range comps {
		for _, b := range comps[i+1:] {
			for _, v := range sortedKeys(boolKeys(b.writes)) {
				if _, clash := a.writes[v]; clash {
					p.Reportf(b.writes[v].At, Warning, CodeComponentClash,
						"components %q and %q both write %q; their '||' composition is not interference-free",
						a.decl.Name, b.decl.Name, v)
				}
			}
		}
	}

	// DC203: faults writing outside the declared span.
	if len(p.AST.Spans) > 0 {
		span := map[string]bool{}
		for i := range p.AST.Spans {
			for _, sv := range p.AST.Spans[i].Vars {
				span[sv.Name] = true
			}
		}
		for i := range p.AST.Faults {
			f := &p.AST.Faults[i]
			for _, asg := range f.Assigns {
				if _, declared := p.vars[asg.Var]; !declared {
					continue
				}
				if !span[asg.Var] {
					p.Reportf(f.At, Warning, CodeFaultSpan,
						"fault %q writes %q, outside the declared span (%s)",
						f.Name, asg.Var, spanList(p.AST.Spans))
					break
				}
			}
		}
	}

	// DC204: predicates over variables nothing ever writes.
	written := map[string]bool{}
	for i := range p.AST.Actions {
		for _, asg := range p.AST.Actions[i].Assigns {
			written[asg.Var] = true
		}
	}
	for i := range p.AST.Faults {
		for _, asg := range p.AST.Faults[i].Assigns {
			written[asg.Var] = true
		}
	}
	for i := range p.AST.Preds {
		d := &p.AST.Preds[i]
		pi := p.preds[d.Name]
		if pi == nil || pi.index != i || !pi.ok {
			continue
		}
		for _, v := range p.predVars(pi) {
			if !written[v] {
				p.Reportf(d.At, Info, CodeUnwrittenPred,
					"predicate %q reads %q, which no action or fault ever writes; the variable is an input fixed by the initial state",
					d.Name, v)
			}
		}
	}
}

// boolKeys adapts a map with ActionDecl values for sortedKeys.
func boolKeys(m map[string]*gcl.ActionDecl) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// scopeList renders a component's declared scope for diagnostics.
func scopeList(d *gcl.ComponentDecl) string {
	names := make([]string, 0, len(d.Scope))
	for _, sv := range d.Scope {
		names = append(names, sv.Name)
	}
	return strings.Join(names, ", ")
}

// spanList renders the union of the declared spans for diagnostics.
func spanList(spans []gcl.SpanDecl) string {
	set := map[string]bool{}
	for i := range spans {
		for _, sv := range spans[i].Vars {
			set[sv.Name] = true
		}
	}
	return strings.Join(sortedKeys(set), ", ")
}
