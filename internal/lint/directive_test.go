package lint

import (
	"strconv"
	"strings"
	"testing"
)

// TestParseDirectives is the table-driven contract of the '# lint:ignore'
// parser: which lines end up suppressing which codes, and which directives
// instead warn. Suppression targets are the directive's own line and the
// line directly below it, 1-based.
func TestParseDirectives(t *testing.T) {
	tests := []struct {
		name string
		src  string
		// want maps "line:code" to expected suppression.
		want      map[string]bool
		warnings  int
		warnSubst string
	}{
		{
			name: "single code with reason",
			src:  "# lint:ignore DC001 guard kept for the test\naction a",
			want: map[string]bool{"1:DC001": true, "2:DC001": true, "3:DC001": false, "2:DC002": false},
		},
		{
			name: "comma separated no space",
			src:  "# lint:ignore DC001,DC004 two findings share this line\n",
			want: map[string]bool{"2:DC001": true, "2:DC004": true, "2:DC003": false},
		},
		{
			name: "comma separated with space and reason",
			src:  "# lint:ignore DC001, DC004 reason text here\n",
			want: map[string]bool{"2:DC001": true, "2:DC004": true},
		},
		{
			name: "reason does not join the code list",
			src:  "# lint:ignore DC001 DC004 looks like a code but is reason text\n",
			want: map[string]bool{"2:DC001": true, "2:DC004": false},
		},
		{
			name: "all",
			src:  "# lint:ignore all generated file\n",
			want: map[string]bool{"2:DC001": true, "2:DC005": true, "2:DC009": true},
		},
		{
			name: "directive on the last line still parses",
			src:  "action a\n# lint:ignore DC004",
			want: map[string]bool{"2:DC004": true, "3:DC004": true},
		},
		{
			name: "trailing and doubled commas are dropped",
			src:  "# lint:ignore DC001,,DC004, , DC005 reason\n",
			want: map[string]bool{"2:DC001": true, "2:DC004": true, "2:DC005": true},
		},
		{
			name: "lint:ignored is not a directive",
			src:  "# lint:ignored DC001 this is prose about the directive\n",
			want: map[string]bool{"1:DC001": false, "2:DC001": false},
		},
		{
			name: "directive after code on the same line",
			src:  "action a :: x > 5 -> x := 0  # lint:ignore DC001 intentional\n",
			want: map[string]bool{"1:DC001": true, "2:DC001": true},
		},
		{
			name:      "unknown code warns",
			src:       "# lint:ignore DC999 typo\n",
			want:      map[string]bool{"2:DC999": false},
			warnings:  1,
			warnSubst: `unknown code "DC999"`,
		},
		{
			name:      "empty code list warns",
			src:       "# lint:ignore\n",
			want:      map[string]bool{"2:DC001": false},
			warnings:  1,
			warnSubst: "without a code list",
		},
		{
			name:      "known and unknown codes mix",
			src:       "# lint:ignore DC001,DC998 half a typo\n",
			want:      map[string]bool{"2:DC001": true, "2:DC998": false},
			warnings:  1,
			warnSubst: `unknown code "DC998"`,
		},
		{
			name: "prove codes are known",
			src:  "# lint:ignore DC100,DC103 discharged by hand\n",
			want: map[string]bool{"2:DC100": true, "2:DC103": true},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dirs := parseDirectives("f.gcl", tt.src)
			for key, want := range tt.want {
				lineStr, code, _ := strings.Cut(key, ":")
				line, err := strconv.Atoi(lineStr)
				if err != nil {
					t.Fatalf("bad key %q: %v", key, err)
				}
				got := dirs.byLine[line] != nil && (dirs.byLine[line][code] || dirs.byLine[line]["all"])
				if got != want {
					t.Errorf("suppressed(line %d, %s) = %v, want %v", line, code, got, want)
				}
			}
			if len(dirs.warnings) != tt.warnings {
				t.Errorf("warnings = %d, want %d: %v", len(dirs.warnings), tt.warnings, dirs.warnings)
			}
			for _, w := range dirs.warnings {
				if w.Code != CodeDirective {
					t.Errorf("warning carries code %s, want %s", w.Code, CodeDirective)
				}
				if tt.warnSubst != "" && !strings.Contains(w.Message, tt.warnSubst) {
					t.Errorf("warning %q missing %q", w.Message, tt.warnSubst)
				}
			}
		})
	}
}

// TestDirectiveApply checks that apply drops exactly the covered findings,
// including DC009 self-suppression on the directive's own line.
func TestDirectiveApply(t *testing.T) {
	src := strings.Join([]string{
		"# lint:ignore DC001 covers line 2",
		"guarded line",
		"unguarded line",
		"# lint:ignore DC009 silence my own typo warning",
		"",
	}, "\n")
	dirs := parseDirectives("f.gcl", src)
	diags := []Diagnostic{
		{File: "f.gcl", Line: 2, Code: CodeDeadGuard}, // suppressed
		{File: "f.gcl", Line: 3, Code: CodeDeadGuard}, // kept: out of range
		{File: "f.gcl", Line: 2, Code: CodeConflict},  // kept: wrong code
		{File: "f.gcl", Line: 4, Code: CodeDirective}, // suppressed by self-directive
		{File: "f.gcl", Line: 1, Code: CodeDeadGuard}, // suppressed: directive's own line
	}
	kept := dirs.apply(diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	for _, d := range kept {
		if d.Line == 2 && d.Code == CodeDeadGuard || d.Line == 4 || d.Line == 1 {
			t.Errorf("diagnostic should have been suppressed: %v", d)
		}
	}
}
