package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGolden lints every testdata/*.gcl file and compares the rendered
// diagnostics against the matching *.golden file. Run with -update to
// regenerate the goldens after an intentional analyzer change.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.gcl files")
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".gcl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range Lint(path, string(src)) {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			goldenPath := strings.TrimSuffix(path, ".gcl") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run 'go test ./internal/lint -update'): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestGoldenCoverage pins each analyzer to a testdata file that must
// trigger its code, so a silently disabled analyzer fails the suite even
// if its golden file is regenerated.
func TestGoldenCoverage(t *testing.T) {
	wants := map[string]string{
		"parseerror.gcl":   CodeResolve,
		"resolve.gcl":      CodeResolve,
		"deadguard.gcl":    CodeDeadGuard,
		"overflow.gcl":     CodeOverflow,
		"unused.gcl":       CodeUnused,
		"conflict.gcl":     CodeConflict,
		"vacuous.gcl":      CodeVacuous,
		"faulthygiene.gcl": CodeFaultHygiene,
		"budget.gcl":       CodeBudget,
		"directive.gcl":    CodeDirective,

		"detectorwrite.gcl":  CodeDetectorWrite,
		"correctorscope.gcl": CodeCorrectorScope,
		"componentclash.gcl": CodeComponentClash,
		"faultspan.gcl":      CodeFaultSpan,
		"unwrittenpred.gcl":  CodeUnwrittenPred,
	}
	for file, code := range wants {
		path := filepath.Join("testdata", file)
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, d := range Lint(path, string(src)) {
			if d.Code == code {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected at least one %s diagnostic", file, code)
		}
	}

	src, err := os.ReadFile(filepath.Join("testdata", "clean.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Lint("clean.gcl", string(src)); len(diags) != 0 {
		t.Errorf("clean.gcl should produce no diagnostics, got %v", diags)
	}
}
