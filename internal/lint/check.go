package lint

import (
	"fmt"
	"strings"

	"detcorr/internal/guarded"
)

// Check statically validates a compiled program — typically a '||' or ';'
// composition assembled by internal/core — without exploring its state
// space. Compiled actions are opaque closures, so Check works from the
// program's structure and the actions' optional Writes metadata (filled in
// by the GCL compiler and the guarded.Assign/Skip helpers):
//
//   - an empty program deadlocks in every state (warning);
//   - a schema too large to enumerate defeats every exploration-based
//     check downstream (warning);
//   - a declared write to a variable missing from the schema is a wiring
//     bug in the composition (error);
//   - two actions declaring writes to the same variable are a potential
//     interference-freedom violation (info; guard overlap cannot be
//     decided without exploration).
//
// Diagnostics carry no source position: compiled programs have none.
func Check(prog *guarded.Program) []Diagnostic {
	rep := func(sev Severity, code, format string, args ...any) Diagnostic {
		return Diagnostic{Severity: sev, Code: code, Message: fmt.Sprintf(format, args...)}
	}
	if prog == nil {
		return []Diagnostic{rep(Error, CodeStructure, "nil program")}
	}
	var diags []Diagnostic
	if prog.NumActions() == 0 {
		diags = append(diags, rep(Warning, CodeStructure,
			"program %q has no actions; it deadlocks in every state", prog.Name()))
	}
	sch := prog.Schema()
	if err := sch.Indexable(); err != nil {
		diags = append(diags, rep(Warning, CodeStructure,
			"program %q: state space exceeds the enumerable bound; exploration-based checks will fail", prog.Name()))
	}
	writers := map[string][]string{}
	for i := 0; i < prog.NumActions(); i++ {
		a := prog.Action(i)
		seen := map[string]bool{}
		for _, w := range a.Writes {
			if _, ok := sch.IndexOf(w); !ok {
				diags = append(diags, rep(Error, CodeStructure,
					"action %q declares a write to %q, which is not in schema %s", a.Name, w, sch))
				continue
			}
			if seen[w] {
				diags = append(diags, rep(Warning, CodeStructure,
					"action %q declares duplicate writes to %q", a.Name, w))
				continue
			}
			seen[w] = true
			writers[w] = append(writers[w], a.Name)
		}
	}
	for _, v := range sch.VarNames() {
		if ws := writers[v]; len(ws) > 1 {
			diags = append(diags, rep(Info, CodeConflict,
				"actions %s all write %q; verify interference-freedom of the composition", quoteList(ws), v))
		}
	}
	return diags
}

func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(quoted, ", ")
}
