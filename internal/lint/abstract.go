package lint

import (
	"fmt"
	"sort"
	"strings"

	"detcorr/internal/absdom"
	"detcorr/internal/gcl"
)

// evalBudget caps the number of variable assignments enumerated when
// deciding a property exactly over the variables an expression references.
// It bounds per-expression work, not the program's state space: an
// expression over three 0..2 variables costs 27 evaluations no matter how
// many other variables the program declares.
const evalBudget = 1 << 16

// The abstract lattice lives in internal/absdom, shared with the dcprove
// proof engine; the local names keep the analyzers readable.
type (
	interval = absdom.Interval
	truth    = absdom.Truth
	aval     = absdom.Val
)

func boolVal(canT, canF bool) aval { return absdom.BoolVal(canT, canF) }
func intVal(lo, hi int) aval       { return absdom.IntVal(lo, hi) }

// absEval computes the abstract value of a resolved expression.
func (p *Pass) absEval(e gcl.Expr) aval {
	switch n := e.(type) {
	case *gcl.BoolLit:
		return boolVal(n.Value, !n.Value)
	case *gcl.IntLit:
		return intVal(n.Value, n.Value)
	case *gcl.Ref:
		if v, ok := p.vars[n.Name]; ok {
			if v.typ == typBool {
				return boolVal(true, true)
			}
			return intVal(v.lo, v.hi)
		}
		if c, ok := p.consts[n.Name]; ok {
			return intVal(c, c)
		}
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			if pi.abs == nil {
				a := p.absEval(pi.decl.Expr)
				pi.abs = &a
			}
			return *pi.abs
		}
		return boolVal(true, true) // unresolved; analyzers gate on exprOK
	case *gcl.Unary:
		x := p.absEval(n.X)
		if n.Op == gcl.NOT {
			return boolVal(x.T.CanF, x.T.CanT)
		}
		return intVal(-x.IV.Hi, -x.IV.Lo)
	case *gcl.Binary:
		l, r := p.absEval(n.L), p.absEval(n.R)
		return absdom.Binary(n.Op, l, r)
	}
	return boolVal(true, true)
}

// eval evaluates a resolved expression under a total assignment env
// (variable name -> source-level value: range variables hold lo..hi,
// booleans 0/1, enums their declaration index). Booleans evaluate to 0/1.
func (p *Pass) eval(env map[string]int, e gcl.Expr) int {
	switch n := e.(type) {
	case *gcl.BoolLit:
		if n.Value {
			return 1
		}
		return 0
	case *gcl.IntLit:
		return n.Value
	case *gcl.Ref:
		if _, ok := p.vars[n.Name]; ok {
			return env[n.Name]
		}
		if c, ok := p.consts[n.Name]; ok {
			return c
		}
		// pi.ok matters for termination, not just precision: only resolved
		// predicates are guaranteed to reference earlier ones (a DAG), so
		// following an unresolved self-referential predicate would recurse
		// forever.
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			return p.eval(env, pi.decl.Expr)
		}
		return 0
	case *gcl.Unary:
		x := p.eval(env, n.X)
		if n.Op == gcl.NOT {
			return 1 - x
		}
		return -x
	case *gcl.Binary:
		l, r := p.eval(env, n.L), p.eval(env, n.R)
		return absdom.EvalBinary(n.Op, l, r)
	}
	return 0
}

// refVars returns the sorted variable names the expressions depend on,
// following predicate references.
func (p *Pass) refVars(exprs ...gcl.Expr) []string {
	set := map[string]bool{}
	for _, e := range exprs {
		p.collectVars(e, set)
	}
	return sortedKeys(set)
}

func (p *Pass) collectVars(e gcl.Expr, set map[string]bool) {
	switch n := e.(type) {
	case *gcl.Ref:
		if _, ok := p.vars[n.Name]; ok {
			set[n.Name] = true
			return
		}
		if _, ok := p.consts[n.Name]; ok {
			return
		}
		// Follow only resolved predicates: they form a DAG by declaration
		// order, while an unresolved one may reference itself.
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			for _, v := range p.predVars(pi) {
				set[v] = true
			}
		}
	case *gcl.Unary:
		p.collectVars(n.X, set)
	case *gcl.Binary:
		p.collectVars(n.L, set)
		p.collectVars(n.R, set)
	}
}

// predVars memoizes the variables a predicate's expression depends on.
func (p *Pass) predVars(pi *predInfo) []string {
	if pi.vars == nil {
		set := map[string]bool{}
		p.collectVars(pi.decl.Expr, set)
		pi.vars = sortedKeys(set)
		if pi.vars == nil {
			pi.vars = []string{} // memoize the empty result too
		}
	}
	return pi.vars
}

// refPreds collects the predicate names the expressions reference,
// directly or through other predicates.
func (p *Pass) refPreds(exprs ...gcl.Expr) map[string]bool {
	set := map[string]bool{}
	var walk func(e gcl.Expr)
	walk = func(e gcl.Expr) {
		switch n := e.(type) {
		case *gcl.Ref:
			if pi, ok := p.preds[n.Name]; ok {
				if _, isVar := p.vars[n.Name]; isVar {
					return
				}
				if _, isConst := p.consts[n.Name]; isConst {
					return
				}
				if !set[n.Name] {
					set[n.Name] = true
					walk(pi.decl.Expr)
				}
			}
		case *gcl.Unary:
			walk(n.X)
		case *gcl.Binary:
			walk(n.L)
			walk(n.R)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return set
}

// forEachEnv enumerates all assignments to vars, calling fn with a shared
// env map; fn returns false to stop early. It reports false (without
// calling fn) when the assignment space exceeds evalBudget.
func (p *Pass) forEachEnv(vars []string, fn func(env map[string]int) bool) bool {
	infos := make([]*varInfo, len(vars))
	total := 1
	for i, name := range vars {
		v := p.vars[name]
		if v == nil {
			return false
		}
		infos[i] = v
		if total > evalBudget/v.size() {
			return false
		}
		total *= v.size()
	}
	env := make(map[string]int, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(infos) {
			return fn(env)
		}
		for val := infos[i].lo; val <= infos[i].hi; val++ {
			env[vars[i]] = val
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return true
}

// decideTruth classifies a boolean expression: which truth values it can
// take over the declared domains. definite reports whether the answer is
// exact — an abstract impossibility is already definite; otherwise the
// expression is enumerated over its referenced variables when that fits
// the budget.
func (p *Pass) decideTruth(e gcl.Expr) (t truth, definite bool) {
	a := p.absEval(e)
	if !a.T.CanT || !a.T.CanF {
		return a.T, true
	}
	var canT, canF bool
	ok := p.forEachEnv(p.refVars(e), func(env map[string]int) bool {
		if p.eval(env, e) != 0 {
			canT = true
		} else {
			canF = true
		}
		return !(canT && canF)
	})
	if !ok {
		return a.T, false
	}
	return truth{CanT: canT, CanF: canF}, true
}

// findEnv searches for an assignment satisfying pred. found is nil when
// none exists; ok is false when the search exceeded the budget.
func (p *Pass) findEnv(vars []string, pred func(env map[string]int) bool) (found map[string]int, ok bool) {
	ok = p.forEachEnv(vars, func(env map[string]int) bool {
		if pred(env) {
			found = make(map[string]int, len(env))
			for k, v := range env {
				found[k] = v
			}
			return false
		}
		return true
	})
	return found, ok
}

// reportBudget emits the DC008 trace when an exact fallback was abandoned
// because the assignment space over vars exceeds evalBudget; the analyzer
// degraded to "unknown" and stayed silent about its primary property.
func (p *Pass) reportBudget(at gcl.Pos, what string, vars []string) {
	p.Reportf(at, Warning, CodeBudget,
		"exact analysis of %s abandoned: enumerating %d variables exceeds the %d-assignment budget; result is unknown",
		what, len(vars), evalBudget)
}

// envString renders an assignment deterministically, using enum value
// names and true/false for booleans ("val=0, data=v0, z1=true").
func (p *Pass) envString(env map[string]int, vars []string) string {
	parts := make([]string, 0, len(vars))
	for _, name := range vars {
		v := p.vars[name]
		val, bound := env[name]
		if v == nil || !bound {
			continue
		}
		switch {
		case v.typ == typBool:
			parts = append(parts, fmt.Sprintf("%s=%v", name, val != 0))
		case v.enum != nil:
			parts = append(parts, fmt.Sprintf("%s=%s", name, v.enum[val]))
		default:
			parts = append(parts, fmt.Sprintf("%s=%d", name, val))
		}
	}
	return strings.Join(parts, ", ")
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unionVars merges sorted name lists, keeping the result sorted and
// deduplicated.
func unionVars(lists ...[]string) []string {
	set := map[string]bool{}
	for _, l := range lists {
		for _, v := range l {
			set[v] = true
		}
	}
	return sortedKeys(set)
}
