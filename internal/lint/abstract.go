package lint

import (
	"fmt"
	"sort"
	"strings"

	"detcorr/internal/gcl"
)

// evalBudget caps the number of variable assignments enumerated when
// deciding a property exactly over the variables an expression references.
// It bounds per-expression work, not the program's state space: an
// expression over three 0..2 variables costs 27 evaluations no matter how
// many other variables the program declares.
const evalBudget = 1 << 16

// interval is an inclusive integer range.
type interval struct{ lo, hi int }

func (i interval) within(o interval) bool { return i.lo >= o.lo && i.hi <= o.hi }

// truth is the abstract value of a boolean expression: which truth values
// it may take. canT==false means "definitely never true" (and dually for
// canF); both true means "unknown". The abstraction is a sound
// over-approximation: it ignores correlations between subexpressions, so
// e.g. x & !x still reports {canT, canF} and needs the exact fallback.
type truth struct{ canT, canF bool }

// aval is the abstract value of an expression: a truth for booleans, an
// interval for integers.
type aval struct {
	isBool bool
	t      truth
	iv     interval
}

func boolVal(canT, canF bool) aval { return aval{isBool: true, t: truth{canT, canF}} }
func intVal(lo, hi int) aval       { return aval{iv: interval{lo, hi}} }

// absEval computes the abstract value of a resolved expression.
func (p *Pass) absEval(e gcl.Expr) aval {
	switch n := e.(type) {
	case *gcl.BoolLit:
		return boolVal(n.Value, !n.Value)
	case *gcl.IntLit:
		return intVal(n.Value, n.Value)
	case *gcl.Ref:
		if v, ok := p.vars[n.Name]; ok {
			if v.typ == typBool {
				return boolVal(true, true)
			}
			return intVal(v.lo, v.hi)
		}
		if c, ok := p.consts[n.Name]; ok {
			return intVal(c, c)
		}
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			if pi.abs == nil {
				a := p.absEval(pi.decl.Expr)
				pi.abs = &a
			}
			return *pi.abs
		}
		return boolVal(true, true) // unresolved; analyzers gate on exprOK
	case *gcl.Unary:
		x := p.absEval(n.X)
		if n.Op == gcl.NOT {
			return boolVal(x.t.canF, x.t.canT)
		}
		return intVal(-x.iv.hi, -x.iv.lo)
	case *gcl.Binary:
		l, r := p.absEval(n.L), p.absEval(n.R)
		return absBinary(n.Op, l, r)
	}
	return boolVal(true, true)
}

func absBinary(op gcl.Kind, l, r aval) aval {
	switch op {
	case gcl.AND:
		return boolVal(l.t.canT && r.t.canT, l.t.canF || r.t.canF)
	case gcl.OR:
		return boolVal(l.t.canT || r.t.canT, l.t.canF && r.t.canF)
	case gcl.IMPLIES:
		return boolVal(l.t.canF || r.t.canT, l.t.canT && r.t.canF)
	case gcl.EQ, gcl.NEQ:
		var eq truth
		if l.isBool {
			eq = truth{
				canT: (l.t.canT && r.t.canT) || (l.t.canF && r.t.canF),
				canF: (l.t.canT && r.t.canF) || (l.t.canF && r.t.canT),
			}
		} else {
			overlap := l.iv.lo <= r.iv.hi && r.iv.lo <= l.iv.hi
			single := l.iv.lo == l.iv.hi && r.iv.lo == r.iv.hi && l.iv.lo == r.iv.lo
			eq = truth{canT: overlap, canF: !single}
		}
		if op == gcl.EQ {
			return aval{isBool: true, t: eq}
		}
		return boolVal(eq.canF, eq.canT)
	case gcl.LT:
		return boolVal(l.iv.lo < r.iv.hi, l.iv.hi >= r.iv.lo)
	case gcl.LE:
		return boolVal(l.iv.lo <= r.iv.hi, l.iv.hi > r.iv.lo)
	case gcl.GT:
		return boolVal(l.iv.hi > r.iv.lo, l.iv.lo <= r.iv.hi)
	case gcl.GE:
		return boolVal(l.iv.hi >= r.iv.lo, l.iv.lo < r.iv.hi)
	case gcl.PLUS:
		return intVal(l.iv.lo+r.iv.lo, l.iv.hi+r.iv.hi)
	case gcl.MINUS:
		return intVal(l.iv.lo-r.iv.hi, l.iv.hi-r.iv.lo)
	case gcl.STAR:
		a, b, c, d := l.iv.lo*r.iv.lo, l.iv.lo*r.iv.hi, l.iv.hi*r.iv.lo, l.iv.hi*r.iv.hi
		return intVal(min4(a, b, c, d), max4(a, b, c, d))
	case gcl.PERCENT:
		// Total semantics ((a%b)+b)%b with b==0 -> 0: the result lies in
		// [b+1, 0] for negative b, [0, b-1] for positive b, and is 0 at b==0.
		lo := 0
		if r.iv.lo+1 < 0 {
			lo = r.iv.lo + 1
		}
		hi := 0
		if r.iv.hi-1 > 0 {
			hi = r.iv.hi - 1
		}
		return intVal(lo, hi)
	}
	return boolVal(true, true)
}

func min4(a, b, c, d int) int { return min(min(a, b), min(c, d)) }
func max4(a, b, c, d int) int { return max(max(a, b), max(c, d)) }

// eval evaluates a resolved expression under a total assignment env
// (variable name -> source-level value: range variables hold lo..hi,
// booleans 0/1, enums their declaration index). Booleans evaluate to 0/1.
func (p *Pass) eval(env map[string]int, e gcl.Expr) int {
	switch n := e.(type) {
	case *gcl.BoolLit:
		if n.Value {
			return 1
		}
		return 0
	case *gcl.IntLit:
		return n.Value
	case *gcl.Ref:
		if _, ok := p.vars[n.Name]; ok {
			return env[n.Name]
		}
		if c, ok := p.consts[n.Name]; ok {
			return c
		}
		// pi.ok matters for termination, not just precision: only resolved
		// predicates are guaranteed to reference earlier ones (a DAG), so
		// following an unresolved self-referential predicate would recurse
		// forever.
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			return p.eval(env, pi.decl.Expr)
		}
		return 0
	case *gcl.Unary:
		x := p.eval(env, n.X)
		if n.Op == gcl.NOT {
			return 1 - x
		}
		return -x
	case *gcl.Binary:
		l, r := p.eval(env, n.L), p.eval(env, n.R)
		return evalBinary(n.Op, l, r)
	}
	return 0
}

func evalBinary(op gcl.Kind, a, b int) int {
	b2i := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case gcl.AND:
		return b2i(a != 0 && b != 0)
	case gcl.OR:
		return b2i(a != 0 || b != 0)
	case gcl.IMPLIES:
		return b2i(a == 0 || b != 0)
	case gcl.EQ:
		return b2i(a == b)
	case gcl.NEQ:
		return b2i(a != b)
	case gcl.LT:
		return b2i(a < b)
	case gcl.LE:
		return b2i(a <= b)
	case gcl.GT:
		return b2i(a > b)
	case gcl.GE:
		return b2i(a >= b)
	case gcl.PLUS:
		return a + b
	case gcl.MINUS:
		return a - b
	case gcl.STAR:
		return a * b
	case gcl.PERCENT:
		if b == 0 {
			return 0 // total semantics, mirroring the compiler
		}
		return ((a % b) + b) % b
	}
	return 0
}

// refVars returns the sorted variable names the expressions depend on,
// following predicate references.
func (p *Pass) refVars(exprs ...gcl.Expr) []string {
	set := map[string]bool{}
	for _, e := range exprs {
		p.collectVars(e, set)
	}
	return sortedKeys(set)
}

func (p *Pass) collectVars(e gcl.Expr, set map[string]bool) {
	switch n := e.(type) {
	case *gcl.Ref:
		if _, ok := p.vars[n.Name]; ok {
			set[n.Name] = true
			return
		}
		if _, ok := p.consts[n.Name]; ok {
			return
		}
		// Follow only resolved predicates: they form a DAG by declaration
		// order, while an unresolved one may reference itself.
		if pi, ok := p.preds[n.Name]; ok && pi.ok {
			for _, v := range p.predVars(pi) {
				set[v] = true
			}
		}
	case *gcl.Unary:
		p.collectVars(n.X, set)
	case *gcl.Binary:
		p.collectVars(n.L, set)
		p.collectVars(n.R, set)
	}
}

// predVars memoizes the variables a predicate's expression depends on.
func (p *Pass) predVars(pi *predInfo) []string {
	if pi.vars == nil {
		set := map[string]bool{}
		p.collectVars(pi.decl.Expr, set)
		pi.vars = sortedKeys(set)
		if pi.vars == nil {
			pi.vars = []string{} // memoize the empty result too
		}
	}
	return pi.vars
}

// refPreds collects the predicate names the expressions reference,
// directly or through other predicates.
func (p *Pass) refPreds(exprs ...gcl.Expr) map[string]bool {
	set := map[string]bool{}
	var walk func(e gcl.Expr)
	walk = func(e gcl.Expr) {
		switch n := e.(type) {
		case *gcl.Ref:
			if pi, ok := p.preds[n.Name]; ok {
				if _, isVar := p.vars[n.Name]; isVar {
					return
				}
				if _, isConst := p.consts[n.Name]; isConst {
					return
				}
				if !set[n.Name] {
					set[n.Name] = true
					walk(pi.decl.Expr)
				}
			}
		case *gcl.Unary:
			walk(n.X)
		case *gcl.Binary:
			walk(n.L)
			walk(n.R)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return set
}

// forEachEnv enumerates all assignments to vars, calling fn with a shared
// env map; fn returns false to stop early. It reports false (without
// calling fn) when the assignment space exceeds evalBudget.
func (p *Pass) forEachEnv(vars []string, fn func(env map[string]int) bool) bool {
	infos := make([]*varInfo, len(vars))
	total := 1
	for i, name := range vars {
		v := p.vars[name]
		if v == nil {
			return false
		}
		infos[i] = v
		if total > evalBudget/v.size() {
			return false
		}
		total *= v.size()
	}
	env := make(map[string]int, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(infos) {
			return fn(env)
		}
		for val := infos[i].lo; val <= infos[i].hi; val++ {
			env[vars[i]] = val
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return true
}

// decideTruth classifies a boolean expression: which truth values it can
// take over the declared domains. definite reports whether the answer is
// exact — an abstract impossibility is already definite; otherwise the
// expression is enumerated over its referenced variables when that fits
// the budget.
func (p *Pass) decideTruth(e gcl.Expr) (t truth, definite bool) {
	a := p.absEval(e)
	if !a.t.canT || !a.t.canF {
		return a.t, true
	}
	var canT, canF bool
	ok := p.forEachEnv(p.refVars(e), func(env map[string]int) bool {
		if p.eval(env, e) != 0 {
			canT = true
		} else {
			canF = true
		}
		return !(canT && canF)
	})
	if !ok {
		return a.t, false
	}
	return truth{canT, canF}, true
}

// findEnv searches for an assignment satisfying pred. found is nil when
// none exists; ok is false when the search exceeded the budget.
func (p *Pass) findEnv(vars []string, pred func(env map[string]int) bool) (found map[string]int, ok bool) {
	ok = p.forEachEnv(vars, func(env map[string]int) bool {
		if pred(env) {
			found = make(map[string]int, len(env))
			for k, v := range env {
				found[k] = v
			}
			return false
		}
		return true
	})
	return found, ok
}

// envString renders an assignment deterministically, using enum value
// names and true/false for booleans ("val=0, data=v0, z1=true").
func (p *Pass) envString(env map[string]int, vars []string) string {
	parts := make([]string, 0, len(vars))
	for _, name := range vars {
		v := p.vars[name]
		val, bound := env[name]
		if v == nil || !bound {
			continue
		}
		switch {
		case v.typ == typBool:
			parts = append(parts, fmt.Sprintf("%s=%v", name, val != 0))
		case v.enum != nil:
			parts = append(parts, fmt.Sprintf("%s=%s", name, v.enum[val]))
		default:
			parts = append(parts, fmt.Sprintf("%s=%d", name, val))
		}
	}
	return strings.Join(parts, ", ")
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unionVars merges sorted name lists, keeping the result sorted and
// deduplicated.
func unionVars(lists ...[]string) []string {
	set := map[string]bool{}
	for _, l := range lists {
		for _, v := range l {
			set[v] = true
		}
	}
	return sortedKeys(set)
}
