package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{Info, Warning, Error} {
		b, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, b, got)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("unmarshal of an unknown severity should fail")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "f.gcl", Line: 3, Col: 7, Severity: Warning, Code: CodeDeadGuard, Message: "m"}
	if got, want := d.String(), "f.gcl:3:7: warning: m [DC001]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestErrors(t *testing.T) {
	if err := Errors(nil); err != nil {
		t.Errorf("Errors(nil) = %v", err)
	}
	warnOnly := []Diagnostic{{Severity: Warning, Code: CodeDeadGuard, Message: "w"}}
	if err := Errors(warnOnly); err != nil {
		t.Errorf("warnings alone should not produce an error: %v", err)
	}
	mixed := []Diagnostic{
		{Severity: Warning, Code: CodeDeadGuard, Message: "w"},
		{Severity: Error, Code: CodeOverflow, Message: "boom"},
	}
	err := Errors(mixed)
	if err == nil {
		t.Fatal("error findings should produce an error")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Errors should carry the finding message: %v", err)
	}
}

func TestSuppressDirective(t *testing.T) {
	src := `program p

var x : 0..3

# lint:ignore DC001 reason one
action a :: x > 5 -> x := 0
action b :: x > 6 -> x := 1
# lint:ignore all sweeping
action c :: x > 7 -> x := 2
`
	diags := Lint("p.gcl", src)
	var codesAt []string
	for _, d := range diags {
		codesAt = append(codesAt, d.Code)
		if d.Line == 6 || d.Line == 9 {
			t.Errorf("finding on a suppressed line survived: %v", d)
		}
	}
	// Only action b's dead guard should remain.
	found := false
	for _, d := range diags {
		if d.Code == CodeDeadGuard && d.Line == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("unsuppressed dead guard on line 7 missing; got codes %v", codesAt)
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) != 7 {
		t.Fatalf("expected 7 analyzers, got %d", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Code == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func mustSchema(t *testing.T) *state.Schema {
	t.Helper()
	sch, err := state.NewSchema(
		state.IntVar("x", 3),
		state.IntVar("y", 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestCheckCompiledProgram(t *testing.T) {
	sch := mustSchema(t)

	if diags := Check(nil); len(diags) != 1 || diags[0].Severity != Error {
		t.Errorf("Check(nil) = %v, want one error", diags)
	}

	empty, err := guarded.NewProgram("empty", sch)
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(empty)
	if len(diags) != 1 || diags[0].Severity != Warning || diags[0].Code != CodeStructure {
		t.Errorf("Check(empty) = %v, want one DC007 warning", diags)
	}

	ok, err := guarded.NewProgram("ok", sch,
		guarded.Assign(sch, "inc", state.True, "x", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(ok); len(diags) != 0 {
		t.Errorf("Check(ok) = %v, want none", diags)
	}

	bogus := guarded.Action{
		Name:   "bogus",
		Guard:  state.True,
		Next:   func(s state.State) []state.State { return []state.State{s} },
		Writes: []string{"nope", "x", "x"},
	}
	writer := func(name string) guarded.Action {
		return guarded.Assign(sch, name, state.True, "x", 0)
	}
	prog, err := guarded.NewProgram("bad", sch, bogus, writer("w1"), writer("w2"))
	if err != nil {
		t.Fatal(err)
	}
	diags = Check(prog)
	var haveUnknown, haveDup, haveShared bool
	for _, d := range diags {
		switch {
		case d.Severity == Error && strings.Contains(d.Message, `"nope"`):
			haveUnknown = true
		case d.Severity == Warning && strings.Contains(d.Message, "duplicate writes"):
			haveDup = true
		case d.Severity == Info && d.Code == CodeConflict:
			haveShared = true
		}
	}
	if !haveUnknown || !haveDup || !haveShared {
		t.Errorf("Check(bad) missing findings (unknown=%v dup=%v shared=%v): %v",
			haveUnknown, haveDup, haveShared, diags)
	}
	if err := Errors(diags); err == nil {
		t.Error("Errors over Check(bad) should report the unknown-variable write")
	}
}
