package spec

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/state"
)

// TestCheckConvergesOneBuild pins the cost model: a convergence check is one
// graph compilation, not three. The closure obligations stream over the
// kernel (zero builds) and the liveness obligation goes through the shared
// cache, so a repeated check builds nothing at all. Counter deltas are read
// from the process-global cache statistics, so no t.Parallel here.
func TestCheckConvergesOneBuild(t *testing.T) {
	saved := closureProver
	closureProver = nil
	defer func() { closureProver = saved }()
	explore.ResetCache()

	p := counter(t, 5, inc(5))
	before := explore.CacheStats()
	if err := CheckConverges(p, state.True, atLeast(2)); err != nil {
		t.Fatal(err)
	}
	mid := explore.CacheStats()
	if d := mid.Builds - before.Builds; d != 1 {
		t.Errorf("first CheckConverges compiled %d graphs, want exactly 1", d)
	}
	if d := mid.Misses - before.Misses; d != 1 {
		t.Errorf("first CheckConverges missed %d times, want 1", d)
	}
	// The second identical check finds the graph resident and builds nothing;
	// the closure obligations now answer from the cached graph's edges too.
	if err := CheckConverges(p, state.True, atLeast(2)); err != nil {
		t.Fatal(err)
	}
	after := explore.CacheStats()
	if d := after.Builds - mid.Builds; d != 0 {
		t.Errorf("second CheckConverges compiled %d graphs, want 0", d)
	}
	if after.Hits <= mid.Hits {
		t.Error("second CheckConverges must hit the cache")
	}
}
