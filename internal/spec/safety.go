// Package spec implements problem specifications and their checking
// (Sections 2.2 and 2.4 of the paper). Problem specifications are suffix
// closed and fusion closed; over a finite state space such a specification
// decomposes into a safety part characterized purely by forbidden states and
// forbidden transitions, and a liveness part, which this package represents
// by leads-to obligations. The package also provides the paper's derived
// specifications — closure cl(S), "S converges to R", generalized
// Hoare-triples {S} p {R} — and the refinement relation "p' refines p from
// S" (Section 2.2.1).
package spec

import (
	"fmt"
	"strings"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Safety is a suffix- and fusion-closed safety specification. Over a finite
// state space every such specification is exactly the set of sequences that
// avoid a set of bad states and a set of bad transitions, so Safety stores
// those two characteristic functions. A sequence σ is in the specification
// iff no state of σ satisfies BadState and no adjacent pair satisfies
// BadStep.
type Safety struct {
	Name     string
	BadState func(state.State) bool
	BadStep  func(from, to state.State) bool
}

// NeverState builds the safety specification "no state satisfying bad ever
// occurs".
func NeverState(name string, bad state.Predicate) Safety {
	return Safety{
		Name:     name,
		BadState: func(s state.State) bool { return bad.Holds(s) },
	}
}

// NeverStep builds the safety specification "no transition satisfying bad
// ever occurs".
func NeverStep(name string, bad func(from, to state.State) bool) Safety {
	return Safety{Name: name, BadStep: bad}
}

// TrueSafety is the safety specification containing every sequence.
var TrueSafety = Safety{Name: "true"}

// IntersectSafety returns the intersection of the given safety
// specifications (a sequence is allowed iff allowed by all).
func IntersectSafety(name string, specs ...Safety) Safety {
	ss := append([]Safety(nil), specs...)
	return Safety{
		Name: name,
		BadState: func(s state.State) bool {
			for _, sp := range ss {
				if sp.BadState != nil && sp.BadState(s) {
					return true
				}
			}
			return false
		},
		BadStep: func(from, to state.State) bool {
			for _, sp := range ss {
				if sp.BadStep != nil && sp.BadStep(from, to) {
					return true
				}
			}
			return false
		},
	}
}

// StateOK reports whether the state is allowed by the specification.
func (sp Safety) StateOK(s state.State) bool {
	return sp.BadState == nil || !sp.BadState(s)
}

// StepOK reports whether the transition is allowed by the specification.
func (sp Safety) StepOK(from, to state.State) bool {
	return sp.BadStep == nil || !sp.BadStep(from, to)
}

// String returns the specification name.
func (sp Safety) String() string {
	if sp.Name == "" {
		return "<safety>"
	}
	return sp.Name
}

// Maintains reports whether the finite prefix maintains the specification
// (Section 2.2.1, "Maintains"): for a transition-characterized safety
// specification, a prefix maintains it iff the prefix itself contains no bad
// state and no bad step — any such prefix extends to a sequence in the
// specification.
func (sp Safety) Maintains(prefix []state.State) bool {
	for i, s := range prefix {
		if !sp.StateOK(s) {
			return false
		}
		if i > 0 && !sp.StepOK(prefix[i-1], s) {
			return false
		}
	}
	return true
}

// SafetyViolation is a counterexample to a safety obligation: a trace from
// an initial state whose final state or final step is forbidden.
type SafetyViolation struct {
	Spec   string
	Trace  []state.State
	IsStep bool // true: the last step is bad; false: the last state is bad
	Action string
}

// Error implements the error interface.
func (v *SafetyViolation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "safety %q violated", v.Spec)
	if len(v.Trace) > 0 {
		last := v.Trace[len(v.Trace)-1]
		if v.IsStep && len(v.Trace) >= 2 {
			fmt.Fprintf(&b, ": bad step %s -> %s", v.Trace[len(v.Trace)-2], last)
			if v.Action != "" {
				fmt.Fprintf(&b, " (action %s)", v.Action)
			}
		} else {
			fmt.Fprintf(&b, ": bad state %s", last)
		}
		fmt.Fprintf(&b, " reached in %d steps from %s", len(v.Trace)-1, v.Trace[0])
	}
	return b.String()
}

// CheckSafety verifies that every computation of p starting from a state in
// `from` satisfies the safety specification: no reachable bad state, no
// reachable bad transition. It returns nil on success or a counterexample
// trace. The graph must have been built from (at least) the `from` states.
func CheckSafety(g *explore.Graph, from *explore.Bitset, sp Safety) *SafetyViolation {
	reach := g.Reach(from, nil)
	var bad *explore.Bitset
	var viol *SafetyViolation
	reach.ForEach(func(id int) bool {
		s := g.State(id)
		if !sp.StateOK(s) {
			if bad == nil {
				bad = explore.NewBitset(g.NumNodes())
			}
			bad.Add(id)
		}
		return true
	})
	if bad != nil {
		stem, _ := g.PathBetween(from, bad, nil)
		return &SafetyViolation{Spec: sp.Name, Trace: stem}
	}
	reach.ForEach(func(id int) bool {
		s := g.State(id)
		for _, e := range g.Out(id) {
			t := g.State(e.To)
			if !sp.StepOK(s, t) {
				single := explore.NewBitset(g.NumNodes())
				single.Add(id)
				stem, _ := g.PathBetween(from, single, nil)
				stem = append(stem, t)
				viol = &SafetyViolation{Spec: sp.Name, Trace: stem, IsStep: true, Action: g.ActionName(e.Action)}
				return false
			}
		}
		return true
	})
	return viol
}

// WeakestStepPredicate returns, for a single action of p, the set of states
// from which executing the action cannot violate the safety specification:
// the state itself is good, every successor is good, and every produced step
// is allowed. This is the weakest detection predicate of Theorem 3.3,
// computed extensionally.
func WeakestStepPredicate(p *guarded.Program, actionIdx int, sp Safety) state.Predicate {
	a := p.Action(actionIdx)
	return state.Pred(
		fmt.Sprintf("wsp(%s,%s)", a.Name, sp),
		func(s state.State) bool {
			if !sp.StateOK(s) {
				return false
			}
			if !a.Enabled(s) {
				// Executing a disabled action is vacuous; the predicate is
				// about execution, so treat non-enabled states as safe.
				return true
			}
			for _, t := range a.Next(s) {
				if !sp.StateOK(t) || !sp.StepOK(s, t) {
					return false
				}
			}
			return true
		},
	)
}
