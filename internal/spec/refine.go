package spec

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// RefinementViolation witnesses that p' does not refine p from S.
type RefinementViolation struct {
	Refined string
	Base    string
	Reason  string
	At      state.State
	To      state.State
}

// Error implements the error interface.
func (v *RefinementViolation) Error() string {
	msg := fmt.Sprintf("%q does not refine %q: %s at %s", v.Refined, v.Base, v.Reason, v.At)
	if !v.To.IsZero() {
		msg += fmt.Sprintf(" -> %s", v.To)
	}
	return msg
}

// CheckRefines verifies "p' refines p from S" (Section 2.2.1): S is closed
// in p', and the projection on p of every computation of p' from S is a
// computation of p. Over the finite transition graph this is checked as:
//
//  1. S is closed in p'.
//  2. Every transition of p' from a state reachable from S projects to a
//     transition of p, or stutters (leaves p's variables unchanged).
//  3. Maximality is preserved: if p' deadlocks at a reachable state, p is
//     deadlocked at its projection (otherwise the projected sequence would
//     be finite but not maximal for p).
//  4. Fairness is preserved: no fair computation of p' stutters forever at
//     states where p still has enabled actions (otherwise the projection is
//     not a maximal computation of p). This is a fair-cycle check over
//     stuttering transitions.
//
// Conditions 2–4 are sound and complete for transition-level (fusion-closed)
// behaviour, which is the setting of the paper's theory; see DESIGN.md §3.
func CheckRefines(pp, p *guarded.Program, s state.Predicate) error {
	proj, err := state.NewProjection(pp.Schema(), p.Schema())
	if err != nil {
		return fmt.Errorf("refines: %w", err)
	}
	if err := CheckClosed(pp, s); err != nil {
		return fmt.Errorf("refines: invariant not closed in %q: %w", pp.Name(), err)
	}
	g, err := explore.Shared(pp, s, explore.Options{})
	if err != nil {
		return err
	}
	reach := g.Reach(g.SetOf(s), nil)
	var viol error
	reach.ForEach(func(id int) bool {
		st := g.State(id)
		base := proj.Apply(st)
		edges := g.Out(id)
		if len(edges) == 0 && !p.Deadlocked(base) {
			viol = &RefinementViolation{
				Refined: pp.Name(), Base: p.Name(),
				Reason: "p' deadlocks while p has enabled actions (projected computation not maximal)",
				At:     st,
			}
			return false
		}
		for _, e := range edges {
			nst := g.State(e.To)
			nbase := proj.Apply(nst)
			if nbase.Equal(base) {
				continue // stutter
			}
			if !baseHasTransition(p, base, nbase) {
				viol = &RefinementViolation{
					Refined: pp.Name(), Base: p.Name(),
					Reason: fmt.Sprintf("step by action %q projects to a non-transition of %q (%s -> %s)",
						g.ActionName(e.Action), p.Name(), base, nbase),
					At: st, To: nst,
				}
				return false
			}
		}
		return true
	})
	if viol != nil {
		return viol
	}
	// Condition 4: no fair infinite stuttering where p must move. A state is
	// "busy" when p is neither deadlocked nor able to stutter (self-loop) at
	// the projection; infinite stuttering there cannot be the projection of
	// any computation of p. Build the stutter-only subgraph restricted to
	// busy states and look for a fair cycle.
	busy := explore.NewBitset(g.NumNodes())
	reach.ForEach(func(id int) bool {
		base := proj.Apply(g.State(id))
		if !p.Deadlocked(base) && !baseHasTransition(p, base, base) {
			busy.Add(id)
		}
		return true
	})
	sub := stutterSubgraph(g, proj, reach)
	if comp := sub.FairCycle(busy); comp != nil {
		return &RefinementViolation{
			Refined: pp.Name(), Base: p.Name(),
			Reason: fmt.Sprintf("fair computation of p' stutters forever (cycle of %d states) while p has enabled actions", len(comp)),
			At:     g.State(comp[0]),
		}
	}
	return nil
}

func baseHasTransition(p *guarded.Program, from, to state.State) bool {
	for _, tr := range p.Successors(from) {
		if tr.To.Equal(to) {
			return true
		}
	}
	return false
}

// stutterSubgraph returns a view of g keeping only edges whose projection
// stutters.
func stutterSubgraph(g *explore.Graph, proj *state.Projection, within *explore.Bitset) *explore.Graph {
	return g.FilterEdges(func(from int, e explore.Edge) bool {
		if !within.Has(from) || !within.Has(e.To) {
			return false
		}
		return proj.SameProjection(g.State(from), g.State(e.To))
	})
}
