package spec

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// ClosureViolation witnesses that a predicate is not closed in a program: an
// action leads from a state satisfying the predicate to one that does not.
type ClosureViolation struct {
	Predicate string
	Action    string
	From, To  state.State
}

// Error implements the error interface.
func (v *ClosureViolation) Error() string {
	return fmt.Sprintf("closure of %q violated by action %q: %s -> %s",
		v.Predicate, v.Action, v.From, v.To)
}

// ClosureProver is an optional exploration-free fast path for CheckClosed:
// it reports true only when it has proved that s is closed in p. Anything
// short of a proof (including a disproof) returns false and CheckClosed
// falls back to enumeration, so registering a prover can never change a
// verdict — it only skips work. internal/prove registers one via Certify.
type ClosureProver func(p *guarded.Program, s state.Predicate) bool

var closureProver ClosureProver

// RegisterClosureProver installs the fast path. Passing nil removes it.
func RegisterClosureProver(f ClosureProver) { closureProver = f }

// CheckClosed verifies "S is closed in p" (Section 2.2.1): p refines cl(S)
// from true, i.e. every transition of p from a state satisfying S lands in a
// state satisfying S. When a registered prover discharges the per-action
// closure obligations the check returns immediately; otherwise it
// enumerates the entire state space, as the definition quantifies over all
// computations.
func CheckClosed(p *guarded.Program, s state.Predicate) error {
	if closureProver != nil && closureProver(p, s) {
		return nil
	}
	var viol error
	err := p.Schema().ForEachState(func(st state.State) bool {
		if !s.Holds(st) {
			return true
		}
		for _, tr := range p.Successors(st) {
			if !s.Holds(tr.To) {
				viol = &ClosureViolation{
					Predicate: s.String(),
					Action:    p.Action(tr.Action).Name,
					From:      st,
					To:        tr.To,
				}
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return viol
}

// CheckPair verifies the generalized Hoare-triple {S} p {R} (Section 2.2.1):
// p refines the generalized pair ({S},{R}) from true — every transition of p
// from a state satisfying S lands in a state satisfying R.
func CheckPair(p *guarded.Program, s, r state.Predicate) error {
	var viol error
	err := p.Schema().ForEachState(func(st state.State) bool {
		if !s.Holds(st) {
			return true
		}
		for _, tr := range p.Successors(st) {
			if !r.Holds(tr.To) {
				viol = &ClosureViolation{
					Predicate: fmt.Sprintf("{%s} %s {%s}", s, p.Name(), r),
					Action:    p.Action(tr.Action).Name,
					From:      st,
					To:        tr.To,
				}
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return viol
}

// CheckConverges verifies "S converges to R in p" (Section 2.2.1): p refines
// 'S converges to R' from true. Per the definition this requires cl(S),
// cl(R), and that every (fair, maximal) computation passing through S
// eventually passes through R.
func CheckConverges(p *guarded.Program, s, r state.Predicate) error {
	if err := CheckClosed(p, s); err != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, err)
	}
	if err := CheckClosed(p, r); err != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, err)
	}
	g, err := explore.Build(p, s, explore.Options{})
	if err != nil {
		return err
	}
	if v := g.CheckEventually(g.SetOf(s), g.SetOf(r)); v != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, v)
	}
	return nil
}

// LeadsTo is the liveness obligation "whenever P holds, eventually Q holds"
// over every fair maximal computation. The paper's example specification
// SPEC_mem ("data is eventually set to the correct value", Section 3.3) is
// of this shape.
type LeadsTo struct {
	Name string
	P, Q state.Predicate
}

// CheckLeadsTo verifies the obligation for computations of p starting in
// `from` (the graph must have been built from those states).
func CheckLeadsTo(g *explore.Graph, from *explore.Bitset, lt LeadsTo) error {
	reach := g.Reach(from, nil)
	pSet := g.SetOf(lt.P)
	pSet.Intersect(reach)
	qSet := g.SetOf(lt.Q)
	if v := g.CheckEventually(pSet, qSet); v != nil {
		return fmt.Errorf("leads-to %q (%s ~> %s): %w", lt.Name, lt.P, lt.Q, v)
	}
	return nil
}
