package spec

import (
	"context"
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// ClosureViolation witnesses that a predicate is not closed in a program: an
// action leads from a state satisfying the predicate to one that does not.
type ClosureViolation struct {
	Predicate string
	Action    string
	From, To  state.State
}

// Error implements the error interface.
func (v *ClosureViolation) Error() string {
	return fmt.Sprintf("closure of %q violated by action %q: %s -> %s",
		v.Predicate, v.Action, v.From, v.To)
}

// ClosureProver is an optional exploration-free fast path for CheckClosed:
// it reports true only when it has proved that s is closed in p. Anything
// short of a proof (including a disproof) returns false and CheckClosed
// falls back to enumeration, so registering a prover can never change a
// verdict — it only skips work. internal/prove registers one via Certify.
type ClosureProver func(p *guarded.Program, s state.Predicate) bool

var closureProver ClosureProver

// RegisterClosureProver installs the fast path. Passing nil removes it.
func RegisterClosureProver(f ClosureProver) { closureProver = f }

// ClosedSlicer is an optional cone-of-influence pre-pass for CheckClosed:
// it runs the check on a sliced program whose verdicts provably coincide
// with the full program's, returning (verdict, true) when it decided the
// check and (_, false) when slicing does not apply. Callers accept a nil
// verdict directly but re-derive violations on the full program, so the
// reported witness states are always full-width. internal/flow registers
// one via Certify.
type ClosedSlicer func(ctx context.Context, p *guarded.Program, s state.Predicate) (error, bool)

var closedSlicer ClosedSlicer

// RegisterClosedSlicer installs the slicing pre-pass. Passing nil removes it.
func RegisterClosedSlicer(f ClosedSlicer) { closedSlicer = f }

// ConvergesSlicer is the CheckConverges form of ClosedSlicer.
type ConvergesSlicer func(ctx context.Context, p *guarded.Program, s, r state.Predicate) (error, bool)

var convergesSlicer ConvergesSlicer

// RegisterConvergesSlicer installs the slicing pre-pass. Passing nil
// removes it.
func RegisterConvergesSlicer(f ConvergesSlicer) { convergesSlicer = f }

// CheckClosed verifies "S is closed in p" (Section 2.2.1): p refines cl(S)
// from true, i.e. every transition of p from a state satisfying S lands in a
// state satisfying S. The work ladder, cheapest first: a registered prover
// that discharges the per-action closure obligations returns immediately; a
// graph already in the process-wide cache (built from S or from true, either
// of which covers every S-state) answers from its precomputed edges; failing
// both, a streaming kernel scan enumerates the S-states and their immediate
// transitions with early exit at the first violation — one pass, no graph
// assembly.
func CheckClosed(p *guarded.Program, s state.Predicate) error {
	return CheckClosedCtx(context.Background(), p, s)
}

// CheckClosedCtx is CheckClosed under a context: cancellation aborts the
// fallback kernel scan with ctx.Err(). The prover and cached-graph rungs of
// the ladder are not interruptible — they are already cheap.
func CheckClosedCtx(ctx context.Context, p *guarded.Program, s state.Predicate) error {
	if closureProver != nil && closureProver(p, s) {
		return nil
	}
	if g, ok := closureGraph(p, s); ok {
		return CheckClosedOn(g, s)
	}
	if closedSlicer != nil {
		if verdict, ok := closedSlicer(ctx, p, s); ok && verdict == nil {
			return nil
		}
		// A sliced violation proves one exists; fall through so the
		// full-space scan reports it with full-width witness states.
	}
	return scanPair(ctx, p, s, s, s.String())
}

// closureGraph finds a cached graph that contains every S-state: one built
// from S itself, or the full-space graph.
func closureGraph(p *guarded.Program, s state.Predicate) (*explore.Graph, bool) {
	if g, ok := explore.Peek(p, s, explore.Options{}); ok {
		return g, true
	}
	if g, ok := explore.Peek(p, state.True, explore.Options{}); ok {
		return g, true
	}
	return nil, false
}

// CheckClosedOn verifies "S is closed in p" on an already-built graph of p.
// The graph must contain every state satisfying S (built from an init
// predicate implied by S, typically S itself or true); its edges then cover
// every transition the definition quantifies over. Verdicts for named
// predicates are memoized on the graph.
func CheckClosedOn(g *explore.Graph, s state.Predicate) error {
	check := func() error {
		set := g.SetOf(s)
		var viol error
		set.ForEach(func(id int) bool {
			for _, e := range g.Out(id) {
				if !set.Has(e.To) {
					viol = &ClosureViolation{
						Predicate: s.String(),
						Action:    g.ActionName(e.Action),
						From:      g.State(id),
						To:        g.State(e.To),
					}
					return false
				}
			}
			return true
		})
		return viol
	}
	if !explore.MemoizableName(s.String()) {
		return check()
	}
	v := g.Memoize("closed:"+s.String(), func() any { return check() })
	if v == nil {
		return nil
	}
	return v.(error)
}

// CheckPair verifies the generalized Hoare-triple {S} p {R} (Section 2.2.1):
// p refines the generalized pair ({S},{R}) from true — every transition of p
// from a state satisfying S lands in a state satisfying R. The check streams
// over the compiled kernel with early exit at the first violation.
func CheckPair(p *guarded.Program, s, r state.Predicate) error {
	return CheckPairCtx(context.Background(), p, s, r)
}

// CheckPairCtx is CheckPair under a context; cancellation aborts the kernel
// scan with ctx.Err().
func CheckPairCtx(ctx context.Context, p *guarded.Program, s, r state.Predicate) error {
	return scanPair(ctx, p, s, r, fmt.Sprintf("{%s} %s {%s}", s, p.Name(), r))
}

// scanPair streams the S-states in ascending index order and checks that
// every transition out of them satisfies r, stopping at the first violation.
// The enumeration order matches the historical full-space sweep (ascending
// states, transitions in action order), so the witness is the same one.
func scanPair(ctx context.Context, p *guarded.Program, s, r state.Predicate, label string) error {
	sch := p.Schema()
	var viol error
	_, err := explore.ScanCtx(ctx, p, s, explore.ScanOptions{InitOnly: true}, explore.Scanner{
		Edge: func(from, to state.State, action int, fresh bool) bool {
			if r.Holds(to) {
				return true
			}
			viol = &ClosureViolation{
				Predicate: label,
				Action:    p.Action(action).Name,
				From:      sch.StateAt(from.Index()),
				To:        sch.StateAt(to.Index()),
			}
			return false
		},
	})
	if err != nil {
		return err
	}
	return viol
}

// CheckConverges verifies "S converges to R in p" (Section 2.2.1): p refines
// 'S converges to R' from true. Per the definition this requires cl(S),
// cl(R), and that every (fair, maximal) computation passing through S
// eventually passes through R. The closure obligations stream over the
// kernel (or hit cached graphs); the liveness obligation costs exactly one
// graph build through the shared cache.
func CheckConverges(p *guarded.Program, s, r state.Predicate) error {
	return CheckConvergesCtx(context.Background(), p, s, r)
}

// CheckConvergesCtx is CheckConverges under a context: cancellation aborts
// the closure scans and the graph build with ctx.Err(). The liveness query
// on the built graph is not interruptible — it is linear in the graph.
func CheckConvergesCtx(ctx context.Context, p *guarded.Program, s, r state.Predicate) error {
	// The sliced pre-pass only pays when the liveness graph is not already
	// cached; a nil sliced verdict is final, a violation is re-derived on
	// the full program below so the witness carries every variable.
	if convergesSlicer != nil {
		if _, cached := explore.Peek(p, s, explore.Options{}); !cached {
			if verdict, ok := convergesSlicer(ctx, p, s, r); ok && verdict == nil {
				return nil
			}
		}
	}
	if err := CheckClosedCtx(ctx, p, s); err != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, err)
	}
	if err := CheckClosedCtx(ctx, p, r); err != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, err)
	}
	g, err := explore.SharedCtx(ctx, p, s, explore.Options{})
	if err != nil {
		return err
	}
	if v := g.CheckEventually(g.SetOf(s), g.SetOf(r)); v != nil {
		return fmt.Errorf("converges(%s -> %s): %w", s, r, v)
	}
	return nil
}

// LeadsTo is the liveness obligation "whenever P holds, eventually Q holds"
// over every fair maximal computation. The paper's example specification
// SPEC_mem ("data is eventually set to the correct value", Section 3.3) is
// of this shape.
type LeadsTo struct {
	Name string
	P, Q state.Predicate
}

// CheckLeadsTo verifies the obligation for computations of p starting in
// `from` (the graph must have been built from those states). Callers loop
// this over many obligations with the same start set; the reachability
// closure is served from the graph's derived-artifact memo rather than
// recomputed per call.
func CheckLeadsTo(g *explore.Graph, from *explore.Bitset, lt LeadsTo) error {
	reach := g.Reach(from, nil)
	pSet := g.SetOf(lt.P)
	pSet.Intersect(reach)
	qSet := g.SetOf(lt.Q)
	if v := g.CheckEventually(pSet, qSet); v != nil {
		return fmt.Errorf("leads-to %q (%s ~> %s): %w", lt.Name, lt.P, lt.Q, v)
	}
	return nil
}
