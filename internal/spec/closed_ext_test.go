// The fault package imports spec, so tests that compose faults live in the
// external test package to break the cycle.
package spec_test

import (
	"errors"
	"testing"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// TestCheckClosedFaultComposed exercises the closure check on a
// fault-composed program: the predicate is closed in the base program but a
// fault action breaks it, and the witness must name the fault.
func TestCheckClosedFaultComposed(t *testing.T) {
	sch, err := state.NewSchema(state.IntVar("x", 5))
	if err != nil {
		t.Fatal(err)
	}
	inc := guarded.Det("inc",
		state.Pred("x<4", func(s state.State) bool { return s.Get(0) < 4 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) })
	dec := guarded.Det("dec",
		state.Pred("x>0", func(s state.State) bool { return s.Get(0) > 0 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)-1) })
	p := guarded.MustProgram("counter", sch, inc)
	atLeast2 := state.Pred("x≥2", func(s state.State) bool { return s.Get(0) >= 2 })

	if err := spec.CheckClosed(p, atLeast2); err != nil {
		t.Fatalf("x≥2 is closed in the base program: %v", err)
	}
	composed, _, err := fault.Compose(p, fault.NewClass("drop", dec))
	if err != nil {
		t.Fatal(err)
	}
	cerr := spec.CheckClosed(composed, atLeast2)
	if cerr == nil {
		t.Fatal("the composed program must break closure of x≥2")
	}
	var cv *spec.ClosureViolation
	if !errors.As(cerr, &cv) {
		t.Fatalf("composed failure is not a ClosureViolation: %v", cerr)
	}
	if cv.Action != "dec" {
		t.Errorf("witness action = %q, want the fault action dec", cv.Action)
	}
	if cv.From.Get(0) != 2 || cv.To.Get(0) != 1 {
		t.Errorf("witness step = %s -> %s, want the boundary step x=2 -> x=1", cv.From, cv.To)
	}
}
