package spec

import (
	"errors"
	"strings"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// TestClosureViolationWitness pins the witness a failing CheckClosed
// returns: the offending action by name and the exact from/to states, which
// downstream error messages and the dctl output lean on.
func TestClosureViolationWitness(t *testing.T) {
	p := counter(t, 5, dec())
	err := CheckClosed(p, atLeast(2))
	if err == nil {
		t.Fatal("x≥2 is not closed under dec")
	}
	var cv *ClosureViolation
	if !errors.As(err, &cv) {
		t.Fatalf("error is not a ClosureViolation: %v", err)
	}
	if cv.Predicate != "x≥k" {
		t.Errorf("Predicate = %q, want the predicate's name", cv.Predicate)
	}
	if cv.Action != "dec" {
		t.Errorf("Action = %q, want dec", cv.Action)
	}
	// The only violating step from x≥2 is the boundary one: 2 -> 1.
	if got := cv.From.Get(0); got != 2 {
		t.Errorf("From state has x=%d, want the boundary state x=2", got)
	}
	if got := cv.To.Get(0); got != 1 {
		t.Errorf("To state has x=%d, want x=1", got)
	}
}

// TestClosureViolationFormatting pins the rendered message: predicate,
// action, and both witness states must all appear.
func TestClosureViolationFormatting(t *testing.T) {
	sch := counter(t, 3, dec()).Schema()
	v := &ClosureViolation{
		Predicate: "S",
		Action:    "pageout",
		From:      sch.StateAt(2),
		To:        sch.StateAt(1),
	}
	msg := v.Error()
	for _, want := range []string{`closure of "S"`, `violated by action "pageout"`, v.From.String(), v.To.String()} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

// TestCheckClosedProverHook checks the fast-path contract: a registered
// prover that claims a proof short-circuits the check, one that declines
// leaves the verdict to enumeration, and the hook never runs after
// deregistration.
func TestCheckClosedProverHook(t *testing.T) {
	defer RegisterClosureProver(nil)

	p := counter(t, 5, dec())
	calls := 0
	// A prover that declines everything: CheckClosed must still find the
	// violation by enumeration.
	RegisterClosureProver(func(_ *guarded.Program, _ state.Predicate) bool {
		return false
	})
	if err := CheckClosed(p, atLeast(2)); err == nil {
		t.Fatal("a declining prover must not change the verdict")
	}
	// A prover that (unsoundly, for the test) claims success: the check
	// must return immediately with nil. This pins the short-circuit shape;
	// soundness of the real prover is internal/prove's and difftest's job.
	RegisterClosureProver(func(_ *guarded.Program, _ state.Predicate) bool {
		calls++
		return true
	})
	if err := CheckClosed(p, atLeast(2)); err != nil {
		t.Fatalf("a proving hook must short-circuit: %v", err)
	}
	if calls != 1 {
		t.Errorf("hook ran %d times, want 1", calls)
	}
	RegisterClosureProver(nil)
	if err := CheckClosed(p, atLeast(2)); err == nil {
		t.Fatal("after deregistration the enumeration verdict must return")
	}
}
