package spec

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Problem is a problem specification (Section 2.2) in its
// safety/liveness decomposition (Alpern & Schneider): a suffix- and
// fusion-closed safety part plus a conjunction of leads-to liveness
// obligations. The safety part is the smallest safety specification
// containing the problem specification, which is exactly the fail-safe
// tolerance specification of Section 2.4.
type Problem struct {
	Name   string
	Safety Safety
	Live   []LeadsTo
}

// FailSafeSpec returns the fail-safe tolerance specification of the problem
// (Section 2.4): the smallest safety specification containing it.
func (pr Problem) FailSafeSpec() Safety { return pr.Safety }

// String returns the specification name.
func (pr Problem) String() string {
	if pr.Name == "" {
		return "<problem>"
	}
	return pr.Name
}

// CheckRefinesFrom verifies "p refines SPEC from S" (Section 2.2.1) for the
// problem specification: S is closed in p, every computation from S
// satisfies the safety part, and every computation from S satisfies each
// liveness obligation.
func (pr Problem) CheckRefinesFrom(p *guarded.Program, s state.Predicate) error {
	if err := CheckClosed(p, s); err != nil {
		return fmt.Errorf("%s: invariant not closed: %w", pr, err)
	}
	g, err := explore.Build(p, s, explore.Options{})
	if err != nil {
		return err
	}
	from := g.SetOf(s)
	if v := CheckSafety(g, from, pr.Safety); v != nil {
		return fmt.Errorf("%s: %w", pr, v)
	}
	for _, lt := range pr.Live {
		if err := CheckLeadsTo(g, from, lt); err != nil {
			return fmt.Errorf("%s: %w", pr, err)
		}
	}
	return nil
}

// Violates reports "p violates SPEC from S" (Section 2.2.1): the negation of
// CheckRefinesFrom, returned as the underlying cause.
func (pr Problem) Violates(p *guarded.Program, s state.Predicate) (bool, error) {
	err := pr.CheckRefinesFrom(p, s)
	return err != nil, err
}

// InvariantOK reports whether S is an invariant of p for the problem
// specification (Section 2.2.1, "Invariant"): p refines SPEC from S.
func (pr Problem) InvariantOK(p *guarded.Program, s state.Predicate) bool {
	return pr.CheckRefinesFrom(p, s) == nil
}
