package spec

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Problem is a problem specification (Section 2.2) in its
// safety/liveness decomposition (Alpern & Schneider): a suffix- and
// fusion-closed safety part plus a conjunction of leads-to liveness
// obligations. The safety part is the smallest safety specification
// containing the problem specification, which is exactly the fail-safe
// tolerance specification of Section 2.4.
type Problem struct {
	Name   string
	Safety Safety
	Live   []LeadsTo
}

// FailSafeSpec returns the fail-safe tolerance specification of the problem
// (Section 2.4): the smallest safety specification containing it.
func (pr Problem) FailSafeSpec() Safety { return pr.Safety }

// String returns the specification name.
func (pr Problem) String() string {
	if pr.Name == "" {
		return "<problem>"
	}
	return pr.Name
}

// CheckRefinesFrom verifies "p refines SPEC from S" (Section 2.2.1) for the
// problem specification: S is closed in p, every computation from S
// satisfies the safety part, and every computation from S satisfies each
// liveness obligation. The graph comes from the process-wide cache; purely
// state-characterized safety problems with no liveness part and no cached
// graph are decided by a streaming scan instead — a counterexample hunt that
// stops at the first bad state without assembling a graph at all.
func (pr Problem) CheckRefinesFrom(p *guarded.Program, s state.Predicate) error {
	if err := CheckClosed(p, s); err != nil {
		return fmt.Errorf("%s: invariant not closed: %w", pr, err)
	}
	if len(pr.Live) == 0 && pr.Safety.BadStep == nil && p.Schema().Indexable() == nil {
		if _, cached := explore.Peek(p, s, explore.Options{}); !cached {
			v, err := scanBadState(p, s, pr.Safety)
			if err != nil {
				return err
			}
			if v != nil {
				return fmt.Errorf("%s: %w", pr, v)
			}
			return nil
		}
	}
	g, err := explore.Shared(p, s, explore.Options{})
	if err != nil {
		return err
	}
	from := g.SetOf(s)
	if v := CheckSafety(g, from, pr.Safety); v != nil {
		return fmt.Errorf("%s: %w", pr, v)
	}
	for _, lt := range pr.Live {
		if err := CheckLeadsTo(g, from, lt); err != nil {
			return fmt.Errorf("%s: %w", pr, err)
		}
	}
	return nil
}

// scanBadState hunts for a reachable state forbidden by a state-only safety
// specification, streaming over the compiled kernel with early exit. The BFS
// uses the same tie-breaking as CheckSafety's PathBetween extraction
// (ascending seeds, FIFO frontier, transitions in action order, first
// discoverer as parent), so the returned trace is the identical witness.
func scanBadState(p *guarded.Program, s state.Predicate, sp Safety) (*SafetyViolation, error) {
	if sp.BadState == nil {
		// Nothing is forbidden; any reachable set satisfies the spec.
		return nil, nil
	}
	sch := p.Schema()
	parent := map[uint64]uint64{}
	var badIdx uint64
	found := false
	_, err := explore.Scan(p, s, explore.ScanOptions{}, explore.Scanner{
		Visit: func(st state.State) bool {
			if sp.BadState(st) {
				badIdx = st.Index()
				found = true
				return false
			}
			return true
		},
		Edge: func(from, to state.State, action int, fresh bool) bool {
			if fresh {
				parent[to.Index()] = from.Index()
			}
			return true
		},
	})
	if err != nil || !found {
		return nil, err
	}
	var rev []state.State
	for idx := badIdx; ; {
		rev = append(rev, sch.StateAt(idx))
		pidx, ok := parent[idx]
		if !ok {
			break
		}
		idx = pidx
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return &SafetyViolation{Spec: sp.Name, Trace: rev}, nil
}

// Violates reports "p violates SPEC from S" (Section 2.2.1): the negation of
// CheckRefinesFrom, returned as the underlying cause.
func (pr Problem) Violates(p *guarded.Program, s state.Predicate) (bool, error) {
	err := pr.CheckRefinesFrom(p, s)
	return err != nil, err
}

// InvariantOK reports whether S is an invariant of p for the problem
// specification (Section 2.2.1, "Invariant"): p refines SPEC from S.
func (pr Problem) InvariantOK(p *guarded.Program, s state.Predicate) bool {
	return pr.CheckRefinesFrom(p, s) == nil
}
