package spec

import (
	"errors"
	"strings"
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

func counter(t *testing.T, n int, actions ...guarded.Action) *guarded.Program {
	t.Helper()
	sch, err := state.NewSchema(state.IntVar("x", n))
	if err != nil {
		t.Fatal(err)
	}
	return guarded.MustProgram("counter", sch, actions...)
}

func inc(n int) guarded.Action {
	return guarded.Det("inc",
		state.Pred("x<max", func(s state.State) bool { return s.Get(0) < n-1 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) })
}

func dec() guarded.Action {
	return guarded.Det("dec",
		state.Pred("x>0", func(s state.State) bool { return s.Get(0) > 0 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)-1) })
}

func atLeast(k int) state.Predicate {
	return state.Pred("x≥k", func(s state.State) bool { return s.Get(0) >= k })
}

func TestCheckClosed(t *testing.T) {
	p := counter(t, 5, inc(5))
	if err := CheckClosed(p, atLeast(2)); err != nil {
		t.Errorf("x≥2 is closed under inc: %v", err)
	}
	err := CheckClosed(counter(t, 5, dec()), atLeast(2))
	if err == nil {
		t.Fatal("x≥2 is not closed under dec")
	}
	var cv *ClosureViolation
	if !errors.As(err, &cv) || cv.Action != "dec" {
		t.Errorf("violation should name dec: %v", err)
	}
	// true and false are trivially closed (noted in Section 2.2.1).
	if err := CheckClosed(p, state.True); err != nil {
		t.Error(err)
	}
	if err := CheckClosed(p, state.False); err != nil {
		t.Error(err)
	}
}

func TestCheckPair(t *testing.T) {
	p := counter(t, 5, inc(5))
	// {x=2} inc {x=3} — the generalized Hoare-triple of Section 2.2.1.
	at2 := state.Pred("x=2", func(s state.State) bool { return s.Get(0) == 2 })
	at3 := state.Pred("x=3", func(s state.State) bool { return s.Get(0) == 3 })
	if err := CheckPair(p, at2, at3); err != nil {
		t.Errorf("{x=2} inc {x=3}: %v", err)
	}
	if err := CheckPair(p, at2, at2); err == nil {
		t.Error("{x=2} inc {x=2} must fail")
	}
}

func TestCheckConverges(t *testing.T) {
	p := counter(t, 5, inc(5))
	if err := CheckConverges(p, state.True, atLeast(4)); err != nil {
		t.Errorf("counter converges to the top: %v", err)
	}
	// Not closed: x≥1 → x=0 is not closed under dec, so converges fails on
	// the closure obligation.
	if err := CheckConverges(counter(t, 5, dec()), atLeast(1), atLeast(4)); err == nil {
		t.Error("converges must require cl(S)")
	}
}

func TestMaintains(t *testing.T) {
	sch := state.MustSchema(state.IntVar("x", 3))
	sp := NeverStep("no-skip", func(from, to state.State) bool {
		return to.Get(0)-from.Get(0) > 1
	})
	s0 := state.MustState(sch, 0)
	s1 := state.MustState(sch, 1)
	s2 := state.MustState(sch, 2)
	if !sp.Maintains([]state.State{s0, s1, s2}) {
		t.Error("stepwise prefix maintains the spec")
	}
	if sp.Maintains([]state.State{s0, s2}) {
		t.Error("skipping prefix must not maintain the spec")
	}
	bad := NeverState("no-two", state.Pred("x=2", func(s state.State) bool { return s.Get(0) == 2 }))
	if bad.Maintains([]state.State{s0, s1, s2}) {
		t.Error("prefix through a bad state must not maintain")
	}
	if !TrueSafety.Maintains([]state.State{s0, s2}) {
		t.Error("the true safety spec allows everything")
	}
}

func TestIntersectSafety(t *testing.T) {
	sch := state.MustSchema(state.IntVar("x", 3))
	a := NeverState("no-0", state.Pred("x=0", func(s state.State) bool { return s.Get(0) == 0 }))
	b := NeverStep("no-up", func(from, to state.State) bool { return to.Get(0) > from.Get(0) })
	both := IntersectSafety("both", a, b)
	if both.StateOK(state.MustState(sch, 0)) {
		t.Error("intersection must inherit bad states")
	}
	if both.StepOK(state.MustState(sch, 1), state.MustState(sch, 2)) {
		t.Error("intersection must inherit bad steps")
	}
	if !both.StateOK(state.MustState(sch, 1)) {
		t.Error("intersection must allow good states")
	}
}

func TestCheckSafetyTrace(t *testing.T) {
	p := counter(t, 5, inc(5))
	g, err := explore.Build(p, state.True, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	from := g.SetOf(state.Pred("x=0", func(s state.State) bool { return s.Get(0) == 0 }))
	sp := NeverState("no-3", state.Pred("x=3", func(s state.State) bool { return s.Get(0) == 3 }))
	v := CheckSafety(g, from, sp)
	if v == nil {
		t.Fatal("x=3 is reachable from x=0")
	}
	if len(v.Trace) != 4 {
		t.Errorf("shortest trace to x=3 has 4 states, got %d", len(v.Trace))
	}
	if !strings.Contains(v.Error(), "no-3") {
		t.Errorf("violation should name the spec: %v", v)
	}
	stepSpec := NeverStep("no-2to3", func(from, to state.State) bool {
		return from.Get(0) == 2 && to.Get(0) == 3
	})
	v = CheckSafety(g, from, stepSpec)
	if v == nil || !v.IsStep || v.Action != "inc" {
		t.Errorf("want step violation by inc, got %+v", v)
	}
	if v := CheckSafety(g, from, TrueSafety); v != nil {
		t.Errorf("true safety must hold: %v", v)
	}
}

func TestWeakestStepPredicate(t *testing.T) {
	p := counter(t, 5, inc(5))
	sp := NeverState("no-3", state.Pred("x=3", func(s state.State) bool { return s.Get(0) == 3 }))
	sf := WeakestStepPredicate(p, 0, sp)
	sch := p.Schema()
	// Executing inc is unsafe exactly at x=2 (lands on 3) and at x=3 (the
	// state itself is bad).
	for x, want := range map[int]bool{0: true, 1: true, 2: false, 3: false, 4: true} {
		if got := sf.Holds(state.MustState(sch, x)); got != want {
			t.Errorf("sf(x=%d) = %v, want %v", x, got, want)
		}
	}
}

func TestProblemRefinesAndViolates(t *testing.T) {
	p := counter(t, 5, inc(5))
	prob := Problem{
		Name:   "reach-top",
		Safety: TrueSafety,
		Live:   []LeadsTo{{Name: "top", P: state.True, Q: atLeast(4)}},
	}
	if err := prob.CheckRefinesFrom(p, state.True); err != nil {
		t.Errorf("counter refines reach-top: %v", err)
	}
	if !prob.InvariantOK(p, state.True) {
		t.Error("true should be an invariant")
	}
	stuck := counter(t, 5, guarded.Det("inc2",
		state.Pred("x<2", func(s state.State) bool { return s.Get(0) < 2 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) }))
	viol, err := prob.Violates(stuck, state.True)
	if !viol {
		t.Errorf("stuck counter must violate reach-top (err=%v)", err)
	}
}

func TestCheckRefines(t *testing.T) {
	base := state.MustSchema(state.IntVar("x", 4))
	ext := state.MustSchema(state.IntVar("x", 4), state.BoolVar("log"))
	p := guarded.MustProgram("p", base, inc(4))
	pIncLifted := guarded.MustLift(p, ext)

	// A refinement that adds a logging variable via encapsulation.
	logIdx := ext.MustIndexOf("log")
	enc := guarded.EncapsulateAction(pIncLifted.Action(0), state.True,
		func(pre, post state.State) state.State { return post.With(logIdx, 1) })
	good := guarded.MustProgram("good", ext, enc)
	if err := CheckRefines(good, p, state.True); err != nil {
		t.Errorf("encapsulated refinement should hold: %v", err)
	}

	// A program with an extra x-decrementing action does not refine p.
	rogue := guarded.MustProgram("rogue", ext, enc, guarded.Det("down",
		state.Pred("x>0", func(s state.State) bool { return s.Get(0) > 0 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)-1) }))
	if err := CheckRefines(rogue, p, state.True); err == nil {
		t.Error("rogue decrement must break refinement")
	}

	// A program that deadlocks early does not refine p (maximality).
	early := guarded.MustProgram("early", ext, guarded.Det("inc",
		state.Pred("x<1", func(s state.State) bool { return s.Get(0) < 1 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) }))
	err := CheckRefines(early, p, state.True)
	if err == nil {
		t.Fatal("early deadlock must break refinement")
	}
	var rv *RefinementViolation
	if !errors.As(err, &rv) || !strings.Contains(rv.Reason, "deadlock") {
		t.Errorf("want deadlock reason, got %v", err)
	}

	// A program that stutters forever while p must move: fairness broken.
	spin := guarded.MustProgram("spin", ext, guarded.Det("toggle", state.True,
		func(s state.State) state.State { return s.WithBool(logIdx, !s.Bool(logIdx)) }))
	err = CheckRefines(spin, p, state.True)
	if err == nil {
		t.Fatal("infinite stuttering must break refinement when p has no self-loop")
	}
	if !errors.As(err, &rv) || !strings.Contains(rv.Reason, "stutters forever") {
		t.Errorf("want stuttering reason, got %v", err)
	}
}

func TestCheckRefinesAllowsStutterWithSelfLoop(t *testing.T) {
	// If p itself has a self-loop at the projected state, infinite
	// stuttering in p' is the projection of a legal computation of p.
	base := state.MustSchema(state.IntVar("x", 2))
	ext := state.MustSchema(state.IntVar("x", 2), state.BoolVar("log"))
	loop := guarded.Det("loop", state.True, func(s state.State) state.State { return s })
	p := guarded.MustProgram("p", base, loop)
	spin := guarded.MustProgram("spin", ext, guarded.Det("toggle", state.True,
		func(s state.State) state.State { return s.WithBool(1, !s.Bool(1)) }))
	if err := CheckRefines(spin, p, state.True); err != nil {
		t.Errorf("stuttering against a self-looping p should refine: %v", err)
	}
}

func TestCheckLeadsTo(t *testing.T) {
	p := counter(t, 5, inc(5))
	g, err := explore.Build(p, state.True, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	from := g.All()
	if err := CheckLeadsTo(g, from, LeadsTo{Name: "t", P: atLeast(1), Q: atLeast(3)}); err != nil {
		t.Errorf("x≥1 ~> x≥3 holds: %v", err)
	}
	if err := CheckLeadsTo(g, from, LeadsTo{Name: "t", P: atLeast(1), Q: state.False}); err == nil {
		t.Error("x≥1 ~> false must fail")
	}
}
