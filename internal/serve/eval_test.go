package serve

import (
	"context"
	"strings"
	"testing"

	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// TestEvalCorpus pins the ground-truth verdict of every corpus item: the
// swarm and parity suites lean on these verdicts, so they are established
// here first, serially and without any server in the way.
func TestEvalCorpus(t *testing.T) {
	for _, item := range corpus.Items() {
		t.Run(item.Name, func(t *testing.T) {
			f, err := compile(item.Request.Program)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			resp, err := Eval(context.Background(), f, item.Request)
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if resp.Verdict != item.Verdict {
				t.Errorf("verdict = %s (detail %q), want %s", resp.Verdict, resp.Detail, item.Verdict)
			}
			if resp.Check != item.Request.Check {
				t.Errorf("check echo = %q, want %q", resp.Check, item.Request.Check)
			}
		})
	}
}

func TestEvalDeadlockWitness(t *testing.T) {
	f, err := compile(corpus.Countdown)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Eval(context.Background(), f, api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock, From: "Top"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Detail != "deadlock reached in 3 steps" {
		t.Errorf("detail = %q", resp.Detail)
	}
	if len(resp.Witness) != 4 || !strings.Contains(resp.Witness[3], "x=0") {
		t.Errorf("witness = %v, want 4 states ending at x=0", resp.Witness)
	}
}

func TestEvalUsageErrors(t *testing.T) {
	f, err := compile(corpus.Ring3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []api.Request{
		{Program: corpus.Ring3, Check: "bogus"},
		{Program: corpus.Ring3, Check: api.CheckClosure},                           // missing invariant
		{Program: corpus.Ring3, Check: api.CheckClosure, Invariant: "Nope"},        // unknown predicate
		{Program: corpus.Ring3, Check: api.CheckDetects, Z: "Legit", X: "Missing"}, // unknown x
		{Program: corpus.Ring3, Check: api.CheckCorrects, Z: "Legit", X: "Legit", Tolerant: "sometimes"},
	}
	for _, req := range cases {
		_, err := Eval(context.Background(), f, req)
		var ue *UsageError
		if err == nil || !asUsage(err, &ue) {
			t.Errorf("Eval(%+v) err = %v, want *UsageError", req, err)
		}
	}
}

func TestEvalCancelled(t *testing.T) {
	f, err := compile(corpus.Ring3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A deadlock hunt must explore (no proof fast path), so a dead context
	// is always observed.
	if _, err := Eval(ctx, f, api.Request{Program: corpus.Ring3, Check: api.CheckDeadlock}); !isCancellation(err) {
		t.Errorf("Eval under cancelled ctx = %v, want cancellation", err)
	}
}

func TestRegistryLoadErrors(t *testing.T) {
	r := newRegistry(4)
	if _, err := r.load("program broken\nvar x"); err == nil {
		t.Error("parse error should fail load")
	} else if le, ok := err.(*LoadError); !ok || le.Stage != "parse" {
		t.Errorf("load error = %v, want parse-stage LoadError", err)
	}
	if r.resident() != 0 {
		t.Errorf("failed load cached: resident = %d", r.resident())
	}
	f1, err := r.load(corpus.Ring3)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := r.load(corpus.Ring3)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("identical source compiled twice: registry dedup broken")
	}
	if r.resident() != 1 {
		t.Errorf("resident = %d, want 1", r.resident())
	}
}

func asUsage(err error, target **UsageError) bool {
	for err != nil {
		if ue, ok := err.(*UsageError); ok {
			*target = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
