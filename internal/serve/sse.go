package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"detcorr/internal/serve/api"
)

// The SSE transport streams one verdict as Server-Sent Events: "progress"
// events as the request moves through admission, ":keepalive" comments
// while a long exploration runs, then a final "verdict" event whose data is
// the api.Response (compact, single line) followed by an "exit" event with
// the dctl exit code — or an "error" event carrying the HTTP status the
// plain transport would have used. Clients opt in with
// Accept: text/event-stream.

func isSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

const sseKeepalive = 5 * time.Second

type sseEvent struct {
	name string
	data string
}

// compactJSON renders v as single-line JSON without HTML escaping — the
// same bytes api.Encode would produce, minus indentation, so SSE payloads
// stay field-for-field identical to the plain transport.
func compactJSON(v any) string {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return `{"error":"encode failure"}`
	}
	return strings.TrimRight(b.String(), "\n")
}

func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, req api.Request, tenant string, start time.Time) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("serve: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// The evaluation runs on its own goroutine and feeds pre-rendered
	// events through the channel; only this goroutine touches w, so the
	// keepalive ticker cannot race a progress event.
	events := make(chan sseEvent, 8)
	go func() {
		defer close(events)
		resp, cacheState, err := s.verdict(r.Context(), req, tenant, func(stage string) {
			events <- sseEvent{"progress", fmt.Sprintf(`{"stage":%q}`, stage)}
		})
		if err != nil {
			if isCancellation(err) && r.Context().Err() != nil {
				return // the client is gone; nobody is listening
			}
			status := classify(err)
			s.met.observe(status, "", 0)
			events <- sseEvent{"error", compactJSON(api.Error{Error: err.Error()})}
			events <- sseEvent{"status", fmt.Sprintf("%d", status)}
			return
		}
		s.met.observe(http.StatusOK, cacheState, time.Since(start))
		events <- sseEvent{"verdict", compactJSON(resp)}
		events <- sseEvent{"exit", fmt.Sprintf(`{"exit":%d,"cache":%q}`, resp.ExitCode(), cacheState)}
	}()

	ticker := time.NewTicker(sseKeepalive)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			flusher.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ":keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// classify maps a verdict-pipeline error to the HTTP status the plain
// transport uses: the two transports must agree on the taxonomy.
func classify(err error) int {
	var ue *UsageError
	var le *LoadError
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errSaturated):
		return http.StatusTooManyRequests
	case errors.As(err, &ue):
		return http.StatusBadRequest
	case errors.As(err, &le):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}
