package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
	"detcorr/internal/serve/api"
)

// verdictCache memoizes whole verdicts keyed by the full request hash. It
// sits above the graph cache: a hit here skips not just the state-space
// build but the check itself. Entries are immutable *api.Response values
// shared between requesters, so handlers must never mutate a response after
// publishing it.
type verdictCache struct {
	mu  sync.Mutex
	max int
	lru *list.List // of *verdictEntry; front = most recently used
	by  map[[sha256.Size]byte]*list.Element
}

type verdictEntry struct {
	key  [sha256.Size]byte
	req  api.Request // the question, kept so revisions can re-key survivors
	resp *api.Response
}

func newVerdictCache(max int) *verdictCache {
	return &verdictCache{max: max, lru: list.New(), by: map[[sha256.Size]byte]*list.Element{}}
}

func (c *verdictCache) get(key [sha256.Size]byte) (*api.Response, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.by[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*verdictEntry).resp, true
}

func (c *verdictCache) put(key [sha256.Size]byte, req api.Request, resp *api.Response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.by[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*verdictEntry).resp = resp
		return
	}
	c.by[key] = c.lru.PushFront(&verdictEntry{key: key, req: req, resp: resp})
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.by, back.Value.(*verdictEntry).key)
	}
}

// migrate re-keys every cached verdict about oldSrc that keep approves onto
// the same question about newSrc, leaving the old entries in place (they
// still answer the old source correctly and age out like any other entry).
// It reports how many survived and how many the edit invalidated.
func (c *verdictCache) migrate(oldSrc, newSrc string, keep func(req api.Request, resp *api.Response) bool) (preserved, invalidated int) {
	if c.max <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	var moved []*verdictEntry
	for _, el := range c.by {
		e := el.Value.(*verdictEntry)
		if e.req.Program == oldSrc {
			moved = append(moved, e)
		}
	}
	c.mu.Unlock()
	for _, e := range moved {
		if !keep(e.req, e.resp) {
			invalidated++
			continue
		}
		req := e.req
		req.Program = newSrc
		c.put(requestKey(req), req, e.resp)
		preserved++
	}
	return preserved, invalidated
}

// tenantState is one tenant's view of the graph cache: the programs their
// requests have touched, most recent first.
type tenantState struct {
	lru *list.List // of *gcl.File; front = most recently used
	by  map[*gcl.File]*list.Element
}

// chargeTenant records that tenant's latest verdict used file, then
// enforces the per-tenant budget: while the states resident for the
// tenant's programs exceed it, the tenant's least-recently-used programs
// are evicted from the exploration cache. The program just used is never
// the victim — a tenant whose single working set exceeds the budget keeps
// exactly that working set, and merely loses the benefit of history.
//
// Because graphs are shared across tenants, a build for one tenant can
// re-inflate the resident count of every other tenant holding the same
// program — after *their* last charge. Enforcing only the charging
// tenant would therefore leave quiescent tenants over budget. Instead
// every charge re-enforces every tenant: the final charge necessarily
// happens after the final build, so at quiescence all tenants are within
// budget (or down to the one protected program).
func (s *Server) chargeTenant(tenant string, file *gcl.File) {
	if s.cfg.TenantBudget <= 0 || file == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[tenant]
	if t == nil {
		t = &tenantState{lru: list.New(), by: map[*gcl.File]*list.Element{}}
		s.tenants[tenant] = t
	}
	if el, ok := t.by[file]; ok {
		t.lru.MoveToFront(el)
	} else {
		t.by[file] = t.lru.PushFront(file)
	}
	for _, ts := range s.tenants {
		s.enforceLocked(ts, file)
	}
}

// enforceLocked evicts t's least-recently-used programs from the
// exploration cache until the tenant's resident states fit the budget,
// sparing the protected (just-used) program so a fresh build is never
// discarded by its own completion. Caller holds s.mu.
func (s *Server) enforceLocked(t *tenantState, protect *gcl.File) {
	usage := 0
	for el := t.lru.Front(); el != nil; el = el.Next() {
		usage += explore.ResidentOf(el.Value.(*gcl.File).Program)
	}
	for usage > s.cfg.TenantBudget && t.lru.Len() > 1 {
		el := t.lru.Back()
		if el.Value.(*gcl.File) == protect {
			el = el.Prev()
		}
		if el == nil {
			break
		}
		victim := el.Value.(*gcl.File)
		usage -= explore.EvictProgram(victim.Program)
		t.lru.Remove(el)
		delete(t.by, victim)
		s.met.tenantEvictions.Add(1)
	}
}
