package serve

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"detcorr/internal/explore"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/lint"
	"detcorr/internal/prove"
)

// The registry maps program source (by content hash) to its compiled form,
// so every request carrying the same GCL text evaluates against the same
// *guarded.Program pointer. That identity is what makes the downstream
// caches compose: the explore graph cache, the kernel memo, and the prover
// certification registry all key on the program pointer, so two clients
// POSTing identical sources coalesce into one graph build even though each
// request re-sends the full text.

// LoadError reports why a source failed to load. Stage is "parse", "lint",
// or "compile"; all three map to HTTP 422 (the request was understood but
// the program is unprocessable).
type LoadError struct {
	Stage string
	Err   error
}

func (e *LoadError) Error() string { return fmt.Sprintf("%s: %v", e.Stage, e.Err) }
func (e *LoadError) Unwrap() error { return e.Err }

type progEntry struct {
	hash  [sha256.Size]byte
	ready chan struct{} // closed when file/err are set
	file  *gcl.File
	err   error
	elem  *list.Element // non-nil while resident in the LRU
}

type registry struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*progEntry
	lru     *list.List // of *progEntry; front = most recently used
	cap     int
}

func newRegistry(capacity int) *registry {
	return &registry{
		entries: map[[sha256.Size]byte]*progEntry{},
		lru:     list.New(),
		cap:     capacity,
	}
}

// load returns the compiled file for src, compiling it at most once per
// resident hash and coalescing concurrent identical loads. Failed loads are
// never cached — the next request retries, mirroring the graph cache's
// no-poisoning rule. Evicting a program beyond the capacity also evicts its
// graphs from the process-wide exploration cache: a program the registry no
// longer remembers must not pin state-space memory.
func (r *registry) load(src string) (*gcl.File, error) {
	hash := sha256.Sum256([]byte(src))
	for {
		r.mu.Lock()
		if e, found := r.entries[hash]; found {
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
				r.mu.Unlock()
				return e.file, nil
			}
			r.mu.Unlock()
			<-e.ready
			if e.err != nil {
				return nil, e.err
			}
			// The builder finished between our check and the wait; go
			// around to take the resident path (and the LRU touch).
			continue
		}
		e := &progEntry{hash: hash, ready: make(chan struct{})}
		r.entries[hash] = e
		r.mu.Unlock()

		file, err := compile(src)
		r.mu.Lock()
		if err != nil {
			delete(r.entries, hash)
		} else {
			e.file = file
			e.elem = r.lru.PushFront(e)
			for r.cap > 0 && r.lru.Len() > r.cap {
				back := r.lru.Back()
				if back == nil || back.Value.(*progEntry) == e {
					break
				}
				victim := back.Value.(*progEntry)
				r.lru.Remove(back)
				victim.elem = nil
				delete(r.entries, victim.hash)
				explore.EvictProgram(victim.file.Program)
			}
		}
		r.mu.Unlock()
		e.err = err
		close(e.ready)
		return file, err
	}
}

// resident reports the number of programs currently cached.
func (r *registry) resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// LoadSource compiles GCL source through exactly the pipeline the server
// uses for request bodies: parse, lint (error-severity findings abort with
// a *LoadError), compile, certify. The dctl verdict subcommand calls this —
// not its own loader — so a verdict computed at the command line goes
// through the same gates as one served over HTTP.
func LoadSource(src string) (*gcl.File, error) { return compile(src) }

// compile runs the same pipeline as dctl's loadFile, minus the filesystem:
// parse, lint (error-severity findings abort), compile, certify.
func compile(src string) (*gcl.File, error) {
	ast, err := gcl.Parse(src)
	if err != nil {
		return nil, &LoadError{Stage: "parse", Err: err}
	}
	diags := lint.Analyze("request.gcl", ast, src)
	if err := lint.Errors(diags); err != nil {
		return nil, &LoadError{Stage: "lint", Err: err}
	}
	f, err := gcl.Compile(ast)
	if err != nil {
		return nil, &LoadError{Stage: "compile", Err: err}
	}
	f.Src = src
	// Certification is best-effort, exactly as in dctl: when the prover can
	// re-derive the system, closure and component checks consult it first,
	// and the cone-of-influence slicer gets a shot before any full build.
	_ = prove.Certify(f)
	_ = flow.Certify(f)
	return f, nil
}
