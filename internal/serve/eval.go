// Package serve wraps the full checker pipeline — closure, detector and
// corrector conditions, convergence, deadlock hunts, and the exploration-
// free provers — behind the verdict protocol of internal/serve/api, and
// hosts it as a long-running HTTP daemon (Server). The evaluation entry
// point Eval is deliberately a plain function over a compiled file: the
// dcserved handler and the dctl verdict subcommand both call it, so a
// verdict served over HTTP is computed by exactly the code that computes it
// at the command line, and the byte-parity tests can compare the two
// transports verbatim.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/prove"
	"detcorr/internal/serve/api"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// UsageError marks a request that is well-formed JSON but asks a malformed
// question: an unknown check, a missing required field, a predicate name
// the program does not declare. It maps to HTTP 400 and dctl exit code 2.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

func usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// pred resolves a predicate by declared name; empty and "true" mean the
// constant true predicate, mirroring the dctl flag convention.
func pred(f *gcl.File, name, field string) (state.Predicate, error) {
	if name == "" || name == "true" {
		return state.True, nil
	}
	p, ok := f.Pred(name)
	if !ok {
		return state.Predicate{}, usagef("%s: no predicate %q declared in the program", field, name)
	}
	return p, nil
}

func parseKind(s string) (fault.Kind, error) {
	switch s {
	case "failsafe", "fail-safe":
		return fault.FailSafe, nil
	case "nonmasking":
		return fault.Nonmasking, nil
	case "masking":
		return fault.Masking, nil
	default:
		return 0, usagef("tolerant: unknown tolerance kind %q (want failsafe, nonmasking, or masking)", s)
	}
}

// Eval computes the verdict for req against the compiled file f. The
// returned error is nil whenever a verdict was reached — a failing property
// is a verdict (api.VerdictFails), not an error. Non-nil errors are either
// *UsageError (the request asks a malformed question), a context
// cancellation (the caller walked away mid-exploration), or an exploration
// failure such as explore.ErrStateBound.
//
// Eval is safe for concurrent use with any receiver-free checker state:
// everything mutable it touches is either per-call or behind the explore
// package's own synchronization.
func Eval(ctx context.Context, f *gcl.File, req api.Request) (*api.Response, error) {
	if err := req.Validate(); err != nil {
		return nil, &UsageError{Err: err}
	}
	resp := &api.Response{Check: req.Check, Program: f.Name}
	switch req.Check {
	case api.CheckClosure:
		return evalClosure(ctx, f, req, resp)
	case api.CheckDetects, api.CheckCorrects:
		return evalComponent(ctx, f, req, resp)
	case api.CheckConvergence:
		return evalConvergence(ctx, f, req, resp)
	case api.CheckDeadlock:
		return evalDeadlock(ctx, f, req, resp)
	case api.CheckProve:
		return evalProve(ctx, f, req, resp)
	}
	return nil, usagef("check: unknown check %q", req.Check)
}

// fail records a failing verdict unless err is the caller's own
// cancellation, which is never a verdict.
func fail(ctx context.Context, resp *api.Response, err error) (*api.Response, error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	resp.Verdict = api.VerdictFails
	resp.Detail = err.Error()
	return resp, nil
}

// isCancellation reports whether err stems from a context ending.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// isVerdictErr distinguishes a property violation — which is a fails
// verdict, evidence and all — from an operational failure (state bound
// exceeded, unindexable schema) that no verdict can be built from.
func isVerdictErr(err error) bool {
	var cv *spec.ClosureViolation
	var lv *explore.LivenessViolation
	var ce *core.ConditionError
	return errors.As(err, &cv) || errors.As(err, &lv) || errors.As(err, &ce)
}

func evalClosure(ctx context.Context, f *gcl.File, req api.Request, resp *api.Response) (*api.Response, error) {
	s, err := pred(f, req.Invariant, "invariant")
	if err != nil {
		return nil, err
	}
	if err := spec.CheckClosedCtx(ctx, f.Program, s); err != nil {
		if !isVerdictErr(err) {
			return nil, err
		}
		return fail(ctx, resp, err)
	}
	resp.Verdict = api.VerdictHolds
	return resp, nil
}

func evalComponent(ctx context.Context, f *gcl.File, req api.Request, resp *api.Response) (*api.Response, error) {
	z, err := pred(f, req.Z, "z")
	if err != nil {
		return nil, err
	}
	x, err := pred(f, req.X, "x")
	if err != nil {
		return nil, err
	}
	u, err := pred(f, req.From, "from")
	if err != nil {
		return nil, err
	}
	var check func(context.Context) error
	var tolerant func(context.Context, fault.Kind) error
	if req.Check == api.CheckDetects {
		d := core.Detector{Name: f.Name, D: f.Program, Z: z, X: x, U: u}
		check = d.CheckCtx
		tolerant = func(ctx context.Context, k fault.Kind) error { return d.CheckFTolerantCtx(ctx, f.Faults, k) }
	} else {
		c := core.Corrector{Name: f.Name, C: f.Program, Z: z, X: x, U: u}
		check = c.CheckCtx
		tolerant = func(ctx context.Context, k fault.Kind) error { return c.CheckFTolerantCtx(ctx, f.Faults, k) }
	}
	if err := check(ctx); err != nil {
		if !isVerdictErr(err) {
			return nil, err
		}
		return fail(ctx, resp, err)
	}
	if req.Tolerant != "" {
		kind, err := parseKind(req.Tolerant)
		if err != nil {
			return nil, err
		}
		if err := tolerant(ctx, kind); err != nil {
			if !isVerdictErr(err) {
				return nil, err
			}
			return fail(ctx, resp, fmt.Errorf("%s-tolerant: %w", kind, err))
		}
	}
	resp.Verdict = api.VerdictHolds
	return resp, nil
}

func evalConvergence(ctx context.Context, f *gcl.File, req api.Request, resp *api.Response) (*api.Response, error) {
	s, err := pred(f, req.Invariant, "invariant")
	if err != nil {
		return nil, err
	}
	r, err := pred(f, req.Goal, "goal")
	if err != nil {
		return nil, err
	}
	if err := spec.CheckConvergesCtx(ctx, f.Program, s, r); err != nil {
		if !isVerdictErr(err) {
			return nil, err
		}
		return fail(ctx, resp, err)
	}
	resp.Verdict = api.VerdictHolds
	return resp, nil
}

func evalDeadlock(ctx context.Context, f *gcl.File, req api.Request, resp *api.Response) (*api.Response, error) {
	from, err := pred(f, req.From, "from")
	if err != nil {
		return nil, err
	}
	prog := f.Program
	var fairMask []bool
	if req.Faults && !f.Faults.Empty() {
		if prog, fairMask, err = fault.Compose(f.Program, f.Faults); err != nil {
			return nil, err
		}
	}
	trace, found, err := explore.FindDeadlockCtx(ctx, prog, from, explore.ScanOptions{Fair: fairMask, MaxStates: req.MaxStates})
	if err != nil {
		return nil, err
	}
	if !found {
		resp.Verdict = api.VerdictDeadlockFree
		return resp, nil
	}
	resp.Verdict = api.VerdictDeadlock
	resp.Detail = fmt.Sprintf("deadlock reached in %d steps", len(trace)-1)
	for _, s := range trace {
		resp.Witness = append(resp.Witness, s.String())
	}
	return resp, nil
}

func evalProve(ctx context.Context, f *gcl.File, req api.Request, resp *api.Response) (*api.Response, error) {
	if f.AST == nil {
		return nil, usagef("prove: the compiled file carries no AST")
	}
	// A fresh System per evaluation: System is not safe for concurrent use,
	// and deriving one is an AST walk — far cheaper than serializing every
	// prove verdict behind one shared instance.
	sys, err := prove.NewSystem(f.AST)
	if err != nil {
		return nil, usagef("prove: %v", err)
	}
	u := req.From
	if u == "" {
		u = "true"
	}
	var reports []*prove.Report
	if req.Invariant != "" {
		rep, err := prove.ProveClosureCtx(ctx, sys, req.Invariant)
		if err != nil {
			return nil, proveErr(err)
		}
		reports = append(reports, rep)
		if req.Span != "" {
			span := req.Span
			if span == "auto" {
				span = ""
			}
			rep, err := prove.ProveSpanClosureCtx(ctx, sys, req.Invariant, span)
			if err != nil {
				return nil, proveErr(err)
			}
			reports = append(reports, rep)
		}
	}
	if req.Z != "" {
		rep, err := prove.ProveSafenessCtx(ctx, sys, u, req.Z, req.X)
		if err != nil {
			return nil, proveErr(err)
		}
		reports = append(reports, rep)
	}
	if req.Goal != "" {
		var rank []gcl.Expr
		if req.Rank != "" {
			for _, part := range strings.Split(req.Rank, ",") {
				e, err := gcl.ParseExpr(strings.TrimSpace(part))
				if err != nil {
					return nil, usagef("rank: %v", err)
				}
				rank = append(rank, e)
			}
		}
		rep, err := prove.ProveConvergenceCtx(ctx, sys, u, req.Goal, rank)
		if err != nil {
			return nil, proveErr(err)
		}
		reports = append(reports, rep)
	}
	resp.Reports = reports
	worst := prove.Proved
	for _, rep := range reports {
		if rep.Verdict == prove.Disproved {
			worst = prove.Disproved
			break
		}
		if rep.Verdict == prove.Unknown {
			worst = prove.Unknown
		}
	}
	switch worst {
	case prove.Disproved:
		resp.Verdict = api.VerdictDisproved
	case prove.Unknown:
		resp.Verdict = api.VerdictUnknown
	default:
		resp.Verdict = api.VerdictProved
	}
	return resp, nil
}

// proveErr classifies an error from a prover entry point: cancellation
// passes through, anything else (an unknown predicate name, a bad rank
// component) is the requester's usage error.
func proveErr(err error) error {
	if isCancellation(err) {
		return err
	}
	return &UsageError{Err: err}
}
