package serve

import (
	"detcorr/internal/explore"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/serve/api"
	"detcorr/internal/state"
)

// ReviseReport is what one revision submission did to the resident caches:
// the semantic impact of the edit, how each cached graph of the old
// revision was carried over, and how many memoized verdicts survived.
type ReviseReport struct {
	Impact *flow.Impact `json:"impact"`
	// Graph accounting (the old revision's resident graphs).
	GraphsRebound  int `json:"graphs_rebound"`
	GraphsRepaired int `json:"graphs_repaired"`
	GraphsRebuilt  int `json:"graphs_rebuilt"`
	// Verdict accounting (the old revision's memoized verdicts).
	VerdictsPreserved   int `json:"verdicts_preserved"`
	VerdictsInvalidated int `json:"verdicts_invalidated"`
}

// Preservable reports whether a memoized verdict for req provably holds
// verbatim for the edited revision described by plan and im — the keyed
// invalidation rule shared by the dcserved verdict cache and dctl watch.
//
// Only passing verdicts (exit code 0) are preserved: they carry no witness
// payload, so byte-identity reduces to the verdict being semantically
// unchanged. Failing verdicts embed witness states and action names whose
// rendering a re-check must reproduce, so they are always re-checked.
//
// The per-check rules lean on two facts. First, a predicate outside
// im.AffectedPreds has an unchanged cone-of-influence slice, and every
// per-predicate check (closure, convergence, detects/corrects without
// fault tolerance) is a function of its predicates' joint slice — which is
// unchanged when each predicate's slice is (an action in the joint cone
// writes some single predicate's cone, so any change to it shows in that
// predicate's slice). Second, checks repair cannot decompose — fault
// tolerance, prove — are preserved only when the whole file is
// semantically unchanged. Deadlock hunts read the full graph, so they
// need the plan to be an identity on actions.
func Preservable(req api.Request, resp *api.Response, plan *flow.Plan, im *flow.Impact, newFile *gcl.File) bool {
	if resp == nil || resp.ExitCode() != 0 || plan == nil || im == nil || newFile == nil {
		return false
	}
	// The response echoes the declared program name.
	if !plan.SameName {
		return false
	}
	affected := map[string]bool{}
	for _, n := range im.AffectedPreds {
		affected[n] = true
	}
	// predOK: the named predicate's verdict contribution is unchanged — it
	// is the constant true, or it still exists (AffectedPreds lists only
	// new-revision predicates, so a removed one is absent, not affected)
	// and its slice is untouched.
	predOK := func(name string) bool {
		if name == "" || name == "true" {
			return true
		}
		if _, ok := newFile.Pred(name); !ok {
			return false
		}
		return !affected[name]
	}
	// A bounded exploration passes only if the graph fits the bound, and
	// slices of an unaffected predicate say nothing about the full graph's
	// size — only an identity edit keeps the bound's outcome.
	if req.MaxStates != 0 && !plan.Identity() {
		return false
	}
	switch req.Check {
	case api.CheckClosure:
		return predOK(req.Invariant)
	case api.CheckConvergence:
		return predOK(req.Invariant) && predOK(req.Goal)
	case api.CheckDetects, api.CheckCorrects:
		if req.Tolerant != "" {
			// Fault-tolerant component checks compose the fault class;
			// nothing short of a semantically unchanged file preserves them.
			return plan.FileUnchanged()
		}
		return predOK(req.Z) && predOK(req.X) && predOK(req.From)
	case api.CheckDeadlock:
		if plan.Graph == nil || !plan.Identity() {
			return false
		}
		if req.Faults && !plan.SameFaults {
			return false
		}
		return req.From == "" || req.From == "true" || plan.SamePreds[req.From]
	case api.CheckProve:
		return plan.FileUnchanged()
	}
	return false
}

// Advance migrates every resident artifact of the old revision onto the
// new one: cached exploration graphs are rebound (identity edits) or
// repaired in place of rebuilt, and memoized verdicts that Preservable
// approves are re-keyed under the new source. Both files must already be
// compiled; the caller decides how they load.
func (s *Server) Advance(old, new *gcl.File) *ReviseReport {
	plan := flow.PlanRepair(old.AST, new.AST)
	im := flow.AffectedBy(old.AST, new.AST)
	rep := &ReviseReport{Impact: im}

	resolve := func(initName string) (state.Predicate, bool) {
		if initName == state.True.String() {
			return state.True, true
		}
		if plan.SamePreds[initName] {
			if p, ok := old.Pred(initName); ok {
				return p, true
			}
		}
		return state.Predicate{}, false
	}
	st := explore.MigrateProgram(old.Program, new.Program, plan.Graph, resolve)
	rep.GraphsRebound, rep.GraphsRepaired, rep.GraphsRebuilt = st.Rebound, st.Repaired, st.Dropped

	rep.VerdictsPreserved, rep.VerdictsInvalidated = s.verdicts.migrate(
		old.Src, new.Src,
		func(req api.Request, resp *api.Response) bool {
			return Preservable(req, resp, plan, im, new)
		})

	s.met.graphsRebound.Add(int64(rep.GraphsRebound))
	s.met.graphsRepaired.Add(int64(rep.GraphsRepaired))
	s.met.graphsRebuilt.Add(int64(rep.GraphsRebuilt))
	s.met.verdictsPreserved.Add(int64(rep.VerdictsPreserved))
	s.met.verdictsInvalidated.Add(int64(rep.VerdictsInvalidated))
	return rep
}
