package api

import (
	"encoding/json"
	"strings"
	"testing"

	"detcorr/internal/prove"
)

// The golden strings below pin the wire schema byte-for-byte. A renamed or
// re-typed field, a changed tag, or a different encoder configuration fails
// here before it can silently fork the protocol between dcserved and dctl.

const goldenRequest = `{
  "program": "program p\nvar x: 0..2\ninit Legit: x == 0\naction a: x < 2 -> x = x + 1",
  "check": "detects",
  "invariant": "Legit",
  "goal": "Done",
  "z": "Z",
  "x": "X",
  "from": "U",
  "span": "T",
  "rank": "2-x",
  "tolerant": "masking",
  "faults": true,
  "max_states": 4096
}
`

const goldenResponse = `{
  "check": "prove",
  "program": "ring3",
  "verdict": "disproved",
  "detail": "closure of Legit violated",
  "witness": [
    "(x=0)",
    "(x=1)"
  ],
  "reports": [
    {
      "code": "DC100",
      "subject": "closure of Legit under the program actions",
      "verdict": "disproved",
      "actions": [
        {
          "action": "move0",
          "verdict": "disproved",
          "counterexample": "x=1",
          "note": "exact enumeration"
        }
      ],
      "span": [
        "x in [0..2]"
      ],
      "rank": [
        "2-x"
      ],
      "notes": [
        "a note"
      ]
    }
  ]
}
`

func TestRequestGolden(t *testing.T) {
	req := Request{
		Program:   "program p\nvar x: 0..2\ninit Legit: x == 0\naction a: x < 2 -> x = x + 1",
		Check:     CheckDetects,
		Invariant: "Legit",
		Goal:      "Done",
		Z:         "Z",
		X:         "X",
		From:      "U",
		Span:      "T",
		Rank:      "2-x",
		Tolerant:  "masking",
		Faults:    true,
		MaxStates: 4096,
	}
	var b strings.Builder
	if err := Encode(&b, req); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenRequest {
		t.Errorf("request wire schema drifted:\ngot:\n%s\nwant:\n%s", b.String(), goldenRequest)
	}
	var back Request
	if err := json.Unmarshal([]byte(goldenRequest), &back); err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Errorf("request round-trip: got %+v, want %+v", back, req)
	}
}

func TestResponseGolden(t *testing.T) {
	resp := Response{
		Check:   CheckProve,
		Program: "ring3",
		Verdict: VerdictDisproved,
		Detail:  "closure of Legit violated",
		Witness: []string{"(x=0)", "(x=1)"},
		Reports: []*prove.Report{{
			Code:    prove.CodeClosure,
			Subject: "closure of Legit under the program actions",
			Verdict: prove.Disproved,
			Actions: []prove.ActionResult{{
				Action:         "move0",
				Verdict:        prove.Disproved,
				Counterexample: "x=1",
				Note:           "exact enumeration",
			}},
			Span:  []string{"x in [0..2]"},
			Rank:  []string{"2-x"},
			Notes: []string{"a note"},
		}},
	}
	var b strings.Builder
	if err := Encode(&b, resp); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenResponse {
		t.Errorf("response wire schema drifted:\ngot:\n%s\nwant:\n%s", b.String(), goldenResponse)
	}
}

func TestOptionalFieldsOmitted(t *testing.T) {
	var b strings.Builder
	if err := Encode(&b, Request{Program: "p", Check: CheckDeadlock}); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"program\": \"p\",\n  \"check\": \"deadlock\"\n}\n"
	if b.String() != want {
		t.Errorf("minimal request: got %q, want %q", b.String(), want)
	}
	b.Reset()
	if err := Encode(&b, Response{Check: CheckClosure, Program: "p", Verdict: VerdictHolds}); err != nil {
		t.Fatal(err)
	}
	want = "{\n  \"check\": \"closure\",\n  \"program\": \"p\",\n  \"verdict\": \"holds\"\n}\n"
	if b.String() != want {
		t.Errorf("minimal response: got %q, want %q", b.String(), want)
	}
}

func TestExitCode(t *testing.T) {
	cases := map[string]int{
		VerdictHolds:        0,
		VerdictDeadlockFree: 0,
		VerdictProved:       0,
		VerdictFails:        1,
		VerdictDeadlock:     1,
		VerdictDisproved:    1,
		VerdictUnknown:      4,
	}
	for v, want := range cases {
		if got := (&Response{Verdict: v}).ExitCode(); got != want {
			t.Errorf("ExitCode(%s) = %d, want %d", v, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := []Request{
		{Program: "p", Check: CheckClosure, Invariant: "S"},
		{Program: "p", Check: CheckDetects, Z: "Z", X: "X"},
		{Program: "p", Check: CheckCorrects, Z: "Z", X: "X", Tolerant: "masking"},
		{Program: "p", Check: CheckConvergence, Invariant: "S", Goal: "R"},
		{Program: "p", Check: CheckDeadlock},
		{Program: "p", Check: CheckProve, Invariant: "S", Span: "auto"},
		{Program: "p", Check: CheckProve, Z: "Z", X: "X"},
		{Program: "p", Check: CheckProve, Goal: "R"},
	}
	for _, r := range ok {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", r, err)
		}
	}
	bad := []Request{
		{},
		{Program: "p"},
		{Program: "p", Check: "frobnicate"},
		{Check: CheckDeadlock},
		{Program: "p", Check: CheckClosure},
		{Program: "p", Check: CheckDetects, Z: "Z"},
		{Program: "p", Check: CheckDetects, Z: "Z", X: "X", Tolerant: "sometimes"},
		{Program: "p", Check: CheckConvergence, Invariant: "S"},
		{Program: "p", Check: CheckProve},
		{Program: "p", Check: CheckProve, Invariant: "S", X: "X"},
		{Program: "p", Check: CheckProve, Span: "T"},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", r)
		}
	}
}
