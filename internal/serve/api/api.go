// Package api defines the verdict wire protocol shared by the dcserved
// daemon, the dctl verdict subcommand, and the dcbench swarm driver. One
// request names a GCL program and a property; one response carries the
// verdict with its witness. Keeping the types (and the canonical encoding)
// in one package is what makes the byte-parity contract checkable: dcserved
// response bodies and dctl verdict stdout are produced by the same structs
// through the same encoder, so any drift is a compile error or a golden
// test failure, never a silent schema fork.
package api

import (
	"encoding/json"
	"fmt"
	"io"

	"detcorr/internal/prove"
)

// Check names for Request.Check, one per property the service decides.
const (
	CheckClosure     = "closure"     // invariant closure (spec.CheckClosed)
	CheckDetects     = "detects"     // detector conditions (core.Detector)
	CheckCorrects    = "corrects"    // corrector conditions (core.Corrector)
	CheckConvergence = "convergence" // S converges to R (spec.CheckConverges)
	CheckDeadlock    = "deadlock"    // reachable-deadlock hunt
	CheckProve       = "prove"       // exploration-free proof (DC100-DC103)
)

// Checks lists every valid Request.Check value, in documentation order.
func Checks() []string {
	return []string{CheckClosure, CheckDetects, CheckCorrects, CheckConvergence, CheckDeadlock, CheckProve}
}

// Verdict strings for Response.Verdict.
const (
	VerdictHolds        = "holds"         // the property holds
	VerdictFails        = "fails"         // the property fails (Detail explains)
	VerdictDeadlockFree = "deadlock-free" // no reachable deadlock
	VerdictDeadlock     = "deadlock"      // a deadlock was reached (Witness traces it)
	VerdictProved       = "proved"        // every proof obligation discharged
	VerdictDisproved    = "disproved"     // some obligation has a concrete violation
	VerdictUnknown      = "unknown"       // inconclusive: fall back to exploration
)

// Request asks for one verdict about one program. Predicates are referred
// to by their declared names in the program source; empty optional
// predicates default to true, mirroring the dctl flags of the same names.
// The tenant identity deliberately stays out of the body (dcserved reads it
// from the X-DC-Tenant header): the request describes the verdict wanted,
// not who wants it, so identical questions from different tenants hash to
// the same deduplication key.
type Request struct {
	// Program is the full GCL source text.
	Program string `json:"program"`
	// Check selects the property: one of the Check* constants.
	Check string `json:"check"`
	// Invariant is the predicate S for closure, convergence, and prove.
	Invariant string `json:"invariant,omitempty"`
	// Goal is the target predicate: R for convergence, the -converge goal
	// for prove.
	Goal string `json:"goal,omitempty"`
	// Z and X are the witness and detection/correction predicates for
	// detects, corrects, and prove (DC102).
	Z string `json:"z,omitempty"`
	X string `json:"x,omitempty"`
	// From is the predicate U the relation is refined from (default true).
	From string `json:"from,omitempty"`
	// Span names the fault-span predicate for prove (DC101); "auto" infers
	// one from the invariant.
	Span string `json:"span,omitempty"`
	// Rank is a comma-separated lexicographic ranking function for prove
	// convergence (default: synthesize).
	Rank string `json:"rank,omitempty"`
	// Tolerant additionally checks detects/corrects as an F-tolerant
	// component: "failsafe", "nonmasking", or "masking".
	Tolerant string `json:"tolerant,omitempty"`
	// Faults composes the file's fault class into the deadlock hunt.
	Faults bool `json:"faults,omitempty"`
	// MaxStates bounds the exploration; 0 means unbounded.
	MaxStates int `json:"max_states,omitempty"`
}

// Response is one verdict. Exactly one of the Verdict* constants appears in
// Verdict; Detail, Witness, and Reports carry the check-specific evidence.
type Response struct {
	// Check and Program echo the request (Program is the program's declared
	// name, not its source).
	Check   string `json:"check"`
	Program string `json:"program"`
	// Verdict is one of the Verdict* constants.
	Verdict string `json:"verdict"`
	// Detail explains a fails verdict (the violated condition and witness
	// states) or annotates a deadlock verdict with the step count.
	Detail string `json:"detail,omitempty"`
	// Witness is the deadlock trace, one rendered state per step.
	Witness []string `json:"witness,omitempty"`
	// Reports are the prove reports, identical in shape to dctl prove -json.
	Reports []*prove.Report `json:"reports,omitempty"`
}

// ReviseRequest submits a source revision to POST /v1/revise: the daemon
// diffs the two sources, carries every cached graph of the old revision
// over by rebinding or edge-scoped repair, and re-keys each memoized
// verdict the edit provably cannot have changed. The response body is the
// serve.ReviseReport for the migration. Submitting a revision is an
// optimization, never a requirement: a client that skips it merely pays
// full rebuilds on its next verdicts.
type ReviseRequest struct {
	// Old and New are the full GCL sources of the two revisions.
	Old string `json:"old"`
	New string `json:"new"`
}

// Validate checks the revision's shape.
func (r *ReviseRequest) Validate() error {
	if r.Old == "" || r.New == "" {
		return fmt.Errorf("api: revise requires both old and new sources")
	}
	return nil
}

// Error is the JSON body of a non-verdict HTTP error response.
type Error struct {
	Error string `json:"error"`
}

// ExitCode maps a verdict to the dctl exit-code convention: 0 for holds,
// deadlock-free, and proved; 1 for fails, deadlock, and disproved; 4 for
// unknown (inconclusive — fall back to exploration).
func (r *Response) ExitCode() int {
	switch r.Verdict {
	case VerdictHolds, VerdictDeadlockFree, VerdictProved:
		return 0
	case VerdictUnknown:
		return 4
	default:
		return 1
	}
}

// Encode writes v in the canonical wire encoding: two-space-indented JSON
// with a trailing newline and no HTML escaping (GCL sources are full of ->
// and <, which must survive a round trip legibly). Every producer of
// protocol bytes — the dcserved response body, dctl verdict stdout — must
// go through this function; the byte-parity tests compare their outputs
// verbatim.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// Validate checks the request's shape without touching the program source:
// the check name is known and the check-specific required fields are
// present. Predicate-name resolution happens later, against the parsed
// program.
func (r *Request) Validate() error {
	if r.Program == "" {
		return fmt.Errorf("api: empty program")
	}
	switch r.Check {
	case CheckClosure:
		if r.Invariant == "" {
			return fmt.Errorf("api: closure requires invariant")
		}
	case CheckDetects, CheckCorrects:
		if r.Z == "" || r.X == "" {
			return fmt.Errorf("api: %s requires z and x", r.Check)
		}
		switch r.Tolerant {
		case "", "failsafe", "fail-safe", "nonmasking", "masking":
		default:
			return fmt.Errorf("api: unknown tolerance kind %q (want failsafe, nonmasking, or masking)", r.Tolerant)
		}
	case CheckConvergence:
		if r.Invariant == "" || r.Goal == "" {
			return fmt.Errorf("api: convergence requires invariant and goal")
		}
	case CheckDeadlock:
	case CheckProve:
		if r.Invariant == "" && r.Z == "" && r.Goal == "" {
			return fmt.Errorf("api: nothing to prove: give invariant, z/x, or goal")
		}
		if (r.Z == "") != (r.X == "") {
			return fmt.Errorf("api: z and x must be given together")
		}
		if r.Span != "" && r.Invariant == "" {
			return fmt.Errorf("api: span requires invariant")
		}
	case "":
		return fmt.Errorf("api: missing check (want one of %v)", Checks())
	default:
		return fmt.Errorf("api: unknown check %q (want one of %v)", r.Check, Checks())
	}
	return nil
}
