package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// post sends one verdict request and returns the response, fully read.
func post(t *testing.T, url string, req api.Request, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	var body bytes.Buffer
	if err := api.Encode(&body, req); err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/verdict", &body)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServerEndToEnd(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, item := range corpus.Items() {
		t.Run(item.Name, func(t *testing.T) {
			resp, body := post(t, ts.URL, item.Request, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			var v api.Response
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if v.Verdict != item.Verdict {
				t.Errorf("verdict = %s (detail %q), want %s", v.Verdict, v.Detail, item.Verdict)
			}
			if got := resp.Header.Get("X-DC-Exit"); got != strconv.Itoa(v.ExitCode()) {
				t.Errorf("X-DC-Exit = %q, want %d", got, v.ExitCode())
			}
			if got := resp.Header.Get("X-DC-Cache"); got != "miss" {
				t.Errorf("first ask: X-DC-Cache = %q, want miss", got)
			}
			// Ask again: the verdict cache answers, byte-identically.
			resp2, body2 := post(t, ts.URL, item.Request, nil)
			if got := resp2.Header.Get("X-DC-Cache"); got != "hit" {
				t.Errorf("second ask: X-DC-Cache = %q, want hit", got)
			}
			if !bytes.Equal(body, body2) {
				t.Errorf("cached verdict differs from computed one:\nmiss: %s\nhit:  %s", body, body2)
			}
		})
	}
}

func TestServerErrorTaxonomy(t *testing.T) {
	srv := NewServer(Config{MaxBodyBytes: 2048})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Malformed JSON and unknown fields: 400.
	for _, body := range []string{"{", `{"program": "p", "chekc": "closure"}`} {
		resp, err := http.Post(ts.URL+"/v1/verdict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Malformed question: 400 with the usage exit code.
	resp, _ := post(t, ts.URL, api.Request{Program: corpus.Ring3, Check: api.CheckClosure, Invariant: "Nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get("X-DC-Exit") != "2" {
		t.Errorf("unknown predicate: status = %d exit %q, want 400 exit 2", resp.StatusCode, resp.Header.Get("X-DC-Exit"))
	}
	// Unprocessable program: 422 with the parse exit code.
	resp, body := post(t, ts.URL, api.Request{Program: "program broken\nvar x", Check: api.CheckDeadlock}, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity || resp.Header.Get("X-DC-Exit") != "3" {
		t.Errorf("parse error: status = %d exit %q body %s, want 422 exit 3", resp.StatusCode, resp.Header.Get("X-DC-Exit"), body)
	}
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
		t.Errorf("error body not an api.Error: %s", body)
	}
	// Oversized body: 413.
	big := api.Request{Program: strings.Repeat("# padding\n", 1024) + corpus.Countdown, Check: api.CheckDeadlock}
	resp, _ = post(t, ts.URL, big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(ts.URL + "/v1/verdict")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/verdict: status = %d, want 405", getResp.StatusCode)
	}
}

// TestServerAdmissionAndDedup holds an evaluation open with the test gate
// and probes the three admission outcomes: the slot holder (miss), an
// identical question (join, never refused), and a different question on a
// saturated server (429 with Retry-After).
func TestServerAdmissionAndDedup(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer(Config{MaxInFlight: 1})
	srv.testGate = func() { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	slow := api.Request{Program: corpus.Ring3, Check: api.CheckDeadlock}
	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan result, 2)
	ask := func() {
		resp, body := post(t, ts.URL, slow, nil)
		results <- result{resp.StatusCode, resp.Header.Get("X-DC-Cache"), body}
	}
	go ask()
	waitInFlight(t, srv, 1)
	go ask() // identical: joins the flight instead of burning a slot
	waitRefs(t, srv, requestKey(slow), 2)

	// A different question finds the server saturated.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts.URL, api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock, From: "Top"}, nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturated server never returned 429 (last status %d)", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	got := map[string]int{}
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("concurrent ask: status = %d", r.status)
		}
		got[r.cache]++
		bodies = append(bodies, r.body)
	}
	if got["miss"] != 1 || got["join"] != 1 {
		t.Errorf("cache states = %v, want one miss and one join", got)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("joined verdict differs from computed one:\n%s\n%s", bodies[0], bodies[1])
	}
}

// waitRefs polls until the flight for key has n waiters.
func waitRefs(t *testing.T, srv *Server, key [32]byte, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		fl := srv.flights[key]
		refs := 0
		if fl != nil {
			refs = fl.refs
		}
		srv.mu.Unlock()
		if refs >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight never reached %d waiters (at %d)", n, refs)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitInFlight polls until n evaluations hold slots.
func waitInFlight(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.sem) < n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerDrain proves the shutdown contract: draining refuses new work
// with 503, reports unhealthy, and still completes the verdict that was in
// flight when the signal arrived.
func TestServerDrain(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer(Config{})
	srv.testGate = func() { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inFlight := make(chan result1, 1)
	go func() {
		resp, body := post(t, ts.URL, api.Request{Program: corpus.Ring3, Check: api.CheckDeadlock}, nil)
		inFlight <- result1{resp.StatusCode, body}
	}()
	waitInFlight(t, srv, 1)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// Draining is observable immediately: healthz flips and new verdicts
	// are refused.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status = %d, want 503", hz.StatusCode)
	}
	resp, _ := post(t, ts.URL, api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("verdict while draining: status = %d, want 503", resp.StatusCode)
	}

	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while an evaluation was still gated")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
	r := <-inFlight
	if r.status != http.StatusOK {
		t.Errorf("in-flight verdict during drain: status = %d body %s, want 200", r.status, r.body)
	}
}

type result1 struct {
	status int
	body   []byte
}

func TestServerHealthzAndMetrics(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 ok", hz.StatusCode, b)
	}

	// Generate a miss and a hit, then scrape.
	req := api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock, From: "Top"}
	post(t, ts.URL, req, nil)
	post(t, ts.URL, req, nil)
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metricsText := string(mb)
	for _, want := range []string{
		`dcserved_verdicts_total{cache="hit"} 1`,
		`dcserved_verdicts_total{cache="miss"} 1`,
		`dcserved_requests_total{code="200"} 2`,
		"dcserved_programs_resident 1",
		"dcserved_eval_seconds_count 1",
		"dcserved_graph_cache_events_total",
		"dcserved_draining 0",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsText)
		}
	}
}

// TestServerSpillBudget configures the server with the minimum exploration
// memory budget, so evaluations degrade to the out-of-core engine: the
// verdicts must stay exactly the ground truth (spilling changes where state
// lives, never what is decided) and the spill counters must show the
// engine actually ran.
func TestServerSpillBudget(t *testing.T) {
	srv := NewServer(Config{SpillBudget: 1 << 16, SpillDir: t.TempDir()})
	defer explore.SetDefaultSpill(0, "") // the default is process-wide
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	before := explore.SpillCounters()
	// The deadlock hunt streams over the kernel on every evaluation (no
	// graph cache in front of it), so it is guaranteed to exercise the
	// budgeted path regardless of what earlier tests left cached.
	for _, item := range corpus.Items() {
		if item.Request.Check != api.CheckDeadlock {
			continue
		}
		resp, body := post(t, ts.URL, item.Request, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", item.Name, resp.StatusCode, body)
		}
		var v api.Response
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s: decode: %v", item.Name, err)
		}
		if v.Verdict != item.Verdict {
			t.Errorf("%s under spill budget: verdict = %s (detail %q), want %s",
				item.Name, v.Verdict, v.Detail, item.Verdict)
		}
	}
	after := explore.SpillCounters()
	if after.FrontHits == before.FrontHits {
		t.Errorf("spill front saw no claims: counters %+v -> %+v", before, after)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), "dcserved_spill_events_total") {
		t.Errorf("metrics missing spill counters:\n%s", mb)
	}
}

// TestServerSSE drives the streaming transport: progress events arrive as
// the request moves through admission, then a verdict event whose payload
// matches the plain transport field-for-field, then the exit event.
func TestServerSSE(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req := api.Request{Program: corpus.Countdown, Check: api.CheckDeadlock, From: "Top"}
	var body bytes.Buffer
	if err := api.Encode(&body, req); err != nil {
		t.Fatal(err)
	}
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verdict", &body)
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := map[string]string{}
	var order []string
	sc := bufio.NewScanner(resp.Body)
	var name string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events[name] = strings.TrimPrefix(line, "data: ")
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"progress", "verdict", "exit"}; fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("event order = %v, want %v (events %v)", order, want, events)
	}
	if events["progress"] != `{"stage":"eval"}` {
		t.Errorf("progress = %s", events["progress"])
	}
	var v api.Response
	if err := json.Unmarshal([]byte(events["verdict"]), &v); err != nil {
		t.Fatalf("verdict event: %v", err)
	}
	if v.Verdict != api.VerdictDeadlock || len(v.Witness) != 4 {
		t.Errorf("verdict event = %+v", v)
	}
	if events["exit"] != `{"exit":1,"cache":"miss"}` {
		t.Errorf("exit event = %s", events["exit"])
	}
}

// TestServerSSEError checks the streaming error path carries the same
// taxonomy as the plain transport.
func TestServerSSEError(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var body bytes.Buffer
	if err := api.Encode(&body, api.Request{Program: "program broken\nvar x", Check: api.CheckDeadlock}); err != nil {
		t.Fatal(err)
	}
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verdict", &body)
	hr.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	all, _ := io.ReadAll(resp.Body)
	text := string(all)
	if !strings.Contains(text, "event: error") || !strings.Contains(text, "event: status\ndata: 422") {
		t.Errorf("SSE error stream = %q, want error event with status 422", text)
	}
}
