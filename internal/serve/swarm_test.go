package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// The swarm is the service's proof of correctness under load: a fleet of
// concurrent clients replays the deterministic corpus mix against a live
// server and asserts the three load-bearing properties one client cannot
// observe — every verdict is right under contention, identical questions
// coalesce into exactly one evaluation each, and saturation refuses rather
// than queues. Run with -race; the scheduler is the adversary.

const (
	swarmClients = 64
	swarmRounds  = 3
)

// swarmAsk posts one request, retrying on 429 as the protocol instructs.
// It returns the status, body, and how many times it was refused.
func swarmAsk(client *http.Client, url string, req api.Request, tenant string) (int, []byte, int, error) {
	var body bytes.Buffer
	if err := api.Encode(&body, req); err != nil {
		return 0, nil, 0, err
	}
	raw := body.Bytes()
	refused := 0
	for {
		hr, err := http.NewRequest(http.MethodPost, url+"/v1/verdict", bytes.NewReader(raw))
		if err != nil {
			return 0, nil, refused, err
		}
		if tenant != "" {
			hr.Header.Set("X-DC-Tenant", tenant)
		}
		resp, err := client.Do(hr)
		if err != nil {
			return 0, nil, refused, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil, refused, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			refused++
			retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if retry < 1 {
				retry = 1
			}
			// Scaled down from seconds: the test server saturates and
			// drains in milliseconds, not seconds.
			time.Sleep(time.Duration(retry) * 5 * time.Millisecond)
			continue
		}
		return resp.StatusCode, b, refused, nil
	}
}

// TestSwarm is the headline dedup-under-load suite: swarmClients concurrent
// clients, each replaying the full corpus swarmRounds times from a rotated
// starting offset, against a server with far fewer evaluation slots than
// clients. Every response must carry the ground-truth verdict, all bodies
// for one question must be byte-identical, and — the singleflight contract —
// the server must have evaluated each distinct question exactly once.
func TestSwarm(t *testing.T) {
	var evals atomic.Int64
	srv := NewServer(Config{MaxInFlight: 4})
	srv.testGate = func() { evals.Add(1) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	items := corpus.Items()
	bodies := make([][]byte, len(items)) // first body seen per item
	var bodiesMu sync.Mutex
	var refusedTotal atomic.Int64

	var wg sync.WaitGroup
	errs := make(chan error, swarmClients)
	for c := 0; c < swarmClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for round := 0; round < swarmRounds; round++ {
				for i := range items {
					item := items[(c+i)%len(items)]
					idx := (c + i) % len(items)
					status, body, refused, err := swarmAsk(client, ts.URL, item.Request, "")
					refusedTotal.Add(int64(refused))
					if err != nil {
						errs <- err
						return
					}
					if status != http.StatusOK {
						t.Errorf("client %d %s: status %d body %s", c, item.Name, status, body)
						return
					}
					var v api.Response
					if err := json.Unmarshal(body, &v); err != nil {
						errs <- err
						return
					}
					if v.Verdict != item.Verdict {
						t.Errorf("client %d %s: verdict %s, want %s", c, item.Name, v.Verdict, item.Verdict)
					}
					bodiesMu.Lock()
					if bodies[idx] == nil {
						bodies[idx] = body
					} else if !bytes.Equal(bodies[idx], body) {
						t.Errorf("client %d %s: body diverged under load:\n%s\nvs\n%s", c, item.Name, body, bodies[idx])
					}
					bodiesMu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := evals.Load(); got != int64(len(items)) {
		t.Errorf("evaluations = %d for %d clients × %d rounds × %d items; singleflight + verdict cache must make it exactly %d",
			got, swarmClients, swarmRounds, len(items), len(items))
	}
	t.Logf("swarm: %d requests, %d evaluations, %d refusals (429)",
		swarmClients*swarmRounds*len(items), evals.Load(), refusedTotal.Load())
}

// TestSwarmTenantQuota hammers the per-tenant budget path: many tenants,
// each cycling through all three programs, with a budget far below the
// combined graph footprint. Under -race this exercises chargeTenant against
// concurrent flights; afterwards every tenant must be within budget (or
// down to the single just-used program, which is never evicted).
func TestSwarmTenantQuota(t *testing.T) {
	const budget = 64 // states; ring3+memaccess+countdown graphs exceed this
	srv := NewServer(Config{MaxInFlight: 8, TenantBudget: budget, VerdictCacheSize: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	items := corpus.Items()
	tenants := []string{"alpha", "beta", "gamma", "delta", "", "zeta", "eta", "theta"}
	var wg sync.WaitGroup
	for ti, tenant := range tenants {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(ti, c int, tenant string) {
				defer wg.Done()
				client := &http.Client{}
				for i := range items {
					item := items[(ti+c+i)%len(items)]
					status, body, _, err := swarmAsk(client, ts.URL, item.Request, tenant)
					if err != nil {
						t.Error(err)
						return
					}
					if status != http.StatusOK {
						t.Errorf("tenant %q %s: status %d body %s", tenant, item.Name, status, body)
					}
				}
			}(ti, c, tenant)
		}
	}
	wg.Wait()

	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.tenants) != len(tenants) {
		t.Errorf("tenant states = %d, want %d", len(srv.tenants), len(tenants))
	}
	evictions := srv.met.tenantEvictions.Load()
	if evictions == 0 {
		t.Error("budget below the working set but no tenant evictions happened")
	}
	for name, ts := range srv.tenants {
		usage := 0
		for el := ts.lru.Front(); el != nil; el = el.Next() {
			usage += explore.ResidentOf(el.Value.(*gcl.File).Program)
		}
		if usage > budget && ts.lru.Len() > 1 {
			t.Errorf("tenant %q: %d resident states across %d programs exceeds budget %d", name, usage, ts.lru.Len(), budget)
		}
	}
	t.Logf("tenant quota: %d evictions across %d tenants", evictions, len(tenants))
}

// BenchmarkServedSwarm is the throughput/latency record for make bench-diff:
// a steady-state swarm (warm caches, realistic mix) measuring requests per
// second and tail latency through the full HTTP stack.
func BenchmarkServedSwarm(b *testing.B) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	items := corpus.Items()
	// Warm every flight once so the benchmark measures the serving path,
	// not the first exploration.
	warm := &http.Client{}
	for _, item := range items {
		if status, body, _, err := swarmAsk(warm, ts.URL, item.Request, ""); err != nil || status != http.StatusOK {
			b.Fatalf("warmup %s: status %d err %v body %s", item.Name, status, err, body)
		}
	}

	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	perClient := (b.N + swarmClients - 1) / swarmClients
	for c := 0; c < swarmClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			local := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				item := items[(c+i)%len(items)]
				t0 := time.Now()
				status, _, _, err := swarmAsk(client, ts.URL, item.Request, "")
				if err != nil || status != http.StatusOK {
					b.Errorf("client %d: status %d err %v", c, status, err)
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-µs")
	b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-µs")
}
