package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"detcorr/internal/serve/api"
	"detcorr/internal/serve/corpus"
)

// postRevise submits one revision and returns the decoded report.
func postRevise(t *testing.T, url, oldSrc, newSrc string) (*http.Response, *ReviseReport) {
	t.Helper()
	var body bytes.Buffer
	if err := api.Encode(&body, api.ReviseRequest{Old: oldSrc, New: newSrc}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/revise", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revise status = %d, body %s", resp.StatusCode, b)
	}
	var rep ReviseReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("decode report: %v (body %s)", err, b)
	}
	return resp, &rep
}

// TestReviseEndToEnd drives the whole incremental pipeline over HTTP: warm
// verdicts for one revision, submit edits, and confirm that preserved
// verdicts answer as cache hits with byte-identical bodies while
// invalidated ones are re-evaluated.
func TestReviseEndToEnd(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	closure := api.Request{Program: corpus.Ring3, Check: api.CheckClosure, Invariant: "Legit"}
	// Convergence explores the program's own graph (closure goes through
	// the slicer, fault-composed hunts through fault composition), so it
	// is the request that exercises graph migration.
	converge := api.Request{Program: corpus.Ring3, Check: api.CheckConvergence, Invariant: "true", Goal: "Legit"}
	deadlockFaults := api.Request{Program: corpus.Ring3, Check: api.CheckDeadlock, Faults: true}
	_, closureBody := post(t, ts.URL, closure, nil)
	_, _ = post(t, ts.URL, converge, nil)
	_, _ = post(t, ts.URL, deadlockFaults, nil)

	// Revision 1: reformat only (an extra trailing comment line). The plan
	// is an identity on every section, so all three verdicts survive.
	rev1 := corpus.Ring3 + "\n# reviewed\n"
	_, rep := postRevise(t, ts.URL, corpus.Ring3, rev1)
	if rep.VerdictsPreserved != 3 || rep.VerdictsInvalidated != 0 {
		t.Fatalf("identity revision: preserved=%d invalidated=%d, want 3/0",
			rep.VerdictsPreserved, rep.VerdictsInvalidated)
	}
	if rep.GraphsRebound == 0 || rep.GraphsRepaired != 0 || rep.GraphsRebuilt != 0 {
		t.Fatalf("identity revision: graph accounting %+v, want rebound only", rep)
	}
	if !rep.Impact.Unchanged() {
		t.Fatalf("identity revision affected %v", rep.Impact.AffectedPreds)
	}
	closure1 := closure
	closure1.Program = rev1
	hresp, body1 := post(t, ts.URL, closure1, nil)
	if got := hresp.Header.Get("X-DC-Cache"); got != "hit" {
		t.Errorf("preserved closure verdict: X-DC-Cache = %q, want hit", got)
	}
	if !bytes.Equal(closureBody, body1) {
		t.Errorf("preserved verdict differs:\nold: %s\nnew: %s", closureBody, body1)
	}

	// Revision 2: edit a fault guard. The program plan stays identity, so
	// the closure and convergence verdicts survive, but the fault-composed
	// deadlock hunt must be re-checked.
	rev2 := strings.Replace(rev1, "fault corrupt0 :: true", "fault corrupt0 :: x0 != x1", 1)
	if rev2 == rev1 {
		t.Fatal("fault edit did not apply")
	}
	_, rep = postRevise(t, ts.URL, rev1, rev2)
	if rep.VerdictsPreserved != 2 || rep.VerdictsInvalidated != 1 {
		t.Fatalf("fault revision: preserved=%d invalidated=%d, want 2/1",
			rep.VerdictsPreserved, rep.VerdictsInvalidated)
	}
	if len(rep.Impact.ChangedFaults) != 1 {
		t.Fatalf("fault revision: changed faults = %v", rep.Impact.ChangedFaults)
	}
	closure2 := closure
	closure2.Program = rev2
	hresp, _ = post(t, ts.URL, closure2, nil)
	if got := hresp.Header.Get("X-DC-Cache"); got != "hit" {
		t.Errorf("closure after fault edit: X-DC-Cache = %q, want hit", got)
	}
	deadlock2 := deadlockFaults
	deadlock2.Program = rev2
	hresp, _ = post(t, ts.URL, deadlock2, nil)
	if got := hresp.Header.Get("X-DC-Cache"); got != "miss" {
		t.Errorf("fault-composed deadlock after fault edit: X-DC-Cache = %q, want miss (re-check)", got)
	}

	// Revision 3: break an action so Legit's closure verdict may change;
	// the closure verdict must not be carried over.
	rev3 := strings.Replace(rev2, "x0 := (x0 + 1) % 3", "x0 := (x0 + 2) % 3", 1)
	if rev3 == rev2 {
		t.Fatal("action edit did not apply")
	}
	_, rep = postRevise(t, ts.URL, rev2, rev3)
	if rep.VerdictsPreserved != 0 {
		t.Fatalf("action revision preserved %d verdicts, want 0", rep.VerdictsPreserved)
	}
	closure3 := closure
	closure3.Program = rev3
	hresp, _ = post(t, ts.URL, closure3, nil)
	if got := hresp.Header.Get("X-DC-Cache"); got != "miss" {
		t.Errorf("closure after action edit: X-DC-Cache = %q, want miss", got)
	}
}

// TestMetricsInvalidateCounters is the satellite scrape test: the revision
// counters appear on /metrics with the outcomes the revision produced.
func TestMetricsInvalidateCounters(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req := api.Request{Program: corpus.Countdown, Check: api.CheckClosure, Invariant: "Zero"}
	_, _ = post(t, ts.URL, req, nil)
	_, rep := postRevise(t, ts.URL, corpus.Countdown, corpus.Countdown+"\n# rev\n")
	if rep.VerdictsPreserved != 1 {
		t.Fatalf("preserved = %d, want 1", rep.VerdictsPreserved)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, want := range []string{
		`dcserved_invalidate_verdicts_total{outcome="preserved"} 1`,
		`dcserved_invalidate_verdicts_total{outcome="invalidated"} 0`,
		fmt.Sprintf(`dcserved_invalidate_graphs_total{outcome="rebound"} %d`, rep.GraphsRebound),
		`dcserved_invalidate_graphs_total{outcome="repaired"} 0`,
		`dcserved_invalidate_graphs_total{outcome="rebuilt"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestReviseRejectsBadSources maps load failures onto the 422 convention.
func TestReviseRejectsBadSources(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var body bytes.Buffer
	if err := api.Encode(&body, api.ReviseRequest{Old: corpus.Ring3, New: "program broken\nvar"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/revise", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("broken new revision: status = %d, want 422", resp.StatusCode)
	}

	body.Reset()
	if err := api.Encode(&body, api.ReviseRequest{Old: "", New: corpus.Ring3}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/revise", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty old revision: status = %d, want 400", resp.StatusCode)
	}
}

// TestReviseHammer is the satellite concurrency test: a swarm hammers
// verdicts for two revisions of the ring while revisions are submitted
// mid-flight, and every response must byte-match the ground truth for the
// exact source it named — a stale verdict carried across the edit is a
// wrong answer, not a latency blip. Run under -race via the suite.
func TestReviseHammer(t *testing.T) {
	rev0 := corpus.Ring3
	// A real behavioral edit: move0 steps by 2, changing convergence.
	rev1 := strings.Replace(rev0, "x0 := (x0 + 1) % 3", "x0 := (x0 + 2) % 3", 1)
	if rev1 == rev0 {
		t.Fatal("edit did not apply")
	}
	checks := []api.Request{
		{Check: api.CheckClosure, Invariant: "Legit"},
		{Check: api.CheckConvergence, Invariant: "true", Goal: "Legit"},
		{Check: api.CheckDeadlock},
		{Check: api.CheckCorrects, Z: "Legit", X: "Legit", From: "true"},
	}
	// Ground truth: evaluate every (revision, check) pair through the same
	// Eval + Encode pipeline the server uses.
	truth := map[string][]byte{}
	for _, src := range []string{rev0, rev1} {
		f, err := LoadSource(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range checks {
			req.Program = src
			resp, err := Eval(context.Background(), f, req)
			if err != nil {
				t.Fatalf("ground truth %s: %v", req.Check, err)
			}
			var buf bytes.Buffer
			if err := api.Encode(&buf, resp); err != nil {
				t.Fatal(err)
			}
			truth[src+"\x00"+req.Check] = buf.Bytes()
		}
	}

	srv := NewServer(Config{MaxInFlight: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	revised := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w == 0 && i == iters/2 {
					// Mid-swarm, submit the edit (twice is idempotent
					// enough: re-revising preserves nothing new).
					var body bytes.Buffer
					if err := api.Encode(&body, api.ReviseRequest{Old: rev0, New: rev1}); err != nil {
						errs <- err
						return
					}
					resp, err := http.Post(ts.URL+"/v1/revise", "application/json", &body)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					close(revised)
				}
				src := rev0
				// After the revision lands, workers shift toward the new
				// revision but keep asking about the old one too.
				select {
				case <-revised:
					if (w+i)%3 != 0 {
						src = rev1
					}
				default:
				}
				req := checks[(w*iters+i)%len(checks)]
				req.Program = src
				var body bytes.Buffer
				if err := api.Encode(&body, req); err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/verdict", "application/json", &body)
				if err != nil {
					errs <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d iter %d: status %d body %s", w, i, resp.StatusCode, b)
					return
				}
				if want := truth[src+"\x00"+req.Check]; !bytes.Equal(b, want) {
					errs <- fmt.Errorf("worker %d iter %d: stale or wrong verdict for %s\ngot:  %s\nwant: %s",
						w, i, req.Check, b, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
