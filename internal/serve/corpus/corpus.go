// Package corpus is the shared program-and-request mix behind the dcserved
// proof-of-correctness suites: the synthetic client swarm, the dctl parity
// difftest, and the dcbench swarm benchmark all draw from the same embedded
// sources and the same deterministic request list, so "the swarm passed"
// always means the same workload.
package corpus

import (
	_ "embed"

	"detcorr/internal/serve/api"
)

// The three paper systems, embedded so the suites run without touching the
// filesystem. They mirror cmd/dctl/testdata byte-for-byte (the parity
// difftest depends on it).
var (
	//go:embed testdata/ring3.gcl
	Ring3 string
	//go:embed testdata/memaccess.gcl
	Memaccess string
	//go:embed testdata/countdown.gcl
	Countdown string
)

// Item is one request in the mix, with the verdict it must produce. Verdict
// is ground truth established by the graph checks — the swarm asserts every
// response against it, so a wrong answer under load is a test failure, not
// just a latency blip.
type Item struct {
	Name    string
	Request api.Request
	Verdict string
}

// Items returns the full deterministic request mix: every check kind, every
// program, holding and failing verdicts both. Callers index into it with
// whatever schedule they like; the list itself never changes order.
func Items() []Item {
	return []Item{
		{
			Name:    "ring3-closure",
			Request: api.Request{Program: Ring3, Check: api.CheckClosure, Invariant: "Legit"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "ring3-corrects-nonmasking",
			Request: api.Request{Program: Ring3, Check: api.CheckCorrects, Z: "Legit", X: "Legit", Tolerant: "nonmasking"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "ring3-converges",
			Request: api.Request{Program: Ring3, Check: api.CheckConvergence, Invariant: "true", Goal: "Legit"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "ring3-prove-closure",
			Request: api.Request{Program: Ring3, Check: api.CheckProve, Invariant: "Legit", Span: "auto"},
			Verdict: api.VerdictProved,
		},
		{
			Name:    "ring3-deadlock",
			Request: api.Request{Program: Ring3, Check: api.CheckDeadlock},
			Verdict: api.VerdictDeadlockFree,
		},
		{
			Name:    "memaccess-detects-failsafe",
			Request: api.Request{Program: Memaccess, Check: api.CheckDetects, Z: "Z1p", X: "X1", From: "U1", Tolerant: "failsafe"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "memaccess-detects-fails",
			Request: api.Request{Program: Memaccess, Check: api.CheckDetects, Z: "Z1p", X: "DataCorrect", From: "U1"},
			Verdict: api.VerdictFails,
		},
		{
			Name:    "memaccess-corrects",
			Request: api.Request{Program: Memaccess, Check: api.CheckCorrects, Z: "X1", X: "X1", From: "X1", Tolerant: "nonmasking"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "memaccess-deadlock-faults",
			Request: api.Request{Program: Memaccess, Check: api.CheckDeadlock, Faults: true},
			Verdict: api.VerdictDeadlockFree,
		},
		{
			Name:    "countdown-closure",
			Request: api.Request{Program: Countdown, Check: api.CheckClosure, Invariant: "Zero"},
			Verdict: api.VerdictHolds,
		},
		{
			Name:    "countdown-deadlock",
			Request: api.Request{Program: Countdown, Check: api.CheckDeadlock, From: "Top"},
			Verdict: api.VerdictDeadlock,
		},
		{
			Name:    "countdown-deadlock-faults",
			Request: api.Request{Program: Countdown, Check: api.CheckDeadlock, From: "Top", Faults: true},
			Verdict: api.VerdictDeadlock,
		},
		{
			Name:    "countdown-prove-convergence",
			Request: api.Request{Program: Countdown, Check: api.CheckProve, Goal: "Zero"},
			Verdict: api.VerdictProved,
		},
	}
}
