package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
	"detcorr/internal/serve/api"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default; see the constants below.
type Config struct {
	// MaxInFlight bounds concurrently evaluating verdicts (admission
	// control). Requests beyond the bound that cannot join an existing
	// flight are refused with 429 and a Retry-After header rather than
	// queued: the state spaces behind a verdict are large enough that an
	// unbounded queue is just a slow out-of-memory.
	MaxInFlight int
	// TenantBudget bounds the resident exploration-cache states attributable
	// to any one tenant (X-DC-Tenant header; empty is a tenant like any
	// other). When a tenant's programs exceed it, their least-recently-used
	// programs are evicted from the graph cache. 0 means no per-tenant bound.
	TenantBudget int
	// MaxPrograms bounds distinct compiled programs kept resident. 0 means
	// defaultMaxPrograms.
	MaxPrograms int
	// MaxBodyBytes bounds the request body. 0 means defaultMaxBodyBytes.
	MaxBodyBytes int64
	// VerdictCacheSize bounds memoized whole verdicts (keyed by the full
	// request). 0 means defaultVerdictCacheSize; negative disables.
	VerdictCacheSize int
	// SpillBudget, when positive, installs a process-wide exploration
	// memory budget (bytes): evaluations whose state space would outgrow
	// it degrade to the out-of-core engine — spilling the visited set and
	// frontier to files under SpillDir — instead of being refused or
	// growing without bound. Verdicts are byte-identical either way.
	// Explorations that fit the budget never touch disk. 0 leaves the
	// in-RAM engines as the default.
	SpillBudget int64
	// SpillDir is where spill files are placed; "" means the OS temp
	// directory. Only consulted when SpillBudget is positive.
	SpillDir string
	// Logf receives one line per completed request; nil discards.
	Logf func(format string, args ...any)
}

const (
	defaultMaxInFlight      = 8
	defaultMaxPrograms      = 64
	defaultMaxBodyBytes     = 1 << 20
	defaultVerdictCacheSize = 1024
)

// Server hosts the verdict service. It implements http.Handler; wrap it in
// an http.Server to listen. Create with NewServer, stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	programs *registry
	sem      chan struct{}
	draining chan struct{} // closed by Shutdown
	drainOne sync.Once
	evals    sync.WaitGroup
	met      metrics

	mu       sync.Mutex
	flights  map[[sha256.Size]byte]*flight
	verdicts *verdictCache
	tenants  map[string]*tenantState

	// testGate, when non-nil, runs inside every flight just before Eval.
	// Tests use it to hold evaluations open while they probe admission,
	// dedup, and drain behaviour. Never set in production.
	testGate func()
}

// flight is one in-progress evaluation, shared by every request that asked
// the same question while it ran. The flight's context is detached from any
// single request and cancelled only when the last waiter walks away.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int // guarded by Server.mu
	file   *gcl.File
	resp   *api.Response
	err    error
}

// NewServer returns a ready-to-serve Server. The caller owns listening and
// must call Shutdown to drain.
func NewServer(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxPrograms <= 0 {
		cfg.MaxPrograms = defaultMaxPrograms
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.VerdictCacheSize == 0 {
		cfg.VerdictCacheSize = defaultVerdictCacheSize
	}
	if cfg.SpillBudget > 0 {
		// The default is process-wide, like SetDefaultParallelism: every
		// exploration the evaluations reach inherits the budget.
		explore.SetDefaultSpill(cfg.SpillBudget, cfg.SpillDir)
	}
	s := &Server{
		cfg:      cfg,
		programs: newRegistry(cfg.MaxPrograms),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		draining: make(chan struct{}),
		flights:  map[[sha256.Size]byte]*flight{},
		verdicts: newVerdictCache(cfg.VerdictCacheSize),
		tenants:  map[string]*tenantState{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/verdict", s.handleVerdict)
	s.mux.HandleFunc("POST /v1/revise", s.handleRevise)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the server: new verdict requests are refused with 503
// while every in-flight evaluation runs to completion (or ctx expires, in
// which case the stragglers are abandoned to their own cancellation when
// their clients disconnect). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	// The drain flag flips under the same lock that guards flight creation,
	// so every evaluation is either registered with the WaitGroup before the
	// flip (and drained here) or refused after it — Add never races Wait.
	s.mu.Lock()
	s.drainOne.Do(func() { close(s.draining) })
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.evals.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Sentinel outcomes of the admission path.
var (
	errSaturated = errors.New("serve: all evaluation slots busy")
	errDraining  = errors.New("serve: draining, not accepting new verdicts")
)

// requestKey is the deduplication identity of a request: a hash of its
// canonical JSON. Tenancy is carried out-of-band (header), so two tenants
// asking the same question share a key — and therefore a flight, a cached
// verdict, and one graph build.
func requestKey(req api.Request) [sha256.Size]byte {
	b, err := json.Marshal(req)
	if err != nil {
		// A Request is plain strings, a bool, and an int; Marshal cannot
		// fail. Keep the panic close to the impossibility.
		panic("serve: marshal request: " + err.Error())
	}
	return sha256.Sum256(b)
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req api.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	tenant := r.Header.Get("X-DC-Tenant")
	if isSSE(r) {
		s.serveSSE(w, r, req, tenant, start)
		return
	}
	resp, cacheState, err := s.verdict(r.Context(), req, tenant, nil)
	if err != nil {
		s.writeVerdictError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-DC-Cache", cacheState)
	w.Header().Set("X-DC-Exit", strconv.Itoa(resp.ExitCode()))
	if err := api.Encode(w, resp); err != nil {
		s.logf("serve: write response: %v", err)
	}
	s.met.observe(http.StatusOK, cacheState, time.Since(start))
	s.logf("verdict check=%s cache=%s verdict=%s dur=%s", req.Check, cacheState, resp.Verdict, time.Since(start))
}

// handleRevise runs the revision pipeline: compile both sources through
// the registry (so the new revision is resident, linted, and certified
// exactly as a verdict request would leave it), then migrate graphs and
// verdicts. The body limit is doubled because the request carries two full
// sources.
func (s *Server) handleRevise(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.isDraining() {
		s.writeVerdictError(w, r, errDraining)
		return
	}
	var req api.ReviseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 2*s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("serve: body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode revision: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		s.writeVerdictError(w, r, &UsageError{Err: err})
		return
	}
	oldFile, err := s.programs.load(req.Old)
	if err != nil {
		s.writeVerdictError(w, r, fmt.Errorf("old revision: %w", err))
		return
	}
	newFile, err := s.programs.load(req.New)
	if err != nil {
		s.writeVerdictError(w, r, fmt.Errorf("new revision: %w", err))
		return
	}
	rep := s.Advance(oldFile, newFile)
	w.Header().Set("Content-Type", "application/json")
	if err := api.Encode(w, rep); err != nil {
		s.logf("serve: write revise response: %v", err)
	}
	s.met.observe(http.StatusOK, "", time.Since(start))
	s.logf("revise program=%s preserved=%d invalidated=%d rebound=%d repaired=%d rebuilt=%d dur=%s",
		newFile.Name, rep.VerdictsPreserved, rep.VerdictsInvalidated,
		rep.GraphsRebound, rep.GraphsRepaired, rep.GraphsRebuilt, time.Since(start))
}

// verdict runs the admission pipeline: drain check, verdict cache, flight
// join, slot acquisition, evaluation. progress (may be nil) is told which
// path the request took before the wait begins.
func (s *Server) verdict(ctx context.Context, req api.Request, tenant string, progress func(stage string)) (*api.Response, string, error) {
	if s.isDraining() {
		return nil, "", errDraining
	}
	if err := req.Validate(); err != nil {
		return nil, "", &UsageError{Err: err}
	}
	key := requestKey(req)
	if resp, ok := s.verdicts.get(key); ok {
		return resp, "hit", nil
	}

	s.mu.Lock()
	if fl, ok := s.flights[key]; ok {
		fl.refs++
		s.mu.Unlock()
		if progress != nil {
			progress("join")
		}
		resp, err := s.wait(ctx, key, fl, tenant)
		return resp, "join", err
	}
	// No flight to join: admission. The slot is acquired before the flight
	// exists, so a saturated server refuses instead of accumulating work.
	select {
	case s.sem <- struct{}{}:
	default:
		s.mu.Unlock()
		return nil, "", errSaturated
	}
	// Re-check the drain flag under the lock: Shutdown flips it under the
	// same lock, so a flight created here is guaranteed to be registered
	// before Shutdown starts waiting.
	if s.isDraining() {
		<-s.sem
		s.mu.Unlock()
		return nil, "", errDraining
	}
	fctx, cancel := context.WithCancel(context.Background())
	fl := &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
	s.flights[key] = fl
	s.evals.Add(1)
	s.mu.Unlock()

	go s.run(fctx, fl, key, req)
	if progress != nil {
		progress("eval")
	}
	resp, err := s.wait(ctx, key, fl, tenant)
	return resp, "miss", err
}

// run evaluates one flight: compile (deduplicated by the program registry),
// evaluate, publish. Successful verdicts enter the verdict cache; failures
// of any kind are never cached, mirroring the graph cache's no-poisoning
// rule.
func (s *Server) run(ctx context.Context, fl *flight, key [sha256.Size]byte, req api.Request) {
	defer s.evals.Done()
	defer func() { <-s.sem }()
	start := time.Now()
	if s.testGate != nil {
		s.testGate()
	}
	file, err := s.programs.load(req.Program)
	if err == nil {
		fl.file = file
		fl.resp, fl.err = Eval(ctx, file, req)
	} else {
		fl.err = err
	}
	s.met.observeEval(time.Since(start))

	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	if fl.err == nil {
		s.verdicts.put(key, req, fl.resp)
	}
	close(fl.done)
}

// wait blocks until the flight publishes or the caller's context ends. A
// departing waiter releases its reference; the last one out cancels the
// flight, so an evaluation nobody is waiting for stops exploring.
func (s *Server) wait(ctx context.Context, key [sha256.Size]byte, fl *flight, tenant string) (*api.Response, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		s.mu.Lock()
		fl.refs--
		last := fl.refs == 0
		s.mu.Unlock()
		if last {
			fl.cancel()
		}
		return nil, ctx.Err()
	}
	if fl.err != nil {
		return nil, fl.err
	}
	s.chargeTenant(tenant, fl.file)
	return fl.resp, nil
}

// writeVerdictError maps the admission/evaluation error taxonomy onto HTTP:
// 400 malformed question (dctl exit 2), 422 unprocessable program (exit 3),
// 429 saturated, 503 draining, 500 operational failure (exit 1).
func (s *Server) writeVerdictError(w http.ResponseWriter, r *http.Request, err error) {
	var ue *UsageError
	var le *LoadError
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Connection", "close")
		s.writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errSaturated):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &ue):
		w.Header().Set("X-DC-Exit", "2")
		s.writeError(w, http.StatusBadRequest, err)
	case errors.As(err, &le):
		w.Header().Set("X-DC-Exit", "3")
		s.writeError(w, http.StatusUnprocessableEntity, err)
	case isCancellation(err) && r.Context().Err() != nil:
		// The client is gone; nothing useful can be written.
		s.met.observe(499, "", 0)
	default:
		w.Header().Set("X-DC-Exit", "1")
		s.writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if eerr := api.Encode(w, api.Error{Error: err.Error()}); eerr != nil {
		s.logf("serve: write error response: %v", eerr)
	}
	s.met.observe(code, "", 0)
	s.logf("error code=%d err=%v", code, err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
