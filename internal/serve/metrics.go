package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"detcorr/internal/explore"
)

// metrics is the server's hand-rolled instrument panel, exported in the
// Prometheus text format by handleMetrics. Counters are atomics; the only
// lock guards the by-status-code map, which sees one touch per request.
type metrics struct {
	mu    sync.Mutex
	codes map[int]int64

	hits, misses, joins atomic.Int64
	inFlight            atomic.Int64
	tenantEvictions     atomic.Int64

	// Revision-pipeline counters (POST /v1/revise and Advance).
	verdictsPreserved   atomic.Int64
	verdictsInvalidated atomic.Int64
	graphsRebound       atomic.Int64
	graphsRepaired      atomic.Int64
	graphsRebuilt       atomic.Int64

	evalCount atomic.Int64
	evalSumNs atomic.Int64
	evalBkt   [len(evalBuckets)]atomic.Int64
}

// evalBuckets are the upper bounds (seconds) of the evaluation latency
// histogram; the implicit final bucket is +Inf.
var evalBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

func (m *metrics) observe(code int, cacheState string, _ time.Duration) {
	m.mu.Lock()
	if m.codes == nil {
		m.codes = map[int]int64{}
	}
	m.codes[code]++
	m.mu.Unlock()
	switch cacheState {
	case "hit":
		m.hits.Add(1)
	case "miss":
		m.misses.Add(1)
	case "join":
		m.joins.Add(1)
	}
}

func (m *metrics) observeEval(d time.Duration) {
	m.evalCount.Add(1)
	m.evalSumNs.Add(int64(d))
	sec := d.Seconds()
	for i, le := range evalBuckets {
		if sec <= le {
			m.evalBkt[i].Add(1)
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := &s.met

	fmt.Fprintln(w, "# HELP dcserved_requests_total Completed HTTP requests by status code.")
	fmt.Fprintln(w, "# TYPE dcserved_requests_total counter")
	m.mu.Lock()
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "dcserved_requests_total{code=%q} %d\n", fmt.Sprint(c), m.codes[c])
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP dcserved_verdicts_total Verdicts served, by how they were obtained.")
	fmt.Fprintln(w, "# TYPE dcserved_verdicts_total counter")
	fmt.Fprintf(w, "dcserved_verdicts_total{cache=\"hit\"} %d\n", m.hits.Load())
	fmt.Fprintf(w, "dcserved_verdicts_total{cache=\"miss\"} %d\n", m.misses.Load())
	fmt.Fprintf(w, "dcserved_verdicts_total{cache=\"join\"} %d\n", m.joins.Load())

	fmt.Fprintln(w, "# HELP dcserved_in_flight Evaluations currently running.")
	fmt.Fprintln(w, "# TYPE dcserved_in_flight gauge")
	fmt.Fprintf(w, "dcserved_in_flight %d\n", int64(len(s.sem)))

	fmt.Fprintln(w, "# HELP dcserved_draining Whether the server is refusing new verdicts.")
	fmt.Fprintln(w, "# TYPE dcserved_draining gauge")
	drain := 0
	if s.isDraining() {
		drain = 1
	}
	fmt.Fprintf(w, "dcserved_draining %d\n", drain)

	fmt.Fprintln(w, "# HELP dcserved_programs_resident Distinct compiled programs kept resident.")
	fmt.Fprintln(w, "# TYPE dcserved_programs_resident gauge")
	fmt.Fprintf(w, "dcserved_programs_resident %d\n", s.programs.resident())

	fmt.Fprintln(w, "# HELP dcserved_tenant_evictions_total Programs evicted by per-tenant budgets.")
	fmt.Fprintln(w, "# TYPE dcserved_tenant_evictions_total counter")
	fmt.Fprintf(w, "dcserved_tenant_evictions_total %d\n", m.tenantEvictions.Load())

	fmt.Fprintln(w, "# HELP dcserved_invalidate_verdicts_total Memoized verdicts audited by revisions, by outcome.")
	fmt.Fprintln(w, "# TYPE dcserved_invalidate_verdicts_total counter")
	fmt.Fprintf(w, "dcserved_invalidate_verdicts_total{outcome=\"preserved\"} %d\n", m.verdictsPreserved.Load())
	fmt.Fprintf(w, "dcserved_invalidate_verdicts_total{outcome=\"invalidated\"} %d\n", m.verdictsInvalidated.Load())

	fmt.Fprintln(w, "# HELP dcserved_invalidate_graphs_total Cached graphs carried across revisions, by how.")
	fmt.Fprintln(w, "# TYPE dcserved_invalidate_graphs_total counter")
	fmt.Fprintf(w, "dcserved_invalidate_graphs_total{outcome=\"rebound\"} %d\n", m.graphsRebound.Load())
	fmt.Fprintf(w, "dcserved_invalidate_graphs_total{outcome=\"repaired\"} %d\n", m.graphsRepaired.Load())
	fmt.Fprintf(w, "dcserved_invalidate_graphs_total{outcome=\"rebuilt\"} %d\n", m.graphsRebuilt.Load())

	fmt.Fprintln(w, "# HELP dcserved_eval_seconds Evaluation latency (compile + verdict).")
	fmt.Fprintln(w, "# TYPE dcserved_eval_seconds histogram")
	for i, le := range evalBuckets {
		fmt.Fprintf(w, "dcserved_eval_seconds_bucket{le=%q} %d\n", fmt.Sprint(le), m.evalBkt[i].Load())
	}
	fmt.Fprintf(w, "dcserved_eval_seconds_bucket{le=\"+Inf\"} %d\n", m.evalCount.Load())
	fmt.Fprintf(w, "dcserved_eval_seconds_sum %g\n", float64(m.evalSumNs.Load())/1e9)
	fmt.Fprintf(w, "dcserved_eval_seconds_count %d\n", m.evalCount.Load())

	// The process-wide exploration cache, re-exported so one scrape shows
	// how well requests coalesce into graph builds.
	cs := explore.CacheStats()
	fmt.Fprintln(w, "# HELP dcserved_graph_cache_events_total Exploration-cache events (process-wide).")
	fmt.Fprintln(w, "# TYPE dcserved_graph_cache_events_total counter")
	fmt.Fprintf(w, "dcserved_graph_cache_events_total{event=\"build\"} %d\n", cs.Builds)
	fmt.Fprintf(w, "dcserved_graph_cache_events_total{event=\"hit\"} %d\n", cs.Hits)
	fmt.Fprintf(w, "dcserved_graph_cache_events_total{event=\"miss\"} %d\n", cs.Misses)
	fmt.Fprintf(w, "dcserved_graph_cache_events_total{event=\"bypass\"} %d\n", cs.Bypasses)
	fmt.Fprintf(w, "dcserved_graph_cache_events_total{event=\"eviction\"} %d\n", cs.Evictions)
	fmt.Fprintln(w, "# HELP dcserved_graph_cache_resident_states States resident in the exploration cache.")
	fmt.Fprintln(w, "# TYPE dcserved_graph_cache_resident_states gauge")
	fmt.Fprintf(w, "dcserved_graph_cache_resident_states %d\n", cs.States)

	// The out-of-core engine's counters: nonzero spilled bytes mean some
	// evaluation outgrew the -mem-budget and degraded to disk instead of
	// growing the resident set.
	ss := explore.SpillCounters()
	fmt.Fprintln(w, "# HELP dcserved_spill_bytes_total Bytes written to exploration spill files (process-wide).")
	fmt.Fprintln(w, "# TYPE dcserved_spill_bytes_total counter")
	fmt.Fprintf(w, "dcserved_spill_bytes_total %d\n", ss.BytesSpilled)
	fmt.Fprintln(w, "# HELP dcserved_spill_events_total Out-of-core engine events (process-wide).")
	fmt.Fprintln(w, "# TYPE dcserved_spill_events_total counter")
	fmt.Fprintf(w, "dcserved_spill_events_total{event=\"frontier_run\"} %d\n", ss.FrontierRuns)
	fmt.Fprintf(w, "dcserved_spill_events_total{event=\"front_hit\"} %d\n", ss.FrontHits)
	fmt.Fprintf(w, "dcserved_spill_events_total{event=\"front_miss\"} %d\n", ss.FrontMisses)
	fmt.Fprintf(w, "dcserved_spill_events_total{event=\"shard_probe\"} %d\n", ss.ShardProbes)
	fmt.Fprintf(w, "dcserved_spill_events_total{event=\"shard_merge\"} %d\n", ss.ShardMerges)
}
