package tokenring

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func TestRingIsCorrector(t *testing.T) {
	// Dijkstra's theorem as a corrector check: for K ≥ n the ring refines
	// 'Legitimate corrects Legitimate' from true.
	for _, tc := range []struct{ n, k int }{{2, 2}, {3, 3}, {3, 4}, {4, 4}, {4, 5}} {
		sys, err := New(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AsCorrector().Check(); err != nil {
			t.Errorf("ring(n=%d,K=%d) should be a corrector: %v", tc.n, tc.k, err)
		}
	}
}

func TestLegitimateClosedAndConverges(t *testing.T) {
	sys := MustNew(3, 3)
	if err := spec.CheckClosed(sys.Ring, sys.Legitimate); err != nil {
		t.Errorf("legitimate states should be closed: %v", err)
	}
	if err := spec.CheckConverges(sys.Ring, state.True, sys.Legitimate); err != nil {
		t.Errorf("ring should converge to legitimate states: %v", err)
	}
}

func TestRingRefinesSpecFromLegitimate(t *testing.T) {
	sys := MustNew(3, 3)
	if err := sys.Spec.CheckRefinesFrom(sys.Ring, sys.Legitimate); err != nil {
		t.Errorf("ring should refine SPEC_ring from legitimate states: %v", err)
	}
}

func TestNonmaskingUnderCorruption(t *testing.T) {
	sys := MustNew(3, 3)
	rep := fault.CheckNonmasking(sys.Ring, sys.Corruption, sys.Spec, state.True, sys.Legitimate)
	if !rep.OK() {
		t.Errorf("ring should be nonmasking tolerant to counter corruption: %v", rep.Err)
	}
}

func TestRingIsNotFailSafe(t *testing.T) {
	// Corruption can create a second token, which a later step removes —
	// transiently violating the one-token safety property, so the ring is
	// only nonmasking, not fail-safe (nor masking), tolerant.
	sys := MustNew(3, 3)
	if rep := fault.CheckFailSafe(sys.Ring, sys.Corruption, sys.Spec, sys.Legitimate); rep.OK() {
		t.Error("ring must not be fail-safe tolerant to corruption")
	}
}

func TestTokenCountInvariants(t *testing.T) {
	// In any state there is at least one token (the classic pigeonhole
	// argument: if every i > 0 has x.i = x.(i-1) then x.(n-1) = x.0, so
	// process 0 is privileged).
	sys := MustNew(3, 4)
	err := sys.Schema.ForEachState(func(s state.State) bool {
		if sys.TokenCount(s) == 0 {
			t.Errorf("state %s has no token", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceHistogram(t *testing.T) {
	sys := MustNew(3, 3)
	hist, err := sys.ConvergenceSteps()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if want := 3 * 3 * 3; total != want {
		t.Errorf("histogram covers %d states; want %d", total, want)
	}
	legit := 0
	err = sys.Schema.ForEachState(func(s state.State) bool {
		if sys.Legitimate.Holds(s) {
			legit++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist[0] != legit {
		t.Errorf("distance-0 count %d; want %d legitimate states", hist[0], legit)
	}
	if len(hist) < 2 {
		t.Error("expected some states at positive convergence distance")
	}
}

func TestKBelowNRejected(t *testing.T) {
	if _, err := New(4, 3); err == nil {
		t.Error("K < n must be rejected")
	}
	if _, err := New(1, 3); err == nil {
		t.Error("n < 2 must be rejected")
	}
}

func TestStabilizationBound(t *testing.T) {
	// Dijkstra proved K ≥ n sufficient; the tight bound is K ≥ n-1. The
	// checker reproduces it: with n=4, K=2 (= n-2) there is a
	// non-converging execution — a cycle among illegitimate states — while
	// K = n-1 eliminates every illegitimate cycle.
	low := mustRawRing(t, 4, 2)
	g, err := explore.Build(low.Ring, state.True, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	illegit := g.SetOf(state.Not(low.Legitimate))
	found := false
	for _, comp := range g.SCCs(illegit) {
		member := explore.NewBitset(g.NumNodes())
		for _, v := range comp {
			member.Add(v)
		}
		for _, v := range comp {
			for _, e := range g.Out(v) {
				if member.Has(e.To) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("ring(n=4,K=2) should admit a non-converging cycle")
	}
	// With K = n-1 no illegitimate cycle exists at all: convergence holds
	// even for the unfair demon.
	good := mustRawRing(t, 4, 3)
	gg, err := explore.Build(good.Ring, state.True, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := gg.SetOf(state.Not(good.Legitimate))
	for _, comp := range gg.SCCs(bad) {
		member := explore.NewBitset(gg.NumNodes())
		for _, v := range comp {
			member.Add(v)
		}
		for _, v := range comp {
			for _, e := range gg.Out(v) {
				if member.Has(e.To) {
					t.Fatalf("ring(n=4,K=3) has an illegitimate cycle at %s", gg.State(v))
				}
			}
		}
	}
}

// mustRawRing builds a ring without the K ≥ n validation, for negative
// tests.
func mustRawRing(t *testing.T, n, k int) *System {
	t.Helper()
	vars := make([]state.Var, n)
	for i := 0; i < n; i++ {
		vars[i] = state.IntVar(xvar(i), k)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		t.Fatal(err)
	}
	sys := &System{N: n, K: k, Schema: sch}
	sys.build()
	return sys
}
