// Package tokenring implements Dijkstra's K-state self-stabilizing token
// ring (CACM 1974), the example whose compositional correctness proof the
// paper reports mechanizing in PVS (Section 7). In the theory's terms the
// ring is the canonical *nonmasking* design: transient faults may corrupt
// the counters arbitrarily, and the program itself is a corrector for the
// legitimacy predicate "exactly one process holds the token" — the paper's
// 'Z corrects X' with Z = X = the legitimate-states predicate.
//
// The ring has n processes with counters x.0..x.(n-1) over 0..K-1, K ≥ n:
//
//	bottom (process 0):  x.0 = x.(n-1)      --> x.0 := x.0 + 1 mod K
//	other  (process i):  x.i ≠ x.(i-1)      --> x.i := x.(i-1)
//
// Process 0 holds a token iff x.0 = x.(n-1); process i > 0 holds one iff
// x.i ≠ x.(i-1).
package tokenring

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// System is a K-state token ring over n processes.
type System struct {
	N, K   int
	Schema *state.Schema

	Ring *guarded.Program

	// Legitimate is the predicate "exactly one process holds a token";
	// it is both the correction predicate and the witness of the ring seen
	// as a corrector.
	Legitimate state.Predicate

	// Spec: safety — in legitimate states, a step never creates a second
	// token; liveness — the token circulates (every process is eventually
	// privileged). Problem is stated for computations within Legitimate.
	Spec spec.Problem

	// Corruption is the transient fault class: any single counter is set to
	// an arbitrary value.
	Corruption fault.Class
}

// New constructs a ring of n processes with K counter states. Dijkstra's
// theorem requires K ≥ n for stabilization.
func New(n, k int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("tokenring: need at least 2 processes (got %d)", n)
	}
	if k < n {
		return nil, fmt.Errorf("tokenring: need K ≥ n for stabilization (K=%d, n=%d)", k, n)
	}
	vars := make([]state.Var, n)
	for i := 0; i < n; i++ {
		vars[i] = state.IntVar(xvar(i), k)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, K: k, Schema: sch}
	sys.build()
	return sys, nil
}

// NewUnchecked builds a ring without the K ≥ n stabilization guard, so the
// necessity of the bound can be demonstrated (experiment E9 probes K = n-2,
// which admits a non-converging execution).
func NewUnchecked(n, k int) (*System, error) {
	if n < 2 || k < 2 {
		return nil, fmt.Errorf("tokenring: need n ≥ 2 and K ≥ 2 (n=%d, K=%d)", n, k)
	}
	vars := make([]state.Var, n)
	for i := 0; i < n; i++ {
		vars[i] = state.IntVar(xvar(i), k)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, K: k, Schema: sch}
	sys.build()
	return sys, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(n, k int) *System {
	sys, err := New(n, k)
	if err != nil {
		panic(err)
	}
	return sys
}

func xvar(i int) string { return fmt.Sprintf("x.%d", i) }

// HasToken reports whether process i is privileged in state s.
func (sys *System) HasToken(s state.State, i int) bool {
	if i == 0 {
		return s.Get(0) == s.Get(sys.N-1)
	}
	return s.Get(i) != s.Get(i-1)
}

// TokenCount returns the number of privileged processes in state s.
func (sys *System) TokenCount(s state.State) int {
	n := 0
	for i := 0; i < sys.N; i++ {
		if sys.HasToken(s, i) {
			n++
		}
	}
	return n
}

func (sys *System) build() {
	n, k := sys.N, sys.K
	actions := make([]guarded.Action, n)
	actions[0] = guarded.Det("move.0",
		state.Pred("x.0=x.last", func(s state.State) bool { return s.Get(0) == s.Get(n-1) }),
		func(s state.State) state.State { return s.With(0, (s.Get(0)+1)%k) },
	)
	// Kernel bytecode for "x.0 == x.(n-1) --> x.0 := (x.0+1) mod K". The
	// difftest suite builds the ring with and without the bytecode and
	// asserts graph identity, so the two forms cannot drift apart.
	actions[0].Compiled = &guarded.CompiledAction{
		Guard: []guarded.Op{
			{Code: guarded.OpVar, A: 0}, {Code: guarded.OpVar, A: int32(n - 1)}, {Code: guarded.OpEq},
		},
		Assigns: []guarded.CompiledAssign{{Var: 0, Expr: []guarded.Op{
			{Code: guarded.OpVar, A: 0}, {Code: guarded.OpConst, A: 1}, {Code: guarded.OpAdd},
			{Code: guarded.OpConst, A: int32(k)}, {Code: guarded.OpMod},
		}}},
	}
	for i := 1; i < n; i++ {
		i := i
		actions[i] = guarded.Det(fmt.Sprintf("move.%d", i),
			state.Pred(fmt.Sprintf("x.%d≠x.%d", i, i-1), func(s state.State) bool {
				return s.Get(i) != s.Get(i-1)
			}),
			func(s state.State) state.State { return s.With(i, s.Get(i-1)) },
		)
		// "x.i != x.(i-1) --> x.i := x.(i-1)" in bytecode.
		actions[i].Compiled = &guarded.CompiledAction{
			Guard: []guarded.Op{
				{Code: guarded.OpVar, A: int32(i)}, {Code: guarded.OpVar, A: int32(i - 1)}, {Code: guarded.OpNeq},
			},
			Assigns: []guarded.CompiledAssign{{Var: i, Expr: []guarded.Op{{Code: guarded.OpVar, A: int32(i - 1)}}}},
		}
	}
	sys.Ring = guarded.MustProgram(fmt.Sprintf("ring(n=%d,K=%d)", n, k), sys.Schema, actions...)

	sys.Legitimate = state.Pred("exactly one token", func(s state.State) bool {
		return sys.TokenCount(s) == 1
	})

	live := make([]spec.LeadsTo, 0, n)
	for i := 0; i < n; i++ {
		i := i
		live = append(live, spec.LeadsTo{
			Name: fmt.Sprintf("process %d eventually privileged", i),
			P:    state.True,
			Q:    state.Pred(fmt.Sprintf("token at %d", i), func(s state.State) bool { return sys.HasToken(s, i) }),
		})
	}
	sys.Spec = spec.Problem{
		Name: "SPEC_ring",
		Safety: spec.NeverStep("never more than one token (from legitimate states)", func(from, to state.State) bool {
			return sys.TokenCount(from) == 1 && sys.TokenCount(to) != 1
		}),
		Live: live,
	}

	faults := make([]guarded.Action, 0, n)
	for i := 0; i < n; i++ {
		i := i
		corrupt := guarded.Choice(fmt.Sprintf("corrupt.%d", i), state.True,
			func(s state.State) []state.State {
				out := make([]state.State, 0, k)
				for v := 0; v < k; v++ {
					out = append(out, s.With(i, v))
				}
				return out
			},
		)
		// "true --> x.i := ?" in bytecode: the wildcard enumerates the
		// domain in ascending order, exactly as the closure does.
		corrupt.Compiled = &guarded.CompiledAction{
			Guard:   []guarded.Op{{Code: guarded.OpConst, A: 1}},
			Assigns: []guarded.CompiledAssign{{Var: i, Wild: true}},
		}
		faults = append(faults, corrupt)
	}
	sys.Corruption = fault.NewClass("counter-corruption", faults...)
}

// AsCorrector returns the ring viewed as the theory's corrector component:
// Legitimate corrects Legitimate from any state (U = true) — the special
// case Z = X of 'Z corrects X' that the paper notes reduces to Arora &
// Gouda's closure-and-convergence. Checking it validates Dijkstra's
// stabilization theorem via the corrector conditions: Convergence is
// exactly self-stabilization.
func (sys *System) AsCorrector() core.Corrector {
	return core.Corrector{
		Name: sys.Ring.Name(),
		C:    sys.Ring,
		Z:    sys.Legitimate,
		X:    sys.Legitimate,
		U:    state.True,
	}
}

// ConvergenceSteps returns, for every state of the ring, the worst-case
// number of steps (over demonic scheduling among enabled moves) needed to
// reach a legitimate state, as a histogram indexed by distance; index 0
// counts the legitimate states themselves. It quantifies the recovery time
// the nonmasking design pays.
func (sys *System) ConvergenceSteps() ([]int, error) {
	g, err := explore.Shared(sys.Ring, state.True, explore.Options{})
	if err != nil {
		return nil, err
	}
	// Worst-case distance: value iteration of d(s) = 1 + max over enabled
	// transitions of d(s'), with d = 0 on legitimate states. Because the
	// ring converges, the iteration reaches a fixpoint.
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NumNodes())
	for id := range dist {
		if sys.Legitimate.Holds(g.State(id)) {
			dist[id] = 0
		} else {
			dist[id] = inf
		}
	}
	for changed := true; changed; {
		changed = false
		for id := 0; id < g.NumNodes(); id++ {
			if dist[id] == 0 {
				continue
			}
			worst := 0
			ok := true
			for _, e := range g.Out(id) {
				if dist[e.To] == inf {
					ok = false
					break
				}
				if dist[e.To] > worst {
					worst = dist[e.To]
				}
			}
			if ok && len(g.Out(id)) > 0 && worst+1 < dist[id] {
				dist[id] = worst + 1
				changed = true
			}
		}
	}
	var hist []int
	for _, d := range dist {
		if d == inf {
			return nil, fmt.Errorf("tokenring: some state does not converge")
		}
		for len(hist) <= d {
			hist = append(hist, 0)
		}
		hist[d]++
	}
	return hist, nil
}
