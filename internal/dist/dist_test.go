package dist

import (
	"fmt"
	"testing"
)

// echoNode replies to every ping once; used to test the network plumbing.
type echoNode struct {
	id       int
	received []Message
}

func (e *echoNode) Init(ctx *Context) {
	if e.id == 0 {
		ctx.Broadcast("ping")
	}
}

func (e *echoNode) Receive(ctx *Context, msg Message) {
	e.received = append(e.received, msg)
	if s, ok := msg.Payload.(string); ok && s == "ping" {
		ctx.Send(msg.From, "pong")
	}
}

func TestNetworkDeliversAndReplays(t *testing.T) {
	run := func() (Stats, []Message) {
		nodes := []*echoNode{{id: 0}, {id: 1}, {id: 2}}
		handlers := make([]Handler, len(nodes))
		for i, n := range nodes {
			handlers[i] = n
		}
		net, err := NewNetwork(handlers, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats, nodes[0].received
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Fatalf("same seed must give same stats: %+v vs %+v", s1, s2)
	}
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatalf("node 0 should receive 2 pongs, got %d and %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].From != r2[i].From {
			t.Fatalf("delivery order must replay: %v vs %v", r1, r2)
		}
	}
}

func TestNetworkDrops(t *testing.T) {
	nodes := []*echoNode{{id: 0}, {id: 1}, {id: 2}, {id: 3}}
	handlers := make([]Handler, len(nodes))
	for i, n := range nodes {
		handlers[i] = n
	}
	net, err := NewNetwork(handlers, Options{Seed: 5, DropProbability: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Error("expected drops at 0.9 drop probability")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, Options{}); err == nil {
		t.Error("empty handler list must be rejected")
	}
	if _, err := NewNetwork([]Handler{&echoNode{}}, Options{DropProbability: 1}); err == nil {
		t.Error("drop probability 1 must be rejected")
	}
}

func TestOMValidation(t *testing.T) {
	if _, err := RunOM(2, 1, 0, nil, Options{}); err == nil {
		t.Error("n < f+2 must be rejected")
	}
	if _, err := RunOM(4, 1, 2, nil, Options{}); err == nil {
		t.Error("non-binary commander value must be rejected")
	}
	if _, err := RunOM(4, 1, 0, map[int]bool{1: true, 2: true}, Options{}); err == nil {
		t.Error("more Byzantine processes than f must be rejected")
	}
}

func TestOMNoFaults(t *testing.T) {
	for _, n := range []int{4, 5, 7} {
		for _, v := range []int{0, 1} {
			res, err := RunOM(n, 1, v, nil, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for id, d := range res.Decisions {
				if d != v {
					t.Errorf("n=%d: lieutenant %d decided %d, want %d", n, id, d, v)
				}
			}
		}
	}
}

func TestOMInteractiveConsistency(t *testing.T) {
	// n ≥ 3f+1: agreement among honest lieutenants always, and validity
	// whenever the commander is honest — across seeds and Byzantine sets.
	cases := []struct {
		n, f int
		byz  []map[int]bool
	}{
		{4, 1, []map[int]bool{{0: true}, {1: true}, {2: true}, {3: true}}},
		{5, 1, []map[int]bool{{0: true}, {2: true}}},
		{7, 2, []map[int]bool{{0: true, 3: true}, {1: true, 2: true}, {0: true, 6: true}}},
	}
	for _, tc := range cases {
		for _, byz := range tc.byz {
			for seed := int64(0); seed < 25; seed++ {
				for _, v := range []int{0, 1} {
					res, err := RunOM(tc.n, tc.f, v, byz, Options{Seed: seed})
					if err != nil {
						t.Fatal(err)
					}
					decided, agree := res.HonestAgree(byz)
					if !agree {
						t.Fatalf("n=%d f=%d byz=%v seed=%d: honest lieutenants disagree: %v",
							tc.n, tc.f, byz, seed, res.Decisions)
					}
					if !byz[0] && decided != v {
						t.Fatalf("n=%d f=%d byz=%v seed=%d: validity violated: decided %d, commander sent %d",
							tc.n, tc.f, byz, seed, decided, v)
					}
				}
			}
		}
	}
}

func TestOMBoundIsTight(t *testing.T) {
	// With n = 3 and f = 1 (< 3f+1) interactive consistency must fail for
	// some seed: a Byzantine lieutenant can break validity.
	byz := map[int]bool{2: true}
	violated := false
	for seed := int64(0); seed < 200 && !violated; seed++ {
		res, err := RunOM(3, 1, 1, byz, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if d, agree := res.HonestAgree(byz); !agree || d != 1 {
			violated = true
		}
	}
	if !violated {
		t.Error("n=3, f=1 should violate interactive consistency for some seed")
	}
}

func TestOMMessageComplexityGrows(t *testing.T) {
	// OM(f) sends O(n^(f+1)) messages; check the growth is visible.
	r1, err := RunOM(7, 1, 1, nil, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOM(7, 2, 1, nil, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Sent <= r1.Stats.Sent {
		t.Errorf("OM(2) should send more messages than OM(1): %d vs %d", r2.Stats.Sent, r1.Stats.Sent)
	}
}

func TestOMDeterministicReplay(t *testing.T) {
	byz := map[int]bool{0: true}
	a, err := RunOM(4, 1, 1, byz, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOM(4, 1, 1, byz, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Decisions) != fmt.Sprint(b.Decisions) || a.Stats != b.Stats {
		t.Errorf("same seed must replay: %v/%v vs %v/%v", a.Decisions, a.Stats, b.Decisions, b.Stats)
	}
}
