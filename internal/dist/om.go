package dist

import (
	"fmt"
	"sort"
)

// This file implements Lamport, Shostak and Pease's oral-messages algorithm
// OM(f) over the simulated network, generalizing the paper's Section 6.2
// construction from n = 4, f = 1 to any n ≥ 3f + 1. In the theory's terms
// each lieutenant's exchanged-information tree is a distributed detector
// (its recursive majority witnesses "this path reports the correct value")
// and the final majority resolution is the corrector that re-establishes
// agreement among non-Byzantine processes.

// omMsg carries a value along a path of distinct process ids; the path
// starts at the commander (id 0) and records every relayer.
type omMsg struct {
	Path  []int
	Value int
}

// omNode is one process running OM(f).
type omNode struct {
	id        int
	n, f      int
	byzantine bool
	value     int // commander only: the value to distribute
	tree      map[string]int
	sendSkip  float64 // probability a Byzantine node omits a send
}

var _ Handler = (*omNode)(nil)

func pathKey(path []int) string {
	key := make([]byte, len(path))
	for i, p := range path {
		key[i] = byte(p)
	}
	return string(key)
}

func pathContains(path []int, id int) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}

// Init implements Handler: the commander distributes its value.
func (nd *omNode) Init(ctx *Context) {
	if nd.id != 0 {
		return
	}
	path := []int{0}
	nd.tree[pathKey(path)] = nd.value
	for j := 1; j < nd.n; j++ {
		v := nd.value
		if nd.byzantine {
			if ctx.Rand().Float64() < nd.sendSkip {
				continue // a Byzantine commander may stay silent
			}
			v = ctx.Rand().Intn(2)
		}
		ctx.Send(j, omMsg{Path: path, Value: v})
	}
}

// Receive implements Handler: store the reported value and relay it one
// level deeper while the path is short enough.
func (nd *omNode) Receive(ctx *Context, msg Message) {
	m, ok := msg.Payload.(omMsg)
	if !ok || pathContains(m.Path, nd.id) {
		return
	}
	key := pathKey(m.Path)
	if _, seen := nd.tree[key]; seen {
		return // first report along a path wins
	}
	nd.tree[key] = m.Value
	if len(m.Path) >= nd.f+1 {
		return // leaf level: no further relay
	}
	relayPath := append(append([]int(nil), m.Path...), nd.id)
	for j := 1; j < nd.n; j++ {
		if j == nd.id || pathContains(m.Path, j) {
			continue
		}
		v := m.Value
		if nd.byzantine {
			if ctx.Rand().Float64() < nd.sendSkip {
				continue
			}
			v = ctx.Rand().Intn(2)
		}
		ctx.Send(j, omMsg{Path: relayPath, Value: v})
	}
}

// resolve computes the decision for the subtree rooted at path, following
// Lamport's OM(m) recursion exactly: at a leaf the directly received value
// is used (default 0 when the message never arrived); at an interior node
// the resolver takes the strict majority of its own directly received value
// for the path plus the recursive results for every other lieutenant's
// relay, breaking ties toward the default. Relays never echo back to
// processes already on the path, so the resolver itself is not among the
// relay children — its vote is exactly its direct value.
func (nd *omNode) resolve(path []int) int {
	if len(path) >= nd.f+1 {
		return nd.tree[pathKey(path)] // zero default
	}
	counts := [2]int{}
	votes := 1
	counts[nd.tree[pathKey(path)]]++ // own directly received value
	for j := 1; j < nd.n; j++ {
		if j == nd.id || pathContains(path, j) {
			continue
		}
		child := append(append([]int(nil), path...), j)
		counts[nd.resolve(child)]++
		votes++
	}
	if counts[1] > votes/2 {
		return 1
	}
	return 0
}

// Decision returns the lieutenant's final value.
func (nd *omNode) Decision() int {
	return nd.resolve([]int{0})
}

// OMResult reports one OM(f) execution.
type OMResult struct {
	// Decisions maps each lieutenant id (1..n-1) to its decision.
	Decisions map[int]int
	Stats     Stats
}

// HonestAgree reports whether all non-Byzantine lieutenants decided the same
// value, and returns that value.
func (r OMResult) HonestAgree(byzantine map[int]bool) (int, bool) {
	decided := -1
	for id, v := range r.Decisions {
		if byzantine[id] {
			continue
		}
		if decided == -1 {
			decided = v
		} else if decided != v {
			return 0, false
		}
	}
	return decided, true
}

// RunOM executes the oral-messages algorithm with n processes (process 0 is
// the commander), at most f Byzantine failures as flagged in `byzantine`,
// and the given commander input. The classical bound requires n ≥ 3f + 1 for
// interactive consistency; RunOM itself accepts any n ≥ f + 2 so that the
// bound's necessity can be demonstrated experimentally.
func RunOM(n, f, commanderValue int, byzantine map[int]bool, opts Options) (OMResult, error) {
	if f < 0 || n < f+2 {
		return OMResult{}, fmt.Errorf("dist: OM needs n ≥ f+2 (n=%d, f=%d)", n, f)
	}
	if commanderValue != 0 && commanderValue != 1 {
		return OMResult{}, fmt.Errorf("dist: commander value must be binary (got %d)", commanderValue)
	}
	if len(byzantine) > f {
		return OMResult{}, fmt.Errorf("dist: %d Byzantine processes exceed f=%d", len(byzantine), f)
	}
	nodes := make([]*omNode, n)
	handlers := make([]Handler, n)
	for id := 0; id < n; id++ {
		nodes[id] = &omNode{
			id: id, n: n, f: f,
			byzantine: byzantine[id],
			value:     commanderValue,
			tree:      map[string]int{},
			sendSkip:  0.2,
		}
		handlers[id] = nodes[id]
	}
	net, err := NewNetwork(handlers, opts)
	if err != nil {
		return OMResult{}, err
	}
	stats, err := net.Run()
	if err != nil {
		return OMResult{}, err
	}
	res := OMResult{Decisions: map[int]int{}, Stats: stats}
	ids := make([]int, 0, n-1)
	for id := 1; id < n; id++ {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		res.Decisions[id] = nodes[id].Decision()
	}
	return res, nil
}
