// Package dist provides a deterministic discrete-event simulation of
// message-passing processes — the "distributed simulation" mode of the
// paper's SIEFAST environment (Section 7). Nodes exchange messages through a
// seeded network that can reorder, delay and drop; equal seeds give equal
// executions, so distributed runs are replayable.
//
// The package also implements Lamport's oral-messages algorithm OM(f) on top
// of the network (om.go), extending the paper's n = 4, f = 1 Byzantine
// agreement construction (Section 6.2) to the general n ≥ 3f + 1 case the
// paper defers to its reference [11].
package dist

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Message is a payload in flight between two nodes.
type Message struct {
	From, To int
	Payload  any
}

// Handler is a simulated process. Implementations must be deterministic
// given the same inputs; randomness should come from the *rand.Rand the
// network hands out, so runs replay.
type Handler interface {
	// Init runs once before any delivery; the handler may send its first
	// messages here.
	Init(ctx *Context)
	// Receive handles one delivered message and may send further messages.
	Receive(ctx *Context, msg Message)
}

// Context gives a handler access to its identity and the network.
type Context struct {
	Self int
	net  *Network
	rng  *rand.Rand
}

// Send enqueues a message for delivery; the network assigns a delivery time
// with seeded jitter, so sends may be reordered.
func (c *Context) Send(to int, payload any) {
	c.net.send(c.Self, to, payload)
}

// Broadcast sends to every node except the sender.
func (c *Context) Broadcast(payload any) {
	for id := range c.net.handlers {
		if id != c.Self {
			c.Send(id, payload)
		}
	}
}

// NumNodes returns the network size.
func (c *Context) NumNodes() int { return len(c.net.handlers) }

// Rand returns the handler's seeded randomness source (per-node, stable
// across runs with the same network seed).
func (c *Context) Rand() *rand.Rand { return c.rng }

// Options configure a network.
type Options struct {
	// Seed drives delivery order, jitter, drops, and handler randomness.
	Seed int64
	// DropProbability drops each message independently (0 = reliable).
	DropProbability float64
	// MaxJitter bounds the extra delivery delay per message (default 8).
	MaxJitter int
	// MaxEvents bounds the simulation (default 1 << 20).
	MaxEvents int
}

// Stats summarizes a completed simulation.
type Stats struct {
	Delivered int
	Dropped   int
	Sent      int
}

// Network is a deterministic event-driven message router.
type Network struct {
	handlers []Handler
	opts     Options
	rng      *rand.Rand
	now      int64
	seq      int64
	queue    eventQueue
	stats    Stats
	ctxs     []*Context
}

type event struct {
	at  int64
	seq int64 // FIFO tie-break for equal times
	msg Message
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)   { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)     { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any       { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peekTime() int64 { return q[0].at }
func (q eventQueue) empty() bool     { return len(q) == 0 }

var _ heap.Interface = (*eventQueue)(nil)

// NewNetwork builds a network over the given handlers (node id = index).
func NewNetwork(handlers []Handler, opts Options) (*Network, error) {
	if len(handlers) == 0 {
		return nil, errors.New("dist: need at least one handler")
	}
	if opts.DropProbability < 0 || opts.DropProbability >= 1 {
		return nil, fmt.Errorf("dist: drop probability %v out of [0,1)", opts.DropProbability)
	}
	if opts.MaxJitter == 0 {
		opts.MaxJitter = 8
	}
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 1 << 20
	}
	n := &Network{handlers: handlers, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	n.ctxs = make([]*Context, len(handlers))
	for id := range handlers {
		n.ctxs[id] = &Context{
			Self: id,
			net:  n,
			rng:  rand.New(rand.NewSource(opts.Seed ^ (int64(id+1) * 0x1e3779b97f4a7c15))),
		}
	}
	return n, nil
}

func (n *Network) send(from, to int, payload any) {
	n.stats.Sent++
	if to < 0 || to >= len(n.handlers) {
		return
	}
	if n.opts.DropProbability > 0 && n.rng.Float64() < n.opts.DropProbability {
		n.stats.Dropped++
		return
	}
	delay := 1 + int64(n.rng.Intn(n.opts.MaxJitter))
	n.seq++
	heap.Push(&n.queue, event{at: n.now + delay, seq: n.seq, msg: Message{From: from, To: to, Payload: payload}})
}

// Run initializes every handler and delivers messages until the queue drains
// or MaxEvents is hit. It returns the delivery statistics and an error when
// the event bound was exceeded (a hint of a non-terminating protocol).
func (n *Network) Run() (Stats, error) {
	for id, h := range n.handlers {
		h.Init(n.ctxs[id])
	}
	for !n.queue.empty() {
		if n.stats.Delivered >= n.opts.MaxEvents {
			return n.stats, fmt.Errorf("dist: exceeded %d delivered events", n.opts.MaxEvents)
		}
		n.now = n.queue.peekTime()
		e := heap.Pop(&n.queue).(event)
		n.stats.Delivered++
		n.handlers[e.msg.To].Receive(n.ctxs[e.msg.To], e.msg)
	}
	return n.stats, nil
}
