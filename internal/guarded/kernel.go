package guarded

import (
	"fmt"

	"detcorr/internal/state"
)

// This file implements the compiled transition kernel: a per-program
// successor generator that works on raw mixed-radix state indices and
// reusable scratch rows instead of immutable state.State values, so that the
// explicit-state engines in internal/explore pay zero heap allocations per
// transition in the steady state.
//
// Guards and statements come in two forms:
//
//   - native: GCL-compiled actions carry CompiledAction bytecode (a small
//     stack machine over the scratch row, lowered by internal/gcl), which the
//     kernel evaluates directly on []int32 rows;
//   - closure: hand-written Go actions fall back to a generic adapter that
//     decodes the index into a pooled scratch state.State view (one backing
//     array per Scratch) and calls Guard/Stmt/Next. The adapter allocates
//     only what the closures themselves allocate.
//
// Both forms emit successors in exactly the order Program.Successors does
// (actions in declaration order, each action's nondeterminism in statement
// order), which is what keeps kernel-built graphs byte-identical to
// closure-built ones under the canonical-renumbering contract.
//
// The hot-path functions below carry //dc:zeroalloc and the Kernel struct
// //dc:immutable; the dcvet zeroalloc and graphmut analyzers hold this
// file to both contracts. Compile is the sanctioned Kernel builder:
//
//dc:mutates Kernel

// OpCode is a kernel bytecode instruction. The expression machine is a pure
// stack machine over int operands: leaves push, unary ops rewrite the top of
// the stack, binary ops pop two and push one. Booleans are 0/1. The
// operators mirror the GCL expression language exactly, including total
// modulo (x % 0 = 0, result sign-normalized to [0,b)).
type OpCode uint8

const (
	// OpConst pushes the constant A.
	OpConst OpCode = iota + 1
	// OpVar pushes row[A] + B (B is the domain offset of range variables).
	OpVar
	// OpNot rewrites the boolean top t to 1-t.
	OpNot
	// OpNeg negates the integer top.
	OpNeg
	// Binary boolean connectives (operands are 0/1).
	OpAnd
	OpOr
	OpImplies
	// Comparisons (push 0/1).
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	// Integer arithmetic. OpMod is total: a % 0 = 0, otherwise the result
	// is normalized into [0, b).
	OpAdd
	OpSub
	OpMul
	OpMod
)

// Op is one kernel bytecode instruction with its immediates.
type Op struct {
	Code OpCode
	A    int32
	B    int32
}

// CompiledAssign is one lowered assignment of an action statement: variable
// Var receives the value of Expr minus the domain offset Off, evaluated on
// the pre-state row (assignments are simultaneous). Wild marks the GCL '?'
// form: the variable nondeterministically receives every domain value, and
// Expr is nil.
type CompiledAssign struct {
	Var  int
	Off  int
	Expr []Op
	Wild bool
}

// CompiledAction is an action lowered to kernel bytecode. A nil Guard means
// the guard is not compiled (for example after Action.Restrict conjoins an
// opaque predicate) and the kernel must consult the closure Guard; the
// assignments can still execute natively. Assigns are in declaration order;
// wild assignments enumerate their values lexicographically in that order
// (earlier '?' varies slowest), matching the GCL closure semantics.
type CompiledAction struct {
	Guard   []Op
	Assigns []CompiledAssign
}

// evalOps runs the expression machine on a row. stack must have capacity for
// the expression's maximal depth (Kernel sizes it at Compile time).
//
//dc:zeroalloc
func evalOps(ops []Op, row []int32, stack []int) int {
	sp := 0
	for i := range ops {
		op := &ops[i]
		switch op.Code {
		case OpConst:
			stack[sp] = int(op.A)
			sp++
		case OpVar:
			stack[sp] = int(row[op.A]) + int(op.B)
			sp++
		case OpNot:
			stack[sp-1] = 1 - stack[sp-1]
		case OpNeg:
			stack[sp-1] = -stack[sp-1]
		default:
			sp--
			a, b := stack[sp-1], stack[sp]
			var v int
			switch op.Code {
			case OpAnd:
				v = b2i(a != 0 && b != 0)
			case OpOr:
				v = b2i(a != 0 || b != 0)
			case OpImplies:
				v = b2i(a == 0 || b != 0)
			case OpEq:
				v = b2i(a == b)
			case OpNeq:
				v = b2i(a != b)
			case OpLt:
				v = b2i(a < b)
			case OpLe:
				v = b2i(a <= b)
			case OpGt:
				v = b2i(a > b)
			case OpGe:
				v = b2i(a >= b)
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpMod:
				if b == 0 {
					v = 0
				} else {
					v = ((a % b) + b) % b
				}
			default:
				panic(fmt.Sprintf("guarded: unknown opcode %d", op.Code))
			}
			stack[sp-1] = v
		}
	}
	return stack[0]
}

//dc:zeroalloc
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// opsStackDepth returns the maximal stack depth evalOps needs for ops.
//
//dc:zeroalloc
func opsStackDepth(ops []Op) int {
	depth, max := 0, 0
	for _, op := range ops {
		switch op.Code {
		case OpConst, OpVar:
			depth++
			if depth > max {
				max = depth
			}
		case OpNot, OpNeg:
			// top rewrite
		default:
			depth--
		}
	}
	return max
}

// Succ is one successor emitted by the kernel: the index of the action that
// produced it and the mixed-radix index of the target state.
type Succ struct {
	Action int32
	To     uint64
}

// kact is one action prepared for kernel execution.
type kact struct {
	comp  *CompiledAction // nil: fully closure-evaluated
	guard state.Predicate
	next  func(state.State) []state.State
	stmt  func(state.State) state.State
}

// Kernel is a compiled, immutable successor generator for a program, built
// once per Program with Compile. The kernel itself holds no mutable state
// and may be shared across goroutines; each worker obtains its own Scratch
// (NewScratch) carrying the reusable row, stack, and view buffers, and all
// stepping goes through the scratch. The schema must be indexable for the
// index-addressed methods to be meaningful (internal/explore checks this
// before compiling).
//
//dc:immutable
type Kernel struct {
	prog     *Program
	schema   *state.Schema
	nv       int
	sizes    []int32
	acts     []kact
	maxStack int
	maxWild  int
}

// Compile builds the transition kernel for p. GCL-compiled actions execute
// natively from their CompiledAction bytecode; all other actions go through
// the closure adapter. Compile is cheap (no state enumeration).
func Compile(p *Program) *Kernel {
	sch := p.Schema()
	nv := sch.NumVars()
	k := &Kernel{
		prog:     p,
		schema:   sch,
		nv:       nv,
		sizes:    make([]int32, nv),
		acts:     make([]kact, p.NumActions()),
		maxStack: 1,
		maxWild:  1,
	}
	for i := 0; i < nv; i++ {
		k.sizes[i] = int32(sch.Var(i).Domain.Size)
	}
	for i := range k.acts {
		a := p.Action(i)
		k.acts[i] = kact{comp: a.Compiled, guard: a.Guard, next: a.Next, stmt: a.Stmt}
		if c := a.Compiled; c != nil {
			if d := opsStackDepth(c.Guard); d > k.maxStack {
				k.maxStack = d
			}
			wild := 0
			for _, as := range c.Assigns {
				if as.Wild {
					wild++
				} else if d := opsStackDepth(as.Expr); d > k.maxStack {
					k.maxStack = d
				}
			}
			if wild > k.maxWild {
				k.maxWild = wild
			}
		}
	}
	return k
}

// Program returns the program the kernel was compiled from.
func (k *Kernel) Program() *Program { return k.prog }

// Schema returns the program's schema.
func (k *Kernel) Schema() *state.Schema { return k.schema }

// NumActions returns the number of actions.
func (k *Kernel) NumActions() int { return len(k.acts) }

// Native reports whether action a executes from compiled bytecode (guard and
// statement both lowered) rather than through the closure adapter.
func (k *Kernel) Native(a int) bool {
	c := k.acts[a].comp
	return c != nil && c.Guard != nil
}

// Scratch is the per-worker mutable state of a kernel: the decoded pre-state
// row, the successor row, the expression stack, and the pooled state.State
// view over the row for closure actions. A Scratch must not be shared
// between goroutines; stepping through it performs no heap allocations on
// the native path (and only the closures' own allocations on the adapter
// path) once the caller-provided buffers have warmed up.
type Scratch struct {
	k       *Kernel
	row     []int32 // decoded pre-state
	post    []int32 // successor row, rebuilt per firing
	stack   []int   // expression machine stack
	view    state.State
	wildVar []int32 // '?' variables of the current firing
	wildVal []int32 // odometer over their values
	succBuf []Succ  // reused by Step for compiled emissions
	loaded  uint64
	hasRow  bool
}

// NewScratch returns a fresh per-worker scratch for the kernel.
func (k *Kernel) NewScratch() *Scratch {
	row := make([]int32, k.nv)
	return &Scratch{
		k:       k,
		row:     row,
		post:    make([]int32, k.nv),
		stack:   make([]int, k.maxStack),
		view:    k.schema.ViewState(row),
		wildVar: make([]int32, k.maxWild),
		wildVal: make([]int32, k.maxWild),
	}
}

// Load decodes the state with the given mixed-radix index into the scratch
// row. Subsequent Enabled calls evaluate against that row.
//
//dc:zeroalloc
func (sc *Scratch) Load(idx uint64) {
	if sc.hasRow && sc.loaded == idx {
		return
	}
	sc.k.schema.DecodeInto(sc.row, idx)
	sc.loaded = idx
	sc.hasRow = true
}

// View decodes the index and returns the pooled view state over the scratch
// row. The view is invalidated by the next Load/Transitions/Step call.
func (sc *Scratch) View(idx uint64) state.State {
	sc.Load(idx)
	return sc.view
}

// Enabled reports whether action a's guard holds at the loaded row.
//
//dc:zeroalloc
func (sc *Scratch) Enabled(a int) bool {
	return sc.guardHolds(&sc.k.acts[a], sc.row, sc.view)
}

// EnabledOnRow evaluates action a's guard directly on a caller-owned row
// (for example a graph arena row) without copying it into the scratch.
//
//dc:zeroalloc
func (sc *Scratch) EnabledOnRow(row []int32, a int) bool {
	return sc.guardHolds(&sc.k.acts[a], row, sc.k.schema.ViewState(row))
}

//dc:zeroalloc
func (sc *Scratch) guardHolds(a *kact, row []int32, view state.State) bool {
	if a.comp != nil && a.comp.Guard != nil {
		return evalOps(a.comp.Guard, row, sc.stack) != 0
	}
	return a.guard.Holds(view)
}

// Transitions appends every transition enabled at the state with the given
// index to buf and returns it, in exactly the order Program.Successors
// enumerates them. With a buffer of sufficient capacity the native path
// performs no heap allocations.
//
//dc:zeroalloc
func (sc *Scratch) Transitions(idx uint64, buf []Succ) []Succ {
	sc.Load(idx)
	for ai := range sc.k.acts {
		a := &sc.k.acts[ai]
		if !sc.guardHolds(a, sc.row, sc.view) {
			continue
		}
		if a.comp != nil {
			buf = sc.compiledSucc(int32(ai), a.comp, buf)
			continue
		}
		if a.stmt != nil {
			buf = append(buf, Succ{Action: int32(ai), To: a.stmt(sc.view).Index()})
			continue
		}
		for _, ns := range a.next(sc.view) {
			buf = append(buf, Succ{Action: int32(ai), To: ns.Index()})
		}
	}
	return buf
}

// TransitionsOf appends the transitions of the single action a enabled at
// the state with the given index to buf and returns it — one iteration of
// Transitions, in the same emission order. A disabled guard appends nothing.
// It is the primitive behind edge-scoped CSR repair, which re-expands only
// the actions an edit touched.
//
//dc:zeroalloc
func (sc *Scratch) TransitionsOf(idx uint64, ai int, buf []Succ) []Succ {
	sc.Load(idx)
	a := &sc.k.acts[ai]
	if !sc.guardHolds(a, sc.row, sc.view) {
		return buf
	}
	if a.comp != nil {
		return sc.compiledSucc(int32(ai), a.comp, buf)
	}
	if a.stmt != nil {
		return append(buf, Succ{Action: int32(ai), To: a.stmt(sc.view).Index()})
	}
	for _, ns := range a.next(sc.view) {
		buf = append(buf, Succ{Action: int32(ai), To: ns.Index()})
	}
	return buf
}

// Step appends the mixed-radix indices of all successors of idx to buf and
// returns it: Transitions stripped of the action labels. It is the
// allocation-free reachability primitive.
//
//dc:zeroalloc
func (sc *Scratch) Step(idx uint64, buf []uint64) []uint64 {
	sc.Load(idx)
	for ai := range sc.k.acts {
		a := &sc.k.acts[ai]
		if !sc.guardHolds(a, sc.row, sc.view) {
			continue
		}
		if a.comp != nil {
			sc.succBuf = sc.succBuf[:0]
			sc.succBuf = sc.compiledSucc(int32(ai), a.comp, sc.succBuf)
			for _, s := range sc.succBuf {
				buf = append(buf, s.To)
			}
			continue
		}
		if a.stmt != nil {
			buf = append(buf, a.stmt(sc.view).Index())
			continue
		}
		for _, ns := range a.next(sc.view) {
			buf = append(buf, ns.Index())
		}
	}
	return buf
}

// compiledSucc executes a lowered statement at the loaded row: deterministic
// right-hand sides are evaluated on the pre-state (simultaneous assignment)
// into the post row, then wild ('?') variables enumerate their domains
// lexicographically in declaration order. The emitted index is maintained
// incrementally over the wild odometer, so each successor costs O(#wild).
//
//dc:zeroalloc
func (sc *Scratch) compiledSucc(ai int32, c *CompiledAction, buf []Succ) []Succ {
	k := sc.k
	copy(sc.post, sc.row)
	nw := 0
	for i := range c.Assigns {
		as := &c.Assigns[i]
		if as.Wild {
			sc.wildVar[nw] = int32(as.Var)
			nw++
			continue
		}
		v := evalOps(as.Expr, sc.row, sc.stack) - as.Off
		if v < 0 || v >= int(k.sizes[as.Var]) {
			panic(fmt.Sprintf("guarded: kernel write of %d out of domain for variable %q (size %d)",
				v, k.schema.Var(as.Var).Name, k.sizes[as.Var]))
		}
		sc.post[as.Var] = int32(v)
	}
	base := k.schema.IndexOfVals(sc.post)
	if nw == 0 {
		return append(buf, Succ{Action: ai, To: base})
	}
	// Zero the wild variables' contribution, then run the odometer with the
	// last declared '?' varying fastest (matching the closure expansion).
	for j := 0; j < nw; j++ {
		w := sc.wildVar[j]
		base -= uint64(sc.post[w]) * k.schema.Radix(int(w))
		sc.wildVal[j] = 0
	}
	idx := base
	for {
		buf = append(buf, Succ{Action: ai, To: idx})
		j := nw - 1
		for ; j >= 0; j-- {
			w := sc.wildVar[j]
			sc.wildVal[j]++
			if sc.wildVal[j] < k.sizes[w] {
				idx += k.schema.Radix(int(w))
				break
			}
			idx -= uint64(sc.wildVal[j]-1) * k.schema.Radix(int(w))
			sc.wildVal[j] = 0
		}
		if j < 0 {
			return buf
		}
	}
}
