package guarded

// Regression tests for Writes-metadata propagation through every composition
// operator. The declared write-set is advisory, but downstream consumers
// (internal/lint.Check, the flow certifier) treat a non-nil set as complete,
// so each operator must either carry an exact set or surrender to nil —
// never under-claim. Each test compares the declared sets against the
// semantically observed ones (exhaustive enumeration of the schema).

import (
	"reflect"
	"sort"
	"testing"

	"detcorr/internal/state"
)

// semanticWrites enumerates every state of the schema and records, per
// action, the variables whose value some enabled transition changes — the
// ground truth any complete declared write-set must cover.
func semanticWrites(t *testing.T, p *Program) map[string][]string {
	t.Helper()
	sch := p.Schema()
	touched := make(map[string]map[string]bool, p.NumActions())
	for _, a := range p.Actions() {
		touched[a.Name] = map[string]bool{}
	}
	err := sch.ForEachState(func(s state.State) bool {
		for _, a := range p.Actions() {
			if !a.Enabled(s) {
				continue
			}
			for _, ns := range a.Next(s) {
				for i := 0; i < sch.NumVars(); i++ {
					if ns.Get(i) != s.Get(i) {
						touched[a.Name][sch.Var(i).Name] = true
					}
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]string, len(touched))
	for name, vars := range touched {
		set := make([]string, 0, len(vars))
		for v := range vars {
			set = append(set, v)
		}
		sort.Strings(set)
		out[name] = set
	}
	return out
}

// requireCompleteWrites asserts that every action with a declared (non-nil)
// write-set covers its semantically observed writes.
func requireCompleteWrites(t *testing.T, p *Program) {
	t.Helper()
	observed := semanticWrites(t, p)
	for _, a := range p.Actions() {
		if a.Writes == nil {
			t.Errorf("%s: action %q lost its declared write-set (nil)", p.Name(), a.Name)
			continue
		}
		declared := map[string]bool{}
		for _, v := range a.Writes {
			declared[v] = true
		}
		for _, v := range observed[a.Name] {
			if !declared[v] {
				t.Errorf("%s: action %q writes %q but declares only %v",
					p.Name(), a.Name, v, a.Writes)
			}
		}
	}
}

func writesTestSchema(t *testing.T) *state.Schema {
	t.Helper()
	return state.MustSchema(state.IntVar("x", 3), state.IntVar("y", 3), state.BoolVar("ok"))
}

func TestParallelPreservesWrites(t *testing.T) {
	sch := writesTestSchema(t)
	p := MustProgram("p", sch, Assign(sch, "setx", state.True, "x", 1))
	q := MustProgram("q", sch,
		Assign(sch, "sety", state.True, "y", 2),
		Assign(sch, "setx", state.True, "x", 2)) // name collision: renamed q.setx
	r := MustParallel("r", p, q)
	requireCompleteWrites(t, r)
	renamed, ok := r.ActionByName("q.setx")
	if !ok {
		t.Fatal("collision rename missing")
	}
	if !reflect.DeepEqual(renamed.Writes, []string{"x"}) {
		t.Errorf("renamed action writes = %v, want [x]", renamed.Writes)
	}
}

func TestRestrictPreservesWrites(t *testing.T) {
	sch := writesTestSchema(t)
	p := MustProgram("p", sch, Assign(sch, "setx", state.True, "x", 1))
	z := state.Pred("y=0", func(s state.State) bool { return s.GetName("y") == 0 })
	r := Restrict(z, p)
	requireCompleteWrites(t, r)
	if got := r.Action(0).Writes; !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("restricted writes = %v, want [x]", got)
	}
}

func TestSequentialPreservesWrites(t *testing.T) {
	sch := writesTestSchema(t)
	p := MustProgram("p", sch, Assign(sch, "setx", state.True, "x", 1))
	q := MustProgram("q", sch, Assign(sch, "sety", state.True, "y", 2))
	z := state.Pred("x=1", func(s state.State) bool { return s.GetName("x") == 1 })
	r, err := Sequential("r", p, z, q)
	if err != nil {
		t.Fatal(err)
	}
	requireCompleteWrites(t, r)
}

func TestLiftPreservesWrites(t *testing.T) {
	base := state.MustSchema(state.IntVar("x", 3))
	ext := writesTestSchema(t)
	p := MustProgram("p", base, Assign(base, "setx", state.True, "x", 1))
	lifted := MustLift(p, ext)
	requireCompleteWrites(t, lifted)
	if got := lifted.Action(0).Writes; !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("lifted writes = %v, want [x]", got)
	}
}

func TestEncapsulateActionWrites(t *testing.T) {
	sch := writesTestSchema(t)
	okIdx := sch.MustIndexOf("ok")
	setOK := func(pre, post state.State) state.State { return post.With(okIdx, 1) }
	base := Assign(sch, "setx", state.True, "x", 1) // declares Writes [x]

	// Declared base + declared extras: the union, deduplicated and sorted.
	enc := EncapsulateAction(base, state.True, setOK, "ok", "x")
	if got := enc.Writes; !reflect.DeepEqual(got, []string{"ok", "x"}) {
		t.Errorf("encapsulated writes = %v, want [ok x]", got)
	}
	requireCompleteWrites(t, MustProgram("enc", sch, enc))

	// No declared extras: the base set carries over unchanged (the
	// pre-fix code dropped it to nil, hiding the base writes from lint).
	plain := EncapsulateAction(base, state.True, nil)
	if got := plain.Writes; !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("no-extra encapsulated writes = %v, want [x]", got)
	}

	// Unknown base: the union must stay unknown even with declared
	// extras — claiming exactly the extras would under-claim the opaque
	// base statement.
	opaque := Det("opaque", state.True, func(s state.State) state.State { return s.With(0, 2) })
	unk := EncapsulateAction(opaque, state.True, setOK, "ok")
	if unk.Writes != nil {
		t.Errorf("unknown-base encapsulated writes = %v, want nil", unk.Writes)
	}
}
