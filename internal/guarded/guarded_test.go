package guarded

import (
	"strings"
	"testing"

	"detcorr/internal/state"
)

func counterSchema(t *testing.T, n int) *state.Schema {
	t.Helper()
	s, err := state.NewSchema(state.IntVar("x", n))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func incAction(sch *state.Schema, n int) Action {
	i := sch.MustIndexOf("x")
	return Det("inc",
		state.Pred("x<max", func(s state.State) bool { return s.Get(i) < n-1 }),
		func(s state.State) state.State { return s.With(i, s.Get(i)+1) },
	)
}

func decAction(sch *state.Schema) Action {
	i := sch.MustIndexOf("x")
	return Det("dec",
		state.Pred("x>0", func(s state.State) bool { return s.Get(i) > 0 }),
		func(s state.State) state.State { return s.With(i, s.Get(i)-1) },
	)
}

func TestProgramValidation(t *testing.T) {
	sch := counterSchema(t, 3)
	if _, err := NewProgram("p", nil, incAction(sch, 3)); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := NewProgram("p", sch, incAction(sch, 3), incAction(sch, 3)); err == nil {
		t.Error("duplicate action names must be rejected")
	}
	if _, err := NewProgram("p", sch, Action{Name: "broken"}); err == nil {
		t.Error("nil statement must be rejected")
	}
	if _, err := NewProgram("p", sch, Action{Next: func(s state.State) []state.State { return nil }}); err == nil {
		t.Error("empty action name must be rejected")
	}
	empty, err := NewProgram("empty", sch)
	if err != nil {
		t.Fatalf("empty program must be legal: %v", err)
	}
	if !empty.Deadlocked(state.MustState(sch, 0)) {
		t.Error("empty program is deadlocked everywhere")
	}
}

func TestEnabledSuccessorsDeadlock(t *testing.T) {
	sch := counterSchema(t, 3)
	p := MustProgram("count", sch, incAction(sch, 3), decAction(sch))
	mid := state.MustState(sch, 1)
	if got := p.Enabled(mid); len(got) != 2 {
		t.Errorf("Enabled(mid) = %v", got)
	}
	lo := state.MustState(sch, 0)
	succ := p.Successors(lo)
	if len(succ) != 1 || succ[0].To.Get(0) != 1 {
		t.Errorf("Successors(0) = %v", succ)
	}
	if p.Deadlocked(mid) {
		t.Error("mid must not be deadlocked")
	}
	oneAction := MustProgram("only-inc", sch, incAction(sch, 3))
	if !oneAction.Deadlocked(state.MustState(sch, 2)) {
		t.Error("x=2 deadlocks the pure counter")
	}
	if _, ok := p.ActionByName("inc"); !ok {
		t.Error("ActionByName(inc) should succeed")
	}
	if _, ok := p.ActionByName("zzz"); ok {
		t.Error("ActionByName(zzz) should fail")
	}
}

func TestParallelUnionAndRenaming(t *testing.T) {
	sch := counterSchema(t, 3)
	p := MustProgram("p", sch, incAction(sch, 3))
	q := MustProgram("q", sch, incAction(sch, 3), decAction(sch))
	r, err := Parallel("r", p, q)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumActions() != 3 {
		t.Fatalf("parallel composition has %d actions, want 3", r.NumActions())
	}
	names := strings.Join(r.ActionNames(), ",")
	if !strings.Contains(names, "q.inc") {
		t.Errorf("colliding action should be renamed: %s", names)
	}
	other := counterSchema(t, 4)
	if _, err := Parallel("bad", p, MustProgram("o", other, incAction(other, 4))); err == nil {
		t.Error("cross-schema composition must be rejected")
	}
}

func TestRestrictAndSequential(t *testing.T) {
	sch := counterSchema(t, 4)
	p := MustProgram("p", sch, incAction(sch, 4))
	even := state.Pred("even", func(s state.State) bool { return s.Get(0)%2 == 0 })
	rp := Restrict(even, p)
	if rp.Action(0).Enabled(state.MustState(sch, 1)) {
		t.Error("restricted action must be disabled at odd x")
	}
	if !rp.Action(0).Enabled(state.MustState(sch, 2)) {
		t.Error("restricted action must be enabled at even x")
	}
	q := MustProgram("q", sch, decAction(sch))
	seq, err := Sequential("p;q", p, even, q)
	if err != nil {
		t.Fatal(err)
	}
	// p ;_Z q = p ‖ (Z ∧ q): dec only fires at even states.
	st := state.MustState(sch, 1)
	for _, tr := range seq.Successors(st) {
		if seq.Action(tr.Action).Name == "dec" {
			t.Error("dec must be blocked at odd x")
		}
	}
}

func TestLift(t *testing.T) {
	base := state.MustSchema(state.IntVar("x", 3))
	ext := state.MustSchema(state.IntVar("x", 3), state.BoolVar("flag"))
	p := MustProgram("p", base, incAction(base, 3))
	lp, err := Lift(p, ext)
	if err != nil {
		t.Fatal(err)
	}
	st := state.MustState(ext, 1, 1)
	succ := lp.Successors(st)
	if len(succ) != 1 {
		t.Fatalf("lifted successors: %v", succ)
	}
	if succ[0].To.GetName("x") != 2 || succ[0].To.GetName("flag") != 1 {
		t.Errorf("lifted step must only change base variables: %s", succ[0].To)
	}
	if got, _ := Lift(p, base); got != p {
		t.Error("lifting to the same schema should be the identity")
	}
	missing := state.MustSchema(state.BoolVar("flag"))
	if _, err := Lift(p, missing); err == nil {
		t.Error("lifting to a schema missing base variables must fail")
	}
}

func TestEncapsulationChecker(t *testing.T) {
	base := state.MustSchema(state.IntVar("x", 3))
	ext := state.MustSchema(state.IntVar("x", 3), state.BoolVar("ok"))
	p := MustProgram("p", base, incAction(base, 3))
	lifted := MustLift(p, ext)

	// Legal: base action with an extra guard and an extra effect on ok.
	okIdx := ext.MustIndexOf("ok")
	enc := EncapsulateAction(lifted.Action(0), state.True, func(pre, post state.State) state.State {
		return post.With(okIdx, 1)
	})
	good := MustProgram("good", ext, enc)
	if err := CheckEncapsulation(good, p, state.True); err != nil {
		t.Errorf("legal encapsulation rejected: %v", err)
	}

	// Illegal: an action that updates x in a way p cannot.
	rogue := Det("rogue", state.True, func(s state.State) state.State {
		return s.With(0, 0)
	})
	bad := MustProgram("bad", ext, rogue)
	err := CheckEncapsulation(bad, p, state.True)
	if err == nil {
		t.Fatal("rogue update must violate encapsulation")
	}
	var viol *EncapsulationViolation
	if !asViolation(err, &viol) {
		t.Fatalf("want *EncapsulationViolation, got %T", err)
	}
	if viol.ActionName != "rogue" {
		t.Errorf("violating action %q", viol.ActionName)
	}

	// The same rogue action is fine when restricted out of scope by the
	// `within` predicate.
	zero := state.Pred("x=0", func(s state.State) bool { return s.GetName("x") == 0 })
	if err := CheckEncapsulation(bad, p, zero); err != nil {
		t.Errorf("rogue is a no-op at x=0; within-restricted check should pass: %v", err)
	}
}

func TestEncapsulateActionReadsPreState(t *testing.T) {
	// st' must read the *initial* values (Section 2.1): the extra effect
	// copies x's pre-value into y even though st changes x.
	sch := state.MustSchema(state.IntVar("x", 3), state.IntVar("y", 3))
	xi, yi := sch.MustIndexOf("x"), sch.MustIndexOf("y")
	baseAct := Det("bump", state.True, func(s state.State) state.State {
		return s.With(xi, (s.Get(xi)+1)%3)
	})
	enc := EncapsulateAction(baseAct, state.True, func(pre, post state.State) state.State {
		return post.With(yi, pre.Get(xi))
	})
	st := state.MustState(sch, 2, 0)
	next := enc.Next(st)[0]
	if next.Get(xi) != 0 || next.Get(yi) != 2 {
		t.Errorf("want x=0,y=2 (pre-value), got %s", next)
	}
}

func TestChoiceAndSkip(t *testing.T) {
	sch := counterSchema(t, 3)
	c := Choice("any", state.True, func(s state.State) []state.State {
		return []state.State{s.With(0, 0), s.With(0, 2)}
	})
	st := state.MustState(sch, 1)
	if got := c.Next(st); len(got) != 2 {
		t.Errorf("Choice successors: %d", len(got))
	}
	sk := Skip("idle", state.True)
	if got := sk.Next(st); len(got) != 1 || !got[0].Equal(st) {
		t.Error("Skip must not change the state")
	}
	asg := Assign(sch, "reset", state.True, "x", 0)
	if got := asg.Next(st); got[0].Get(0) != 0 {
		t.Error("Assign must set the value")
	}
}

func asViolation(err error, target **EncapsulationViolation) bool {
	v, ok := err.(*EncapsulationViolation)
	if ok {
		*target = v
	}
	return ok
}
