package guarded

import (
	"testing"

	"detcorr/internal/state"
)

// closureProgram is a small program whose actions carry only closures — no
// Stmt fast path beyond what Det provides and no Compiled bytecode — so the
// kernel must route every transition through the generic adapter.
func closureProgram(t *testing.T) *Program {
	t.Helper()
	sch, err := state.NewSchema(state.IntVar("x", 4), state.IntVar("y", 3), state.BoolVar("f"))
	if err != nil {
		t.Fatal(err)
	}
	acts := []Action{
		Det("step",
			state.Pred("x<3", func(s state.State) bool { return s.Get(0) < 3 }),
			func(s state.State) state.State { return s.With(0, s.Get(0)+1) },
		),
		Det("wrap",
			state.Pred("x=3", func(s state.State) bool { return s.Get(0) == 3 }),
			func(s state.State) state.State { return s.With(0, 0).With(2, 1) },
		),
		Choice("branch", state.Pred("f", func(s state.State) bool { return s.Bool(2) }),
			func(s state.State) []state.State {
				out := make([]state.State, 0, 3)
				for v := 0; v < 3; v++ {
					out = append(out, s.With(1, v).With(2, 0))
				}
				return out
			},
		),
	}
	return MustProgram("closures", sch, acts...)
}

// TestKernelAdapterMatchesSuccessors pins the generic closure adapter to the
// Program.Successors contract over the full state space: same targets, same
// action attribution, same order.
func TestKernelAdapterMatchesSuccessors(t *testing.T) {
	p := closureProgram(t)
	k := Compile(p)
	for a := 0; a < k.NumActions(); a++ {
		if k.Native(a) {
			t.Fatalf("action %d unexpectedly native — this test wants the adapter path", a)
		}
	}
	sc := k.NewScratch()
	n, _ := p.Schema().NumStates()
	var succ []Succ
	for idx := uint64(0); idx < n; idx++ {
		succ = sc.Transitions(idx, succ[:0])
		s := p.Schema().StateAt(idx)
		want := p.Successors(s)
		if len(succ) != len(want) {
			t.Fatalf("state %d: %d kernel transitions, %d closure successors", idx, len(succ), len(want))
		}
		for i, tr := range want {
			if int(succ[i].Action) != tr.Action || succ[i].To != tr.To.Index() {
				t.Fatalf("state %d transition %d: kernel (%d,%d) vs closure (%d,%d)",
					idx, i, succ[i].Action, succ[i].To, tr.Action, tr.To.Index())
			}
		}
	}
}

// TestKernelAdapterAllocCeiling is the companion regression gate to the GCL
// zero-alloc test: the closure adapter cannot be allocation-free (each
// closure call builds fresh State values), but its per-batch allocation count
// must stay bounded by a small constant — if a change makes it scale with
// anything other than the emitted successors, this trips.
func TestKernelAdapterAllocCeiling(t *testing.T) {
	p := closureProgram(t)
	k := Compile(p)
	sc := k.NewScratch()
	n, _ := p.Schema().NumStates()
	idxBuf := make([]uint64, 0, 16)
	for idx := uint64(0); idx < n; idx++ { // warm internal buffers
		idxBuf = sc.Step(idx, idxBuf[:0])
	}
	var idx uint64
	allocs := testing.AllocsPerRun(500, func() {
		idxBuf = sc.Step(idx%n, idxBuf[:0])
		idx++
	})
	// The worst state has 1 Det successor (2 allocs via With) plus 3 Choice
	// successors (slice + 6 With copies + adapter view). 32 is a generous
	// ceiling — the point is catching accidental O(states)·large regressions,
	// not pinning the exact constant.
	if allocs > 32 {
		t.Errorf("closure adapter: %v allocs per step batch, ceiling 32", allocs)
	}
}
