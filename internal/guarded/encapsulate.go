package guarded

import (
	"fmt"
	"sort"

	"detcorr/internal/state"
)

// EncapsulateAction builds an action of the form
//
//	g ∧ g' --> st ‖ st'
//
// from a base action g --> st (Section 2.1, "Encapsulates"): the combined
// action executes only when both guards hold; st and st' execute atomically;
// and st' reads the variables of the *initial* state (the pre-state), as the
// definition requires. extra must not update variables of the base program's
// schema — that invariant is enforced by the semantic checker
// CheckEncapsulation, and violating it makes the composed program fail it.
//
// The base action must already be expressed over the full schema (use Lift).
// extra receives the pre-state and the post-state produced by st, and
// returns the final state; it should only modify non-base variables of post.
//
// extraWrites declares the variables st' may assign. The combined action's
// write-set is the union of the base's declared writes and extraWrites —
// but only when the base declares one: if base.Writes is nil (unknown), the
// combined set stays nil too, since claiming exactly extraWrites would
// silently under-claim whatever the opaque base statement touches.
func EncapsulateAction(base Action, extraGuard state.Predicate, extra func(pre, post state.State) state.State, extraWrites ...string) Action {
	return Action{
		Name:   base.Name,
		Guard:  state.And(base.Guard, extraGuard),
		Writes: unionWrites(base.Writes, extraWrites),
		Next: func(s state.State) []state.State {
			nexts := base.Next(s)
			out := make([]state.State, len(nexts))
			for i, ns := range nexts {
				if extra != nil {
					ns = extra(s, ns)
				}
				out[i] = ns
			}
			return out
		},
	}
}

// unionWrites merges a base write-set with the encapsulation extras,
// deduplicated and sorted. A nil base means the base statement's writes are
// unknown, so the union is unknown too.
func unionWrites(base, extra []string) []string {
	if base == nil {
		return nil
	}
	if len(extra) == 0 {
		return base
	}
	seen := make(map[string]bool, len(base)+len(extra))
	out := make([]string, 0, len(base)+len(extra))
	for _, lst := range [][]string{base, extra} {
		for _, v := range lst {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// EncapsulationViolation describes a counterexample to "pp encapsulates p".
type EncapsulationViolation struct {
	ActionName string
	Pre        state.State
	Post       state.State
	Reason     string
}

// Error implements the error interface.
func (v *EncapsulationViolation) Error() string {
	return fmt.Sprintf("guarded: encapsulation violated by action %q at %s -> %s: %s",
		v.ActionName, v.Pre, v.Post, v.Reason)
}

// CheckEncapsulation verifies semantically that pp encapsulates p
// (Section 2.1): every action of pp that updates variables of p behaves,
// on those variables, exactly like some action of p that is enabled at the
// projected state. The check enumerates all states of pp's schema satisfying
// `within` (pass state.True to check the whole space).
//
// This is the semantic content of the syntactic definition: if the update of
// p-variables by a pp-action at state s cannot be produced by any enabled
// p-action at the projection of s, then the pp-action is not of the form
// g ∧ g' --> st ‖ st' for any action g --> st of p.
func CheckEncapsulation(pp, p *Program, within state.Predicate) error {
	proj, err := state.NewProjection(pp.Schema(), p.Schema())
	if err != nil {
		return fmt.Errorf("guarded: encapsulation check: %w", err)
	}
	var viol error
	err = pp.Schema().ForEachState(func(s state.State) bool {
		if !within.Holds(s) {
			return true
		}
		base := proj.Apply(s)
		for _, a := range pp.actions {
			if !a.Enabled(s) {
				continue
			}
			for _, ns := range a.Next(s) {
				nbase := proj.Apply(ns)
				if nbase.Equal(base) {
					continue // does not update variables of p
				}
				if !someActionProduces(p, base, nbase) {
					viol = &EncapsulationViolation{
						ActionName: a.Name,
						Pre:        s,
						Post:       ns,
						Reason: fmt.Sprintf("projected step %s -> %s matches no enabled action of %q",
							base, nbase, p.Name()),
					}
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return viol
}

func someActionProduces(p *Program, from, to state.State) bool {
	for _, a := range p.actions {
		if !a.Enabled(from) {
			continue
		}
		for _, ns := range a.Next(from) {
			if ns.Equal(to) {
				return true
			}
		}
	}
	return false
}
