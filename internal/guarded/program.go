package guarded

import (
	"fmt"
	"strings"

	"detcorr/internal/state"
)

// Program is a finite set of actions over a schema (Section 2.1). Programs
// are immutable after construction; the composition operators return new
// programs.
type Program struct {
	name    string
	schema  *state.Schema
	actions []Action
}

// NewProgram validates and builds a program. Action names must be unique
// within the program, statements must be non-nil, and there must be at least
// zero actions (an empty program is legal: it deadlocks everywhere, which is
// how the paper's ';' composition can disable a component).
func NewProgram(name string, sch *state.Schema, actions ...Action) (*Program, error) {
	if sch == nil {
		return nil, fmt.Errorf("guarded: program %q has nil schema", name)
	}
	seen := make(map[string]bool, len(actions))
	for _, a := range actions {
		if err := a.validate(); err != nil {
			return nil, fmt.Errorf("guarded: program %q: %w", name, err)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("guarded: program %q: duplicate action name %q", name, a.Name)
		}
		seen[a.Name] = true
	}
	return &Program{
		name:    name,
		schema:  sch,
		actions: append([]Action(nil), actions...),
	}, nil
}

// MustProgram is NewProgram but panics on invalid input; for statically
// known programs (the built-in case studies).
func MustProgram(name string, sch *state.Schema, actions ...Action) *Program {
	p, err := NewProgram(name, sch, actions...)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the program's name.
func (p *Program) Name() string { return p.name }

// Schema returns the schema the program's variables are drawn from.
func (p *Program) Schema() *state.Schema { return p.schema }

// NumActions returns the number of actions.
func (p *Program) NumActions() int { return len(p.actions) }

// Action returns the i-th action.
func (p *Program) Action(i int) Action { return p.actions[i] }

// Actions returns a copy of the action list.
func (p *Program) Actions() []Action {
	return append([]Action(nil), p.actions...)
}

// ActionNames returns the action names in declaration order.
func (p *Program) ActionNames() []string {
	names := make([]string, len(p.actions))
	for i, a := range p.actions {
		names[i] = a.Name
	}
	return names
}

// ActionByName returns the named action and whether it exists.
func (p *Program) ActionByName(name string) (Action, bool) {
	for _, a := range p.actions {
		if a.Name == name {
			return a, true
		}
	}
	return Action{}, false
}

// Enabled returns the indices of the actions enabled in s.
func (p *Program) Enabled(s state.State) []int {
	var out []int
	for i, a := range p.actions {
		if a.Enabled(s) {
			out = append(out, i)
		}
	}
	return out
}

// Deadlocked reports whether no action of p is enabled in s; a maximal
// computation may be finite only at such a state (Section 2.1,
// "Computation": maximality).
func (p *Program) Deadlocked(s state.State) bool {
	for _, a := range p.actions {
		if a.Enabled(s) {
			return false
		}
	}
	return true
}

// Transition is a single step (s, To) produced by the action with the given
// index in the program's action list.
type Transition struct {
	Action int
	To     state.State
}

// Successors returns all transitions of p enabled in s.
func (p *Program) Successors(s state.State) []Transition {
	var out []Transition
	for i, a := range p.actions {
		if !a.Enabled(s) {
			continue
		}
		for _, t := range a.Next(s) {
			out = append(out, Transition{Action: i, To: t})
		}
	}
	return out
}

// Rename returns a copy of the program with a new name.
func (p *Program) Rename(name string) *Program {
	q := *p
	q.name = name
	return &q
}

// String renders the program header and its action names.
func (p *Program) String() string {
	return fmt.Sprintf("program %s over %s [%s]", p.name, p.schema, strings.Join(p.ActionNames(), ", "))
}
