// Package guarded implements the program model of Section 2.1: a program is
// a finite set of guarded-command actions over finite-domain variables. Each
// action has a unique name and the form
//
//	<name> :: <guard> --> <statement>
//
// where the guard is a boolean expression over the program variables and the
// statement atomically updates zero or more variables. The package provides
// the paper's three program compositions (Section 2.1.1): parallel
// composition p ‖ q, restriction Z ∧ p, and sequential composition p ;_Z q,
// along with encapsulation (construction and a semantic checker).
package guarded

import (
	"fmt"

	"detcorr/internal/state"
)

// Action is a named guarded command. Next returns the set of successor
// states reached by executing the statement in the given state; it is
// invoked only in states where the guard holds. Deterministic actions return
// exactly one successor; nondeterministic actions (such as the paper's
// Byzantine fault actions, Section 6.2) may return several. Next must be
// pure: it must not retain or mutate its argument.
type Action struct {
	Name  string
	Guard state.Predicate
	Next  func(state.State) []state.State

	// Writes optionally declares the variables the statement may assign.
	// nil means unknown (the statement is an opaque closure); an empty
	// non-nil slice declares that the statement writes nothing. The GCL
	// compiler fills it in, and internal/lint.Check uses it to flag
	// potential write-write interference in compositions without
	// exploring the state space. It is advisory metadata: the semantics
	// of Next are authoritative.
	Writes []string

	// Stmt optionally exposes the deterministic statement directly: when
	// non-nil, Next must be equivalent to returning the single state
	// Stmt(s). Det, Assign, and Skip set it; the compiled transition
	// kernel uses it to emit the one successor without allocating the
	// []state.State wrapper Next has to return.
	Stmt func(state.State) state.State

	// Compiled optionally carries the action's guard and statement
	// lowered to kernel bytecode (see Kernel). The GCL compiler fills it
	// in; it must describe exactly the same guard and statement as
	// Guard/Next, which remain authoritative. Transformations that change
	// the guard or statement must drop or adjust it (see
	// Action.Restrict).
	Compiled *CompiledAction
}

// Det builds a deterministic action from a pure statement function.
func Det(name string, guard state.Predicate, stmt func(state.State) state.State) Action {
	return Action{
		Name:  name,
		Guard: guard,
		Next: func(s state.State) []state.State {
			return []state.State{stmt(s)}
		},
		Stmt: stmt,
	}
}

// Choice builds a nondeterministic action whose statement may produce any of
// the successors returned by stmt.
func Choice(name string, guard state.Predicate, stmt func(state.State) []state.State) Action {
	return Action{Name: name, Guard: guard, Next: stmt}
}

// Skip builds an action that is enabled by the guard but leaves the state
// unchanged. Self-loops are occasionally useful to model busy components.
func Skip(name string, guard state.Predicate) Action {
	a := Det(name, guard, func(s state.State) state.State { return s })
	a.Writes = []string{}
	return a
}

// Assign builds the common deterministic action "guard --> name := value".
func Assign(sch *state.Schema, name string, guard state.Predicate, varName string, value int) Action {
	i := sch.MustIndexOf(varName)
	a := Det(name, guard, func(s state.State) state.State { return s.With(i, value) })
	a.Writes = []string{varName}
	return a
}

// Enabled reports whether the action's guard holds in s (Section 2.1,
// "Enabled").
func (a Action) Enabled(s state.State) bool { return a.Guard.Holds(s) }

// Restrict returns the action Z ∧ g --> st (the ∧ composition applied to a
// single action, as in the paper's notation section). The statement is
// unchanged, so any compiled statement bytecode is kept; the compiled guard
// is dropped (Z is an opaque predicate), which makes the kernel evaluate the
// restricted guard through the closure while still executing the statement
// natively.
func (a Action) Restrict(z state.Predicate) Action {
	var comp *CompiledAction
	if a.Compiled != nil {
		comp = &CompiledAction{Assigns: a.Compiled.Assigns}
	}
	return Action{
		Name:     a.Name,
		Guard:    state.And(z, a.Guard),
		Next:     a.Next,
		Writes:   a.Writes,
		Stmt:     a.Stmt,
		Compiled: comp,
	}
}

// WithName returns a copy of the action renamed; composition operators use
// it to keep action names unique.
func (a Action) WithName(name string) Action {
	a.Name = name
	return a
}

func (a Action) validate() error {
	if a.Name == "" {
		return fmt.Errorf("guarded: action with empty name")
	}
	if a.Next == nil {
		return fmt.Errorf("guarded: action %q has nil statement", a.Name)
	}
	return nil
}
