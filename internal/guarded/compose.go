package guarded

import (
	"fmt"

	"detcorr/internal/state"
)

// Parallel returns the parallel composition p ‖ q (Section 2.1.1): a program
// whose actions are the union of the actions of p and q. Both programs must
// be over the same schema (lift one with Lift first if it is over a
// sub-schema). Colliding action names are disambiguated with a program-name
// prefix.
func Parallel(name string, p, q *Program) (*Program, error) {
	if p.schema != q.schema {
		return nil, fmt.Errorf("guarded: parallel composition of %q and %q over different schemas (%s vs %s); lift to a common schema first",
			p.name, q.name, p.schema, q.schema)
	}
	actions := make([]Action, 0, len(p.actions)+len(q.actions))
	seen := make(map[string]bool, len(p.actions)+len(q.actions))
	add := func(owner string, a Action) {
		if seen[a.Name] {
			a = a.WithName(owner + "." + a.Name)
		}
		seen[a.Name] = true
		actions = append(actions, a)
	}
	for _, a := range p.actions {
		add(p.name, a)
	}
	for _, a := range q.actions {
		add(q.name, a)
	}
	return NewProgram(name, p.schema, actions...)
}

// MustParallel is Parallel but panics on schema mismatch.
func MustParallel(name string, p, q *Program) *Program {
	r, err := Parallel(name, p, q)
	if err != nil {
		panic(err)
	}
	return r
}

// ParallelAll folds Parallel over the given programs.
func ParallelAll(name string, progs ...*Program) (*Program, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("guarded: parallel composition of zero programs")
	}
	acc := progs[0]
	var err error
	for _, q := range progs[1:] {
		acc, err = Parallel(name, acc, q)
		if err != nil {
			return nil, err
		}
	}
	return acc.Rename(name), nil
}

// Restrict returns the restriction Z ∧ p (Section 2.1.1): every action
// g --> st of p becomes Z ∧ g --> st.
func Restrict(z state.Predicate, p *Program) *Program {
	actions := make([]Action, len(p.actions))
	for i, a := range p.actions {
		actions[i] = a.Restrict(z)
	}
	return MustProgram(fmt.Sprintf("%s ∧ %s", z, p.name), p.schema, actions...)
}

// Sequential returns the sequential composition p ;_Z q = p ‖ (Z ∧ q)
// (Section 2.1.1). In the paper's designs, p is typically a detector that
// truthifies the witness predicate Z, and q the component whose execution is
// gated on it (for example DR ; IR in the TMR construction, Section 6.1).
func Sequential(name string, p *Program, z state.Predicate, q *Program) (*Program, error) {
	return Parallel(name, p, Restrict(z, q))
}

// MustSequential is Sequential but panics on schema mismatch.
func MustSequential(name string, p *Program, z state.Predicate, q *Program) *Program {
	r, err := Sequential(name, p, z, q)
	if err != nil {
		panic(err)
	}
	return r
}

// Lift re-expresses a program over a larger schema that contains every
// variable of the program's own schema. Guards are evaluated on, and
// statements applied to, the projection; variables outside the base schema
// are left untouched. Lifting is how the paper's refinement setting is
// realized: the intolerant p keeps its meaning inside the extended state
// space of the tolerant p'.
func Lift(p *Program, target *state.Schema) (*Program, error) {
	if p.schema == target {
		return p, nil
	}
	proj, err := state.NewProjection(target, p.schema)
	if err != nil {
		return nil, fmt.Errorf("guarded: lift %q: %w", p.name, err)
	}
	// Pre-resolve where each base variable lives in the target schema.
	baseIdx := make([]int, p.schema.NumVars())
	for i := 0; i < p.schema.NumVars(); i++ {
		j, ok := target.IndexOf(p.schema.Var(i).Name)
		if !ok {
			return nil, fmt.Errorf("guarded: lift %q: variable %q missing in target", p.name, p.schema.Var(i).Name)
		}
		baseIdx[i] = j
	}
	actions := make([]Action, len(p.actions))
	for i, a := range p.actions {
		base := a
		actions[i] = Action{
			Name:   base.Name,
			Writes: base.Writes,
			Guard:  proj.Lift(base.Guard),
			Next: func(s state.State) []state.State {
				small := proj.Apply(s)
				nexts := base.Next(small)
				out := make([]state.State, len(nexts))
				for k, ns := range nexts {
					full := s
					for bi, ti := range baseIdx {
						if ns.Get(bi) != small.Get(bi) {
							full = full.With(ti, ns.Get(bi))
						}
					}
					out[k] = full
				}
				return out
			},
		}
	}
	return NewProgram(p.name, target, actions...)
}

// MustLift is Lift but panics on schema mismatch.
func MustLift(p *Program, target *state.Schema) *Program {
	r, err := Lift(p, target)
	if err != nil {
		panic(err)
	}
	return r
}
