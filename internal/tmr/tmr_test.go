package tmr

import (
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestIntolerantRefinesSpecFromS(t *testing.T) {
	sys := newSys(t)
	if err := sys.Spec.CheckRefinesFrom(sys.Intolerant, sys.S); err != nil {
		t.Errorf("IR should refine SPEC_io from S: %v", err)
	}
}

func TestIntolerantNotFailSafe(t *testing.T) {
	sys := newSys(t)
	if rep := fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S); rep.OK() {
		t.Error("IR must not be fail-safe tolerant: it copies a corrupted x")
	}
}

func TestFailSafeTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("DR;IR should be fail-safe one-input-corruption-tolerant: %v", rep.Err)
	}
}

func TestFailSafeDeadlocksUnderXCorruption(t *testing.T) {
	// The paper: "Program DR;IR deadlocks when the value of x gets
	// corrupted" — so it is not masking tolerant.
	sys := newSys(t)
	if rep := fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.S); rep.OK() {
		t.Error("DR;IR must not be masking tolerant")
	}
}

func TestMaskingTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("DR;IR ‖ CR should be masking one-input-corruption-tolerant: %v", rep.Err)
	}
}

func TestStaticDetectorDR(t *testing.T) {
	// The paper: "(x=y ∨ x=z) detects (x=uncor) in the program that merely
	// evaluates the state predicate (x=y ∨ x=z) upon starting from the
	// states where at most one input value is corrupted."
	sys := newSys(t)
	evalOnly := guarded.MustProgram("DR", sys.Schema) // no actions: pure evaluation
	d := core.Detector{
		Name: "DR",
		D:    evalOnly,
		Z:    sys.Witness,
		X:    sys.Detection,
		U:    sys.T,
	}
	if err := d.Check(); err != nil {
		t.Errorf("(x=y ∨ x=z) detects (x=uncor) from T should hold: %v", err)
	}
}

func TestWitnessUnsoundOutsideT(t *testing.T) {
	// With two corrupted inputs the witness can hold while x is corrupted:
	// Safeness fails from true — the detector is sound only within T.
	sys := newSys(t)
	evalOnly := guarded.MustProgram("DR", sys.Schema)
	d := core.Detector{D: evalOnly, Z: sys.Witness, X: sys.Detection, U: state.True}
	if err := d.Check(); err == nil {
		t.Error("the DR witness must be unsound when two inputs can be corrupted")
	}
}

func TestCorrectorCR(t *testing.T) {
	// CR's correction and witness predicate are both out=uncor; within the
	// full TMR program, out=uncor corrects out=uncor from T.
	sys := newSys(t)
	c := core.Corrector{
		Name: "CR",
		C:    sys.Masking,
		Z:    sys.OutCorrect,
		X:    sys.OutCorrect,
		U:    sys.T,
	}
	if err := c.Check(); err != nil {
		t.Errorf("out=uncor corrects out=uncor in TMR from T should hold: %v", err)
	}
}

func TestTheorem3_6OnDRIR(t *testing.T) {
	sys := newSys(t)
	res := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.Faults, sys.S, sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 3.6 instance (DR;IR): %v", res.Err)
	}
	if len(res.Detectors) != 1 {
		t.Fatalf("expected one detector (one IR action), got %d", len(res.Detectors))
	}
	// The constructed witness Z is the refined guard out=⊥ ∧ (x=y ∨ x=z);
	// wherever it holds with the witness X, the paper's detection predicate
	// x=uncor must hold too on span states (Z ⇒ X ⇒ sf ⇒ safe copy).
	d := res.Detectors[0]
	err := sys.Schema.ForEachState(func(s state.State) bool {
		if sys.T.Holds(s) && d.Z.Holds(s) && !sys.Detection.Holds(s) {
			t.Errorf("refined guard holds at %s where x is corrupted", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTheorem5_2OnTMR(t *testing.T) {
	// Masking tolerance of TMR decomposes per Theorem 5.2: TMR refines
	// SPEC_io from S, refines its safety part from T, and converges from T
	// to the goal region; hence it refines SPEC_io from T.
	sys := newSys(t)
	goal := state.And(sys.T, sys.OutCorrect)
	res := core.Theorem5_2(sys.Masking, sys.Spec, goal, sys.T)
	if !res.OK() {
		t.Fatalf("Theorem 5.2 instance (TMR): %v", res.Err)
	}
}

func TestMaskingWithThreeValues(t *testing.T) {
	sys, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.S); !rep.OK() {
		t.Errorf("V=3: TMR should be masking tolerant: %v", rep.Err)
	}
	if rep := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.S); !rep.OK() {
		t.Errorf("V=3: DR;IR should be fail-safe tolerant: %v", rep.Err)
	}
}

func TestSpanIsWithinT(t *testing.T) {
	sys := newSys(t)
	span, err := fault.ComputeSpan(sys.Masking, sys.Faults, sys.S)
	if err != nil {
		t.Fatal(err)
	}
	bad := false
	span.Reachable.ForEach(func(id int) bool {
		if !sys.T.Holds(span.Graph.State(id)) {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Error("the fault span of S must stay within T (at most one corrupted input)")
	}
	if err := fault.CheckSpan(sys.Masking, sys.Faults, sys.S, sys.T); err != nil {
		t.Errorf("T should be a valid F-span of TMR from S: %v", err)
	}
}

func TestNewRejectsTrivialDomain(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) should fail")
	}
}
