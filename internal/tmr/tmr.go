// Package tmr implements the paper's triple-modular-redundancy construction
// (Section 6.1): a fault-intolerant input-output program IR, a detector DR
// whose witness predicate gates IR (the sequential composition DR ; IR), and
// a corrector CR, such that DR;IR is fail-safe tolerant to one input
// corruption and DR;IR ‖ CR is the masking-tolerant TMR program.
//
// The model has three inputs x, y, z, an output out (⊥ until assigned), and
// a ground-truth variable uncor holding the value of an uncorrupted input.
// In the absence of faults all inputs equal uncor; the fault class corrupts
// at most one input with an arbitrary value.
package tmr

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// System bundles the TMR programs, specification, predicates and fault
// class.
type System struct {
	// V is the input value domain size (at least 2 so corruption can
	// actually change a value).
	V int

	Schema *state.Schema

	Intolerant *guarded.Program // IR
	FailSafe   *guarded.Program // DR ; IR
	Corrector  *guarded.Program // CR
	Masking    *guarded.Program // DR;IR ‖ CR  — the TMR program

	Spec spec.Problem // SPEC_io

	// Witness is DR's witness predicate (x=y ∨ x=z); Detection is its
	// detection predicate (x = uncor). OutCorrect is CR's correction and
	// witness predicate (out = uncor).
	Witness    state.Predicate
	Detection  state.Predicate
	OutCorrect state.Predicate

	// S: no input corrupted; T: at most one input corrupted. Both also
	// constrain out to ⊥ or the uncorrupted value (out is part of the
	// program state the specification protects).
	S, T state.Predicate

	Faults fault.Class // corrupts at most one input
}

// New constructs the TMR system with v input values.
func New(v int) (*System, error) {
	if v < 2 {
		return nil, fmt.Errorf("tmr: need at least 2 values for corruption to exist (got %d)", v)
	}
	sch, err := state.NewSchema(
		state.IntVar("x", v),
		state.IntVar("y", v),
		state.IntVar("z", v),
		state.IntVar("out", v+1), // 0 = ⊥, k+1 = value k
		state.IntVar("uncor", v),
	)
	if err != nil {
		return nil, err
	}
	sys := &System{V: v, Schema: sch}
	sys.buildPredicates()
	if err := sys.buildPrograms(); err != nil {
		return nil, err
	}
	sys.buildSpec()
	sys.buildFaults()
	return sys, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(v int) *System {
	sys, err := New(v)
	if err != nil {
		panic(err)
	}
	return sys
}

func corrupted(s state.State, in string) bool {
	return s.GetName(in) != s.GetName("uncor")
}

func (sys *System) buildPredicates() {
	sys.Witness = state.Pred("x=y ∨ x=z", func(s state.State) bool {
		return s.GetName("x") == s.GetName("y") || s.GetName("x") == s.GetName("z")
	})
	sys.Detection = state.Pred("x=uncor", func(s state.State) bool {
		return !corrupted(s, "x")
	})
	sys.OutCorrect = state.Pred("out=uncor", func(s state.State) bool {
		return s.GetName("out") == s.GetName("uncor")+1
	})
	outOK := func(s state.State) bool {
		o := s.GetName("out")
		return o == 0 || o == s.GetName("uncor")+1
	}
	sys.S = state.Pred("S: no input corrupted", func(s state.State) bool {
		return !corrupted(s, "x") && !corrupted(s, "y") && !corrupted(s, "z") && outOK(s)
	})
	sys.T = state.Pred("T: ≤1 input corrupted", func(s state.State) bool {
		n := 0
		for _, in := range []string{"x", "y", "z"} {
			if corrupted(s, in) {
				n++
			}
		}
		return n <= 1 && outOK(s)
	})
}

func (sys *System) buildPrograms() error {
	outBot := state.Pred("out=⊥", func(s state.State) bool { return s.GetName("out") == 0 })
	copyInput := func(name, in string, extra state.Predicate) guarded.Action {
		return guarded.Det(name, state.And(outBot, extra), func(s state.State) state.State {
			return s.WithName("out", s.GetName(in)+1)
		})
	}

	// IR :: out = ⊥ --> out := x
	ir, err := guarded.NewProgram("IR", sys.Schema, copyInput("IR1", "x", state.True))
	if err != nil {
		return err
	}
	sys.Intolerant = ir

	// DR ; IR — IR restricted to execute only when DR's witness predicate
	// (x=y ∨ x=z) holds.
	drir, err := guarded.NewProgram("DR;IR", sys.Schema, copyInput("IR1", "x", sys.Witness))
	if err != nil {
		return err
	}
	sys.FailSafe = drir

	// CR1 :: out=⊥ ∧ (y=z ∨ y=x) --> out := y
	// CR2 :: out=⊥ ∧ (z=x ∨ z=y) --> out := z
	yMaj := state.Pred("y=z ∨ y=x", func(s state.State) bool {
		return s.GetName("y") == s.GetName("z") || s.GetName("y") == s.GetName("x")
	})
	zMaj := state.Pred("z=x ∨ z=y", func(s state.State) bool {
		return s.GetName("z") == s.GetName("x") || s.GetName("z") == s.GetName("y")
	})
	cr, err := guarded.NewProgram("CR", sys.Schema,
		copyInput("CR1", "y", yMaj),
		copyInput("CR2", "z", zMaj),
	)
	if err != nil {
		return err
	}
	sys.Corrector = cr

	masking, err := guarded.Parallel("TMR", drir, cr)
	if err != nil {
		return err
	}
	sys.Masking = masking
	return nil
}

func (sys *System) buildSpec() {
	// SPEC_io: the output is only ever assigned the value of an
	// uncorrupted input (safety), and is eventually assigned (liveness).
	sys.Spec = spec.Problem{
		Name: "SPEC_io",
		Safety: spec.NeverStep("out never set to a corrupted value", func(from, to state.State) bool {
			o0, o1 := from.GetName("out"), to.GetName("out")
			if o0 == o1 {
				return false
			}
			return o1 != to.GetName("uncor")+1
		}),
		Live: []spec.LeadsTo{{
			Name: "out eventually assigned correctly",
			P:    state.True,
			Q:    sys.OutCorrect,
		}},
	}
}

func (sys *System) buildFaults() {
	// One fault action per input: it may fire only while the other two
	// inputs are uncorrupted, so at most one input is ever corrupted, and
	// it sets the input to an arbitrary value.
	mk := func(in string, others [2]string) guarded.Action {
		return guarded.Choice("corrupt-"+in,
			state.Pred(others[0]+","+others[1]+" uncorrupted", func(s state.State) bool {
				return !corrupted(s, others[0]) && !corrupted(s, others[1])
			}),
			func(s state.State) []state.State {
				i := s.Schema().MustIndexOf(in)
				out := make([]state.State, 0, sys.V)
				for k := 0; k < sys.V; k++ {
					out = append(out, s.With(i, k))
				}
				return out
			},
		)
	}
	sys.Faults = fault.NewClass("one-input-corruption",
		mk("x", [2]string{"y", "z"}),
		mk("y", [2]string{"x", "z"}),
		mk("z", [2]string{"x", "y"}),
	)
}
