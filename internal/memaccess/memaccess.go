// Package memaccess implements the paper's running example (Sections 3.3,
// 4.3, 5.1 — Figures 1, 2 and 3): a memory access program that obtains the
// value stored at an address, subjected to a page fault that removes the
// address from memory.
//
// The finite-state model:
//
//   - present — whether ⟨addr,·⟩ ∈ MEM;
//   - val     — the ground-truth value stored at addr (constant; the value
//     the disk would supply on a page-in);
//   - data    — the program's output register, ⊥ or a value;
//   - z1      — the detector's witness variable Z1 (programs pf and pm).
//
// The intolerant read returns an *arbitrary* value when the address is
// absent, exactly as the paper's p does; SPEC_mem requires that data is
// never set to an incorrect value (safety) and is eventually set to the
// correct one (liveness).
//
// The page fault removes the address from memory. For the programs that
// carry the witness Z1 the fault is guarded by ¬Z1, which models the paper's
// "addr and its value are initially removed": the page can be faulted out
// only before the detector has pinned it, and this is what makes the fault
// preserve the span U1 = (Z1 ⇒ X1).
package memaccess

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// System bundles the four programs of the example and everything needed to
// check them: the specification, the predicates of Figures 1–3, and the
// fault classes.
type System struct {
	// V is the number of distinct memory values; must be at least 2 so that
	// an arbitrary read can actually be incorrect.
	V int

	// BaseSchema declares present, val, data; WitnessSchema additionally
	// declares z1.
	BaseSchema    *state.Schema
	WitnessSchema *state.Schema

	Intolerant *guarded.Program // p   (Section 3.3)
	FailSafe   *guarded.Program // pf  (Figure 1)
	Nonmasking *guarded.Program // pn  (Figure 2)
	Masking    *guarded.Program // pm  (Figure 3)

	Spec spec.Problem // SPEC_mem

	// X1 is the detection predicate "addr is currently in the memory";
	// U1 is "Z1 is truthified only when X1 is true" (Z1 ⇒ X1); S = U1 ∧ X1
	// is the invariant and T = U1 the fault span, as in the paper.
	X1, U1, S, T state.Predicate
	Z1           state.Predicate
	DataCorrect  state.Predicate

	// PageFaultBase perturbs programs over BaseSchema (p, pn);
	// PageFaultWitness perturbs programs over WitnessSchema (pf, pm).
	PageFaultBase    fault.Class
	PageFaultWitness fault.Class
}

// New constructs the memory access example with v distinct memory values.
func New(v int) (*System, error) {
	if v < 2 {
		return nil, fmt.Errorf("memaccess: need at least 2 values for incorrect reads to exist (got %d)", v)
	}
	base, err := state.NewSchema(
		state.BoolVar("present"),
		state.IntVar("val", v),
		state.IntVar("data", v+1), // 0 = ⊥, k+1 = value k
	)
	if err != nil {
		return nil, err
	}
	witness, err := base.Extend(state.BoolVar("z1"))
	if err != nil {
		return nil, err
	}
	sys := &System{V: v, BaseSchema: base, WitnessSchema: witness}
	sys.buildPredicates()
	if err := sys.buildPrograms(); err != nil {
		return nil, err
	}
	sys.buildSpec()
	sys.buildFaults()
	return sys, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(v int) *System {
	sys, err := New(v)
	if err != nil {
		panic(err)
	}
	return sys
}

func (sys *System) buildPredicates() {
	sys.X1 = state.Pred("X1: addr ∈ MEM", func(s state.State) bool {
		return s.GetName("present") != 0
	})
	sys.Z1 = state.Pred("Z1", func(s state.State) bool {
		return s.GetName("z1") != 0
	})
	sys.U1 = state.Pred("U1: Z1 ⇒ X1", func(s state.State) bool {
		return s.GetName("z1") == 0 || s.GetName("present") != 0
	})
	sys.S = state.Pred("S: U1 ∧ X1", func(s state.State) bool {
		return s.GetName("present") != 0
	})
	sys.T = sys.U1
	sys.DataCorrect = state.Pred("data=val", func(s state.State) bool {
		return s.GetName("data") == s.GetName("val")+1
	})
}

// readStatement is the paper's data := (val | ⟨addr,val⟩ ∈ MEM): the stored
// value when the address is present, an arbitrary value otherwise.
func (sys *System) readStatement(sch *state.Schema) func(state.State) []state.State {
	presentIdx := sch.MustIndexOf("present")
	valIdx := sch.MustIndexOf("val")
	dataIdx := sch.MustIndexOf("data")
	v := sys.V
	return func(s state.State) []state.State {
		if s.Bool(presentIdx) {
			return []state.State{s.With(dataIdx, s.Get(valIdx)+1)}
		}
		out := make([]state.State, 0, v)
		for k := 0; k < v; k++ {
			out = append(out, s.With(dataIdx, k+1))
		}
		return out
	}
}

func (sys *System) buildPrograms() error {
	// p :: true --> data := (val | ⟨addr,val⟩ ∈ MEM)
	read := guarded.Choice("read", state.True, sys.readStatement(sys.BaseSchema))
	p, err := guarded.NewProgram("p", sys.BaseSchema, read)
	if err != nil {
		return err
	}
	sys.Intolerant = p

	// pf (Figure 1):
	//   pf1 :: (∃val :: ⟨addr,val⟩∈MEM) ∧ ¬Z1 --> Z1 := true
	//   pf2 :: Z1 ∧ true                      --> data := (val | ...)
	detect := guarded.Det("detect",
		state.Pred("present ∧ ¬Z1", func(s state.State) bool {
			return s.GetName("present") != 0 && s.GetName("z1") == 0
		}),
		func(s state.State) state.State { return s.WithName("z1", 1) },
	)
	readW := guarded.Choice("read", sys.Z1, sys.readStatement(sys.WitnessSchema))
	pf, err := guarded.NewProgram("pf", sys.WitnessSchema, detect, readW)
	if err != nil {
		return err
	}
	sys.FailSafe = pf

	// pn (Figure 2):
	//   pn1 :: ¬(∃val :: ⟨addr,val⟩∈MEM) --> MEM := MEM ∪ {⟨addr,-⟩}
	//   pn2 :: true                      --> data := (val | ...)
	restore := guarded.Det("restore",
		state.Pred("¬present", func(s state.State) bool { return s.GetName("present") == 0 }),
		func(s state.State) state.State { return s.WithName("present", 1) },
	)
	readN := guarded.Choice("read", state.True, sys.readStatement(sys.BaseSchema))
	pn, err := guarded.NewProgram("pn", sys.BaseSchema, restore, readN)
	if err != nil {
		return err
	}
	sys.Nonmasking = pn

	// pm (Figure 3):
	//   pm1 :: ¬present            --> present := true
	//   pm2 :: present ∧ ¬Z1       --> Z1 := true
	//   pm3 :: Z1 ∧ true           --> data := (val | ...)
	restoreW := guarded.Det("restore",
		state.Pred("¬present", func(s state.State) bool { return s.GetName("present") == 0 }),
		func(s state.State) state.State { return s.WithName("present", 1) },
	)
	pm, err := guarded.NewProgram("pm", sys.WitnessSchema, restoreW, detect, readW)
	if err != nil {
		return err
	}
	sys.Masking = pm
	return nil
}

func (sys *System) buildSpec() {
	// SPEC_mem: data is never set to an incorrect value (safety) and is
	// eventually set to the correct value (liveness). A "set" is a step
	// that changes data; setting it to ⊥ never happens and changing it to
	// anything other than the stored value is forbidden.
	sys.Spec = spec.Problem{
		Name: "SPEC_mem",
		Safety: spec.NeverStep("data never set incorrectly", func(from, to state.State) bool {
			d0, d1 := from.GetName("data"), to.GetName("data")
			if d0 == d1 {
				return false
			}
			return d1 != to.GetName("val")+1
		}),
		Live: []spec.LeadsTo{{
			Name: "data eventually correct",
			P:    state.True,
			Q:    sys.DataCorrect,
		}},
	}
}

func (sys *System) buildFaults() {
	// Page fault: ⟨addr, val⟩ is removed from the memory. On the witness
	// schema the fault is guarded by ¬Z1 (see the package comment).
	sys.PageFaultBase = fault.NewClass("page-fault",
		guarded.Det("page-out",
			state.Pred("present", func(s state.State) bool { return s.GetName("present") != 0 }),
			func(s state.State) state.State { return s.WithName("present", 0) },
		),
	)
	sys.PageFaultWitness = fault.NewClass("page-fault",
		guarded.Det("page-out",
			state.Pred("present ∧ ¬Z1", func(s state.State) bool {
				return s.GetName("present") != 0 && s.GetName("z1") == 0
			}),
			func(s state.State) state.State { return s.WithName("present", 0) },
		),
	)
}
