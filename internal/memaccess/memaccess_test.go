package memaccess

import (
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestIntolerantRefinesSpecFromS(t *testing.T) {
	sys := newSys(t)
	if err := sys.Spec.CheckRefinesFrom(sys.Intolerant, sys.S); err != nil {
		t.Errorf("p should refine SPEC_mem from S: %v", err)
	}
}

func TestIntolerantViolatesSpecFromTrue(t *testing.T) {
	sys := newSys(t)
	viol, err := sys.Spec.Violates(sys.Intolerant, state.True)
	if !viol {
		t.Errorf("p should violate SPEC_mem from true (arbitrary reads when absent), got err=%v", err)
	}
}

func TestFailSafeTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckFailSafe(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("pf should be fail-safe page-fault-tolerant: %v", rep.Err)
	}
	if rep.SpanSize == 0 {
		t.Error("fault span should be nonempty")
	}
}

func TestFailSafeIsNotMasking(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckMasking(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S)
	if rep.OK() {
		t.Error("pf must not be masking tolerant: it deadlocks after a page fault")
	}
}

func TestNonmaskingTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckNonmasking(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S, sys.S)
	if !rep.OK() {
		t.Errorf("pn should be nonmasking page-fault-tolerant: %v", rep.Err)
	}
}

func TestNonmaskingIsNotFailSafe(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckFailSafe(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S)
	if rep.OK() {
		t.Error("pn must not be fail-safe tolerant: it may read an arbitrary value after a fault")
	}
}

func TestMaskingTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckMasking(sys.Masking, sys.PageFaultWitness, sys.Spec, sys.S)
	if !rep.OK() {
		t.Errorf("pm should be masking page-fault-tolerant: %v", rep.Err)
	}
}

func TestIntolerantIsNotTolerant(t *testing.T) {
	sys := newSys(t)
	if rep := fault.CheckFailSafe(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S); rep.OK() {
		t.Error("p must not be fail-safe tolerant")
	}
	if rep := fault.CheckNonmasking(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S, sys.S); rep.OK() {
		t.Error("p must not be nonmasking tolerant")
	}
}

func TestEncapsulation(t *testing.T) {
	sys := newSys(t)
	if err := guarded.CheckEncapsulation(sys.FailSafe, sys.Intolerant, state.True); err != nil {
		t.Errorf("pf should encapsulate p: %v", err)
	}
	if err := guarded.CheckEncapsulation(sys.Masking, sys.Nonmasking, state.True); err != nil {
		t.Errorf("pm should encapsulate pn: %v", err)
	}
}

func TestRefinement(t *testing.T) {
	sys := newSys(t)
	present := sys.S
	if err := spec.CheckRefines(sys.FailSafe, sys.Intolerant, present); err != nil {
		t.Errorf("pf should refine p from S: %v", err)
	}
	if err := spec.CheckRefines(sys.Nonmasking, sys.Intolerant, present); err != nil {
		t.Errorf("pn should refine p from S: %v", err)
	}
	if err := spec.CheckRefines(sys.Masking, sys.Nonmasking, present); err != nil {
		t.Errorf("pm should refine pn from S: %v", err)
	}
}

func TestTheorem3_6OnFigure1(t *testing.T) {
	sys := newSys(t)
	res := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 3.6 instance (pf): %v", res.Err)
	}
	if len(res.Detectors) != sys.Intolerant.NumActions() {
		t.Errorf("expected %d detectors, got %d", sys.Intolerant.NumActions(), len(res.Detectors))
	}
	// The paper's detection predicate for pf is X1 ("addr ∈ MEM"); the
	// constructed witness must agree with X1 on every state reachable from
	// S where the witness Z1 holds (Safeness: Z ⇒ X ⇒ sf).
	d := res.Detectors[0]
	err := sys.WitnessSchema.ForEachState(func(s state.State) bool {
		if d.Z.Holds(s) && d.X.Holds(s) && !sys.X1.Holds(s) {
			t.Errorf("witness X holds with Z at %s but paper's X1 does not", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTheorem4_3OnFigure2(t *testing.T) {
	sys := newSys(t)
	res := core.Theorem4_3(sys.Intolerant, sys.Nonmasking, sys.Spec, sys.PageFaultBase, sys.S, sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 4.3 instance (pn): %v", res.Err)
	}
	if len(res.Correctors) != 1 {
		t.Fatalf("expected one corrector, got %d", len(res.Correctors))
	}
}

func TestTheorem5_5OnFigure3(t *testing.T) {
	sys := newSys(t)
	res := core.Theorem5_5(sys.Nonmasking, sys.Masking, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
	if !res.OK() {
		t.Fatalf("Theorem 5.5 instance (pm): %v", res.Err)
	}
	if len(res.Detectors) != sys.Nonmasking.NumActions() {
		t.Errorf("expected %d detectors, got %d", sys.Nonmasking.NumActions(), len(res.Detectors))
	}
	if len(res.Correctors) != 1 {
		t.Errorf("expected one corrector, got %d", len(res.Correctors))
	}
}

func TestDetectorOfFigure1Directly(t *testing.T) {
	sys := newSys(t)
	d := core.Detector{
		Name: "pf1",
		D:    sys.FailSafe,
		Z:    sys.Z1,
		X:    sys.X1,
		U:    sys.U1,
	}
	if err := d.Check(); err != nil {
		t.Errorf("Z1 detects X1 in pf from U1 should hold: %v", err)
	}
	if err := d.CheckFTolerant(sys.PageFaultWitness, fault.FailSafe); err != nil {
		t.Errorf("pf should be a fail-safe page-fault-tolerant detector: %v", err)
	}
}

func TestCorrectorOfFigure2Directly(t *testing.T) {
	sys := newSys(t)
	c := core.Corrector{
		Name: "pn1",
		C:    sys.Nonmasking,
		Z:    sys.X1,
		X:    sys.X1,
		U:    sys.X1,
	}
	if err := c.Check(); err != nil {
		t.Errorf("X1 corrects X1 in pn from X1 should hold: %v", err)
	}
	if err := c.CheckFTolerant(sys.PageFaultBase, fault.Nonmasking); err != nil {
		t.Errorf("pn should be a nonmasking page-fault-tolerant corrector: %v", err)
	}
}

func TestLargerValueDomains(t *testing.T) {
	for _, v := range []int{3, 4} {
		sys, err := New(v)
		if err != nil {
			t.Fatalf("New(%d): %v", v, err)
		}
		if rep := fault.CheckMasking(sys.Masking, sys.PageFaultWitness, sys.Spec, sys.S); !rep.OK() {
			t.Errorf("V=%d: pm should be masking tolerant: %v", v, rep.Err)
		}
		if rep := fault.CheckFailSafe(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S); !rep.OK() {
			t.Errorf("V=%d: pf should be fail-safe tolerant: %v", v, rep.Err)
		}
	}
}

func TestNewRejectsTrivialDomain(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) should fail: incorrect reads cannot exist")
	}
}
