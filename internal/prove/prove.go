// Package prove implements dcprove, an exploration-free proof engine for
// guarded-command programs. Where spec.CheckClosed and the core
// detector/corrector checks enumerate the state space (exponential in the
// number of variables), dcprove discharges the paper's per-action
// Hoare-style obligations {S ∧ guard} assignment {S} directly over the
// program text by abstract interpretation over the finite-domain lattice
// in internal/absdom, with a DPLL-style refutation engine (constraint
// propagation, unit resolution, bounded case splits) and a bounded exact
// enumeration fallback that yields concrete per-action counterexamples.
//
// Each prover carries a DC1xx diagnostic code, extending the dclint DC0xx
// series:
//
//	DC100  invariant closure: {S ∧ g} a {S} for every program action a
//	DC101  fault-span closure: the (declared or inferred) span is closed
//	       under program and fault actions
//	DC102  detector safeness: U ∧ Z ⇒ X, plus per-action stability
//	DC103  corrector convergence: from U the program converges to the
//	       goal, certified by a lexicographic ranking function (supplied
//	       or auto-synthesized)
//
// Verdicts are three-valued. Proved and Disproved are definite: a proof
// covers every state without enumerating them, and a disproof carries a
// concrete witness state. Unknown means the abstraction was inconclusive
// and the exact fallback exceeded its budget — callers fall back to
// graph-based checking, so the engine never changes a verdict, it only
// skips work (see Certify and the fast-path hooks in spec and core).
package prove

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"detcorr/internal/gcl"
)

// Diagnostic codes of the four provers, extending lint's DC0xx series.
const (
	CodeClosure     = "DC100"
	CodeSpanClosure = "DC101"
	CodeSafeness    = "DC102"
	CodeConvergence = "DC103"
)

// Verdict is the three-valued outcome of a proof attempt.
type Verdict int

// Proof outcomes. Unknown means "fall back to exploration", never "fails".
const (
	Proved Verdict = iota + 1
	Disproved
	Unknown
)

// String renders the verdict in lowercase.
func (v Verdict) String() string {
	switch v {
	case Proved:
		return "proved"
	case Disproved:
		return "disproved"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalJSON encodes the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

// UnmarshalJSON decodes the string form written by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "proved":
		*v = Proved
	case "disproved":
		*v = Disproved
	case "unknown":
		*v = Unknown
	default:
		return fmt.Errorf("prove: unknown verdict %q", s)
	}
	return nil
}

// ActionResult is the outcome of one per-action obligation.
type ActionResult struct {
	Action         string  `json:"action"`
	Verdict        Verdict `json:"verdict"`
	Counterexample string  `json:"counterexample,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// Report is the outcome of one prover run: the aggregate verdict plus the
// per-action detail, and for DC101/DC103 the inferred span or the ranking
// function that certifies convergence.
type Report struct {
	Code    string         `json:"code"`
	Subject string         `json:"subject"`
	Verdict Verdict        `json:"verdict"`
	Actions []ActionResult `json:"actions,omitempty"`
	Span    []string       `json:"span,omitempty"`
	Rank    []string       `json:"rank,omitempty"`
	Notes   []string       `json:"notes,omitempty"`
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s: %s", r.Code, r.Subject, strings.ToUpper(r.Verdict.String()))
	for _, a := range r.Actions {
		if a.Verdict == Proved {
			continue
		}
		fmt.Fprintf(&b, "\n  action %s: %s", a.Action, a.Verdict)
		if a.Counterexample != "" {
			fmt.Fprintf(&b, " (e.g. when %s)", a.Counterexample)
		}
		if a.Note != "" {
			fmt.Fprintf(&b, " — %s", a.Note)
		}
	}
	for _, s := range r.Span {
		fmt.Fprintf(&b, "\n  span %s", s)
	}
	if len(r.Rank) > 0 {
		fmt.Fprintf(&b, "\n  ranking function <%s>", strings.Join(r.Rank, ", "))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n  note: %s", n)
	}
	return b.String()
}

// VarDom is a variable with its source-level value domain: bool 0..1,
// range lo..hi, enum 0..len(enum)-1.
type VarDom struct {
	Name string
	Bool bool
	Lo   int
	Hi   int
	Enum []string // enum value names, nil otherwise
}

func (v *VarDom) size() int { return v.Hi - v.Lo + 1 }

// System is a guarded-command file prepared for proving: the resolved
// variable domains and the predicate bodies with predicate and enum
// references fully inlined, so every expression the engine manipulates
// refers to variables and literals only.
type System struct {
	vars    map[string]*VarDom
	order   []string // declaration order of vars
	preds   map[string]gcl.Expr
	actions []gcl.ActionDecl
	faults  []gcl.ActionDecl
	fresh   int // counter for primed '?' variables
	inl     *inliner
}

// NewSystem resolves a parsed file. Files that fail to compile fail here
// too (unresolved names, non-boolean predicates, double assignment).
func NewSystem(ast *gcl.FileAST) (*System, error) {
	sys := &System{
		vars:  map[string]*VarDom{},
		preds: map[string]gcl.Expr{},
	}
	consts := map[string]int{}
	for _, d := range ast.Vars {
		if _, dup := sys.vars[d.Name]; dup {
			return nil, fmt.Errorf("prove: duplicate variable %q", d.Name)
		}
		v := &VarDom{Name: d.Name}
		switch d.Type.Kind {
		case gcl.TypeBool:
			v.Bool, v.Lo, v.Hi = true, 0, 1
		case gcl.TypeRange:
			v.Lo, v.Hi = d.Type.Lo, d.Type.Hi
		case gcl.TypeEnum:
			v.Lo, v.Hi, v.Enum = 0, len(d.Type.Names)-1, d.Type.Names
			for idx, name := range d.Type.Names {
				if old, dup := consts[name]; dup && old != idx {
					return nil, fmt.Errorf("prove: enum value %q redeclared", name)
				}
				consts[name] = idx
			}
		default:
			return nil, fmt.Errorf("prove: variable %q has unknown type", d.Name)
		}
		sys.vars[d.Name] = v
		sys.order = append(sys.order, d.Name)
	}
	inliner := &inliner{vars: sys.vars, consts: consts, preds: sys.preds}
	sys.inl = inliner
	for _, d := range ast.Preds {
		body, err := inliner.inline(d.Expr)
		if err != nil {
			return nil, fmt.Errorf("prove: predicate %q: %w", d.Name, err)
		}
		sys.preds[d.Name] = body
	}
	inlineActs := func(decls []gcl.ActionDecl) ([]gcl.ActionDecl, error) {
		out := make([]gcl.ActionDecl, 0, len(decls))
		for _, d := range decls {
			g, err := inliner.inline(d.Guard)
			if err != nil {
				return nil, fmt.Errorf("prove: guard of %q: %w", d.Name, err)
			}
			a := gcl.ActionDecl{Name: d.Name, Guard: g, At: d.At}
			for _, as := range d.Assigns {
				if _, ok := sys.vars[as.Var]; !ok {
					return nil, fmt.Errorf("prove: %q assigns undeclared variable %q", d.Name, as.Var)
				}
				na := gcl.Assign{Var: as.Var, At: as.At}
				if as.Expr != nil {
					if na.Expr, err = inliner.inline(as.Expr); err != nil {
						return nil, fmt.Errorf("prove: assignment in %q: %w", d.Name, err)
					}
				}
				a.Assigns = append(a.Assigns, na)
			}
			out = append(out, a)
		}
		return out, nil
	}
	var err error
	if sys.actions, err = inlineActs(ast.Actions); err != nil {
		return nil, err
	}
	if sys.faults, err = inlineActs(ast.Faults); err != nil {
		return nil, err
	}
	return sys, nil
}

// Inline rewrites an externally supplied expression (e.g. a ranking
// function component parsed from the command line) into the system's
// inlined form: predicate references replaced by their bodies, enum value
// names by integer literals.
func (sys *System) Inline(e gcl.Expr) (gcl.Expr, error) { return sys.inl.inline(e) }

// Pred returns the inlined body of a declared predicate.
func (sys *System) Pred(name string) (gcl.Expr, bool) {
	e, ok := sys.preds[name]
	return e, ok
}

// PredNames returns the declared predicate names, sorted.
func (sys *System) PredNames() []string {
	names := make([]string, 0, len(sys.preds))
	for name := range sys.preds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Actions returns the inlined program actions.
func (sys *System) Actions() []gcl.ActionDecl { return sys.actions }

// Faults returns the inlined fault actions.
func (sys *System) Faults() []gcl.ActionDecl { return sys.faults }

// envString renders a counterexample assignment deterministically in
// declaration order, using enum value names and true/false for booleans;
// primed '?' variables (name' suffix) sort after the originals.
func (sys *System) envString(env map[string]int) string {
	names := make([]string, 0, len(env))
	inOrder := map[string]int{}
	for i, n := range sys.order {
		inOrder[n] = i
	}
	for name := range env {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := inOrder[strings.TrimRight(names[i], "'")]
		oj, jok := inOrder[strings.TrimRight(names[j], "'")]
		if iok && jok && oi != oj {
			return oi < oj
		}
		return names[i] < names[j]
	})
	parts := make([]string, 0, len(names))
	for _, name := range names {
		v := sys.vars[name]
		val := env[name]
		switch {
		case v == nil:
			parts = append(parts, fmt.Sprintf("%s=%d", name, val))
		case v.Bool:
			parts = append(parts, fmt.Sprintf("%s=%v", name, val != 0))
		case v.Enum != nil && val >= 0 && val < len(v.Enum):
			parts = append(parts, fmt.Sprintf("%s=%s", name, v.Enum[val]))
		default:
			parts = append(parts, fmt.Sprintf("%s=%d", name, val))
		}
	}
	return strings.Join(parts, ", ")
}

// inliner rewrites expressions so that Ref nodes are variables only:
// predicate references are replaced by their (already inlined) bodies and
// enum value names by integer literals.
type inliner struct {
	vars   map[string]*VarDom
	consts map[string]int
	preds  map[string]gcl.Expr
}

func (in *inliner) inline(e gcl.Expr) (gcl.Expr, error) {
	switch n := e.(type) {
	case *gcl.BoolLit, *gcl.IntLit:
		return e, nil
	case *gcl.Ref:
		if _, ok := in.vars[n.Name]; ok {
			return n, nil
		}
		if c, ok := in.consts[n.Name]; ok {
			return &gcl.IntLit{Value: c, At: n.At}, nil
		}
		if body, ok := in.preds[n.Name]; ok {
			return body, nil // already fully inlined (predicates form a DAG)
		}
		return nil, fmt.Errorf("undeclared identifier %q", n.Name)
	case *gcl.Unary:
		x, err := in.inline(n.X)
		if err != nil {
			return nil, err
		}
		if x == n.X {
			return n, nil
		}
		return &gcl.Unary{Op: n.Op, X: x, At: n.At}, nil
	case *gcl.Binary:
		l, err := in.inline(n.L)
		if err != nil {
			return nil, err
		}
		r, err := in.inline(n.R)
		if err != nil {
			return nil, err
		}
		if l == n.L && r == n.R {
			return n, nil
		}
		return &gcl.Binary{Op: n.Op, L: l, R: r, At: n.At}, nil
	}
	return nil, fmt.Errorf("unknown expression node %T", e)
}
