package prove

import (
	"context"
	"fmt"
	"strings"

	"detcorr/internal/absdom"
	"detcorr/internal/gcl"
)

// This file assembles the four provers from the refutation engine. Each
// prover reduces its property to a set of per-action Hoare obligations
// {hyps ∧ guard} assignment {post} — validity of hyps ∧ guard ⇒ wp(a, post)
// over the finite domains — and reports the aggregate verdict.

// proveAction discharges one Hoare obligation {hyps ∧ guard} a {post}.
func (sys *System) proveAction(a *gcl.ActionDecl, hyps []gcl.Expr, post gcl.Expr) ActionResult {
	extra := map[string]*VarDom{}
	sigma := sys.wp(a, extra)
	all := append(append([]gcl.Expr{}, hyps...), a.Guard)
	return sys.actionResult(a.Name, sys.valid(all, subst(post, sigma), extra))
}

func (sys *System) actionResult(name string, out Outcome) ActionResult {
	res := ActionResult{Action: name, Verdict: out.Verdict}
	if out.Verdict == Disproved {
		res.Counterexample = sys.envString(out.Cex)
	}
	if len(out.Notes) > 0 {
		res.Note = strings.Join(out.Notes, "; ")
	}
	return res
}

// aggregate folds per-obligation verdicts: one disproof disproves the
// aggregate (some obligation has a concrete violation), otherwise one
// unknown makes it unknown.
func aggregate(results []ActionResult) Verdict {
	v := Proved
	for _, r := range results {
		switch r.Verdict {
		case Disproved:
			return Disproved
		case Unknown:
			v = Unknown
		}
	}
	return v
}

func (sys *System) needPred(name string) (gcl.Expr, error) {
	if name == "true" {
		return &gcl.BoolLit{Value: true}, nil
	}
	e, ok := sys.preds[name]
	if !ok {
		return nil, fmt.Errorf("prove: no predicate %q (file declares: %s)",
			name, strings.Join(sys.PredNames(), ", "))
	}
	return e, nil
}

// proveClosureExpr discharges {inv ∧ g} a {inv} for every action in acts.
// Cancellation is polled between obligations — each obligation is already
// budget-bounded by the refuter, so the latency is one obligation's worth.
func (sys *System) proveClosureExpr(ctx context.Context, code, subject string, inv gcl.Expr, acts []gcl.ActionDecl) (*Report, error) {
	rep := &Report{Code: code, Subject: subject}
	for i := range acts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep.Actions = append(rep.Actions, sys.proveAction(&acts[i], []gcl.Expr{inv}, inv))
	}
	rep.Verdict = aggregate(rep.Actions)
	return rep, nil
}

// ProveClosure (DC100) proves that the named predicate is closed under the
// program actions: {S ∧ g} a {S} for every action a. Closure quantifies
// over every S-state, exactly like spec.CheckClosed, so Proved and
// Disproved both agree with the graph-based check.
func ProveClosure(sys *System, inv string) (*Report, error) {
	return ProveClosureCtx(context.Background(), sys, inv)
}

// ProveClosureCtx is ProveClosure under a context; cancellation between
// per-action obligations returns ctx.Err().
func ProveClosureCtx(ctx context.Context, sys *System, inv string) (*Report, error) {
	S, err := sys.needPred(inv)
	if err != nil {
		return nil, err
	}
	return sys.proveClosureExpr(ctx, CodeClosure,
		fmt.Sprintf("closure of %s under the program actions", inv), S, sys.actions)
}

// ProveSpanClosure (DC101) proves that a fault span — the named span
// predicate, or one inferred from the invariant when span is empty — both
// contains the invariant and is closed under the program and fault actions
// together, the defining property of a fault span in the paper.
func ProveSpanClosure(sys *System, inv, span string) (*Report, error) {
	return ProveSpanClosureCtx(context.Background(), sys, inv, span)
}

// ProveSpanClosureCtx is ProveSpanClosure under a context; cancellation
// between per-action obligations returns ctx.Err().
func ProveSpanClosureCtx(ctx context.Context, sys *System, inv, span string) (*Report, error) {
	S, err := sys.needPred(inv)
	if err != nil {
		return nil, err
	}
	all := append(append([]gcl.ActionDecl{}, sys.actions...), sys.faults...)
	var rep *Report
	var T gcl.Expr
	if span != "" {
		if T, err = sys.needPred(span); err != nil {
			return nil, err
		}
		rep, err = sys.proveClosureExpr(ctx, CodeSpanClosure,
			fmt.Sprintf("closure of span %s under program and fault actions", span), T, all)
		if err != nil {
			return nil, err
		}
	} else {
		box := sys.inferSpan(S)
		T = sys.boxExpr(box)
		rep, err = sys.proveClosureExpr(ctx, CodeSpanClosure,
			fmt.Sprintf("closure of the inferred span of %s under program and fault actions", inv), T, all)
		if err != nil {
			return nil, err
		}
		rep.Span = sys.boxStrings(box)
	}
	rep.Actions = append(rep.Actions,
		sys.actionResult(fmt.Sprintf("(span contains %s)", inv), sys.valid([]gcl.Expr{S}, T, nil)))
	rep.Verdict = aggregate(rep.Actions)
	return rep, nil
}

// ProveSafeness (DC102) proves detector safeness and stability within U:
// U ∧ Z ⇒ X, and per action {U ∧ Z ∧ g} a {Z ∨ ¬X}. Note the obligations
// quantify over all U-states while the graph-based detector check inspects
// only reachable ones, so only Proved transfers to the graph verdict;
// a disproof may rest on an unreachable witness.
func ProveSafeness(sys *System, u, z, x string) (*Report, error) {
	return ProveSafenessCtx(context.Background(), sys, u, z, x)
}

// ProveSafenessCtx is ProveSafeness under a context; cancellation between
// per-action obligations returns ctx.Err().
func ProveSafenessCtx(ctx context.Context, sys *System, u, z, x string) (*Report, error) {
	U, err := sys.needPred(u)
	if err != nil {
		return nil, err
	}
	Z, err := sys.needPred(z)
	if err != nil {
		return nil, err
	}
	X, err := sys.needPred(x)
	if err != nil {
		return nil, err
	}
	rep := &Report{Code: CodeSafeness,
		Subject: fmt.Sprintf("detector safeness and stability of %s => %s within %s", z, x, u)}
	rep.Actions = append(rep.Actions,
		sys.actionResult(fmt.Sprintf("(safeness: %s & %s => %s)", u, z, x), sys.valid([]gcl.Expr{U, Z}, X, nil)))
	post := disj(Z, neg(X))
	for i := range sys.actions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := sys.proveAction(&sys.actions[i], []gcl.Expr{U, Z}, post)
		res.Action += " (stability)"
		rep.Actions = append(rep.Actions, res)
	}
	rep.Verdict = aggregate(rep.Actions)
	return rep, nil
}

// ProveConvergence (DC103) proves that every computation of the program
// from a state in U reaches the goal predicate. rank, when non-empty, is a
// user-supplied lexicographic ranking function (integer-valued components,
// most significant first); when empty one is synthesized.
func ProveConvergence(sys *System, u, goal string, rank []gcl.Expr) (*Report, error) {
	return ProveConvergenceCtx(context.Background(), sys, u, goal, rank)
}

// ProveConvergenceCtx is ProveConvergence under a context; cancellation
// between per-action obligations (and between rank-synthesis candidates)
// returns ctx.Err().
func ProveConvergenceCtx(ctx context.Context, sys *System, u, goal string, rank []gcl.Expr) (*Report, error) {
	U, err := sys.needPred(u)
	if err != nil {
		return nil, err
	}
	G, err := sys.needPred(goal)
	if err != nil {
		return nil, err
	}
	inlined := make([]gcl.Expr, len(rank))
	desc := make([]string, len(rank))
	for i, e := range rank {
		if inlined[i], err = sys.Inline(e); err != nil {
			return nil, fmt.Errorf("prove: rank component %d: %w", i+1, err)
		}
		desc[i] = exprString(e)
	}
	return sys.proveConvergenceExpr(ctx,
		fmt.Sprintf("convergence from %s to %s", u, goal), U, G, inlined, desc, true)
}

// proveConvergenceExpr proves convergence from U to goal: closure of U
// (unless the caller already discharged it), absence of deadlock in
// U ∧ ¬goal, and per-action strict descent of a lexicographic ranking
// function. The region argument of every computation step is U ∧ ¬goal:
// closure keeps steps in U, and a step that stays outside the goal is back
// in the region, so a ranking function that strictly decreases on every
// region step bounds the computation length. Strict per-action decrease
// needs no fairness assumption. A disproof of closure or deadlock-freedom
// is genuine; a failed descent only faults the ranking function, so it
// downgrades to Unknown.
func (sys *System) proveConvergenceExpr(ctx context.Context, subject string, U, G gcl.Expr, rank []gcl.Expr, rankDesc []string, withClosure bool) (*Report, error) {
	rep := &Report{Code: CodeConvergence, Subject: subject}
	if withClosure {
		for i := range sys.actions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res := sys.proveAction(&sys.actions[i], []gcl.Expr{U}, U)
			res.Action += " (closure)"
			rep.Actions = append(rep.Actions, res)
		}
	}
	var guards []gcl.Expr
	for i := range sys.actions {
		guards = append(guards, sys.actions[i].Guard)
	}
	rep.Actions = append(rep.Actions, sys.actionResult("(no deadlock outside the goal)",
		sys.valid([]gcl.Expr{U, neg(G)}, disj(guards...), nil)))
	if aggregate(rep.Actions) == Disproved {
		rep.Verdict = Disproved
		return rep, nil
	}
	if len(rank) == 0 {
		synth, sdesc, results, ok, err := sys.synthesizeRank(ctx, U, G)
		if err != nil {
			return nil, err
		}
		if !ok {
			rep.Notes = append(rep.Notes,
				"no lexicographic ranking function found over predicate indicators and variable values; supply one or fall back to exploration")
			rep.Verdict = Unknown
			return rep, nil
		}
		rank, rankDesc = synth, sdesc
		rep.Actions = append(rep.Actions, results...)
	} else {
		for i := range sys.actions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a := &sys.actions[i]
			extra := map[string]*VarDom{}
			sigma := sys.wp(a, extra)
			post := disj(subst(G, sigma), lexDec(rank, sigma))
			res := sys.actionResult(a.Name+" (descent)",
				sys.valid([]gcl.Expr{U, neg(G), a.Guard}, post, extra))
			if res.Verdict == Disproved {
				res.Verdict = Unknown
				res.Note = strings.TrimSpace(strings.TrimSuffix(
					"the ranking function does not decrease on this step; "+res.Note, "; "))
			}
			rep.Actions = append(rep.Actions, res)
		}
	}
	rep.Rank = rankDesc
	rep.Verdict = aggregate(rep.Actions)
	return rep, nil
}

// lexDec builds the strict lexicographic-decrease predicate
// ∨_i (∧_{j<i} rank_j[σ] == rank_j) ∧ rank_i[σ] < rank_i.
func lexDec(rank []gcl.Expr, sigma map[string]gcl.Expr) gcl.Expr {
	var cases []gcl.Expr
	for i := range rank {
		var cs []gcl.Expr
		for j := 0; j < i; j++ {
			cs = append(cs, &gcl.Binary{Op: gcl.EQ, L: subst(rank[j], sigma), R: rank[j]})
		}
		cs = append(cs, &gcl.Binary{Op: gcl.LT, L: subst(rank[i], sigma), R: rank[i]})
		cases = append(cases, conj(cs...))
	}
	return disj(cases...)
}

// synthesizeRank greedily builds a lexicographic ranking function for the
// region U ∧ ¬G, Bradley–Manna–Sipma style. Candidates are predicate
// indicators (a predicate is 1 when true), boolean variables, and integer
// variables in both directions. Each level picks the candidate that is
// non-increasing under every remaining action (or the action enters the
// goal) and strictly decreases the most; decreased actions are removed and
// the search recurses on the rest. An action removed at level k satisfies
// the lexicographic-decrease obligation outright: levels before k are
// non-increasing, so the first level that moves on any step is a strict
// decrease at or before k. Failure to cover every action yields no rank —
// the caller reports Unknown, never Disproved, since candidate exhaustion
// says nothing about convergence itself.
func (sys *System) synthesizeRank(ctx context.Context, U, G gcl.Expr) ([]gcl.Expr, []string, []ActionResult, bool, error) {
	type cand struct {
		e    gcl.Expr
		desc string
	}
	var cands []cand
	for _, name := range sys.PredNames() {
		body := sys.preds[name]
		cands = append(cands, cand{body, name}, cand{neg(body), "!" + name})
	}
	for _, name := range sys.order {
		v := sys.vars[name]
		ref := &gcl.Ref{Name: name}
		if v.Bool {
			cands = append(cands, cand{ref, name}, cand{neg(ref), "!" + name})
			continue
		}
		cands = append(cands,
			cand{ref, name},
			cand{&gcl.Binary{Op: gcl.MINUS, L: &gcl.IntLit{Value: v.Hi}, R: ref}, fmt.Sprintf("%d-%s", v.Hi, name)})
	}
	remaining := make([]int, 0, len(sys.actions))
	for i := range sys.actions {
		remaining = append(remaining, i)
	}
	var rank []gcl.Expr
	var desc []string
	results := map[int]ActionResult{}
	used := map[int]bool{}
	for len(remaining) > 0 {
		bestCand, bestDec := -1, []int(nil)
		for ci := range cands {
			if used[ci] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, false, err
			}
			c := cands[ci]
			ok := true
			var dec []int
			for _, ai := range remaining {
				a := &sys.actions[ai]
				extra := map[string]*VarDom{}
				sigma := sys.wp(a, extra)
				after := subst(c.e, sigma)
				nonInc := sys.valid([]gcl.Expr{U, neg(G), a.Guard},
					disj(subst(G, sigma), &gcl.Binary{Op: gcl.LE, L: after, R: c.e}), extra)
				if nonInc.Verdict != Proved {
					ok = false
					break
				}
				strict := sys.valid([]gcl.Expr{U, neg(G), a.Guard},
					disj(subst(G, sigma), &gcl.Binary{Op: gcl.LT, L: after, R: c.e}), extra)
				if strict.Verdict == Proved {
					dec = append(dec, ai)
				}
			}
			if ok && len(dec) > len(bestDec) {
				bestCand, bestDec = ci, dec
			}
		}
		if bestCand < 0 || len(bestDec) == 0 {
			return nil, nil, nil, false, nil
		}
		level := len(rank)
		rank = append(rank, cands[bestCand].e)
		desc = append(desc, cands[bestCand].desc)
		used[bestCand] = true
		decSet := map[int]bool{}
		for _, ai := range bestDec {
			decSet[ai] = true
			results[ai] = ActionResult{
				Action:  sys.actions[ai].Name + " (descent)",
				Verdict: Proved,
				Note:    fmt.Sprintf("strictly decreases rank level %d (%s)", level+1, cands[bestCand].desc),
			}
		}
		kept := remaining[:0]
		for _, ai := range remaining {
			if !decSet[ai] {
				kept = append(kept, ai)
			}
		}
		remaining = kept
	}
	ordered := make([]ActionResult, 0, len(results))
	for i := range sys.actions {
		if r, ok := results[i]; ok {
			ordered = append(ordered, r)
		}
	}
	return rank, desc, ordered, true, nil
}

// inferSpan computes a Cartesian over-approximation of the states reachable
// from inv under the program and fault actions: the least fixpoint of a
// per-variable value-set environment under the abstract post of every
// action. The induced box predicate contains inv and is closed under the
// actions by construction (modulo the abstraction), which makes it a fault
// span candidate in the sense of the paper — the closure proof then
// re-checks it independently.
func (sys *System) inferSpan(inv gcl.Expr) map[string]absdom.Set {
	r := &refuter{sys: sys, vars: sys.vars}
	store := absdom.NewStore()
	for _, n := range sys.order {
		v := sys.vars[n]
		store.Define(n, absdom.FullSet(v.Lo, v.Hi))
	}
	box := map[string]absdom.Set{}
	var lits, ors []gcl.Expr
	flatten([]gcl.Expr{nnf(inv, false)}, &lits, &ors)
	if !r.propagate(lits, store) {
		for _, n := range sys.order {
			box[n] = absdom.EmptySet()
		}
		return box
	}
	// Refine the initial box with the disjunctive structure: a variable's
	// set under a clause is the union of its narrowings over the disjuncts.
	for _, clause := range ors {
		union := map[string]absdom.Set{}
		for _, n := range sys.order {
			union[n] = absdom.EmptySet()
		}
		feasible := false
		for _, d := range appendDisjuncts(nil, clause) {
			probe := store.Clone()
			var dl, dors []gcl.Expr
			flatten([]gcl.Expr{d}, &dl, &dors)
			if !r.propagate(dl, probe) {
				continue
			}
			feasible = true
			for _, n := range sys.order {
				if s, ok := probe.SetOf(n); ok {
					union[n] = absdom.Union(union[n], s)
				}
			}
		}
		if feasible {
			for _, n := range sys.order {
				store.Narrow(n, union[n])
			}
		}
	}
	for _, n := range sys.order {
		s, _ := store.SetOf(n)
		box[n] = s
	}
	// Least fixpoint of the abstract post: evaluate each action's
	// assignments over the guard-narrowed box and union the results in.
	all := append(append([]gcl.ActionDecl{}, sys.actions...), sys.faults...)
	for changed := true; changed; {
		changed = false
		for i := range all {
			a := &all[i]
			st := absdom.NewStore()
			for _, n := range sys.order {
				st.Define(n, box[n])
			}
			var gl, gors []gcl.Expr
			flatten([]gcl.Expr{nnf(a.Guard, false)}, &gl, &gors)
			_ = gors // or-clauses are ignored: over-approximates enabledness, still sound
			if !r.propagate(gl, st) {
				continue // guard unsatisfiable anywhere in the box
			}
			for _, as := range a.Assigns {
				dom := sys.vars[as.Var]
				var ns absdom.Set
				if as.Expr == nil {
					ns = absdom.FullSet(dom.Lo, dom.Hi) // wildcard: anything in the domain
				} else {
					ns = absdom.Intersect(sys.absEvalSet(st, as.Expr), absdom.FullSet(dom.Lo, dom.Hi))
				}
				merged := absdom.Union(box[as.Var], ns)
				if !absdom.Equal(merged, box[as.Var]) {
					box[as.Var] = merged
					changed = true
				}
			}
		}
	}
	return box
}

// absEvalSet over-approximates the value set of an expression over the
// per-variable sets in a store: exact enumeration when the operand sets
// are small, interval arithmetic (or the full boolean range) beyond.
func (sys *System) absEvalSet(st *absdom.Store, e gcl.Expr) absdom.Set {
	boolSet := func() absdom.Set { return absdom.FullSet(0, 1) }
	switch n := e.(type) {
	case *gcl.BoolLit:
		if n.Value {
			return absdom.SingleSet(1)
		}
		return absdom.SingleSet(0)
	case *gcl.IntLit:
		return absdom.SingleSet(n.Value)
	case *gcl.Ref:
		if s, ok := st.SetOf(n.Name); ok {
			return s
		}
		return boolSet()
	case *gcl.Unary:
		s := sys.absEvalSet(st, n.X)
		if s.IsEmpty() {
			return s
		}
		if s.Exact() && s.Count() <= 64 {
			out := absdom.EmptySet()
			s.ForEach(func(v int) bool {
				if n.Op == gcl.NOT {
					v = 1 - v
				} else {
					v = -v
				}
				out = absdom.Union(out, absdom.SingleSet(v))
				return true
			})
			return out
		}
		if n.Op == gcl.NOT {
			return boolSet()
		}
		return absdom.FullSet(-s.IV.Hi, -s.IV.Lo)
	case *gcl.Binary:
		l := sys.absEvalSet(st, n.L)
		r := sys.absEvalSet(st, n.R)
		if l.IsEmpty() || r.IsEmpty() {
			return absdom.EmptySet()
		}
		if l.Exact() && r.Exact() && l.Count()*r.Count() <= miniBudget {
			out := absdom.EmptySet()
			l.ForEach(func(a int) bool {
				r.ForEach(func(b int) bool {
					out = absdom.Union(out, absdom.SingleSet(absdom.EvalBinary(n.Op, a, b)))
					return true
				})
				return true
			})
			return out
		}
		switch n.Op {
		case gcl.PLUS, gcl.MINUS, gcl.STAR, gcl.PERCENT:
			v := absdom.Binary(n.Op, absdom.IntVal(l.IV.Lo, l.IV.Hi), absdom.IntVal(r.IV.Lo, r.IV.Hi))
			return absdom.FullSet(v.IV.Lo, v.IV.Hi)
		}
		return boolSet()
	}
	return boolSet()
}

// boxExpr renders a box as a predicate: the conjunction of per-variable
// membership constraints, omitting variables that may take any value.
func (sys *System) boxExpr(box map[string]absdom.Set) gcl.Expr {
	var cs []gcl.Expr
	for _, name := range sys.order {
		v := sys.vars[name]
		s := box[name]
		if absdom.Equal(s, absdom.FullSet(v.Lo, v.Hi)) {
			continue
		}
		if s.IsEmpty() {
			return &gcl.BoolLit{Value: false}
		}
		ref := &gcl.Ref{Name: name}
		if s.Exact() && s.Count() < s.IV.Hi-s.IV.Lo+1 {
			var eqs []gcl.Expr
			s.ForEach(func(val int) bool {
				eqs = append(eqs, &gcl.Binary{Op: gcl.EQ, L: ref, R: &gcl.IntLit{Value: val}})
				return true
			})
			cs = append(cs, disj(eqs...))
			continue
		}
		if s.IV.Lo > v.Lo {
			cs = append(cs, &gcl.Binary{Op: gcl.GE, L: ref, R: &gcl.IntLit{Value: s.IV.Lo}})
		}
		if s.IV.Hi < v.Hi {
			cs = append(cs, &gcl.Binary{Op: gcl.LE, L: ref, R: &gcl.IntLit{Value: s.IV.Hi}})
		}
	}
	return conj(cs...)
}

// boxStrings renders a box for the report, in variable declaration order.
func (sys *System) boxStrings(box map[string]absdom.Set) []string {
	var out []string
	for _, name := range sys.order {
		v := sys.vars[name]
		s := box[name]
		if absdom.Equal(s, absdom.FullSet(v.Lo, v.Hi)) {
			continue
		}
		out = append(out, fmt.Sprintf("%s in %s", name, sys.valueSetString(v, s)))
	}
	if len(out) == 0 {
		return []string{"(unconstrained: the span is the whole state space)"}
	}
	return out
}

func (sys *System) valueSetString(v *VarDom, s absdom.Set) string {
	render := func(val int) string {
		switch {
		case v.Bool:
			return fmt.Sprintf("%v", val != 0)
		case v.Enum != nil && val >= 0 && val < len(v.Enum):
			return v.Enum[val]
		default:
			return fmt.Sprintf("%d", val)
		}
	}
	if s.IsEmpty() {
		return "{}"
	}
	if s.Exact() && s.Count() <= 8 {
		var parts []string
		s.ForEach(func(val int) bool {
			parts = append(parts, render(val))
			return true
		})
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("[%s..%s]", render(s.IV.Lo), render(s.IV.Hi))
}
