package prove

import (
	"context"
	"sync"

	"detcorr/internal/core"
	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// The certification registry connects compiled programs back to their
// source-level proof systems, so the graph-based checks in spec and core
// can consult the prover before enumerating states. Registration is keyed
// by the compiled *guarded.Program pointer — composed programs (e.g. the
// result of fault.Compose) are distinct values and simply miss the fast
// path, which is always sound: only a full proof short-circuits anything.

type certEntry struct {
	mu    sync.Mutex // System is not safe for concurrent use; serialize per program
	sys   *System
	cache map[string]bool // obligation key -> proved
}

var (
	regMu    sync.RWMutex
	registry = map[*guarded.Program]*certEntry{}
	hookOnce sync.Once
)

// Certify prepares a compiled file for exploration-free fast paths: its
// program is registered so that spec.CheckClosed and the core
// detector/corrector checks consult the prover first. Files compiled
// before the AST field existed (or assembled by hand) are skipped
// silently. Certification never changes any verdict — the hooks report
// success only on a full proof and fall back to exploration otherwise.
func Certify(f *gcl.File) error {
	if f == nil || f.AST == nil {
		return nil
	}
	sys, err := NewSystem(f.AST)
	if err != nil {
		return err
	}
	regMu.Lock()
	registry[f.Program] = &certEntry{sys: sys, cache: map[string]bool{}}
	regMu.Unlock()
	hookOnce.Do(installHooks)
	return nil
}

func lookup(p *guarded.Program) *certEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[p]
}

// proved runs one cached proof attempt under the entry's lock.
func (e *certEntry) proved(key string, attempt func(sys *System) bool) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ok, seen := e.cache[key]; seen {
		return ok
	}
	ok := attempt(e.sys)
	e.cache[key] = ok
	return ok
}

func installHooks() {
	spec.RegisterClosureProver(func(p *guarded.Program, s state.Predicate) bool {
		e := lookup(p)
		if e == nil {
			return false
		}
		return e.proved("closure:"+s.String(), func(sys *System) bool {
			rep, err := ProveClosure(sys, s.String())
			return err == nil && rep.Verdict == Proved
		})
	})
	core.RegisterComponentProver(func(kind string, p *guarded.Program, z, x, u state.Predicate) bool {
		e := lookup(p)
		if e == nil {
			return false
		}
		key := kind + ":" + z.String() + "|" + x.String() + "|" + u.String()
		return e.proved(key, func(sys *System) bool {
			return sys.proveComponent(kind, z.String(), x.String(), u.String())
		})
	})
}

// ProveComponent reports whether the full detector ("detector") or
// corrector ("corrector") specification "Z kind X from U" is provable for
// the system without exploration. False means "fall back to the graph
// checks", never "the component fails".
func ProveComponent(sys *System, kind, z, x, u string) bool {
	return sys.proveComponent(kind, z, x, u)
}

// proveComponent discharges the full detector (or corrector) specification
// by proof: closure of U, safeness and stability of Z => X within U,
// progress (convergence of the region U ∧ X ∧ ¬Z to Z ∨ ¬X), and for
// correctors additionally the closure of X along U-steps and convergence
// of U to X. Every obligation quantifies over all U-states — a superset of
// the reachable states the graph checks inspect — so Proved transfers; any
// weaker verdict reports false and the caller falls back.
func (sys *System) proveComponent(kind, z, x, u string) bool {
	U, err := sys.needPred(u)
	if err != nil {
		return false
	}
	Z, err := sys.needPred(z)
	if err != nil {
		return false
	}
	X, err := sys.needPred(x)
	if err != nil {
		return false
	}
	// The hooks run under context.Background(): a prover attempt is never
	// cancelled mid-way, so the error returns below are unreachable — they
	// exist for the context-carrying entry points in obligations.go.
	if rep, err := sys.proveClosureExpr(context.Background(), CodeClosure, "closure", U, sys.actions); err != nil || rep.Verdict != Proved {
		return false
	}
	if rep, err := ProveSafeness(sys, u, z, x); err != nil || rep.Verdict != Proved {
		return false
	}
	// Progress: from U ∧ X ∧ ¬Z every computation reaches Z ∨ ¬X. Closure
	// of U is already discharged above.
	if rep, err := sys.proveConvergenceExpr(context.Background(), "progress", U, disj(Z, neg(X)), nil, nil, false); err != nil || rep.Verdict != Proved {
		return false
	}
	if kind != "corrector" {
		return kind == "detector"
	}
	// Convergence, closure half: no U-step falsifies X.
	for i := range sys.actions {
		if sys.proveAction(&sys.actions[i], []gcl.Expr{U, X}, X).Verdict != Proved {
			return false
		}
	}
	// Convergence, liveness half: U converges to X.
	rep, err := sys.proveConvergenceExpr(context.Background(), "convergence", U, X, nil, nil, false)
	return err == nil && rep.Verdict == Proved
}
