package prove

import (
	"fmt"
	"strings"
	"testing"

	"detcorr/internal/gcl"
)

// ringSrc generates Dijkstra's K-state token ring with n machines and
// counters in 0..k-1, in the GCL encoding used across the repo: machine 0
// is the bottom machine, privileged when x0 == x_{n-1}; machine i>0 is
// privileged when x_i != x_{i-1}. Legit holds when exactly one machine is
// privileged.
func ringSrc(n, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program ring%d\n\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "var x%d : 0..%d\n", i, k-1)
	}
	priv := func(i int) string {
		if i == 0 {
			return fmt.Sprintf("(x0 == x%d)", n-1)
		}
		return fmt.Sprintf("(x%d != x%d)", i, i-1)
	}
	b.WriteString("\npred Legit ::\n")
	for i := 0; i < n; i++ {
		var terms []string
		for j := 0; j < n; j++ {
			if j == i {
				terms = append(terms, priv(j))
			} else {
				terms = append(terms, "!"+priv(j))
			}
		}
		sep := "|"
		if i == n-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  ( %s ) %s\n", strings.Join(terms, " & "), sep)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "action move0 :: x0 == x%d -> x0 := (x0 + 1) %% %d\n", n-1, k)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "action move%d :: x%d != x%d -> x%d := x%d\n", i, i, i-1, i, i-1)
	}
	b.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "fault corrupt%d :: true -> x%d := ?\n", i, i)
	}
	return b.String()
}

const memaccessSrc = `
program memaccess
var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)
var z1      : bool

pred X1          :: present
pred U1          :: z1 => present
pred S           :: present & !((val == 0 & data == v1) | (val == 1 & data == v0))
pred Z1p         :: z1
pred DataCorrect :: (val == 0 & data == v0) | (val == 1 & data == v1)

action restore :: !present      -> present := true
action detect  :: present & !z1 -> z1 := true
action read0   :: z1 & val == 0 -> data := v0
action read1   :: z1 & val == 1 -> data := v1

fault pageout  :: present & !z1 -> present := false
`

func mustSystem(t testing.TB, src string) *System {
	t.Helper()
	ast, err := gcl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := NewSystem(ast)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestClosureRingProved(t *testing.T) {
	for _, n := range []int{3, 5} {
		sys := mustSystem(t, ringSrc(n, n))
		rep, err := ProveClosure(sys, "Legit")
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != Proved {
			t.Fatalf("ring%d: closure of Legit = %v, want proved\n%s", n, rep.Verdict, rep)
		}
		if len(rep.Actions) != n {
			t.Fatalf("ring%d: %d per-action results, want %d", n, len(rep.Actions), n)
		}
	}
}

func TestClosureMemaccessProved(t *testing.T) {
	sys := mustSystem(t, memaccessSrc)
	for _, pred := range []string{"S", "U1"} {
		rep, err := ProveClosure(sys, pred)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != Proved {
			t.Fatalf("closure of %s = %v, want proved\n%s", pred, rep.Verdict, rep)
		}
	}
}

func TestClosureDisprovedWithCounterexample(t *testing.T) {
	sys := mustSystem(t, `
program ctr
var x : 0..4
pred Low :: x <= 2
action inc :: x <= 2 -> x := x + 1
`)
	rep, err := ProveClosure(sys, "Low")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Disproved {
		t.Fatalf("verdict = %v, want disproved\n%s", rep.Verdict, rep)
	}
	got := rep.Actions[0]
	if got.Verdict != Disproved || !strings.Contains(got.Counterexample, "x=2") {
		t.Fatalf("want concrete counterexample x=2, got %+v", got)
	}
}

// TestClosureWildcard: a '?' assignment quantifies over the target's whole
// domain, so closure holds exactly when the predicate tolerates any value.
func TestClosureWildcard(t *testing.T) {
	sys := mustSystem(t, `
program wild
var y : 0..3
var b : bool
pred Any  :: y <= 3
pred Tight :: y <= 2
action scramble :: b -> y := ?
`)
	rep, err := ProveClosure(sys, "Any")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("Any should be closed under scramble: %s", rep)
	}
	rep, err = ProveClosure(sys, "Tight")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Disproved {
		t.Fatalf("Tight should be violated by scramble picking 3: %s", rep)
	}
}

func TestClosureUnknownPredicate(t *testing.T) {
	sys := mustSystem(t, memaccessSrc)
	if _, err := ProveClosure(sys, "NoSuch"); err == nil {
		t.Fatal("want error for unknown predicate")
	}
}

// TestSpanClosureDeclared proves the paper's span claim for the memory
// access program: U1 = (z1 => present) contains S and is closed under the
// program together with the pageout fault.
func TestSpanClosureDeclared(t *testing.T) {
	sys := mustSystem(t, memaccessSrc)
	rep, err := ProveSpanClosure(sys, "S", "U1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("span U1 = %v, want proved\n%s", rep.Verdict, rep)
	}
}

func TestSpanClosureInferred(t *testing.T) {
	sys := mustSystem(t, `
program spantest
var x : 0..7
var f : bool
pred Inv :: x <= 2 & !f
action inc   :: x < 2  -> x := x + 1
action reset :: x == 2 -> x := 0
fault hit  :: !f        -> f := true
fault bump :: f & x < 5 -> x := x + 1
`)
	rep, err := ProveSpanClosure(sys, "Inv", "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("inferred span = %v, want proved\n%s", rep.Verdict, rep)
	}
	// The abstract reachability fixpoint should bound x by 5: the faults
	// only bump x below 5, and no program action exceeds 2.
	joined := strings.Join(rep.Span, "; ")
	if !strings.Contains(joined, "x in") || strings.Contains(joined, "6") || strings.Contains(joined, "7") {
		t.Fatalf("span should constrain x below 6: %q", rep.Span)
	}
}

func TestSafenessMemaccess(t *testing.T) {
	sys := mustSystem(t, memaccessSrc)
	rep, err := ProveSafeness(sys, "U1", "Z1p", "X1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("detector safeness = %v, want proved\n%s", rep.Verdict, rep)
	}

	// With U = true the witness predicate no longer entails X: z1 can hold
	// while the page is out.
	rep, err = ProveSafeness(sys, "true", "Z1p", "X1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Disproved {
		t.Fatalf("safeness without U1 = %v, want disproved\n%s", rep.Verdict, rep)
	}
}

func TestConvergenceMemaccess(t *testing.T) {
	sys := mustSystem(t, memaccessSrc)
	rep, err := ProveConvergence(sys, "U1", "X1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("convergence U1 -> X1 = %v, want proved\n%s", rep.Verdict, rep)
	}
	if len(rep.Rank) == 0 {
		t.Fatal("expected a synthesized ranking function in the report")
	}
}

func TestConvergenceDeadlockDisproved(t *testing.T) {
	sys := mustSystem(t, `
program dead
var x : 0..3
pred Inv  :: x <= 3
pred Goal :: x == 3
action step :: x < 2 -> x := x + 1
`)
	rep, err := ProveConvergence(sys, "Inv", "Goal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Disproved {
		t.Fatalf("deadlock at x=2 should disprove convergence: %s", rep)
	}
	found := false
	for _, a := range rep.Actions {
		if a.Verdict == Disproved && strings.Contains(a.Counterexample, "x=2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want deadlock witness x=2 in report:\n%s", rep)
	}
}

func TestConvergenceUserRank(t *testing.T) {
	sys := mustSystem(t, `
program count
var x : 0..5
pred Inv  :: x <= 5
pred Goal :: x == 5
action step :: x < 5 -> x := x + 1
`)
	rank, err := gcl.ParseExpr("5 - x")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProveConvergence(sys, "Inv", "Goal", []gcl.Expr{rank})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("convergence with rank 5-x = %v, want proved\n%s", rep.Verdict, rep)
	}
}

// TestUnknownOnBudget: domains far beyond the enumeration budgets with an
// opaque arithmetic predicate must come back Unknown (never a wrong
// definite verdict), with a budget note.
func TestUnknownOnBudget(t *testing.T) {
	sys := mustSystem(t, `
program wide
var a : 0..300
var b : 0..300
var c : 0..300
pred Odd :: (a * b + c) % 97 != 5
action spin :: true -> a := a
`)
	rep, err := ProveClosure(sys, "Odd")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown\n%s", rep.Verdict, rep)
	}
	if !strings.Contains(rep.Actions[0].Note, "budget") {
		t.Fatalf("want a budget note, got %+v", rep.Actions[0])
	}
}

// TestRingClosureScales is the asymptotic claim behind the fast paths: the
// per-action obligations for ring n are discharged by unit refutation over
// equality classes, so proof cost must not grow with the k^n state count.
// Ring 7 with k=8 has 2,097,152 states — far beyond evalBudget — yet the
// proof must still come back definite.
func TestRingClosureScales(t *testing.T) {
	sys := mustSystem(t, ringSrc(7, 8))
	rep, err := ProveClosure(sys, "Legit")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Proved {
		t.Fatalf("ring7 closure = %v, want proved\n%s", rep.Verdict, rep)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		Code: CodeClosure, Subject: "closure of S", Verdict: Disproved,
		Actions: []ActionResult{
			{Action: "ok", Verdict: Proved},
			{Action: "bad", Verdict: Disproved, Counterexample: "x=2"},
		},
		Rank:  []string{"5-x"},
		Notes: []string{"extra"},
	}
	out := rep.String()
	for _, want := range []string{"[DC100]", "DISPROVED", "action bad", "x=2", "ranking function <5-x>", "note: extra"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "action ok") {
		t.Fatalf("proved actions should not be listed:\n%s", out)
	}
}
