package prove

import (
	"fmt"
	"sort"

	"detcorr/internal/absdom"
	"detcorr/internal/gcl"
)

// Engine budgets. miniBudget bounds the per-literal enumeration used
// during constraint propagation; evalBudget bounds the exact fallback that
// decides a branch when propagation is inconclusive; splitBudget bounds
// the total number of DPLL case splits per obligation.
const (
	miniBudget  = 1 << 12
	evalBudget  = 1 << 16
	splitBudget = 1 << 12
)

// Outcome is the result of one validity query.
type Outcome struct {
	Verdict Verdict
	Cex     map[string]int // a state falsifying the obligation, on Disproved
	Notes   []string       // budget-exhaustion traces, on Unknown
}

// valid decides whether hyp1 ∧ hyp2 ∧ ... ⇒ concl holds over the declared
// domains (plus extra, the fresh variables introduced for '?' targets), by
// refuting the conjunction of the hypotheses with ¬concl.
func (sys *System) valid(hyps []gcl.Expr, concl gcl.Expr, extra map[string]*VarDom) Outcome {
	r := &refuter{sys: sys, vars: map[string]*VarDom{}, splits: splitBudget}
	for n, v := range sys.vars {
		r.vars[n] = v
	}
	for n, v := range extra {
		r.vars[n] = v
	}
	store := absdom.NewStore()
	for n, v := range r.vars {
		store.Define(n, absdom.FullSet(v.Lo, v.Hi))
	}
	conjs := make([]gcl.Expr, 0, len(hyps)+1)
	for _, h := range hyps {
		conjs = append(conjs, nnf(h, false))
	}
	conjs = append(conjs, nnf(concl, true))
	switch st := r.refute(conjs, store); st {
	case refuted:
		return Outcome{Verdict: Proved}
	case satisfiable:
		return Outcome{Verdict: Disproved, Cex: r.cex}
	default:
		return Outcome{Verdict: Unknown, Notes: r.notes}
	}
}

type status int

const (
	refuted status = iota + 1
	satisfiable
	inconclusive
)

type refuter struct {
	sys    *System
	vars   map[string]*VarDom
	splits int // remaining case-split budget, shared across the whole query
	notes  []string
	cex    map[string]int
}

// refute decides whether the conjunction of NNF formulas is unsatisfiable
// over the store's domains: DPLL with theory propagation. Literals are
// asserted into the relational store to a fixpoint; clauses (disjunctions)
// are pruned by testing each disjunct against the store, refuting the
// branch when a clause has no consistent disjunct, unit-propagating when
// exactly one survives, and case-splitting otherwise. A branch with no
// clauses left is decided exactly by bounded enumeration over the
// narrowed value sets, which also produces the concrete counterexample.
func (r *refuter) refute(conjs []gcl.Expr, store *absdom.Store) status {
	var lits, ors []gcl.Expr
	flatten(conjs, &lits, &ors)
	for _, l := range lits {
		if bl, ok := l.(*gcl.BoolLit); ok && !bl.Value {
			return refuted
		}
	}
	if !r.propagate(lits, store) {
		return refuted
	}
	// Clause pruning and unit propagation to fixpoint.
	for {
		changed := false
		// Not filtered in place: unit propagation can append a live
		// disjunct's nested clauses, outgrowing the read position.
		kept := make([]gcl.Expr, 0, len(ors))
		for _, clause := range ors {
			live := r.liveDisjuncts(clause, lits, store)
			switch len(live) {
			case 0:
				return refuted
			case 1:
				var nl, no []gcl.Expr
				flatten(live, &nl, &no)
				lits = append(lits, nl...)
				kept = append(kept, no...)
				if !r.propagate(nl, store) {
					return refuted
				}
				changed = true
			default:
				if len(live) < countDisjuncts(clause) {
					clause = disj(live...)
					changed = true
				}
				kept = append(kept, clause)
			}
		}
		ors = kept
		if !changed {
			break
		}
	}
	if len(ors) == 0 {
		return r.decideExact(lits, store)
	}
	// Case split on the clause with the fewest disjuncts.
	sort.SliceStable(ors, func(i, j int) bool {
		return countDisjuncts(ors[i]) < countDisjuncts(ors[j])
	})
	clause, rest := ors[0], ors[1:]
	branches := appendDisjuncts(nil, clause)
	if r.splits < len(branches) {
		// Budget exhausted: we can no longer refute by splitting, but the
		// exact fallback over everything left can still decide the branch.
		return r.decideExact(append(append([]gcl.Expr{}, lits...), ors...), store)
	}
	r.splits -= len(branches)
	sawUnknown := false
	for _, d := range branches {
		sub := append(append([]gcl.Expr{}, lits...), rest...)
		sub = append(sub, d)
		switch r.refute(sub, store.Clone()) {
		case satisfiable:
			return satisfiable
		case inconclusive:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return inconclusive
	}
	return refuted
}

// liveDisjuncts returns the disjuncts of a clause that remain consistent
// with the store (testing each by asserting it into a clone along with a
// re-propagation of the branch literals).
func (r *refuter) liveDisjuncts(clause gcl.Expr, lits []gcl.Expr, store *absdom.Store) []gcl.Expr {
	var live []gcl.Expr
	for _, d := range appendDisjuncts(nil, clause) {
		probe := store.Clone()
		var dl, dors []gcl.Expr
		flatten([]gcl.Expr{d}, &dl, &dors)
		if !r.propagate(dl, probe) {
			continue
		}
		// Re-run the branch literals against the strengthened store: an
		// equality learned from d can contradict an arithmetic literal.
		if !r.propagate(lits, probe) {
			continue
		}
		live = append(live, d)
	}
	return live
}

// flatten splits NNF formulas into literals and disjunctions, recursing
// through conjunctions.
func flatten(conjs []gcl.Expr, lits, ors *[]gcl.Expr) {
	for _, e := range conjs {
		if b, ok := e.(*gcl.Binary); ok {
			switch b.Op {
			case gcl.AND:
				flatten([]gcl.Expr{b.L, b.R}, lits, ors)
				continue
			case gcl.OR:
				*ors = append(*ors, b)
				continue
			}
		}
		*lits = append(*lits, e)
	}
}

func appendDisjuncts(out []gcl.Expr, e gcl.Expr) []gcl.Expr {
	if b, ok := e.(*gcl.Binary); ok && b.Op == gcl.OR {
		return appendDisjuncts(appendDisjuncts(out, b.L), b.R)
	}
	return append(out, e)
}

func countDisjuncts(e gcl.Expr) int { return len(appendDisjuncts(nil, e)) }

// propagate asserts every literal into the store repeatedly until nothing
// changes. It reports false when the store becomes contradictory (the
// branch is refuted).
func (r *refuter) propagate(lits []gcl.Expr, store *absdom.Store) bool {
	for round := 0; round < 64; round++ {
		changed := false
		for _, l := range lits {
			if r.assertLiteral(l, store) {
				changed = true
			}
			if store.Contradictory() {
				return false
			}
		}
		if !changed {
			return true
		}
	}
	return !store.Contradictory()
}

// assertLiteral refines the store with one NNF literal and reports whether
// anything changed. Relational forms (var-to-var equality, disequality,
// and order) feed the union-find and interval machinery; everything else
// falls back to a bounded enumeration over the literal's equality-class
// representatives, narrowing each to the projection of the literal's
// satisfying assignments.
func (r *refuter) assertLiteral(l gcl.Expr, store *absdom.Store) bool {
	switch n := l.(type) {
	case *gcl.BoolLit:
		if !n.Value {
			store.MarkContradictory()
			return true
		}
		return false
	case *gcl.Ref:
		return store.Narrow(n.Name, absdom.SingleSet(1))
	case *gcl.Unary:
		if ref, ok := n.X.(*gcl.Ref); ok && n.Op == gcl.NOT {
			return store.Narrow(ref.Name, absdom.SingleSet(0))
		}
		return r.assertByEnum(l, store)
	case *gcl.Binary:
		lr, lok := n.L.(*gcl.Ref)
		rr, rok := n.R.(*gcl.Ref)
		if lok && rok {
			switch n.Op {
			case gcl.EQ:
				return store.Equate(lr.Name, rr.Name)
			case gcl.NEQ:
				return store.Disequate(lr.Name, rr.Name)
			case gcl.LT, gcl.LE, gcl.GT, gcl.GE:
				return r.assertOrder(n.Op, lr.Name, rr.Name, store)
			}
		}
		return r.assertByEnum(l, store)
	}
	return false
}

// assertOrder refines interval bounds from a variable-to-variable order
// literal.
func (r *refuter) assertOrder(op gcl.Kind, a, b string, store *absdom.Store) bool {
	if op == gcl.GT || op == gcl.GE {
		a, b = b, a
		if op == gcl.GT {
			op = gcl.LT
		} else {
			op = gcl.LE
		}
	}
	sa, okA := store.SetOf(a)
	sb, okB := store.SetOf(b)
	if !okA || !okB || sa.IsEmpty() || sb.IsEmpty() {
		return false
	}
	strict := 0
	if op == gcl.LT {
		strict = 1
	}
	changed := store.Narrow(a, sa.ClampMax(sb.IV.Hi-strict))
	if store.Contradictory() {
		return true
	}
	if store.Narrow(b, sb.ClampMin(sa.IV.Lo+strict)) {
		changed = true
	}
	if op == gcl.LT && store.Rep(a) == store.Rep(b) {
		store.MarkContradictory() // x < x
		return true
	}
	return changed
}

// assertByEnum decides an arbitrary literal by enumerating the value sets
// of its variables' equality-class representatives (each member variable
// takes its representative's value, and combinations violating a recorded
// disequality are skipped). If no combination satisfies the literal the
// store is contradictory; otherwise each representative is narrowed to
// the values that appear in some satisfying combination. Products beyond
// miniBudget are skipped — the exact fallback may still decide them.
func (r *refuter) assertByEnum(l gcl.Expr, store *absdom.Store) bool {
	vars := sortedVars(l)
	if len(vars) == 0 {
		if evalExpr(nil, l) == 0 {
			store.MarkContradictory()
			return true
		}
		return false
	}
	// Group variables by representative.
	repOf := map[string]string{}
	var reps []string
	for _, v := range vars {
		rep := store.Rep(v)
		repOf[v] = rep
		seen := false
		for _, x := range reps {
			if x == rep {
				seen = true
				break
			}
		}
		if !seen {
			reps = append(reps, rep)
		}
	}
	sets := make([]absdom.Set, len(reps))
	total := 1
	for i, rep := range reps {
		set, ok := store.SetOf(rep)
		if !ok || set.IsEmpty() {
			return false
		}
		sets[i] = set
		if c := set.Count(); total > miniBudget/c {
			return false // too wide to enumerate here
		} else {
			total *= c
		}
	}
	feasible := make([]absdom.Set, len(reps))
	for i := range feasible {
		feasible[i] = absdom.EmptySet()
	}
	env := map[string]int{}
	vals := make([]int, len(reps))
	var rec func(i int)
	any := false
	rec = func(i int) {
		if i == len(reps) {
			for _, v := range vars {
				env[v] = vals[indexOf(reps, repOf[v])]
			}
			if evalExpr(env, l) == 0 {
				return
			}
			any = true
			for j := range reps {
				feasible[j] = absdom.Union(feasible[j], absdom.SingleSet(vals[j]))
			}
			return
		}
		sets[i].ForEach(func(v int) bool {
			vals[i] = v
			// Skip combinations violating recorded disequalities between the
			// enumerated representatives.
			for j := 0; j < i; j++ {
				if vals[j] == v && store.Disequal(reps[i], reps[j]) {
					return true
				}
			}
			rec(i + 1)
			return true
		})
	}
	rec(0)
	if !any {
		store.MarkContradictory()
		return true
	}
	changed := false
	for i, rep := range reps {
		if store.Narrow(rep, feasible[i]) {
			changed = true
		}
	}
	return changed
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// decideExact decides a clause-free branch by enumerating all assignments
// to the formulas' variables over their narrowed value sets, checking the
// full formula list concretely. This is complete for the branch (the store
// narrowings are sound, so no satisfying assignment lies outside them).
// Exceeding evalBudget yields inconclusive with a trace note.
func (r *refuter) decideExact(conjs []gcl.Expr, store *absdom.Store) status {
	varSet := map[string]bool{}
	for _, e := range conjs {
		freeVars(e, varSet)
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	// Enumerate per representative; members copy their rep's value.
	var reps []string
	repOf := map[string]string{}
	for _, v := range vars {
		rep := store.Rep(v)
		repOf[v] = rep
		if indexOf(reps, rep) < 0 {
			reps = append(reps, rep)
		}
	}
	sets := make([]absdom.Set, len(reps))
	total := 1
	for i, rep := range reps {
		set, ok := store.SetOf(rep)
		if !ok {
			set = absdom.FullSet(0, 1)
		}
		if set.IsEmpty() {
			return refuted
		}
		sets[i] = set
		if c := set.Count(); total > evalBudget/c {
			r.notes = append(r.notes, fmt.Sprintf(
				"exact fallback abandoned: enumerating %d variables exceeds the %d-assignment budget",
				len(reps), evalBudget))
			return inconclusive
		} else {
			total *= c
		}
	}
	env := map[string]int{}
	vals := make([]int, len(reps))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(reps) {
			for _, v := range vars {
				env[v] = vals[indexOf(reps, repOf[v])]
			}
			for _, e := range conjs {
				if evalExpr(env, e) == 0 {
					return false
				}
			}
			return true
		}
		found := false
		sets[i].ForEach(func(v int) bool {
			vals[i] = v
			for j := 0; j < i; j++ {
				if vals[j] == v && store.Disequal(reps[i], reps[j]) {
					return true
				}
			}
			if rec(i + 1) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if rec(0) {
		// Complete the witness with every declared variable so the report
		// shows a full state (unconstrained variables take their minimum).
		r.cex = map[string]int{}
		for _, name := range r.sys.order {
			if v, bound := env[name]; bound {
				r.cex[name] = v
				continue
			}
			rep := repOf[name]
			if rep == "" {
				rep = store.Rep(name)
			}
			if set, ok := store.SetOf(rep); ok && !set.IsEmpty() {
				r.cex[name] = set.IV.Lo
			} else {
				r.cex[name] = r.sys.vars[name].Lo
			}
		}
		for name, v := range env {
			if _, declared := r.sys.vars[name]; !declared {
				r.cex[name] = v // fresh '?' variables, rendered with their tick
			}
		}
		return satisfiable
	}
	return refuted
}
