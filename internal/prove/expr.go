package prove

import (
	"fmt"
	"sort"
	"strings"

	"detcorr/internal/absdom"
	"detcorr/internal/gcl"
)

// subst returns e with every variable reference in sigma replaced by its
// image, in one simultaneous pass. Expressions are never mutated; shared
// subtrees are reused when unchanged.
func subst(e gcl.Expr, sigma map[string]gcl.Expr) gcl.Expr {
	if len(sigma) == 0 {
		return e
	}
	switch n := e.(type) {
	case *gcl.BoolLit, *gcl.IntLit:
		return e
	case *gcl.Ref:
		if img, ok := sigma[n.Name]; ok {
			return img
		}
		return e
	case *gcl.Unary:
		x := subst(n.X, sigma)
		if x == n.X {
			return e
		}
		return &gcl.Unary{Op: n.Op, X: x, At: n.At}
	case *gcl.Binary:
		l, r := subst(n.L, sigma), subst(n.R, sigma)
		if l == n.L && r == n.R {
			return e
		}
		return &gcl.Binary{Op: n.Op, L: l, R: r, At: n.At}
	}
	return e
}

// wp builds the substitution of an action's simultaneous assignment. For a
// deterministic target x := e the substitution maps x to e; for the
// wildcard x := ? it maps x to a fresh universally-quantified variable
// with x's domain ("x'", "x”", ...), registered in extra. Proving
// validity of the obligation with the fresh variable free is exactly the
// ∀-quantified weakest precondition over the finite domain.
func (sys *System) wp(a *gcl.ActionDecl, extra map[string]*VarDom) map[string]gcl.Expr {
	sigma := map[string]gcl.Expr{}
	for _, as := range a.Assigns {
		if as.Expr != nil {
			sigma[as.Var] = as.Expr
			continue
		}
		sys.fresh++
		base := sys.vars[as.Var]
		name := fmt.Sprintf("%s'%d", as.Var, sys.fresh)
		extra[name] = &VarDom{Name: name, Bool: base.Bool, Lo: base.Lo, Hi: base.Hi, Enum: base.Enum}
		sigma[as.Var] = &gcl.Ref{Name: name, At: as.At}
	}
	return sigma
}

// nnf converts an inlined boolean expression to negation normal form:
// IMPLIES eliminated, NOT pushed onto atoms (comparison operators are
// flipped, so negation survives only on boolean variable references).
func nnf(e gcl.Expr, neg bool) gcl.Expr {
	switch n := e.(type) {
	case *gcl.BoolLit:
		return &gcl.BoolLit{Value: n.Value != neg, At: n.At}
	case *gcl.Ref:
		if neg {
			return &gcl.Unary{Op: gcl.NOT, X: n, At: n.At}
		}
		return n
	case *gcl.Unary:
		if n.Op == gcl.NOT {
			return nnf(n.X, !neg)
		}
		return n // unary minus below an atom; unreachable at boolean level
	case *gcl.Binary:
		switch n.Op {
		case gcl.AND:
			op := gcl.AND
			if neg {
				op = gcl.OR
			}
			return &gcl.Binary{Op: op, L: nnf(n.L, neg), R: nnf(n.R, neg), At: n.At}
		case gcl.OR:
			op := gcl.OR
			if neg {
				op = gcl.AND
			}
			return &gcl.Binary{Op: op, L: nnf(n.L, neg), R: nnf(n.R, neg), At: n.At}
		case gcl.IMPLIES:
			// a => b  ==  !a | b
			if neg {
				return &gcl.Binary{Op: gcl.AND, L: nnf(n.L, false), R: nnf(n.R, true), At: n.At}
			}
			return &gcl.Binary{Op: gcl.OR, L: nnf(n.L, true), R: nnf(n.R, false), At: n.At}
		case gcl.EQ, gcl.NEQ, gcl.LT, gcl.LE, gcl.GT, gcl.GE:
			if !neg {
				return n
			}
			return &gcl.Binary{Op: flipCmp(n.Op), L: n.L, R: n.R, At: n.At}
		}
		return n
	}
	return e
}

func flipCmp(op gcl.Kind) gcl.Kind {
	switch op {
	case gcl.EQ:
		return gcl.NEQ
	case gcl.NEQ:
		return gcl.EQ
	case gcl.LT:
		return gcl.GE
	case gcl.LE:
		return gcl.GT
	case gcl.GT:
		return gcl.LE
	case gcl.GE:
		return gcl.LT
	}
	return op
}

// freeVars collects the variable names an inlined expression references.
func freeVars(e gcl.Expr, set map[string]bool) {
	switch n := e.(type) {
	case *gcl.Ref:
		set[n.Name] = true
	case *gcl.Unary:
		freeVars(n.X, set)
	case *gcl.Binary:
		freeVars(n.L, set)
		freeVars(n.R, set)
	}
}

func sortedVars(e gcl.Expr) []string {
	set := map[string]bool{}
	freeVars(e, set)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// evalExpr evaluates an inlined expression under a total assignment
// (booleans are 0/1, enum values their index, range values source-level).
func evalExpr(env map[string]int, e gcl.Expr) int {
	switch n := e.(type) {
	case *gcl.BoolLit:
		if n.Value {
			return 1
		}
		return 0
	case *gcl.IntLit:
		return n.Value
	case *gcl.Ref:
		return env[n.Name]
	case *gcl.Unary:
		x := evalExpr(env, n.X)
		if n.Op == gcl.NOT {
			return 1 - x
		}
		return -x
	case *gcl.Binary:
		return absdom.EvalBinary(n.Op, evalExpr(env, n.L), evalExpr(env, n.R))
	}
	return 0
}

// exprString renders an inlined expression in GCL syntax (fully
// parenthesized below the top level, which is good enough for reports).
func exprString(e gcl.Expr) string {
	switch n := e.(type) {
	case *gcl.BoolLit:
		return fmt.Sprintf("%v", n.Value)
	case *gcl.IntLit:
		return fmt.Sprintf("%d", n.Value)
	case *gcl.Ref:
		return n.Name
	case *gcl.Unary:
		if n.Op == gcl.NOT {
			return "!" + exprString(n.X)
		}
		return "-" + exprString(n.X)
	case *gcl.Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(n.L), opString(n.Op), exprString(n.R))
	}
	return "?"
}

func opString(op gcl.Kind) string {
	for _, p := range [...]struct {
		k gcl.Kind
		s string
	}{
		{gcl.AND, "&"}, {gcl.OR, "|"}, {gcl.IMPLIES, "=>"},
		{gcl.EQ, "=="}, {gcl.NEQ, "!="}, {gcl.LT, "<"}, {gcl.LE, "<="},
		{gcl.GT, ">"}, {gcl.GE, ">="}, {gcl.PLUS, "+"}, {gcl.MINUS, "-"},
		{gcl.STAR, "*"}, {gcl.PERCENT, "%"},
	} {
		if p.k == op {
			return p.s
		}
	}
	return strings.TrimSpace(fmt.Sprintf("%v", op))
}

// conj builds the conjunction of non-nil expressions.
func conj(exprs ...gcl.Expr) gcl.Expr {
	var out gcl.Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
			continue
		}
		out = &gcl.Binary{Op: gcl.AND, L: out, R: e}
	}
	if out == nil {
		return &gcl.BoolLit{Value: true}
	}
	return out
}

// disj builds the disjunction of non-nil expressions (false when empty).
func disj(exprs ...gcl.Expr) gcl.Expr {
	var out gcl.Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
			continue
		}
		out = &gcl.Binary{Op: gcl.OR, L: out, R: e}
	}
	if out == nil {
		return &gcl.BoolLit{Value: false}
	}
	return out
}

// neg negates an expression (the refutation entry point normalizes via
// nnf, so a plain NOT wrapper suffices here).
func neg(e gcl.Expr) gcl.Expr { return &gcl.Unary{Op: gcl.NOT, X: e} }
