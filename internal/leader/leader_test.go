package leader

import (
	"testing"

	"strings"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func TestElectionIsCorrector(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		sys, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AsCorrector().Check(); err != nil {
			t.Errorf("n=%d: elected should correct itself from any state: %v", n, err)
		}
	}
}

func TestRefinesSpecFromElected(t *testing.T) {
	sys := MustNew(3)
	if err := sys.Spec.CheckRefinesFrom(sys.Program, sys.Elected); err != nil {
		t.Errorf("election should refine its spec from the elected states: %v", err)
	}
}

func TestNonmaskingUnderCorruption(t *testing.T) {
	sys := MustNew(3)
	rep := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, state.True, sys.Elected)
	if !rep.OK() {
		t.Errorf("election should be nonmasking tolerant to belief corruption: %v", rep.Err)
	}
}

func TestNotFailSafeUnderCorruption(t *testing.T) {
	// Corruption can depose the elected leader transiently.
	sys := MustNew(3)
	if rep := fault.CheckFailSafe(sys.Program, sys.Corruption, sys.Spec, sys.Elected); rep.OK() {
		t.Error("election must not be fail-safe tolerant to belief corruption")
	}
}

func TestElectedStatesAreSilent(t *testing.T) {
	sys := MustNew(4)
	err := sys.Schema.ForEachState(func(s state.State) bool {
		if sys.Elected.Holds(s) && !sys.Program.Deadlocked(s) {
			t.Errorf("action enabled in elected state %s", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConvergesFromEveryState(t *testing.T) {
	sys := MustNew(4)
	if err := spec.CheckConverges(sys.Program, state.True, sys.Elected); err != nil {
		t.Errorf("election should converge from any state: %v", err)
	}
}

func TestSelfInjectionIsLoadBearing(t *testing.T) {
	// Without the self.i actions, a corruption that erases all knowledge
	// of the maximum id converges to a wrong stable leader: the corrector
	// property must fail.
	sys := MustNew(3)
	var kept []guarded.Action
	for _, a := range sys.Program.Actions() {
		if strings.HasPrefix(a.Name, "adopt") {
			kept = append(kept, a)
		}
	}
	broken := guarded.MustProgram("adopt-only", sys.Schema, kept...)
	c := sys.AsCorrector()
	c.C = broken
	if err := c.Check(); err == nil {
		t.Error("without self-injection the election must fail to converge to the true maximum")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("n=1 must be rejected")
	}
}
