// Package leader implements self-stabilizing leader election on a
// unidirectional ring — another application the paper lists for the
// component-based method (Section 1). Every process keeps a believed-leader
// id; each process injects its own id and adopts any larger id from its
// ring predecessor, so the maximum id floods the ring. The program is a
// corrector in the paper's sense: "elected corrects elected", where the
// legitimate states are those in which every process believes in the
// true maximum id. Transient faults corrupt belief variables; the system is
// nonmasking tolerant — a transient wrong leader is possible, then the ring
// converges.
package leader

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// System is a leader-election instance over an n-process ring with process
// ids 0..n-1 (so the rightful leader is n-1).
type System struct {
	N      int
	Schema *state.Schema

	Program *guarded.Program

	// Elected holds when every process believes in the maximum id.
	Elected state.Predicate

	Spec spec.Problem

	// Corruption rewrites one process's belief arbitrarily.
	Corruption fault.Class
}

func ldrVar(i int) string { return fmt.Sprintf("ldr.%d", i) }

// New builds an n-process ring, n ≥ 2.
func New(n int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("leader: need at least 2 processes (got %d)", n)
	}
	vars := make([]state.Var, n)
	for i := 0; i < n; i++ {
		vars[i] = state.IntVar(ldrVar(i), n)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, Schema: sch}
	if err := sys.build(); err != nil {
		return nil, err
	}
	return sys, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(n int) *System {
	sys, err := New(n)
	if err != nil {
		panic(err)
	}
	return sys
}

// Believes returns process i's believed leader in s.
func (sys *System) Believes(s state.State, i int) int {
	return s.GetName(ldrVar(i))
}

func (sys *System) build() error {
	n := sys.N
	sys.Elected = state.Pred(fmt.Sprintf("all believe in %d", n-1), func(s state.State) bool {
		for i := 0; i < n; i++ {
			if s.Get(i) != n-1 {
				return false
			}
		}
		return true
	})

	var actions []guarded.Action
	for i := 0; i < n; i++ {
		i := i
		pred := (i + n - 1) % n
		actions = append(actions,
			// adopt.i: take a larger belief from the ring predecessor.
			guarded.Det(fmt.Sprintf("adopt.%d", i),
				state.Pred(fmt.Sprintf("ldr.%d < ldr.%d", i, pred), func(s state.State) bool {
					return s.Get(i) < s.Get(pred)
				}),
				func(s state.State) state.State { return s.With(i, s.Get(pred)) }),
			// self.i: a process never believes in anyone smaller than
			// itself — this is what flushes out stale small ids and makes
			// the true maximum always re-enter the ring.
			guarded.Det(fmt.Sprintf("self.%d", i),
				state.Pred(fmt.Sprintf("ldr.%d < %d", i, i), func(s state.State) bool {
					return s.Get(i) < i
				}),
				func(s state.State) state.State { return s.With(i, i) }),
		)
	}
	prog, err := guarded.NewProgram(fmt.Sprintf("leader(n=%d)", n), sys.Schema, actions...)
	if err != nil {
		return err
	}
	sys.Program = prog

	sys.Spec = spec.Problem{
		Name: "SPEC_leader",
		Safety: spec.NeverStep("an elected leader is never deposed", func(from, to state.State) bool {
			return sys.Elected.Holds(from) && !sys.Elected.Holds(to)
		}),
		Live: []spec.LeadsTo{{
			Name: "a leader is eventually elected everywhere",
			P:    state.True,
			Q:    sys.Elected,
		}},
	}

	var faults []guarded.Action
	for i := 0; i < n; i++ {
		i := i
		faults = append(faults, guarded.Choice(fmt.Sprintf("corrupt.%d", i), state.True,
			func(s state.State) []state.State {
				out := make([]state.State, 0, n)
				for v := 0; v < n; v++ {
					out = append(out, s.With(i, v))
				}
				return out
			}))
	}
	sys.Corruption = fault.NewClass("belief-corruption", faults...)
	return nil
}

// AsCorrector returns the system viewed as the paper's corrector: the
// elected predicate corrects itself from any state.
func (sys *System) AsCorrector() core.Corrector {
	return core.Corrector{
		Name: sys.Program.Name(),
		C:    sys.Program,
		Z:    sys.Elected,
		X:    sys.Elected,
		U:    state.True,
	}
}
