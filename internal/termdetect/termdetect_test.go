package termdetect

import (
	"errors"
	"strings"
	"testing"

	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

func TestDetectorHolds(t *testing.T) {
	for _, n := range []int{2, 3} {
		sys, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AsDetector().Check(); err != nil {
			t.Errorf("n=%d: done should detect all-idle: %v", n, err)
		}
	}
}

func TestSafenessConcretely(t *testing.T) {
	// No reachable state announces termination while a worker is active.
	sys := MustNew(3)
	g, err := explore.Build(sys.Program, sys.Init, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reach(g.SetOf(sys.Init), nil)
	bad := 0
	reach.ForEach(func(id int) bool {
		s := g.State(id)
		if sys.Done.Holds(s) && !sys.AllIdle.Holds(s) {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Errorf("%d reachable states announce termination spuriously", bad)
	}
}

func TestMaskingTolerantToTokenDisplacement(t *testing.T) {
	sys := MustNew(3)
	if err := sys.AsDetector().CheckFTolerant(sys.TokenLoss, fault.Masking); err != nil {
		t.Errorf("detector should be masking tolerant to token displacement: %v", err)
	}
}

func TestNotFailSafeUnderColorCorruption(t *testing.T) {
	// Clearing a machine's black flag lets a stale white probe conclude
	// while work is still in flight: the classical counterexample.
	sys := MustNew(3)
	err := sys.AsDetector().CheckFTolerant(sys.ColorCorruption, fault.FailSafe)
	if err == nil {
		t.Fatal("color corruption must break fail-safe tolerance of the detector")
	}
	var cerr *core.ConditionError
	if !errors.As(err, &cerr) || cerr.Condition != "Safeness" {
		t.Errorf("expected a Safeness violation (false announcement), got %v", err)
	}
}

func TestBlackeningRuleIsLoadBearing(t *testing.T) {
	// Remove the blackening from the activate actions (the classical bug)
	// and the checker must find a false announcement even without faults.
	sys := MustNew(3)
	broken := buildWithoutBlackening(t, sys)
	g, err := explore.Build(broken, sys.Init, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := core.ExtensionalPredicate("reach(init)", g, g.Reach(g.SetOf(sys.Init), nil))
	d := core.Detector{D: broken, Z: sys.Done, X: sys.AllIdle, U: u}
	err = d.Check()
	if err == nil {
		t.Fatal("without the blackening rule the detector must be unsound")
	}
	if !strings.Contains(err.Error(), "Safeness") {
		t.Errorf("expected Safeness violation, got %v", err)
	}
}

func TestProgressWithinBound(t *testing.T) {
	// From any reachable all-idle state, done is eventually announced —
	// implied by Check, but assert it directly for documentation value.
	sys := MustNew(3)
	g, err := explore.Build(sys.Program, sys.U, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idle := g.SetOf(state.And(sys.AllIdle, state.Not(sys.Done)))
	idle.Intersect(g.Reach(g.SetOf(sys.U), nil))
	goal := g.SetOf(sys.Done)
	if v := g.CheckEventually(idle, goal); v != nil {
		t.Errorf("idle states must lead to announcement: %v", v)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("n=1 must be rejected")
	}
}

// buildWithoutBlackening clones the system's program, replacing each
// activate action with a variant that does not blacken the sender.
func buildWithoutBlackening(t *testing.T, sys *System) *guarded.Program {
	t.Helper()
	actions := make([]guarded.Action, 0, sys.Program.NumActions())
	for _, a := range sys.Program.Actions() {
		if !strings.HasPrefix(a.Name, "activate.") {
			actions = append(actions, a)
			continue
		}
		var i, j int
		if _, err := fmt.Sscanf(a.Name, "activate.%d.%d", &i, &j); err != nil {
			t.Fatal(err)
		}
		target := activeVar(j)
		actions = append(actions, guarded.Det(a.Name, a.Guard,
			func(s state.State) state.State { return s.WithName(target, 1) }))
	}
	return guarded.MustProgram("broken", sys.Schema, actions...)
}
