// Package termdetect implements ring-based distributed termination
// detection (Dijkstra, Feijen and van Gasteren's token/color algorithm) as
// an instance of the paper's detector component: the conclusion flag `done`
// is the witness predicate Z, "every worker is idle" is the detection
// predicate X, and the algorithm refines 'Z detects X' — Safeness is the
// classical soundness of the detector (no false termination announcements),
// Progress its liveness, and Stability is immediate because termination is
// stable. Termination detection is one of the applications the paper lists
// for the component-based method (Section 1).
//
// The model: N workers; an active worker may finish or activate another
// worker (blackening itself); a probe token circulates from N-1 down to 0,
// collecting colors; machine 0 concludes termination from a white token and
// a white own color, and otherwise restarts the probe.
//
// Two fault classes show both sides of the theory:
//
//   - token displacement (the token is thrown back to machine 0 and
//     dirtied): the detector is masking tolerant — a dirty token never
//     concludes, and the probe restarts;
//   - color corruption (a machine's black flag is spuriously cleared): the
//     detector is *not even fail-safe* tolerant — the checker finds a false
//     announcement, reproducing the classical counterexample that motivates
//     the blackening rule.
package termdetect

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// System is a termination-detection instance over n workers.
type System struct {
	N      int
	Schema *state.Schema

	// Program contains the workers (finish/activate) and the detector
	// (pass/conclude/restart).
	Program *guarded.Program

	// Done is the witness predicate Z; AllIdle the detection predicate X;
	// Init the initial condition (no conclusion yet, probe at machine 0,
	// token dirty so the first round cannot conclude); U the closure of
	// Init under the program — the predicate the detects relation is
	// refined from.
	Done, AllIdle, Init, U state.Predicate

	// TokenLoss displaces and dirties the token; ColorCorruption clears a
	// machine's black flag.
	TokenLoss, ColorCorruption fault.Class
}

func activeVar(i int) string { return fmt.Sprintf("active.%d", i) }
func blackVar(i int) string  { return fmt.Sprintf("black.%d", i) }

// New builds the system with n ≥ 2 workers.
func New(n int) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("termdetect: need at least 2 workers (got %d)", n)
	}
	vars := make([]state.Var, 0, 2*n+3)
	for i := 0; i < n; i++ {
		vars = append(vars, state.BoolVar(activeVar(i)), state.BoolVar(blackVar(i)))
	}
	vars = append(vars,
		state.IntVar("token", n),
		state.BoolVar("tokenBlack"),
		state.BoolVar("done"),
	)
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, Schema: sch}
	sys.buildPredicates()
	if err := sys.buildProgram(); err != nil {
		return nil, err
	}
	if err := sys.computeU(); err != nil {
		return nil, err
	}
	sys.buildFaults()
	return sys, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(n int) *System {
	sys, err := New(n)
	if err != nil {
		panic(err)
	}
	return sys
}

func (sys *System) buildPredicates() {
	sys.Done = state.VarTrue(sys.Schema, "done")
	sys.AllIdle = state.Pred("all workers idle", func(s state.State) bool {
		for i := 0; i < sys.N; i++ {
			if s.GetName(activeVar(i)) != 0 {
				return false
			}
		}
		return true
	})
	sys.Init = state.Pred("init: ¬done ∧ token at 0, dirty", func(s state.State) bool {
		return s.GetName("done") == 0 && s.GetName("token") == 0 && s.GetName("tokenBlack") != 0
	})
}

func (sys *System) buildProgram() error {
	n := sys.N
	var actions []guarded.Action
	for i := 0; i < n; i++ {
		i := i
		av := activeVar(i)
		actions = append(actions, guarded.Det(fmt.Sprintf("finish.%d", i),
			state.VarTrue(sys.Schema, av),
			func(s state.State) state.State { return s.WithName(av, 0) }))
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			j := j
			actions = append(actions, guarded.Det(fmt.Sprintf("activate.%d.%d", i, j),
				state.Pred(fmt.Sprintf("active.%d ∧ ¬active.%d", i, j), func(s state.State) bool {
					return s.GetName(av) != 0 && s.GetName(activeVar(j)) == 0
				}),
				// Sending work blackens the sender — the classical rule
				// that makes the probe sound.
				func(s state.State) state.State {
					return s.WithName(activeVar(j), 1).WithName(blackVar(i), 1)
				}))
		}
	}
	// pass.i: an idle machine i > 0 holding the token forwards it to i-1,
	// staining it with its own color and whitening itself.
	for i := 1; i < n; i++ {
		i := i
		actions = append(actions, guarded.Det(fmt.Sprintf("pass.%d", i),
			state.Pred(fmt.Sprintf("token at %d ∧ idle", i), func(s state.State) bool {
				return s.GetName("token") == i && s.GetName(activeVar(i)) == 0 && s.GetName("done") == 0
			}),
			func(s state.State) state.State {
				if s.GetName(blackVar(i)) != 0 {
					s = s.WithName("tokenBlack", 1)
				}
				return s.WithName("token", i-1).WithName(blackVar(i), 0)
			}))
	}
	// conclude: machine 0, idle, white, holding a white token announces
	// termination.
	actions = append(actions, guarded.Det("conclude",
		state.Pred("white probe completed at 0", func(s state.State) bool {
			return s.GetName("token") == 0 && s.GetName("done") == 0 &&
				s.GetName(activeVar(0)) == 0 && s.GetName(blackVar(0)) == 0 &&
				s.GetName("tokenBlack") == 0
		}),
		func(s state.State) state.State { return s.WithName("done", 1) }))
	// restart: machine 0 relaunches a clean probe when the last one failed
	// (black token or own blackness) — it whitens itself and emits a white
	// token at machine n-1.
	actions = append(actions, guarded.Det("restart",
		state.Pred("probe failed at 0", func(s state.State) bool {
			if s.GetName("token") != 0 || s.GetName("done") != 0 || s.GetName(activeVar(0)) != 0 {
				return false
			}
			return s.GetName(blackVar(0)) != 0 || s.GetName("tokenBlack") != 0
		}),
		func(s state.State) state.State {
			return s.WithName("token", sys.N-1).WithName("tokenBlack", 0).WithName(blackVar(0), 0)
		}))
	prog, err := guarded.NewProgram(fmt.Sprintf("termdetect(n=%d)", sys.N), sys.Schema, actions...)
	if err != nil {
		return err
	}
	sys.Program = prog
	return nil
}

// computeU closes Init under the program so the detects relation has a
// closed "from" predicate, as refinement requires.
func (sys *System) computeU() error {
	g, err := explore.Shared(sys.Program, sys.Init, explore.Options{})
	if err != nil {
		return err
	}
	reach := g.Reach(g.SetOf(sys.Init), nil)
	sys.U = core.ExtensionalPredicate("reach(init)", g, reach)
	return nil
}

func (sys *System) buildFaults() {
	displace := guarded.Det("displace-token",
		state.Pred("¬done", func(s state.State) bool { return s.GetName("done") == 0 }),
		func(s state.State) state.State {
			return s.WithName("token", 0).WithName("tokenBlack", 1)
		})
	sys.TokenLoss = fault.NewClass("token-displacement", displace)

	var whiten []guarded.Action
	for i := 0; i < sys.N; i++ {
		i := i
		whiten = append(whiten, guarded.Det(fmt.Sprintf("whiten.%d", i),
			state.Pred(fmt.Sprintf("black.%d", i), func(s state.State) bool {
				return s.GetName(blackVar(i)) != 0
			}),
			func(s state.State) state.State { return s.WithName(blackVar(i), 0) }))
	}
	sys.ColorCorruption = fault.NewClass("color-corruption", whiten...)
}

// AsDetector returns the system viewed as the paper's detector component:
// done detects "all workers idle" from the reachable closure of the
// initial condition.
func (sys *System) AsDetector() core.Detector {
	return core.Detector{
		Name: sys.Program.Name(),
		D:    sys.Program,
		Z:    sys.Done,
		X:    sys.AllIdle,
		U:    sys.U,
	}
}
