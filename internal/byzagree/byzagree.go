// Package byzagree implements the paper's Byzantine agreement construction
// (Section 6.2) for four processes (general g plus non-generals 1..3, so at
// most f = 1 Byzantine process): the fault-intolerant program IB, the
// detector DB whose witness gates each output action (DB.j ; IB2.j), and the
// corrector CB that re-satisfies d.j = corrdecn via majority, yielding
//
//	BYZ.g ‖ ( ‖ j : IB1.j ‖ DB.j;IB2.j ‖ CB.j ‖ BYZ.j )
//
// the masking Byzantine-tolerant program.
//
// Byzantine behaviour is modeled exactly as in the paper: an auxiliary
// variable b.j per process; the *fault* action flips b.j from false to true
// (at most one process, per the 3f+1 bound with f = 1); the BYZ.j *program*
// actions, enabled while b.j holds, change the process's decision (to any
// binary value) or its output arbitrarily. Program actions are weakly fair,
// which gives the standard synchrony surrogate: every process, Byzantine or
// not, eventually publishes some binary decision — without it the majority
// witness could block forever on a silent Byzantine peer.
package byzagree

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// NumNonGenerals is the number of non-general processes (n = 4, f = 1).
const NumNonGenerals = 3

// System bundles the Byzantine agreement programs, specification,
// predicates and fault class.
type System struct {
	Schema *state.Schema

	Intolerant *guarded.Program // IB (+ BYZ behaviour)
	FailSafe   *guarded.Program // IB1 ‖ DB;IB2 ‖ BYZ
	Masking    *guarded.Program // IB1 ‖ DB;IB2 ‖ CB ‖ BYZ

	Spec spec.Problem

	// S: no process Byzantine, every decision and output consistent with
	// d.g. ST strengthens S with the phase structure of the gated protocol:
	// an output exists only once every non-general has decided — the
	// invariant of the fail-safe and masking programs (without it, an
	// "early" output state would be closed under the program yet
	// indefensible once the general turns Byzantine and flips the eventual
	// majority). Decided: every non-Byzantine non-general has output.
	S, ST, Decided state.Predicate

	Faults fault.Class // at most one process turns Byzantine
}

// d encoding: d.g ∈ {0,1}; d.j, out.j ∈ {0=⊥, 1=value0, 2=value1}.

// New constructs the n = 4 Byzantine agreement system.
func New() (*System, error) {
	vars := []state.Var{
		state.IntVar("d.g", 2),
		state.BoolVar("b.g"),
	}
	for j := 1; j <= NumNonGenerals; j++ {
		vars = append(vars,
			state.Var{Name: fmt.Sprintf("d.%d", j), Domain: state.Enum("dec", "bot", "v0", "v1")},
			state.Var{Name: fmt.Sprintf("out.%d", j), Domain: state.Enum("dec", "bot", "v0", "v1")},
			state.BoolVar(fmt.Sprintf("b.%d", j)),
		)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{Schema: sch}
	sys.buildPredicates()
	if err := sys.buildPrograms(); err != nil {
		return nil, err
	}
	sys.buildSpec()
	sys.buildFaults()
	return sys, nil
}

// MustNew is New but panics on construction failure.
func MustNew() *System {
	sys, err := New()
	if err != nil {
		panic(err)
	}
	return sys
}

func dvar(j int) string   { return fmt.Sprintf("d.%d", j) }
func outvar(j int) string { return fmt.Sprintf("out.%d", j) }
func bvar(j int) string   { return fmt.Sprintf("b.%d", j) }

// Majority returns the binary value (encoded 1 or 2) held by at least two of
// the non-general decisions, and whether all decisions are non-⊥ so that the
// majority is well defined.
func Majority(s state.State) (int, bool) {
	counts := map[int]int{}
	for j := 1; j <= NumNonGenerals; j++ {
		v := s.GetName(dvar(j))
		if v == 0 {
			return 0, false
		}
		counts[v]++
	}
	for v, c := range counts {
		if c >= 2 {
			return v, true
		}
	}
	return 0, false
}

// Corrdecn returns the paper's correct decision (encoded 1 or 2): d.g when
// the general is not Byzantine, the majority of the non-general decisions
// otherwise. The second return is false when the value is undefined (g
// Byzantine and no majority yet).
func Corrdecn(s state.State) (int, bool) {
	if s.GetName("b.g") == 0 {
		return s.GetName("d.g") + 1, true
	}
	return Majority(s)
}

// WitnessOf returns DB.j's (and CB.j's) witness predicate:
// (∀k : k≠g : d.k ≠ ⊥) ∧ d.j = (majority k : k≠g : d.k).
func WitnessOf(j int) state.Predicate {
	return state.Pred(fmt.Sprintf("W.%d: all decided ∧ d.%d=majority", j, j), func(s state.State) bool {
		m, ok := Majority(s)
		return ok && s.GetName(dvar(j)) == m
	})
}

// DetectionOf returns DB.j's detection predicate d.j = corrdecn.
func DetectionOf(j int) state.Predicate {
	return state.Pred(fmt.Sprintf("X.%d: d.%d=corrdecn", j, j), func(s state.State) bool {
		c, ok := Corrdecn(s)
		return ok && s.GetName(dvar(j)) == c
	})
}

func (sys *System) buildPredicates() {
	sys.S = state.Pred("S: no Byzantine, all consistent with d.g", func(s state.State) bool {
		if s.GetName("b.g") != 0 {
			return false
		}
		dg := s.GetName("d.g") + 1
		for j := 1; j <= NumNonGenerals; j++ {
			if s.GetName(bvar(j)) != 0 {
				return false
			}
			d, o := s.GetName(dvar(j)), s.GetName(outvar(j))
			if d != 0 && d != dg {
				return false
			}
			// A process outputs only after deciding, and the output equals
			// both its decision and the general's value.
			if o != 0 && (o != dg || d != dg) {
				return false
			}
		}
		return true
	})
	sys.ST = state.And(sys.S, state.Pred("outputs only after all decided", func(s state.State) bool {
		anyOut := false
		allDecided := true
		for j := 1; j <= NumNonGenerals; j++ {
			if s.GetName(outvar(j)) != 0 {
				anyOut = true
			}
			if s.GetName(dvar(j)) == 0 {
				allDecided = false
			}
		}
		return !anyOut || allDecided
	}))
	sys.Decided = state.Pred("every non-Byzantine output set", func(s state.State) bool {
		for j := 1; j <= NumNonGenerals; j++ {
			if s.GetName(bvar(j)) == 0 && s.GetName(outvar(j)) == 0 {
				return false
			}
		}
		return true
	})
}

// byzBehaviour returns the BYZ.j program actions for process j (or the
// general when j == 0): while b.j holds the process may set its decision to
// any binary value and (non-generals) its output to any binary value.
func (sys *System) byzBehaviour(j int) []guarded.Action {
	if j == 0 {
		bg := state.VarTrue(sys.Schema, "b.g")
		return []guarded.Action{
			guarded.Choice("BYZd.g", bg, func(s state.State) []state.State {
				i := s.Schema().MustIndexOf("d.g")
				return []state.State{s.With(i, 0), s.With(i, 1)}
			}),
		}
	}
	bj := state.VarTrue(sys.Schema, bvar(j))
	dv, ov := dvar(j), outvar(j)
	return []guarded.Action{
		guarded.Choice(fmt.Sprintf("BYZd.%d", j), bj, func(s state.State) []state.State {
			i := s.Schema().MustIndexOf(dv)
			return []state.State{s.With(i, 1), s.With(i, 2)}
		}),
		guarded.Choice(fmt.Sprintf("BYZout.%d", j), bj, func(s state.State) []state.State {
			i := s.Schema().MustIndexOf(ov)
			return []state.State{s.With(i, 1), s.With(i, 2)}
		}),
	}
}

// ib1 is IB1.j :: d.j = ⊥ ∧ ¬b.j --> d.j := d.g.
func (sys *System) ib1(j int) guarded.Action {
	dv, bv := dvar(j), bvar(j)
	guard := state.Pred(fmt.Sprintf("d.%d=⊥ ∧ ¬b.%d", j, j), func(s state.State) bool {
		return s.GetName(dv) == 0 && s.GetName(bv) == 0
	})
	return guarded.Det(fmt.Sprintf("IB1.%d", j), guard, func(s state.State) state.State {
		return s.WithName(dv, s.GetName("d.g")+1)
	})
}

// ib2 is IB2.j :: d.j ≠ ⊥ ∧ out.j = ⊥ ∧ ¬b.j [∧ extra] --> out.j := d.j.
func (sys *System) ib2(j int, extra state.Predicate) guarded.Action {
	dv, ov, bv := dvar(j), outvar(j), bvar(j)
	guard := state.And(
		state.Pred(fmt.Sprintf("d.%d≠⊥ ∧ out.%d=⊥ ∧ ¬b.%d", j, j, j), func(s state.State) bool {
			return s.GetName(dv) != 0 && s.GetName(ov) == 0 && s.GetName(bv) == 0
		}),
		extra,
	)
	return guarded.Det(fmt.Sprintf("IB2.%d", j), guard, func(s state.State) state.State {
		return s.WithName(ov, s.GetName(dv))
	})
}

// cb1 is CB1.j :: (∀k : d.k ≠ ⊥) ∧ d.j ≠ majority ∧ ¬b.j --> d.j := majority.
func (sys *System) cb1(j int) guarded.Action {
	dv, bv := dvar(j), bvar(j)
	guard := state.Pred(fmt.Sprintf("all decided ∧ d.%d≠majority ∧ ¬b.%d", j, j), func(s state.State) bool {
		if s.GetName(bv) != 0 {
			return false
		}
		m, ok := Majority(s)
		return ok && s.GetName(dv) != m
	})
	return guarded.Det(fmt.Sprintf("CB1.%d", j), guard, func(s state.State) state.State {
		m, _ := Majority(s)
		return s.WithName(dv, m)
	})
}

func (sys *System) buildPrograms() error {
	var intolerant, failsafe, masking []guarded.Action
	for j := 1; j <= NumNonGenerals; j++ {
		intolerant = append(intolerant, sys.ib1(j), sys.ib2(j, state.True))
		failsafe = append(failsafe, sys.ib1(j), sys.ib2(j, WitnessOf(j)))
		masking = append(masking, sys.ib1(j), sys.ib2(j, WitnessOf(j)), sys.cb1(j))
	}
	for j := 0; j <= NumNonGenerals; j++ {
		beh := sys.byzBehaviour(j)
		intolerant = append(intolerant, beh...)
		failsafe = append(failsafe, beh...)
		masking = append(masking, beh...)
	}
	var err error
	if sys.Intolerant, err = guarded.NewProgram("IB", sys.Schema, intolerant...); err != nil {
		return err
	}
	if sys.FailSafe, err = guarded.NewProgram("IB+DB", sys.Schema, failsafe...); err != nil {
		return err
	}
	if sys.Masking, err = guarded.NewProgram("IB+DB+CB", sys.Schema, masking...); err != nil {
		return err
	}
	return nil
}

func (sys *System) buildSpec() {
	// Safety (agreement + validity over non-Byzantine outputs): a step that
	// changes out.j of a non-Byzantine j is bad when the new value is ⊥,
	// disagrees with d.g while the general is correct, or disagrees with
	// another non-Byzantine process's existing output.
	badStep := func(from, to state.State) bool {
		for j := 1; j <= NumNonGenerals; j++ {
			v := to.GetName(outvar(j))
			if v == from.GetName(outvar(j)) {
				continue
			}
			if from.GetName(bvar(j)) != 0 {
				continue // Byzantine outputs are unconstrained
			}
			if v == 0 {
				return true // a non-Byzantine process never retracts
			}
			if from.GetName("b.g") == 0 && v != from.GetName("d.g")+1 {
				return true // validity
			}
			for k := 1; k <= NumNonGenerals; k++ {
				if k == j || from.GetName(bvar(k)) != 0 {
					continue
				}
				if w := from.GetName(outvar(k)); w != 0 && w != v {
					return true // agreement
				}
			}
		}
		return false
	}
	sys.Spec = spec.Problem{
		Name:   "SPEC_byz",
		Safety: spec.NeverStep("agreement ∧ validity", badStep),
		Live: []spec.LeadsTo{{
			Name: "every non-Byzantine process eventually decides",
			P:    state.True,
			Q:    sys.Decided,
		}},
	}
}

func (sys *System) buildFaults() {
	noByz := state.Pred("no process Byzantine", func(s state.State) bool {
		if s.GetName("b.g") != 0 {
			return false
		}
		for j := 1; j <= NumNonGenerals; j++ {
			if s.GetName(bvar(j)) != 0 {
				return false
			}
		}
		return true
	})
	actions := []guarded.Action{
		guarded.Det("BYZ.g", noByz, func(s state.State) state.State {
			return s.WithName("b.g", 1)
		}),
	}
	for j := 1; j <= NumNonGenerals; j++ {
		bv := bvar(j)
		actions = append(actions, guarded.Det(fmt.Sprintf("BYZ.%d", j), noByz,
			func(s state.State) state.State { return s.WithName(bv, 1) }))
	}
	sys.Faults = fault.NewClass("byzantine(f=1)", actions...)
}

// FaultsExcluding returns the Byzantine fault class with process j never
// turning Byzantine. Per-process component claims — "W.j corrects d.j =
// corrdecn" for a *non-Byzantine* j — are checked against this class: the
// paper's agreement conditions only constrain the decisions of non-Byzantine
// processes, and no corrector can stabilize the decision of a process that
// is itself Byzantine.
func (sys *System) FaultsExcluding(j int) fault.Class {
	skip := fmt.Sprintf("BYZ.%d", j)
	var actions []guarded.Action
	for _, a := range sys.Faults.Actions {
		if a.Name != skip {
			actions = append(actions, a)
		}
	}
	return fault.NewClass(fmt.Sprintf("byzantine(f=1, not %d)", j), actions...)
}
