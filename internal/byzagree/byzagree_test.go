package byzagree

import (
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/state"
)

func newSys(t *testing.T) *System {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func TestIntolerantRefinesSpecFromS(t *testing.T) {
	sys := newSys(t)
	if err := sys.Spec.CheckRefinesFrom(sys.Intolerant, sys.S); err != nil {
		t.Errorf("IB should refine SPEC_byz from S: %v", err)
	}
}

func TestIntolerantNotFailSafe(t *testing.T) {
	sys := newSys(t)
	if rep := fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S); rep.OK() {
		t.Error("IB must not be fail-safe Byzantine-tolerant: a Byzantine general splits the outputs")
	}
}

func TestFailSafeTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.ST)
	if !rep.OK() {
		t.Errorf("IB+DB should be fail-safe Byzantine-tolerant: %v", rep.Err)
	}
}

func TestFailSafeNotMasking(t *testing.T) {
	// The paper: "if g is Byzantine and sends different values, one
	// non-general process will be blocked from being able to output".
	sys := newSys(t)
	if rep := fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.ST); rep.OK() {
		t.Error("IB+DB must not be masking tolerant (a process can be blocked)")
	}
}

func TestMaskingTolerance(t *testing.T) {
	sys := newSys(t)
	rep := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.ST)
	if !rep.OK() {
		t.Errorf("IB+DB+CB should be masking Byzantine-tolerant: %v", rep.Err)
	}
}

func TestDetectorDB(t *testing.T) {
	// DB.j: W.j detects (d.j = corrdecn) in the masking program, from S;
	// and it is a masking Byzantine-tolerant detector.
	sys := newSys(t)
	for j := 1; j <= NumNonGenerals; j++ {
		d := core.Detector{
			Name: "DB",
			D:    sys.Masking,
			Z:    WitnessOf(j),
			X:    DetectionOf(j),
			U:    sys.ST,
		}
		if err := d.Check(); err != nil {
			t.Errorf("DB.%d detector check: %v", j, err)
			continue
		}
		if err := d.CheckFTolerant(sys.Faults, fault.Masking); err != nil {
			t.Errorf("DB.%d should be a masking Byzantine-tolerant detector: %v", j, err)
		}
	}
}

func TestCorrectorCB(t *testing.T) {
	// CB.j: W.j corrects (d.j = corrdecn) in the masking program from S,
	// and is a nonmasking Byzantine-tolerant corrector (Theorem 5.5 Part 4:
	// Stability/Convergence may be violated by fault actions only).
	sys := newSys(t)
	for j := 1; j <= NumNonGenerals; j++ {
		c := core.Corrector{
			Name: "CB",
			C:    sys.Masking,
			Z:    WitnessOf(j),
			X:    DetectionOf(j),
			U:    sys.ST,
		}
		if err := c.Check(); err != nil {
			t.Errorf("CB.%d corrector check: %v", j, err)
			continue
		}
		// The per-process corrector claim is for a non-Byzantine j, so the
		// fault class excludes BYZ.j (a Byzantine process's own decision
		// cannot be stabilized by anyone).
		if err := c.CheckFTolerant(sys.FaultsExcluding(j), fault.Nonmasking); err != nil {
			t.Errorf("CB.%d should be a nonmasking Byzantine-tolerant corrector: %v", j, err)
		}
	}
}

func TestWitnessSoundWithinSpan(t *testing.T) {
	// Safeness of DB concretely: wherever the witness holds on a span
	// state, d.j equals corrdecn.
	sys := newSys(t)
	span, err := fault.ComputeSpan(sys.Masking, sys.Faults, sys.ST)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	span.Reachable.ForEach(func(id int) bool {
		s := span.Graph.State(id)
		for j := 1; j <= NumNonGenerals; j++ {
			if WitnessOf(j).Holds(s) && !DetectionOf(j).Holds(s) {
				bad++
			}
		}
		return true
	})
	if bad > 0 {
		t.Errorf("witness held without detection predicate on %d span states", bad)
	}
}

func TestMajorityAndCorrdecn(t *testing.T) {
	sys := newSys(t)
	mk := func(vals map[string]int) state.State {
		s, err := state.FromMap(sys.Schema, vals)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mk(map[string]int{"d.1": 1, "d.2": 1, "d.3": 2})
	if m, ok := Majority(s); !ok || m != 1 {
		t.Errorf("majority of (v0,v0,v1) = %d,%v; want 1,true", m, ok)
	}
	s = mk(map[string]int{"d.1": 1, "d.2": 0, "d.3": 2})
	if _, ok := Majority(s); ok {
		t.Error("majority must be undefined with a ⊥ decision")
	}
	s = mk(map[string]int{"d.g": 1, "d.1": 1, "d.2": 1, "d.3": 1})
	if c, ok := Corrdecn(s); !ok || c != 2 {
		t.Errorf("corrdecn with correct general d.g=v1: got %d,%v; want 2,true", c, ok)
	}
	s = mk(map[string]int{"b.g": 1, "d.1": 2, "d.2": 2, "d.3": 1})
	if c, ok := Corrdecn(s); !ok || c != 2 {
		t.Errorf("corrdecn with Byzantine general: got %d,%v; want majority 2,true", c, ok)
	}
}

func TestSpanKeepsAtMostOneByzantine(t *testing.T) {
	sys := newSys(t)
	span, err := fault.ComputeSpan(sys.Masking, sys.Faults, sys.ST)
	if err != nil {
		t.Fatal(err)
	}
	bad := false
	span.Reachable.ForEach(func(id int) bool {
		s := span.Graph.State(id)
		n := s.GetName("b.g")
		for j := 1; j <= NumNonGenerals; j++ {
			n += s.GetName(bvar(j))
		}
		if n > 1 {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Error("the fault span must contain at most one Byzantine process")
	}
}
