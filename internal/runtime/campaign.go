package runtime

import (
	"fmt"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Campaign runs many seeded simulations of the same program and aggregates
// fault-injection statistics — the hybrid-simulation workflow the paper's
// SIEFAST section describes, reduced to a library call.
type Campaign struct {
	Program *guarded.Program
	Config  Config
	// Initial produces the initial state for a given run index.
	Initial func(run int) state.State
	// Monitors produces a fresh monitor set per run (monitors are
	// stateful).
	Monitors func(run int) []Monitor
	// Runs is the number of seeded runs (seed = Config.Seed + run index).
	Runs int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Runs            int
	TotalSteps      int
	TotalFaults     int
	Deadlocks       int
	ViolationRuns   int            // runs with at least one monitor violation
	ViolationCounts map[string]int // per-monitor violation counts
	FirstViolation  error
	// RecoverySteps aggregates every ConvergenceMonitor's observations.
	RecoverySteps []int
}

// MeanSteps returns the mean run length.
func (r CampaignResult) MeanSteps() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.TotalSteps) / float64(r.Runs)
}

// MaxRecovery returns the worst observed recovery length across all runs.
func (r CampaignResult) MaxRecovery() int {
	max := 0
	for _, n := range r.RecoverySteps {
		if n > max {
			max = n
		}
	}
	return max
}

// MeanRecovery returns the mean recovery length (0 when no recoveries).
func (r CampaignResult) MeanRecovery() float64 {
	if len(r.RecoverySteps) == 0 {
		return 0
	}
	sum := 0
	for _, n := range r.RecoverySteps {
		sum += n
	}
	return float64(sum) / float64(len(r.RecoverySteps))
}

// Execute runs the campaign.
func (c Campaign) Execute() (CampaignResult, error) {
	if c.Runs <= 0 {
		return CampaignResult{}, fmt.Errorf("runtime: campaign needs a positive run count (got %d)", c.Runs)
	}
	if c.Initial == nil {
		return CampaignResult{}, fmt.Errorf("runtime: campaign needs an Initial function")
	}
	res := CampaignResult{ViolationCounts: map[string]int{}}
	for run := 0; run < c.Runs; run++ {
		cfg := c.Config
		cfg.Seed = c.Config.Seed + int64(run)
		var mons []Monitor
		if c.Monitors != nil {
			mons = c.Monitors(run)
		}
		eng, err := New(c.Program, cfg, mons...)
		if err != nil {
			return res, err
		}
		out, err := eng.Run(c.Initial(run))
		if err != nil {
			return res, fmt.Errorf("run %d: %w", run, err)
		}
		res.Runs++
		res.TotalSteps += out.Steps
		res.TotalFaults += out.FaultsInjected
		if out.Deadlocked {
			res.Deadlocks++
		}
		if len(out.Violations) > 0 {
			res.ViolationRuns++
			for name, err := range out.Violations {
				res.ViolationCounts[name]++
				if res.FirstViolation == nil {
					res.FirstViolation = fmt.Errorf("run %d: %s: %w", run, name, err)
				}
			}
		}
		for _, m := range mons {
			if cm, ok := m.(*ConvergenceMonitor); ok {
				res.RecoverySteps = append(res.RecoverySteps, cm.RecoverySteps...)
			}
		}
	}
	return res, nil
}
