package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Campaign runs many seeded simulations of the same program and aggregates
// fault-injection statistics — the hybrid-simulation workflow the paper's
// SIEFAST section describes, reduced to a library call.
type Campaign struct {
	Program *guarded.Program
	Config  Config
	// Initial produces the initial state for a given run index.
	Initial func(run int) state.State
	// Monitors produces a fresh monitor set per run (monitors are
	// stateful).
	Monitors func(run int) []Monitor
	// Runs is the number of seeded runs (seed = Config.Seed + run index).
	Runs int
	// Parallelism bounds how many runs execute concurrently: 1 (or any
	// negative value) runs the campaign sequentially, N > 1 uses N worker
	// goroutines, and 0 defers to the process-wide exploration default
	// (explore.DefaultParallelism), so a tool's -j flag covers campaigns
	// too. Runs are seeded individually and results are aggregated in run
	// order, so the result is identical at every setting.
	Parallelism int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Runs            int
	TotalSteps      int
	TotalFaults     int
	Deadlocks       int
	ViolationRuns   int            // runs with at least one monitor violation
	ViolationCounts map[string]int // per-monitor violation counts
	FirstViolation  error
	// RecoverySteps aggregates every ConvergenceMonitor's observations.
	RecoverySteps []int
}

// MeanSteps returns the mean run length.
func (r CampaignResult) MeanSteps() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.TotalSteps) / float64(r.Runs)
}

// MaxRecovery returns the worst observed recovery length across all runs.
func (r CampaignResult) MaxRecovery() int {
	max := 0
	for _, n := range r.RecoverySteps {
		if n > max {
			max = n
		}
	}
	return max
}

// MeanRecovery returns the mean recovery length (0 when no recoveries).
func (r CampaignResult) MeanRecovery() float64 {
	if len(r.RecoverySteps) == 0 {
		return 0
	}
	sum := 0
	for _, n := range r.RecoverySteps {
		sum += n
	}
	return float64(sum) / float64(len(r.RecoverySteps))
}

// absorb folds one completed run into the aggregate. Runs must be absorbed
// in run order for FirstViolation to be deterministic.
func (r *CampaignResult) absorb(run int, out Result, mons []Monitor) {
	r.Runs++
	r.TotalSteps += out.Steps
	r.TotalFaults += out.FaultsInjected
	if out.Deadlocked {
		r.Deadlocks++
	}
	if len(out.Violations) > 0 {
		r.ViolationRuns++
		for name, err := range out.Violations {
			r.ViolationCounts[name]++
			if r.FirstViolation == nil {
				r.FirstViolation = fmt.Errorf("run %d: %s: %w", run, name, err)
			}
		}
	}
	for _, m := range mons {
		if cm, ok := m.(*ConvergenceMonitor); ok {
			r.RecoverySteps = append(r.RecoverySteps, cm.RecoverySteps...)
		}
	}
}

// ProbeDeadlock cross-checks the campaign's Deadlocks counter against the
// model: it streams over the composed program ‖ Config.Faults from every
// state satisfying init (fault actions unfair, exactly the engine's
// maximality rule) and returns a shortest trace to the first state where no
// program action is enabled — the states where Engine.Run reports Deadlocked
// once the fault budget is spent. The scan allows unboundedly many fault
// occurrences where the campaign is budget-capped, so it over-approximates:
// a campaign observing deadlocks in a region the probe calls deadlock-free
// indicates a simulator/model divergence; the converse (probe finds one the
// runs never hit) is expected for rare schedules. The scan stops at the
// first hit — no graph is assembled.
func (c Campaign) ProbeDeadlock(init state.Predicate) ([]state.State, bool, error) {
	p := c.Program
	var fairMask []bool
	if !c.Config.Faults.Empty() {
		composed, mask, err := fault.Compose(p, c.Config.Faults)
		if err != nil {
			return nil, false, err
		}
		p, fairMask = composed, mask
	}
	return explore.FindDeadlock(p, init, explore.ScanOptions{Fair: fairMask})
}

// workers resolves the Parallelism field to a worker count.
func (c Campaign) workers() int {
	n := c.Parallelism
	if n == 0 {
		n = explore.DefaultParallelism()
	}
	if n < 1 {
		return 1
	}
	if n > c.Runs {
		return c.Runs
	}
	return n
}

// Execute runs the campaign.
func (c Campaign) Execute() (CampaignResult, error) {
	if c.Runs <= 0 {
		return CampaignResult{}, fmt.Errorf("runtime: campaign needs a positive run count (got %d)", c.Runs)
	}
	if c.Initial == nil {
		return CampaignResult{}, fmt.Errorf("runtime: campaign needs an Initial function")
	}
	if w := c.workers(); w > 1 {
		return c.executeParallel(w)
	}
	res := CampaignResult{ViolationCounts: map[string]int{}}
	for run := 0; run < c.Runs; run++ {
		cfg := c.Config
		cfg.Seed = c.Config.Seed + int64(run)
		var mons []Monitor
		if c.Monitors != nil {
			mons = c.Monitors(run)
		}
		eng, err := New(c.Program, cfg, mons...)
		if err != nil {
			return res, err
		}
		out, err := eng.Run(c.Initial(run))
		if err != nil {
			return res, fmt.Errorf("run %d: %w", run, err)
		}
		res.absorb(run, out, mons)
	}
	return res, nil
}

// executeParallel fans the runs out over a worker pool. Each run is fully
// independent (own seed, own engine, own monitor set), so the only shared
// state is the run counter and the per-run output slots; aggregation then
// replays the outputs in run order, which makes the result — including
// which run's error surfaces — identical to the sequential path.
func (c Campaign) executeParallel(workers int) (CampaignResult, error) {
	type runOut struct {
		out    Result
		mons   []Monitor
		newErr error // engine construction failure (reported unwrapped)
		runErr error // run failure (reported with the run index)
	}
	// Initial and Monitors are caller callbacks with no thread-safety
	// contract, so invoke them serially up front; only engines run
	// concurrently.
	initials := make([]state.State, c.Runs)
	monSets := make([][]Monitor, c.Runs)
	for run := 0; run < c.Runs; run++ {
		initials[run] = c.Initial(run)
		if c.Monitors != nil {
			monSets[run] = c.Monitors(run)
		}
	}
	outs := make([]runOut, c.Runs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				run := int(next.Add(1)) - 1
				if run >= c.Runs {
					return
				}
				cfg := c.Config
				cfg.Seed = c.Config.Seed + int64(run)
				mons := monSets[run]
				eng, err := New(c.Program, cfg, mons...)
				if err != nil {
					outs[run] = runOut{newErr: err}
					continue
				}
				out, err := eng.Run(initials[run])
				outs[run] = runOut{out: out, mons: mons, runErr: err}
			}
		}()
	}
	wg.Wait()
	res := CampaignResult{ViolationCounts: map[string]int{}}
	for run := 0; run < c.Runs; run++ {
		o := outs[run]
		if o.newErr != nil {
			return res, o.newErr
		}
		if o.runErr != nil {
			return res, fmt.Errorf("run %d: %w", run, o.runErr)
		}
		res.absorb(run, o.out, o.mons)
	}
	return res, nil
}
