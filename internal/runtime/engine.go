// Package runtime is the paper's SIEFAST substitute (Section 7): an
// execution environment for component-based fault-tolerant programs that
// supports seeded interleaving simulation, fault injection with a finite
// budget (Assumption 2), and online monitors — detectors used as runtime
// oracles. Where the model checker (package explore) decides properties over
// all computations, the runtime produces individual computations, recovery
// statistics and fault-injection campaigns.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Policy selects how the scheduler picks among enabled actions.
type Policy int

const (
	// RandomPolicy picks uniformly among enabled transitions.
	RandomPolicy Policy = iota + 1
	// RoundRobinPolicy cycles through the action list, executing the next
	// enabled action — a simple strongly fair scheduler.
	RoundRobinPolicy
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives every random choice; equal seeds give equal runs.
	Seed int64
	// MaxSteps bounds the run (0 means DefaultMaxSteps).
	MaxSteps int
	// Policy selects the scheduler; the zero value means RandomPolicy.
	Policy Policy
	// Faults, if nonempty, is injected during the run.
	Faults fault.Class
	// FaultBudget caps the number of injected fault occurrences
	// (Assumption 2: finitely many). Zero disables injection.
	FaultBudget int
	// FaultProbability is the per-step chance of attempting a fault
	// occurrence while budget remains (default 0.1 when budget > 0).
	FaultProbability float64
	// KeepTrace retains the visited states in the result.
	KeepTrace bool
}

// DefaultMaxSteps bounds runs when Config.MaxSteps is zero.
const DefaultMaxSteps = 10_000

// Result summarizes a run.
type Result struct {
	Steps          int
	FaultsInjected int
	Deadlocked     bool
	Final          state.State
	Trace          []state.State // nil unless Config.KeepTrace
	// Violations maps monitor names to the first violation each reported.
	Violations map[string]error
}

// OK reports whether no monitor flagged a violation.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// Monitor observes every step of a run. Monitors are the runtime face of
// detectors: they witness whether a state predicate — or a step predicate —
// holds along the computation.
type Monitor interface {
	// Name identifies the monitor in Result.Violations.
	Name() string
	// Reset is called once with the initial state before the run.
	Reset(initial state.State)
	// Step is called after every transition with the executing action's
	// name and whether it was a fault occurrence. A non-nil error records a
	// violation; the run continues so that later monitors still observe.
	Step(from state.State, action string, isFault bool, to state.State) error
	// Finish is called once with the final state; it may report a
	// violation visible only at the end of the run (for example an unmet
	// eventuality within the step bound).
	Finish(final state.State, deadlocked bool) error
}

// Engine executes a program under a configuration.
type Engine struct {
	prog *guarded.Program
	cfg  Config
	mons []Monitor
}

// New validates the configuration and builds an engine.
func New(prog *guarded.Program, cfg Config, monitors ...Monitor) (*Engine, error) {
	if prog == nil {
		return nil, errors.New("runtime: nil program")
	}
	if cfg.MaxSteps < 0 {
		return nil, fmt.Errorf("runtime: negative MaxSteps %d", cfg.MaxSteps)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.Policy == 0 {
		cfg.Policy = RandomPolicy
	}
	if cfg.FaultProbability == 0 && cfg.FaultBudget > 0 {
		cfg.FaultProbability = 0.1
	}
	if cfg.FaultProbability < 0 || cfg.FaultProbability > 1 {
		return nil, fmt.Errorf("runtime: fault probability %v out of [0,1]", cfg.FaultProbability)
	}
	return &Engine{prog: prog, cfg: cfg, mons: monitors}, nil
}

// Run executes one computation from the given initial state.
func (e *Engine) Run(initial state.State) (Result, error) {
	if initial.Schema() != e.prog.Schema() {
		return Result{}, errors.New("runtime: initial state schema does not match program")
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	res := Result{Violations: map[string]error{}}
	cur := initial
	if e.cfg.KeepTrace {
		res.Trace = append(res.Trace, cur)
	}
	for _, m := range e.mons {
		m.Reset(cur)
	}
	rrNext := 0
	for res.Steps < e.cfg.MaxSteps {
		next, action, isFault, ok := e.pick(rng, cur, &rrNext, &res)
		if !ok {
			res.Deadlocked = true
			break
		}
		for _, m := range e.mons {
			if _, seen := res.Violations[m.Name()]; seen {
				continue
			}
			if err := m.Step(cur, action, isFault, next); err != nil {
				res.Violations[m.Name()] = err
			}
		}
		cur = next
		res.Steps++
		if e.cfg.KeepTrace {
			res.Trace = append(res.Trace, cur)
		}
	}
	res.Final = cur
	for _, m := range e.mons {
		if _, seen := res.Violations[m.Name()]; seen {
			continue
		}
		if err := m.Finish(cur, res.Deadlocked); err != nil {
			res.Violations[m.Name()] = err
		}
	}
	return res, nil
}

// pick chooses the next transition: possibly a fault occurrence, otherwise a
// program step according to the policy.
func (e *Engine) pick(rng *rand.Rand, cur state.State, rrNext *int, res *Result) (state.State, string, bool, bool) {
	if res.FaultsInjected < e.cfg.FaultBudget && rng.Float64() < e.cfg.FaultProbability {
		if next, name, ok := pickAction(rng, e.cfg.Faults.Actions, cur); ok {
			res.FaultsInjected++
			return next, name, true, true
		}
	}
	switch e.cfg.Policy {
	case RoundRobinPolicy:
		n := e.prog.NumActions()
		for k := 0; k < n; k++ {
			a := e.prog.Action((*rrNext + k) % n)
			if !a.Enabled(cur) {
				continue
			}
			*rrNext = (*rrNext + k + 1) % n
			succ := a.Next(cur)
			return succ[rng.Intn(len(succ))], a.Name, false, true
		}
	default:
		if next, name, ok := pickAction(rng, e.prog.Actions(), cur); ok {
			return next, name, false, true
		}
	}
	// The program is deadlocked. A computation of p ‖ F is only p-maximal
	// (Section 2.3): fault occurrences may still extend it while budget
	// remains, so spend the remaining budget before ending the run.
	if res.FaultsInjected < e.cfg.FaultBudget {
		if next, name, ok := pickAction(rng, e.cfg.Faults.Actions, cur); ok {
			res.FaultsInjected++
			return next, name, true, true
		}
	}
	return state.State{}, "", false, false
}

// pickAction selects uniformly among the enabled transitions of the action
// list.
func pickAction(rng *rand.Rand, actions []guarded.Action, cur state.State) (state.State, string, bool) {
	type cand struct {
		to   state.State
		name string
	}
	var cands []cand
	for _, a := range actions {
		if !a.Enabled(cur) {
			continue
		}
		for _, t := range a.Next(cur) {
			cands = append(cands, cand{to: t, name: a.Name})
		}
	}
	if len(cands) == 0 {
		return state.State{}, "", false
	}
	c := cands[rng.Intn(len(cands))]
	return c.to, c.name, true
}
