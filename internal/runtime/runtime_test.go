package runtime

import (
	"testing"

	"detcorr/internal/memaccess"
	"detcorr/internal/state"
)

func initMasking(sys *memaccess.System) state.State {
	s, err := state.FromMap(sys.WitnessSchema, map[string]int{"present": 1, "val": 1, "data": 0, "z1": 0})
	if err != nil {
		panic(err)
	}
	return s
}

func initBase(sys *memaccess.System) state.State {
	s, err := state.FromMap(sys.BaseSchema, map[string]int{"present": 1, "val": 1, "data": 0})
	if err != nil {
		panic(err)
	}
	return s
}

func TestDeterministicReplay(t *testing.T) {
	sys := memaccess.MustNew(2)
	cfg := Config{Seed: 42, MaxSteps: 50, Faults: sys.PageFaultWitness, FaultBudget: 1, KeepTrace: true}
	eng, err := New(sys.Masking, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Run(initMasking(sys))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(initMasking(sys))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("same seed must replay identically: %d/%d steps", r1.Steps, r2.Steps)
	}
	for i := range r1.Trace {
		if !r1.Trace[i].Equal(r2.Trace[i]) {
			t.Fatalf("traces diverge at step %d: %s vs %s", i, r1.Trace[i], r2.Trace[i])
		}
	}
}

func TestMaskingProgramNeverViolatesSafety(t *testing.T) {
	sys := memaccess.MustNew(2)
	res, err := Campaign{
		Program: sys.Masking,
		Config:  Config{Seed: 1, MaxSteps: 200, Faults: sys.PageFaultWitness, FaultBudget: 2},
		Initial: func(int) state.State { return initMasking(sys) },
		Monitors: func(int) []Monitor {
			return []Monitor{
				NewSafetyMonitor(sys.Spec.Safety),
				&EventuallyMonitor{Goal: sys.DataCorrect},
				&DetectorMonitor{ComponentName: "pf1", Z: sys.Z1, X: sys.X1},
			}
		},
		Runs: 200,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationRuns != 0 {
		t.Errorf("masking program must never violate its monitors: %d violating runs; first: %v",
			res.ViolationRuns, res.FirstViolation)
	}
	if res.TotalFaults == 0 {
		t.Error("campaign should have injected faults")
	}
}

func TestNonmaskingProgramRecovers(t *testing.T) {
	sys := memaccess.MustNew(2)
	res, err := Campaign{
		Program: sys.Nonmasking,
		Config:  Config{Seed: 7, MaxSteps: 300, Faults: sys.PageFaultBase, FaultBudget: 3},
		Initial: func(int) state.State { return initBase(sys) },
		Monitors: func(int) []Monitor {
			return []Monitor{&ConvergenceMonitor{Goal: sys.DataCorrect}}
		},
		Runs: 100,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationRuns != 0 {
		t.Errorf("nonmasking program must always recover: first violation %v", res.FirstViolation)
	}
	if len(res.RecoverySteps) == 0 {
		t.Error("expected some observed recoveries")
	}
}

func TestIntolerantProgramViolatesSafetyUnderFaults(t *testing.T) {
	sys := memaccess.MustNew(2)
	res, err := Campaign{
		Program: sys.Intolerant,
		Config:  Config{Seed: 3, MaxSteps: 100, Faults: sys.PageFaultBase, FaultBudget: 1, FaultProbability: 0.5},
		Initial: func(int) state.State { return initBase(sys) },
		Monitors: func(int) []Monitor {
			return []Monitor{NewSafetyMonitor(sys.Spec.Safety)}
		},
		Runs: 200,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationRuns == 0 {
		t.Error("the intolerant program should violate safety in some faulty runs")
	}
}

func TestFailSafeProgramDeadlocksButStaysSafe(t *testing.T) {
	sys := memaccess.MustNew(2)
	res, err := Campaign{
		Program: sys.FailSafe,
		Config:  Config{Seed: 9, MaxSteps: 100, Faults: sys.PageFaultWitness, FaultBudget: 1, FaultProbability: 0.9},
		Initial: func(int) state.State { return initMasking(sys) },
		Monitors: func(int) []Monitor {
			return []Monitor{NewSafetyMonitor(sys.Spec.Safety)}
		},
		Runs: 200,
	}.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationRuns != 0 {
		t.Errorf("fail-safe program must stay safe: %v", res.FirstViolation)
	}
	if res.Deadlocks == 0 {
		t.Error("fail-safe program should deadlock in some faulty runs (fault before detection)")
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	sys := memaccess.MustNew(2)
	eng, err := New(sys.Masking, Config{Seed: 5, MaxSteps: 20, Policy: RoundRobinPolicy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(initMasking(sys))
	if err != nil {
		t.Fatal(err)
	}
	if !sys.DataCorrect.Holds(res.Final) {
		t.Errorf("round-robin run should reach the correct data: final %s", res.Final)
	}
}

func TestConfigValidation(t *testing.T) {
	sys := memaccess.MustNew(2)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil program must be rejected")
	}
	if _, err := New(sys.Masking, Config{MaxSteps: -1}); err == nil {
		t.Error("negative MaxSteps must be rejected")
	}
	if _, err := New(sys.Masking, Config{FaultProbability: 2}); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	eng, err := New(sys.Masking, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(initBase(sys)); err == nil {
		t.Error("mismatched initial-state schema must be rejected")
	}
}

func TestCampaignValidation(t *testing.T) {
	sys := memaccess.MustNew(2)
	if _, err := (Campaign{Program: sys.Masking, Runs: 0}).Execute(); err == nil {
		t.Error("zero runs must be rejected")
	}
	if _, err := (Campaign{Program: sys.Masking, Runs: 1}).Execute(); err == nil {
		t.Error("missing Initial must be rejected")
	}
}
