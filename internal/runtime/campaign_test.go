package runtime

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/memaccess"
	"detcorr/internal/state"
)

// campaignFingerprint flattens a result into a comparable form. The
// RecoverySteps slice is order-sensitive in run order, which the parallel
// path preserves by aggregating in run order.
func campaignFingerprint(r CampaignResult) string {
	counts := make([]string, 0, len(r.ViolationCounts))
	for name, n := range r.ViolationCounts {
		counts = append(counts, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(counts)
	first := "<nil>"
	if r.FirstViolation != nil {
		first = r.FirstViolation.Error()
	}
	return fmt.Sprintf("runs=%d steps=%d faults=%d deadlocks=%d vruns=%d counts=%v first=%s recovery=%v",
		r.Runs, r.TotalSteps, r.TotalFaults, r.Deadlocks, r.ViolationRuns, counts, first, r.RecoverySteps)
}

// TestCampaignParallelMatchesSequential runs the same seeded campaign at
// several parallelism settings and requires identical aggregates, including
// violation attribution and recovery-step order.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	sys := memaccess.MustNew(2)
	campaign := func(par int) Campaign {
		return Campaign{
			Program: sys.Nonmasking,
			Config:  Config{Seed: 11, MaxSteps: 200, Faults: sys.PageFaultBase, FaultBudget: 3, FaultProbability: 0.4},
			Initial: func(int) state.State { return initBase(sys) },
			Monitors: func(int) []Monitor {
				return []Monitor{
					NewSafetyMonitor(sys.Spec.Safety),
					&ConvergenceMonitor{Goal: sys.DataCorrect},
				}
			},
			Runs:        120,
			Parallelism: par,
		}
	}
	ref, err := campaign(1).Execute()
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(ref)
	for _, par := range []int{2, 3, runtime.NumCPU()} {
		got, err := campaign(par).Execute()
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if g := campaignFingerprint(got); g != want {
			t.Errorf("parallelism %d diverges:\n  seq: %s\n  par: %s", par, want, g)
		}
	}
}

// TestCampaignParallelSurfacesViolations checks the violating-campaign
// shape too: the intolerant program under faults must report the same
// first violation at any parallelism.
func TestCampaignParallelSurfacesViolations(t *testing.T) {
	sys := memaccess.MustNew(2)
	campaign := func(par int) Campaign {
		return Campaign{
			Program: sys.Intolerant,
			Config:  Config{Seed: 3, MaxSteps: 100, Faults: sys.PageFaultBase, FaultBudget: 1, FaultProbability: 0.5},
			Initial: func(int) state.State { return initBase(sys) },
			Monitors: func(int) []Monitor {
				return []Monitor{NewSafetyMonitor(sys.Spec.Safety)}
			},
			Runs:        80,
			Parallelism: par,
		}
	}
	ref, err := campaign(1).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ref.ViolationRuns == 0 {
		t.Fatal("test needs a campaign that violates safety")
	}
	got, err := campaign(4).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if campaignFingerprint(got) != campaignFingerprint(ref) {
		t.Errorf("violating campaign diverges:\n  seq: %s\n  par: %s",
			campaignFingerprint(ref), campaignFingerprint(got))
	}
}

// TestCampaignDefersToProcessDefault checks the -j wiring: Parallelism 0
// picks up the process-wide exploration default.
func TestCampaignDefersToProcessDefault(t *testing.T) {
	prev := explore.SetDefaultParallelism(4)
	defer explore.SetDefaultParallelism(prev)
	sys := memaccess.MustNew(2)
	c := Campaign{
		Program:     sys.Masking,
		Config:      Config{Seed: 5, MaxSteps: 100, Faults: sys.PageFaultWitness, FaultBudget: 1},
		Initial:     func(int) state.State { return initMasking(sys) },
		Runs:        16,
		Parallelism: 0,
	}
	if w := c.workers(); w != 4 {
		t.Fatalf("Parallelism 0 should defer to the process default: got %d workers", w)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 16 {
		t.Fatalf("campaign completed %d of 16 runs", res.Runs)
	}
}
