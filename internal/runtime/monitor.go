package runtime

import (
	"fmt"

	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// SafetyMonitor flags the first step or state violating a safety
// specification — an online detector for "something bad happened".
type SafetyMonitor struct {
	Spec spec.Safety
	name string
}

var _ Monitor = (*SafetyMonitor)(nil)

// NewSafetyMonitor builds a monitor for the given safety specification.
func NewSafetyMonitor(sp spec.Safety) *SafetyMonitor {
	return &SafetyMonitor{Spec: sp, name: "safety:" + sp.Name}
}

// Name implements Monitor.
func (m *SafetyMonitor) Name() string { return m.name }

// Reset implements Monitor.
func (m *SafetyMonitor) Reset(state.State) {}

// Step implements Monitor.
func (m *SafetyMonitor) Step(from state.State, action string, isFault bool, to state.State) error {
	if !m.Spec.StateOK(to) {
		return fmt.Errorf("bad state %s after action %s", to, action)
	}
	if !m.Spec.StepOK(from, to) {
		return fmt.Errorf("bad step %s -> %s (action %s)", from, to, action)
	}
	return nil
}

// Finish implements Monitor.
func (m *SafetyMonitor) Finish(state.State, bool) error { return nil }

// DetectorMonitor checks the Safeness and Stability conditions of a
// 'Z detects X' component online: Z must never witness X incorrectly, and Z
// must stay true until X is falsified (fault steps are exempt from
// Stability, matching the tolerant-detector definitions).
type DetectorMonitor struct {
	ComponentName string
	Z, X          state.Predicate
}

var _ Monitor = (*DetectorMonitor)(nil)

// Name implements Monitor.
func (m *DetectorMonitor) Name() string { return "detector:" + m.ComponentName }

// Reset implements Monitor.
func (m *DetectorMonitor) Reset(state.State) {}

// Step implements Monitor.
func (m *DetectorMonitor) Step(from state.State, action string, isFault bool, to state.State) error {
	if m.Z.Holds(to) && !m.X.Holds(to) {
		return fmt.Errorf("Safeness: Z ∧ ¬X at %s after action %s", to, action)
	}
	if !isFault && m.Z.Holds(from) && !m.Z.Holds(to) && m.X.Holds(to) {
		return fmt.Errorf("Stability: program action %s falsified Z while X holds (%s -> %s)", action, from, to)
	}
	return nil
}

// Finish implements Monitor.
func (m *DetectorMonitor) Finish(state.State, bool) error { return nil }

// ConvergenceMonitor measures recovery: it records, after each fault
// occurrence, how many program steps pass before the goal predicate holds
// again. At Finish it fails if the goal was never re-established.
type ConvergenceMonitor struct {
	Goal state.Predicate

	// RecoverySteps collects one entry per completed recovery: the number
	// of steps from a goal-falsifying fault until the goal held again.
	RecoverySteps []int

	pending  bool
	sinceBad int
}

var _ Monitor = (*ConvergenceMonitor)(nil)

// Name implements Monitor.
func (m *ConvergenceMonitor) Name() string { return "convergence:" + m.Goal.String() }

// Reset implements Monitor.
func (m *ConvergenceMonitor) Reset(initial state.State) {
	m.RecoverySteps = nil
	m.pending = !m.Goal.Holds(initial)
	m.sinceBad = 0
}

// Step implements Monitor.
func (m *ConvergenceMonitor) Step(from state.State, action string, isFault bool, to state.State) error {
	if m.pending {
		m.sinceBad++
		if m.Goal.Holds(to) {
			m.RecoverySteps = append(m.RecoverySteps, m.sinceBad)
			m.pending = false
			m.sinceBad = 0
		}
		return nil
	}
	if !m.Goal.Holds(to) {
		m.pending = true
		m.sinceBad = 0
	}
	return nil
}

// Finish implements Monitor.
func (m *ConvergenceMonitor) Finish(final state.State, deadlocked bool) error {
	if m.pending {
		return fmt.Errorf("goal %s not re-established by end of run (final %s, deadlocked=%v)",
			m.Goal, final, deadlocked)
	}
	return nil
}

// MaxRecovery returns the worst observed recovery length (0 when none).
func (m *ConvergenceMonitor) MaxRecovery() int {
	max := 0
	for _, n := range m.RecoverySteps {
		if n > max {
			max = n
		}
	}
	return max
}

// EventuallyMonitor fails at Finish unless the goal predicate held at some
// point during the run — a bounded liveness oracle.
type EventuallyMonitor struct {
	Goal state.Predicate
	seen bool
}

var _ Monitor = (*EventuallyMonitor)(nil)

// Name implements Monitor.
func (m *EventuallyMonitor) Name() string { return "eventually:" + m.Goal.String() }

// Reset implements Monitor.
func (m *EventuallyMonitor) Reset(initial state.State) { m.seen = m.Goal.Holds(initial) }

// Step implements Monitor.
func (m *EventuallyMonitor) Step(_ state.State, _ string, _ bool, to state.State) error {
	if m.Goal.Holds(to) {
		m.seen = true
	}
	return nil
}

// Finish implements Monitor.
func (m *EventuallyMonitor) Finish(final state.State, deadlocked bool) error {
	if !m.seen {
		return fmt.Errorf("goal %s never held (final %s, deadlocked=%v)", m.Goal, final, deadlocked)
	}
	return nil
}
