package state

import "fmt"

// Projection maps states of a "refined" schema (the tolerant program p')
// onto states of a "base" schema (the intolerant program p or the
// specification SPEC), following Section 2.2.1: the projection of a state of
// p' on p is obtained by considering only the variables of p.
//
// A projection is valid when every base variable exists in the refined
// schema with an identical domain size.
type Projection struct {
	from *Schema
	to   *Schema
	idx  []int // idx[i] = index in `from` of the i-th variable of `to`
}

// NewProjection builds the projection from schema `from` onto schema `to`.
func NewProjection(from, to *Schema) (*Projection, error) {
	idx := make([]int, to.NumVars())
	for i := 0; i < to.NumVars(); i++ {
		v := to.Var(i)
		j, ok := from.IndexOf(v.Name)
		if !ok {
			return nil, fmt.Errorf("state: projection target variable %q missing from source schema %s", v.Name, from)
		}
		if from.Var(j).Domain.Size != v.Domain.Size {
			return nil, fmt.Errorf("state: variable %q has domain size %d in source but %d in target",
				v.Name, from.Var(j).Domain.Size, v.Domain.Size)
		}
		idx[i] = j
	}
	return &Projection{from: from, to: to, idx: idx}, nil
}

// MustProjection is NewProjection but panics on mismatch; for statically
// known refinements.
func MustProjection(from, to *Schema) *Projection {
	p, err := NewProjection(from, to)
	if err != nil {
		panic(err)
	}
	return p
}

// From returns the source (refined) schema.
func (p *Projection) From() *Schema { return p.from }

// To returns the target (base) schema.
func (p *Projection) To() *Schema { return p.to }

// Apply projects a state of the source schema onto the target schema.
func (p *Projection) Apply(s State) State {
	vals := make([]int32, len(p.idx))
	for i, j := range p.idx {
		vals[i] = s.vals[j]
	}
	return State{schema: p.to, vals: vals}
}

// Identity reports whether the projection is the identity on the source
// schema (same variables, same order).
func (p *Projection) Identity() bool {
	if p.from != p.to && p.from.NumVars() != p.to.NumVars() {
		return false
	}
	for i, j := range p.idx {
		if i != j {
			return false
		}
	}
	return p.from.NumVars() == p.to.NumVars()
}

// Lift turns a predicate over the target schema into a predicate over the
// source schema by composing with the projection. Lifting lets a
// specification predicate of p be evaluated on states of p'.
func (p *Projection) Lift(pred Predicate) Predicate {
	return Predicate{
		Name: pred.Name,
		Eval: func(s State) bool { return pred.Holds(p.Apply(s)) },
	}
}

// PreservesIndex reports whether two source states project to the same
// target state.
func (p *Projection) SameProjection(a, b State) bool {
	for _, j := range p.idx {
		if a.vals[j] != b.vals[j] {
			return false
		}
	}
	return true
}
