package state

import (
	"fmt"
	"strings"
)

// State is an immutable assignment of a value to each variable of a schema
// (Section 2.1, "State"). States are value types; With returns a modified
// copy, leaving the receiver untouched, so transition functions stay pure.
type State struct {
	schema *Schema
	vals   []int32
}

// NewState builds a state from explicit values in schema order. Values are
// validated against the variable domains.
func NewState(s *Schema, values ...int) (State, error) {
	if len(values) != s.NumVars() {
		return State{}, fmt.Errorf("state: got %d values for %d variables", len(values), s.NumVars())
	}
	vals := make([]int32, len(values))
	for i, v := range values {
		if v < 0 || v >= s.vars[i].Domain.Size {
			return State{}, fmt.Errorf("state: value %d out of domain %q (size %d) for variable %q",
				v, s.vars[i].Domain.Name, s.vars[i].Domain.Size, s.vars[i].Name)
		}
		vals[i] = int32(v)
	}
	return State{schema: s, vals: vals}, nil
}

// MustState is NewState but panics on invalid values; for statically known
// states in the built-in case studies and tests.
func MustState(s *Schema, values ...int) State {
	st, err := NewState(s, values...)
	if err != nil {
		panic(err)
	}
	return st
}

// FromMap builds a state from a name→value map; unnamed variables default
// to 0.
func FromMap(s *Schema, values map[string]int) (State, error) {
	vals := make([]int, s.NumVars())
	for name, v := range values {
		i, ok := s.IndexOf(name)
		if !ok {
			return State{}, fmt.Errorf("state: undeclared variable %q", name)
		}
		vals[i] = v
	}
	return NewState(s, vals...)
}

// Schema returns the schema the state is defined over.
func (st State) Schema() *Schema { return st.schema }

// IsZero reports whether the state is the zero value (no schema attached).
func (st State) IsZero() bool { return st.schema == nil }

// Get returns the value of the i-th variable.
func (st State) Get(i int) int { return int(st.vals[i]) }

// GetName returns the value of the named variable, panicking on undeclared
// names (a programming error in statically known programs).
func (st State) GetName(name string) int {
	return int(st.vals[st.schema.MustIndexOf(name)])
}

// Bool returns the i-th variable interpreted as a boolean.
func (st State) Bool(i int) bool { return st.vals[i] != 0 }

// With returns a copy of the state with variable i set to v. The value is
// clamped-checked against the domain; out-of-domain writes panic because
// they indicate a broken action statement, which must not be silently
// truncated during model checking.
func (st State) With(i, v int) State {
	if v < 0 || v >= st.schema.vars[i].Domain.Size {
		panic(fmt.Sprintf("state: write of %d out of domain for variable %q (size %d)",
			v, st.schema.vars[i].Name, st.schema.vars[i].Domain.Size))
	}
	vals := append([]int32(nil), st.vals...)
	vals[i] = int32(v)
	return State{schema: st.schema, vals: vals}
}

// WithName is With addressing the variable by name.
func (st State) WithName(name string, v int) State {
	return st.With(st.schema.MustIndexOf(name), v)
}

// WithBool sets a boolean variable.
func (st State) WithBool(i int, v bool) State {
	if v {
		return st.With(i, 1)
	}
	return st.With(i, 0)
}

// Index returns the canonical mixed-radix index of the state. The schema
// must be indexable (see Schema.Indexable).
func (st State) Index() uint64 {
	var idx uint64
	for i, v := range st.vals {
		idx += uint64(v) * st.schema.radix[i]
	}
	return idx
}

// Equal reports whether two states over the same schema assign identical
// values. States over different schemas are never equal.
func (st State) Equal(other State) bool {
	if st.schema != other.schema {
		return false
	}
	for i := range st.vals {
		if st.vals[i] != other.vals[i] {
			return false
		}
	}
	return true
}

// String renders the state as "(x=v, y=w)" using symbolic value names.
func (st State) String() string {
	if st.schema == nil {
		return "(zero state)"
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range st.schema.vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", v.Name, v.Domain.ValueName(int(st.vals[i])))
	}
	b.WriteByte(')')
	return b.String()
}

// CopyVals copies the raw value vector into dst, which must have exactly
// NumVars entries. It is the allocation-free counterpart of Values for
// callers that own a reusable buffer (the compiled transition kernel and the
// graph arena).
func (st State) CopyVals(dst []int32) {
	if len(dst) != len(st.vals) {
		panic(fmt.Sprintf("state: CopyVals into %d slots for %d variables", len(dst), len(st.vals)))
	}
	copy(dst, st.vals)
}

// WithBuf is With writing the modified copy into the caller-owned buffer buf
// instead of allocating: buf receives all values with variable i set to v,
// and the returned state is a view over buf. The caller must own buf and
// must not mutate it while the returned view is live; the receiver is left
// untouched. Like With, out-of-domain writes panic.
func (st State) WithBuf(buf []int32, i, v int) State {
	if v < 0 || v >= st.schema.vars[i].Domain.Size {
		panic(fmt.Sprintf("state: write of %d out of domain for variable %q (size %d)",
			v, st.schema.vars[i].Name, st.schema.vars[i].Domain.Size))
	}
	if len(buf) != len(st.vals) {
		panic(fmt.Sprintf("state: WithBuf into %d slots for %d variables", len(buf), len(st.vals)))
	}
	copy(buf, st.vals)
	buf[i] = int32(v)
	return State{schema: st.schema, vals: buf}
}

// Values returns a copy of the raw value vector.
func (st State) Values() []int {
	out := make([]int, len(st.vals))
	for i, v := range st.vals {
		out[i] = int(v)
	}
	return out
}
