// Package state implements the state model of Arora & Kulkarni's theory of
// detectors and correctors (ICDCS 1998, Section 2.1): programs are defined
// over a finite set of variables, each with a predefined nonempty finite
// domain; a state assigns each variable a value from its domain; a state
// predicate is (semantically) a set of states.
//
// The package provides schemas (ordered variable declarations), immutable
// states with O(1) canonical indices, predicates with combinators, and
// projections between schemas (Section 2.2.1, "Projection"). All model
// checking in sibling packages is built on the mixed-radix state index
// defined here.
package state

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrDomainTooLarge is returned when a schema's state space exceeds the
// capacity of the 64-bit mixed-radix index used by the explicit-state
// checkers.
var ErrDomainTooLarge = errors.New("state: schema state space exceeds 2^62 states")

// Domain is a predefined nonempty finite domain for a variable. Values are
// the integers 0..Size-1; Names optionally gives them symbolic names (for
// example {"false","true"} for a boolean, or {"bot","0","1"} for a decision
// variable with an "unassigned" value as in the paper's Byzantine agreement
// example, Section 6.2).
type Domain struct {
	Name  string
	Size  int
	Names []string
}

// Bool is the two-valued boolean domain with 0 = false and 1 = true.
var Bool = Domain{Name: "bool", Size: 2, Names: []string{"false", "true"}}

// Range returns a domain of the integers 0..n-1.
func Range(name string, n int) Domain {
	return Domain{Name: name, Size: n}
}

// Enum returns a domain whose values carry the given symbolic names.
func Enum(name string, values ...string) Domain {
	return Domain{Name: name, Size: len(values), Names: append([]string(nil), values...)}
}

// Validate reports whether the domain is well formed.
func (d Domain) Validate() error {
	if d.Size <= 0 {
		return fmt.Errorf("state: domain %q must be nonempty (size %d)", d.Name, d.Size)
	}
	if d.Names != nil && len(d.Names) != d.Size {
		return fmt.Errorf("state: domain %q has %d names for %d values", d.Name, len(d.Names), d.Size)
	}
	return nil
}

// ValueName renders value v of the domain, using its symbolic name if one
// was declared.
func (d Domain) ValueName(v int) string {
	if v >= 0 && v < len(d.Names) {
		return d.Names[v]
	}
	return strconv.Itoa(v)
}

// ValueOf resolves a symbolic name to its value. It reports false when the
// name is not declared in the domain.
func (d Domain) ValueOf(name string) (int, bool) {
	for i, n := range d.Names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Var declares a program variable: a name bound to a domain.
type Var struct {
	Name   string
	Domain Domain
}

// BoolVar declares a boolean variable.
func BoolVar(name string) Var { return Var{Name: name, Domain: Bool} }

// IntVar declares a variable ranging over 0..n-1.
func IntVar(name string, n int) Var {
	return Var{Name: name, Domain: Range(name, n)}
}

// EnumVar declares a variable over named values.
func EnumVar(name string, values ...string) Var {
	return Var{Name: name, Domain: Enum(name, values...)}
}
