package state

import (
	"fmt"
	"strings"
)

// Predicate is a state predicate (Section 2.1): a boolean expression over
// the variables of a program, identified with the set of states in which it
// is true. The Name is used in diagnostics and counterexamples.
type Predicate struct {
	Name string
	Eval func(State) bool
}

// Pred constructs a named predicate.
func Pred(name string, eval func(State) bool) Predicate {
	return Predicate{Name: name, Eval: eval}
}

// True is the predicate satisfied by every state.
var True = Predicate{Name: "true", Eval: func(State) bool { return true }}

// False is the predicate satisfied by no state.
var False = Predicate{Name: "false", Eval: func(State) bool { return false }}

// Holds evaluates the predicate; the zero Predicate behaves like True so
// that optional restriction predicates can be left unset.
func (p Predicate) Holds(s State) bool {
	if p.Eval == nil {
		return true
	}
	return p.Eval(s)
}

// IsTrivial reports whether the predicate is the zero value (treated as
// true).
func (p Predicate) IsTrivial() bool { return p.Eval == nil }

// String returns the predicate name, or "true" for the zero value.
func (p Predicate) String() string {
	if p.Name == "" {
		if p.Eval == nil {
			return "true"
		}
		return "<anonymous>"
	}
	return p.Name
}

// Not returns the negation ¬p.
func Not(p Predicate) Predicate {
	return Predicate{
		Name: fmt.Sprintf("¬(%s)", p),
		Eval: func(s State) bool { return !p.Holds(s) },
	}
}

// And returns the conjunction of the given predicates; And() is True.
func And(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return Predicate{
		Name: joinNames(" ∧ ", ps),
		Eval: func(s State) bool {
			for _, p := range ps {
				if !p.Holds(s) {
					return false
				}
			}
			return true
		},
	}
}

// Or returns the disjunction of the given predicates; Or() is False.
func Or(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return Predicate{
		Name: joinNames(" ∨ ", ps),
		Eval: func(s State) bool {
			for _, p := range ps {
				if p.Holds(s) {
					return true
				}
			}
			return false
		},
	}
}

// Implies returns p ⇒ q as a predicate.
func Implies(p, q Predicate) Predicate {
	return Predicate{
		Name: fmt.Sprintf("(%s) ⇒ (%s)", p, q),
		Eval: func(s State) bool { return !p.Holds(s) || q.Holds(s) },
	}
}

func joinNames(sep string, ps []Predicate) string {
	if len(ps) == 0 {
		if sep == " ∧ " {
			return "true"
		}
		return "false"
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return "(" + strings.Join(names, sep) + ")"
}

// VarEquals returns the predicate "name = value". The schema is used only
// to render the value symbolically; evaluation resolves the variable by name
// on the state's own schema, so the predicate remains meaningful on any
// schema declaring the variable — exactly what the paper's projection-based
// refinement setting needs (the same specification predicate is evaluated on
// states of both p and p').
func VarEquals(s *Schema, name string, value int) Predicate {
	i := s.MustIndexOf(name)
	return Predicate{
		Name: fmt.Sprintf("%s=%s", name, s.Var(i).Domain.ValueName(value)),
		Eval: func(st State) bool { return st.GetName(name) == value },
	}
}

// VarTrue returns the predicate "name" for a boolean variable, resolved by
// name on the state's own schema (see VarEquals).
func VarTrue(s *Schema, name string) Predicate {
	s.MustIndexOf(name) // validate eagerly
	return Predicate{
		Name: name,
		Eval: func(st State) bool { return st.GetName(name) != 0 },
	}
}

// ImpliesEverywhere checks the implication p ⇒ q over the whole state space
// of the schema, returning a witness state violating it, if any.
func ImpliesEverywhere(s *Schema, p, q Predicate) (ok bool, witness State, err error) {
	ok = true
	err = s.ForEachState(func(st State) bool {
		if p.Holds(st) && !q.Holds(st) {
			ok = false
			witness = st
			return false
		}
		return true
	})
	if err != nil {
		return false, State{}, err
	}
	return ok, witness, nil
}

// CountStates returns how many states of the schema satisfy the predicate.
func CountStates(s *Schema, p Predicate) (uint64, error) {
	var n uint64
	err := s.ForEachState(func(st State) bool {
		if p.Holds(st) {
			n++
		}
		return true
	})
	return n, err
}
