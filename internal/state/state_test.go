package state

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		BoolVar("a"),
		IntVar("b", 3),
		EnumVar("c", "red", "green", "blue", "black"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.NumVars() != 3 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if n, ok := s.NumStates(); !ok || n != 2*3*4 {
		t.Fatalf("NumStates = %d,%v; want 24,true", n, ok)
	}
	if i, ok := s.IndexOf("b"); !ok || i != 1 {
		t.Errorf("IndexOf(b) = %d,%v", i, ok)
	}
	if _, ok := s.IndexOf("nope"); ok {
		t.Error("IndexOf(nope) should fail")
	}
	if got := s.String(); !strings.Contains(got, "a:2") || !strings.Contains(got, "c:4") {
		t.Errorf("String() = %q", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(BoolVar("x"), BoolVar("x")); err == nil {
		t.Error("duplicate names must be rejected")
	}
	if _, err := NewSchema(Var{Name: "", Domain: Bool}); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := NewSchema(Var{Name: "x", Domain: Domain{Name: "empty", Size: 0}}); err == nil {
		t.Error("empty domain must be rejected")
	}
	if _, err := NewSchema(Var{Name: "x", Domain: Domain{Name: "bad", Size: 2, Names: []string{"one"}}}); err == nil {
		t.Error("name/size mismatch must be rejected")
	}
}

func TestHugeSchemaNotIndexable(t *testing.T) {
	vars := make([]Var, 70)
	for i := range vars {
		vars[i] = IntVar(strings.Repeat("x", i+1), 4) // 4^70 >> 2^62
	}
	s, err := NewSchema(vars...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Indexable(); err == nil {
		t.Error("4^70 states should not be indexable")
	}
	if err := s.ForEachState(func(State) bool { return true }); err == nil {
		t.Error("enumeration of a huge schema must fail")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		vals := []int{rng.Intn(2), rng.Intn(3), rng.Intn(4)}
		st, err := NewState(s, vals...)
		if err != nil {
			return false
		}
		back := s.StateAt(st.Index())
		return back.Equal(st) && back.Index() == st.Index()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForEachStateCoversAllOnce(t *testing.T) {
	s := testSchema(t)
	seen := map[uint64]bool{}
	err := s.ForEachState(func(st State) bool {
		idx := st.Index()
		if seen[idx] {
			t.Fatalf("index %d visited twice", idx)
		}
		seen[idx] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 24 {
		t.Errorf("visited %d states, want 24", len(seen))
	}
}

func TestStateImmutability(t *testing.T) {
	s := testSchema(t)
	st := MustState(s, 0, 1, 2)
	st2 := st.With(1, 2)
	if st.Get(1) != 1 {
		t.Error("With must not mutate the receiver")
	}
	if st2.Get(1) != 2 {
		t.Error("With must set the new value")
	}
	if st.Equal(st2) {
		t.Error("distinct states must not be Equal")
	}
}

func TestStateValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewState(s, 0, 1); err == nil {
		t.Error("wrong arity must be rejected")
	}
	if _, err := NewState(s, 0, 5, 0); err == nil {
		t.Error("out-of-domain value must be rejected")
	}
	if _, err := FromMap(s, map[string]int{"zz": 1}); err == nil {
		t.Error("unknown variable must be rejected")
	}
	st, err := FromMap(s, map[string]int{"b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.GetName("b") != 2 || st.GetName("a") != 0 {
		t.Errorf("FromMap defaults wrong: %s", st)
	}
}

func TestStateString(t *testing.T) {
	s := testSchema(t)
	st := MustState(s, 1, 2, 3)
	got := st.String()
	for _, want := range []string{"a=true", "b=2", "c=black"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func TestPredicateCombinators(t *testing.T) {
	s := testSchema(t)
	a := VarTrue(s, "a")
	b2 := VarEquals(s, "b", 2)
	cases := []struct {
		pred Predicate
		vals []int
		want bool
	}{
		{And(a, b2), []int{1, 2, 0}, true},
		{And(a, b2), []int{1, 1, 0}, false},
		{Or(a, b2), []int{0, 2, 0}, true},
		{Or(a, b2), []int{0, 0, 0}, false},
		{Not(a), []int{0, 0, 0}, true},
		{Implies(a, b2), []int{0, 0, 0}, true},
		{Implies(a, b2), []int{1, 0, 0}, false},
		{True, []int{0, 0, 0}, true},
		{False, []int{0, 0, 0}, false},
		{And(), []int{0, 0, 0}, true},
		{Or(), []int{0, 0, 0}, false},
	}
	for i, tc := range cases {
		st := MustState(s, tc.vals...)
		if got := tc.pred.Holds(st); got != tc.want {
			t.Errorf("case %d (%s at %s): got %v want %v", i, tc.pred, st, got, tc.want)
		}
	}
}

func TestZeroPredicateIsTrue(t *testing.T) {
	var p Predicate
	if !p.Holds(State{}) || !p.IsTrivial() || p.String() != "true" {
		t.Error("zero Predicate must behave as true")
	}
}

func TestPredicateLogicLaws(t *testing.T) {
	// De Morgan and double negation over the whole space, via quick-picked
	// random predicates of the schema.
	s := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	randPred := func() Predicate {
		v := rng.Intn(s.NumVars())
		val := rng.Intn(s.Var(v).Domain.Size)
		return VarEquals(s, s.Var(v).Name, val)
	}
	for trial := 0; trial < 50; trial++ {
		p, q := randPred(), randPred()
		err := s.ForEachState(func(st State) bool {
			if Not(And(p, q)).Holds(st) != Or(Not(p), Not(q)).Holds(st) {
				t.Fatalf("De Morgan fails at %s for %s, %s", st, p, q)
			}
			if Not(Not(p)).Holds(st) != p.Holds(st) {
				t.Fatalf("double negation fails at %s for %s", st, p)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestImpliesEverywhereAndCount(t *testing.T) {
	s := testSchema(t)
	ok, _, err := ImpliesEverywhere(s, VarEquals(s, "b", 2), Not(VarEquals(s, "b", 1)))
	if err != nil || !ok {
		t.Errorf("b=2 ⇒ b≠1 should hold everywhere: %v %v", ok, err)
	}
	ok, w, err := ImpliesEverywhere(s, VarTrue(s, "a"), VarEquals(s, "b", 0))
	if err != nil || ok {
		t.Errorf("a ⇒ b=0 should fail, witness %s", w)
	}
	n, err := CountStates(s, VarTrue(s, "a"))
	if err != nil || n != 12 {
		t.Errorf("CountStates(a) = %d, want 12", n)
	}
}

func TestProjection(t *testing.T) {
	base := MustSchema(BoolVar("p"), IntVar("v", 3))
	ext, err := base.Extend(BoolVar("z"))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProjection(ext, base)
	if err != nil {
		t.Fatal(err)
	}
	st := MustState(ext, 1, 2, 1)
	got := proj.Apply(st)
	if got.GetName("p") != 1 || got.GetName("v") != 2 {
		t.Errorf("projection wrong: %s", got)
	}
	if !proj.SameProjection(st, st.WithName("z", 0)) {
		t.Error("states differing only in z must project identically")
	}
	if proj.SameProjection(st, st.WithName("v", 0)) {
		t.Error("states differing in v must project differently")
	}
	lifted := proj.Lift(VarEquals(base, "v", 2))
	if !lifted.Holds(st) {
		t.Error("lifted predicate should hold")
	}
	if _, err := NewProjection(base, ext); err == nil {
		t.Error("projection onto a larger schema must fail")
	}
	mismatched := MustSchema(BoolVar("p"), IntVar("v", 4))
	if _, err := NewProjection(ext, mismatched); err == nil {
		t.Error("domain-size mismatch must be rejected")
	}
	id := MustProjection(base, base)
	if !id.Identity() {
		t.Error("self-projection should be the identity")
	}
}

func TestDomainHelpers(t *testing.T) {
	d := Enum("color", "red", "green")
	if d.ValueName(1) != "green" || d.ValueName(5) != "5" {
		t.Error("ValueName wrong")
	}
	if v, ok := d.ValueOf("red"); !ok || v != 0 {
		t.Error("ValueOf(red) wrong")
	}
	if _, ok := d.ValueOf("mauve"); ok {
		t.Error("ValueOf(mauve) should fail")
	}
}

func TestCopyValsAndViewState(t *testing.T) {
	s := testSchema(t)
	st := MustState(s, 1, 2, 3)
	buf := make([]int32, s.NumVars())
	st.CopyVals(buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Fatalf("CopyVals = %v", buf)
	}
	view := s.ViewState(buf)
	if !view.Equal(st) || view.Index() != st.Index() {
		t.Fatalf("ViewState over copied values must equal the source state")
	}
	// A view aliases its buffer: mutating the buffer is visible through it.
	buf[1] = 0
	if view.Get(1) != 0 {
		t.Error("ViewState must alias the caller's buffer")
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyVals into a short buffer must panic")
		}
	}()
	st.CopyVals(make([]int32, s.NumVars()-1))
}

func TestWithBuf(t *testing.T) {
	s := testSchema(t)
	st := MustState(s, 0, 1, 2)
	buf := make([]int32, s.NumVars())
	st2 := st.WithBuf(buf, 2, 3)
	if st.Get(2) != 2 {
		t.Error("WithBuf must not mutate the receiver")
	}
	if st2.Get(0) != 0 || st2.Get(1) != 1 || st2.Get(2) != 3 {
		t.Fatalf("WithBuf result = %v", st2)
	}
	if !st2.Equal(st.With(2, 3)) {
		t.Error("WithBuf must agree with With")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithBuf into a short buffer must panic")
		}
	}()
	st.WithBuf(make([]int32, s.NumVars()-1), 0, 1)
}

func TestDecodeIntoIndexOfValsRoundTrip(t *testing.T) {
	s := testSchema(t)
	total, _ := s.NumStates()
	vals := make([]int32, s.NumVars())
	for idx := uint64(0); idx < total; idx++ {
		s.DecodeInto(vals, idx)
		if back := s.IndexOfVals(vals); back != idx {
			t.Fatalf("IndexOfVals(DecodeInto(%d)) = %d", idx, back)
		}
		if ref := s.StateAt(idx); !s.ViewState(vals).Equal(ref) {
			t.Fatalf("DecodeInto(%d) = %v, want %v", idx, vals, ref)
		}
	}
}

func TestRadixMatchesIndex(t *testing.T) {
	s := testSchema(t)
	// Index is by definition the radix-weighted sum of the values.
	st := MustState(s, 1, 2, 3)
	want := 1*s.Radix(0) + 2*s.Radix(1) + 3*s.Radix(2)
	if st.Index() != want {
		t.Fatalf("Index = %d, want %d", st.Index(), want)
	}
}
