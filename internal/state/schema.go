package state

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of variable declarations. The order fixes the
// mixed-radix encoding of states, so two states over the same *Schema are
// comparable by index. Schemas are immutable after construction.
type Schema struct {
	vars    []Var
	byName  map[string]int
	radix   []uint64 // radix[i] = product of domain sizes of vars[i+1:]
	size    uint64   // total number of states; 0 means "too large"
	bounded bool     // size fits in 62 bits
}

// maxIndexedStates bounds the schemas the explicit-state checkers accept.
const maxIndexedStates = uint64(1) << 62

// NewSchema builds a schema from variable declarations. Variable names must
// be unique and domains nonempty.
func NewSchema(vars ...Var) (*Schema, error) {
	s := &Schema{
		vars:   append([]Var(nil), vars...),
		byName: make(map[string]int, len(vars)),
	}
	for i, v := range s.vars {
		if v.Name == "" {
			return nil, fmt.Errorf("state: variable %d has empty name", i)
		}
		if err := v.Domain.Validate(); err != nil {
			return nil, fmt.Errorf("state: variable %q: %w", v.Name, err)
		}
		if _, dup := s.byName[v.Name]; dup {
			return nil, fmt.Errorf("state: duplicate variable %q", v.Name)
		}
		s.byName[v.Name] = i
	}
	s.radix = make([]uint64, len(s.vars))
	prod := uint64(1)
	s.bounded = true
	for i := len(s.vars) - 1; i >= 0; i-- {
		s.radix[i] = prod
		d := uint64(s.vars[i].Domain.Size)
		if prod > maxIndexedStates/d {
			s.bounded = false
			prod = 0
			// Keep filling radix entries with zero for the remaining
			// (more significant) variables; indices are unusable anyway.
			for j := i - 1; j >= 0; j-- {
				s.radix[j] = 0
			}
			break
		}
		prod *= d
	}
	s.size = prod
	return s, nil
}

// MustSchema is NewSchema but panics on invalid declarations. It is intended
// for package-level construction of the built-in case studies, where a
// failure is a programming error.
func MustSchema(vars ...Var) *Schema {
	s, err := NewSchema(vars...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumVars returns the number of declared variables.
func (s *Schema) NumVars() int { return len(s.vars) }

// Var returns the i-th variable declaration.
func (s *Schema) Var(i int) Var { return s.vars[i] }

// VarNames returns the declared variable names in schema order.
func (s *Schema) VarNames() []string {
	names := make([]string, len(s.vars))
	for i, v := range s.vars {
		names[i] = v.Name
	}
	return names
}

// IndexOf resolves a variable name to its position. It reports false for
// undeclared names.
func (s *Schema) IndexOf(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndexOf resolves a variable name, panicking if it is undeclared; for
// use in statically known programs.
func (s *Schema) MustIndexOf(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("state: undeclared variable %q (declared: %s)", name, strings.Join(s.VarNames(), ", ")))
	}
	return i
}

// NumStates returns the size of the state space and whether it fits the
// 64-bit index (state spaces beyond 2^62 cannot be enumerated).
func (s *Schema) NumStates() (uint64, bool) { return s.size, s.bounded }

// Indexable returns an error unless the schema's full state space can be
// enumerated and indexed.
func (s *Schema) Indexable() error {
	if !s.bounded {
		return ErrDomainTooLarge
	}
	return nil
}

// StateAt returns the state with the given mixed-radix index. The index must
// be in [0, NumStates()).
func (s *Schema) StateAt(idx uint64) State {
	vals := make([]int32, len(s.vars))
	s.DecodeInto(vals, idx)
	return State{schema: s, vals: vals}
}

// DecodeInto writes the value vector of the state with the given mixed-radix
// index into vals, which must have exactly NumVars entries. It is the
// allocation-free form of StateAt: the compiled transition kernel and the
// graph's state arena decode into reusable rows with it. The schema must be
// indexable.
//
//dc:zeroalloc
func (s *Schema) DecodeInto(vals []int32, idx uint64) {
	if len(vals) != len(s.vars) {
		panic(fmt.Sprintf("state: DecodeInto %d slots for %d variables", len(vals), len(s.vars)))
	}
	for i := range s.vars {
		r := s.radix[i]
		vals[i] = int32(idx / r)
		idx %= r
	}
}

// IndexOfVals returns the canonical mixed-radix index of the raw value
// vector, the inverse of DecodeInto. Values are not domain-checked; callers
// (the kernel) guarantee in-domain rows.
//
//dc:zeroalloc
func (s *Schema) IndexOfVals(vals []int32) uint64 {
	var idx uint64
	for i, v := range vals {
		idx += uint64(v) * s.radix[i]
	}
	return idx
}

// Radix returns the mixed-radix weight of variable i: the contribution of
// one unit of vals[i] to the state index (the product of the domain sizes of
// the variables after i). Zero when the schema is not indexable.
//
//dc:zeroalloc
func (s *Schema) Radix(i int) uint64 { return s.radix[i] }

// ViewState wraps a caller-owned value vector as a State without copying.
// The caller must not mutate vals while the view (or anything derived from
// it through Equal/Index/Get) is in use; mutating methods such as With still
// copy, so views respect the package's immutability contract as long as the
// backing row is stable. Values are not domain-checked.
//
//dc:zeroalloc
func (s *Schema) ViewState(vals []int32) State {
	if len(vals) != len(s.vars) {
		panic(fmt.Sprintf("state: ViewState over %d values for %d variables", len(vals), len(s.vars)))
	}
	return State{schema: s, vals: vals}
}

// ForEachState calls fn for every state of the schema in index order,
// stopping early if fn returns false. It returns ErrDomainTooLarge when the
// space is not enumerable.
func (s *Schema) ForEachState(fn func(State) bool) error {
	if err := s.Indexable(); err != nil {
		return err
	}
	vals := make([]int32, len(s.vars))
	for {
		st := State{schema: s, vals: append([]int32(nil), vals...)}
		if !fn(st) {
			return nil
		}
		// Increment the mixed-radix counter.
		i := len(vals) - 1
		for ; i >= 0; i-- {
			vals[i]++
			if int(vals[i]) < s.vars[i].Domain.Size {
				break
			}
			vals[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// Extend returns a new schema with the given variables appended. Name
// clashes with existing variables are rejected. Extension models the paper's
// refinement setting where the tolerant program p' adds variables (for
// example the witness Z1 in Figure 1) to the intolerant program p.
func (s *Schema) Extend(vars ...Var) (*Schema, error) {
	all := make([]Var, 0, len(s.vars)+len(vars))
	all = append(all, s.vars...)
	all = append(all, vars...)
	return NewSchema(all...)
}

// String renders the schema as "name:domainSize" pairs.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s.vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", v.Name, v.Domain.Size)
	}
	b.WriteByte('}')
	return b.String()
}

// SortedNames returns variable names sorted lexicographically; useful for
// deterministic diagnostics.
func (s *Schema) SortedNames() []string {
	names := s.VarNames()
	sort.Strings(names)
	return names
}
