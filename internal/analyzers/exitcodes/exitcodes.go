// Package exitcodes keeps the CLI exit-code contract honest in three
// places at once: the `exit*` constants a command actually returns, the
// "Exit codes" paragraph of its package documentation, and the command's
// "`name` exit codes:" table in the repository README. Exit codes are
// machine interface — scripts and CI gate on them, lint:ignore workflows
// depend on them — so a constant added without documentation, or a
// documented code with no backing constant, is an interface bug of exactly
// the kind the dccodes pass catches for DC diagnostic codes.
//
// For every main package declaring integer constants named exit*:
//
//   - the package doc must contain an "Exit codes" paragraph whose set of
//     integers equals the set of constant values;
//   - README.md at the module root must contain a paragraph introduced by
//     "`<command>` exit codes:" whose set of backtick-quoted integers
//     equals the same set;
//   - no two exit* constants may share a value.
//
// Findings anchor at the constant declarations (the Go side of the
// contract); messages carry the README line numbers where relevant.
package exitcodes

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"detcorr/internal/analyzers"
)

// Analyzer returns the exitcodes pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "exitcodes",
		Doc:  "exit* constants, package docs, and README exit-code tables must agree",
		Run:  run,
	}
}

var exitConstRE = regexp.MustCompile(`^exit[A-Z]`)

func run(m *analyzers.Module) []analyzers.Finding {
	var out []analyzers.Finding
	readme, readmeErr := os.ReadFile(filepath.Join(m.Root, "README.md"))
	for _, pkg := range m.Packages {
		if pkg.Types.Name() != "main" {
			continue
		}
		consts, firstPos := exitConsts(pkg)
		if len(consts) == 0 {
			continue
		}
		declared := map[int]string{}
		for _, c := range consts {
			if prev, dup := declared[c.value]; dup {
				out = append(out, m.FindingAt(c.pos,
					"exit code %d declared by both %s and %s", c.value, prev, c.name))
				continue
			}
			declared[c.value] = c.name
		}
		cmd := filepath.Base(pkg.Dir)

		// The package doc's "Exit codes" paragraph.
		docText, docPos := packageDoc(pkg)
		// The plural "exit codes" is required: command docs legitimately
		// mention a single "exit code 4" long before the actual table.
		docCodes, docOK := paragraphInts(docText, regexp.MustCompile(`(?i)exit codes\b`), intRE)
		if !docOK {
			out = append(out, m.FindingAt(docPos,
				"package %s declares exit* constants but its package doc has no \"Exit codes\" paragraph", cmd))
		} else {
			out = append(out, compare(m, firstPos, declared, docCodes,
				fmt.Sprintf("the package doc of %s", cmd))...)
		}

		// The README table.
		if readmeErr != nil {
			out = append(out, m.FindingAt(firstPos,
				"cannot check %s exit-code table: %v", cmd, readmeErr))
			continue
		}
		marker := regexp.MustCompile("`" + regexp.QuoteMeta(cmd) + "` exit codes?:")
		mdCodes, line, found := readmeInts(string(readme), marker)
		if !found {
			out = append(out, m.FindingAt(firstPos,
				"README.md has no \"`%s` exit codes:\" table for this command", cmd))
			continue
		}
		out = append(out, compare(m, firstPos, declared, mdCodes,
			fmt.Sprintf("the README.md table at line %d", line))...)
	}
	return out
}

// exitConst is one declared exit* integer constant.
type exitConst struct {
	name  string
	value int
	pos   token.Pos
}

// exitConsts collects the exit* integer constants of a package and the
// position of the first one (the anchor for package-level findings).
func exitConsts(pkg *analyzers.Package) ([]exitConst, token.Pos) {
	var consts []exitConst
	var first token.Pos
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "const" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !exitConstRE.MatchString(name.Name) {
						continue
					}
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.Int {
						continue
					}
					v, ok := constant.Int64Val(c.Val())
					if !ok {
						continue
					}
					if first == 0 {
						first = name.Pos()
					}
					consts = append(consts, exitConst{name: name.Name, value: int(v), pos: name.Pos()})
				}
			}
		}
	}
	return consts, first
}

// packageDoc returns the package doc text and the position to anchor
// doc-level findings at (the doc comment, or the package clause).
func packageDoc(pkg *analyzers.Package) (string, token.Pos) {
	for _, f := range pkg.Files {
		if f.Doc != nil {
			return f.Doc.Text(), f.Doc.Pos()
		}
	}
	if len(pkg.Files) > 0 {
		return "", pkg.Files[0].Name.Pos()
	}
	return "", token.NoPos
}

var intRE = regexp.MustCompile(`\b(\d+)\b`)
var backtickIntRE = regexp.MustCompile("`(\\d+)`")

// paragraphInts finds the paragraph (blank-line-delimited) containing the
// marker and returns the set of integers matched by rx's first group.
func paragraphInts(text string, marker, rx *regexp.Regexp) (map[int]bool, bool) {
	loc := marker.FindStringIndex(text)
	if loc == nil {
		return nil, false
	}
	rest := text[loc[1]:]
	if end := strings.Index(rest, "\n\n"); end >= 0 {
		rest = rest[:end]
	}
	codes := map[int]bool{}
	for _, g := range rx.FindAllStringSubmatch(rest, -1) {
		if v, err := strconv.Atoi(g[1]); err == nil {
			codes[v] = true
		}
	}
	return codes, true
}

// readmeInts locates the marker in the README, collects the backticked
// integers of its paragraph, and reports the marker's line number.
func readmeInts(readme string, marker *regexp.Regexp) (map[int]bool, int, bool) {
	loc := marker.FindStringIndex(readme)
	if loc == nil {
		return nil, 0, false
	}
	line := 1 + strings.Count(readme[:loc[0]], "\n")
	codes, _ := paragraphInts(readme, marker, backtickIntRE)
	return codes, line, true
}

// compare reports the two-directional set difference between declared
// constants and documented codes.
func compare(m *analyzers.Module, pos token.Pos, declared map[int]string, documented map[int]bool, where string) []analyzers.Finding {
	var out []analyzers.Finding
	var values []int
	for v := range declared {
		values = append(values, v)
	}
	sort.Ints(values)
	for _, v := range values {
		if !documented[v] {
			out = append(out, m.FindingAt(pos,
				"exit code %d (%s) is not documented in %s", v, declared[v], where))
		}
	}
	var extra []int
	for v := range documented {
		if _, ok := declared[v]; !ok {
			extra = append(extra, v)
		}
	}
	sort.Ints(extra)
	for _, v := range extra {
		out = append(out, m.FindingAt(pos,
			"%s documents exit code %d but no exit* constant has that value", where, v))
	}
	return out
}
