package exitcodes

import (
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

func TestDrift(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/a")
}

func TestUndocumented(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/undoc")
}

func TestClean(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/clean")
}
