// Command clean keeps its exit-code contract consistent across
// constants, package doc, and README: no findings.
//
// Exit codes: 0 success; 1 findings; 2 usage error.
package main

const (
	exitOK    = 0
	exitFail  = 1
	exitUsage = 2
)

func main() {}
