// Command undoc declares exit constants but documents none of them.
package main

// want-file "declares exit\\* constants but its package doc has no \"Exit codes\" paragraph"
// want-file "README.md has no \"`undoc` exit codes:\" table"

const exitOK = 0

func main() {}
