// Command a demonstrates exit-code drift in every direction the
// analyzer reports.
//
// Exit codes: 0 success; 1 findings; 9 reserved.
package main

const (
	exitOK    = 0 // want "exit code 2 \\(exitUsage\\) is not documented in the package doc of a" "the package doc of a documents exit code 9 but no exit\\* constant has that value" "exit code 2 \\(exitUsage\\) is not documented in the README.md table at line 3" "the README.md table at line 3 documents exit code 7 but no exit\\* constant has that value"
	exitFail  = 1
	exitUsage = 2
	exitAlias = 0 // want "exit code 0 declared by both exitOK and exitAlias"
)

func main() {}
