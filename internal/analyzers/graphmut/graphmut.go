// Package graphmut enforces the write-once contract of the CSR graph
// arenas: a `//dc:immutable` struct (explore.Graph, guarded.Kernel) is
// assembled by its builders and then shared — across the graph cache,
// across goroutines, across memoized derived artifacts — so any later
// field assignment is a correctness bug that no test sees until two
// checkers disagree. The derived-artifact layer (SetOf, Reach, the memos)
// honors a clone-don't-mutate rule for exactly this reason.
//
// Sanctioned builders declare themselves per file with a
// `//dc:mutates <Type>` comment; field assignments (including writes
// through index or dereference chains such as g.vals[i] = v) anywhere else
// are findings. Directive hygiene is checked both ways: a //dc:mutates
// naming a type that is not //dc:immutable in the same package, and a file
// declaring //dc:mutates without a single field write, are both stale and
// flagged.
//
// The check is syntactic over typed ASTs: writes through an aliased slice
// (row := g.vals[:n]; row[0] = v) are invisible to it, as is reflection.
// It is a discipline gate, not an escape analysis.
package graphmut

import (
	"go/ast"
	"go/types"

	"detcorr/internal/analyzers"
)

// Analyzer returns the graphmut pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "graphmut",
		Doc:  "//dc:immutable struct fields may be assigned only in //dc:mutates files",
		Run:  run,
	}
}

func run(m *analyzers.Module) []analyzers.Finding {
	var out []analyzers.Finding
	for _, pkg := range m.Packages {
		out = append(out, checkPackage(m, pkg)...)
	}
	return out
}

func checkPackage(m *analyzers.Module, pkg *analyzers.Package) []analyzers.Finding {
	// Immutable types of this package: field object -> type name.
	immutable := map[string]bool{}
	fieldOf := map[*types.Var]string{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := analyzers.Directive(ts.Doc, "immutable"); !ok {
					if _, ok := analyzers.Directive(gd.Doc, "immutable"); !ok || len(gd.Specs) != 1 {
						continue
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				immutable[ts.Name.Name] = true
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							fieldOf[v] = ts.Name.Name
						}
					}
				}
			}
		}
	}
	if len(immutable) == 0 {
		// Still flag //dc:mutates directives pointing at nothing.
		var out []analyzers.Finding
		for _, file := range pkg.Files {
			for _, d := range analyzers.FileDirectives(file, "mutates") {
				out = append(out, m.FindingAt(d.Pos,
					"//dc:mutates %s: no //dc:immutable type of that name in package %s",
					d.Arg, pkg.Types.Name()))
			}
		}
		return out
	}

	var out []analyzers.Finding
	for _, file := range pkg.Files {
		allowed := map[string]bool{}
		directiveAt := map[string]analyzers.FileDirective{}
		for _, d := range analyzers.FileDirectives(file, "mutates") {
			if !immutable[d.Arg] {
				out = append(out, m.FindingAt(d.Pos,
					"//dc:mutates %s: no //dc:immutable type of that name in package %s",
					d.Arg, pkg.Types.Name()))
				continue
			}
			allowed[d.Arg] = true
			directiveAt[d.Arg] = d
		}
		wrote := map[string]bool{}
		report := func(n ast.Node, lhs ast.Expr) {
			f := assignedField(pkg.Info, lhs)
			if f == nil {
				return
			}
			tname, ok := fieldOf[f]
			if !ok {
				return
			}
			wrote[tname] = true
			if !allowed[tname] {
				out = append(out, m.FindingAt(n.Pos(),
					"write to field %s of immutable type %s outside a //dc:mutates %s file",
					f.Name(), tname, tname))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					report(lhs, lhs)
				}
			case *ast.IncDecStmt:
				report(n, n.X)
			}
			return true
		})
		for tname := range allowed {
			if !wrote[tname] {
				out = append(out, m.FindingAt(directiveAt[tname].Pos,
					"stale //dc:mutates %s: file never writes a %s field", tname, tname))
			}
		}
	}
	return out
}

// assignedField resolves an assignment target to the immutable-struct field
// it ultimately writes: x.f, x.f[i], (*p).f[i][j], and chains thereof.
func assignedField(info *types.Info, lhs ast.Expr) *types.Var {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if f, ok := info.Uses[e.Sel].(*types.Var); ok && f.IsField() {
				return f
			}
			return nil
		default:
			return nil
		}
	}
}
