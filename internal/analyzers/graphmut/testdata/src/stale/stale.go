// Package stale has directive-hygiene violations: a //dc:mutates naming an
// unannotated type and one in a file that never writes.
//
//dc:mutates Graph
//dc:mutates Cache
package stale

// want-file "stale //dc:mutates Graph: file never writes a Graph field"
// want-file "//dc:mutates Cache: no //dc:immutable type of that name"

// Graph is immutable but this file never writes it.
//
//dc:immutable
type Graph struct {
	n int
}

// Cache is not annotated at all.
type Cache struct {
	m map[string]int
}

func size(g *Graph) int { return g.n }
