package a

// trim mutates a shared graph: every write is a finding in this file,
// which carries no //dc:mutates directive.
func trim(g *Graph) {
	g.n = 0      // want "write to field n of immutable type Graph"
	g.off[0] = 7 // want "write to field off of immutable type Graph"
	g.n++        // want "write to field n of immutable type Graph"
}

// read-only use is fine.
func degree(g *Graph, v int) int {
	return int(g.off[v+1] - g.off[v])
}
