// Package a has an immutable CSR-like struct, a sanctioned builder file,
// and a file that mutates it illegally.
//
//dc:mutates Graph
package a

// Graph is write-once after build.
//
//dc:immutable
type Graph struct {
	n     int
	off   []uint32
	edges []int
}

// build is the sanctioned construction path.
func build(n int) *Graph {
	g := &Graph{n: n}
	g.off = make([]uint32, n+1)
	for i := range g.off {
		g.off[i] = uint32(i)
	}
	g.edges = make([]int, 0, n)
	return g
}
