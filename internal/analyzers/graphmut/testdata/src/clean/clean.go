// Package clean builds an immutable struct only inside its sanctioned
// builder file: no findings.
//
//dc:mutates Graph
package clean

// Graph is write-once after build.
//
//dc:immutable
type Graph struct {
	n   int
	off []uint32
}

func build(n int) *Graph {
	g := &Graph{n: n}
	g.off = make([]uint32, n+1)
	return g
}

// mutableScratch has no annotation: writes anywhere are fine.
type mutableScratch struct {
	buf []int
}

func (s *mutableScratch) reset() { s.buf = s.buf[:0] }
