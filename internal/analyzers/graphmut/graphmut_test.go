package graphmut

import (
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

func TestViolations(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/a")
}

func TestStaleDirectives(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/stale")
}

func TestClean(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/clean")
}
