package analyzers

import (
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repo root from this file's position, so the tests
// work regardless of the package the test binary runs in.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	m, err := LoadModule(moduleRoot(t))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.Packages) < 20 {
		t.Fatalf("loaded %d packages, expected the whole module (>= 20)", len(m.Packages))
	}
	want := map[string]bool{
		"detcorr/internal/explore": false,
		"detcorr/internal/guarded": false,
		"detcorr/cmd/dctl":         false,
	}
	for _, p := range m.Packages {
		if _, ok := want[p.Path]; ok {
			want[p.Path] = true
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s: not type-checked", p.Path)
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}
