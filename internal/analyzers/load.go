package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadModule parses and type-checks every non-test package under root (the
// directory containing go.mod) and returns the loaded module. Directories
// named testdata, hidden directories, and test files are skipped. Standard
// library imports are type-checked from GOROOT source through one shared
// importer, so type and object identities agree across the whole module —
// the cross-package analyzers depend on that.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loadDirs(root, modPath, dirs)
}

// LoadDir loads a single directory as a one-package module rooted at dir.
// The golden-test harness uses it on testdata fixture packages.
func LoadDir(dir string) (*Module, error) {
	return loadDirs(dir, "fixture", []string{dir})
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyzers: no module line in %s", gomod)
}

// parsedPkg is one package between parsing and type-checking.
type parsedPkg struct {
	pkg     *Package
	imports []string // module-internal import paths
}

func loadDirs(root, modPath string, dirs []string) (*Module, error) {
	fset := token.NewFileSet()
	byPath := map[string]*parsedPkg{}
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pp, err := parseDir(fset, root, dir, importPath, modPath)
		if err != nil {
			return nil, err
		}
		if pp == nil {
			continue // only test files
		}
		byPath[importPath] = pp
		order = append(order, importPath)
	}
	sort.Strings(order)

	m := &Module{Root: root, PathName: modPath, Fset: fset}
	typed := map[string]*types.Package{}
	imp := &moduleImporter{typed: typed, std: importer.ForCompiler(fset, "source", nil)}
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		if _, done := typed[path]; done {
			return nil
		}
		for _, t := range trail {
			if t == path {
				return fmt.Errorf("analyzers: import cycle through %s", path)
			}
		}
		pp, ok := byPath[path]
		if !ok {
			return nil // external or test-only; the importer resolves it
		}
		for _, dep := range pp.imports {
			if err := visit(dep, append(trail, path)); err != nil {
				return err
			}
		}
		if err := typeCheck(fset, pp.pkg, imp); err != nil {
			return err
		}
		typed[path] = pp.pkg.Types
		m.Packages = append(m.Packages, pp.pkg)
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	return m, nil
}

// parseDir parses the non-test Go files of one directory. Filenames are
// recorded relative to root so findings and goldens are machine-independent.
func parseDir(fset *token.FileSet, root, dir, importPath, modPath string) (*parsedPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir}
	imports := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		display := full
		if rel, err := filepath.Rel(root, full); err == nil {
			display = filepath.ToSlash(rel)
		}
		f, err := parser.ParseFile(fset, display, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, display)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && (p == modPath || strings.HasPrefix(p, modPath+"/")) {
				imports[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pp := &parsedPkg{pkg: pkg}
	for p := range imports {
		pp.imports = append(pp.imports, p)
	}
	sort.Strings(pp.imports)
	return pp, nil
}

// typeCheck runs go/types over one parsed package with full Info maps.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("analyzers: type-checking %s: %w", pkg.Path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("analyzers: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports from the already-checked
// set and everything else (the standard library) from GOROOT source.
type moduleImporter struct {
	typed map[string]*types.Package
	std   types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.typed[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}
