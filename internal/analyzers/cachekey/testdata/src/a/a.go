// Package a seeds cache-key drift: an unconsulted field, a stale
// exemption, and a reasonless exemption.
package a

// Options is the build-input struct under the key contract.
//
//dc:cachekey inputs
type Options struct {
	Fair      []bool
	MaxStates int
	Workers   int // want "cache key omits build input Workers"

	// Seed is exempted but the builder still consults it: stale.
	//
	//dc:nokey determinism makes the seed irrelevant
	Seed int64 // want "stale //dc:nokey on Seed"

	// Trace is exempted without a reason.
	//
	//dc:nokey
	Trace string // want "//dc:nokey on Trace needs a reason"
}

type key struct {
	fair string
	max  int
	seed int64
}

// keyOf derives the cache key.
//
//dc:cachekey builder
func keyOf(o Options) key {
	fair := ""
	for _, f := range o.Fair {
		if f {
			fair += "1"
		} else {
			fair += "0"
		}
	}
	return key{fair: fair, max: o.MaxStates, seed: o.Seed}
}
