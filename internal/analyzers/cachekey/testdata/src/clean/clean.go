// Package clean is a correctly keyed inputs struct: every field consulted
// or exempted with a reason.
package clean

// Options configures a build.
//
//dc:cachekey inputs
type Options struct {
	Fair      []bool
	MaxStates int

	// Parallelism stays out of the key: results are canonical at any
	// worker count.
	//
	//dc:nokey results are canonical at any worker count
	Parallelism int
}

type key struct {
	fair string
	max  int
}

// keyOf consults every keyed field.
//
//dc:cachekey builder
func keyOf(o Options) key {
	fair := make([]byte, len(o.Fair))
	for i, f := range o.Fair {
		if f {
			fair[i] = '1'
		} else {
			fair[i] = '0'
		}
	}
	return key{fair: string(fair), max: o.MaxStates}
}
