// Package orphan declares an inputs struct with no key builder at all.
package orphan

// Options has the contract but nobody builds a key from it.
//
//dc:cachekey inputs
type Options struct { // want "inputs struct Options has no //dc:cachekey builder function in package orphan"
	MaxStates int
}
