package cachekey

import (
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

func TestViolations(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/a")
}

func TestOrphanInputs(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/orphan")
}

func TestClean(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/clean")
}
