// Package cachekey guards the PR 5 graph-cache identity contract: every
// build input must be part of the cache key, or two different builds will
// collide on one cache entry and a checker will get a graph built under the
// wrong options — a wrong-verdict bug, not a crash. The contract is
// directive-driven so it survives refactors:
//
//   - the struct holding the build inputs (explore.Options) carries
//     `//dc:cachekey inputs`;
//   - the function that derives the cache key (explore.sharedKeyOf) carries
//     `//dc:cachekey builder`;
//   - a field deliberately excluded from the key carries
//     `//dc:nokey <reason>` (explore.Options.Parallelism: graphs are
//     canonical at any worker count).
//
// The analyzer then demands, per package: every field of an inputs struct
// is either read somewhere in a builder function or annotated //dc:nokey;
// no field is both (a stale exemption); every //dc:nokey has a reason; and
// an inputs struct without any builder in its package is itself an error.
// Adding a build-affecting option without extending the key becomes a
// build failure instead of a latent wrong-verdict bug.
package cachekey

import (
	"go/ast"
	"go/types"

	"detcorr/internal/analyzers"
)

// Analyzer returns the cachekey pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "cachekey",
		Doc:  "every //dc:cachekey inputs field must feed the key builder or carry //dc:nokey",
		Run:  run,
	}
}

// inputField is one field of an inputs struct with its exemption state.
type inputField struct {
	name     string
	obj      types.Object
	pos      ast.Node
	nokey    bool
	reason   string
	consumed bool
}

func run(m *analyzers.Module) []analyzers.Finding {
	var out []analyzers.Finding
	for _, pkg := range m.Packages {
		out = append(out, checkPackage(m, pkg)...)
	}
	return out
}

func checkPackage(m *analyzers.Module, pkg *analyzers.Package) []analyzers.Finding {
	var fields []*inputField
	var inputStructs []*ast.TypeSpec
	var builders []*ast.FuncDecl

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					arg, ok := analyzers.Directive(ts.Doc, "cachekey")
					if !ok && len(d.Specs) == 1 {
						arg, ok = analyzers.Directive(d.Doc, "cachekey")
					}
					if !ok || arg != "inputs" {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					inputStructs = append(inputStructs, ts)
					fields = append(fields, collectFields(pkg, st)...)
				}
			case *ast.FuncDecl:
				if arg, ok := analyzers.Directive(d.Doc, "cachekey"); ok && arg == "builder" {
					builders = append(builders, d)
				}
			}
		}
	}
	if len(inputStructs) == 0 && len(builders) == 0 {
		return nil
	}

	var out []analyzers.Finding
	if len(inputStructs) > 0 && len(builders) == 0 {
		for _, ts := range inputStructs {
			out = append(out, m.FindingAt(ts.Pos(),
				"inputs struct %s has no //dc:cachekey builder function in package %s",
				ts.Name.Name, pkg.Types.Name()))
		}
		return out
	}

	// Which input fields do the builders consult?
	consulted := map[types.Object]bool{}
	for _, b := range builders {
		if b.Body == nil {
			continue
		}
		ast.Inspect(b.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
					consulted[obj] = true
				}
			}
			return true
		})
	}

	for _, f := range fields {
		f.consumed = consulted[f.obj]
		switch {
		case f.nokey && f.consumed:
			out = append(out, m.FindingAt(f.pos.Pos(),
				"stale //dc:nokey on %s: the key builder consults it", f.name))
		case f.nokey && f.reason == "":
			out = append(out, m.FindingAt(f.pos.Pos(),
				"//dc:nokey on %s needs a reason", f.name))
		case !f.nokey && !f.consumed:
			out = append(out, m.FindingAt(f.pos.Pos(),
				"cache key omits build input %s: extend the key builder or annotate //dc:nokey with a reason", f.name))
		}
	}
	return out
}

// collectFields gathers the named fields of an inputs struct together with
// their //dc:nokey exemptions (doc comment or trailing line comment).
func collectFields(pkg *analyzers.Package, st *ast.StructType) []*inputField {
	var fields []*inputField
	for _, fld := range st.Fields.List {
		reason, nokey := analyzers.Directive(fld.Doc, "nokey")
		if !nokey {
			reason, nokey = analyzers.Directive(fld.Comment, "nokey")
		}
		for _, name := range fld.Names {
			fields = append(fields, &inputField{
				name:   name.Name,
				obj:    pkg.Info.Defs[name],
				pos:    name,
				nokey:  nokey,
				reason: reason,
			})
		}
	}
	return fields
}
