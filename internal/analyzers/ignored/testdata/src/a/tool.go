package a // want "tracked Go file tool.go is matched by .gitignore pattern \"/tool.go\" \\(line 4\\)"

const tool = 3
