// Package a tracks Go files that its own ignore patterns shadow.
package a

// Kept exists so the package has a declaration beyond the clause.
const Kept = true
