package a // want "tracked Go file gen_foo.go is matched by .gitignore pattern \"gen_\\*.go\" \\(line 2\\)"

const genFoo = 1
