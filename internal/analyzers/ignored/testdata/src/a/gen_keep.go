package a

// genKeep is re-included by the !gen_keep.go negation: no finding.
const genKeep = 2
