// Package clean has ignore patterns for binaries and scratch files; no
// tracked Go file matches them.
package clean

// Live proves the file parses.
const Live = true
