package ignored

import (
	"os"
	"path/filepath"
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

func TestViolations(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/clean")
}

// patterns compiles a literal gitignore body through the same loader the
// analyzer uses.
func patterns(t *testing.T, body string) []*pattern {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".gitignore"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return loadPatterns(dir)
}

// TestMatcherSubset pins the corners of the gitignore subset the golden
// fixtures cannot reach from a single flat directory: directory patterns,
// basename matching at depth, root anchoring, and ** spans.
func TestMatcherSubset(t *testing.T) {
	cases := []struct {
		gitignore string
		path      string
		ignored   bool
	}{
		// An unanchored bare name ignores a directory at any depth — the
		// original incident: `dctl` shadowing cmd/dctl/.
		{"dctl\n", "cmd/dctl/main.go", true},
		// Root-anchoring by leading slash: /dctl is the binary at the
		// root, not the source directory below cmd/.
		{"/dctl\n", "cmd/dctl/main.go", false},
		{"/dctl\n", "dctl/main.go", true},
		// Directory-only patterns never match plain files of that name.
		{"vendor/\n", "vendor/x/y.go", true},
		{"vendor/\n", "pkg/vendor", false},
		// ** crosses directories; * stays within one.
		{"**/gen.go\n", "a/b/gen.go", true},
		{"**/gen.go\n", "gen.go", true},
		{"cmd/*/zz_*.go\n", "cmd/dctl/zz_tab.go", true},
		{"cmd/*/zz_*.go\n", "cmd/dctl/deep/zz_tab.go", false},
		// Negation is last-match-wins at the file level...
		{"*.go\n!keep.go\n", "keep.go", false},
		{"!keep.go\n*.go\n", "keep.go", true},
		// ...but cannot resurrect a file under an ignored directory.
		{"build/\n!build/keep.go\n", "build/keep.go", true},
		// Comments and blanks are inert.
		{"# *.go\n\n", "main.go", false},
	}
	for _, c := range cases {
		p := ignoredBy(patterns(t, c.gitignore), c.path)
		if got := p != nil; got != c.ignored {
			t.Errorf("gitignore %q, path %q: ignored = %v, want %v (pattern %+v)",
				c.gitignore, c.path, got, c.ignored, p)
		}
	}
}
