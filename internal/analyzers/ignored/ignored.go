// Package ignored guards against the quiet failure mode where a tracked
// source file matches a .gitignore pattern: `git add` skips it, the tree
// builds locally and breaks for everyone else, and nothing complains. The
// repo hit exactly this when the binary patterns `dctl`/`dcbench` (before
// they were root-anchored as `/dctl`) shadowed the cmd/dctl and
// cmd/dcbench source directories.
//
// The analyzer evaluates every loaded Go file's module-relative path
// against the root .gitignore and reports any file that ends up ignored,
// anchored at the file's package clause. Fixtures name their pattern file
// `_gitignore` (consulted only when no `.gitignore` exists) so the
// fixture's own patterns do not un-track the fixture from the real
// repository.
//
// The matcher is a deliberate subset of gitignore semantics: comments,
// blank lines, `!` negation with last-match-wins, root-anchoring by any
// inner slash, trailing-slash directory patterns, `*`/`?` within a
// segment, and `**` across segments. Unsupported corners (character
// classes, escaped leading `#`/`!`, the re-include-under-excluded-dir
// rule) err toward silence, never toward false findings.
package ignored

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"detcorr/internal/analyzers"
)

// Analyzer returns the ignored pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "ignored",
		Doc:  "tracked Go source files must not match .gitignore patterns",
		Run:  run,
	}
}

func run(m *analyzers.Module) []analyzers.Finding {
	pats := loadPatterns(m.Root)
	if len(pats) == 0 {
		return nil
	}
	var out []analyzers.Finding
	for _, pkg := range m.Packages {
		for i, file := range pkg.Files {
			rel := pkg.Filenames[i]
			if filepath.IsAbs(rel) {
				continue // outside the module root; not subject to its .gitignore
			}
			if p := ignoredBy(pats, rel); p != nil {
				out = append(out, m.FindingAt(file.Pos(),
					"tracked Go file %s is matched by .gitignore pattern %q (line %d)",
					rel, p.raw, p.line))
			}
		}
	}
	return out
}

// pattern is one compiled .gitignore line.
type pattern struct {
	raw     string
	line    int
	negate  bool
	dirOnly bool
	inner   bool // contains a non-trailing slash: anchored to the root
	rx      *regexp.Regexp
}

// loadPatterns reads the module's .gitignore — or, only when that file
// does not exist, the fixture spelling _gitignore — and compiles its
// lines. Lines the subset matcher cannot compile are dropped.
func loadPatterns(root string) []*pattern {
	data, err := os.ReadFile(filepath.Join(root, ".gitignore"))
	if err != nil {
		data, err = os.ReadFile(filepath.Join(root, "_gitignore"))
		if err != nil {
			return nil
		}
	}
	var pats []*pattern
	for i, line := range strings.Split(string(data), "\n") {
		raw := strings.TrimSpace(line)
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		p := &pattern{raw: raw, line: i + 1}
		body := raw
		if strings.HasPrefix(body, "!") {
			p.negate = true
			body = body[1:]
		}
		if strings.HasSuffix(body, "/") {
			p.dirOnly = true
			body = strings.TrimSuffix(body, "/")
		}
		p.inner = strings.Contains(body, "/")
		body = strings.TrimPrefix(body, "/")
		rx, err := compile(body)
		if err != nil {
			continue
		}
		p.rx = rx
		pats = append(pats, p)
	}
	return pats
}

// compile translates one gitignore glob into an anchored regexp:
// `**/` crosses directories, `*` and `?` stay within one.
func compile(glob string) (*regexp.Regexp, error) {
	var b strings.Builder
	b.WriteString("^")
	for i := 0; i < len(glob); {
		switch {
		case strings.HasPrefix(glob[i:], "**/"):
			b.WriteString(`(?:[^/]+/)*`)
			i += 3
		case strings.HasPrefix(glob[i:], "**"):
			b.WriteString(`.*`)
			i += 2
		case glob[i] == '*':
			b.WriteString(`[^/]*`)
			i++
		case glob[i] == '?':
			b.WriteString(`[^/]`)
			i++
		default:
			b.WriteString(regexp.QuoteMeta(glob[i : i+1]))
			i++
		}
	}
	b.WriteString("$")
	return regexp.Compile(b.String())
}

// ignoredBy decides whether the slash-separated module-relative path rel
// ends up ignored, returning the deciding pattern. A path is ignored if
// the file itself, or any ancestor directory, is ignored after
// last-match-wins evaluation.
func ignoredBy(pats []*pattern, rel string) *pattern {
	rel = filepath.ToSlash(rel)
	// Ancestor directories first: an ignored directory ignores everything
	// beneath it, and (as in git) a file-level negation cannot resurrect it.
	parts := strings.Split(rel, "/")
	for i := 1; i < len(parts); i++ {
		dir := strings.Join(parts[:i], "/")
		if p := decide(pats, dir, true); p != nil {
			return p
		}
	}
	return decide(pats, rel, false)
}

// decide runs last-match-wins over one candidate path and returns the
// matching pattern if the candidate ends up ignored, nil otherwise.
func decide(pats []*pattern, candidate string, isDir bool) *pattern {
	var winner *pattern
	ignored := false
	base := candidate
	if i := strings.LastIndexByte(candidate, '/'); i >= 0 {
		base = candidate[i+1:]
	}
	for _, p := range pats {
		if p.dirOnly && !isDir {
			continue
		}
		target := base
		if p.inner {
			target = candidate
		}
		if !p.rx.MatchString(target) {
			continue
		}
		ignored = !p.negate
		winner = p
	}
	if ignored {
		return winner
	}
	return nil
}
