// Package analyzertest is the golden-test harness for dcvet analyzers.
// Fixtures are small Go packages under testdata/src/<name>/ whose source
// carries `// want "regexp"` comments on the lines where findings are
// expected. RunGolden loads the fixture, runs the analyzer, and fails the
// test unless findings and expectations match one-to-one: an unmatched
// finding is a false positive, an unmatched expectation a false negative.
// Multiple expectations on one line are written as `// want "a" "b"`.
package analyzertest

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"detcorr/internal/analyzers"
)

// expectation is one parsed `// want` clause.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// expectations parses every `// want` comment in the module's files.
func expectations(m *analyzers.Module) ([]*expectation, error) {
	var exps []*expectation
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			name := pkg.Filenames[i]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					got, err := parseWant(m, name, c)
					if err != nil {
						return nil, err
					}
					exps = append(exps, got...)
				}
			}
		}
	}
	return exps, nil
}

// parseWant extracts the quoted regexps of one `// want` comment. The
// `// want-file` form matches a finding anywhere in the file — for
// file-level diagnostics whose position no comment can share a line with.
func parseWant(m *analyzers.Module, file string, c *ast.Comment) ([]*expectation, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	line := m.Fset.Position(c.Pos()).Line
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		rest, ok = strings.CutPrefix(text, "want-file ")
		if !ok {
			return nil, nil
		}
		line = -1
	}
	var exps []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed want comment %q: %v", file, line, c.Text, err)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed want pattern %s: %v", file, line, q, err)
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, line, pat, err)
		}
		exps = append(exps, &expectation{file: file, line: line, rx: rx})
		rest = strings.TrimSpace(rest[len(q):])
	}
	return exps, nil
}

// Problems compares findings against the module's `// want` expectations
// and returns one human-readable problem per mismatch: an "unexpected
// finding" for every finding no expectation matches, and a "no finding
// matched" for every expectation left unsatisfied. An empty result means
// the golden check passes.
func Problems(m *analyzers.Module, findings []analyzers.Finding) []string {
	exps, err := expectations(m)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, f := range findings {
		matched := false
		for _, e := range exps {
			if e.used || e.file != f.File || (e.line != -1 && e.line != f.Line) {
				continue
			}
			if e.rx.MatchString(f.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for _, e := range exps {
		if !e.used {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", e.file, e.line, e.rx))
		}
	}
	sort.Strings(problems)
	return problems
}

// RunGolden loads the fixture package in dir, runs the analyzer, and fails
// the test on any golden mismatch.
func RunGolden(t *testing.T, a *analyzers.Analyzer, dir string) {
	t.Helper()
	m, err := analyzers.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, p := range Problems(m, analyzers.Run(m, []*analyzers.Analyzer{a})) {
		t.Errorf("%s: %s", dir, p)
	}
}
