// Package h is the fixture for the harness's own failure-mode tests.
package h

const x = 1 // want "boom"

// want-file "anywhere"
