package analyzertest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"detcorr/internal/analyzers"
)

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The fixture testdata/h/h.go carries exactly two expectations: a
// line-anchored `want "boom"` on the const declaration (line 4) and a
// file-level `want-file "anywhere"`.

func loadFixture(t *testing.T) *analyzers.Module {
	t.Helper()
	m, err := analyzers.LoadDir("testdata/h")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fake(line int, msg string) analyzers.Finding {
	return analyzers.Finding{Analyzer: "fake", File: "h.go", Line: line, Col: 1, Message: msg}
}

func TestAllExpectationsMatched(t *testing.T) {
	m := loadFixture(t)
	got := Problems(m, []analyzers.Finding{
		fake(4, "boom goes the invariant"),
		fake(2, "anywhere in the file works for want-file"),
	})
	if len(got) != 0 {
		t.Errorf("want no problems, got %q", got)
	}
}

// TestFalseNegatives: expectations with no matching finding must each
// surface as a "no finding matched" problem — the failure mode that
// catches an analyzer silently going blind.
func TestFalseNegatives(t *testing.T) {
	m := loadFixture(t)
	got := Problems(m, nil)
	if len(got) != 2 {
		t.Fatalf("want 2 problems for 2 unmatched expectations, got %q", got)
	}
	for _, p := range got {
		if !strings.Contains(p, "no finding matched want") {
			t.Errorf("problem should report the unmatched expectation: %q", p)
		}
	}
	if !strings.Contains(got[0]+got[1], `"boom"`) || !strings.Contains(got[0]+got[1], `"anywhere"`) {
		t.Errorf("problems should name both missing patterns: %q", got)
	}
}

// TestFalsePositive: a finding no expectation matches is reported even
// when every expectation is satisfied.
func TestFalsePositive(t *testing.T) {
	m := loadFixture(t)
	got := Problems(m, []analyzers.Finding{
		fake(4, "boom goes the invariant"),
		fake(2, "anywhere in the file works"),
		fake(6, "nobody expected this"),
	})
	if len(got) != 1 || !strings.Contains(got[0], "unexpected finding") {
		t.Fatalf("want one unexpected-finding problem, got %q", got)
	}
}

// TestLineAnchoring: a message that matches the regexp on the wrong line
// is both a false positive and a false negative — `want` is positional.
func TestLineAnchoring(t *testing.T) {
	m := loadFixture(t)
	got := Problems(m, []analyzers.Finding{
		fake(5, "boom goes the invariant"),
		fake(2, "anywhere in the file works"),
	})
	if len(got) != 2 {
		t.Fatalf("want 2 problems (wrong-line finding and starved want), got %q", got)
	}
}

// TestOneToOneMatching: one expectation cannot absorb two findings.
func TestOneToOneMatching(t *testing.T) {
	m := loadFixture(t)
	got := Problems(m, []analyzers.Finding{
		fake(4, "boom once"),
		fake(4, "boom twice"),
		fake(2, "anywhere"),
	})
	if len(got) != 1 || !strings.Contains(got[0], "unexpected finding") {
		t.Fatalf("second boom should be unexpected, got %q", got)
	}
}

func TestMalformedWantIsAProblem(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "bad.go", "package bad\n\nconst y = 1 // want not-quoted\n")
	m, err := analyzers.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := Problems(m, nil)
	if len(got) != 1 || !strings.Contains(got[0], "malformed want comment") {
		t.Fatalf("want a malformed-comment problem, got %q", got)
	}
}
