// Package all is the dcvet analyzer registry: the one place that knows
// every pass in the suite. It exists as its own package so the framework
// (internal/analyzers) never imports the analyzers built on it — the
// import edges stay framework ← analyzer ← registry ← driver, with no
// cycles.
package all

import (
	"detcorr/internal/analyzers"
	"detcorr/internal/analyzers/atomics"
	"detcorr/internal/analyzers/cachekey"
	"detcorr/internal/analyzers/dccodes"
	"detcorr/internal/analyzers/exitcodes"
	"detcorr/internal/analyzers/graphmut"
	"detcorr/internal/analyzers/ignored"
	"detcorr/internal/analyzers/zeroalloc"
)

// Analyzers returns the full suite in name order.
func Analyzers() []*analyzers.Analyzer {
	return []*analyzers.Analyzer{
		atomics.Analyzer(),
		cachekey.Analyzer(),
		dccodes.Analyzer(),
		exitcodes.Analyzer(),
		graphmut.Analyzer(),
		ignored.Analyzer(),
		zeroalloc.Analyzer(),
	}
}
