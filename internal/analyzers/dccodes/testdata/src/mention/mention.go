// Package mention refers to DC100 and DC103 produced elsewhere; it
// declares no Code* constants, so the module-wide pass is scoped to skip
// it rather than flag every mention as a stale table entry.
package mention

// Describe names codes this package does not own.
func Describe() string { return "see DC100 and DC103" }
