// Package clean declares and documents the same codes:
//
//	DC810  first
//	DC811  second
package clean

const (
	CodeFirst  = "DC810"
	CodeSecond = "DC811"
)
