// Package a documents one real code and one ghost:
//
//	DC800  the documented one
//	DC801  removed long ago
package a

// want-file "package doc of a documents DC801 but no exported Code\\* constant declares it"

const (
	CodeDocumented   = "DC800"
	CodeUndocumented = "DC802" // want "constant CodeUndocumented = \"DC802\" is not documented in the package doc header of a"
	CodeDup          = "DC800" // want "diagnostic code DC800 already declared at"
)
