package dccodes

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

// TestAnalyzerGoldens exercises the dcvet adaptation: both directions of
// the check on a violating fixture, a clean fixture, and the scoping rule
// that packages mentioning DC codes without declaring any are skipped.
func TestAnalyzerGoldens(t *testing.T) {
	for _, dir := range []string{"testdata/src/a", "testdata/src/clean", "testdata/src/mention"} {
		analyzertest.RunGolden(t, Analyzer(), dir)
	}
}

// TestRepoPackagesAreClean is the live gate: the two packages that declare
// DC codes must keep their doc-header tables in sync with the constants.
func TestRepoPackagesAreClean(t *testing.T) {
	for _, dir := range []string{"../../lint", "../../prove"} {
		findings, err := CheckDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", dir, f)
		}
	}
}

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUndocumentedConstant(t *testing.T) {
	dir := writePkg(t, `// Package p documents only one code:
//
//	DC500  the documented one
package p

const (
	CodeDocumented   = "DC500"
	CodeUndocumented = "DC501"
)
`)
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "CodeUndocumented") ||
		!strings.Contains(findings[0].Message, "DC501") {
		t.Errorf("finding should name the constant and its code: %v", findings[0])
	}
}

func TestStaleDocEntry(t *testing.T) {
	dir := writePkg(t, `// Package p documents a code that no longer exists:
//
//	DC600  real
//	DC601  removed long ago
package p

const CodeReal = "DC600"
`)
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "DC601") {
		t.Fatalf("want one stale-doc finding for DC601, got %v", findings)
	}
}

func TestDuplicateCode(t *testing.T) {
	dir := writePkg(t, `// Package p declares DC700 twice.
//
//	DC700  doubled
package p

const (
	CodeOne = "DC700"
	CodeTwo = "DC700"
)
`)
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "already declared") {
		t.Fatalf("want one duplicate finding, got %v", findings)
	}
}

// TestIgnoresNonCodeConstants: unexported constants, non-string constants,
// and Code* constants whose value is not a DC code are out of scope.
func TestIgnoresNonCodeConstants(t *testing.T) {
	dir := writePkg(t, `// Package p has nothing to check.
package p

const (
	codeInternal = "DC900"
	CodeNumeric  = 7
	CodePrefix   = "prefix-"
)
`)
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("want no findings, got %v", findings)
	}
}
