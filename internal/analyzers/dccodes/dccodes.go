// Package dccodes is a repo-specific vet pass: every exported Code*
// constant holding a DC diagnostic code must be documented in its
// package's doc header, and every DC code the doc header names must be
// backed by a constant. The DC-code tables in internal/lint and
// internal/prove are the user-facing contract (`dctl lint`/`dctl prove`
// print the codes, lint:ignore directives name them), so an undocumented
// or stale code is a real interface bug, not a style nit.
//
// The pass is built on the standard library's go/ast only, so it runs in
// hermetic environments without golang.org/x/tools.
package dccodes

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Finding is one violation, formatted as file:line: message.
type Finding struct {
	Pos     string
	Message string
}

func (f Finding) String() string { return f.Pos + ": " + f.Message }

var codeRE = regexp.MustCompile(`^DC[0-9]{3}$`)
var docCodeRE = regexp.MustCompile(`\bDC[0-9]{3}\b`)

// CheckDir analyzes the non-test Go package in dir and returns its
// violations sorted by position.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, checkPackage(fset, pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

func checkPackage(fset *token.FileSet, pkg *ast.Package) []Finding {
	var findings []Finding

	// The package doc header: the doc comment of every file's package
	// clause (conventionally exactly one file carries it).
	var doc strings.Builder
	docPos := ""
	var fileNames []string
	for name := range pkg.Files {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		f := pkg.Files[name]
		if f.Doc != nil {
			doc.WriteString(f.Doc.Text())
			doc.WriteString("\n")
			if docPos == "" {
				docPos = fset.Position(f.Doc.Pos()).String()
			}
		}
	}
	docText := doc.String()

	// Every exported Code* string constant with a DCnnn value.
	declared := map[string]token.Pos{}
	for _, name := range fileNames {
		ast.Inspect(pkg.Files[name], func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			for _, spec := range decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if !id.IsExported() || !strings.HasPrefix(id.Name, "Code") || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil || !codeRE.MatchString(val) {
						continue
					}
					if prev, dup := declared[val]; dup {
						findings = append(findings, Finding{
							Pos: fset.Position(id.Pos()).String(),
							Message: fmt.Sprintf("diagnostic code %s already declared at %s",
								val, fset.Position(prev)),
						})
						continue
					}
					declared[val] = id.Pos()
					if !strings.Contains(docText, val) {
						findings = append(findings, Finding{
							Pos: fset.Position(id.Pos()).String(),
							Message: fmt.Sprintf("constant %s = %q is not documented in the package doc header of %s",
								id.Name, val, pkg.Name),
						})
					}
				}
			}
			return true
		})
	}

	// The reverse direction: a DC code in the doc header with no backing
	// constant is a stale table entry.
	seen := map[string]bool{}
	for _, code := range docCodeRE.FindAllString(docText, -1) {
		if seen[code] {
			continue
		}
		seen[code] = true
		if _, ok := declared[code]; !ok {
			findings = append(findings, Finding{
				Pos: docPos,
				Message: fmt.Sprintf("package doc of %s documents %s but no exported Code* constant declares it",
					pkg.Name, code),
			})
		}
	}
	return findings
}
