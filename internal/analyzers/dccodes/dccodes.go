// Package dccodes is a repo-specific vet pass: every exported Code*
// constant holding a DC diagnostic code must be documented in its
// package's doc header, and every DC code the doc header names must be
// backed by a constant. The DC-code tables in internal/lint and
// internal/prove are the user-facing contract (`dctl lint`/`dctl prove`
// print the codes, lint:ignore directives name them), so an undocumented
// or stale code is a real interface bug, not a style nit.
//
// The pass has two front ends over one core. CheckDir is the original
// explicit-directory entry point used by cmd/dccodes; it checks both
// directions unconditionally, since naming a directory is an assertion
// that the package participates in the DC-code contract. Analyzer adapts
// the pass to the dcvet driver for whole-module sweeps; there the check is
// scoped to packages declaring at least one Code* constant, because other
// packages (cmd/dctl's command doc, for one) legitimately mention DC codes
// they do not declare.
//
// The pass is built on the standard library's go/ast only, so it runs in
// hermetic environments without golang.org/x/tools.
package dccodes

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"detcorr/internal/analyzers"
)

// Finding is one violation, formatted as file:line: message.
type Finding struct {
	Pos     string
	Message string
}

func (f Finding) String() string { return f.Pos + ": " + f.Message }

var codeRE = regexp.MustCompile(`^DC[0-9]{3}$`)
var docCodeRE = regexp.MustCompile(`\bDC[0-9]{3}\b`)

// Analyzer returns the dcvet adaptation of the pass. It skips packages
// with no Code* constants: in a module-wide sweep, mentioning a DC code is
// not the same as owning one.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "dccodes",
		Doc:  "exported Code* constants and package-doc DC-code tables must agree",
		Run: func(m *analyzers.Module) []analyzers.Finding {
			var out []analyzers.Finding
			for _, pkg := range m.Packages {
				raws, declared := checkFiles(m.Fset, pkg.Types.Name(), pkg.Files)
				if declared == 0 {
					continue
				}
				for _, r := range raws {
					out = append(out, m.FindingAt(r.pos, "%s", r.msg))
				}
			}
			return out
		},
	}
}

// CheckDir analyzes the non-test Go package in dir and returns its
// violations sorted by position.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var fileNames []string
		for name := range pkg.Files {
			fileNames = append(fileNames, name)
		}
		sort.Strings(fileNames)
		var files []*ast.File
		for _, name := range fileNames {
			files = append(files, pkg.Files[name])
		}
		raws, _ := checkFiles(fset, pkg.Name, files)
		for _, r := range raws {
			findings = append(findings, Finding{
				Pos:     fset.Position(r.pos).String(),
				Message: r.msg,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

// rawFinding is one violation before position formatting.
type rawFinding struct {
	pos token.Pos
	msg string
}

// checkFiles runs both directions of the code/doc agreement check over one
// parsed package and reports how many distinct Code* constants it
// declares; module-wide callers use the count to scope the pass.
func checkFiles(fset *token.FileSet, pkgName string, files []*ast.File) ([]rawFinding, int) {
	var findings []rawFinding

	// The package doc header: the doc comment of every file's package
	// clause (conventionally exactly one file carries it).
	var doc strings.Builder
	var docPos token.Pos
	for _, f := range files {
		if f.Doc != nil {
			doc.WriteString(f.Doc.Text())
			doc.WriteString("\n")
			if docPos == token.NoPos {
				docPos = f.Doc.Pos()
			}
		}
	}
	docText := doc.String()

	// Every exported Code* string constant with a DCnnn value.
	declared := map[string]token.Pos{}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			decl, ok := n.(*ast.GenDecl)
			if !ok || decl.Tok != token.CONST {
				return true
			}
			for _, spec := range decl.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if !id.IsExported() || !strings.HasPrefix(id.Name, "Code") || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil || !codeRE.MatchString(val) {
						continue
					}
					if prev, dup := declared[val]; dup {
						findings = append(findings, rawFinding{
							pos: id.Pos(),
							msg: fmt.Sprintf("diagnostic code %s already declared at %s",
								val, fset.Position(prev)),
						})
						continue
					}
					declared[val] = id.Pos()
					if !strings.Contains(docText, val) {
						findings = append(findings, rawFinding{
							pos: id.Pos(),
							msg: fmt.Sprintf("constant %s = %q is not documented in the package doc header of %s",
								id.Name, val, pkgName),
						})
					}
				}
			}
			return true
		})
	}

	// The reverse direction: a DC code in the doc header with no backing
	// constant is a stale table entry.
	seen := map[string]bool{}
	for _, code := range docCodeRE.FindAllString(docText, -1) {
		if seen[code] {
			continue
		}
		seen[code] = true
		if _, ok := declared[code]; !ok {
			findings = append(findings, rawFinding{
				pos: docPos,
				msg: fmt.Sprintf("package doc of %s documents %s but no exported Code* constant declares it",
					pkgName, code),
			})
		}
	}
	return findings, len(declared)
}
