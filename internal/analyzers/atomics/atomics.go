// Package atomics enforces the mixed-access discipline of the parallel
// exploration engine: once any code in the module accesses a struct field
// through sync/atomic (atomic.LoadUint64(&x.f), atomic.AddInt64(&x.f[i]),
// or through a pointer local bound to such an address), every other access
// to that field anywhere in the module must be atomic too. The PR 2
// parallel BFS deduplicates through a lock-free bitset whose words are
// CAS-claimed; one plain read of those words is a data race the race
// detector only catches when a test happens to interleave it.
//
// Construction is exempt: naming the field in a composite literal
// (&denseVisited{words: make(...)}) happens before the value is shared.
// Fields of the typed atomic kinds (atomic.Int64, atomic.Bool, ...) are
// safe by construction and outside this analyzer's scope.
package atomics

import (
	"go/ast"
	"go/token"
	"go/types"

	"detcorr/internal/analyzers"
)

// Analyzer returns the atomics pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "atomics",
		Doc:  "fields accessed via sync/atomic must never be accessed plainly",
		Run:  run,
	}
}

// atomicFns names the sync/atomic functions whose first argument is the
// address under discipline.
var atomicFns = map[string]bool{}

func init() {
	for _, op := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFns[op+ty] = true
		}
	}
}

func run(m *analyzers.Module) []analyzers.Finding {
	// Pass 1: find every field whose address feeds a sync/atomic call,
	// either directly (&x.f as the argument) or through a local pointer
	// (p := &x.f; atomic.LoadUint64(p)). Record the field objects, one
	// atomic-use position each (for the report), and the AST nodes that
	// constitute sanctioned atomic access.
	marked := map[*types.Var]token.Position{}
	exempt := map[ast.Node]bool{}
	for _, pkg := range m.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			// Locals assigned from &<field chain> in this file: object -> the
			// selector node and field it roots at.
			type binding struct {
				field *types.Var
				sel   ast.Node
			}
			bound := map[types.Object]binding{}
			ast.Inspect(file, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
					for i := range as.Lhs {
						id, ok := as.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj == nil {
							continue
						}
						if f, sel := addressedField(info, as.Rhs[i]); f != nil {
							bound[obj] = binding{field: f, sel: sel}
						}
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !atomicFns[sel.Sel.Name] {
					return true
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
					return true
				}
				arg := call.Args[0]
				if f, fsel := addressedField(info, arg); f != nil {
					mark(m, marked, f, arg)
					exempt[fsel] = true
				} else if id, ok := unparen(arg).(*ast.Ident); ok {
					if b, ok := bound[info.Uses[id]]; ok {
						mark(m, marked, b.field, arg)
						exempt[b.sel] = true
					}
				}
				return true
			})
		}
	}
	if len(marked) == 0 {
		return nil
	}

	// Pass 2: every other use of a marked field is a plain access. Composite
	// literal keys (construction) are exempt.
	var out []analyzers.Finding
	for _, pkg := range m.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			// Collect construction-time field keys.
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							exempt[id] = true
						}
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if exempt[n] {
						return true
					}
					if f, ok := info.Uses[n.Sel].(*types.Var); ok {
						if at, isMarked := marked[f]; isMarked {
							out = append(out, m.FindingAt(n.Sel.Pos(),
								"plain access to field %s, which is accessed atomically at %s:%d",
								fieldName(f), at.Filename, at.Line))
						}
					}
				case *ast.Ident:
					// Bare field references (composite-lit keys are exempted
					// above; selector Sel idents are handled by their parent).
					if exempt[n] {
						return true
					}
					if f, ok := info.Uses[n].(*types.Var); ok && f.IsField() && !partOfSelector(file, n) {
						if at, isMarked := marked[f]; isMarked {
							out = append(out, m.FindingAt(n.Pos(),
								"plain access to field %s, which is accessed atomically at %s:%d",
								fieldName(f), at.Filename, at.Line))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

func mark(m *analyzers.Module, marked map[*types.Var]token.Position, f *types.Var, at ast.Node) {
	if _, ok := marked[f]; !ok {
		marked[f] = m.Fset.Position(at.Pos())
	}
}

// addressedField recognizes &x.f, &x.f[i], &x.f[i].g[j] ... expressions and
// returns the outermost field being addressed plus the selector node that
// names it.
func addressedField(info *types.Info, e ast.Expr) (*types.Var, ast.Node) {
	u, ok := unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	inner := unparen(u.X)
	for {
		switch x := inner.(type) {
		case *ast.IndexExpr:
			inner = unparen(x.X)
		case *ast.SelectorExpr:
			if f, ok := info.Uses[x.Sel].(*types.Var); ok && f.IsField() {
				return f, x
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// partOfSelector reports whether id is the Sel of some selector expression
// in the file (those are reported through the SelectorExpr case).
func partOfSelector(file *ast.File, id *ast.Ident) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel == id {
			found = true
			return false
		}
		return true
	})
	return found
}

// fieldName renders a field as Type.field for reports.
func fieldName(f *types.Var) string {
	name := f.Name()
	if owner := fieldOwner(f); owner != "" {
		return owner + "." + name
	}
	return name
}

// fieldOwner finds the named struct type declaring f, if any, by scanning
// the field's package scope.
func fieldOwner(f *types.Var) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return tn.Name()
			}
		}
	}
	return ""
}
