// Package clean mixes typed atomics, purely-atomic raw fields, and purely
// plain fields: no findings.
package clean

import "sync/atomic"

type counters struct {
	builds atomic.Int64 // typed atomics are safe by construction
	name   string       // plain everywhere
}

func (c *counters) record() {
	c.builds.Add(1)
	c.name = "build"
}

type bits struct {
	words []uint64
}

func newBits(n int) *bits {
	return &bits{words: make([]uint64, n)} // construction: exempt
}

// set only ever touches words atomically.
func (b *bits) set(i uint64) {
	w := &b.words[i>>6]
	for {
		old := atomic.LoadUint64(w)
		if atomic.CompareAndSwapUint64(w, old, old|(1<<(i&63))) {
			return
		}
	}
}
