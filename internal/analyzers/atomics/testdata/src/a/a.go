// Package a seeds mixed atomic/plain accesses the analyzer must flag.
package a

import "sync/atomic"

type visited struct {
	words []uint64
	n     int // never atomic: plain access is fine
}

func newVisited(n int) *visited {
	return &visited{words: make([]uint64, n), n: n} // construction: exempt
}

// claim is the sanctioned atomic path: direct and via a local pointer.
func (v *visited) claim(idx uint64) bool {
	w := &v.words[idx>>6]
	bit := uint64(1) << (idx & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// count reads the words plainly: a data race against claim.
func (v *visited) count() int {
	c := 0
	for _, w := range v.words { // want "plain access to field visited.words"
		if w != 0 {
			c++
		}
	}
	return c
}

// reset writes the words plainly: same race.
func (v *visited) reset() {
	for i := range v.words { // want "plain access to field visited.words"
		v.words[i] = 0 // want "plain access to field visited.words"
	}
	v.n = 0 // fine: n is never accessed atomically
}

type stats struct{ hits int64 }

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func read(s *stats) int64 {
	return s.hits // want "plain access to field stats.hits"
}
