// Package analyzers is the dcvet framework: a stdlib-only (go/parser +
// go/types) multi-analyzer driver that mechanically enforces the engine's
// internal invariants — the contracts the checker machinery itself depends
// on but that ordinary tests cannot see, such as "the compiled kernel step
// path stays allocation-free" or "every build-affecting option is part of
// the graph-cache key".
//
// The framework loads the whole module once (LoadModule), type-checks every
// package against source-imported standard-library dependencies so object
// identities are shared module-wide, and hands the loaded Module to each
// registered Analyzer. Analyzers communicate with the code under analysis
// through `//dc:` directive comments:
//
//	//dc:zeroalloc          function must not allocate in the steady state
//	//dc:cachekey inputs    every field of this struct feeds the cache key
//	//dc:cachekey builder   the function that constructs the cache key
//	//dc:nokey <reason>     field deliberately excluded from the cache key
//	//dc:immutable          struct fields are write-once after build
//	//dc:mutates <Type>     file is a sanctioned builder of <Type>
//
// Individual analyzers live in subpackages (zeroalloc, atomics, cachekey,
// graphmut, exitcodes, dccodes, ignored); the registry that assembles the
// full suite is internal/analyzers/all, and the command front end is
// cmd/dcvet.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String formats the finding in the file:line:col: [analyzer] message shape
// shared with dclint.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("detcorr/internal/explore") and Dir the
	// directory it was loaded from.
	Path string
	Dir  string
	// Files holds the parsed non-test files, Filenames their paths in the
	// same order.
	Files     []*ast.File
	Filenames []string
	// Types and Info are the go/types results. Info is fully populated
	// (Types, Defs, Uses, Selections, Implicits, Scopes).
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded module: every package, one shared FileSet, and
// the module root (where go.mod and .gitignore live).
type Module struct {
	Root     string
	PathName string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
}

// Analyzer is one dcvet pass. Run receives the whole module — several
// invariants are cross-package (a field made atomic in one package must not
// be accessed plainly in another) — and returns its findings; the driver
// sorts and labels them.
type Analyzer struct {
	// Name is the flag and report label ("zeroalloc").
	Name string
	// Doc is the one-line description shown by dcvet's usage text.
	Doc string
	// Run analyzes the module.
	Run func(m *Module) []Finding
}

// Run executes the analyzers over the module and returns all findings
// sorted by file, line, column, analyzer. Each finding's Analyzer field is
// stamped with the producing analyzer's name.
func Run(m *Module, as []*Analyzer) []Finding {
	var out []Finding
	for _, a := range as {
		fs := a.Run(m)
		for i := range fs {
			fs[i].Analyzer = a.Name
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// FindingAt builds a finding at a token position.
func (m *Module) FindingAt(pos token.Pos, format string, args ...any) Finding {
	p := m.Fset.Position(pos)
	return Finding{File: p.Filename, Line: p.Line, Col: p.Column, Message: fmt.Sprintf(format, args...)}
}

// Directive reports whether the comment group carries the given //dc:
// directive (exact name match on the first word) and returns the rest of
// the directive line as its argument string.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text, found := strings.CutPrefix(c.Text, "//dc:")
		if !found {
			continue
		}
		word, rest, _ := strings.Cut(text, " ")
		if word == name {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FileDirective is one file-scoped //dc: directive occurrence.
type FileDirective struct {
	Arg string
	Pos token.Pos
}

// FileDirectives returns every //dc:<name> directive in any comment of the
// file (file-scoped directives such as //dc:mutates), with positions.
func FileDirectives(f *ast.File, name string) []FileDirective {
	var ds []FileDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, found := strings.CutPrefix(c.Text, "//dc:")
			if !found {
				continue
			}
			word, rest, _ := strings.Cut(text, " ")
			if word == name {
				ds = append(ds, FileDirective{Arg: strings.TrimSpace(rest), Pos: c.Pos()})
			}
		}
	}
	return ds
}
