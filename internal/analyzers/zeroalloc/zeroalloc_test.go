package zeroalloc

import (
	"testing"

	"detcorr/internal/analyzers/analyzertest"
)

func TestViolations(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/a")
}

func TestClean(t *testing.T) {
	analyzertest.RunGolden(t, Analyzer(), "testdata/src/clean")
}
