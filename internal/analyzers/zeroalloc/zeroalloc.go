// Package zeroalloc enforces the engine's steady-state allocation contract:
// a function annotated `//dc:zeroalloc` — the compiled successor kernel's
// step path, the bitset operations, the streaming-scan inner loops — must
// contain no allocating construct. The PR 3 kernel owes its 0 allocs/op to
// hand-discipline; this analyzer turns that discipline into a build gate so
// a stray fmt call or escaping literal in the hot path fails `make check`
// instead of silently costing 16 million allocations per Ring7 build again.
//
// Flagged constructs, with the finding at the allocating expression:
//
//   - make and new calls;
//   - map and slice composite literals, and &T{} literals (which escape);
//   - append calls whose destination is not a caller-owned buffer — append
//     is allowed only in the amortized forms `x = append(x, ...)` and
//     `return append(x, ...)` where x is rooted at a parameter or receiver,
//     the warm-buffer contract the kernel documents;
//   - func literals that capture variables of the enclosing function;
//   - implicit or explicit conversions of concrete values to interface
//     types (assignments, call arguments, returns);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - any call into package fmt.
//
// Arguments of a direct panic(...) call are exempt: a panicking kernel is
// outside the steady state, and the hot paths guard domain violations with
// panic(fmt.Sprintf(...)).
package zeroalloc

import (
	"go/ast"
	"go/types"

	"detcorr/internal/analyzers"
)

// Analyzer returns the zeroalloc pass.
func Analyzer() *analyzers.Analyzer {
	return &analyzers.Analyzer{
		Name: "zeroalloc",
		Doc:  "//dc:zeroalloc functions must not contain allocating constructs",
		Run:  run,
	}
}

func run(m *analyzers.Module) []analyzers.Finding {
	var out []analyzers.Finding
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := analyzers.Directive(fd.Doc, "zeroalloc"); !ok {
					continue
				}
				c := &checker{m: m, info: pkg.Info, owned: ownedObjects(pkg.Info, fd)}
				sig, _ := pkg.Info.Defs[fd.Name].Type().(*types.Signature)
				c.walkBody(fd.Body, sig)
				out = append(out, c.findings...)
			}
		}
	}
	return out
}

// checker carries the per-function analysis state.
type checker struct {
	m        *analyzers.Module
	info     *types.Info
	owned    map[types.Object]bool // parameters and receiver: caller-owned roots
	findings []analyzers.Finding
}

func (c *checker) reportf(n ast.Node, format string, args ...any) {
	c.findings = append(c.findings, c.m.FindingAt(n.Pos(), format, args...))
}

// ownedObjects collects the receiver and parameter objects of a function:
// the roots append may amortize into.
func ownedObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return owned
}

// walkBody inspects one function (or func literal) body. sig is the
// enclosing signature, for checking return statements; it is nil when the
// type checker could not produce one.
func (c *checker) walkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(n, sig)
		case *ast.FuncLit:
			c.checkCapture(n, body)
			litSig, _ := c.info.TypeOf(n).(*types.Signature)
			c.walkBody(n.Body, litSig)
			return false
		case *ast.CompositeLit:
			c.checkCompositeLit(n, false)
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				c.checkCompositeLit(lit, true)
				return false
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(c.info.TypeOf(n)) {
				c.reportf(n, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n, sig)
		}
		return true
	})
}

// checkCall classifies one call. It returns false when the subtree must not
// be descended into further (panic arguments are exempt; flagged calls are
// reported once).
func (c *checker) checkCall(call *ast.CallExpr, sig *types.Signature) bool {
	// Builtins (resolved through the type checker, so shadowing is honored).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // failure path: exempt, including its arguments
			case "make":
				c.reportf(call, "make allocates")
				return false
			case "new":
				c.reportf(call, "new allocates")
				return false
			case "append":
				c.checkAppend(call)
				return true
			}
			return true
		}
	}
	// Conversions: T(x).
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(call, tv.Type, c.info.TypeOf(call.Args[0]))
		return true
	}
	// Calls into package fmt.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := c.info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.reportf(call, "call to fmt.%s allocates", sel.Sel.Name)
			return true
		}
	}
	// Interface conversions at argument positions.
	if csig, ok := c.info.TypeOf(call.Fun).Underlying().(*types.Signature); ok {
		for i, arg := range call.Args {
			pt := paramTypeAt(csig, i, call.Ellipsis.IsValid())
			if pt != nil {
				c.checkIfaceConv(arg, pt)
			}
		}
	}
	return true
}

// paramTypeAt resolves the type of the i-th argument slot, unrolling the
// variadic tail unless the call spreads a slice with ... .
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && !ellipsis && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// checkAppend allows only the amortized caller-owned-buffer forms.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	root, path := exprRoot(dst)
	if root != nil && c.owned[c.info.Uses[root]] && c.appendResultStaysOwned(call, path) {
		return
	}
	c.reportf(call, "append may grow and reallocate: destination %s is not a caller-owned buffer assigned back in place", exprText(path, root))
}

// appendResultStaysOwned reports whether the append call's result flows
// back into the caller-owned destination: either `x = append(x, ...)` with
// identical x, or `return append(x, ...)` (the caller receives the grown
// buffer).
func (c *checker) appendResultStaysOwned(call *ast.CallExpr, dstPath string) bool {
	parent := c.parentOf(call)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		if len(p.Lhs) == 1 && len(p.Rhs) == 1 && p.Rhs[0] == call {
			root, path := exprRoot(p.Lhs[0])
			return root != nil && path == dstPath
		}
	case *ast.ReturnStmt:
		return true
	}
	return false
}

// parentOf finds the immediate parent node of target within the analyzed
// forest. Zeroalloc bodies are small, so an on-demand scan is fine.
func (c *checker) parentOf(target ast.Node) ast.Node {
	var parent ast.Node
	for _, pkg := range c.m.Packages {
		for _, f := range pkg.Files {
			if f.Pos() <= target.Pos() && target.End() <= f.End() {
				var stack []ast.Node
				ast.Inspect(f, func(n ast.Node) bool {
					if n == nil {
						stack = stack[:len(stack)-1]
						return true
					}
					if parent != nil {
						return false // found: skip the rest without pushing
					}
					if n == target {
						if len(stack) > 0 {
							parent = stack[len(stack)-1]
						}
						return false
					}
					stack = append(stack, n)
					return true
				})
				return parent
			}
		}
	}
	return nil
}

// exprRoot walks a selector/index/paren/star chain down to its root
// identifier, returning the root and a stable textual path (for comparing
// append destination against assignment target).
func exprRoot(e ast.Expr) (*ast.Ident, string) {
	switch e := e.(type) {
	case *ast.Ident:
		return e, e.Name
	case *ast.SelectorExpr:
		root, path := exprRoot(e.X)
		if root == nil {
			return nil, ""
		}
		return root, path + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprRoot(e.X)
	case *ast.StarExpr:
		return exprRoot(e.X)
	case *ast.SliceExpr:
		// x[:0] keeps the same backing buffer: same root, same path.
		return exprRoot(e.X)
	}
	return nil, ""
}

func exprText(path string, root *ast.Ident) string {
	if root == nil || path == "" {
		return "expression"
	}
	return path
}

// checkCompositeLit flags literals that always heap-allocate: maps, slices,
// and literals whose address is taken.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit, addressed bool) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.reportf(lit, "map literal allocates")
	case *types.Slice:
		c.reportf(lit, "slice literal allocates")
	default:
		if addressed {
			c.reportf(lit, "escaping composite literal (&%s{...}) allocates", types.TypeString(t, types.RelativeTo(nil)))
		}
	}
}

// checkCapture flags func literals that close over variables of the
// enclosing function: a capturing closure forces its environment (and
// itself) onto the heap.
func (c *checker) checkCapture(lit *ast.FuncLit, encl *ast.BlockStmt) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing body (or its params) but
		// outside the literal.
		if obj.Pos() >= encl.Pos() && obj.Pos() < lit.Pos() {
			c.reportf(lit, "closure captures %s and allocates", id.Name)
			reported = true
			return false
		}
		// Parameters and receiver of the annotated function count too.
		if c.owned[obj] && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			c.reportf(lit, "closure captures %s and allocates", id.Name)
			reported = true
			return false
		}
		return true
	})
}

func (c *checker) checkAssign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		if lt := c.info.TypeOf(a.Lhs[i]); lt != nil {
			c.checkIfaceConv(a.Rhs[i], lt)
		}
	}
}

func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if obj := c.info.Defs[name]; obj != nil {
			c.checkIfaceConv(vs.Values[i], obj.Type())
		}
	}
}

func (c *checker) checkReturn(r *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(r.Results) != sig.Results().Len() {
		return
	}
	for i, res := range r.Results {
		c.checkIfaceConv(res, sig.Results().At(i).Type())
	}
}

// checkIfaceConv flags a concrete value converted to an interface type.
func (c *checker) checkIfaceConv(val ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	vt := c.info.TypeOf(val)
	if vt == nil || types.IsInterface(vt) {
		return
	}
	if b, ok := vt.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.reportf(val, "conversion of %s to interface %s allocates", vt, dst)
}

// checkConversion flags string<->byte/rune-slice conversions.
func (c *checker) checkConversion(call *ast.CallExpr, dst, src types.Type) {
	if dst == nil || src == nil {
		return
	}
	if types.IsInterface(dst) {
		c.checkIfaceConv(call.Args[0], dst)
		return
	}
	dstStr, srcStr := isString(dst), isString(src)
	if dstStr && isByteOrRuneSlice(src) || srcStr && isByteOrRuneSlice(dst) {
		c.reportf(call, "string conversion allocates")
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
