// Package clean exercises every pattern zeroalloc must accept: the
// amortized append forms, value composite literals, panic-path exemptions,
// and plain arithmetic over caller-owned buffers.
package clean

import "fmt"

type pair struct{ a, b int }

type scratch struct {
	buf  []int
	rows []pair
}

// step is the shape of the kernel hot path: caller-owned buffers grown in
// place, value literals, and a panic guard on the failure path.
//
//dc:zeroalloc
func step(sc *scratch, buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i*2) // amortized: param root, assigned back
	}
	sc.buf = sc.buf[:0]
	sc.buf = append(sc.buf, n)                  // amortized: receiver-rooted buffer
	sc.rows = append(sc.rows, pair{a: n, b: n}) // value literal into owned buffer
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // exempt: failure path
	}
	p := pair{a: 1, b: 2} // value struct literal: stack
	_ = p
	return append(buf, n) // amortized: caller receives the grown buffer
}

// visit calls a caller-supplied visitor without capturing anything.
//
//dc:zeroalloc
func visit(xs []int, fn func(int) bool) {
	for _, x := range xs {
		if !fn(x) {
			return
		}
	}
}
