// Package a seeds one violation of every zeroalloc rule.
package a

import "fmt"

type box struct{ v int }

// hot is annotated, so every allocating construct inside is a finding.
//
//dc:zeroalloc
func hot(buf []int, n int) []int {
	m := make([]int, n) // want "make allocates"
	_ = m
	p := new(box) // want "new allocates"
	_ = p
	mp := map[int]int{1: 2} // want "map literal allocates"
	_ = mp
	sl := []int{1, 2, 3} // want "slice literal allocates"
	_ = sl
	bp := &box{v: 1} // want "escaping composite literal"
	_ = bp
	local := []int{}         // want "slice literal allocates"
	local = append(local, n) // want "append may grow"
	_ = local
	fresh := append(buf[:0:0], n) // want "append may grow"
	_ = fresh
	var sink any
	sink = n // want "conversion of int to interface"
	_ = sink
	s := fmt.Sprintf("%d", n) // want "call to fmt.Sprintf allocates"
	t := s + "!"              // want "string concatenation allocates"
	b := []byte(t)            // want "string conversion allocates"
	_ = b
	k := n
	f := func() int { return k } // want "closure captures k"
	_ = f
	return buf
}

// ret demonstrates the interface-conversion check on returns.
//
//dc:zeroalloc
func ret(n int) any {
	return n // want "conversion of int to interface"
}

// cold is not annotated: the same constructs produce no findings.
func cold(n int) []int {
	m := make([]int, n)
	_ = fmt.Sprintf("%d", n)
	return m
}
