package gcl

import (
	"errors"
	"strings"
	"testing"
)

func TestEmptyGuardIsSyntaxError(t *testing.T) {
	_, err := ParseAndCompile("program p\nvar x : 0..1\naction a :: -> x := 1")
	if err == nil {
		t.Fatal("an action with an empty guard should not parse")
	}
	if !strings.Contains(err.Error(), "expected expression") {
		t.Errorf("error %q should mention the missing expression", err)
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error %T should be a *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("error should point at line 3, got line %d", se.Line)
	}
}

func TestNondeterministicAssignToEnum(t *testing.T) {
	f, err := ParseAndCompile(`
program p
var c : enum(red, green, blue)
action repaint :: c == red -> c := ?
`)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Schema.StateAt(0) // c = red (index 0)
	succ := f.Program.Action(0).Next(st)
	if len(succ) != 3 {
		t.Fatalf("c := ? over a 3-value enum should yield 3 successors, got %d", len(succ))
	}
	seen := map[int]bool{}
	for _, s := range succ {
		seen[s.Get(0)] = true
	}
	for v := 0; v < 3; v++ {
		if !seen[v] {
			t.Errorf("successor with c=%d missing", v)
		}
	}
}

func TestDuplicateEnumValuesAcrossTypes(t *testing.T) {
	// The same value names at the same indices are one shared constant set.
	f, err := ParseAndCompile(`
program p
var a : enum(u, v)
var b : enum(u, v)
action sync :: a == u & b == v -> b := u
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Schema.NumVars(); got != 2 {
		t.Errorf("schema should have 2 variables, got %d", got)
	}

	// The same value name at a different index is ambiguous and rejected.
	_, err = ParseAndCompile(`
program p
var a : enum(u, v)
var b : enum(w, u)
`)
	if err == nil || !strings.Contains(err.Error(), "different index") {
		t.Errorf("conflicting enum index should be rejected, got %v", err)
	}
}

func TestPredicateReference(t *testing.T) {
	f, err := ParseAndCompile(`
program p
var x : 0..2
pred Low  :: x == 0
pred High :: x == 2
pred Edge :: Low | High
action up :: !High -> x := x + 1
`)
	if err != nil {
		t.Fatal(err)
	}
	edge, ok := f.Pred("Edge")
	if !ok {
		t.Fatal("Edge predicate missing")
	}
	for v := 0; v <= 2; v++ {
		st := f.Schema.StateAt(uint64(v))
		if want := v == 0 || v == 2; edge.Holds(st) != want {
			t.Errorf("Edge at x=%d: got %v, want %v", v, edge.Holds(st), want)
		}
	}
	up := f.Program.Action(0)
	if up.Enabled(f.Schema.StateAt(2)) {
		t.Error("up should be disabled where High holds")
	}
	if !up.Enabled(f.Schema.StateAt(0)) {
		t.Error("up should be enabled at x=0")
	}
}

func TestPredicateReferenceErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"forward ref", "program p\nvar x : 0..1\npred A :: B\npred B :: x == 0", "undeclared identifier"},
		{"self ref", "program p\nvar x : 0..1\npred A :: A | x == 0", "undeclared identifier"},
		{"dup pred", "program p\nvar x : 0..1\npred A :: x == 0\npred A :: x == 1", "duplicate predicate"},
		{"pred/var clash", "program p\nvar A : bool\npred A :: A", "same name as a variable"},
		{"pred as assign target", "program p\nvar x : 0..1\npred A :: x == 0\naction a :: true -> A := 1", "undeclared variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAndCompile(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCompiledActionWrites(t *testing.T) {
	f, err := ParseAndCompile(`
program p
var x : 0..1
var y : bool
action both :: true -> x := ?, y := !y
action nop  :: true -> skip
`)
	if err != nil {
		t.Fatal(err)
	}
	both := f.Program.Action(0)
	if len(both.Writes) != 2 || both.Writes[0] != "x" || both.Writes[1] != "y" {
		t.Errorf("both.Writes = %v, want [x y]", both.Writes)
	}
	nop := f.Program.Action(1)
	if nop.Writes == nil || len(nop.Writes) != 0 {
		t.Errorf("nop.Writes = %v, want an empty non-nil slice", nop.Writes)
	}
}
