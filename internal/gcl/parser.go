package gcl

// Recursive-descent parser for the guarded-command language.

type parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxExprDepth bounds expression nesting. The recursive-descent parser (and
// the expression compiler walking its output) recurse once per nesting
// level, so without a bound an adversarial input — kilobytes of '(' or '!' —
// exhausts the stack instead of failing with a syntax error.
const maxExprDepth = 512

// descend enters one nesting level, failing when the bound is exceeded.
// Every call must be paired with ascend on the non-error path.
func (p *parser) descend(t Token) error {
	p.depth++
	if p.depth > maxExprDepth {
		return errAt(t.Line, t.Col, "expression nests deeper than %d levels", maxExprDepth)
	}
	return nil
}

func (p *parser) ascend() { p.depth-- }

// Parse lexes and parses a source file.
func Parse(src string) (*FileAST, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

// ParseExpr lexes and parses a single expression — e.g. a ranking-function
// component supplied on the dctl prove command line. The whole input must
// be consumed.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind != EOF {
		return nil, errAt(t.Line, t.Col, "unexpected %s %q after expression", t.Kind, t.Text)
	}
	return e, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

// at converts a token's position into an AST Pos.
func at(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t.Line, t.Col, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) file() (*FileAST, error) {
	f := &FileAST{}
	if _, err := p.expect(KWPROGRAM); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	f.Name = name.Text
	for p.cur().Kind != EOF {
		switch t := p.cur(); t.Kind {
		case KWVAR:
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, d)
		case KWPRED:
			d, err := p.predDecl()
			if err != nil {
				return nil, err
			}
			f.Preds = append(f.Preds, d)
		case KWACTION:
			d, err := p.actionDecl(KWACTION)
			if err != nil {
				return nil, err
			}
			f.Actions = append(f.Actions, d)
		case KWFAULT:
			d, err := p.actionDecl(KWFAULT)
			if err != nil {
				return nil, err
			}
			f.Faults = append(f.Faults, d)
		case KWDETECTOR, KWCORRECTOR:
			d, err := p.componentDecl()
			if err != nil {
				return nil, err
			}
			f.Components = append(f.Components, d)
		case KWSPAN:
			d, err := p.spanDecl()
			if err != nil {
				return nil, err
			}
			f.Spans = append(f.Spans, d)
		default:
			return nil, errAt(t.Line, t.Col, "expected declaration ('var', 'pred', 'action', 'fault', 'detector', 'corrector', or 'span'), found %s %q", t.Kind, t.Text)
		}
	}
	return f, nil
}

func (p *parser) varDecl() (VarDecl, error) {
	kw := p.next() // var
	name, err := p.expect(IDENT)
	if err != nil {
		return VarDecl{}, err
	}
	if _, err := p.expect(COLON); err != nil {
		return VarDecl{}, err
	}
	ty, err := p.typeExpr()
	if err != nil {
		return VarDecl{}, err
	}
	return VarDecl{Name: name.Text, Type: ty, At: at(kw)}, nil
}

func (p *parser) typeExpr() (TypeExpr, error) {
	switch t := p.cur(); t.Kind {
	case KWBOOL:
		p.pos++
		return TypeExpr{Kind: TypeBool, At: at(t)}, nil
	case NUMBER:
		lo := p.next()
		if _, err := p.expect(DOTDOT); err != nil {
			return TypeExpr{}, err
		}
		hi, err := p.expect(NUMBER)
		if err != nil {
			return TypeExpr{}, err
		}
		if hi.Num < lo.Num {
			return TypeExpr{}, errAt(lo.Line, lo.Col, "empty range %d..%d", lo.Num, hi.Num)
		}
		return TypeExpr{Kind: TypeRange, Lo: lo.Num, Hi: hi.Num, At: at(lo)}, nil
	case KWENUM:
		p.pos++
		if _, err := p.expect(LPAREN); err != nil {
			return TypeExpr{}, err
		}
		var names []string
		for {
			id, err := p.expect(IDENT)
			if err != nil {
				return TypeExpr{}, err
			}
			names = append(names, id.Text)
			if p.cur().Kind != COMMA {
				break
			}
			p.pos++
		}
		if _, err := p.expect(RPAREN); err != nil {
			return TypeExpr{}, err
		}
		return TypeExpr{Kind: TypeEnum, Names: names, At: at(t)}, nil
	default:
		return TypeExpr{}, errAt(t.Line, t.Col, "expected type ('bool', range, or 'enum'), found %s", t.Kind)
	}
}

// componentDecl parses 'detector NAME [: v1, v2, ...]' or
// 'corrector NAME [: v1, v2, ...]'.
func (p *parser) componentDecl() (ComponentDecl, error) {
	kw := p.next() // detector | corrector
	kind := DetectorComponent
	if kw.Kind == KWCORRECTOR {
		kind = CorrectorComponent
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return ComponentDecl{}, err
	}
	d := ComponentDecl{Kind: kind, Name: name.Text, At: at(kw)}
	if p.cur().Kind != COLON {
		return d, nil
	}
	p.pos++
	d.Scope, err = p.scopeVars()
	return d, err
}

// spanDecl parses 'span v1, v2, ...'.
func (p *parser) spanDecl() (SpanDecl, error) {
	kw := p.next() // span
	vars, err := p.scopeVars()
	if err != nil {
		return SpanDecl{}, err
	}
	return SpanDecl{Vars: vars, At: at(kw)}, nil
}

// scopeVars parses a comma-separated, non-empty variable name list.
func (p *parser) scopeVars() ([]ScopeVar, error) {
	var vars []ScopeVar
	for {
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		vars = append(vars, ScopeVar{Name: id.Text, At: at(id)})
		if p.cur().Kind != COMMA {
			return vars, nil
		}
		p.pos++
	}
}

func (p *parser) predDecl() (PredDecl, error) {
	kw := p.next() // pred
	name, err := p.expect(IDENT)
	if err != nil {
		return PredDecl{}, err
	}
	if _, err := p.expect(DCOLON); err != nil {
		return PredDecl{}, err
	}
	e, err := p.expr()
	if err != nil {
		return PredDecl{}, err
	}
	return PredDecl{Name: name.Text, Expr: e, At: at(kw)}, nil
}

func (p *parser) actionDecl(kind Kind) (ActionDecl, error) {
	kw := p.next() // action | fault
	name, err := p.expect(IDENT)
	if err != nil {
		return ActionDecl{}, err
	}
	if _, err := p.expect(DCOLON); err != nil {
		return ActionDecl{}, err
	}
	guard, err := p.expr()
	if err != nil {
		return ActionDecl{}, err
	}
	if _, err := p.expect(ARROW); err != nil {
		return ActionDecl{}, err
	}
	d := ActionDecl{Name: name.Text, Guard: guard, At: at(kw)}
	if p.cur().Kind == KWSKIP {
		p.pos++
		return d, nil
	}
	for {
		target, err := p.expect(IDENT)
		if err != nil {
			return ActionDecl{}, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return ActionDecl{}, err
		}
		a := Assign{Var: target.Text, At: at(target)}
		if p.cur().Kind == QUESTION {
			p.pos++ // '?' = any value
		} else {
			e, err := p.expr()
			if err != nil {
				return ActionDecl{}, err
			}
			a.Expr = e
		}
		d.Assigns = append(d.Assigns, a)
		if p.cur().Kind != COMMA {
			break
		}
		p.pos++
	}
	return d, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := imp
//	imp     := or ( '=>' imp )?              (right associative)
//	or      := and ( '|' and )*
//	and     := cmp ( '&' cmp )*
//	cmp     := sum ( (==|!=|<|<=|>|>=) sum )?
//	sum     := term ( (+|-) term )*
//	term    := unary ( (*|%) unary )*
//	unary   := (!|-) unary | atom
//	atom    := literal | ident | '(' expr ')'
func (p *parser) expr() (Expr, error) { return p.impExpr() }

func (p *parser) impExpr() (Expr, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind == IMPLIES {
		p.pos++
		if err := p.descend(t); err != nil {
			return nil, err
		}
		r, err := p.impExpr()
		if err != nil {
			return nil, err
		}
		p.ascend()
		return &Binary{Op: IMPLIES, L: l, R: r, At: at(t)}, nil
	}
	return l, nil
}

func (p *parser) orExpr() (Expr, error) {
	return p.binaryChain(p.andExpr, OR)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binaryChain(p.cmpExpr, AND)
}

func (p *parser) binaryChain(sub func() (Expr, error), op Kind) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == op {
		t := p.next()
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, At: at(t)}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	switch t := p.cur(); t.Kind {
	case EQ, NEQ, LT, LE, GT, GE:
		p.pos++
		r, err := p.sumExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.Kind, L: l, R: r, At: at(t)}, nil
	}
	return l, nil
}

func (p *parser) sumExpr() (Expr, error) {
	l, err := p.termExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != PLUS && t.Kind != MINUS {
			return l, nil
		}
		p.pos++
		r, err := p.termExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Kind, L: l, R: r, At: at(t)}
	}
}

func (p *parser) termExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != STAR && t.Kind != PERCENT {
			return l, nil
		}
		p.pos++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.Kind, L: l, R: r, At: at(t)}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case NOT, MINUS:
		p.pos++
		if err := p.descend(t); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		p.ascend()
		return &Unary{Op: t.Kind, X: x, At: at(t)}, nil
	}
	return p.atom()
}

func (p *parser) atom() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case KWTRUE:
		p.pos++
		return &BoolLit{Value: true, At: at(t)}, nil
	case KWFALSE:
		p.pos++
		return &BoolLit{Value: false, At: at(t)}, nil
	case NUMBER:
		p.pos++
		return &IntLit{Value: t.Num, At: at(t)}, nil
	case IDENT:
		p.pos++
		return &Ref{Name: t.Text, At: at(t)}, nil
	case LPAREN:
		p.pos++
		if err := p.descend(t); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.ascend()
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(t.Line, t.Col, "expected expression, found %s %q", t.Kind, t.Text)
	}
}
