package gcl

import (
	"strings"
	"testing"
)

// The component/span declarations are static-analysis metadata: they must
// parse, resolve, and round-trip through Compile without changing the
// program's semantics.

const componentSrc = `
program watched

var x     : 0..2
var alarm : bool
var t     : 0..3

pred Legit :: x == 0

detector mon : alarm, t
span x

action step      :: x < 2      -> x := x + 1
action mon.tick  :: true       -> t := (t + 1) % 4
action mon.watch :: x == 0     -> alarm := true

fault corrupt :: true -> x := ?
`

func TestComponentDecls(t *testing.T) {
	f, err := ParseAndCompile(componentSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ast := f.AST
	if len(ast.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(ast.Components))
	}
	c := ast.Components[0]
	if c.Kind != DetectorComponent || c.Name != "mon" {
		t.Fatalf("component = %v %q", c.Kind, c.Name)
	}
	if len(c.Scope) != 2 || c.Scope[0].Name != "alarm" || c.Scope[1].Name != "t" {
		t.Fatalf("scope = %+v", c.Scope)
	}
	if !c.At.IsValid() || !c.Scope[0].At.IsValid() {
		t.Fatalf("component positions not set: %+v", c)
	}
	if len(ast.Spans) != 1 || len(ast.Spans[0].Vars) != 1 || ast.Spans[0].Vars[0].Name != "x" {
		t.Fatalf("spans = %+v", ast.Spans)
	}
	// The declarations change nothing about the compiled program.
	if got := f.Program.NumActions(); got != 3 {
		t.Fatalf("actions = %d, want 3", got)
	}
}

func TestCorrectorDecl(t *testing.T) {
	src := `
program fixer
var data : bool
corrector fix : data
action fix.repair :: !data -> data := true
`
	f, err := ParseAndCompile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := f.AST.Components[0]
	if c.Kind != CorrectorComponent || c.Name != "fix" || len(c.Scope) != 1 {
		t.Fatalf("component = %+v", c)
	}
	// A scopeless component is also legal.
	if _, err := ParseAndCompile("program p\nvar x : bool\ndetector d\naction d.a :: x -> skip\n"); err != nil {
		t.Fatalf("scopeless detector: %v", err)
	}
}

func TestComponentDeclErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"program p\nvar x : bool\ndetector d : y\n", `undeclared variable "y"`},
		{"program p\nvar x : bool\nspan y\n", `undeclared variable "y"`},
		{"program p\nvar x : bool\ndetector d\ncorrector d : x\n", `duplicate component "d"`},
		{"program p\nvar x : bool\ndetector d :\n", "expected identifier"},
		{"program p\nvar x : bool\nspan\n", "expected identifier"},
	}
	for _, tc := range cases {
		_, err := ParseAndCompile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}
