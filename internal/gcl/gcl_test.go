package gcl

import (
	"errors"
	"strings"
	"testing"

	"detcorr/internal/fault"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

const memaccessSrc = `
# The paper's running example (Figures 1-3) in GCL form.
program memaccess

var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)
var z1      : bool

pred X1 :: present
pred U1 :: z1 => present
pred S  :: present
pred DataCorrect :: (val == 0 & data == v0) | (val == 1 & data == v1)

action restore :: !present      -> present := true
action detect  :: present & !z1 -> z1 := true
action read0   :: z1 & val == 0 -> data := v0
action read1   :: z1 & val == 1 -> data := v1

fault pageout  :: present & !z1 -> present := false
`

func compileMem(t *testing.T) *File {
	t.Helper()
	f, err := ParseAndCompile(memaccessSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return f
}

func TestCompileMemaccess(t *testing.T) {
	f := compileMem(t)
	if f.Name != "memaccess" {
		t.Errorf("name %q", f.Name)
	}
	if f.Schema.NumVars() != 4 {
		t.Errorf("want 4 variables, got %d", f.Schema.NumVars())
	}
	if f.Program.NumActions() != 4 {
		t.Errorf("want 4 actions, got %d", f.Program.NumActions())
	}
	if len(f.Faults.Actions) != 1 {
		t.Errorf("want 1 fault action, got %d", len(f.Faults.Actions))
	}
	for _, p := range []string{"X1", "U1", "S", "DataCorrect"} {
		if _, ok := f.Pred(p); !ok {
			t.Errorf("missing predicate %q", p)
		}
	}
}

func TestCompiledProgramIsMaskingTolerant(t *testing.T) {
	// The compiled GCL program is checked end-to-end with the theory: the
	// masking structure of Figure 3 holds for the parsed program too.
	f := compileMem(t)
	s, _ := f.Pred("S")
	dataCorrect, _ := f.Pred("DataCorrect")
	prob := spec.Problem{
		Name: "SPEC_mem",
		Safety: spec.NeverStep("data never set incorrectly", func(from, to state.State) bool {
			d0, d1 := from.GetName("data"), to.GetName("data")
			if d0 == d1 || d1 == 0 {
				return d0 != d1
			}
			return d1 != to.GetName("val")+1
		}),
		Live: []spec.LeadsTo{{Name: "data eventually correct", P: state.True, Q: dataCorrect}},
	}
	rep := fault.CheckMasking(f.Program, f.Faults, prob, s)
	if !rep.OK() {
		t.Errorf("compiled memaccess should be masking tolerant: %v", rep.Err)
	}
}

func TestRangeOffsets(t *testing.T) {
	f, err := ParseAndCompile(`
program counter
var x : 3..5
pred AtTop :: x == 5
action up :: x < 5 -> x := x + 1
`)
	if err != nil {
		t.Fatal(err)
	}
	// Initial encoded value 0 corresponds to 3.
	st := f.Schema.StateAt(0)
	atTop, _ := f.Pred("AtTop")
	if atTop.Holds(st) {
		t.Error("x=3 should not satisfy AtTop")
	}
	a := f.Program.Action(0)
	for i := 0; i < 2; i++ {
		st = a.Next(st)[0]
	}
	if !atTop.Holds(st) {
		t.Errorf("after two increments x should be 5, state %s", st)
	}
	if a.Enabled(st) {
		t.Error("up should be disabled at x=5")
	}
}

func TestNondeterministicAssignment(t *testing.T) {
	f, err := ParseAndCompile(`
program nd
var x : 0..2
var y : bool
action scramble :: true -> x := ?, y := ?
`)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Schema.StateAt(0)
	succ := f.Program.Action(0).Next(st)
	if len(succ) != 6 {
		t.Errorf("want 3*2 = 6 successors, got %d", len(succ))
	}
}

func TestSimultaneousAssignment(t *testing.T) {
	f, err := ParseAndCompile(`
program swap
var a : 0..1
var b : 0..1
action swap :: a != b -> a := b, b := a
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := state.FromMap(f.Schema, map[string]int{"a": 0, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	next := f.Program.Action(0).Next(st)[0]
	if next.GetName("a") != 1 || next.GetName("b") != 0 {
		t.Errorf("simultaneous swap failed: %s", next)
	}
}

func TestModuloIsTotal(t *testing.T) {
	f, err := ParseAndCompile(`
program mod
var x : 0..3
action cycle :: true -> x := (x + 1) % 4
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := state.FromMap(f.Schema, map[string]int{"x": 3})
	if err != nil {
		t.Fatal(err)
	}
	if v := f.Program.Action(0).Next(st)[0].GetName("x"); v != 0 {
		t.Errorf("(3+1)%%4 = %d, want 0", v)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"lex", "program p\nvar x : bool\naction a :: x -> x := $", "unexpected character"},
		{"no program", "var x : bool", "expected 'program'"},
		{"dup var", "program p\nvar x : bool\nvar x : bool", "duplicate variable"},
		{"undeclared", "program p\naction a :: y -> skip", "undeclared identifier"},
		{"bad guard", "program p\nvar x : 0..1\naction a :: x -> skip", "not boolean"},
		{"type clash", "program p\nvar x : 0..1\nvar b : bool\naction a :: b -> x := b", "expected int, got bool"},
		{"empty range", "program p\nvar x : 5..3", "empty range"},
		{"double assign", "program p\nvar x : bool\naction a :: true -> x := true, x := false", "assigned twice"},
		{"bounds", "program p\nvar x : 0..1\naction a :: true -> x := x + 1", "outside its domain"},
		{"enum clash", "program p\nvar a : enum(u, v)\nvar b : enum(v, u)", "redeclared with a different index"},
		{"var/enum clash", "program p\nvar v : bool\nvar a : enum(u, v)", "both a variable and an enum value"},
		{"cmp mismatch", "program p\nvar x : 0..1\nvar b : bool\npred q :: x == b", "compares int with bool"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAndCompile(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseAndCompile("program p\nvar x : bool\naction a :: x -> x := $")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SyntaxError, got %T (%v)", err, err)
	}
	if serr.Line != 3 {
		t.Errorf("error line %d, want 3", serr.Line)
	}
}

func TestSkipAction(t *testing.T) {
	f, err := ParseAndCompile(`
program idle
var x : bool
action nothing :: x -> skip
`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := state.FromMap(f.Schema, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	succ := f.Program.Action(0).Next(st)
	if len(succ) != 1 || !succ[0].Equal(st) {
		t.Errorf("skip should yield the unchanged state")
	}
}

func TestCommentsAndOperators(t *testing.T) {
	f, err := ParseAndCompile(`
program ops  # trailing comment
var x : 0..7
# full-line comment
pred p1 :: x * 2 >= 4 & x != 7 | x == 0
pred p2 :: x - 1 < 3 => x <= 3
action a :: x > 0 & x < 7 -> x := x - 1
`)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := f.Pred("p1")
	st, _ := state.FromMap(f.Schema, map[string]int{"x": 3})
	if !p1.Holds(st) {
		t.Error("p1 should hold at x=3")
	}
}
