// Package gcl implements a small guarded-command language so that programs,
// fault classes and predicates can be written in (an ASCII rendering of) the
// paper's own notation and checked with the dctl tool:
//
//	program memaccess
//
//	var present : bool
//	var val     : 0..1
//	var data    : enum(bot, v0, v1)
//	var z1      : bool
//
//	pred X1 :: present
//	pred U1 :: z1 => present
//
//	action detect  :: present & !z1 -> z1 := true
//	action read    :: z1            -> data := val + 1
//
//	fault pageout  :: present & !z1 -> present := false
//
// The language has finite domains only (bool, integer ranges, enums),
// boolean and integer expressions, simultaneous assignment, and the
// nondeterministic value `?` (any value of the assigned variable's domain).
package gcl

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota + 1
	IDENT
	NUMBER
	KWPROGRAM   // program
	KWVAR       // var
	KWACTION    // action
	KWFAULT     // fault
	KWPRED      // pred
	KWBOOL      // bool
	KWENUM      // enum
	KWTRUE      // true
	KWFALSE     // false
	KWSKIP      // skip
	KWDETECTOR  // detector
	KWCORRECTOR // corrector
	KWSPAN      // span
	DCOLON      // ::
	COLON       // :
	ARROW       // ->
	ASSIGN      // :=
	COMMA       // ,
	LPAREN      // (
	RPAREN      // )
	DOTDOT      // ..
	OR          // |
	AND         // &
	NOT         // !
	IMPLIES     // =>
	EQ          // ==
	NEQ         // !=
	LT          // <
	LE          // <=
	GT          // >
	GE          // >=
	PLUS        // +
	MINUS       // -
	STAR        // *
	PERCENT     // %
	QUESTION    // ?
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	KWPROGRAM: "'program'", KWVAR: "'var'", KWACTION: "'action'",
	KWFAULT: "'fault'", KWPRED: "'pred'", KWBOOL: "'bool'", KWENUM: "'enum'",
	KWTRUE: "'true'", KWFALSE: "'false'", KWSKIP: "'skip'",
	KWDETECTOR: "'detector'", KWCORRECTOR: "'corrector'", KWSPAN: "'span'",
	DCOLON: "'::'", COLON: "':'", ARROW: "'->'", ASSIGN: "':='",
	COMMA: "','", LPAREN: "'('", RPAREN: "')'", DOTDOT: "'..'",
	OR: "'|'", AND: "'&'", NOT: "'!'", IMPLIES: "'=>'",
	EQ: "'=='", NEQ: "'!='", LT: "'<'", LE: "'<='", GT: "'>'", GE: "'>='",
	PLUS: "'+'", MINUS: "'-'", STAR: "'*'", PERCENT: "'%'", QUESTION: "'?'",
}

// String renders the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind Kind
	Text string
	Num  int
	Line int
	Col  int
}

var keywords = map[string]Kind{
	"program": KWPROGRAM, "var": KWVAR, "action": KWACTION,
	"fault": KWFAULT, "pred": KWPRED, "bool": KWBOOL, "enum": KWENUM,
	"true": KWTRUE, "false": KWFALSE, "skip": KWSKIP,
	"detector": KWDETECTOR, "corrector": KWCORRECTOR, "span": KWSPAN,
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("gcl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes the source. Comments run from '#' to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(k Kind, text string, num int, width int) {
		toks = append(toks, Token{Kind: k, Text: text, Num: num, Line: line, Col: col})
		col += width
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			i++
			line++
			col = 1
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[word]; ok {
				emit(k, word, 0, j-i)
			} else {
				emit(IDENT, word, 0, j-i)
			}
			i = j
		case c >= '0' && c <= '9':
			j := i
			num := 0
			for j < n && src[j] >= '0' && src[j] <= '9' {
				num = num*10 + int(src[j]-'0')
				j++
			}
			// 18 digits always fit in an int64; longer literals would
			// silently overflow num above.
			if j-i > 18 {
				return nil, errAt(line, col, "number literal %q too large", src[i:j])
			}
			emit(NUMBER, src[i:j], num, j-i)
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "::":
				emit(DCOLON, two, 0, 2)
				i += 2
				continue
			case ":=":
				emit(ASSIGN, two, 0, 2)
				i += 2
				continue
			case "->":
				emit(ARROW, two, 0, 2)
				i += 2
				continue
			case "..":
				emit(DOTDOT, two, 0, 2)
				i += 2
				continue
			case "=>":
				emit(IMPLIES, two, 0, 2)
				i += 2
				continue
			case "==":
				emit(EQ, two, 0, 2)
				i += 2
				continue
			case "!=":
				emit(NEQ, two, 0, 2)
				i += 2
				continue
			case "<=":
				emit(LE, two, 0, 2)
				i += 2
				continue
			case ">=":
				emit(GE, two, 0, 2)
				i += 2
				continue
			case "||":
				emit(OR, two, 0, 2)
				i += 2
				continue
			case "&&":
				emit(AND, two, 0, 2)
				i += 2
				continue
			}
			single := map[byte]Kind{
				':': COLON, ',': COMMA, '(': LPAREN, ')': RPAREN,
				'|': OR, '&': AND, '!': NOT, '<': LT, '>': GT,
				'+': PLUS, '-': MINUS, '*': STAR, '%': PERCENT, '?': QUESTION,
			}
			if k, ok := single[c]; ok {
				emit(k, string(c), 0, 1)
				i++
				continue
			}
			return nil, errAt(line, col, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}
