package gcl

import (
	"testing"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// kernelSrcs are GCL programs chosen to cover every lowering path: booleans,
// ranges with offsets, enums, total modulo, deterministic simultaneous
// assignment, and single/multiple '?' wildcards.
var kernelSrcs = map[string]string{
	"memaccess": memaccessSrc,
	"offsets": `
program offsets
var a : 2..5
var b : 1..3
action up   :: a < 5            -> a := a + 1
action mix  :: a == 5 & b < 3   -> a := 2, b := b + 1
action mod  :: b == 3           -> b := (a + b) % 3 + 1
`,
	"wild": `
program wild
var x : 0..2
var y : bool
var z : 0..1
action scramble :: x == 0 -> x := ?, z := ?
action swapwild :: x > 0  -> y := ?, x := x - 1
action settle   :: y      -> y := false, z := x % 2
`,
	"simul": `
program simul
var x : 0..3
var y : 0..3
action swap :: x != y -> x := y, y := x
action wrap :: x == y -> x := (x + 1) % 4
`,
}

// TestKernelMatchesSuccessors checks, state by state over the full space,
// that the compiled kernel emits exactly the transitions Program.Successors
// does — same targets, same actions, same order — for the plain program, the
// fault-composed program, and a restricted composition (which exercises the
// hybrid closure-guard/native-statement path).
func TestKernelMatchesSuccessors(t *testing.T) {
	for name, src := range kernelSrcs {
		t.Run(name, func(t *testing.T) {
			f, err := ParseAndCompile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			progs := []*guarded.Program{f.Program}
			if !f.Faults.Empty() {
				comp, _, err := fault.Compose(f.Program, f.Faults)
				if err != nil {
					t.Fatalf("compose: %v", err)
				}
				progs = append(progs, comp)
			}
			notAll := state.Pred("notTop", func(s state.State) bool {
				return s.Get(0) != s.Schema().Var(0).Domain.Size-1
			})
			progs = append(progs, guarded.Restrict(notAll, f.Program))
			for _, p := range progs {
				checkKernelAgainstProgram(t, p)
			}
		})
	}
}

func checkKernelAgainstProgram(t *testing.T, p *guarded.Program) {
	t.Helper()
	k := guarded.Compile(p)
	sc := k.NewScratch()
	var succ []guarded.Succ
	err := p.Schema().ForEachState(func(s state.State) bool {
		idx := s.Index()
		succ = sc.Transitions(idx, succ[:0])
		want := p.Successors(s)
		if len(succ) != len(want) {
			t.Errorf("%s: state %s: kernel %d transitions, closures %d", p.Name(), s, len(succ), len(want))
			return false
		}
		for i, tr := range want {
			if int(succ[i].Action) != tr.Action || succ[i].To != tr.To.Index() {
				t.Errorf("%s: state %s: transition %d: kernel (%d,%d), closures (%d,%d)",
					p.Name(), s, i, succ[i].Action, succ[i].To, tr.Action, tr.To.Index())
				return false
			}
		}
		// Step must agree with Transitions stripped of actions, and the
		// per-action Enabled probe with the guard closures.
		steps := sc.Step(idx, nil)
		for i := range steps {
			if steps[i] != succ[i].To {
				t.Errorf("%s: state %s: Step[%d]=%d, Transitions=%d", p.Name(), s, i, steps[i], succ[i].To)
				return false
			}
		}
		sc.Load(idx)
		for a := 0; a < p.NumActions(); a++ {
			if got, want := sc.Enabled(a), p.Action(a).Enabled(s); got != want {
				t.Errorf("%s: state %s: action %d enabled: kernel %v, closure %v", p.Name(), s, a, got, want)
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("%s: enumerate: %v", p.Name(), err)
	}
}

// TestKernelNative ensures the GCL compiler actually produces native
// bytecode for ordinary programs — otherwise the allocation guarantees test
// a path nobody runs.
func TestKernelNative(t *testing.T) {
	f, err := ParseAndCompile(memaccessSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := guarded.Compile(f.Program)
	for a := 0; a < k.NumActions(); a++ {
		if !k.Native(a) {
			t.Errorf("action %d (%s) not native", a, f.Program.Action(a).Name)
		}
	}
	// Restriction keeps the statement native but demotes the guard.
	restricted := guarded.Restrict(state.Pred("z", func(state.State) bool { return true }), f.Program)
	rk := guarded.Compile(restricted)
	for a := 0; a < rk.NumActions(); a++ {
		if rk.Native(a) {
			t.Errorf("restricted action %d unexpectedly fully native", a)
		}
		if restricted.Action(a).Compiled == nil {
			t.Errorf("restricted action %d lost its compiled statement", a)
		}
	}
}

// TestKernelStepZeroAllocs is the allocation-regression gate for the
// tentpole: on a mid-size GCL program (token-ring style, three counters mod
// 5 plus wildcards) the native kernel path must do zero heap allocations per
// transition batch once buffers are warm.
func TestKernelStepZeroAllocs(t *testing.T) {
	f, err := ParseAndCompile(`
program ring3
var c0 : 0..4
var c1 : 0..4
var c2 : 0..4
action t0 :: c0 == c2      -> c0 := (c2 + 1) % 5
action t1 :: c1 != c0      -> c1 := c0
action t2 :: c2 != c1      -> c2 := c1
fault  scramble :: true    -> c1 := ?
`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, _, err := fault.Compose(f.Program, f.Faults)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	k := guarded.Compile(p)
	sc := k.NewScratch()
	n, ok := p.Schema().NumStates()
	if !ok {
		t.Fatal("schema not indexable")
	}
	idxBuf := make([]uint64, 0, 64)
	succBuf := make([]guarded.Succ, 0, 64)
	// Warm the scratch (succBuf inside Step grows once).
	for idx := uint64(0); idx < n; idx++ {
		idxBuf = sc.Step(idx, idxBuf[:0])
		succBuf = sc.Transitions(idx, succBuf[:0])
	}
	var idx uint64
	allocs := testing.AllocsPerRun(1000, func() {
		idxBuf = sc.Step(idx%n, idxBuf[:0])
		succBuf = sc.Transitions(idx%n, succBuf[:0])
		idx++
	})
	if allocs != 0 {
		t.Errorf("kernel path: %v allocs per step batch, want 0", allocs)
	}
}
