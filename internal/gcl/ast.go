package gcl

// AST node definitions for the guarded-command language.

// Pos is a 1-based line/column source position. The zero Pos means the
// position is unknown (hand-built AST nodes).
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position was set by the parser.
func (p Pos) IsValid() bool { return p.Line > 0 }

// FileAST is a parsed source file.
type FileAST struct {
	Name       string
	Vars       []VarDecl
	Preds      []PredDecl
	Actions    []ActionDecl    // program actions
	Faults     []ActionDecl    // fault actions
	Components []ComponentDecl // declared detector/corrector components
	Spans      []SpanDecl      // declared fault spans (union when several)
}

// ComponentKind distinguishes the two fault-tolerance component roles of
// the paper (Section 4): detectors observe, correctors repair.
type ComponentKind int

// Component roles.
const (
	DetectorComponent ComponentKind = iota + 1
	CorrectorComponent
)

// String renders the component kind as its keyword.
func (k ComponentKind) String() string {
	if k == CorrectorComponent {
		return "corrector"
	}
	return "detector"
}

// ComponentDecl declares a named detector or corrector component:
//
//	detector mon : alarm, t
//	corrector fix : data
//
// An action belongs to the component when its name is prefixed with the
// component name and a dot (mon.tick, fix.repair). Scope lists the
// variables the component is allowed to write — the detector's private
// state, or the corrector's correction scope. Scope is optional for
// detectors (defaulting to "variables the base program neither reads nor
// writes") and meaningful for correctors only when declared.
type ComponentDecl struct {
	Kind  ComponentKind
	Name  string
	Scope []ScopeVar
	At    Pos
}

// SpanDecl declares the variables the file's fault actions may write:
//
//	span present, z1
//
// Fault writes outside the declared span are flagged by dclint (DC203).
type SpanDecl struct {
	Vars []ScopeVar
	At   Pos
}

// ScopeVar is one variable name in a component scope or fault span, with
// its own position so diagnostics can point at the exact name.
type ScopeVar struct {
	Name string
	At   Pos
}

// VarDecl declares a finite-domain variable.
type VarDecl struct {
	Name string
	Type TypeExpr
	At   Pos
}

// TypeKind enumerates the declared domain shapes.
type TypeKind int

// Declared domain shapes.
const (
	TypeBool TypeKind = iota + 1
	TypeRange
	TypeEnum
)

// TypeExpr is a domain declaration: bool, lo..hi, or enum(names...).
type TypeExpr struct {
	Kind   TypeKind
	Lo, Hi int      // TypeRange
	Names  []string // TypeEnum
	At     Pos
}

// PredDecl names a boolean expression for use as invariant/specification
// predicate. Predicates may reference previously declared predicates.
type PredDecl struct {
	Name string
	Expr Expr
	At   Pos
}

// ActionDecl is a guarded command: Name :: Guard -> Assignments.
type ActionDecl struct {
	Name    string
	Guard   Expr
	Assigns []Assign // empty means skip
	At      Pos
}

// Assign is one simultaneous assignment target.
type Assign struct {
	Var  string
	Expr Expr // nil means '?': any value of the variable's domain
	At   Pos
}

// Expr is an expression node. Every node records the position of its
// principal token so diagnostics can point at exact source locations.
type Expr interface {
	exprNode()
	Position() Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	At    Pos
}

// IntLit is a numeric literal.
type IntLit struct {
	Value int
	At    Pos
}

// Ref names a variable, an enum value, or a previously declared predicate.
type Ref struct {
	Name string
	At   Pos
}

// Unary applies !, or unary minus.
type Unary struct {
	Op Kind
	X  Expr
	At Pos
}

// Binary applies a binary operator; At is the operator's position.
type Binary struct {
	Op   Kind
	L, R Expr
	At   Pos
}

func (*BoolLit) exprNode() {}
func (*IntLit) exprNode()  {}
func (*Ref) exprNode()     {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}

// Position returns the node's source position.
func (n *BoolLit) Position() Pos { return n.At }

// Position returns the node's source position.
func (n *IntLit) Position() Pos { return n.At }

// Position returns the node's source position.
func (n *Ref) Position() Pos { return n.At }

// Position returns the node's source position.
func (n *Unary) Position() Pos { return n.At }

// Position returns the operator's source position.
func (n *Binary) Position() Pos { return n.At }
