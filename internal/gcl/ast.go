package gcl

// AST node definitions for the guarded-command language.

// FileAST is a parsed source file.
type FileAST struct {
	Name    string
	Vars    []VarDecl
	Preds   []PredDecl
	Actions []ActionDecl // program actions
	Faults  []ActionDecl // fault actions
}

// VarDecl declares a finite-domain variable.
type VarDecl struct {
	Name string
	Type TypeExpr
	Line int
}

// TypeKind enumerates the declared domain shapes.
type TypeKind int

// Declared domain shapes.
const (
	TypeBool TypeKind = iota + 1
	TypeRange
	TypeEnum
)

// TypeExpr is a domain declaration: bool, lo..hi, or enum(names...).
type TypeExpr struct {
	Kind   TypeKind
	Lo, Hi int      // TypeRange
	Names  []string // TypeEnum
}

// PredDecl names a boolean expression for use as invariant/specification
// predicate.
type PredDecl struct {
	Name string
	Expr Expr
	Line int
}

// ActionDecl is a guarded command: Name :: Guard -> Assignments.
type ActionDecl struct {
	Name    string
	Guard   Expr
	Assigns []Assign // empty means skip
	Line    int
}

// Assign is one simultaneous assignment target.
type Assign struct {
	Var  string
	Expr Expr // nil means '?': any value of the variable's domain
	Line int
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// BoolLit is true/false.
type BoolLit struct{ Value bool }

// IntLit is a numeric literal.
type IntLit struct{ Value int }

// Ref names a variable or an enum value.
type Ref struct {
	Name      string
	Line, Col int
}

// Unary applies !, or unary minus.
type Unary struct {
	Op Kind
	X  Expr
}

// Binary applies a binary operator.
type Binary struct {
	Op        Kind
	L, R      Expr
	Line, Col int
}

func (*BoolLit) exprNode() {}
func (*IntLit) exprNode()  {}
func (*Ref) exprNode()     {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
