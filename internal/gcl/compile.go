package gcl

import (
	"fmt"
	"math"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// File is a compiled guarded-command source: the schema, the program, the
// declared fault class, and the named predicates. AST retains the parsed
// source so exploration-free analyses (internal/prove) can re-derive the
// program text from a compiled file.
type File struct {
	Name    string
	Schema  *state.Schema
	Program *guarded.Program
	Faults  fault.Class
	Preds   map[string]state.Predicate
	AST     *FileAST
	// Src is the source text the file was compiled from, when the caller
	// came through ParseAndCompile (or set it after Compile). The revision
	// pipeline keys verdict migration on it.
	Src string
}

// Pred returns a declared predicate by name.
func (f *File) Pred(name string) (state.Predicate, bool) {
	p, ok := f.Preds[name]
	return p, ok
}

type valueType int

const (
	boolType valueType = iota + 1
	intType
)

func (t valueType) String() string {
	if t == boolType {
		return "bool"
	}
	return "int"
}

// compiled expression: evaluation closure plus its type. Booleans evaluate
// to 0/1. ops is the same expression lowered to kernel bytecode
// (guarded.Op); nil means the expression cannot be lowered (e.g. a literal
// outside int32 range) and only the closure form is available. The two forms
// must agree exactly — the difftest suite checks kernel-built graphs against
// closure-built ones.
type cexpr struct {
	typ  valueType
	eval func(state.State) int
	ops  []guarded.Op
}

// opsConst lowers an integer constant, refusing values outside int32.
func opsConst(v int) []guarded.Op {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return nil
	}
	return []guarded.Op{{Code: guarded.OpConst, A: int32(v)}}
}

// opsUnary appends a unary opcode to x's bytecode (nil-propagating).
func opsUnary(code guarded.OpCode, x []guarded.Op) []guarded.Op {
	if x == nil {
		return nil
	}
	ops := make([]guarded.Op, 0, len(x)+1)
	ops = append(ops, x...)
	return append(ops, guarded.Op{Code: code})
}

// opsBinary concatenates both operands' bytecode and appends the opcode
// (nil-propagating).
func opsBinary(code guarded.OpCode, l, r []guarded.Op) []guarded.Op {
	if l == nil || r == nil {
		return nil
	}
	ops := make([]guarded.Op, 0, len(l)+len(r)+1)
	ops = append(ops, l...)
	ops = append(ops, r...)
	return append(ops, guarded.Op{Code: code})
}

type compiler struct {
	schema *state.Schema
	varIdx map[string]int
	varOff map[string]int // range variables: domain offset (lo)
	varTyp map[string]valueType
	consts map[string]int   // enum value names
	preds  map[string]cexpr // previously compiled predicates, referenceable by name
}

// Compile type-checks a parsed file and produces the program, fault class
// and predicates. Every enabled action is bounds-checked over the full state
// space, so later exploration cannot fail on an out-of-domain write.
func Compile(ast *FileAST) (*File, error) {
	c := &compiler{
		varIdx: map[string]int{},
		varOff: map[string]int{},
		varTyp: map[string]valueType{},
		consts: map[string]int{},
		preds:  map[string]cexpr{},
	}
	vars := make([]state.Var, 0, len(ast.Vars))
	for i, d := range ast.Vars {
		if _, dup := c.varIdx[d.Name]; dup {
			return nil, errAt(d.At.Line, d.At.Col, "duplicate variable %q", d.Name)
		}
		var v state.Var
		switch d.Type.Kind {
		case TypeBool:
			v = state.BoolVar(d.Name)
			c.varTyp[d.Name] = boolType
		case TypeRange:
			v = state.Var{Name: d.Name, Domain: state.Range(d.Name, d.Type.Hi-d.Type.Lo+1)}
			c.varOff[d.Name] = d.Type.Lo
			c.varTyp[d.Name] = intType
		case TypeEnum:
			v = state.EnumVar(d.Name, d.Type.Names...)
			c.varTyp[d.Name] = intType
			for idx, name := range d.Type.Names {
				if old, dup := c.consts[name]; dup && old != idx {
					return nil, errAt(d.At.Line, d.At.Col, "enum value %q redeclared with a different index", name)
				}
				c.consts[name] = idx
			}
		default:
			return nil, errAt(d.At.Line, d.At.Col, "variable %q has unknown type", d.Name)
		}
		c.varIdx[d.Name] = i
		vars = append(vars, v)
	}
	for name := range c.consts {
		if _, clash := c.varIdx[name]; clash {
			return nil, fmt.Errorf("gcl: name %q is both a variable and an enum value", name)
		}
	}
	// Component and span declarations are static-analysis metadata (no
	// runtime semantics), but their names must still resolve so that
	// dcflow and dclint never see dangling declarations.
	seenComp := map[string]bool{}
	for _, d := range ast.Components {
		if seenComp[d.Name] {
			return nil, errAt(d.At.Line, d.At.Col, "duplicate component %q", d.Name)
		}
		seenComp[d.Name] = true
		for _, sv := range d.Scope {
			if _, ok := c.varIdx[sv.Name]; !ok {
				return nil, errAt(sv.At.Line, sv.At.Col, "component %q scope names undeclared variable %q", d.Name, sv.Name)
			}
		}
	}
	for _, sd := range ast.Spans {
		for _, sv := range sd.Vars {
			if _, ok := c.varIdx[sv.Name]; !ok {
				return nil, errAt(sv.At.Line, sv.At.Col, "span names undeclared variable %q", sv.Name)
			}
		}
	}
	schema, err := state.NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("gcl: %w", err)
	}
	c.schema = schema

	f := &File{Name: ast.Name, Schema: schema, Preds: map[string]state.Predicate{}, AST: ast}
	for _, d := range ast.Preds {
		if _, dup := c.preds[d.Name]; dup {
			return nil, errAt(d.At.Line, d.At.Col, "duplicate predicate %q", d.Name)
		}
		if _, clash := c.varIdx[d.Name]; clash {
			return nil, errAt(d.At.Line, d.At.Col, "predicate %q has the same name as a variable", d.Name)
		}
		if _, clash := c.consts[d.Name]; clash {
			return nil, errAt(d.At.Line, d.At.Col, "predicate %q has the same name as an enum value", d.Name)
		}
		ce, err := c.compileExpr(d.Expr)
		if err != nil {
			return nil, err
		}
		if ce.typ != boolType {
			return nil, errAt(d.At.Line, d.At.Col, "predicate %q is not boolean", d.Name)
		}
		c.preds[d.Name] = ce
		eval := ce.eval
		f.Preds[d.Name] = state.Pred(d.Name, func(s state.State) bool { return eval(s) != 0 })
	}

	progActs, err := c.compileActions(ast.Actions)
	if err != nil {
		return nil, err
	}
	faultActs, err := c.compileActions(ast.Faults)
	if err != nil {
		return nil, err
	}
	prog, err := guarded.NewProgram(ast.Name, schema, progActs...)
	if err != nil {
		return nil, fmt.Errorf("gcl: %w", err)
	}
	f.Program = prog
	f.Faults = fault.NewClass(ast.Name+".faults", faultActs...)
	if err := c.validateBounds(ast, append(append([]ActionDecl(nil), ast.Actions...), ast.Faults...)); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseAndCompile is the common entry point: source text to compiled file.
func ParseAndCompile(src string) (*File, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	f, err := Compile(ast)
	if err != nil {
		return nil, err
	}
	f.Src = src
	return f, nil
}

func (c *compiler) compileActions(decls []ActionDecl) ([]guarded.Action, error) {
	out := make([]guarded.Action, 0, len(decls))
	for _, d := range decls {
		a, err := c.compileAction(d)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

type cassign struct {
	varIdx int
	offset int
	size   int
	eval   func(state.State) int // nil for '?'
}

func (c *compiler) compileAction(d ActionDecl) (guarded.Action, error) {
	g, err := c.compileExpr(d.Guard)
	if err != nil {
		return guarded.Action{}, err
	}
	if g.typ != boolType {
		return guarded.Action{}, errAt(d.At.Line, d.At.Col, "guard of action %q is not boolean", d.Name)
	}
	assigns := make([]cassign, 0, len(d.Assigns))
	lowered := make([]guarded.CompiledAssign, 0, len(d.Assigns))
	canLower := true
	seen := map[string]bool{}
	for _, a := range d.Assigns {
		idx, ok := c.varIdx[a.Var]
		if !ok {
			return guarded.Action{}, errAt(a.At.Line, a.At.Col, "assignment to undeclared variable %q", a.Var)
		}
		if seen[a.Var] {
			return guarded.Action{}, errAt(a.At.Line, a.At.Col, "variable %q assigned twice in action %q", a.Var, d.Name)
		}
		seen[a.Var] = true
		ca := cassign{
			varIdx: idx,
			offset: c.varOff[a.Var],
			size:   c.schema.Var(idx).Domain.Size,
		}
		if a.Expr != nil {
			ce, err := c.compileExpr(a.Expr)
			if err != nil {
				return guarded.Action{}, err
			}
			if ce.typ != c.varTyp[a.Var] {
				return guarded.Action{}, errAt(a.At.Line, a.At.Col, "assignment to %q: expected %s, got %s",
					a.Var, c.varTyp[a.Var], ce.typ)
			}
			ca.eval = ce.eval
			if ce.ops == nil {
				canLower = false
			}
			lowered = append(lowered, guarded.CompiledAssign{Var: idx, Off: ca.offset, Expr: ce.ops})
		} else {
			lowered = append(lowered, guarded.CompiledAssign{Var: idx, Off: ca.offset, Wild: true})
		}
		assigns = append(assigns, ca)
	}
	guardEval := g.eval
	guard := state.Pred(d.Name+".guard", func(s state.State) bool { return guardEval(s) != 0 })
	next := func(s state.State) []state.State {
		// Evaluate all deterministic right-hand sides on the pre-state
		// (simultaneous assignment), then expand '?' targets.
		results := []state.State{s}
		for _, a := range assigns {
			if a.eval != nil {
				v := a.eval(s) - a.offset
				for i, r := range results {
					results[i] = r.With(a.varIdx, v)
				}
				continue
			}
			expanded := make([]state.State, 0, len(results)*a.size)
			for _, r := range results {
				for v := 0; v < a.size; v++ {
					expanded = append(expanded, r.With(a.varIdx, v))
				}
			}
			results = expanded
		}
		return results
	}
	act := guarded.Choice(d.Name, guard, next)
	act.Writes = make([]string, 0, len(d.Assigns))
	for _, a := range d.Assigns {
		act.Writes = append(act.Writes, a.Var)
	}
	// Attach the kernel bytecode form when every right-hand side lowered.
	// The guard may still be nil (not lowerable): the kernel then evaluates
	// the closure guard but executes the statement natively.
	if canLower {
		act.Compiled = &guarded.CompiledAction{Guard: g.ops, Assigns: lowered}
	}
	return act, nil
}

// validateBounds enumerates the state space and checks that every enabled
// action writes only in-domain values, so exploration never panics.
func (c *compiler) validateBounds(ast *FileAST, decls []ActionDecl) error {
	type checked struct {
		decl    ActionDecl
		guard   cexpr
		assigns []struct {
			a    Assign
			eval func(state.State) int
			lo   int
			hi   int
		}
	}
	var items []checked
	for _, d := range decls {
		g, err := c.compileExpr(d.Guard)
		if err != nil {
			return err
		}
		item := checked{decl: d, guard: g}
		for _, a := range d.Assigns {
			if a.Expr == nil {
				continue
			}
			ce, err := c.compileExpr(a.Expr)
			if err != nil {
				return err
			}
			idx := c.varIdx[a.Var]
			lo := c.varOff[a.Var]
			hi := lo + c.schema.Var(idx).Domain.Size - 1
			item.assigns = append(item.assigns, struct {
				a    Assign
				eval func(state.State) int
				lo   int
				hi   int
			}{a: a, eval: ce.eval, lo: lo, hi: hi})
		}
		items = append(items, item)
	}
	var verr error
	err := c.schema.ForEachState(func(s state.State) bool {
		for _, item := range items {
			if item.guard.eval(s) == 0 {
				continue
			}
			for _, as := range item.assigns {
				v := as.eval(s)
				if v < as.lo || v > as.hi {
					verr = errAt(as.a.At.Line, as.a.At.Col,
						"action %q assigns %d to %q, outside its domain %d..%d (at state %s)",
						item.decl.Name, v, as.a.Var, as.lo, as.hi, s)
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("gcl: bounds check: %w", err)
	}
	return verr
}

func (c *compiler) compileExpr(e Expr) (cexpr, error) {
	switch n := e.(type) {
	case *BoolLit:
		v := 0
		if n.Value {
			v = 1
		}
		return cexpr{typ: boolType, eval: func(state.State) int { return v }, ops: opsConst(v)}, nil
	case *IntLit:
		v := n.Value
		return cexpr{typ: intType, eval: func(state.State) int { return v }, ops: opsConst(v)}, nil
	case *Ref:
		if idx, ok := c.varIdx[n.Name]; ok {
			off := c.varOff[n.Name]
			typ := c.varTyp[n.Name]
			return cexpr{
				typ:  typ,
				eval: func(s state.State) int { return s.Get(idx) + off },
				ops:  []guarded.Op{{Code: guarded.OpVar, A: int32(idx), B: int32(off)}},
			}, nil
		}
		if v, ok := c.consts[n.Name]; ok {
			return cexpr{typ: intType, eval: func(state.State) int { return v }, ops: opsConst(v)}, nil
		}
		if ce, ok := c.preds[n.Name]; ok {
			return ce, nil
		}
		return cexpr{}, errAt(n.At.Line, n.At.Col, "undeclared identifier %q", n.Name)
	case *Unary:
		x, err := c.compileExpr(n.X)
		if err != nil {
			return cexpr{}, err
		}
		switch n.Op {
		case NOT:
			if x.typ != boolType {
				return cexpr{}, fmt.Errorf("gcl: '!' applied to non-boolean")
			}
			f := x.eval
			return cexpr{typ: boolType, eval: func(s state.State) int { return 1 - f(s) }, ops: opsUnary(guarded.OpNot, x.ops)}, nil
		case MINUS:
			if x.typ != intType {
				return cexpr{}, fmt.Errorf("gcl: unary '-' applied to non-integer")
			}
			f := x.eval
			return cexpr{typ: intType, eval: func(s state.State) int { return -f(s) }, ops: opsUnary(guarded.OpNeg, x.ops)}, nil
		default:
			return cexpr{}, fmt.Errorf("gcl: unknown unary operator %s", n.Op)
		}
	case *Binary:
		l, err := c.compileExpr(n.L)
		if err != nil {
			return cexpr{}, err
		}
		r, err := c.compileExpr(n.R)
		if err != nil {
			return cexpr{}, err
		}
		return c.binary(n, l, r)
	default:
		return cexpr{}, fmt.Errorf("gcl: unknown expression node %T", e)
	}
}

func (c *compiler) binary(n *Binary, l, r cexpr) (cexpr, error) {
	boolOp := func(code guarded.OpCode, f func(a, b int) int) cexpr {
		le, re := l.eval, r.eval
		return cexpr{typ: boolType, eval: func(s state.State) int { return f(le(s), re(s)) }, ops: opsBinary(code, l.ops, r.ops)}
	}
	intOp := func(code guarded.OpCode, f func(a, b int) int) cexpr {
		le, re := l.eval, r.eval
		return cexpr{typ: intType, eval: func(s state.State) int { return f(le(s), re(s)) }, ops: opsBinary(code, l.ops, r.ops)}
	}
	needBool := func() error {
		if l.typ != boolType || r.typ != boolType {
			return errAt(n.At.Line, n.At.Col, "%s requires boolean operands", n.Op)
		}
		return nil
	}
	needInt := func() error {
		if l.typ != intType || r.typ != intType {
			return errAt(n.At.Line, n.At.Col, "%s requires integer operands", n.Op)
		}
		return nil
	}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch n.Op {
	case AND:
		if err := needBool(); err != nil {
			return cexpr{}, err
		}
		return boolOp(guarded.OpAnd, func(a, b int) int { return b2i(a != 0 && b != 0) }), nil
	case OR:
		if err := needBool(); err != nil {
			return cexpr{}, err
		}
		return boolOp(guarded.OpOr, func(a, b int) int { return b2i(a != 0 || b != 0) }), nil
	case IMPLIES:
		if err := needBool(); err != nil {
			return cexpr{}, err
		}
		return boolOp(guarded.OpImplies, func(a, b int) int { return b2i(a == 0 || b != 0) }), nil
	case EQ, NEQ:
		if l.typ != r.typ {
			return cexpr{}, errAt(n.At.Line, n.At.Col, "%s compares %s with %s", n.Op, l.typ, r.typ)
		}
		if n.Op == EQ {
			return boolOp(guarded.OpEq, func(a, b int) int { return b2i(a == b) }), nil
		}
		return boolOp(guarded.OpNeq, func(a, b int) int { return b2i(a != b) }), nil
	case LT, LE, GT, GE:
		if err := needInt(); err != nil {
			return cexpr{}, err
		}
		switch n.Op {
		case LT:
			return boolOp(guarded.OpLt, func(a, b int) int { return b2i(a < b) }), nil
		case LE:
			return boolOp(guarded.OpLe, func(a, b int) int { return b2i(a <= b) }), nil
		case GT:
			return boolOp(guarded.OpGt, func(a, b int) int { return b2i(a > b) }), nil
		default:
			return boolOp(guarded.OpGe, func(a, b int) int { return b2i(a >= b) }), nil
		}
	case PLUS, MINUS, STAR, PERCENT:
		if err := needInt(); err != nil {
			return cexpr{}, err
		}
		switch n.Op {
		case PLUS:
			return intOp(guarded.OpAdd, func(a, b int) int { return a + b }), nil
		case MINUS:
			return intOp(guarded.OpSub, func(a, b int) int { return a - b }), nil
		case STAR:
			return intOp(guarded.OpMul, func(a, b int) int { return a * b }), nil
		default:
			le, re := l.eval, r.eval
			return cexpr{typ: intType, eval: func(s state.State) int {
				b := re(s)
				if b == 0 {
					return 0 // total semantics: x % 0 = 0
				}
				return ((le(s) % b) + b) % b
			}, ops: opsBinary(guarded.OpMod, l.ops, r.ops)}, nil
		}
	default:
		return cexpr{}, errAt(n.At.Line, n.At.Col, "unknown binary operator %s", n.Op)
	}
}
