package gcl_test

// Native Go fuzz targets for the GCL front end. FuzzParse asserts the
// lexer/parser never panic and report failures only as *gcl.SyntaxError;
// FuzzCompile asserts that any file the compiler accepts also passes the
// semantic checks the linter enforces at the program level (compile-then-lint
// agreement). Both are seeded from the checked-in example corpus under
// cmd/dctl/testdata and internal/lint/testdata.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"detcorr/internal/gcl"
	"detcorr/internal/lint"
)

// addCorpus seeds the fuzzer with every .gcl file in the repo's testdata
// trees, so the fuzzer mutates realistic programs rather than raw noise.
func addCorpus(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("..", "..", "cmd", "dctl", "testdata"),
		filepath.Join("..", "lint", "testdata"),
	} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.gcl"))
		if err != nil {
			f.Fatal(err)
		}
		if len(paths) == 0 {
			f.Fatalf("no corpus files in %s", dir)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	// Hand-picked adversarial seeds: deep nesting (the recursion-depth
	// bound), oversized literals (the lexer overflow bound), and '?'.
	f.Add("program p\nvar x : bool\npred q :: ((((!!!!x))))\n")
	f.Add("program p\nvar x : 0..99999999999999999999\n")
	f.Add("program p\nvar x : 0..3\naction a :: true -> x := ?\n")
	f.Add("program p\npred y :: y\n") // self-referential predicate
}

// FuzzParse feeds arbitrary bytes to the parser. The only acceptable
// outcomes are a well-formed AST or a *gcl.SyntaxError; any panic (stack
// exhaustion included) or untyped error is a bug.
func FuzzParse(f *testing.F) {
	addCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := gcl.Parse(src)
		if err != nil {
			var se *gcl.SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse returned a non-SyntaxError: %v", err)
			}
			return
		}
		if ast == nil {
			t.Fatal("Parse returned nil AST with nil error")
		}
	})
}

// fuzzSpaceBudget caps the declared state space a fuzz input may compile:
// Compile validates assignment bounds by enumerating every state, so an
// input like `var x : 0..999999999` would turn one fuzz iteration into a
// multi-minute scan. Inputs over budget are skipped, not failed — the size
// is the fuzzer's choice, not a front-end bug.
const fuzzSpaceBudget = 1 << 16

func withinSpaceBudget(ast *gcl.FileAST) bool {
	product := 1
	for _, v := range ast.Vars {
		size := 0
		switch v.Type.Kind {
		case gcl.TypeBool:
			size = 2
		case gcl.TypeRange:
			size = v.Type.Hi - v.Type.Lo + 1
		case gcl.TypeEnum:
			size = len(v.Type.Names)
		}
		if size <= 0 || size > fuzzSpaceBudget {
			return false
		}
		product *= size
		if product > fuzzSpaceBudget {
			return false
		}
	}
	return true
}

// FuzzCompile parses, compiles, and lints arbitrary input. Invariants: the
// whole pipeline never panics; whatever Compile accepts yields a program
// lint.Check finds no Error-severity fault in (the compiler's own
// validation subsumes the linter's hard errors); and the AST-level analyzer
// runs cleanly on every parseable input.
func FuzzCompile(f *testing.F) {
	addCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		ast, err := gcl.Parse(src)
		if err != nil {
			return
		}
		// Analyze works on the AST alone, so it must tolerate every
		// parseable input, compilable or not.
		lint.Analyze("fuzz.gcl", ast, src)
		if !withinSpaceBudget(ast) {
			return
		}
		file, err := gcl.Compile(ast)
		if err != nil {
			return
		}
		if file.Program == nil || file.Schema == nil {
			t.Fatal("Compile returned nil program/schema with nil error")
		}
		for _, d := range lint.Check(file.Program) {
			if d.Severity == lint.Error {
				t.Fatalf("compiled program fails lint.Check: %s", d.Message)
			}
		}
	})
}
