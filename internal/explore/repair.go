package explore

// Edit-scoped CSR repair: given the graph of a program's previous revision
// and a per-action edit plan, Repair re-derives the new revision's graph by
// copying every edge owned by an unchanged action and re-expanding only the
// actions the edit touched, then re-runs canonical renumbering only when
// reachability actually changed. The result is structurally identical to a
// from-scratch Build of the new program — the repair difftest
// (internal/explore/difftest.CheckRepair) holds it to that contract across
// every example system and a scripted edit set.
//
// The soundness argument (DESIGN.md §3j) rests on three facts:
//
//  1. Builds seed from *every* state satisfying init, reachable or not, so
//     when the init predicate's extension is unchanged the new graph's seed
//     set is exactly the old graph's init set — no index-space scan needed.
//  2. A candidate superset of the new node set is: old nodes ∪ states newly
//     reachable through edited actions. Every new-revision edge out of a
//     candidate lands in a candidate (unchanged actions reproduce old
//     edges; edited actions are re-expanded and their targets enqueued), so
//     a forward closure from the seeds inside the candidate set computes
//     the exact new node set.
//  3. Out-edges are emitted per node in action-index order and, within one
//     action, in kernel enumeration order — the same discipline assemble
//     follows — so after renumbering the arenas match a fresh build's.
//
// This file assembles Graph arenas and is a sanctioned builder.
//
//dc:mutates Graph

import (
	"errors"
	"fmt"
	"sort"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// ActionDirt classifies one new-revision action against its old counterpart
// for repair purposes. The classification is semantic, not syntactic: the
// planner (internal/flow.PlanRepair) only marks an action Clean when its
// guard and assignments — with every referenced predicate expanded — are
// identical in both revisions.
type ActionDirt uint8

const (
	// ActionClean: guard and assignments unchanged; the old edges are
	// copied verbatim (relabeled to the new action index).
	ActionClean ActionDirt = iota
	// ActionGuardDirty: the guard changed but the assignments did not.
	// Where the action was enabled in both revisions the old targets are
	// reused; newly enabled states re-expand, newly disabled states drop
	// their edges.
	ActionGuardDirty
	// ActionFullDirty: the assignments changed (or the action is new);
	// every enabled state re-expands through the new kernel.
	ActionFullDirty
)

// RepairPlan maps a new program revision onto an old one action by action.
// internal/flow.PlanRepair derives plans from the two GCL ASTs; a plan is a
// promise — Repair trusts its Clean/GuardDirty claims, and a wrong plan
// yields a wrong graph (the repair difftest is the guard against planner
// bugs).
type RepairPlan struct {
	// OldActions is the old revision's action count (removed actions are
	// detected by it, not by OldIndex's image).
	OldActions int
	// OldIndex[j] is the old index of new action j, or -1 for an added
	// action.
	OldIndex []int
	// Dirt[j] classifies new action j against OldIndex[j]. Entries for
	// added actions (OldIndex[j] < 0) are ignored and treated as full.
	Dirt []ActionDirt
}

// Identity reports whether the plan maps every action to itself unchanged —
// a whitespace/comment/reordering-free edit whose graphs can be shared
// outright.
func (p *RepairPlan) Identity() bool {
	if p == nil || p.OldActions != len(p.OldIndex) || len(p.OldIndex) != len(p.Dirt) {
		return false
	}
	for j, oj := range p.OldIndex {
		if oj != j || p.Dirt[j] != ActionClean {
			return false
		}
	}
	return true
}

// ErrRepairRebuild reports that an edit is outside repair's scope (schema
// change, bounded build, no plan) and the caller must fall back to Build.
var ErrRepairRebuild = errors.New("explore: edit outside repair scope; full rebuild required")

// repairableSchema reports whether the new program's schema lays states out
// exactly as the old graph's arena does: same variables, same order, same
// domain sizes. Anything else changes the mixed-radix encoding and repair
// cannot reuse the arenas.
func repairableSchema(old *state.Schema, new *state.Schema) bool {
	if old == nil || new == nil || old.NumVars() != new.NumVars() {
		return false
	}
	for i := 0; i < old.NumVars(); i++ {
		ov, nv := old.Var(i), new.Var(i)
		if ov.Name != nv.Name || ov.Domain.Size != nv.Domain.Size {
			return false
		}
	}
	return true
}

// Repair derives the transition graph of newProg from the graph of the
// previous revision, re-expanding only the actions the plan marks dirty.
// init must have the same extension in both revisions (the planner's
// SamePreds set certifies this); opts follows Build's contract except that
// bounded builds (MaxStates != 0) and the engine-selection fields are out
// of scope — repair is sequential and exact.
//
// The returned graph is freshly assembled (or arena-sharing where the node
// set is unchanged) and carries its own memo; the old graph is not touched.
// ErrRepairRebuild means the edit cannot be repaired and the caller should
// Build from scratch.
func Repair(old *Graph, newProg *guarded.Program, plan *RepairPlan, init state.Predicate, opts Options) (*Graph, error) {
	if old == nil || old.prog == nil || old.schema == nil || plan == nil || newProg == nil {
		return nil, ErrRepairRebuild
	}
	if opts.MaxStates != 0 {
		// The MaxStates contract is exact over reachable states; repair's
		// candidate set over-approximates before the closure, so bounded
		// requests rebuild.
		return nil, ErrRepairRebuild
	}
	if !repairableSchema(old.schema, newProg.Schema()) {
		return nil, ErrRepairRebuild
	}
	newNA := newProg.NumActions()
	if len(plan.OldIndex) != newNA || len(plan.Dirt) != newNA || plan.OldActions != old.numActs {
		return nil, fmt.Errorf("explore: repair plan shape mismatch: %d/%d actions for %d new, %d old",
			len(plan.OldIndex), len(plan.Dirt), newNA, old.numActs)
	}
	for _, oj := range plan.OldIndex {
		if oj >= old.numActs {
			return nil, fmt.Errorf("explore: repair plan maps to old action %d of %d", oj, old.numActs)
		}
	}
	fair := opts.Fair
	if fair == nil {
		fair = make([]bool, newNA)
		for i := range fair {
			fair[i] = true
		}
	} else if len(fair) != newNA {
		return nil, fmt.Errorf("explore: fairness mask has %d entries for %d actions", len(fair), newNA)
	} else {
		fair = append([]bool(nil), fair...)
	}
	k := sharedKernel(newProg)
	if plan.Identity() {
		return old.rebind(k, fair), nil
	}
	return repair(old, k, plan, init, fair)
}

// rebind shares every arena of the old graph under the new program: an
// identity edit changes no action semantics, so states, edges, enabledness
// — everything but the program pointer — carry over. The memo starts fresh
// (predicate extensions may have changed even when actions did not), and
// the deadlock set is recomputed when the fairness mask differs.
func (old *Graph) rebind(k *guarded.Kernel, fair []bool) *Graph {
	g := &Graph{
		prog:     k.Program(),
		schema:   k.Schema(),
		nv:       old.nv,
		n:        old.n,
		vals:     old.vals,
		idxs:     old.idxs,
		outOff:   old.outOff,
		outEdges: old.outEdges,
		inOff:    old.inOff,
		inEdges:  old.inEdges,
		fair:     fair,
		numActs:  old.numActs,
		enabled:  old.enabled,
		memo:     newGraphMemo(),
	}
	g.dead = g.computeDead(fair)
	return g
}

// repair is the non-identity path: per-node edge rewrite, frontier BFS over
// newly discovered states, forward closure from the (unchanged) seed set,
// and assembly — arena-sharing when the node set survived intact, canonical
// merge renumbering when it did not.
func repair(old *Graph, k *guarded.Kernel, plan *RepairPlan, init state.Predicate, fair []bool) (*Graph, error) {
	sch := k.Schema()
	sc := k.NewScratch()
	nv := old.nv
	oldN := old.n
	newNA := k.NumActions()

	// Phase 1: rewrite every old node's out-edge list under the new action
	// set, in new-action-index order. Targets stay as mixed-radix state
	// indices until ids are final. removedAny tracks whether any edge that
	// existed before could have disappeared — only then can reachability
	// shrink and only then is the forward closure needed.
	succ := make([]guarded.Succ, 0, len(old.outEdges)+newNA)
	offs := make([]int, oldN+1)
	spanStart := make([]int32, old.numActs)
	spanEnd := make([]int32, old.numActs)
	// An old action with no clean or guard-dirty image in the plan (removed,
	// or replaced by a full re-expansion) loses its old edges wholesale;
	// reachability can only shrink when some edge disappears.
	removedAny := false
	imaged := make([]bool, plan.OldActions)
	for j, oj := range plan.OldIndex {
		if oj >= 0 && plan.Dirt[j] != ActionFullDirty {
			imaged[oj] = true
		}
	}
	for a, ok := range imaged {
		if !ok && !old.enabled[a].Empty() {
			removedAny = true
			break
		}
	}

	// Newly discovered states: anything an edited action reaches that the
	// old graph does not contain.
	newID := map[uint64]int{}
	var newIdxs []uint64
	discover := func(to uint64) {
		if _, ok := old.idOf(to); ok {
			return
		}
		if _, ok := newID[to]; ok {
			return
		}
		newID[to] = len(newIdxs)
		newIdxs = append(newIdxs, to)
	}

	for i := 0; i < oldN; i++ {
		row := old.vals[i*nv : (i+1)*nv]
		oldOut := old.Out(i)
		for a := range spanStart {
			spanStart[a] = -1
		}
		for ei := 0; ei < len(oldOut); {
			a := oldOut[ei].Action
			j := ei + 1
			for j < len(oldOut) && oldOut[j].Action == a {
				j++
			}
			spanStart[a], spanEnd[a] = int32(ei), int32(j)
			ei = j
		}
		for j := 0; j < newNA; j++ {
			oj := plan.OldIndex[j]
			dirt := ActionFullDirty
			if oj >= 0 {
				dirt = plan.Dirt[j]
			}
			switch dirt {
			case ActionClean:
				if s := spanStart[oj]; s >= 0 {
					for _, e := range oldOut[s:spanEnd[oj]] {
						succ = append(succ, guarded.Succ{Action: int32(j), To: old.idxs[e.To]})
					}
				}
			case ActionGuardDirty:
				enabledNow := sc.EnabledOnRow(row, j)
				enabledBefore := old.Enabled(i, oj)
				switch {
				case enabledNow && enabledBefore:
					// Same assignments, enabled in both revisions: the
					// old targets (and their kernel order) carry over.
					if s := spanStart[oj]; s >= 0 {
						for _, e := range oldOut[s:spanEnd[oj]] {
							succ = append(succ, guarded.Succ{Action: int32(j), To: old.idxs[e.To]})
						}
					}
				case enabledNow:
					pre := len(succ)
					succ = sc.TransitionsOf(old.idxs[i], j, succ)
					for _, t := range succ[pre:] {
						discover(t.To)
					}
				case enabledBefore:
					removedAny = true
				}
			default: // ActionFullDirty, or an added action
				// (Removal accounting: a full-dirty mapped action left
				// imaged[] false above, so removedAny already covers it.)
				if sc.EnabledOnRow(row, j) {
					pre := len(succ)
					succ = sc.TransitionsOf(old.idxs[i], j, succ)
					for _, t := range succ[pre:] {
						discover(t.To)
					}
				}
			}
		}
		offs[i+1] = len(succ)
	}

	// Phase 2: frontier BFS over the newly discovered states with the full
	// new kernel — these states have no old edges to reuse. newIdxs is the
	// queue; discover appends to it.
	var newSucc []guarded.Succ
	newOffs := make([]int, 1, len(newIdxs)+1)
	for qi := 0; qi < len(newIdxs); qi++ {
		pre := len(newSucc)
		newSucc = sc.Transitions(newIdxs[qi], newSucc)
		for _, t := range newSucc[pre:] {
			discover(t.To)
		}
		newOffs = append(newOffs, len(newSucc))
	}
	m := len(newIdxs)

	// Candidate-space id resolution: old node ids stay put, discovered
	// states follow at oldN + discovery order. Mirror assemble's LUT
	// heuristic — when the schema is not much larger than the candidate
	// set a flat table beats per-edge binary search.
	cand := oldN + m
	total, _ := sch.NumStates()
	var lut []int32
	if total <= 16*uint64(cand)+(1<<16) {
		lut = make([]int32, total)
		for i := range lut {
			lut[i] = -1
		}
		for i, idx := range old.idxs {
			lut[idx] = int32(i)
		}
		for q, idx := range newIdxs {
			lut[idx] = int32(oldN + q)
		}
	}
	resolve := func(idx uint64) int {
		if lut != nil {
			if id := lut[idx]; id >= 0 {
				return int(id)
			}
		} else if id, ok := old.idOf(idx); ok {
			return id
		} else if q, ok := newID[idx]; ok {
			return oldN + q
		}
		panic(fmt.Sprintf("explore: repair edge target %d not among candidate states", idx))
	}
	edgesOf := func(id int) []guarded.Succ {
		if id < oldN {
			return succ[offs[id]:offs[id+1]]
		}
		q := id - oldN
		return newSucc[newOffs[q]:newOffs[q+1]]
	}

	// Phase 3: forward closure from the seeds. The init extension is
	// unchanged by contract and old graphs contain every init state, so
	// the seed set is exactly the old graph's init set — evaluated through
	// the old graph's (possibly memoized) SetOf, never by scanning the
	// index space. When no edge was removed, reachability cannot have
	// shrunk and the closure is skipped: every candidate is reachable.
	alive := NewBitset(cand)
	aliveCount := 0
	if !removedAny {
		alive.Fill()
		aliveCount = cand
	} else {
		var stack []int
		old.SetOf(init).ForEach(func(id int) bool {
			alive.Add(id)
			stack = append(stack, id)
			return true
		})
		aliveCount = len(stack)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range edgesOf(id) {
				t := resolve(e.To)
				if !alive.Has(t) {
					alive.Add(t)
					aliveCount++
					stack = append(stack, t)
				}
			}
		}
	}

	if aliveCount == oldN && m == 0 {
		return repairInPlace(old, k, plan, fair, succ, offs, resolve), nil
	}
	return repairRenumber(old, k, fair, succ, offs, newSucc, newOffs, newIdxs, alive, aliveCount, resolve, edgesOf), nil
}

// repairInPlace assembles the repaired graph when the node set is exactly
// the old one: state arenas are shared, clean actions share their enabled
// bitsets, and only the rewritten edges and the dirty actions' enabledness
// are recomputed.
func repairInPlace(old *Graph, k *guarded.Kernel, plan *RepairPlan, fair []bool, succ []guarded.Succ, offs []int, resolve func(uint64) int) *Graph {
	sch := k.Schema()
	nv := old.nv
	n := old.n
	newNA := k.NumActions()
	g := &Graph{
		prog:    k.Program(),
		schema:  sch,
		nv:      nv,
		n:       n,
		vals:    old.vals,
		idxs:    old.idxs,
		fair:    fair,
		numActs: newNA,
		memo:    newGraphMemo(),
	}
	g.outOff = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		g.outOff[i+1] = uint32(offs[i+1])
	}
	g.outEdges = make([]Edge, len(succ))
	for i, tr := range succ {
		g.outEdges[i] = Edge{Action: int(tr.Action), To: resolve(tr.To)}
	}
	g.buildIn()
	sc := k.NewScratch()
	g.enabled = make([]*Bitset, newNA)
	for j := 0; j < newNA; j++ {
		if oj := plan.OldIndex[j]; oj >= 0 && plan.Dirt[j] == ActionClean {
			// Unchanged guard over unchanged states: the old bitset is
			// the answer. Enabled sets are read-only on both graphs.
			g.enabled[j] = old.enabled[oj]
			continue
		}
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if sc.EnabledOnRow(g.vals[i*nv:(i+1)*nv], j) {
				b.Add(i)
			}
		}
		g.enabled[j] = b
	}
	g.dead = g.computeDead(fair)
	return g
}

// repairRenumber assembles the repaired graph when the node set changed:
// surviving old states and newly discovered states merge into a fresh
// canonical (index-ascending) numbering, old arena rows are copied, new
// states are decoded once, and enabledness is recomputed — exactly what a
// from-scratch assemble would produce.
func repairRenumber(old *Graph, k *guarded.Kernel, fair []bool, succ []guarded.Succ, offs []int, newSucc []guarded.Succ, newOffs []int, newIdxs []uint64, alive *Bitset, aliveCount int, resolve func(uint64) int, edgesOf func(int) []guarded.Succ) *Graph {
	sch := k.Schema()
	nv := old.nv
	oldN := old.n
	newNA := k.NumActions()

	// Merge surviving old states (already index-ascending) with surviving
	// new states (sorted here) into the canonical id order.
	aliveNew := make([]uint64, 0, len(newIdxs))
	for q, idx := range newIdxs {
		if alive.Has(oldN + q) {
			aliveNew = append(aliveNew, idx)
		}
	}
	sort.Slice(aliveNew, func(i, j int) bool { return aliveNew[i] < aliveNew[j] })

	n := aliveCount
	g := &Graph{
		prog:    k.Program(),
		schema:  sch,
		nv:      nv,
		n:       n,
		vals:    make([]int32, n*nv),
		idxs:    make([]uint64, n),
		fair:    fair,
		numActs: newNA,
		memo:    newGraphMemo(),
	}
	final := make([]int32, oldN+len(newIdxs))
	for i := range final {
		final[i] = -1
	}
	fi := 0
	oi, ni := 0, 0
	for {
		// Advance past dropped old nodes.
		for oi < oldN && !alive.Has(oi) {
			oi++
		}
		if oi >= oldN && ni >= len(aliveNew) {
			break
		}
		if oi < oldN && (ni >= len(aliveNew) || old.idxs[oi] < aliveNew[ni]) {
			g.idxs[fi] = old.idxs[oi]
			copy(g.vals[fi*nv:(fi+1)*nv], old.vals[oi*nv:(oi+1)*nv])
			final[oi] = int32(fi)
			oi++
		} else {
			idx := aliveNew[ni]
			g.idxs[fi] = idx
			sch.DecodeInto(g.vals[fi*nv:(fi+1)*nv], idx)
			final[resolve(idx)] = int32(fi)
			ni++
		}
		fi++
	}

	// Out-edge CSR over the survivors, in final id order.
	totalE := 0
	g.outOff = make([]uint32, n+1)
	order := make([]int, n) // final id -> candidate id
	for cid := 0; cid < oldN+len(newIdxs); cid++ {
		if f := final[cid]; f >= 0 {
			order[f] = cid
		}
	}
	for f := 0; f < n; f++ {
		totalE += len(edgesOf(order[f]))
		g.outOff[f+1] = uint32(totalE)
	}
	g.outEdges = make([]Edge, totalE)
	pos := 0
	for f := 0; f < n; f++ {
		for _, tr := range edgesOf(order[f]) {
			g.outEdges[pos] = Edge{Action: int(tr.Action), To: int(final[resolve(tr.To)])}
			pos++
		}
	}
	g.buildIn()
	sc := k.NewScratch()
	g.enabled = make([]*Bitset, newNA)
	for a := 0; a < newNA; a++ {
		g.enabled[a] = NewBitset(n)
	}
	for i := 0; i < n; i++ {
		row := g.vals[i*nv : (i+1)*nv]
		for a := 0; a < newNA; a++ {
			if sc.EnabledOnRow(row, a) {
				g.enabled[a].Add(i)
			}
		}
	}
	g.dead = g.computeDead(fair)
	return g
}
