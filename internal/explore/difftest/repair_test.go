package difftest

import (
	"testing"
)

// TestRepairMatchesRebuildOnExamples is the repair acceptance difftest:
// for every example system and the scripted edit set (guard tweaks, an
// assignment change, action add/remove), explore.Repair must produce a
// graph structurally identical to a from-scratch build of the edited
// revision — under each system's interesting init predicates as well as
// the full state space.
func TestRepairMatchesRebuildOnExamples(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		inits []string
	}{
		{"ring3", RingSource(3, 3), []string{"", "Legit"}},
		{"ring4x2", RingSource(4, 2), []string{"", "Legit"}},
		{"memaccess_pm", MemaccessPM, []string{"", "S", "X1", "NotZ1"}},
		{"memaccess_pf", MemaccessPF, []string{"", "S"}},
		{"memaccess_pn", MemaccessPN, []string{"", "X1"}},
		{"tmr", TMRSource, []string{"", "S", "T"}},
		{"ring_watched3", RingWatchedSource(3, 3), []string{"", "Legit"}},
		{"memaccess_pair", MemaccessPairSource, []string{""}},
		{"byzagree", ByzAgreeSource, []string{"", "S"}},
	}
	edits := StandardEdits()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := CheckRepair(tc.src, tc.inits, edits...); err != nil {
				t.Fatal(err)
			}
		})
	}
}
