package difftest

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/state"
)

// Edit is a scripted mutation of a parsed file, applied to the AST so the
// same edit script works across every example system. Apply reports
// whether the edit is applicable (e.g. it needs an action to exist);
// CheckRepair treats an inapplicable edit as a harness bug.
type Edit struct {
	Name  string
	Apply func(ast *gcl.FileAST) bool
}

// StandardEdits is the scripted edit set of the repair acceptance
// criterion: guard tweaks (semantic no-op, widening, narrowing), an
// assignment change, and action add/remove, plus the identity edit that
// must take the zero-cost rebind path. Each is generic over any system
// with at least one action.
func StandardEdits() []Edit {
	return []Edit{
		{Name: "identity", Apply: func(ast *gcl.FileAST) bool { return true }},
		{Name: "guard-noop", Apply: func(ast *gcl.FileAST) bool {
			// g → !(!g): syntactically dirty, semantically identical. The
			// repair must notice enabledness is unchanged and copy spans.
			if len(ast.Actions) == 0 {
				return false
			}
			g := ast.Actions[0].Guard
			ast.Actions[0].Guard = &gcl.Unary{Op: gcl.NOT, X: &gcl.Unary{Op: gcl.NOT, X: g}}
			return true
		}},
		{Name: "guard-widen", Apply: func(ast *gcl.FileAST) bool {
			// g → g | !g: the action fires everywhere, adding edges and
			// possibly discovering states the old graph never reached.
			if len(ast.Actions) == 0 {
				return false
			}
			g := ast.Actions[0].Guard
			ast.Actions[0].Guard = &gcl.Binary{Op: gcl.OR, L: g, R: &gcl.Unary{Op: gcl.NOT, X: g}}
			return true
		}},
		{Name: "guard-narrow", Apply: func(ast *gcl.FileAST) bool {
			// g → g & !g: the action never fires, deleting its edges and
			// possibly shrinking reachability (the renumbering path).
			if len(ast.Actions) == 0 {
				return false
			}
			i := len(ast.Actions) - 1
			g := ast.Actions[i].Guard
			ast.Actions[i].Guard = &gcl.Binary{Op: gcl.AND, L: g, R: &gcl.Unary{Op: gcl.NOT, X: g}}
			return true
		}},
		{Name: "guard-narrow-all", Apply: func(ast *gcl.FileAST) bool {
			// Disable every action: reachability collapses to the init set
			// itself, stranding every state the old graph reached only
			// through program moves — the renumber-with-drops path.
			if len(ast.Actions) == 0 {
				return false
			}
			for i := range ast.Actions {
				g := ast.Actions[i].Guard
				ast.Actions[i].Guard = &gcl.Binary{Op: gcl.AND, L: g, R: &gcl.Unary{Op: gcl.NOT, X: g}}
			}
			return true
		}},
		{Name: "assign-change", Apply: func(ast *gcl.FileAST) bool {
			// First deterministic assignment x := e becomes x := x: always
			// type-correct, always in-domain, and a different transition
			// function (the action turns into a guarded self-loop on x).
			for i := range ast.Actions {
				for j := range ast.Actions[i].Assigns {
					a := &ast.Actions[i].Assigns[j]
					if a.Expr != nil {
						a.Expr = &gcl.Ref{Name: a.Var}
						return true
					}
				}
			}
			return false
		}},
		{Name: "action-add", Apply: func(ast *gcl.FileAST) bool {
			// Append a fresh action duplicating the first one's behavior
			// under a new name: new edges with a new action index, and a
			// Dirt entry with no old counterpart.
			if len(ast.Actions) == 0 {
				return false
			}
			d := ast.Actions[0]
			d.Name = "difftest_added"
			ast.Actions = append(ast.Actions, d)
			return true
		}},
		{Name: "action-remove", Apply: func(ast *gcl.FileAST) bool {
			// Drop the last action: every surviving action's index may
			// shift, and the removed edges may strand states.
			if len(ast.Actions) == 0 {
				return false
			}
			ast.Actions = ast.Actions[:len(ast.Actions)-1]
			return true
		}},
	}
}

// CheckRepair applies each edit to the source, builds the old graph from
// the unedited revision, repairs it onto the edited revision with the plan
// flow.PlanRepair derives, and verifies the result is structurally
// identical to a from-scratch build of the edited revision — for every
// init predicate name ("" means true). The edits above never touch
// variables or predicates, so the init extension is stable across each
// pair by construction; CheckRepair verifies that with the plan before
// trusting it.
func CheckRepair(src string, inits []string, edits ...Edit) error {
	for _, ed := range edits {
		oldAST, err := gcl.Parse(src)
		if err != nil {
			return fmt.Errorf("%s: parse old: %w", ed.Name, err)
		}
		newAST, err := gcl.Parse(src)
		if err != nil {
			return fmt.Errorf("%s: parse new: %w", ed.Name, err)
		}
		if !ed.Apply(newAST) {
			return fmt.Errorf("%s: edit not applicable to this system", ed.Name)
		}
		oldFile, err := gcl.Compile(oldAST)
		if err != nil {
			return fmt.Errorf("%s: compile old: %w", ed.Name, err)
		}
		newFile, err := gcl.Compile(newAST)
		if err != nil {
			return fmt.Errorf("%s: compile new: %w", ed.Name, err)
		}
		plan := flow.PlanRepair(oldAST, newAST)
		if plan.Graph == nil {
			return fmt.Errorf("%s: plan has no graph repair component", ed.Name)
		}
		if ed.Name == "identity" && !plan.Identity() {
			return fmt.Errorf("identity: plan did not classify the no-op edit as identity")
		}
		for _, initName := range inits {
			oldInit, newInit := state.True, state.True
			if initName != "" {
				if !plan.SamePreds[initName] {
					return fmt.Errorf("%s: init pred %q not plan-same; harness edits must not touch predicates", ed.Name, initName)
				}
				var ok bool
				if oldInit, ok = oldFile.Pred(initName); !ok {
					return fmt.Errorf("%s: old file has no pred %q", ed.Name, initName)
				}
				if newInit, ok = newFile.Pred(initName); !ok {
					return fmt.Errorf("%s: new file has no pred %q", ed.Name, initName)
				}
			}
			oldG, err := explore.Build(oldFile.Program, oldInit, explore.Options{})
			if err != nil {
				return fmt.Errorf("%s/%q: build old: %w", ed.Name, initName, err)
			}
			ref, err := explore.Build(newFile.Program, newInit, explore.Options{})
			if err != nil {
				return fmt.Errorf("%s/%q: build reference: %w", ed.Name, initName, err)
			}
			repaired, err := explore.Repair(oldG, newFile.Program, plan.Graph, oldInit, explore.Options{})
			if err != nil {
				return fmt.Errorf("%s/%q: repair: %w", ed.Name, initName, err)
			}
			if err := Diff(ref, repaired); err != nil {
				return fmt.Errorf("%s/%q: repaired graph differs from rebuild: %w", ed.Name, initName, err)
			}
		}
	}
	return nil
}
