package difftest

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
	"detcorr/internal/prove"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// The Ring7 pair quantifies the tentpole claim: proving closure of Legit
// for Dijkstra's ring with 7 machines and 8 counter values is a per-action
// obligation over equality-class representatives, while the graph route
// must visit all 8^7 = 2,097,152 states. The prove benchmark includes the
// full pipeline (parse, system construction, proof); the enumerate
// benchmark is given the compiled program for free outside the timer.

func BenchmarkRing7ProveClosure(b *testing.B) {
	src := RingSource(7, 8)
	for i := 0; i < b.N; i++ {
		ast, err := gcl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := prove.NewSystem(ast)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := prove.ProveClosure(sys, "Legit")
		if err != nil {
			b.Fatal(err)
		}
		if rep.Verdict != prove.Proved {
			b.Fatalf("verdict = %v", rep.Verdict)
		}
	}
}

func BenchmarkRing7EnumerateClosure(b *testing.B) {
	f, err := gcl.ParseAndCompile(RingSource(7, 8))
	if err != nil {
		b.Fatal(err)
	}
	legit, _ := f.Pred("Legit")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spec.CheckClosed(f.Program, legit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRing7BuildGraph(b *testing.B) {
	f, err := gcl.ParseAndCompile(RingSource(7, 8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.Build(f.Program, state.True, explore.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
