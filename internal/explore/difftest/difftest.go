// Package difftest checks that the sequential and parallel exploration
// engines are interchangeable: Build with Parallelism 1 and Build with any
// worker count must produce identical graphs — same states, node ids,
// out-edges, in-lists, and fairness — for the same program and options.
// The determinism contract (node ids canonically renumbered by state index)
// is what makes this an exact equality rather than an isomorphism check,
// and it is what keeps goldens and cross-engine comparisons byte-stable.
package difftest

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Diff reports the first structural difference between two graphs, or nil
// when they are identical. The comparison is exact: node order, edge order,
// and in-list order all count.
func Diff(a, b *explore.Graph) error {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for id := 0; id < a.NumNodes(); id++ {
		if !a.State(id).Equal(b.State(id)) {
			return fmt.Errorf("node %d: states differ: %s vs %s", id, a.State(id), b.State(id))
		}
		if err := diffEdges(a.Out(id), b.Out(id)); err != nil {
			return fmt.Errorf("node %d out-edges: %w", id, err)
		}
		if err := diffEdges(a.In(id), b.In(id)); err != nil {
			return fmt.Errorf("node %d in-list: %w", id, err)
		}
	}
	na := a.Program().NumActions()
	if nb := b.Program().NumActions(); na != nb {
		return fmt.Errorf("action counts differ: %d vs %d", na, nb)
	}
	for act := 0; act < na; act++ {
		if a.FairAction(act) != b.FairAction(act) {
			return fmt.Errorf("action %d (%s): fairness differs", act, a.ActionName(act))
		}
	}
	// Enabledness and deadlock are precomputed during assembly — on the
	// kernel path from compiled guard bytecode, on the fallback path from
	// the guard closures — so comparing them node by node is what pins
	// "compiled guards ≡ closure guards" at the graph level.
	for id := 0; id < a.NumNodes(); id++ {
		if a.Deadlocked(id) != b.Deadlocked(id) {
			return fmt.Errorf("node %d: deadlock flags differ: %v vs %v", id, a.Deadlocked(id), b.Deadlocked(id))
		}
		for act := 0; act < na; act++ {
			if a.Enabled(id, act) != b.Enabled(id, act) {
				return fmt.Errorf("node %d action %d (%s): enabledness differs", id, act, a.ActionName(act))
			}
		}
	}
	return nil
}

func diffEdges(ea, eb []explore.Edge) error {
	if len(ea) != len(eb) {
		return fmt.Errorf("lengths differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return fmt.Errorf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	return nil
}

// StripCompiled returns a copy of the program whose actions carry neither
// kernel bytecode (Compiled) nor the deterministic fast path (Stmt), forcing
// every engine onto the kernel's generic closure adapter. It is the
// reference variant for kernel-vs-closure differential checks; programs
// without bytecode pass through unchanged in behavior.
func StripCompiled(p *guarded.Program) *guarded.Program {
	acts := p.Actions()
	for i := range acts {
		acts[i].Compiled = nil
		acts[i].Stmt = nil
	}
	return guarded.MustProgram(p.Name(), p.Schema(), acts...)
}

// Check builds the program with the sequential engine and with each of the
// given worker counts — and each of those both as-is (compiled kernel
// bytecode, if the program carries any) and with the bytecode stripped
// (pure closure adapter) — and returns an error describing the first
// divergence. It is the engine- and kernel-equivalence assertion the
// differential test suite runs over every example system.
func Check(p *guarded.Program, init state.Predicate, opts explore.Options, workerCounts ...int) error {
	stripped := StripCompiled(p)
	opts.Parallelism = 1
	ref, err := explore.Build(p, init, opts)
	if err != nil {
		return fmt.Errorf("sequential build: %w", err)
	}
	sg, err := explore.Build(stripped, init, opts)
	if err != nil {
		return fmt.Errorf("sequential closure-only build: %w", err)
	}
	if err := Diff(ref, sg); err != nil {
		return fmt.Errorf("sequential closure-only build diverges: %w", err)
	}
	for _, w := range workerCounts {
		opts.Parallelism = w
		g, err := explore.Build(p, init, opts)
		if err != nil {
			return fmt.Errorf("parallel build (%d workers): %w", w, err)
		}
		if err := Diff(ref, g); err != nil {
			return fmt.Errorf("parallel build (%d workers) diverges: %w", w, err)
		}
		sg, err := explore.Build(stripped, init, opts)
		if err != nil {
			return fmt.Errorf("parallel closure-only build (%d workers): %w", w, err)
		}
		if err := Diff(ref, sg); err != nil {
			return fmt.Errorf("parallel closure-only build (%d workers) diverges: %w", w, err)
		}
	}
	return nil
}

// CheckSpill is the out-of-core counterpart of Check: it builds the
// program with the in-RAM sequential engine as the reference, then with
// the disk-spilled engine at every budget × worker count given — spilled
// sequential, spilled partitioned-parallel, and an off-default partition
// count — and returns an error describing the first divergence. Exact
// graph equality here is the proof that spilling, hash-partitioning the
// visited set, and routing successors between owners never change what is
// explored, only where it lives.
func CheckSpill(p *guarded.Program, init state.Predicate, opts explore.Options, budgets []int64, workerCounts ...int) error {
	opts.Parallelism = 1
	opts.MemBudget = -1 // force the in-RAM engine for the reference
	ref, err := explore.Build(p, init, opts)
	if err != nil {
		return fmt.Errorf("in-RAM build: %w", err)
	}
	for _, b := range budgets {
		opts.MemBudget = b
		for _, w := range append([]int{1}, workerCounts...) {
			opts.Parallelism = w
			for _, parts := range []int{0, 5} {
				opts.Partitions = parts
				g, err := explore.Build(p, init, opts)
				if err != nil {
					return fmt.Errorf("spilled build (budget %d, %d workers, %d partitions): %w", b, w, parts, err)
				}
				if err := Diff(ref, g); err != nil {
					return fmt.Errorf("spilled build (budget %d, %d workers, %d partitions) diverges: %w", b, w, parts, err)
				}
			}
		}
	}
	return nil
}
