package difftest

import (
	"errors"
	"runtime"
	"testing"

	"detcorr/internal/byzagree"
	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
	"detcorr/internal/leader"
	"detcorr/internal/memaccess"
	"detcorr/internal/mutex"
	"detcorr/internal/reset"
	"detcorr/internal/state"
	"detcorr/internal/termdetect"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

// TestEnginesAgreeOnExamples is the differential suite: for every example
// system in the repo, sequential and parallel Build must produce identical
// graphs (same states, ids, edges, in-lists) for 2, 3, and NumCPU workers.
func TestEnginesAgreeOnExamples(t *testing.T) {
	mem := memaccess.MustNew(2)
	byz := byzagree.MustNew()
	tm := tmr.MustNew(2)
	ring := tokenring.MustNew(4, 4)
	mtx := mutex.MustNew(3, 3)
	td := termdetect.MustNew(3)

	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"memaccess/p", mem.Intolerant, state.True},
		{"memaccess/pf", mem.FailSafe, state.True},
		{"memaccess/pn", mem.Nonmasking, state.True},
		{"memaccess/pm", mem.Masking, state.True},
		{"tmr/intolerant", tm.Intolerant, state.True},
		{"tmr/masking", tm.Masking, state.True},
		{"tokenring", ring.Ring, state.True},
		{"tokenring/legitimate", ring.Ring, ring.Legitimate},
		{"byzagree/failsafe", byz.FailSafe, state.True},
		{"byzagree/masking", byz.Masking, state.True},
		{"mutex", mtx.Program, state.True},
		{"mutex/invariant", mtx.Program, mtx.Invariant},
		{"leader", leader.MustNew(3).Program, state.True},
		{"reset", reset.MustNewLine(3).Program, state.True},
		{"termdetect", td.Program, state.True},
		{"termdetect/init", td.Program, td.Init},
	}
	workers := []int{2, 3, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := Check(tc.prog, tc.init, explore.Options{}, workers...); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEnginesAgreeUnderFairMask covers the p ‖ F shape: a program with its
// fault actions marked unfair must explore identically in both engines.
func TestEnginesAgreeUnderFairMask(t *testing.T) {
	ring := tokenring.MustNew(3, 3)
	fair := make([]bool, ring.Ring.NumActions())
	for i := range fair {
		fair[i] = i%2 == 0 // alternate fair/unfair, exercising the mask path
	}
	if err := Check(ring.Ring, state.True, explore.Options{Fair: fair}, 2, runtime.NumCPU()); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesAgreeOnBoundError checks the engines also agree on the error
// side of the MaxStates contract, with and without kernel bytecode.
func TestEnginesAgreeOnBoundError(t *testing.T) {
	ring := tokenring.MustNew(4, 4)
	for _, prog := range []*guarded.Program{ring.Ring, StripCompiled(ring.Ring)} {
		opts := explore.Options{MaxStates: 17, Parallelism: 1}
		if _, err := explore.Build(prog, state.True, opts); !errors.Is(err, explore.ErrStateBound) {
			t.Fatalf("sequential engine must enforce the bound, got %v", err)
		}
		opts.Parallelism = runtime.NumCPU()
		if _, err := explore.Build(prog, state.True, opts); !errors.Is(err, explore.ErrStateBound) {
			t.Fatalf("parallel engine must enforce the bound, got %v", err)
		}
	}
}

// gclSrcs are small GCL systems whose actions carry compiler-emitted kernel
// bytecode, so Check exercises the native bytecode path (not just the
// hand-lowered example programs): offsets with total mod, wildcards, and
// multi-variable simultaneous assignment.
var gclSrcs = map[string]string{
	"counter": `program counter
var c : 0..6
var dir : bool
pred atend :: c == 0 | c == 6
action up   :: dir & c < 6   -> c := c + 1
action down :: !dir & c > 0  -> c := c - 1
action flip :: c == 0 | c == 6 -> dir := !dir
fault wob :: true -> c := ?
`,
	"modring": `program modring
var a : 2..5
var b : 1..3
action step :: a < 5  -> a := a + 1
action wrap :: a == 5 -> a := 2, b := (a + b) % 3 + 1
fault jolt :: b != 2 -> b := ?
`,
	"pair": `program pair
var x : 0..3
var y : 0..3
pred diag :: x == y
action swap :: x != y -> x := y, y := x
action bump :: x == y & x < 3 -> x := x + 1
fault scramble :: true -> x := ?, y := ?
`,
}

// TestEnginesAgreeOnGCL runs the full Check matrix — engines × kernel vs
// closure adapter — over GCL-compiled programs, plain and fault-composed
// (with the composition's fair mask marking faults unfair), and checks
// MaxStates parity between the compiled and stripped variants.
func TestEnginesAgreeOnGCL(t *testing.T) {
	workers := []int{2, runtime.NumCPU()}
	for name, src := range gclSrcs {
		f, err := gcl.ParseAndCompile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		composed, fair, err := fault.Compose(f.Program, f.Faults)
		if err != nil {
			t.Fatalf("%s: compose: %v", name, err)
		}
		init := state.True
		if p, ok := f.Pred("diag"); ok {
			init = p
		}
		t.Run(name+"/plain", func(t *testing.T) {
			t.Parallel()
			if err := Check(f.Program, init, explore.Options{}, workers...); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(name+"/composed", func(t *testing.T) {
			t.Parallel()
			if err := Check(composed, state.True, explore.Options{Fair: fair}, workers...); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(name+"/bound", func(t *testing.T) {
			t.Parallel()
			for _, prog := range []*guarded.Program{composed, StripCompiled(composed)} {
				opts := explore.Options{MaxStates: 3, Parallelism: 1}
				if _, err := explore.Build(prog, state.True, opts); !errors.Is(err, explore.ErrStateBound) {
					t.Fatalf("want ErrStateBound, got %v", err)
				}
			}
		})
	}
}
