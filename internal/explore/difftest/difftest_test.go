package difftest

import (
	"runtime"
	"testing"

	"detcorr/internal/byzagree"
	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/leader"
	"detcorr/internal/memaccess"
	"detcorr/internal/mutex"
	"detcorr/internal/reset"
	"detcorr/internal/state"
	"detcorr/internal/termdetect"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

// TestEnginesAgreeOnExamples is the differential suite: for every example
// system in the repo, sequential and parallel Build must produce identical
// graphs (same states, ids, edges, in-lists) for 2, 3, and NumCPU workers.
func TestEnginesAgreeOnExamples(t *testing.T) {
	mem := memaccess.MustNew(2)
	byz := byzagree.MustNew()
	tm := tmr.MustNew(2)
	ring := tokenring.MustNew(4, 4)
	mtx := mutex.MustNew(3, 3)
	td := termdetect.MustNew(3)

	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"memaccess/p", mem.Intolerant, state.True},
		{"memaccess/pf", mem.FailSafe, state.True},
		{"memaccess/pn", mem.Nonmasking, state.True},
		{"memaccess/pm", mem.Masking, state.True},
		{"tmr/intolerant", tm.Intolerant, state.True},
		{"tmr/masking", tm.Masking, state.True},
		{"tokenring", ring.Ring, state.True},
		{"tokenring/legitimate", ring.Ring, ring.Legitimate},
		{"byzagree/failsafe", byz.FailSafe, state.True},
		{"byzagree/masking", byz.Masking, state.True},
		{"mutex", mtx.Program, state.True},
		{"mutex/invariant", mtx.Program, mtx.Invariant},
		{"leader", leader.MustNew(3).Program, state.True},
		{"reset", reset.MustNewLine(3).Program, state.True},
		{"termdetect", td.Program, state.True},
		{"termdetect/init", td.Program, td.Init},
	}
	workers := []int{2, 3, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := Check(tc.prog, tc.init, explore.Options{}, workers...); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEnginesAgreeUnderFairMask covers the p ‖ F shape: a program with its
// fault actions marked unfair must explore identically in both engines.
func TestEnginesAgreeUnderFairMask(t *testing.T) {
	ring := tokenring.MustNew(3, 3)
	fair := make([]bool, ring.Ring.NumActions())
	for i := range fair {
		fair[i] = i%2 == 0 // alternate fair/unfair, exercising the mask path
	}
	if err := Check(ring.Ring, state.True, explore.Options{Fair: fair}, 2, runtime.NumCPU()); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesAgreeOnBoundError checks the engines also agree on the error
// side of the MaxStates contract.
func TestEnginesAgreeOnBoundError(t *testing.T) {
	ring := tokenring.MustNew(4, 4)
	opts := explore.Options{MaxStates: 17, Parallelism: 1}
	if _, err := explore.Build(ring.Ring, state.True, opts); err == nil {
		t.Fatal("sequential engine must enforce the bound")
	}
	opts.Parallelism = runtime.NumCPU()
	if _, err := explore.Build(ring.Ring, state.True, opts); err == nil {
		t.Fatal("parallel engine must enforce the bound")
	}
}
