package difftest

import (
	"fmt"
	"strings"
)

// GCL renditions of the repo's example systems, shared by the
// prover/graph agreement suite and the benchmarks. The hand-lowered Go
// programs in internal/memaccess, internal/tmr etc. have no source AST,
// so the exploration-free prover cannot see them; these sources give both
// sides — internal/prove works on the parsed AST, the graph checks on the
// compiled program — one common ground truth to agree on.

// RingSource generates Dijkstra's K-state token ring with n machines and
// counters in 0..k-1: machine 0 is the bottom machine, privileged when
// x0 == x_{n-1}; machine i>0 is privileged when x_i != x_{i-1}. Legit
// holds when exactly one machine is privileged, and the fault class
// corrupts any single counter.
func RingSource(n, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program ring%d\n\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "var x%d : 0..%d\n", i, k-1)
	}
	priv := func(i int) string {
		if i == 0 {
			return fmt.Sprintf("(x0 == x%d)", n-1)
		}
		return fmt.Sprintf("(x%d != x%d)", i, i-1)
	}
	b.WriteString("\npred Legit ::\n")
	for i := 0; i < n; i++ {
		var terms []string
		for j := 0; j < n; j++ {
			if j == i {
				terms = append(terms, priv(j))
			} else {
				terms = append(terms, "!"+priv(j))
			}
		}
		sep := "|"
		if i == n-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  ( %s ) %s\n", strings.Join(terms, " & "), sep)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "action move0 :: x0 == x%d -> x0 := (x0 + 1) %% %d\n", n-1, k)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&b, "action move%d :: x%d != x%d -> x%d := x%d\n", i, i, i-1, i, i-1)
	}
	b.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "fault corrupt%d :: true -> x%d := ?\n", i, i)
	}
	return b.String()
}

// MemaccessPM is the paper's running example pm (Figures 1-3): the masking
// memory access with both the detector (detect/z1) and the corrector
// (restore) installed.
const MemaccessPM = `program memaccess_pm
var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)
var z1      : bool

pred X1          :: present
pred U1          :: z1 => present
pred S           :: present & !((val == 0 & data == v1) | (val == 1 & data == v0))
pred Z1p         :: z1
pred NotZ1       :: !z1
pred DataCorrect :: (val == 0 & data == v0) | (val == 1 & data == v1)

action restore :: !present      -> present := true
action detect  :: present & !z1 -> z1 := true
action read0   :: z1 & val == 0 -> data := v0
action read1   :: z1 & val == 1 -> data := v1

fault pageout  :: present & !z1 -> present := false
`

// MemaccessPF is the fail-safe variant pf: the detector alone, with no
// restore action. Once the page faults out, the reads stop (safety is
// preserved, liveness is not).
const MemaccessPF = `program memaccess_pf
var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)
var z1      : bool

pred X1  :: present
pred U1  :: z1 => present
pred S   :: present & !((val == 0 & data == v1) | (val == 1 & data == v0))
pred Z1p :: z1

action detect :: present & !z1 -> z1 := true
action read0  :: z1 & val == 0 -> data := v0
action read1  :: z1 & val == 1 -> data := v1

fault pageout :: present & !z1 -> present := false
`

// MemaccessPN is the nonmasking variant pn: the corrector alone, with
// unguarded reads. Faults can transiently corrupt data, but restore keeps
// re-establishing X1.
const MemaccessPN = `program memaccess_pn
var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)

pred X1          :: present
pred DataCorrect :: (val == 0 & data == v0) | (val == 1 & data == v1)
pred S           :: present & !((val == 0 & data == v1) | (val == 1 & data == v0))

action restore :: !present           -> present := true
action read0   :: present & val == 0 -> data := v0
action read1   :: present & val == 1 -> data := v1

fault pageout  :: present -> present := false
`

// TMRSource is the triple-modular-redundancy construction of Section 6.1
// in GCL: out = 0 encodes ⊥ and out = k+1 encodes value k; uncor holds
// the ground-truth uncorrupted value; each fault may corrupt one input
// only while the other two are uncorrupted.
const TMRSource = `program tmr
var x     : 0..2
var y     : 0..2
var z     : 0..2
var out   : 0..3
var uncor : 0..2

pred Wit        :: x == y | x == z
pred OutCorrect :: out == uncor + 1
pred S :: x == uncor & y == uncor & z == uncor & (out == 0 | out == uncor + 1)
pred T :: (out == 0 | out == uncor + 1) &
          ((x == uncor & y == uncor) | (x == uncor & z == uncor) | (y == uncor & z == uncor))

action IR1 :: out == 0 & (x == y | x == z) -> out := x + 1
action CR1 :: out == 0 & (y == z | y == x) -> out := y + 1
action CR2 :: out == 0 & (z == x | z == y) -> out := z + 1

fault fx :: y == uncor & z == uncor -> x := ?
fault fy :: x == uncor & z == uncor -> y := ?
fault fz :: x == uncor & y == uncor -> z := ?
`

// RingWatchedSource is RingSource with an unrelated watchdog detector
// composed in parallel: the detector reads the ring's bottom counter and
// raises an alarm, but never writes a ring variable, so the ring's own
// predicates (Legit) depend on none of the detector state. It is the
// slicing benchmark: checks targeting Legit should verify at ring cost,
// with the watchdog's 2·(wrap) states sliced away.
func RingWatchedSource(n, k int) string {
	src := RingSource(n, k)
	var b strings.Builder
	b.WriteString(src)
	b.WriteString(`
var alarm : bool
var wt    : 0..3

pred Seen :: alarm

detector mon : alarm, wt

action mon.tick  :: true          -> wt := (wt + 1) % 4
action mon.watch :: x0 == 0 & !alarm -> alarm := true
action mon.reset :: alarm & x0 != 0  -> alarm := false
`)
	return b.String()
}

// MemaccessPairSource is memaccess pf ‖ pn over disjoint variable sets
// (prefixes f. and n.): two independent instances of the paper's running
// example side by side. Any check targeting one instance's predicates
// should slice the other instance away entirely.
const MemaccessPairSource = `program memaccess_pair
var f.present : bool
var f.val     : 0..1
var f.data    : enum(fbot, fv0, fv1)
var f.z1      : bool
var n.present : bool
var n.val     : 0..1
var n.data    : enum(nbot, nv0, nv1)

pred FX1  :: f.present
pred FU1  :: f.z1 => f.present
pred FS   :: f.present & !((f.val == 0 & f.data == fv1) | (f.val == 1 & f.data == fv0))
pred FZ1p :: f.z1
pred NX1  :: n.present
pred NS   :: n.present & !((n.val == 0 & n.data == nv1) | (n.val == 1 & n.data == nv0))

detector fdet : f.z1
corrector ncor : n.present

action fdet.detect :: f.present & !f.z1    -> f.z1 := true
action f.read0     :: f.z1 & f.val == 0    -> f.data := fv0
action f.read1     :: f.z1 & f.val == 1    -> f.data := fv1
action ncor.restore :: !n.present          -> n.present := true
action n.read0     :: n.present & n.val == 0 -> n.data := nv0
action n.read1     :: n.present & n.val == 1 -> n.data := nv1

fault f.pageout :: f.present & !f.z1 -> f.present := false
fault n.pageout :: n.present         -> n.present := false

span f.present, n.present
`

// ByzAgreeSource is a Byzantine-agreement system in GCL: a general g with
// decision dg and three lieutenants copying it (dj = 2 encodes
// "undecided"). The fault turns the general Byzantine, after which dg is
// arbitrary.
const ByzAgreeSource = `program byzagree
var dg : 0..1
var d0 : 0..2
var d1 : 0..2
var d2 : 0..2
var bg : bool

pred S    :: !bg & (d0 == dg | d0 == 2) & (d1 == dg | d1 == 2) & (d2 == dg | d2 == 2)
pred Done :: d0 != 2 & d1 != 2 & d2 != 2
pred P0   :: d0 == 2
pred P1   :: d1 == 2
pred P2   :: d2 == 2

action copy0 :: d0 == 2 -> d0 := dg
action copy1 :: d1 == 2 -> d1 := dg
action copy2 :: d2 == 2 -> d2 := dg

fault byz :: !bg -> bg := true, dg := ?
`
