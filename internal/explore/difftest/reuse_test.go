package difftest

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
	"detcorr/internal/memaccess"
	"detcorr/internal/mutex"
	"detcorr/internal/state"
	"detcorr/internal/termdetect"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

func reuseCases(t *testing.T) []struct {
	name string
	prog *guarded.Program
	init state.Predicate
} {
	t.Helper()
	mem := memaccess.MustNew(2)
	tm := tmr.MustNew(2)
	ring := tokenring.MustNew(4, 4)
	mtx := mutex.MustNew(3, 3)
	td := termdetect.MustNew(3)
	return []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"memaccess/p", mem.Intolerant, state.True},
		{"memaccess/pm", mem.Masking, state.True},
		{"tmr/masking", tm.Masking, state.True},
		{"tokenring", ring.Ring, state.True},
		{"tokenring/legitimate", ring.Ring, ring.Legitimate},
		{"mutex/invariant", mtx.Program, mtx.Invariant},
		{"termdetect/init", td.Program, td.Init},
	}
}

// TestSharedMatchesBuild pins the cache-correctness contract: the graph the
// memoized Shared path returns is byte-identical — nodes, ids, edge order,
// in-lists, enabledness, deadlock flags — to an uncached sequential Build,
// both on the first (miss) and second (hit) request.
func TestSharedMatchesBuild(t *testing.T) {
	for _, tc := range reuseCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := explore.Build(tc.prog, tc.init, explore.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			miss, err := explore.Shared(tc.prog, tc.init, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Diff(ref, miss); err != nil {
				t.Fatalf("cached (miss) graph diverges from uncached build: %v", err)
			}
			hit, err := explore.Shared(tc.prog, tc.init, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := Diff(ref, hit); err != nil {
				t.Fatalf("cached (hit) graph diverges from uncached build: %v", err)
			}
		})
	}
}

// TestScanCoversBuildOnExamples checks the streaming scanner visits exactly
// the assembled graph's states, transitions, and deadlocks on every example
// system — the evidence that counterexample hunts may run on Scan without a
// CSR materialization and lose nothing.
func TestScanCoversBuildOnExamples(t *testing.T) {
	for _, tc := range reuseCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g, err := explore.Build(tc.prog, tc.init, explore.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			states := map[uint64]bool{}
			edges := 0
			deadlocks := map[uint64]bool{}
			stats, err := explore.Scan(tc.prog, tc.init, explore.ScanOptions{}, explore.Scanner{
				Visit: func(s state.State) bool {
					states[s.Index()] = true
					return true
				},
				Edge: func(from, to state.State, action int, fresh bool) bool {
					edges++
					return true
				},
				Deadlock: func(s state.State) bool {
					deadlocks[s.Index()] = true
					return true
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.States != g.NumNodes() || len(states) != g.NumNodes() {
				t.Errorf("scan states = %d (%d unique), graph has %d", stats.States, len(states), g.NumNodes())
			}
			if stats.Edges != g.NumEdges() || edges != g.NumEdges() {
				t.Errorf("scan edges = %d, graph has %d", stats.Edges, g.NumEdges())
			}
			for id := 0; id < g.NumNodes(); id++ {
				if !states[g.State(id).Index()] {
					t.Fatalf("graph node %d (%s) never visited by scan", id, g.State(id))
				}
			}
			wantDead := 0
			g.DeadlockSet().ForEach(func(id int) bool {
				wantDead++
				if !deadlocks[g.State(id).Index()] {
					t.Errorf("graph deadlock %s missed by scan", g.State(id))
				}
				return true
			})
			if len(deadlocks) != wantDead {
				t.Errorf("scan deadlocks = %d, graph has %d", len(deadlocks), wantDead)
			}
		})
	}
}

// TestFindDeadlockMatchesGraphWitness: the streaming deadlock hunt must
// return the same verdict and, when one exists, the exact trace the
// graph-side PathBetween would produce.
func TestFindDeadlockMatchesGraphWitness(t *testing.T) {
	src := `program halting
var x : 0..5
var stop : bool
action run  :: !stop & x < 5 -> x := x + 1
action halt :: x == 4 -> stop := true
fault kick :: stop -> x := ?
`
	f, err := gcl.ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	composed, fair, err := fault.Compose(f.Program, f.Faults)
	if err != nil {
		t.Fatal(err)
	}
	ring := tokenring.MustNew(4, 4)
	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
		fair []bool
	}{
		{"halting", f.Program, state.True, nil},
		{"halting/composed", composed, state.True, fair},
		{"tokenring", ring.Ring, state.True, nil}, // no deadlock: wrap keeps moving
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace, found, err := explore.FindDeadlock(tc.prog, tc.init, explore.ScanOptions{Fair: tc.fair})
			if err != nil {
				t.Fatal(err)
			}
			g, err := explore.Build(tc.prog, tc.init, explore.Options{Fair: tc.fair, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			want, wantFound := g.PathBetween(g.SetOf(tc.init), g.DeadlockSet(), nil)
			if found != wantFound {
				t.Fatalf("scan found = %v, graph says %v", found, wantFound)
			}
			if !found {
				return
			}
			if len(trace) != len(want) {
				t.Fatalf("scan trace has %d states, graph path %d", len(trace), len(want))
			}
			for i := range trace {
				if !trace[i].Equal(want[i]) {
					t.Errorf("trace[%d] = %s, graph path has %s", i, trace[i], want[i])
				}
			}
		})
	}
}
