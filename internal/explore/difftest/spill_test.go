package difftest

// The out-of-core differential suite: for every example system, the
// disk-spilled engine — at the minimum budget (everything spills) and a
// budget that fits (nothing should spill), sequential and partitioned-
// parallel, default and off-default partition counts — must produce a
// graph byte-identical to the in-RAM sequential engine's. Combined with
// explore's own corruption tests (a torn spill file is a clean error),
// this is the robustness story: spilling can slow a verdict down or fail
// it loudly, but it can never change it.

import (
	"runtime"
	"testing"

	"detcorr/internal/byzagree"
	"detcorr/internal/explore"
	"detcorr/internal/guarded"
	"detcorr/internal/leader"
	"detcorr/internal/memaccess"
	"detcorr/internal/mutex"
	"detcorr/internal/reset"
	"detcorr/internal/state"
	"detcorr/internal/termdetect"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

// spillBudgets: the floor budget forces the frontier (and, on the larger
// systems, the visited set) to disk; 16M keeps everything in RAM and pins
// "a budget you fit under is a no-op".
var spillBudgets = []int64{1 << 16, 16 << 20}

func TestSpilledEngineAgreesOnExamples(t *testing.T) {
	mem := memaccess.MustNew(2)
	byz := byzagree.MustNew()
	tm := tmr.MustNew(2)
	ring := tokenring.MustNew(4, 4)
	mtx := mutex.MustNew(3, 3)
	td := termdetect.MustNew(3)

	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"memaccess/p", mem.Intolerant, state.True},
		{"memaccess/pm", mem.Masking, state.True},
		{"tmr/masking", tm.Masking, state.True},
		{"tokenring", ring.Ring, state.True},
		{"tokenring/legitimate", ring.Ring, ring.Legitimate},
		{"byzagree/masking", byz.Masking, state.True},
		{"mutex", mtx.Program, state.True},
		{"leader", leader.MustNew(3).Program, state.True},
		{"reset", reset.MustNewLine(3).Program, state.True},
		{"termdetect", td.Program, state.True},
	}
	workers := []int{3, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := CheckSpill(tc.prog, tc.init, explore.Options{}, spillBudgets, workers...); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpilledEngineAgreesUnderFairMask pins the p ‖ F shape on the spilled
// path: fairness masks flow through assembly, not exploration, so the
// spilled graph must carry the identical mask.
func TestSpilledEngineAgreesUnderFairMask(t *testing.T) {
	ring := tokenring.MustNew(3, 3)
	fair := make([]bool, ring.Ring.NumActions())
	for i := range fair {
		fair[i] = i%2 == 0
	}
	if err := CheckSpill(ring.Ring, state.True, explore.Options{Fair: fair}, spillBudgets, runtime.NumCPU()); err != nil {
		t.Fatal(err)
	}
}
