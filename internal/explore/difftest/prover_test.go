package difftest

import (
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/prove"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// compileAndProve compiles src twice over: the graph checks get the
// compiled program, the prover gets the parsed AST. Nothing is certified,
// so the graph checks below really do enumerate — the agreement is between
// two independent engines, not between the prover and itself.
func compileAndProve(t *testing.T, src string) (*gcl.File, *prove.System) {
	t.Helper()
	f, err := gcl.ParseAndCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := prove.NewSystem(f.AST)
	if err != nil {
		t.Fatal(err)
	}
	return f, sys
}

// TestProverGraphClosureAgreement cross-checks the exploration-free DC100
// verdicts against spec.CheckClosed over every example system. Closure is
// the one obligation where both engines quantify over the same set (all
// states satisfying the predicate), so agreement is two-way: Proved must
// mean the graph check passes AND Disproved must mean it fails.
func TestProverGraphClosureAgreement(t *testing.T) {
	cases := []struct {
		name, src, pred string
		want            prove.Verdict
	}{
		{"memaccess_pm/S", MemaccessPM, "S", prove.Proved},
		{"memaccess_pm/U1", MemaccessPM, "U1", prove.Proved},
		{"memaccess_pm/X1", MemaccessPM, "X1", prove.Proved},
		{"memaccess_pm/NotZ1", MemaccessPM, "NotZ1", prove.Disproved},
		{"memaccess_pf/S", MemaccessPF, "S", prove.Proved},
		{"memaccess_pf/U1", MemaccessPF, "U1", prove.Proved},
		{"memaccess_pn/S", MemaccessPN, "S", prove.Proved},
		{"memaccess_pn/X1", MemaccessPN, "X1", prove.Proved},
		{"tmr/S", TMRSource, "S", prove.Proved},
		{"tmr/T", TMRSource, "T", prove.Proved},
		{"tmr/Wit", TMRSource, "Wit", prove.Proved},
		{"tmr/OutCorrect", TMRSource, "OutCorrect", prove.Proved},
		{"byzagree/S", ByzAgreeSource, "S", prove.Proved},
		{"byzagree/Done", ByzAgreeSource, "Done", prove.Proved},
		{"byzagree/P0", ByzAgreeSource, "P0", prove.Disproved},
		{"ring4/Legit", RingSource(4, 4), "Legit", prove.Proved},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, sys := compileAndProve(t, tc.src)
			rep, err := prove.ProveClosure(sys, tc.pred)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != tc.want {
				t.Fatalf("prover verdict = %v, want %v\n%s", rep.Verdict, tc.want, rep)
			}
			p, ok := f.Pred(tc.pred)
			if !ok {
				t.Fatalf("compiled file lost predicate %q", tc.pred)
			}
			graphErr := spec.CheckClosed(f.Program, p)
			switch rep.Verdict {
			case prove.Proved:
				if graphErr != nil {
					t.Fatalf("prover says closed but enumeration disagrees: %v", graphErr)
				}
			case prove.Disproved:
				if graphErr == nil {
					t.Fatalf("prover refutes closure but enumeration finds no violation:\n%s", rep)
				}
			}
		})
	}
}

// TestProverGraphSpanAgreement cross-checks DC101 with the span set to the
// invariant itself: the report's verdict then coincides with closure of the
// predicate in the fault-composed program, which CheckClosed decides by
// enumeration.
func TestProverGraphSpanAgreement(t *testing.T) {
	cases := []struct {
		name, src, pred string
		want            prove.Verdict
	}{
		{"memaccess_pm/U1", MemaccessPM, "U1", prove.Proved},
		{"memaccess_pm/S", MemaccessPM, "S", prove.Disproved},
		{"tmr/T", TMRSource, "T", prove.Proved},
		{"tmr/S", TMRSource, "S", prove.Disproved},
		{"byzagree/Done", ByzAgreeSource, "Done", prove.Proved},
		{"byzagree/S", ByzAgreeSource, "S", prove.Disproved},
		{"ring4/Legit", RingSource(4, 4), "Legit", prove.Disproved},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, sys := compileAndProve(t, tc.src)
			rep, err := prove.ProveSpanClosure(sys, tc.pred, tc.pred)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != tc.want {
				t.Fatalf("prover verdict = %v, want %v\n%s", rep.Verdict, tc.want, rep)
			}
			composed, _, err := fault.Compose(f.Program, f.Faults)
			if err != nil {
				t.Fatal(err)
			}
			p, ok := f.Pred(tc.pred)
			if !ok {
				t.Fatalf("compiled file lost predicate %q", tc.pred)
			}
			graphErr := spec.CheckClosed(composed, p)
			switch rep.Verdict {
			case prove.Proved:
				if graphErr != nil {
					t.Fatalf("prover says fault-closed but enumeration disagrees: %v", graphErr)
				}
			case prove.Disproved:
				if graphErr == nil {
					t.Fatalf("prover refutes fault closure but enumeration finds no violation:\n%s", rep)
				}
			}
		})
	}
}

// TestProverGraphComponentAgreement cross-checks the full detector and
// corrector bundles. Here agreement is one-way: the prover quantifies over
// all U-states, the graph checks over reachable ones only, so Proved must
// transfer but a prover fallback (false) asserts nothing.
func TestProverGraphComponentAgreement(t *testing.T) {
	cases := []struct {
		name, src, kind, z, x, u string
		wantProved               bool
	}{
		{"memaccess_pm/detector", MemaccessPM, "detector", "Z1p", "X1", "U1", true},
		{"memaccess_pm/corrector", MemaccessPM, "corrector", "X1", "X1", "U1", true},
		{"memaccess_pf/detector", MemaccessPF, "detector", "Z1p", "X1", "U1", true},
		{"memaccess_pn/corrector", MemaccessPN, "corrector", "X1", "X1", "true", true},
		{"byzagree/corrector", ByzAgreeSource, "corrector", "Done", "Done", "S", true},
		// Dijkstra's ring converges from everywhere, but the proof needs a
		// genuinely global variant function the greedy synthesis cannot
		// find: the prover must decline (never disprove) and the graph
		// check must still succeed on its own.
		{"ring3/corrector-fallback", RingSource(3, 3), "corrector", "Legit", "Legit", "true", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, sys := compileAndProve(t, tc.src)
			got := prove.ProveComponent(sys, tc.kind, tc.z, tc.x, tc.u)
			if got != tc.wantProved {
				t.Fatalf("ProveComponent(%s) = %v, want %v", tc.kind, got, tc.wantProved)
			}
			z := mustPred(t, f, tc.z)
			x := mustPred(t, f, tc.x)
			u := mustPred(t, f, tc.u)
			var graphErr error
			if tc.kind == "detector" {
				graphErr = core.Detector{D: f.Program, Z: z, X: x, U: u}.Check()
			} else {
				graphErr = core.Corrector{C: f.Program, Z: z, X: x, U: u}.Check()
			}
			if graphErr != nil && got {
				t.Fatalf("prover certified the %s but the graph check fails: %v", tc.kind, graphErr)
			}
			if graphErr != nil {
				t.Fatalf("graph check should hold for every listed component: %v", graphErr)
			}
		})
	}
}

func mustPred(t *testing.T, f *gcl.File, name string) state.Predicate {
	t.Helper()
	if name == "true" {
		return state.True
	}
	p, ok := f.Pred(name)
	if !ok {
		t.Fatalf("predicate %q not in compiled file", name)
	}
	return p
}

// TestCertifiedFastPathSoundness drives the registered hooks end to end:
// after Certify, spec.CheckClosed must return the same verdicts it returns
// by enumeration — immediately for proved obligations, by falling back for
// everything else (including fault-composed programs, which miss the
// registry by construction).
func TestCertifiedFastPathSoundness(t *testing.T) {
	f, err := gcl.ParseAndCompile(RingSource(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := prove.Certify(f); err != nil {
		t.Fatal(err)
	}
	legit, _ := f.Pred("Legit")
	if err := spec.CheckClosed(f.Program, legit); err != nil {
		t.Fatalf("certified closure check: %v", err)
	}
	composed, _, err := fault.Compose(f.Program, f.Faults)
	if err != nil {
		t.Fatal(err)
	}
	// The composed program is a different *guarded.Program: the hook must
	// miss and enumeration must still find the corruption violation.
	if err := spec.CheckClosed(composed, legit); err == nil {
		t.Fatal("fault-composed closure must still fail after certification")
	}
}
