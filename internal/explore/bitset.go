// Package explore builds explicit-state transition systems from
// guarded-command programs and answers the graph-theoretic questions that
// the paper's definitions reduce to: reachability (fault spans, invariant
// closure), deadlock detection (maximality of computations), and
// fair-cycle detection (the liveness side of convergence, progress, and the
// nonmasking tolerance specification).
//
// Computations in the paper (Section 2.1) are weakly fair with respect to
// program actions and maximal. Over a finite transition graph a violation of
// "every computation from A reaches G" is therefore either a reachable
// deadlock outside G or a reachable cycle outside G that some weakly fair
// computation can traverse forever. Fair-cycle existence is decided per
// strongly connected component: a fair infinite run confined to an SCC C
// exists iff every fair action that is enabled at all states of C has at
// least one transition inside C (weak fairness of action a is the Streett
// condition "infinitely often disabled or infinitely often taken"; a tour
// visiting every state and every internal transition of C realizes it).
package explore

import "math/bits"

// Bitset is a fixed-capacity set of node ids.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty set with capacity for n ids.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
//
//dc:zeroalloc
func (b *Bitset) Len() int { return b.n }

// Add inserts id into the set.
//
//dc:zeroalloc
func (b *Bitset) Add(id int) { b.words[id>>6] |= 1 << (uint(id) & 63) }

// Fill inserts every id in [0,n), one word at a time.
//
//dc:zeroalloc
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if rem := b.n & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(rem)) - 1
	}
}

// Remove deletes id from the set.
//
//dc:zeroalloc
func (b *Bitset) Remove(id int) { b.words[id>>6] &^= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
//
//dc:zeroalloc
func (b *Bitset) Has(id int) bool { return b.words[id>>6]&(1<<(uint(id)&63)) != 0 }

// Count returns the number of ids in the set.
//
//dc:zeroalloc
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
//
//dc:zeroalloc
func (b *Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// Union adds every element of other to b.
//
//dc:zeroalloc
func (b *Bitset) Union(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Intersect removes from b every element not in other.
//
//dc:zeroalloc
func (b *Bitset) Intersect(other *Bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// IntersectNot intersects b with the complement of other (b ← b ∩ ¬other),
// in place and one word at a time, without materializing the complement.
//
//dc:zeroalloc
func (b *Bitset) IntersectNot(other *Bitset) {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Subtract removes from b every element of other. It is IntersectNot under
// its set-difference name.
//
//dc:zeroalloc
func (b *Bitset) Subtract(other *Bitset) { b.IntersectNot(other) }

// Complement returns the set of ids in [0,n) not in b.
func (b *Bitset) Complement() *Bitset {
	out := NewBitset(b.n)
	for i := range b.words {
		out.words[i] = ^b.words[i]
	}
	// Clear bits beyond n.
	if rem := b.n & 63; rem != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= (1 << uint(rem)) - 1
	}
	return out
}

// SubsetOf reports whether every element of b is in other.
//
//dc:zeroalloc
func (b *Bitset) SubsetOf(other *Bitset) bool {
	for i := range b.words {
		if b.words[i]&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every id in the set in increasing order, stopping
// early if fn returns false.
func (b *Bitset) ForEach(fn func(id int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// NextAfter returns the smallest member strictly greater than id, or -1 if
// none exists. Pass -1 to start an iteration; the idiom
//
//	for id := b.NextAfter(-1); id >= 0; id = b.NextAfter(id) { ... }
//
// visits the set in increasing order without the closure ForEach needs.
//
//dc:zeroalloc
func (b *Bitset) NextAfter(id int) int {
	next := id + 1
	if next < 0 {
		next = 0
	}
	wi := next >> 6
	if wi >= len(b.words) {
		return -1
	}
	w := b.words[wi] &^ ((1 << (uint(next) & 63)) - 1)
	for {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b.words) {
			return -1
		}
		w = b.words[wi]
	}
}

// Any returns an arbitrary element of the set, or -1 if empty.
func (b *Bitset) Any() int {
	for wi, w := range b.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Slice returns the elements in increasing order.
func (b *Bitset) Slice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}
